// Quickstart: the whole pipeline in ~40 lines.
//
// Collect HPC windows from a sandboxed sample database, train a binary
// malware detector, and evaluate it on held-out samples — the thesis's
// core experiment in miniature.
//
//   $ ./quickstart
#include <iostream>

#include "core/dataset_builder.hpp"
#include "core/detector.hpp"

int main() {
  using namespace hmd;

  // 1. Configure the pipeline: a 5%-scale Table 1 database, 8 sampling
  //    windows of 10 ms per sample, the 16 Haswell counter events.
  core::PipelineConfig config = core::PipelineConfig::quick(0.05, 8);

  // 2. Run every sample in an isolated sandbox and collect its HPC
  //    windows through the multiplexed 8-register PMU model.
  core::DatasetBuilder builder(config);
  std::cout << "collecting HPC dataset ("
            << config.composition.total() << " samples)...\n";
  const ml::Dataset multiclass = builder.build_multiclass_dataset();

  // 3. Binary labels (benign vs malware) and the thesis's 70/30 split.
  const ml::Dataset binary = core::DatasetBuilder::to_binary(multiclass);
  Rng rng(42);
  const auto [train, test] =
      binary.stratified_split(config.train_fraction, rng);

  // 4. Train a detector and evaluate on held-out windows.
  const core::TrainedModel detector =
      core::train_and_evaluate("J48", train, test);

  std::cout << "\nJ48 hardware malware detector\n"
            << detector.evaluation.to_string() << '\n';
  return 0;
}
