// Malware family triage: the thesis's multiclass contribution in action.
//
// An analyst receives a batch of unknown samples. The PCA-assisted
// one-vs-rest detector (each family scored on its own custom 8-feature
// subset) classifies every sample's HPC windows and votes a family per
// sample — the workflow a VirusTotal-style service would run with hardware
// counters instead of signatures.
//
//   $ ./family_triage
#include <iostream>
#include <map>

#include "core/dataset_builder.hpp"
#include "core/detector.hpp"
#include "hwsim/core.hpp"
#include "perf/collector.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"
#include "workload/sandbox.hpp"

int main() {
  using namespace hmd;

  // Train the triage model on a labelled corpus.
  core::PipelineConfig config = core::PipelineConfig::quick(0.10, 8);
  core::DatasetBuilder builder(config);
  std::cout << "collecting training corpus...\n";
  const ml::Dataset multiclass = builder.build_multiclass_dataset();
  Rng rng(3);
  auto [train, test] = multiclass.stratified_split(0.7, rng);

  core::PcaAssistedOvr triage({.scheme = "MLR", .features_per_class = 8});
  triage.train(train);
  std::cout << "triage detector trained; per-family custom features:\n";
  for (std::size_t c = 0; c < triage.class_features().size(); ++c)
    std::cout << "  " << train.class_attribute().values()[c] << ": "
              << join(triage.class_features()[c].names, ", ") << '\n';

  // A fresh batch of unknown samples (disjoint seeds from training).
  const auto unknown_db = workload::SampleDatabase::generate(
      workload::DatabaseComposition::scaled(0.01), /*seed=*/777);

  TextTable report("triage report (window-majority vote per sample)");
  report.set_header({"sample", "true family", "predicted", "vote share"});
  std::size_t correct = 0;
  const perf::HpcCollector collector(config.collector);
  for (const workload::SampleRecord& rec : unknown_db.samples()) {
    workload::Sandbox sandbox(rec, config.sandbox);
    hwsim::Core core(hwsim::CoreConfig{},
                     hwsim::MemoryHierarchy::miniature());
    const auto windows = collector.collect(core, sandbox, rec.seed);

    std::map<std::size_t, int> votes;
    for (const perf::HpcSample& w : windows) ++votes[triage.predict(w.counts)];
    const auto winner = std::max_element(
        votes.begin(), votes.end(),
        [](const auto& a, const auto& b) { return a.second < b.second; });
    const std::string predicted =
        train.class_attribute().values()[winner->first];
    const std::string truth(workload::app_class_name(rec.label));
    if (predicted == truth) ++correct;
    report.add_row({rec.id.substr(0, 24), truth, predicted,
                    format("%d/%zu", winner->second, windows.size())});
  }
  report.print(std::cout);
  std::cout << format("\nsample-level triage accuracy: %zu/%zu (%.0f%%)\n",
                      correct, unknown_db.size(),
                      100.0 * static_cast<double>(correct) /
                          static_cast<double>(unknown_db.size()));
  std::cout << "(window-level accuracy on held-out windows: "
            << format("%.1f%%", triage.evaluate(test).accuracy() * 100.0)
            << ")\n";
  return 0;
}
