// Workload characterization: the simulator as a standalone tool.
//
// Runs the MiBench-style benign suite and one sample of each malware family
// on the full-size Haswell-shaped hierarchy and prints the classic
// characterization table — IPC, cache miss rates, branch mispredict rate —
// the numbers an architect would use to sanity-check the behaviour models
// before trusting any detector built on them.
//
//   $ ./workload_characterization
#include <iostream>

#include "hwsim/core.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"
#include "workload/mibench.hpp"
#include "workload/sample_database.hpp"
#include "workload/trace_generator.hpp"

namespace {

using namespace hmd;

struct Row {
  std::string name;
  double ipc, l1d_mpki, llc_mpki, branch_miss_rate, itlb_mpki;
};

Row characterize(const std::string& name,
                 const workload::BehaviorProfile& profile,
                 std::uint64_t seed) {
  hwsim::Core core;  // full-size Haswell geometry
  workload::TraceGenerator gen(profile, seed);
  constexpr std::size_t kOps = 200000;
  for (std::size_t i = 0; i < kOps; ++i) core.execute(gen.next());

  const auto& pmu = core.pmu();
  const double kilo_instr =
      static_cast<double>(core.instructions()) / 1000.0;
  const auto mpki = [&](hwsim::HwEvent e) {
    return static_cast<double>(pmu.true_count(e)) / kilo_instr;
  };
  const double branches =
      static_cast<double>(pmu.true_count(hwsim::HwEvent::kBranchInstructions));
  return {name, core.ipc(), mpki(hwsim::HwEvent::kL1DcacheLoadMisses),
          mpki(hwsim::HwEvent::kLlcLoadMisses),
          branches > 0
              ? static_cast<double>(
                    pmu.true_count(hwsim::HwEvent::kBranchMisses)) /
                    branches
              : 0.0,
          mpki(hwsim::HwEvent::kITlbLoadMisses)};
}

}  // namespace

int main() {
  using namespace hmd;

  TextTable table("workload characterization (200k ops, Haswell geometry)");
  table.set_header({"workload", "IPC", "L1D MPKI", "LLC MPKI",
                    "br-miss %", "iTLB MPKI"});
  auto add = [&table](const Row& r) {
    table.add_row({r.name, format("%.2f", r.ipc),
                   format("%.1f", r.l1d_mpki), format("%.2f", r.llc_mpki),
                   format("%.1f", r.branch_miss_rate * 100.0),
                   format("%.2f", r.itlb_mpki)});
  };

  // MiBench benign kernels.
  for (const auto& inst : workload::mibench_suite(1, 42))
    add(characterize(inst.name, inst.profile, inst.seed));

  // One sample of each malware family for contrast.
  const auto db = workload::SampleDatabase::generate(
      workload::DatabaseComposition{
          .counts = {{workload::AppClass::kBackdoor, 1},
                     {workload::AppClass::kRootkit, 1},
                     {workload::AppClass::kTrojan, 1},
                     {workload::AppClass::kVirus, 1},
                     {workload::AppClass::kWorm, 1}}},
      1234);
  for (const auto& rec : db.samples())
    add(characterize(std::string(workload::app_class_name(rec.label)),
                     rec.profile(), rec.seed));

  table.print(std::cout);
  std::cout << "\nThe malware families' signatures are visible to the eye:\n"
               "rootkit = branch misses + iTLB pressure; virus/worm = LLC "
               "traffic;\nbackdoor = nothing (tiny and predictable) — which "
               "is itself a signature.\n";
  return 0;
}
