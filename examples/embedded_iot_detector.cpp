// Embedded/IoT deployment study: the thesis's motivating scenario.
//
// Resource-constrained devices cannot afford an MLP's multipliers, so this
// example walks the full embedded flow: reduce 16 counters to the 4 most
// discriminative via PCA, train the cheap rule learners, push every
// candidate through the HLS-style synthesis estimator, verify fixed-point
// accuracy, and pick the detector with the best accuracy/area.
//
//   $ ./embedded_iot_detector
#include <fstream>
#include <iostream>
#include <sstream>

#include "core/dataset_builder.hpp"
#include "core/detector.hpp"
#include "core/feature_reduction.hpp"
#include "hw/fixed_point_eval.hpp"
#include "hw/lowering.hpp"
#include "hw/rtl_emitter.hpp"
#include "ml/registry.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"

int main() {
  using namespace hmd;

  // Collect the dataset (10% scale keeps this example under a minute).
  core::PipelineConfig config = core::PipelineConfig::quick(0.10, 8);
  core::DatasetBuilder builder(config);
  std::cout << "collecting HPC dataset...\n";
  const ml::Dataset multiclass = builder.build_multiclass_dataset();
  const ml::Dataset binary = core::DatasetBuilder::to_binary(multiclass);

  Rng rng(7);
  auto [mtrain, mtest] = multiclass.stratified_split(0.7, rng);
  Rng rng2(8);
  auto [btrain, btest] = binary.stratified_split(0.7, rng2);

  // PCA feature reduction on the training data: 16 -> 4 counters means the
  // runtime monitor needs only half a multiplex group — no multiplexing at
  // all on the 8-register PMU.
  const core::FeatureReducer reducer(mtrain);
  const core::FeatureSet top4 = reducer.binary_top_features(4);
  std::cout << "PCA-selected counters: " << join(top4.names, ", ") << "\n\n";

  // Candidate detectors, cheapest first.
  const core::BinaryStudy study(btrain, btest);
  TextTable table("embedded detector candidates (4 HPC features)");
  table.set_header({"detector", "accuracy %", "area (slices)", "DSPs",
                    "latency us", "power mW", "fixed-point acc %",
                    "acc/area"});
  for (const std::string scheme :
       {"OneR", "DecisionStump", "JRip", "J48", "SVM", "MLR", "MLP"}) {
    const auto rows = study.run({scheme}, &top4);
    const core::BinaryStudyRow& row = rows.front();
    // Re-check accuracy with Q16.16-quantized inputs (the FPGA datapath).
    auto clf = ml::make_classifier(scheme);
    clf->train(btrain.project(top4.indices));
    const double fixed_acc =
        hw::evaluate_fixed_point(*clf, btest.project(top4.indices))
            .accuracy();
    table.add_row({scheme, format("%.2f", row.accuracy() * 100.0),
                   format("%.0f", row.synthesis.area_slices()),
                   std::to_string(row.synthesis.resources.dsps),
                   format("%.2f", row.synthesis.latency_us()),
                   format("%.3f", row.synthesis.total_power_mw()),
                   format("%.2f", fixed_acc * 100.0),
                   format("%.4f", row.accuracy_per_slice())});
  }
  table.print(std::cout);

  std::cout << "\nAt a 10 ms sampling period the detector runs 100 "
               "inferences/s;\neven the largest candidate finishes each "
               "inference in well under a window.\n";

  // Emit the deployable RTL for the efficiency winner (JRip on 4
  // counters): this is the artifact an FPGA flow would synthesize.
  auto winner = ml::make_classifier("JRip");
  winner->train(btrain.project(top4.indices));
  const std::string rtl =
      hw::emit_verilog(*winner, top4.indices.size(), "hmd_jrip_detector");
  const char* rtl_path = "hmd_jrip_detector.v";
  {
    std::ofstream out(rtl_path);
    out << rtl;
  }
  std::cout << "\nwrote " << rtl_path << " (" << rtl.size()
            << " bytes of Verilog); first lines:\n";
  std::istringstream lines(rtl);
  std::string line;
  for (int i = 0; i < 12 && std::getline(lines, line); ++i)
    std::cout << "  | " << line << '\n';
  return 0;
}
