// Online monitoring: runtime hardware malware detection, window by window.
//
// A trained detector watches a core's PMU while programs run. Every 10 ms
// sampling window the 16 multiplexed counters are read, scaled, and scored;
// consecutive malicious windows raise an alarm. This is the deployment the
// HMD literature targets — detection DURING execution, not after.
//
//   $ ./online_monitor
#include <iostream>
#include <sstream>

#include "core/dataset_builder.hpp"
#include "core/detector.hpp"
#include "core/online_detector.hpp"
#include "ml/serialization.hpp"
#include "hwsim/core.hpp"
#include "perf/collector.hpp"
#include "util/strings.hpp"
#include "workload/sandbox.hpp"

namespace {

using namespace hmd;

/// Streams one program under the monitor; prints a per-window timeline.
void monitor_program(const ml::Classifier& model,
                     const workload::SampleRecord& rec,
                     const perf::CollectorConfig& collector_cfg) {
  workload::Sandbox sandbox(rec, {});
  hwsim::Core core(hwsim::CoreConfig{}, hwsim::MemoryHierarchy::miniature());
  const perf::HpcCollector collector(collector_cfg);
  const auto windows = collector.collect(core, sandbox, rec.seed);

  // The deployment policy: threshold + consecutive confirmation (raw
  // argmax under a ~90% malware training prior flags everything).
  const core::OnlineDetectorConfig policy{.flag_threshold = 0.995,
                                          .confirm_windows = 5};
  core::OnlineDetector monitor(model, policy);

  std::cout << rec.id << " ("
            << workload::app_class_name(rec.label) << ")\n  t(ms) ";
  std::string timeline;
  for (const perf::HpcSample& w : windows)
    timeline += monitor.observe(w.counts).flagged ? '!' : '.';
  std::cout << timeline << "  (.=clean, !=flagged)\n";

  // Forensic re-scan: the same trace scored in one batched call, model
  // evaluation fanned across the shared pool. Must agree with streaming.
  std::vector<double> flat;
  for (const perf::HpcSample& w : windows)
    flat.insert(flat.end(), w.counts.begin(), w.counts.end());
  core::OnlineDetector rescan(model, policy);
  std::string batch_timeline;
  for (const auto& v :
       rescan.score_windows(flat, windows.front().counts.size(),
                            &global_pool()))
    batch_timeline += v.flagged ? '!' : '.';
  if (batch_timeline != timeline)
    std::cout << "  WARNING: batched re-scan diverged from streaming!\n";
  if (monitor.alarmed())
    std::cout << format("  ALARM raised at t=%.0f ms "
                        "(%zu consecutive malicious windows)\n",
                        (monitor.alarm_window() + 1) * 10.0,
                        policy.confirm_windows);
  else
    std::cout << "  no alarm\n";
}

}  // namespace

int main() {
  using namespace hmd;

  // Train the runtime detector offline.
  core::PipelineConfig config = core::PipelineConfig::quick(0.08, 8);
  core::DatasetBuilder builder(config);
  std::cout << "training runtime detector...\n";
  const ml::Dataset binary =
      core::DatasetBuilder::to_binary(builder.build_multiclass_dataset());
  Rng rng(5);
  auto [train, test] = binary.stratified_split(0.7, rng);
  const core::TrainedModel detector =
      core::train_and_evaluate("MLP", train, test);
  std::cout << format("offline test accuracy: %.1f%%\n",
                      detector.evaluation.accuracy() * 100.0);

  // Ship the trained model the way a deployment would: serialize, then run
  // the monitor from the loaded copy (round-trips are exact).
  std::stringstream model_file;
  ml::save_model(model_file, *detector.model);
  const std::unique_ptr<ml::Classifier> deployed =
      ml::load_model(model_file);
  std::cout << "model serialized (" << model_file.str().size()
            << " bytes) and reloaded for deployment\n\n";

  // Monitor a benign program and one sample of each malware family for
  // 32 windows (320 ms of execution).
  perf::CollectorConfig monitor_cfg = config.collector;
  monitor_cfg.num_windows = 32;

  const auto programs = workload::SampleDatabase::generate(
      workload::DatabaseComposition{
          .counts = {{workload::AppClass::kBenign, 3},
                     {workload::AppClass::kBackdoor, 1},
                     {workload::AppClass::kRootkit, 1},
                     {workload::AppClass::kTrojan, 1},
                     {workload::AppClass::kVirus, 1},
                     {workload::AppClass::kWorm, 1}}},
      /*seed=*/4242);
  for (const auto& rec : programs.samples())
    monitor_program(*deployed, rec, monitor_cfg);

  return 0;
}
