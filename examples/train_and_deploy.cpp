// Train-and-deploy: the two-phase production workflow.
//
// Phase 1 (training infrastructure): collect a corpus, reduce features with
// PCA, train the detector, choose the alarm threshold from the ROC curve,
// and save everything as one deployment bundle.
//
// Phase 2 (the monitor, typically a different process/machine): load the
// bundle and watch programs — no training code, no corpus.
//
//   $ ./train_and_deploy
#include <algorithm>
#include <fstream>
#include <iostream>
#include <sstream>

#include "core/dataset_builder.hpp"
#include "core/deployment.hpp"
#include "core/detector.hpp"
#include "hwsim/core.hpp"
#include "ml/registry.hpp"
#include "ml/roc.hpp"
#include "perf/collector.hpp"
#include "util/strings.hpp"
#include "workload/sandbox.hpp"

int main() {
  using namespace hmd;
  const char* bundle_path = "hmd_detector.bundle";

  // ---------------- Phase 1: training infrastructure ----------------
  {
    core::PipelineConfig config = core::PipelineConfig::quick(0.08, 8);
    core::DatasetBuilder builder(config);
    std::cout << "[train] collecting corpus...\n";
    const ml::Dataset multi = builder.build_multiclass_dataset();
    const ml::Dataset binary = core::DatasetBuilder::to_binary(multi);
    Rng rng(31);
    auto [btrain, btest] = binary.stratified_split(0.7, rng);
    Rng rng2(32);
    auto [mtrain, mtest] = multi.stratified_split(0.7, rng2);
    (void)mtest;

    // PCA feature reduction: monitor only 8 of 16 counters — exactly one
    // PMU group, so deployment needs NO multiplexing.
    const core::FeatureReducer reducer(mtrain);
    const core::FeatureSet top8 = reducer.binary_top_features(8);
    std::cout << "[train] monitoring counters: " << join(top8.names, ", ")
              << '\n';

    auto model = ml::make_classifier("MLR");
    model->train(btrain.project(top8.indices));
    const auto eval = ml::evaluate(*model, btest.project(top8.indices));
    std::cout << format("[train] test accuracy: %.1f%%, AUC: %.3f\n",
                        eval.accuracy() * 100.0,
                        ml::auc_of(*model, btest.project(top8.indices)));

    // Alarm threshold from the ROC curve: a low-false-positive operating
    // point (rather than the prior-dominated 0.5 argmax).
    const auto curve = ml::roc_curve(*model, btest.project(top8.indices));
    double threshold = 0.97;
    for (const auto& p : curve) {
      if (p.false_positive_rate <= 0.05) threshold = p.threshold;
      else break;
    }
    threshold = std::clamp(threshold, 0.5, 0.999);
    std::cout << format("[train] alarm threshold %.3f (<=5%% window FPR)\n",
                        threshold);

    const core::DeploymentBundle bundle(
        std::move(model), top8,
        {.flag_threshold = threshold, .confirm_windows = 4});
    std::ofstream out(bundle_path);
    core::save_bundle(out, bundle);
    std::cout << "[train] wrote " << bundle_path << "\n\n";
  }

  // ---------------- Phase 2: the monitor ----------------
  {
    std::ifstream in(bundle_path);
    const core::DeploymentBundle bundle = core::load_bundle(in);
    std::cout << "[monitor] loaded bundle: " << bundle.model().name()
              << " over " << bundle.features().indices.size()
              << " counters\n";

    // Watch one benign program and one worm.
    const auto db = workload::SampleDatabase::generate(
        workload::DatabaseComposition{
            .counts = {{workload::AppClass::kBenign, 1},
                       {workload::AppClass::kWorm, 1}}},
        /*seed=*/555);
    perf::CollectorConfig monitor_cfg;
    monitor_cfg.num_windows = 24;
    monitor_cfg.ops_per_window = 3000;
    const perf::HpcCollector collector(monitor_cfg);

    for (const auto& rec : db.samples()) {
      workload::Sandbox sandbox(rec, {});
      hwsim::Core core(hwsim::CoreConfig{},
                       hwsim::MemoryHierarchy::miniature());
      const auto windows = collector.collect(core, sandbox, rec.seed);

      core::OnlineDetector monitor = bundle.make_monitor();
      std::string timeline;
      for (const auto& w : windows)
        timeline += bundle.observe_full(monitor, w.counts).flagged ? '!' : '.';
      std::cout << "[monitor] " << rec.id << " ("
                << workload::app_class_name(rec.label) << "): " << timeline
                << (monitor.alarmed()
                        ? format("  ALARM at t=%.0f ms",
                                 (monitor.alarm_window() + 1) * 10.0)
                        : "  clean")
                << '\n';
    }
  }
  return 0;
}
