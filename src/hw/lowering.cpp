#include "hw/lowering.hpp"

#include <algorithm>

#include "hw/compile.hpp"
#include "util/error.hpp"

namespace hmd::hw {

namespace {

/// Adds the feature inputs and returns their node ids.
std::vector<NodeId> add_inputs(DataflowGraph& g, std::size_t num_features) {
  HMD_REQUIRE(num_features > 0, "lowering: need at least one feature input");
  std::vector<NodeId> inputs(num_features);
  for (auto& id : inputs) id = g.add_input();
  return inputs;
}

/// Balanced binary reduction with `op` over `operands`.
NodeId reduce_tree(DataflowGraph& g, HwOp op, std::vector<NodeId> operands) {
  HMD_ASSERT(!operands.empty());
  while (operands.size() > 1) {
    std::vector<NodeId> next;
    next.reserve((operands.size() + 1) / 2);
    for (std::size_t i = 0; i + 1 < operands.size(); i += 2)
      next.push_back(g.add_node(op, {operands[i], operands[i + 1]}));
    if (operands.size() % 2 == 1) next.push_back(operands.back());
    operands = std::move(next);
  }
  return operands.front();
}

/// Argmax over `scores`: a balanced tree of compare+select stages.
NodeId argmax_tree(DataflowGraph& g, std::vector<NodeId> scores) {
  return reduce_tree(g, HwOp::kArgmaxStage, std::move(scores));
}

/// One dot product: parallel multipliers + adder reduction + bias add.
NodeId dot_product(DataflowGraph& g, const std::vector<NodeId>& inputs) {
  std::vector<NodeId> products;
  products.reserve(inputs.size());
  for (NodeId in : inputs) products.push_back(g.add_node(HwOp::kMul, {in}));
  const NodeId sum = reduce_tree(g, HwOp::kAdd, std::move(products));
  return g.add_node(HwOp::kAdd, {sum});  // + bias
}

}  // namespace

DataflowGraph lower_one_r(const ml::OneR& model, std::size_t num_features) {
  DataflowGraph g;
  const auto inputs = add_inputs(g, num_features);
  const NodeId x = inputs[model.chosen_feature()];
  const auto& intervals = model.intervals();
  // One comparator per internal boundary; priority mux chain selects the
  // first matching interval's class constant.
  std::vector<NodeId> comparators;
  for (std::size_t i = 0; i + 1 < intervals.size(); ++i)
    comparators.push_back(g.add_node(HwOp::kCompare, {x}));
  if (comparators.empty()) {
    // Single-interval rule: a constant output register.
    g.add_node(HwOp::kRegister, {x});
    return g;
  }
  NodeId selected = comparators.front();
  for (std::size_t i = 1; i < comparators.size(); ++i)
    selected = g.add_node(HwOp::kMux2, {comparators[i], selected});
  g.add_node(HwOp::kRegister, {selected});
  return g;
}

DataflowGraph lower_decision_stump(const ml::DecisionStump& model,
                                   std::size_t num_features) {
  DataflowGraph g;
  const auto inputs = add_inputs(g, num_features);
  const NodeId cmp =
      g.add_node(HwOp::kCompare, {inputs[model.split_feature()]});
  const NodeId mux = g.add_node(HwOp::kMux2, {cmp});
  g.add_node(HwOp::kRegister, {mux});
  return g;
}

namespace {
NodeId lower_j48_node(DataflowGraph& g, const ml::J48::Node& node,
                      const std::vector<NodeId>& inputs) {
  if (node.is_leaf()) return g.add_node(HwOp::kRegister, {});  // class const
  const NodeId cmp = g.add_node(HwOp::kCompare, {inputs[node.feature]});
  const NodeId left = lower_j48_node(g, *node.left, inputs);
  const NodeId right = lower_j48_node(g, *node.right, inputs);
  return g.add_node(HwOp::kMux2, {cmp, left, right});
}
}  // namespace

DataflowGraph lower_j48(const ml::J48& model, std::size_t num_features) {
  DataflowGraph g;
  const auto inputs = add_inputs(g, num_features);
  const NodeId out = lower_j48_node(g, model.root(), inputs);
  g.add_node(HwOp::kRegister, {out});
  return g;
}

DataflowGraph lower_jrip(const ml::JRip& model, std::size_t num_features) {
  DataflowGraph g;
  const auto inputs = add_inputs(g, num_features);
  std::vector<NodeId> rule_fires;
  for (const ml::JRip::Rule& rule : model.rules()) {
    std::vector<NodeId> conds;
    conds.reserve(rule.conditions.size());
    for (const ml::JRip::Condition& c : rule.conditions)
      conds.push_back(g.add_node(HwOp::kCompare, {inputs[c.feature]}));
    rule_fires.push_back(conds.empty()
                             ? g.add_node(HwOp::kAnd, {})
                             : reduce_tree(g, HwOp::kAnd, std::move(conds)));
  }
  if (rule_fires.empty()) {
    g.add_node(HwOp::kRegister, {});  // default-class constant
    return g;
  }
  // Priority selection down the ordered rule list.
  NodeId selected = g.add_node(HwOp::kMux2, {rule_fires.back()});
  for (std::size_t i = rule_fires.size() - 1; i-- > 0;)
    selected = g.add_node(HwOp::kMux2, {rule_fires[i], selected});
  g.add_node(HwOp::kRegister, {selected});
  return g;
}

DataflowGraph lower_naive_bayes(const ml::NaiveBayes& model,
                                std::size_t num_features) {
  HMD_REQUIRE(model.num_classes() >= 2, "lower_naive_bayes: untrained model");
  DataflowGraph g;
  const auto inputs = add_inputs(g, num_features);
  std::vector<NodeId> class_scores;
  for (std::size_t c = 0; c < model.num_classes(); ++c) {
    std::vector<NodeId> terms;
    terms.reserve(num_features);
    for (std::size_t f = 0; f < num_features; ++f) {
      const NodeId diff = g.add_node(HwOp::kAdd, {inputs[f]});   // x - mu
      const NodeId sq = g.add_node(HwOp::kMul, {diff, diff});    // (x-mu)^2
      terms.push_back(g.add_node(HwOp::kMul, {sq}));             // / 2sigma^2
    }
    const NodeId sum = reduce_tree(g, HwOp::kAdd, std::move(terms));
    class_scores.push_back(g.add_node(HwOp::kAdd, {sum}));  // + log prior
  }
  g.add_node(HwOp::kRegister, {argmax_tree(g, std::move(class_scores))});
  return g;
}

DataflowGraph lower_linear_bank(std::size_t num_features,
                                std::size_t num_classes) {
  HMD_REQUIRE(num_classes >= 2, "lower_linear_bank: need >= 2 classes");
  DataflowGraph g;
  const auto inputs = add_inputs(g, num_features);
  if (num_classes == 2) {
    // One hyperplane; the sign comparator is the decision.
    const NodeId score = dot_product(g, inputs);
    const NodeId sign = g.add_node(HwOp::kCompare, {score});
    g.add_node(HwOp::kRegister, {sign});
    return g;
  }
  std::vector<NodeId> scores;
  scores.reserve(num_classes);
  for (std::size_t c = 0; c < num_classes; ++c)
    scores.push_back(dot_product(g, inputs));
  g.add_node(HwOp::kRegister, {argmax_tree(g, std::move(scores))});
  return g;
}

DataflowGraph lower_mlp(const ml::Mlp& model, std::size_t num_features) {
  HMD_REQUIRE(model.hidden_units() > 0, "lower_mlp: untrained model");
  DataflowGraph g;
  const auto inputs = add_inputs(g, num_features);
  std::vector<NodeId> hidden;
  hidden.reserve(model.hidden_units());
  for (std::size_t h = 0; h < model.hidden_units(); ++h) {
    const NodeId pre = dot_product(g, inputs);
    hidden.push_back(g.add_node(HwOp::kSigmoidLut, {pre}));
  }
  std::vector<NodeId> scores;
  scores.reserve(model.num_classes());
  for (std::size_t c = 0; c < model.num_classes(); ++c)
    scores.push_back(dot_product(g, hidden));
  g.add_node(HwOp::kRegister, {argmax_tree(g, std::move(scores))});
  return g;
}

DataflowGraph lower_classifier(const ml::Classifier& wrapped,
                               std::size_t num_features) {
  const ml::Classifier& clf = wrapped.unwrap();
  if (const auto* m = dynamic_cast<const ml::OneR*>(&clf))
    return lower_one_r(*m, num_features);
  if (const auto* m = dynamic_cast<const ml::DecisionStump*>(&clf))
    return lower_decision_stump(*m, num_features);
  if (const auto* m = dynamic_cast<const ml::J48*>(&clf))
    return lower_j48(*m, num_features);
  if (const auto* m = dynamic_cast<const ml::JRip*>(&clf))
    return lower_jrip(*m, num_features);
  if (const auto* m = dynamic_cast<const ml::NaiveBayes*>(&clf))
    return lower_naive_bayes(*m, num_features);
  if (const auto* m = dynamic_cast<const ml::Logistic*>(&clf))
    return lower_linear_bank(num_features, m->num_classes());
  if (const auto* m = dynamic_cast<const ml::LinearSvm*>(&clf))
    return lower_linear_bank(num_features, m->num_classes());
  if (const auto* m = dynamic_cast<const ml::Mlp*>(&clf))
    return lower_mlp(*m, num_features);
  throw PreconditionError("no hardware lowering for classifier " + clf.name());
}

SynthesisReport synthesize_classifier(const ml::Classifier& clf,
                                      std::size_t num_features,
                                      const SynthesisOptions& options) {
  // Resource-constrained scheduling still runs the analytic estimator
  // (the netlist models fully-unrolled datapaths only); everything else
  // reports numbers measured from the compiled netlist.
  if (options.allocation.has_value()) {
    const DataflowGraph g = lower_classifier(clf, num_features);
    return synthesize(g, clf.name(), options);
  }
  CompileOptions copts;
  copts.num_features = num_features;
  copts.clock_mhz = options.clock_mhz;
  copts.inferences_per_second = options.inferences_per_second;
  return compile(clf, std::move(copts)).report();
}

}  // namespace hmd::hw
