#include "hw/verilog_backend.hpp"

#include <cstdint>
#include <sstream>

#include "hw/compile.hpp"
#include "util/error.hpp"
#include "util/strings.hpp"

namespace hmd::hw {

namespace {

/// 64-bit signed Verilog literal.
std::string s64(std::int64_t v) {
  if (v < 0) return format("-64'sd%lld", -static_cast<long long>(v));
  return format("64'sd%lld", static_cast<long long>(v));
}

std::string class_const(std::size_t cls, std::size_t bits) {
  return format("%zu'd%zu", bits, cls);
}

std::string net(NetId id) { return format("n%u", id); }

/// Declaration for a net of `type` (argmax/LUT nets get their own regs).
std::string wire_decl(const Netlist& nl, NetType type) {
  switch (type) {
    case NetType::kBit: return "wire ";
    case NetType::kClass:
      return format("wire [%zu:0] ", nl.class_bits() - 1);
    case NetType::kQ16:
    case NetType::kWide: break;
  }
  return "wire signed [63:0] ";
}

void emit_node(std::ostringstream& os, const Netlist& nl, NetId id) {
  const NetNode& n = nl.node(id);
  const std::size_t cb = nl.class_bits();
  switch (n.op) {
    case NetOp::kInput:
      os << "  " << wire_decl(nl, n.type) << net(id) << " = {{32{f"
         << n.index << "[31]}}, f" << n.index << "};\n";
      break;
    case NetOp::kConst:
      if (n.type == NetType::kBit)
        os << "  wire " << net(id) << " = 1'b" << n.value << ";\n";
      else if (n.type == NetType::kClass)
        os << "  " << wire_decl(nl, n.type) << net(id) << " = "
           << class_const(static_cast<std::size_t>(n.value), cb) << ";\n";
      else
        os << "  " << wire_decl(nl, n.type) << net(id) << " = "
           << s64(n.value) << ";\n";
      break;
    case NetOp::kCmpLe:
      os << "  wire " << net(id) << " = " << net(n.args[0])
         << " <= " << net(n.args[1]) << ";\n";
      break;
    case NetOp::kCmpGt:
      os << "  wire " << net(id) << " = " << net(n.args[0]) << " > "
         << net(n.args[1]) << ";\n";
      break;
    case NetOp::kMux:
      os << "  " << wire_decl(nl, n.type) << net(id) << " = "
         << net(n.args[0]) << " ? " << net(n.args[1]) << " : "
         << net(n.args[2]) << ";\n";
      break;
    case NetOp::kAdd:
      os << "  " << wire_decl(nl, n.type) << net(id) << " = "
         << net(n.args[0]) << " + " << net(n.args[1]) << ";\n";
      break;
    case NetOp::kMul:
      // Full 128-bit product, then the arithmetic shift back onto the
      // Q48.16 grid — never loses high bits before the shift.
      os << "  wire signed [127:0] prod" << id << " = " << net(n.args[0])
         << " * " << net(n.args[1]) << ";\n";
      os << "  " << wire_decl(nl, n.type) << net(id) << " = prod" << id
         << " >>> " << n.value << ";\n";
      break;
    case NetOp::kAndReduce: {
      os << "  wire " << net(id) << " = ";
      for (std::size_t i = 0; i < n.args.size(); ++i) {
        if (i) os << " && ";
        os << net(n.args[i]);
      }
      os << ";\n";
      break;
    }
    case NetOp::kArgmax: {
      os << "  // argmax chain (first strict maximum wins)\n";
      os << "  reg [" << cb - 1 << ":0] amax" << id << ";\n";
      os << "  reg signed [63:0] aval" << id << ";\n";
      os << "  always @(*) begin\n";
      os << "    amax" << id << " = " << class_const(0, cb) << ";\n";
      os << "    aval" << id << " = " << net(n.args[0]) << ";\n";
      for (std::size_t i = 1; i < n.args.size(); ++i) {
        os << "    if (" << net(n.args[i]) << " > aval" << id
           << ") begin\n";
        os << "      amax" << id << " = " << class_const(i, cb) << ";\n";
        os << "      aval" << id << " = " << net(n.args[i]) << ";\n";
        os << "    end\n";
      }
      os << "  end\n";
      os << "  " << wire_decl(nl, n.type) << net(id) << " = amax" << id
         << ";\n";
      break;
    }
    case NetOp::kLutRom: {
      const LutRom& rom = nl.luts()[n.index];
      const std::size_t last = rom.values.size() - 1;
      os << "  wire signed [63:0] loff" << id << " = (" << net(n.args[0])
         << " - " << s64(rom.lo_raw) << ") >>> " << rom.step_shift << ";\n";
      os << "  reg signed [63:0] lval" << id << ";\n";
      os << "  always @(*) begin  // saturating ROM lookup\n";
      os << "    if (loff" << id << " < 0) lval" << id << " = rom"
         << n.index << "[0];\n";
      os << "    else if (loff" << id << " > " << s64(static_cast<std::int64_t>(last))
         << ") lval" << id << " = rom" << n.index << "[" << last << "];\n";
      os << "    else lval" << id << " = rom" << n.index << "[loff" << id
         << "[15:0]];\n";
      os << "  end\n";
      os << "  " << wire_decl(nl, n.type) << net(id) << " = lval" << id
         << ";\n";
      break;
    }
    case NetOp::kOutput:
      os << "\n  wire [" << cb - 1 << ":0] decision = " << net(n.args[0])
         << ";\n";
      break;
    case NetOp::kCount:
      HMD_REQUIRE(false, "VerilogBackend: invalid op");
  }
}

}  // namespace

std::string VerilogBackend::emit(const CompiledDesign& design) const {
  const Netlist& nl = design.netlist();
  HMD_REQUIRE(nl.has_output(), "VerilogBackend: design has no output net");
  const std::size_t cb = nl.class_bits();

  std::ostringstream os;
  os << "// Generated by hmdetect: hardware malware detector RTL.\n";
  os << "// Inputs are Q16.16 fixed-point HPC window counts.\n";
  os << "// Scheme: " << design.scheme() << " — " << nl.num_nodes()
     << " nets from the hw::compile() netlist IR.\n";
  os << "module " << design.module_name() << " (\n";
  os << "    input  wire clk,\n";
  os << "    input  wire rst,\n";
  os << "    input  wire valid_in,\n";
  for (std::size_t f = 0; f < nl.num_features(); ++f)
    os << "    input  wire signed [31:0] f" << f << ",\n";
  os << "    output reg  [" << cb - 1 << ":0] class_out,\n";
  os << "    output reg  valid_out\n";
  os << ");\n\n";

  for (std::size_t t = 0; t < nl.luts().size(); ++t) {
    const LutRom& rom = nl.luts()[t];
    os << "  // "
       << (rom.kind == LutRom::Kind::kSigmoid ? "sigmoid" : "Gaussian")
       << " ROM " << t << " (" << rom.values.size() << " entries)\n";
    os << "  reg signed [63:0] rom" << t << " [0:" << rom.values.size() - 1
       << "];\n";
    os << "  initial begin\n";
    for (std::size_t i = 0; i < rom.values.size(); ++i)
      os << "    rom" << t << "[" << i << "] = " << s64(rom.values[i])
         << ";\n";
    os << "  end\n";
  }
  if (!nl.luts().empty()) os << "\n";

  for (NetId id = 0; id < nl.num_nodes(); ++id) emit_node(os, nl, id);

  os << "\n  always @(posedge clk) begin\n";
  os << "    if (rst) begin\n";
  os << "      class_out <= " << cb << "'d0;\n";
  os << "      valid_out <= 1'b0;\n";
  os << "    end else begin\n";
  os << "      class_out <= decision;\n";
  os << "      valid_out <= valid_in;\n";
  os << "    end\n";
  os << "  end\n\n";
  os << "endmodule\n";
  return os.str();
}

std::string VerilogBackend::emit_testbench(const CompiledDesign& design,
                                           const ml::Dataset& test,
                                           std::size_t num_vectors) const {
  const std::vector<TestVector> vectors =
      testbench_vectors(design, test, num_vectors);
  const std::size_t d = design.num_features();
  const std::size_t cb = design.netlist().class_bits();
  const std::string& module_name = design.module_name();

  std::ostringstream os;
  os << "// Self-checking testbench for " << module_name << ".\n";
  os << "// Expected values are the netlist simulator's decisions on the\n";
  os << "// shared Q16.16 input grid (hw/netlist.hpp).\n";
  os << "`timescale 1ns/1ps\n";
  os << "module " << module_name << "_tb;\n";
  os << "  reg clk = 0, rst = 1, valid_in = 0;\n";
  for (std::size_t f = 0; f < d; ++f)
    os << "  reg signed [31:0] f" << f << ";\n";
  os << "  wire [" << cb - 1 << ":0] class_out;\n";
  os << "  wire valid_out;\n";
  os << "  integer errors = 0;\n\n";
  os << "  " << module_name << " dut (.clk(clk), .rst(rst),"
     << " .valid_in(valid_in),\n";
  for (std::size_t f = 0; f < d; ++f)
    os << "    .f" << f << "(f" << f << "),\n";
  os << "    .class_out(class_out), .valid_out(valid_out));\n\n";
  os << "  always #5 clk = ~clk;\n\n";
  os << "  task check;\n";
  os << "    input [" << cb - 1 << ":0] expected;\n";
  os << "    begin\n";
  os << "      @(posedge clk); #1;\n";
  os << "      if (class_out !== expected) begin\n";
  os << "        $display(\"FAIL: got %0d expected %0d\", class_out, "
     << "expected);\n";
  os << "        errors = errors + 1;\n";
  os << "      end\n";
  os << "    end\n";
  os << "  endtask\n\n";
  os << "  initial begin\n";
  os << "    @(posedge clk); rst = 0; valid_in = 1;\n";
  for (const TestVector& v : vectors) {
    os << "    ";
    for (std::size_t f = 0; f < d; ++f) {
      HMD_REQUIRE(v.raws[f] >= INT32_MIN && v.raws[f] <= INT32_MAX,
                  "testbench: port raw overflows 32 bits");
      const long long raw = static_cast<long long>(v.raws[f]);
      os << "f" << f << " = "
         << (raw < 0 ? format("-32'sd%lld", -raw) : format("32'sd%lld", raw))
         << "; ";
    }
    os << "\n    check(" << class_const(v.expected, cb) << ");\n";
  }
  os << "    if (errors == 0) $display(\"PASS: " << vectors.size()
     << " vectors\");\n";
  os << "    else $display(\"FAIL: %0d of " << vectors.size()
     << " vectors\", errors);\n";
  os << "    $finish;\n";
  os << "  end\n";
  os << "endmodule\n";
  return os.str();
}

}  // namespace hmd::hw
