// Verilog-2001 backend over the netlist IR: each net renders as one
// continuous assignment (compares, muxes, adds, 128-bit-intermediate
// multiplies) or one always block (argmax chains, LUT-ROM lookups), with
// the same module shell the legacy emitter produced:
//
//   module <name> (
//     input  wire clk, rst, valid_in,
//     input  wire signed [31:0] f0 .. f<d-1>,   // Q16.16 port raws
//     output reg  [<ceil(log2 k)>-1:0] class_out,
//     output reg  valid_out
//   );
//
// Combinational datapath, one output register stage. The legacy per-scheme
// emit_verilog() overloads in hw/rtl_emitter.hpp are deprecated wrappers
// over compile() + this backend.
#pragma once

#include "hw/backend.hpp"

namespace hmd::hw {

class VerilogBackend final : public Backend {
 public:
  std::string_view name() const override { return "verilog"; }
  std::string_view file_extension() const override { return ".v"; }
  std::string emit(const CompiledDesign& design) const override;
  std::string emit_testbench(const CompiledDesign& design,
                             const ml::Dataset& test,
                             std::size_t num_vectors) const override;
};

}  // namespace hmd::hw
