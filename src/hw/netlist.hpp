// Netlist IR: the shared hardware representation behind hw::compile().
//
// Lowering a trained classifier produces one Netlist — a DAG of typed nets
// over a deliberately small op set (const / compare / mux / add / mul /
// and-reduce / argmax / LUT-ROM) with Q16.16 fixed-point semantics. Every
// consumer walks the same IR:
//
//   VerilogBackend / VhdlBackend  (hw/verilog_backend.hpp, vhdl_backend.hpp)
//       render each net as one RTL statement, so both languages are
//       emitted from identical structure (the Icarus tgt-vhdl split);
//   NetlistSimulator              (hw/netlist_sim.hpp)
//       executes the nets in topological order over int64 raws, measuring
//       latency from the per-node pipeline annotations below;
//   CompiledDesign::report()      (hw/compile.hpp)
//       prices the nets with the hw/resource.hpp operator library.
//
// The Q16.16 input-grid helpers at the top of this header are the single
// source of truth for how raw feature values quantize onto the hardware
// grid. ml::QuantizedModel (the q16 serving tier), hw/fixed_point_eval,
// the RTL testbenches and the simulator all share them, so the grids
// cannot drift apart:
//
//   scale   = q16_input_scale(absmax)        per-feature pre-scale
//   raw     = quantize_input_raw(x, scale)   what the input port carries
//   x_q     = quantize_input(x, scale)       what the float model sees
//   raw <= threshold_raw(t, scale)  <=>  x_q <= t       (exactly)
//   raw >  threshold_raw(t, scale)  <=>  x_q >  t       (exactly)
//
// The floor in threshold_raw (NOT round-to-nearest) is what makes the two
// equivalences exact, which in turn makes the compiled tree/rule netlists
// bit-identical to hw/evaluate_fixed_point.
#pragma once

#include <cstdint>
#include <string_view>
#include <vector>

#include "hw/resource.hpp"

namespace hmd::hw {

// ---------------------------------------------------------------------------
// Shared Q16.16 input-grid helpers.

/// Nearest Q16.16 raw for `v` (llround); throws on overflow/non-finite.
std::int64_t q16_raw(double v);

/// The double a Q16.16 raw denotes: raw / 2^16.
double q16_value(std::int64_t raw);

/// Per-feature pre-scale for a magnitude bound: values stay within ±2^14
/// so Q16.16 products remain representable — the identical rule
/// ml::QuantizedModel applies (absmax is clamped to >= 1e-12 first).
double q16_input_scale(double absmax);

/// The raw integer an input port carries for feature value `x`.
std::int64_t quantize_input_raw(double x, double scale);

/// The quantized feature value the float reference model sees — exactly
/// ml::QuantizedModel's grid: quantize_q16(x*scale)/scale.
double quantize_input(double x, double scale);

/// Threshold constant with floor semantics: the largest raw satisfying
/// raw/2^16/scale <= t, so integer compares against it reproduce the float
/// compare on the quantized grid exactly (see header comment).
std::int64_t threshold_raw(double t, double scale);

// ---------------------------------------------------------------------------
// The IR.

/// Net handle (index into Netlist::node()).
using NetId = std::uint32_t;

/// Value domain of a net.
enum class NetType : std::uint8_t {
  kBit,    ///< 1-bit predicate
  kQ16,    ///< Q16.16 in a 32-bit port word (inputs, LUT outputs)
  kWide,   ///< Q48.16 in a 64-bit word (scores, products, sums)
  kClass,  ///< class label, ceil(log2 k) bits
};

/// The op set. Arithmetic evaluates over int64 raws; kMul uses a 128-bit
/// intermediate then an arithmetic right shift by NetNode::value bits.
enum class NetOp : std::uint8_t {
  kInput,      ///< feature port (NetNode::index), kQ16
  kConst,      ///< literal raw (NetNode::value)
  kCmpLe,      ///< args[0] <= args[1], kBit
  kCmpGt,      ///< args[0] >  args[1], kBit
  kMux,        ///< args[0] ? args[1] : args[2]
  kAdd,        ///< args[0] + args[1], kWide
  kMul,        ///< (args[0] * args[1]) >> value, kWide
  kAndReduce,  ///< AND over all args, kBit
  kArgmax,     ///< index of the first maximum of args (strict >), kClass
  kLutRom,     ///< luts()[index] addressed by args[0], kWide
  kOutput,     ///< registered output stage over args[0] (kClass)
  kCount
};

std::string_view net_op_name(NetOp op);

/// One net: the op that drives it plus its operand nets.
struct NetNode {
  NetOp op = NetOp::kConst;
  NetType type = NetType::kQ16;
  std::vector<NetId> args;
  std::int64_t value = 0;    ///< kConst: raw literal; kMul: shift amount
  std::uint32_t index = 0;   ///< kInput: feature; kLutRom: table id
};

/// A baked ROM: entry i covers raw addresses
/// [lo_raw + (i << step_shift), lo_raw + ((i+1) << step_shift)); addresses
/// outside the domain clamp to the first/last entry (saturating lookup).
struct LutRom {
  enum class Kind : std::uint8_t { kSigmoid, kGaussian };
  Kind kind = Kind::kSigmoid;
  std::int64_t lo_raw = 0;
  std::uint32_t step_shift = 0;
  std::vector<std::int64_t> values;  ///< Q48.16 raw outputs, power-of-two size
};

/// The DAG. Built by hw::compile()'s scheme lowerings; immutable afterwards.
/// Builder methods validate operand existence and types, so a Netlist that
/// constructed successfully is well-formed by construction.
class Netlist {
 public:
  Netlist(std::size_t num_features, std::size_t num_classes);

  // -- builders -------------------------------------------------------------
  NetId input(std::uint32_t feature);
  NetId constant(NetType type, std::int64_t raw);
  /// Class-label literal (validated against num_classes).
  NetId class_constant(std::size_t cls);
  NetId cmp_le(NetId a, NetId b);
  NetId cmp_gt(NetId a, NetId b);
  NetId mux(NetId sel, NetId a, NetId b);
  NetId add(NetId a, NetId b);
  /// (a * b) >> shift with a 128-bit intermediate product.
  NetId mul(NetId a, NetId b, std::uint32_t shift);
  NetId and_reduce(std::vector<NetId> args);
  NetId argmax(std::vector<NetId> args);
  std::uint32_t add_lut(LutRom table);
  NetId lut_rom(std::uint32_t table, NetId addr);
  /// Registers `decision` (a kClass net) as the module output; required
  /// exactly once.
  void set_output(NetId decision);

  // -- queries --------------------------------------------------------------
  std::size_t num_features() const { return num_features_; }
  std::size_t num_classes() const { return num_classes_; }
  /// ceil(log2 num_classes), >= 1 — the class_out port width.
  std::size_t class_bits() const;
  std::size_t num_nodes() const { return nodes_.size(); }
  const NetNode& node(NetId id) const;
  const std::vector<NetNode>& nodes() const { return nodes_; }
  const std::vector<LutRom>& luts() const { return luts_; }
  bool has_output() const { return output_valid_; }
  NetId output() const;
  /// Count of nets driven by `op`.
  std::size_t count_ops(NetOp op) const;

  // -- cost annotations (hw/resource.hpp operator library) ------------------
  /// Resources one net instantiates (n-ary reductions cost n-1 stages).
  ResourceCost node_cost(NetId id) const;
  /// Pipeline latency of one net in cycles (n-ary reductions are balanced
  /// trees: ceil(log2 n) stages).
  std::uint32_t node_latency(NetId id) const;
  /// Per-net dynamic energy (pJ) for one window.
  double node_energy_pj(NetId id) const;
  ResourceCost total_resources() const;
  double total_energy_pj() const;

 private:
  NetId push(NetNode node);
  const NetNode& operand(NetId id) const;
  void require_arith(NetId id) const;

  std::size_t num_features_;
  std::size_t num_classes_;
  std::vector<NetNode> nodes_;
  std::vector<LutRom> luts_;
  NetId output_ = 0;
  bool output_valid_ = false;
};

}  // namespace hmd::hw
