#include "hw/dataflow.hpp"

#include <algorithm>
#include <queue>

#include "util/error.hpp"

namespace hmd::hw {

NodeId DataflowGraph::add_input() {
  nodes_.push_back({.is_input = true, .op = HwOp::kAdd, .deps = {}});
  return static_cast<NodeId>(nodes_.size() - 1);
}

NodeId DataflowGraph::add_node(HwOp op, std::vector<NodeId> deps) {
  for (NodeId d : deps)
    HMD_REQUIRE(d < nodes_.size(), "dataflow: dependency on unknown node");
  nodes_.push_back({.is_input = false, .op = op, .deps = std::move(deps)});
  return static_cast<NodeId>(nodes_.size() - 1);
}

const DataflowNode& DataflowGraph::node(NodeId id) const {
  HMD_REQUIRE(id < nodes_.size(), "dataflow: node id out of range");
  return nodes_[id];
}

std::size_t DataflowGraph::count_ops(HwOp op) const {
  std::size_t n = 0;
  for (const DataflowNode& node : nodes_)
    if (!node.is_input && node.op == op) ++n;
  return n;
}

std::size_t DataflowGraph::num_ops() const {
  std::size_t n = 0;
  for (const DataflowNode& node : nodes_)
    if (!node.is_input) ++n;
  return n;
}

ResourceCost DataflowGraph::total_resources() const {
  ResourceCost total;
  for (const DataflowNode& node : nodes_)
    if (!node.is_input) total += hw_op_cost(node.op);
  return total;
}

double DataflowGraph::total_energy_pj() const {
  double total = 0.0;
  for (const DataflowNode& node : nodes_)
    if (!node.is_input) total += hw_op_energy_pj(node.op);
  return total;
}

Schedule DataflowGraph::schedule_asap() const {
  Schedule sched;
  sched.start_cycle.assign(nodes_.size(), 0);
  std::uint32_t makespan = 0;
  // Nodes are appended in topological order by construction (deps must
  // already exist), so one forward pass suffices.
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    const DataflowNode& n = nodes_[i];
    std::uint32_t ready = 0;
    for (NodeId d : n.deps) {
      const DataflowNode& dep = nodes_[d];
      const std::uint32_t done =
          sched.start_cycle[d] + (dep.is_input ? 0 : hw_op_latency(dep.op));
      ready = std::max(ready, done);
    }
    sched.start_cycle[i] = ready;
    if (!n.is_input)
      makespan = std::max(makespan, ready + hw_op_latency(n.op));
  }
  sched.latency_cycles = makespan;
  return sched;
}

namespace {

enum class Pool : std::uint8_t { kMul, kAdd, kCmp, kUnlimited };

Pool pool_of(HwOp op) {
  switch (op) {
    case HwOp::kMul:
    case HwOp::kMac:
      return Pool::kMul;
    case HwOp::kAdd:
      return Pool::kAdd;
    case HwOp::kCompare:
    case HwOp::kArgmaxStage:
      return Pool::kCmp;
    default:
      return Pool::kUnlimited;
  }
}

}  // namespace

Schedule DataflowGraph::schedule_constrained(
    const OperatorAllocation& alloc) const {
  Schedule sched;
  sched.start_cycle.assign(nodes_.size(), 0);

  // Remaining-dependency counts and ready list.
  std::vector<std::uint32_t> pending(nodes_.size(), 0);
  std::vector<std::vector<NodeId>> dependents(nodes_.size());
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    pending[i] = static_cast<std::uint32_t>(nodes_[i].deps.size());
    for (NodeId d : nodes_[i].deps)
      dependents[d].push_back(static_cast<NodeId>(i));
  }

  // ready_at[i]: earliest cycle node i's operands are available.
  std::vector<std::uint32_t> ready_at(nodes_.size(), 0);
  // Min-heap of (ready cycle, node).
  using Item = std::pair<std::uint32_t, NodeId>;
  std::priority_queue<Item, std::vector<Item>, std::greater<>> ready;
  for (std::size_t i = 0; i < nodes_.size(); ++i)
    if (pending[i] == 0) ready.emplace(0, static_cast<NodeId>(i));

  auto pool_capacity = [&](Pool p) -> std::optional<std::uint32_t> {
    switch (p) {
      case Pool::kMul: return alloc.multipliers;
      case Pool::kAdd: return alloc.adders;
      case Pool::kCmp: return alloc.comparators;
      case Pool::kUnlimited: return std::nullopt;
    }
    return std::nullopt;
  };
  // busy_until[pool] holds, per physical operator instance, the cycle at
  // which it frees up (pipelining is conservative: one op per instance at a
  // time — an upper bound on latency, which is what sharing costs).
  std::vector<std::vector<std::uint32_t>> busy_until(3);

  std::uint32_t makespan = 0;
  while (!ready.empty()) {
    auto [cycle, id] = ready.top();
    ready.pop();
    const DataflowNode& n = nodes_[id];
    std::uint32_t start = std::max(cycle, ready_at[id]);

    if (!n.is_input) {
      const Pool p = pool_of(n.op);
      const auto cap = pool_capacity(p);
      if (cap.has_value()) {
        HMD_REQUIRE(*cap > 0, "operator allocation must be positive");
        auto& pool = busy_until[static_cast<std::size_t>(p)];
        if (pool.size() < *cap) {
          pool.push_back(0);
        }
        // Pick the instance that frees earliest.
        auto it = std::min_element(pool.begin(), pool.end());
        start = std::max(start, *it);
        *it = start + hw_op_latency(n.op);
      }
    }

    sched.start_cycle[id] = start;
    const std::uint32_t done =
        start + (n.is_input ? 0 : hw_op_latency(n.op));
    makespan = std::max(makespan, done);
    for (NodeId dep : dependents[id]) {
      ready_at[dep] = std::max(ready_at[dep], done);
      if (--pending[dep] == 0) ready.emplace(ready_at[dep], dep);
    }
  }
  sched.latency_cycles = makespan;
  return sched;
}

}  // namespace hmd::hw
