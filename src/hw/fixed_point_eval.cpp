#include "hw/fixed_point_eval.hpp"

#include <algorithm>
#include <cmath>

#include "util/error.hpp"
#include "util/fixed_point.hpp"
#include "util/trace.hpp"

namespace hmd::hw {

ml::EvaluationReport evaluate_fixed_point(const ml::Classifier& clf,
                                          const ml::Dataset& test) {
  HMD_REQUIRE(!test.empty(), "evaluate_fixed_point: empty test set");
  // Per-feature scale so magnitudes fit the Q16.16 integer range; the same
  // static scaling a hardware front-end would apply to raw counter values.
  const std::size_t d = test.num_features();
  std::vector<double> scale(d, 1.0);
  for (std::size_t f = 0; f < d; ++f) {
    double mx = 0.0;
    for (std::size_t i = 0; i < test.num_instances(); ++i)
      mx = std::max(mx, std::abs(test.features_of(i)[f]));
    // Keep values within +-2^14 so products stay representable.
    if (mx > 16000.0) scale[f] = 16000.0 / mx;
  }

  ml::EvaluationReport report;
  report.scheme = "fixed_point/" + clf.name();
  report.result = ml::EvaluationResult(test.num_classes(),
                                       test.class_attribute().values());
  TraceSpan timer("");
  std::vector<double> quantized(d);
  for (std::size_t i = 0; i < test.num_instances(); ++i) {
    const auto x = test.features_of(i);
    for (std::size_t f = 0; f < d; ++f)
      quantized[f] = quantize_q16(x[f] * scale[f]) / scale[f];
    report.record(test.class_of(i), clf.predict(quantized));
  }
  report.predict_seconds = timer.elapsed_seconds();
  return report;
}

}  // namespace hmd::hw
