#include "hw/fixed_point_eval.hpp"

#include <algorithm>
#include <cmath>
#include <memory>

#include "ml/quantized.hpp"
#include "util/error.hpp"
#include "util/trace.hpp"

namespace hmd::hw {

std::vector<double> calibrate_feature_absmax(const ml::Dataset& test) {
  // Per-feature magnitude calibration so scaled values fit the Q16.16
  // integer range — the same static scaling a hardware front-end would
  // apply to raw counter values.
  HMD_REQUIRE(!test.empty(), "calibrate_feature_absmax: empty test set");
  const std::size_t d = test.num_features();
  std::vector<double> absmax(d, 0.0);
  for (std::size_t f = 0; f < d; ++f)
    for (std::size_t i = 0; i < test.num_instances(); ++i)
      absmax[f] = std::max(absmax[f], std::abs(test.features_of(i)[f]));
  return absmax;
}

ml::EvaluationReport evaluate_fixed_point(const ml::Classifier& clf,
                                          const ml::Dataset& test) {
  HMD_REQUIRE(!test.empty(), "evaluate_fixed_point: empty test set");
  const std::vector<double> absmax = calibrate_feature_absmax(test);
  // The Q16 serving tier (ml::QuantizedModel) implements this exact input
  // quantization; routing the reference harness through it keeps the two
  // pinned together (tests/hw assert bit-identical verdicts).
  const ml::QuantizedModel q16(
      std::shared_ptr<const ml::Classifier>(std::shared_ptr<void>(), &clf),
      ml::QuantizedModel::Mode::kQ16Input, absmax);

  ml::EvaluationReport report;
  report.scheme = "fixed_point/" + clf.name();
  report.result = ml::EvaluationResult(test.num_classes(),
                                       test.class_attribute().values());
  TraceSpan timer("");
  for (std::size_t i = 0; i < test.num_instances(); ++i)
    report.record(test.class_of(i), q16.predict(test.features_of(i)));
  report.predict_seconds = timer.elapsed_seconds();
  return report;
}

}  // namespace hmd::hw
