#include "hw/netlist_model.hpp"

#include "util/error.hpp"

namespace hmd::hw {

NetlistClassifier::NetlistClassifier(const ml::Classifier& clf,
                                     CompileOptions options)
    : design_(compile(clf, std::move(options))), sim_(design_) {}

NetlistClassifier::NetlistClassifier(CompiledDesign design)
    : design_(std::move(design)), sim_(design_) {}

void NetlistClassifier::train(const ml::DatasetView&) {
  HMD_REQUIRE(false,
              "NetlistClassifier is predict-only: compile a trained model");
}

std::size_t NetlistClassifier::predict(
    std::span<const double> features) const {
  return sim_.run(features);
}

void NetlistClassifier::distribution_batch(std::span<const double> flat,
                                           std::size_t window_size,
                                           std::span<double> out) const {
  predict_one_hot_batch(flat, window_size, out);
}

std::string NetlistClassifier::name() const {
  return "fpga/" + design_.scheme();
}

std::size_t NetlistClassifier::num_classes() const {
  return design_.num_classes();
}

}  // namespace hmd::hw
