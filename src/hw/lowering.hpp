// Classifier → dataflow-graph lowering.
//
// Each trained model is compiled into the datapath a Vivado-HLS-style flow
// would emit for a fully-unrolled, single-inference-per-call implementation:
//
//   OneR          — parallel threshold comparators + a priority mux chain
//   DecisionStump — one comparator + one mux
//   J48           — one comparator per internal node; the mux tree mirrors
//                   the decision tree, so latency tracks tree depth
//   JRip          — one comparator per condition, AND-reduction per rule,
//                   priority mux chain over the ordered rule list
//   NaiveBayes    — per (class, feature): subtract + square + scale, adder
//                   reduction, prior add, argmax tree
//   MLR / SVM     — per class: parallel multipliers + adder reduction + bias;
//                   argmax tree (softmax is monotone, so the argmax decision
//                   needs no exponentiation in hardware)
//   MLP           — hidden layer of parallel dot products + sigmoid LUTs,
//                   output layer of dot products, argmax tree
//
// These shapes are what give the thesis its Figs. 14-16: rule/tree learners
// cost a few comparators while the MLP costs hundreds of DSP-mapped
// multipliers.
#pragma once

#include "hw/dataflow.hpp"
#include "hw/synthesis.hpp"
#include "ml/classifier.hpp"
#include "ml/decision_stump.hpp"
#include "ml/j48.hpp"
#include "ml/jrip.hpp"
#include "ml/logistic.hpp"
#include "ml/mlp.hpp"
#include "ml/naive_bayes.hpp"
#include "ml/one_r.hpp"
#include "ml/svm.hpp"

namespace hmd::hw {

DataflowGraph lower_one_r(const ml::OneR& model, std::size_t num_features);
DataflowGraph lower_decision_stump(const ml::DecisionStump& model,
                                   std::size_t num_features);
DataflowGraph lower_j48(const ml::J48& model, std::size_t num_features);
DataflowGraph lower_jrip(const ml::JRip& model, std::size_t num_features);
DataflowGraph lower_naive_bayes(const ml::NaiveBayes& model,
                                std::size_t num_features);
/// Shared by MLR and SVM: a bank of `num_classes` linear discriminants.
DataflowGraph lower_linear_bank(std::size_t num_features,
                                std::size_t num_classes);
DataflowGraph lower_mlp(const ml::Mlp& model, std::size_t num_features);

/// Dispatch on the concrete classifier type. Throws hmd::PreconditionError
/// for classifiers with no hardware lowering (e.g. IBk/ZeroR).
DataflowGraph lower_classifier(const ml::Classifier& clf,
                               std::size_t num_features);

/// DEPRECATED wrapper over the compiler pipeline: with no operator
/// allocation this is hw::compile(clf, ...).report() — latency measured
/// from the netlist simulator's critical path, area/energy summed from
/// instantiated nets. With options.allocation set it falls back to the
/// analytic lower + synthesize flow (resource-shared schedules have no
/// netlist form). Prefer hw::compile()/hw::try_compile() in new code.
SynthesisReport synthesize_classifier(const ml::Classifier& clf,
                                      std::size_t num_features,
                                      const SynthesisOptions& options = {});

}  // namespace hmd::hw
