#include "hw/compile.hpp"

#include <algorithm>
#include <cmath>
#include <numbers>

#include "hw/backend.hpp"
#include "hw/netlist_sim.hpp"
#include "ml/decision_stump.hpp"
#include "ml/j48.hpp"
#include "ml/jrip.hpp"
#include "ml/logistic.hpp"
#include "ml/mlp.hpp"
#include "ml/naive_bayes.hpp"
#include "ml/one_r.hpp"
#include "ml/svm.hpp"
#include "util/error.hpp"

namespace hmd::hw {

namespace {

/// Shared lowering state: the netlist under construction plus the input
/// grid (per-feature scales) every threshold/weight folds against.
struct LowerCtx {
  Netlist nl;
  const std::vector<double>& scales;

  NetId in(std::size_t f) { return nl.input(static_cast<std::uint32_t>(f)); }
  /// Threshold literal on feature f's grid (floor semantics — see
  /// netlist.hpp for why this makes integer compares exact).
  NetId th(std::size_t f, double t) {
    HMD_REQUIRE(f < scales.size(),
                "compile: model references feature beyond the port list");
    return nl.constant(NetType::kQ16, threshold_raw(t, scales[f]));
  }
  NetId cls(std::size_t c) { return nl.class_constant(c); }
};

/// Balanced adder tree over `terms` — exact regardless of shape (integer
/// addition is associative), minimal critical path.
NetId sum_tree(Netlist& nl, std::vector<NetId> terms) {
  HMD_REQUIRE(!terms.empty(), "sum_tree: no terms");
  while (terms.size() > 1) {
    std::vector<NetId> next;
    next.reserve(terms.size() / 2 + 1);
    for (std::size_t i = 0; i + 1 < terms.size(); i += 2)
      next.push_back(nl.add(terms[i], terms[i + 1]));
    if (terms.size() % 2 == 1) next.push_back(terms.back());
    terms = std::move(next);
  }
  return terms.front();
}

/// Extended-precision weight shift: the largest e (capped at 46) keeping
/// round(maxw * 2^e) within 2^30, so a product against a <= 2^30 input raw
/// stays under 2^61 — representable in the 64-bit RTL datapath.
std::uint32_t weight_shift(double max_abs_weight) {
  if (max_abs_weight <= 0.0) return 30;
  const double e = std::floor(30.0 - std::log2(max_abs_weight));
  HMD_REQUIRE(e >= 0.0, "weight magnitude overflows the Q16.16 datapath");
  return static_cast<std::uint32_t>(std::min(e, 46.0));
}

std::int64_t weight_raw(double w, std::uint32_t shift) {
  const double scaled = std::ldexp(w, static_cast<int>(shift));
  HMD_REQUIRE(std::isfinite(scaled) && std::abs(scaled) < 9.2e18,
              "weight overflows the fixed-point datapath");
  return static_cast<std::int64_t>(std::llround(scaled));
}

// -- scheme lowerings -------------------------------------------------------

void lower_net_one_r(LowerCtx& ctx, const ml::OneR& model) {
  const auto& intervals = model.intervals();
  HMD_REQUIRE(!intervals.empty(), "compile: OneR model is not trained");
  const std::size_t f = model.chosen_feature();
  const NetId x = ctx.in(f);
  // Priority chain, first matching interval wins; the last interval is the
  // default arm (its bound is +inf and never compared).
  NetId decision = ctx.cls(intervals.back().cls);
  for (std::size_t i = intervals.size() - 1; i-- > 0;) {
    const NetId hit = ctx.nl.cmp_le(x, ctx.th(f, intervals[i].upper_bound));
    decision = ctx.nl.mux(hit, ctx.cls(intervals[i].cls), decision);
  }
  ctx.nl.set_output(decision);
}

void lower_net_stump(LowerCtx& ctx, const ml::DecisionStump& model) {
  const std::size_t f = model.split_feature();
  const NetId hit = ctx.nl.cmp_le(ctx.in(f), ctx.th(f, model.split_threshold()));
  ctx.nl.set_output(ctx.nl.mux(hit, ctx.cls(model.left_class()),
                               ctx.cls(model.right_class())));
}

NetId lower_j48_node(LowerCtx& ctx, const ml::J48::Node& node) {
  if (node.is_leaf()) return ctx.cls(node.cls);
  const NetId hit =
      ctx.nl.cmp_le(ctx.in(node.feature), ctx.th(node.feature, node.threshold));
  return ctx.nl.mux(hit, lower_j48_node(ctx, *node.left),
                    lower_j48_node(ctx, *node.right));
}

void lower_net_j48(LowerCtx& ctx, const ml::J48& model) {
  ctx.nl.set_output(lower_j48_node(ctx, model.root()));
}

void lower_net_jrip(LowerCtx& ctx, const ml::JRip& model) {
  const auto& rules = model.rules();
  std::vector<NetId> fires;
  fires.reserve(rules.size());
  for (const auto& rule : rules) {
    std::vector<NetId> conds;
    conds.reserve(rule.conditions.size());
    for (const auto& c : rule.conditions) {
      const NetId x = ctx.in(c.feature);
      const NetId t = ctx.th(c.feature, c.threshold);
      conds.push_back(c.greater ? ctx.nl.cmp_gt(x, t) : ctx.nl.cmp_le(x, t));
    }
    if (conds.empty())
      conds.push_back(ctx.nl.constant(NetType::kBit, 1));
    fires.push_back(ctx.nl.and_reduce(std::move(conds)));
  }
  // Ordered list: first firing rule wins, else the default class.
  NetId decision = ctx.cls(model.default_class());
  for (std::size_t r = rules.size(); r-- > 0;)
    decision = ctx.nl.mux(fires[r], ctx.cls(rules[r].cls), decision);
  ctx.nl.set_output(decision);
}

/// Shared by MLR and SVM: per class a folded affine score over the raw
/// input grid, then an argmax (softmax/sigmoid links are monotone, so the
/// class decision needs neither). Weight rows are `d+1` wide, bias last,
/// in standardized feature space; the standardizer and the per-feature
/// input scales both fold into the baked constants.
void lower_net_linear(LowerCtx& ctx,
                      const std::vector<std::vector<double>>& weights,
                      const ml::Standardizer& standardizer) {
  const std::size_t k = weights.size();
  HMD_REQUIRE(k >= 2, "compile: linear model is not trained");
  const std::size_t d = standardizer.num_features();
  HMD_REQUIRE(d <= ctx.nl.num_features(),
              "compile: model references a feature beyond the port list");

  // Fold: w'_f = w_f/sigma_f (input units), bias -= w_f*mu_f/sigma_f, then
  // divide by the input pre-scale so products against port raws land back
  // on the Q16.16 score grid.
  std::vector<std::vector<double>> folded(k, std::vector<double>(d, 0.0));
  std::vector<double> bias(k, 0.0);
  double max_w = 0.0;
  for (std::size_t c = 0; c < k; ++c) {
    bias[c] = weights[c][d];
    for (std::size_t f = 0; f < d; ++f) {
      const double sd = standardizer.stddevs()[f];
      if (sd > 0.0) {
        folded[c][f] = weights[c][f] / sd / ctx.scales[f];
        bias[c] -= weights[c][f] * standardizer.means()[f] / sd;
      }
      max_w = std::max(max_w, std::abs(folded[c][f]));
    }
  }
  const std::uint32_t shift = weight_shift(max_w);

  std::vector<NetId> inputs(d);
  for (std::size_t f = 0; f < d; ++f) inputs[f] = ctx.in(f);
  std::vector<NetId> scores(k);
  for (std::size_t c = 0; c < k; ++c) {
    std::vector<NetId> terms;
    terms.reserve(d + 1);
    for (std::size_t f = 0; f < d; ++f)
      terms.push_back(ctx.nl.mul(
          inputs[f],
          ctx.nl.constant(NetType::kWide, weight_raw(folded[c][f], shift)),
          shift));
    terms.push_back(ctx.nl.constant(NetType::kWide, q16_raw(bias[c])));
    scores[c] = sum_tree(ctx.nl, std::move(terms));
  }
  ctx.nl.set_output(ctx.nl.argmax(std::move(scores)));
}

/// Gaussian log-density term for NaiveBayes ROM entries, clamped so the
/// Q16.16 raw (and any sum of them) stays far from the 64-bit edge.
std::int64_t log_density_raw(double x, double mean, double var) {
  const double lp = -0.5 * std::log(2.0 * std::numbers::pi * var) -
                    (x - mean) * (x - mean) / (2.0 * var);
  return q16_raw(std::clamp(lp, -1e9, 1e9));
}

/// Builds a saturating ROM over feature f's raw input range [-R, +R].
LutRom gaussian_lut(const LowerCtx& ctx, std::size_t f, double absmax,
                    double mean, double var, std::size_t size) {
  LutRom rom;
  rom.kind = LutRom::Kind::kGaussian;
  const double scale = ctx.scales[f];
  const std::int64_t hi = q16_raw(std::max(absmax, 1e-12) * scale);
  rom.lo_raw = -hi;
  std::uint32_t shift = 0;
  while ((std::int64_t{1} << shift) * static_cast<std::int64_t>(size) <
         2 * hi)
    ++shift;
  rom.step_shift = shift;
  rom.values.resize(size);
  for (std::size_t i = 0; i < size; ++i) {
    const std::int64_t center = rom.lo_raw +
                                (static_cast<std::int64_t>(i) << shift) +
                                (std::int64_t{1} << shift) / 2;
    const double x = q16_value(center) / scale;
    rom.values[i] = log_density_raw(x, mean, var);
  }
  return rom;
}

void lower_net_naive_bayes(LowerCtx& ctx, const ml::NaiveBayes& model,
                           const std::vector<double>& absmax,
                           std::size_t lut_size) {
  const std::size_t k = model.num_classes();
  HMD_REQUIRE(k >= 2, "compile: NaiveBayes model is not trained");
  const std::size_t d = model.means().front().size();
  HMD_REQUIRE(d <= ctx.nl.num_features(),
              "compile: model references a feature beyond the port list");

  std::vector<NetId> inputs(d);
  for (std::size_t f = 0; f < d; ++f) inputs[f] = ctx.in(f);
  std::vector<NetId> scores(k);
  for (std::size_t c = 0; c < k; ++c) {
    std::vector<NetId> terms;
    terms.reserve(d + 1);
    for (std::size_t f = 0; f < d; ++f) {
      const std::uint32_t table = ctx.nl.add_lut(
          gaussian_lut(ctx, f, absmax[f], model.means()[c][f],
                       model.variances()[c][f], lut_size));
      terms.push_back(ctx.nl.lut_rom(table, inputs[f]));
    }
    terms.push_back(ctx.nl.constant(
        NetType::kWide, q16_raw(std::log(model.priors()[c]))));
    scores[c] = sum_tree(ctx.nl, std::move(terms));
  }
  ctx.nl.set_output(ctx.nl.argmax(std::move(scores)));
}

/// Sigmoid ROM over the pre-activation score grid: +-16 covers the curve
/// to under 1.2e-7 saturation error.
LutRom sigmoid_lut(std::size_t size) {
  LutRom rom;
  rom.kind = LutRom::Kind::kSigmoid;
  constexpr std::int64_t kHalfSpan = std::int64_t{16} << 16;
  rom.lo_raw = -kHalfSpan;
  std::uint32_t shift = 0;
  while ((std::int64_t{1} << shift) * static_cast<std::int64_t>(size) <
         2 * kHalfSpan)
    ++shift;
  rom.step_shift = shift;
  rom.values.resize(size);
  for (std::size_t i = 0; i < size; ++i) {
    const std::int64_t center = rom.lo_raw +
                                (static_cast<std::int64_t>(i) << shift) +
                                (std::int64_t{1} << shift) / 2;
    const double x = q16_value(center);
    rom.values[i] = q16_raw(1.0 / (1.0 + std::exp(-x)));
  }
  return rom;
}

void lower_net_mlp(LowerCtx& ctx, const ml::Mlp& model,
                   std::size_t lut_size) {
  const std::size_t k = model.num_classes();
  HMD_REQUIRE(k >= 2, "compile: MLP model is not trained");
  const ml::Standardizer& std_ = model.standardizer();
  const std::size_t d = std_.num_features();
  HMD_REQUIRE(d <= ctx.nl.num_features(),
              "compile: model references a feature beyond the port list");
  const std::size_t h = model.hidden_units();

  // Hidden layer: folded affine + sigmoid ROM (one shared table).
  std::vector<std::vector<double>> w1(h, std::vector<double>(d, 0.0));
  std::vector<double> b1(h, 0.0);
  double max_w1 = 0.0;
  for (std::size_t j = 0; j < h; ++j) {
    b1[j] = model.w1()[j][d];
    for (std::size_t f = 0; f < d; ++f) {
      const double sd = std_.stddevs()[f];
      if (sd > 0.0) {
        w1[j][f] = model.w1()[j][f] / sd / ctx.scales[f];
        b1[j] -= model.w1()[j][f] * std_.means()[f] / sd;
      }
      max_w1 = std::max(max_w1, std::abs(w1[j][f]));
    }
  }
  const std::uint32_t shift1 = weight_shift(max_w1);
  const std::uint32_t sig_table = ctx.nl.add_lut(sigmoid_lut(lut_size));

  std::vector<NetId> inputs(d);
  for (std::size_t f = 0; f < d; ++f) inputs[f] = ctx.in(f);
  std::vector<NetId> hidden(h);
  for (std::size_t j = 0; j < h; ++j) {
    std::vector<NetId> terms;
    terms.reserve(d + 1);
    for (std::size_t f = 0; f < d; ++f)
      terms.push_back(ctx.nl.mul(
          inputs[f],
          ctx.nl.constant(NetType::kWide, weight_raw(w1[j][f], shift1)),
          shift1));
    terms.push_back(ctx.nl.constant(NetType::kWide, q16_raw(b1[j])));
    hidden[j] = ctx.nl.lut_rom(sig_table, sum_tree(ctx.nl, std::move(terms)));
  }

  // Output layer: activations are already value-domain Q16.16 in (0, 1).
  double max_w2 = 0.0;
  for (std::size_t c = 0; c < k; ++c)
    for (std::size_t j = 0; j < h; ++j)
      max_w2 = std::max(max_w2, std::abs(model.w2()[c][j]));
  const std::uint32_t shift2 = weight_shift(max_w2);
  std::vector<NetId> scores(k);
  for (std::size_t c = 0; c < k; ++c) {
    std::vector<NetId> terms;
    terms.reserve(h + 1);
    for (std::size_t j = 0; j < h; ++j)
      terms.push_back(ctx.nl.mul(
          hidden[j],
          ctx.nl.constant(NetType::kWide,
                          weight_raw(model.w2()[c][j], shift2)),
          shift2));
    terms.push_back(
        ctx.nl.constant(NetType::kWide, q16_raw(model.w2()[c][h])));
    scores[c] = sum_tree(ctx.nl, std::move(terms));
  }
  ctx.nl.set_output(ctx.nl.argmax(std::move(scores)));
}

// -- calibration ------------------------------------------------------------

void note_threshold(std::vector<double>& mag, std::size_t f, double t) {
  if (f < mag.size() && std::isfinite(t))
    mag[f] = std::max(mag[f], std::abs(t));
}

void collect_j48(std::vector<double>& mag, const ml::J48::Node& node) {
  if (node.is_leaf()) return;
  note_threshold(mag, node.feature, node.threshold);
  collect_j48(mag, *node.left);
  collect_j48(mag, *node.right);
}

std::vector<double> standardizer_absmax(const ml::Standardizer& std_,
                                        std::size_t num_features) {
  std::vector<double> absmax(num_features, 1.0);
  for (std::size_t f = 0; f < std_.num_features() && f < num_features; ++f)
    absmax[f] = std::abs(std_.means()[f]) + 6.0 * std_.stddevs()[f];
  return absmax;
}

}  // namespace

bool compile_supported(const ml::Classifier& clf) {
  const ml::Classifier& u = clf.unwrap();
  return dynamic_cast<const ml::OneR*>(&u) != nullptr ||
         dynamic_cast<const ml::DecisionStump*>(&u) != nullptr ||
         dynamic_cast<const ml::J48*>(&u) != nullptr ||
         dynamic_cast<const ml::JRip*>(&u) != nullptr ||
         dynamic_cast<const ml::NaiveBayes*>(&u) != nullptr ||
         dynamic_cast<const ml::Logistic*>(&u) != nullptr ||
         dynamic_cast<const ml::LinearSvm*>(&u) != nullptr ||
         dynamic_cast<const ml::Mlp*>(&u) != nullptr;
}

std::vector<double> model_feature_absmax(const ml::Classifier& clf,
                                         std::size_t num_features) {
  const ml::Classifier& u = clf.unwrap();
  if (const auto* m = dynamic_cast<const ml::Logistic*>(&u))
    return standardizer_absmax(m->standardizer(), num_features);
  if (const auto* m = dynamic_cast<const ml::LinearSvm*>(&u))
    return standardizer_absmax(m->standardizer(), num_features);
  if (const auto* m = dynamic_cast<const ml::Mlp*>(&u))
    return standardizer_absmax(m->standardizer(), num_features);
  if (const auto* m = dynamic_cast<const ml::NaiveBayes*>(&u)) {
    std::vector<double> absmax(num_features, 1.0);
    for (std::size_t c = 0; c < m->num_classes(); ++c)
      for (std::size_t f = 0;
           f < m->means()[c].size() && f < num_features; ++f)
        absmax[f] = std::max(absmax[f], std::abs(m->means()[c][f]) +
                                            6.0 * std::sqrt(m->variances()[c][f]));
    return absmax;
  }
  // Tree/rule family: the grid only has to resolve the baked thresholds —
  // twice the largest magnitude per feature keeps every compare in range.
  std::vector<double> mag(num_features, 0.0);
  if (const auto* oner = dynamic_cast<const ml::OneR*>(&u)) {
    for (const auto& iv : oner->intervals())
      note_threshold(mag, oner->chosen_feature(), iv.upper_bound);
  } else if (const auto* stump = dynamic_cast<const ml::DecisionStump*>(&u)) {
    note_threshold(mag, stump->split_feature(), stump->split_threshold());
  } else if (const auto* tree = dynamic_cast<const ml::J48*>(&u)) {
    collect_j48(mag, tree->root());
  } else if (const auto* rip = dynamic_cast<const ml::JRip*>(&u)) {
    for (const auto& rule : rip->rules())
      for (const auto& c : rule.conditions)
        note_threshold(mag, c.feature, c.threshold);
  } else {
    HMD_REQUIRE(false, "model_feature_absmax: no netlist lowering for " +
                           u.name());
  }
  std::vector<double> absmax(num_features);
  for (std::size_t f = 0; f < num_features; ++f)
    absmax[f] = std::max(1.0, 2.0 * mag[f]);
  return absmax;
}

Result<CompiledDesign> try_compile(const ml::Classifier& clf,
                                   CompileOptions options) {
  const ml::Classifier& u = clf.unwrap();
  if (!compile_supported(u))
    return ErrorInfo(ErrCode::kPrecondition,
                     "no netlist lowering for scheme '" + u.name() +
                         "' (RTL-supported schemes compile; IBk/ZeroR/"
                         "ensembles/one-class do not)")
        .with_context("hw::compile");
  return capture_result([&]() -> CompiledDesign {
    HMD_REQUIRE(u.num_classes() >= 2, "compile: model is not trained");
    HMD_REQUIRE(options.num_features >= 1,
                "CompileOptions.num_features is required");
    HMD_REQUIRE(!options.module_name.empty(),
                "CompileOptions.module_name must not be empty");
    HMD_REQUIRE(options.lut_size >= 2 &&
                    (options.lut_size & (options.lut_size - 1)) == 0 &&
                    options.lut_size <= (1u << 16),
                "CompileOptions.lut_size must be a power of two in [2, 65536]");
    HMD_REQUIRE(options.clock_mhz > 0.0,
                "CompileOptions.clock_mhz must be positive");

    std::vector<double> absmax = options.feature_absmax.empty()
                                     ? model_feature_absmax(u, options.num_features)
                                     : options.feature_absmax;
    HMD_REQUIRE(absmax.size() == options.num_features,
                "CompileOptions.feature_absmax width mismatch");
    std::vector<double> scales(absmax.size());
    for (std::size_t f = 0; f < absmax.size(); ++f) {
      absmax[f] = std::max(absmax[f], 1e-12);
      scales[f] = q16_input_scale(absmax[f]);
    }

    LowerCtx ctx{Netlist(options.num_features, u.num_classes()), scales};
    if (const auto* oner = dynamic_cast<const ml::OneR*>(&u))
      lower_net_one_r(ctx, *oner);
    else if (const auto* stump = dynamic_cast<const ml::DecisionStump*>(&u))
      lower_net_stump(ctx, *stump);
    else if (const auto* tree = dynamic_cast<const ml::J48*>(&u))
      lower_net_j48(ctx, *tree);
    else if (const auto* rip = dynamic_cast<const ml::JRip*>(&u))
      lower_net_jrip(ctx, *rip);
    else if (const auto* nb = dynamic_cast<const ml::NaiveBayes*>(&u))
      lower_net_naive_bayes(ctx, *nb, absmax, options.lut_size);
    else if (const auto* mlr = dynamic_cast<const ml::Logistic*>(&u))
      lower_net_linear(ctx, mlr->weights(), mlr->standardizer());
    else if (const auto* svm = dynamic_cast<const ml::LinearSvm*>(&u))
      lower_net_linear(ctx, svm->weights(), svm->standardizer());
    else
      lower_net_mlp(ctx, dynamic_cast<const ml::Mlp&>(u), options.lut_size);

    return CompiledDesign(std::move(ctx.nl), u.name(),
                          std::move(options.module_name), std::move(absmax),
                          std::move(scales), options.clock_mhz,
                          options.inferences_per_second);
  });
}

CompiledDesign compile(const ml::Classifier& clf, CompileOptions options) {
  return std::move(try_compile(clf, std::move(options)).value());
}

std::string CompiledDesign::emit(const Backend& backend) const {
  return backend.emit(*this);
}

SynthesisReport CompiledDesign::report() const {
  SynthesisReport report;
  report.design_name = scheme_;
  report.clock_mhz = clock_mhz_;
  report.resources = netlist_.total_resources();
  // Measured, not estimated: the simulator's critical path over the
  // per-net pipeline annotations.
  report.latency_cycles = NetlistSimulator(*this).cycles_per_window();
  report.energy_per_inference_pj = netlist_.total_energy_pj();
  finalize_power(report, inferences_per_second_);
  return report;
}

}  // namespace hmd::hw
