#include "hw/netlist_sim.hpp"

#include <algorithm>

#include "util/error.hpp"

namespace hmd::hw {

NetlistSimulator::NetlistSimulator(const CompiledDesign& design)
    : design_(&design) {
  const Netlist& nl = design.netlist();
  HMD_REQUIRE(nl.has_output(), "NetlistSimulator: design has no output net");
  // Ready-time pass: each net's result is registered node_latency() cycles
  // after its slowest operand — the critical path the hardware pays.
  std::vector<std::uint32_t> ready(nl.num_nodes(), 0);
  for (NetId id = 0; id < nl.num_nodes(); ++id) {
    const NetNode& n = nl.node(id);
    std::uint32_t operands_ready = 0;
    for (NetId a : n.args)
      operands_ready = std::max(operands_ready, ready[a]);
    ready[id] = operands_ready + nl.node_latency(id);
    cycles_per_window_ = std::max(cycles_per_window_, ready[id]);
  }
}

std::size_t NetlistSimulator::run_raw(
    std::span<const std::int64_t> inputs) const {
  const Netlist& nl = design_->netlist();
  HMD_REQUIRE(inputs.size() >= nl.num_features(),
              "NetlistSimulator: input vector narrower than the port list");
  std::vector<std::int64_t> value(nl.num_nodes(), 0);
  for (NetId id = 0; id < nl.num_nodes(); ++id) {
    const NetNode& n = nl.node(id);
    switch (n.op) {
      case NetOp::kInput:
        value[id] = inputs[n.index];
        break;
      case NetOp::kConst:
        value[id] = n.value;
        break;
      case NetOp::kCmpLe:
        value[id] = value[n.args[0]] <= value[n.args[1]] ? 1 : 0;
        break;
      case NetOp::kCmpGt:
        value[id] = value[n.args[0]] > value[n.args[1]] ? 1 : 0;
        break;
      case NetOp::kMux:
        value[id] = value[n.args[0]] != 0 ? value[n.args[1]]
                                          : value[n.args[2]];
        break;
      case NetOp::kAdd:
        value[id] = value[n.args[0]] + value[n.args[1]];
        break;
      case NetOp::kMul: {
        // 128-bit intermediate, arithmetic shift — the RTL datapath keeps
        // the full product before the >> too.
        __extension__ typedef __int128 Wide;  // GCC/Clang extension
        const Wide product = static_cast<Wide>(value[n.args[0]]) *
                             static_cast<Wide>(value[n.args[1]]);
        value[id] = static_cast<std::int64_t>(product >> n.value);
        break;
      }
      case NetOp::kAndReduce: {
        std::int64_t all = 1;
        for (NetId a : n.args) all &= value[a] != 0 ? 1 : 0;
        value[id] = all;
        break;
      }
      case NetOp::kArgmax: {
        std::size_t best = 0;
        std::int64_t best_val = value[n.args[0]];
        for (std::size_t i = 1; i < n.args.size(); ++i) {
          if (value[n.args[i]] > best_val) {
            best_val = value[n.args[i]];
            best = i;
          }
        }
        value[id] = static_cast<std::int64_t>(best);
        break;
      }
      case NetOp::kLutRom: {
        const LutRom& rom = nl.luts()[n.index];
        std::int64_t idx =
            (value[n.args[0]] - rom.lo_raw) >> rom.step_shift;
        idx = std::clamp<std::int64_t>(
            idx, 0, static_cast<std::int64_t>(rom.values.size()) - 1);
        value[id] = rom.values[static_cast<std::size_t>(idx)];
        break;
      }
      case NetOp::kOutput:
        value[id] = value[n.args[0]];
        break;
      case NetOp::kCount:
        HMD_REQUIRE(false, "NetlistSimulator: invalid op");
    }
  }
  return static_cast<std::size_t>(value[nl.output()]);
}

std::size_t NetlistSimulator::run(std::span<const double> features) const {
  const std::vector<double>& scales = design_->feature_scales();
  HMD_REQUIRE(features.size() >= scales.size(),
              "NetlistSimulator: feature vector narrower than the port list");
  std::vector<std::int64_t> raws(scales.size());
  for (std::size_t f = 0; f < scales.size(); ++f)
    raws[f] = quantize_input_raw(features[f], scales[f]);
  return run_raw(raws);
}

}  // namespace hmd::hw
