// VHDL-2008 backend over the netlist IR: the same DAG walk as
// VerilogBackend, rendered through ieee.numeric_std — signed(63 downto 0)
// datapath signals, boolean predicate signals, constant ROM arrays, and
// process-based argmax/LUT lookups. Entity shell mirrors the Verilog
// module shell:
//
//   entity <name> is
//     port (clk, rst, valid_in : in std_logic;
//           f0 .. f<d-1>       : in signed(31 downto 0);  -- Q16.16 raws
//           class_out          : out unsigned(<cb>-1 downto 0);
//           valid_out          : out std_logic);
//   end entity;
//
// Requires VHDL-2008 (hex bit-string constants, e.g. ghdl --std=08).
#pragma once

#include "hw/backend.hpp"

namespace hmd::hw {

class VhdlBackend final : public Backend {
 public:
  std::string_view name() const override { return "vhdl"; }
  std::string_view file_extension() const override { return ".vhd"; }
  std::string emit(const CompiledDesign& design) const override;
  std::string emit_testbench(const CompiledDesign& design,
                             const ml::Dataset& test,
                             std::size_t num_vectors) const override;
};

}  // namespace hmd::hw
