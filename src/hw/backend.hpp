// Backend: a language renderer over the netlist IR. Both shipped backends
// (hw/verilog_backend.hpp, hw/vhdl_backend.hpp) walk the identical
// CompiledDesign DAG net by net — the Icarus Verilog tgt-vhdl split: one
// shared IR, per-language expression/statement rendering only.
//
// Backends are stateless; the shipped ones are singletons reachable by
// name through backend_by_name("verilog" | "vhdl").
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "ml/dataset.hpp"

namespace hmd::hw {

class CompiledDesign;

class Backend {
 public:
  virtual ~Backend() = default;

  /// Language tag: "verilog" or "vhdl" for the shipped backends.
  virtual std::string_view name() const = 0;
  /// Conventional source extension including the dot (".v", ".vhd").
  virtual std::string_view file_extension() const = 0;

  /// Render the design as one self-contained synthesizable module/entity.
  virtual std::string emit(const CompiledDesign& design) const = 0;

  /// Self-checking testbench: drives the first `num_vectors` rows of
  /// `test` quantized onto the design's input grid and checks class_out
  /// against the NetlistSimulator's decisions (bit-exact ground truth for
  /// what the RTL must produce).
  virtual std::string emit_testbench(const CompiledDesign& design,
                                     const ml::Dataset& test,
                                     std::size_t num_vectors) const = 0;
};

/// The shipped backend registry: "verilog" or "vhdl" (case-sensitive).
/// Throws hmd::PreconditionError for anything else.
const Backend& backend_by_name(std::string_view name);

/// One testbench stimulus: the quantized port raws plus the class the
/// netlist (and therefore the RTL) must emit for them. Shared by both
/// language testbench emitters and the emission tests.
struct TestVector {
  std::vector<std::int64_t> raws;
  std::size_t expected = 0;
};

/// Quantize the first `num_vectors` rows of `test` onto the design's input
/// grid and record the simulator's decision for each.
std::vector<TestVector> testbench_vectors(const CompiledDesign& design,
                                          const ml::Dataset& test,
                                          std::size_t num_vectors);

}  // namespace hmd::hw
