// Cycle-accurate netlist interpreter: executes a CompiledDesign's nets in
// topological order (builder order IS topological order — operands must
// exist before use) over int64 Q16.16 raws, exactly as the emitted RTL
// datapath computes them. Construction also runs a ready-time pass over
// the per-net pipeline annotations, so cycles_per_window() is the measured
// registered critical path — the latency CompiledDesign::report() quotes.
//
// run() quantizes float features onto the design's input grid first (the
// shared helpers in hw/netlist.hpp), which is what makes simulator class
// decisions bit-identical to hw/evaluate_fixed_point for exact schemes.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "hw/compile.hpp"

namespace hmd::hw {

class NetlistSimulator {
 public:
  /// `design` must outlive the simulator (nets and LUTs are referenced,
  /// not copied).
  explicit NetlistSimulator(const CompiledDesign& design);

  /// Execute one window of already-quantized port raws (one per feature,
  /// as quantize_input_raw produces). Returns the class_out label.
  std::size_t run_raw(std::span<const std::int64_t> inputs) const;

  /// Quantize float features onto the input grid, then run_raw. Extra
  /// trailing features beyond the port list are ignored.
  std::size_t run(std::span<const double> features) const;

  /// Measured registered pipeline depth: max over nets of
  /// ready(operands) + node latency.
  std::uint32_t cycles_per_window() const { return cycles_per_window_; }

  /// Fully-pipelined throughput at `clock_mhz` (one window per cycle once
  /// the pipeline is full).
  double windows_per_second(double clock_mhz) const { return clock_mhz * 1e6; }

 private:
  const CompiledDesign* design_;
  std::uint32_t cycles_per_window_ = 0;
};

}  // namespace hmd::hw
