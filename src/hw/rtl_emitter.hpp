// DEPRECATED Verilog emission surface — thin wrappers over the compiler
// pipeline in hw/compile.hpp.
//
// These per-scheme emit_verilog() overloads predate the netlist IR; every
// one of them now routes through hw::compile() + VerilogBackend, so the
// emitted module is identical to
//
//   hw::compile(model, {.num_features = d, .module_name = name})
//       .emit(VerilogBackend());
//
// New code should call that directly (it also unlocks VhdlBackend, the
// NetlistSimulator, and measured SynthesisReports; see docs/hardware.md
// for the migration table). The dispatcher overload additionally gained
// NaiveBayes and MLP support from the IR path (LUT-ROM lowering) — it now
// throws hmd::PreconditionError only for schemes with no netlist lowering
// at all (IBk/ZeroR/ensembles/one-class).
#pragma once

#include <string>

#include "ml/classifier.hpp"
#include "ml/dataset.hpp"
#include "ml/decision_stump.hpp"
#include "ml/j48.hpp"
#include "ml/jrip.hpp"
#include "ml/logistic.hpp"
#include "ml/one_r.hpp"
#include "ml/svm.hpp"

namespace hmd::hw {

std::string emit_verilog(const ml::OneR& model, std::size_t num_features,
                         const std::string& module_name);
std::string emit_verilog(const ml::DecisionStump& model,
                         std::size_t num_features,
                         const std::string& module_name);
std::string emit_verilog(const ml::J48& model, std::size_t num_features,
                         const std::string& module_name);
std::string emit_verilog(const ml::JRip& model, std::size_t num_features,
                         const std::string& module_name);
std::string emit_verilog(const ml::Logistic& model, std::size_t num_features,
                         const std::string& module_name);
std::string emit_verilog(const ml::LinearSvm& model, std::size_t num_features,
                         const std::string& module_name);

/// Dispatch on the concrete classifier type; throws hmd::PreconditionError
/// for classifiers with no netlist lowering (prefer hw::try_compile for a
/// Result-based surface).
std::string emit_verilog(const ml::Classifier& clf, std::size_t num_features,
                         const std::string& module_name);

/// Self-checking Verilog testbench for a module produced by emit_verilog:
/// the design's input grid is calibrated from `test` exactly as
/// evaluate_fixed_point calibrates (hw::calibrate_feature_absmax), and the
/// expected class per vector is the netlist simulator's decision.
std::string emit_verilog_testbench(const ml::Classifier& clf,
                                   const ml::Dataset& test,
                                   std::size_t num_vectors,
                                   const std::string& module_name);

}  // namespace hmd::hw
