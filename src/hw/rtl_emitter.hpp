// Verilog RTL emission for trained classifiers.
//
// The end product of the paper's Vivado HLS flow is RTL; this module emits
// it directly for the hardware-friendly classifier families. The generated
// module is self-contained synthesizable Verilog-2001:
//
//   module <name> (
//     input  wire clk, rst, valid_in,
//     input  wire signed [31:0] f0 .. f<d-1>,   // Q16.16 counter values
//     output reg  [<ceil(log2 k)>-1:0] class_out,
//     output reg  valid_out
//   );
//
// Trained constants (thresholds, weights, biases) are baked in as Q16.16
// localparams. For the linear models the internal standardizer is folded
// into the weights, so the module consumes raw (pre-scaled) counter values.
// The decision logic is combinational with one output register stage —
// matching the unconstrained datapaths the cost model (lowering.hpp)
// estimates.
//
// Supported: OneR, DecisionStump, J48, JRip, Logistic/MLR, LinearSvm.
// MLP and NaiveBayes are estimator-only (their LUT/activation tables belong
// to a memory-compiler flow, not inline RTL) and raise PreconditionError.
#pragma once

#include <string>

#include "ml/classifier.hpp"
#include "ml/dataset.hpp"
#include "ml/decision_stump.hpp"
#include "ml/j48.hpp"
#include "ml/jrip.hpp"
#include "ml/logistic.hpp"
#include "ml/one_r.hpp"
#include "ml/svm.hpp"

namespace hmd::hw {

std::string emit_verilog(const ml::OneR& model, std::size_t num_features,
                         const std::string& module_name);
std::string emit_verilog(const ml::DecisionStump& model,
                         std::size_t num_features,
                         const std::string& module_name);
std::string emit_verilog(const ml::J48& model, std::size_t num_features,
                         const std::string& module_name);
std::string emit_verilog(const ml::JRip& model, std::size_t num_features,
                         const std::string& module_name);
std::string emit_verilog(const ml::Logistic& model, std::size_t num_features,
                         const std::string& module_name);
std::string emit_verilog(const ml::LinearSvm& model, std::size_t num_features,
                         const std::string& module_name);

/// Dispatch on the concrete classifier type; throws hmd::PreconditionError
/// for unsupported classifiers.
std::string emit_verilog(const ml::Classifier& clf, std::size_t num_features,
                         const std::string& module_name);

/// Self-checking Verilog testbench for a module produced by emit_verilog:
/// drives the first `num_vectors` rows of `test` (quantized to Q16.16) and
/// compares `class_out` against the C++ model's predictions, $display-ing
/// PASS/FAIL per vector and a final summary.
std::string emit_verilog_testbench(const ml::Classifier& clf,
                                   const ml::Dataset& test,
                                   std::size_t num_vectors,
                                   const std::string& module_name);

}  // namespace hmd::hw
