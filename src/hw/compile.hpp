// The hw compiler pipeline: hw::compile() is the single entry point that
// turns a trained classifier into hardware.
//
//   auto design = hw::compile(*clf, {.num_features = d});
//   std::string rtl  = design.emit(VerilogBackend());   // or VhdlBackend
//   auto       report = design.report();                // measured numbers
//   NetlistSimulator sim(design);                       // execute it
//
// compile() lowers the model onto the netlist IR (hw/netlist.hpp) with
// Q16.16 semantics shared with hw/evaluate_fixed_point; CompiledDesign then
// exposes the pluggable Backends (Verilog, VHDL) and the cycle-accurate
// NetlistSimulator. report() replaces the old analytic estimate with
// numbers *measured* from the netlist: latency is the simulator's critical
// path over the per-net pipeline annotations, area/energy are summed from
// the instantiated nets.
//
// Supported schemes (see ml::rtl_schemes()):
//   exact    — OneR, DecisionStump, J48, JRip, MLR, SVM: simulator class
//              decisions are bit-identical to hw/evaluate_fixed_point
//              (threshold compares use the exact floor equivalence; linear
//              scores carry extended-precision folded weights);
//   LUT      — NaiveBayes (per class x feature Gaussian log-density ROMs)
//              and MLP (sigmoid ROM): faithful to the float model up to the
//              ROM quantization step, measured — not gated — in benches.
//
// Unsupported schemes (IBk, ZeroR, ensembles, one-class): try_compile()
// returns a kPrecondition ErrorInfo naming the scheme; compile() raises it
// as hmd::PreconditionError.
//
// The legacy per-scheme emit_verilog()/lower_*()/synthesize_classifier()
// surfaces in hw/rtl_emitter.hpp and hw/lowering.hpp are thin deprecated
// wrappers over this pipeline (see those headers for the mapping).
#pragma once

#include <string>
#include <vector>

#include "hw/netlist.hpp"
#include "hw/synthesis.hpp"
#include "ml/classifier.hpp"
#include "util/result.hpp"

namespace hmd::hw {

class Backend;

/// Knobs for one compilation.
struct CompileOptions {
  /// Input port count (the serving window width). Must cover every feature
  /// the model references; required (> 0).
  std::size_t num_features = 0;
  /// RTL module/entity name.
  std::string module_name = "hmd_detector";
  /// Per-feature magnitude calibration for the input grid (one entry per
  /// port). Empty = derive a dataset-free bound from the model itself via
  /// model_feature_absmax(). Pass hw::calibrate_feature_absmax(test) to pin
  /// the grid to a dataset, exactly as evaluate_fixed_point does.
  std::vector<double> feature_absmax;
  /// Entries per LUT-ROM (power of two). Larger = closer to the float
  /// model for NaiveBayes/MLP, more BRAM lines in the emitted RTL.
  std::size_t lut_size = 256;
  /// report() parameters (same meaning as SynthesisOptions).
  double clock_mhz = 100.0;
  double inferences_per_second = 100.0;
};

/// A compiled classifier: the netlist plus the grid calibration it was
/// baked against. Cheap to copy-move; backends and the simulator only read.
class CompiledDesign {
 public:
  const Netlist& netlist() const { return netlist_; }
  /// Canonical scheme name of the compiled model ("J48", "MLR", ...).
  const std::string& scheme() const { return scheme_; }
  const std::string& module_name() const { return module_name_; }
  std::size_t num_features() const { return netlist_.num_features(); }
  std::size_t num_classes() const { return netlist_.num_classes(); }
  /// Per-feature input pre-scales (q16_input_scale of the calibration).
  const std::vector<double>& feature_scales() const { return scales_; }
  const std::vector<double>& feature_absmax() const { return absmax_; }
  double clock_mhz() const { return clock_mhz_; }
  double inferences_per_second() const { return inferences_per_second_; }

  /// Render through a language backend (VerilogBackend / VhdlBackend).
  std::string emit(const Backend& backend) const;

  /// Synthesis numbers measured from the netlist: latency = the simulator's
  /// critical path, area/energy summed over the instantiated nets, power
  /// from the shared finalize_power model. Replaces synthesize_classifier().
  SynthesisReport report() const;

 private:
  friend Result<CompiledDesign> try_compile(const ml::Classifier&,
                                            CompileOptions);
  CompiledDesign(Netlist netlist, std::string scheme, std::string module_name,
                 std::vector<double> absmax, std::vector<double> scales,
                 double clock_mhz, double ips)
      : netlist_(std::move(netlist)),
        scheme_(std::move(scheme)),
        module_name_(std::move(module_name)),
        absmax_(std::move(absmax)),
        scales_(std::move(scales)),
        clock_mhz_(clock_mhz),
        inferences_per_second_(ips) {}

  Netlist netlist_;
  std::string scheme_;
  std::string module_name_;
  std::vector<double> absmax_;
  std::vector<double> scales_;
  double clock_mhz_;
  double inferences_per_second_;
};

/// True when `clf` (after unwrapping decorators) has a netlist lowering.
bool compile_supported(const ml::Classifier& clf);

/// Compile, or a kPrecondition ErrorInfo (unsupported scheme, untrained
/// model, bad options) — the Result-based surface for tools that fall back
/// instead of aborting (the fpga serving tier, hmd_train --emit-rtl).
Result<CompiledDesign> try_compile(const ml::Classifier& clf,
                                   CompileOptions options);

/// Throwing wrapper over try_compile().
CompiledDesign compile(const ml::Classifier& clf, CompileOptions options);

/// Dataset-free per-feature magnitude bound derived from the model itself:
/// |mean| + 6*stddev per feature where the scheme carries a standardizer or
/// Gaussian parameters, twice the largest threshold magnitude for the
/// tree/rule family. Deterministic for a given model, so per-shard serving
/// compiles agree regardless of shard count.
std::vector<double> model_feature_absmax(const ml::Classifier& clf,
                                         std::size_t num_features);

}  // namespace hmd::hw
