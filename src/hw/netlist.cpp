#include "hw/netlist.hpp"

#include <algorithm>
#include <cmath>

#include "util/error.hpp"
#include "util/fixed_point.hpp"

namespace hmd::hw {

std::int64_t q16_raw(double v) { return Fixed16::from_double(v).raw(); }

double q16_value(std::int64_t raw) {
  return Fixed16::from_raw(raw).to_double();
}

double q16_input_scale(double absmax) {
  absmax = std::max(absmax, 1e-12);
  return absmax > 16000.0 ? 16000.0 / absmax : 1.0;
}

std::int64_t quantize_input_raw(double x, double scale) {
  return q16_raw(x * scale);
}

double quantize_input(double x, double scale) {
  return quantize_q16(x * scale) / scale;
}

std::int64_t threshold_raw(double t, double scale) {
  const double scaled = t * scale * static_cast<double>(Fixed16::kOne);
  HMD_REQUIRE(std::isfinite(scaled) &&
                  scaled >= -9.2e18 && scaled <= 9.2e18,
              "threshold overflows the Q16.16 raw range");
  return static_cast<std::int64_t>(std::floor(scaled));
}

std::string_view net_op_name(NetOp op) {
  switch (op) {
    case NetOp::kInput: return "input";
    case NetOp::kConst: return "const";
    case NetOp::kCmpLe: return "cmp_le";
    case NetOp::kCmpGt: return "cmp_gt";
    case NetOp::kMux: return "mux";
    case NetOp::kAdd: return "add";
    case NetOp::kMul: return "mul";
    case NetOp::kAndReduce: return "and_reduce";
    case NetOp::kArgmax: return "argmax";
    case NetOp::kLutRom: return "lut_rom";
    case NetOp::kOutput: return "output";
    case NetOp::kCount: break;
  }
  return "invalid";
}

namespace {

std::uint32_t ceil_log2(std::size_t n) {
  std::uint32_t bits = 0;
  std::size_t reach = 1;
  while (reach < n) {
    reach <<= 1;
    ++bits;
  }
  return bits;
}

}  // namespace

Netlist::Netlist(std::size_t num_features, std::size_t num_classes)
    : num_features_(num_features), num_classes_(num_classes) {
  HMD_REQUIRE(num_features >= 1, "Netlist: need at least one input feature");
  HMD_REQUIRE(num_classes >= 2, "Netlist: need at least two classes");
}

NetId Netlist::push(NetNode node) {
  nodes_.push_back(std::move(node));
  return static_cast<NetId>(nodes_.size() - 1);
}

const NetNode& Netlist::operand(NetId id) const {
  HMD_REQUIRE(id < nodes_.size(), "Netlist: operand net does not exist");
  return nodes_[id];
}

void Netlist::require_arith(NetId id) const {
  const NetType t = operand(id).type;
  HMD_REQUIRE(t == NetType::kQ16 || t == NetType::kWide,
              "Netlist: operand must be an arithmetic net");
}

NetId Netlist::input(std::uint32_t feature) {
  HMD_REQUIRE(feature < num_features_,
              "Netlist: input feature beyond the port list");
  return push({NetOp::kInput, NetType::kQ16, {}, 0, feature});
}

NetId Netlist::constant(NetType type, std::int64_t raw) {
  HMD_REQUIRE(type != NetType::kClass,
              "Netlist: use class_constant for class literals");
  if (type == NetType::kBit)
    HMD_REQUIRE(raw == 0 || raw == 1, "Netlist: bit constant must be 0 or 1");
  return push({NetOp::kConst, type, {}, raw, 0});
}

NetId Netlist::class_constant(std::size_t cls) {
  HMD_REQUIRE(cls < num_classes_, "Netlist: class literal out of range");
  return push({NetOp::kConst, NetType::kClass, {},
               static_cast<std::int64_t>(cls), 0});
}

NetId Netlist::cmp_le(NetId a, NetId b) {
  require_arith(a);
  require_arith(b);
  return push({NetOp::kCmpLe, NetType::kBit, {a, b}, 0, 0});
}

NetId Netlist::cmp_gt(NetId a, NetId b) {
  require_arith(a);
  require_arith(b);
  return push({NetOp::kCmpGt, NetType::kBit, {a, b}, 0, 0});
}

NetId Netlist::mux(NetId sel, NetId a, NetId b) {
  HMD_REQUIRE(operand(sel).type == NetType::kBit,
              "Netlist: mux select must be a bit net");
  HMD_REQUIRE(operand(a).type == operand(b).type,
              "Netlist: mux arms must share a type");
  return push({NetOp::kMux, operand(a).type, {sel, a, b}, 0, 0});
}

NetId Netlist::add(NetId a, NetId b) {
  require_arith(a);
  require_arith(b);
  return push({NetOp::kAdd, NetType::kWide, {a, b}, 0, 0});
}

NetId Netlist::mul(NetId a, NetId b, std::uint32_t shift) {
  require_arith(a);
  require_arith(b);
  HMD_REQUIRE(shift <= 62, "Netlist: mul shift out of range");
  return push({NetOp::kMul, NetType::kWide, {a, b},
               static_cast<std::int64_t>(shift), 0});
}

NetId Netlist::and_reduce(std::vector<NetId> args) {
  HMD_REQUIRE(!args.empty(), "Netlist: and_reduce needs operands");
  for (NetId a : args)
    HMD_REQUIRE(operand(a).type == NetType::kBit,
                "Netlist: and_reduce operands must be bit nets");
  return push({NetOp::kAndReduce, NetType::kBit, std::move(args), 0, 0});
}

NetId Netlist::argmax(std::vector<NetId> args) {
  HMD_REQUIRE(!args.empty(), "Netlist: argmax needs operands");
  HMD_REQUIRE(args.size() <= num_classes_,
              "Netlist: more argmax scores than classes");
  for (NetId a : args) require_arith(a);
  return push({NetOp::kArgmax, NetType::kClass, std::move(args), 0, 0});
}

std::uint32_t Netlist::add_lut(LutRom table) {
  HMD_REQUIRE(!table.values.empty() &&
                  (table.values.size() & (table.values.size() - 1)) == 0,
              "Netlist: LUT size must be a power of two");
  HMD_REQUIRE(table.step_shift < 63, "Netlist: LUT step shift out of range");
  luts_.push_back(std::move(table));
  return static_cast<std::uint32_t>(luts_.size() - 1);
}

NetId Netlist::lut_rom(std::uint32_t table, NetId addr) {
  HMD_REQUIRE(table < luts_.size(), "Netlist: LUT table does not exist");
  require_arith(addr);
  return push({NetOp::kLutRom, NetType::kWide, {addr}, 0, table});
}

void Netlist::set_output(NetId decision) {
  HMD_REQUIRE(!output_valid_, "Netlist: output already set");
  HMD_REQUIRE(operand(decision).type == NetType::kClass,
              "Netlist: output must be a class net");
  output_ = push({NetOp::kOutput, NetType::kClass, {decision}, 0, 0});
  output_valid_ = true;
}

std::size_t Netlist::class_bits() const {
  return std::max<std::size_t>(1, ceil_log2(num_classes_));
}

const NetNode& Netlist::node(NetId id) const {
  HMD_REQUIRE(id < nodes_.size(), "Netlist: net does not exist");
  return nodes_[id];
}

NetId Netlist::output() const {
  HMD_REQUIRE(output_valid_, "Netlist: output not set");
  return output_;
}

std::size_t Netlist::count_ops(NetOp op) const {
  return static_cast<std::size_t>(
      std::count_if(nodes_.begin(), nodes_.end(),
                    [op](const NetNode& n) { return n.op == op; }));
}

namespace {

/// Instance count an n-ary reduction needs: a balanced tree of n-1 stages.
std::uint64_t tree_stages(std::size_t fan_in) {
  return fan_in > 1 ? static_cast<std::uint64_t>(fan_in - 1) : 0;
}

}  // namespace

ResourceCost Netlist::node_cost(NetId id) const {
  const NetNode& n = node(id);
  switch (n.op) {
    case NetOp::kInput:
    case NetOp::kConst:
      return {};
    case NetOp::kCmpLe:
    case NetOp::kCmpGt:
      return hw_op_cost(HwOp::kCompare);
    case NetOp::kMux:
      return hw_op_cost(HwOp::kMux2);
    case NetOp::kAdd:
      return hw_op_cost(HwOp::kAdd);
    case NetOp::kMul:
      return hw_op_cost(HwOp::kMul);
    case NetOp::kAndReduce:
      return hw_op_cost(HwOp::kAnd).scaled(tree_stages(n.args.size()));
    case NetOp::kArgmax:
      return hw_op_cost(HwOp::kArgmaxStage).scaled(tree_stages(n.args.size()));
    case NetOp::kLutRom:
      return hw_op_cost(luts_[n.index].kind == LutRom::Kind::kSigmoid
                            ? HwOp::kSigmoidLut
                            : HwOp::kGaussianLut);
    case NetOp::kOutput:
      return hw_op_cost(HwOp::kRegister);
    case NetOp::kCount:
      break;
  }
  HMD_REQUIRE(false, "Netlist: invalid op");
  return {};
}

std::uint32_t Netlist::node_latency(NetId id) const {
  const NetNode& n = node(id);
  switch (n.op) {
    case NetOp::kInput:
    case NetOp::kConst:
      return 0;
    case NetOp::kCmpLe:
    case NetOp::kCmpGt:
      return hw_op_latency(HwOp::kCompare);
    case NetOp::kMux:
      return hw_op_latency(HwOp::kMux2);
    case NetOp::kAdd:
      return hw_op_latency(HwOp::kAdd);
    case NetOp::kMul:
      return hw_op_latency(HwOp::kMul);
    case NetOp::kAndReduce:
      return ceil_log2(n.args.size()) * hw_op_latency(HwOp::kAnd);
    case NetOp::kArgmax:
      return ceil_log2(n.args.size()) * hw_op_latency(HwOp::kArgmaxStage);
    case NetOp::kLutRom:
      return hw_op_latency(luts_[n.index].kind == LutRom::Kind::kSigmoid
                               ? HwOp::kSigmoidLut
                               : HwOp::kGaussianLut);
    case NetOp::kOutput:
      return hw_op_latency(HwOp::kRegister);
    case NetOp::kCount:
      break;
  }
  HMD_REQUIRE(false, "Netlist: invalid op");
  return 0;
}

double Netlist::node_energy_pj(NetId id) const {
  const NetNode& n = node(id);
  switch (n.op) {
    case NetOp::kInput:
    case NetOp::kConst:
      return 0.0;
    case NetOp::kCmpLe:
    case NetOp::kCmpGt:
      return hw_op_energy_pj(HwOp::kCompare);
    case NetOp::kMux:
      return hw_op_energy_pj(HwOp::kMux2);
    case NetOp::kAdd:
      return hw_op_energy_pj(HwOp::kAdd);
    case NetOp::kMul:
      return hw_op_energy_pj(HwOp::kMul);
    case NetOp::kAndReduce:
      return hw_op_energy_pj(HwOp::kAnd) *
             static_cast<double>(tree_stages(n.args.size()));
    case NetOp::kArgmax:
      return hw_op_energy_pj(HwOp::kArgmaxStage) *
             static_cast<double>(tree_stages(n.args.size()));
    case NetOp::kLutRom:
      return hw_op_energy_pj(luts_[n.index].kind == LutRom::Kind::kSigmoid
                                 ? HwOp::kSigmoidLut
                                 : HwOp::kGaussianLut);
    case NetOp::kOutput:
      return hw_op_energy_pj(HwOp::kRegister);
    case NetOp::kCount:
      break;
  }
  HMD_REQUIRE(false, "Netlist: invalid op");
  return 0.0;
}

ResourceCost Netlist::total_resources() const {
  ResourceCost total;
  for (NetId id = 0; id < nodes_.size(); ++id) total += node_cost(id);
  return total;
}

double Netlist::total_energy_pj() const {
  double total = 0.0;
  for (NetId id = 0; id < nodes_.size(); ++id) total += node_energy_pj(id);
  return total;
}

}  // namespace hmd::hw
