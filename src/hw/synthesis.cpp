#include "hw/synthesis.hpp"

#include <sstream>

#include "util/error.hpp"

namespace hmd::hw {

SynthesisReport synthesize(const DataflowGraph& graph,
                           std::string design_name,
                           const SynthesisOptions& options) {
  HMD_REQUIRE(options.clock_mhz > 0.0, "clock must be positive");
  SynthesisReport report;
  report.design_name = std::move(design_name);
  report.clock_mhz = options.clock_mhz;

  if (options.allocation.has_value()) {
    const OperatorAllocation& alloc = *options.allocation;
    report.latency_cycles =
        graph.schedule_constrained(alloc).latency_cycles;
    // Bounded pools cap the spatially instantiated operators.
    ResourceCost res;
    auto bounded = [](std::size_t demand,
                      std::optional<std::uint32_t> cap) -> std::uint64_t {
      return cap.has_value() ? std::min<std::uint64_t>(demand, *cap)
                             : demand;
    };
    const std::size_t muls =
        graph.count_ops(HwOp::kMul) + graph.count_ops(HwOp::kMac);
    res += hw_op_cost(HwOp::kMul).scaled(bounded(muls, alloc.multipliers));
    res += hw_op_cost(HwOp::kAdd)
               .scaled(bounded(graph.count_ops(HwOp::kAdd), alloc.adders));
    const std::size_t cmps = graph.count_ops(HwOp::kCompare) +
                             graph.count_ops(HwOp::kArgmaxStage);
    res += hw_op_cost(HwOp::kCompare).scaled(bounded(cmps, alloc.comparators));
    // Everything outside the shared pools is instantiated as-is.
    for (HwOp op : {HwOp::kMux2, HwOp::kAnd, HwOp::kSigmoidLut,
                    HwOp::kGaussianLut, HwOp::kRegister}) {
      res += hw_op_cost(op).scaled(graph.count_ops(op));
    }
    report.resources = res;
  } else {
    report.latency_cycles = graph.schedule_asap().latency_cycles;
    report.resources = graph.total_resources();
  }

  report.energy_per_inference_pj = graph.total_energy_pj();
  finalize_power(report, options.inferences_per_second);
  return report;
}

void finalize_power(SynthesisReport& report, double inferences_per_second) {
  report.static_power_mw = 0.015 * report.area_slices() / 10.0;
  report.dynamic_power_mw = report.energy_per_inference_pj * 1e-12 *
                            inferences_per_second * 1e3;
}

std::string SynthesisReport::to_string() const {
  std::ostringstream os;
  os << "design " << design_name << ": " << resources.luts << " LUT, "
     << resources.ffs << " FF, " << resources.dsps << " DSP, "
     << resources.brams << " BRAM (" << area_slices() << " slice-eq), "
     << latency_cycles << " cycles @ " << clock_mhz << " MHz ("
     << latency_us() << " us), " << total_power_mw() << " mW";
  return os.str();
}

}  // namespace hmd::hw
