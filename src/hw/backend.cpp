#include "hw/backend.hpp"

#include "hw/compile.hpp"
#include "hw/netlist_sim.hpp"
#include "hw/verilog_backend.hpp"
#include "hw/vhdl_backend.hpp"
#include "util/error.hpp"

namespace hmd::hw {

const Backend& backend_by_name(std::string_view name) {
  static const VerilogBackend verilog;
  static const VhdlBackend vhdl;
  if (name == "verilog") return verilog;
  if (name == "vhdl") return vhdl;
  throw PreconditionError("unknown RTL backend '" + std::string(name) +
                          "' (known: verilog vhdl)");
}

std::vector<TestVector> testbench_vectors(const CompiledDesign& design,
                                          const ml::Dataset& test,
                                          std::size_t num_vectors) {
  HMD_REQUIRE(!test.empty(), "testbench: empty test set");
  HMD_REQUIRE(test.num_features() >= design.num_features(),
              "testbench: dataset narrower than the design's port list");
  num_vectors = std::min(num_vectors, test.num_instances());
  HMD_REQUIRE(num_vectors >= 1, "testbench: need at least one vector");

  const NetlistSimulator sim(design);
  const std::vector<double>& scales = design.feature_scales();
  std::vector<TestVector> vectors(num_vectors);
  for (std::size_t v = 0; v < num_vectors; ++v) {
    const auto x = test.features_of(v);
    vectors[v].raws.resize(scales.size());
    for (std::size_t f = 0; f < scales.size(); ++f)
      vectors[v].raws[f] = quantize_input_raw(x[f], scales[f]);
    vectors[v].expected = sim.run_raw(vectors[v].raws);
  }
  return vectors;
}

}  // namespace hmd::hw
