// Dataflow graph + scheduler: the core of the HLS-style estimator.
//
// Classifier lowering (lowering.hpp) produces a DAG of datapath operators;
// the scheduler computes latency under either full spatial parallelism
// (every node gets its own operator — Vivado HLS with an unconstrained
// PIPELINE/UNROLL directive set, which is what the thesis synthesized) or a
// bounded operator allocation (resource-shared list scheduling, used by the
// area/latency trade-off ablation).
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "hw/resource.hpp"

namespace hmd::hw {

/// Node handle.
using NodeId = std::uint32_t;

/// One node: a primary input (no cost) or an operator instance.
struct DataflowNode {
  bool is_input = false;
  HwOp op = HwOp::kAdd;      ///< meaningful when !is_input
  std::vector<NodeId> deps;  ///< operand-producing nodes
};

/// Operator allocation for resource-shared scheduling: how many physical
/// instances of each operator class exist. Missing entries = unlimited.
struct OperatorAllocation {
  std::optional<std::uint32_t> multipliers;  ///< shared kMul/kMac pool
  std::optional<std::uint32_t> adders;       ///< shared kAdd pool
  std::optional<std::uint32_t> comparators;  ///< shared kCompare pool
};

/// Schedule result.
struct Schedule {
  std::uint32_t latency_cycles = 0;
  std::vector<std::uint32_t> start_cycle;  ///< per node
};

/// A DAG of fixed-point operators.
class DataflowGraph {
 public:
  /// Primary input marker (no hardware cost, latency 0).
  NodeId add_input();
  /// Add an operator depending on `deps` (all must already exist).
  NodeId add_node(HwOp op, std::vector<NodeId> deps = {});

  std::size_t num_nodes() const { return nodes_.size(); }
  const DataflowNode& node(NodeId id) const;
  /// Count of operator nodes (inputs excluded) of kind `op`.
  std::size_t count_ops(HwOp op) const;
  /// Count of all operator nodes.
  std::size_t num_ops() const;

  /// Total resources under full spatial parallelism.
  ResourceCost total_resources() const;
  /// Total dynamic energy for one inference (pJ).
  double total_energy_pj() const;

  /// ASAP schedule (unbounded resources): latency = critical path.
  Schedule schedule_asap() const;
  /// Resource-constrained list schedule.
  Schedule schedule_constrained(const OperatorAllocation& alloc) const;

 private:
  std::vector<DataflowNode> nodes_;
};

}  // namespace hmd::hw
