// FPGA resource model.
//
// The thesis pushes each trained classifier through Xilinx Vivado HLS and
// compares the resulting area and latency (Figs. 14-16). This module is the
// cost side of our HLS-style estimator: a library of Q16.16 fixed-point
// datapath operators with LUT/FF/DSP/BRAM footprints and pipeline latencies
// shaped after 7-series synthesis results at a 100 MHz clock.
#pragma once

#include <cstdint>
#include <string_view>

namespace hmd::hw {

/// Aggregate FPGA resource usage.
struct ResourceCost {
  std::uint64_t luts = 0;
  std::uint64_t ffs = 0;
  std::uint64_t dsps = 0;
  std::uint64_t brams = 0;

  ResourceCost& operator+=(const ResourceCost& other);
  friend ResourceCost operator+(ResourceCost a, const ResourceCost& b) {
    a += b;
    return a;
  }
  ResourceCost scaled(std::uint64_t n) const;

  /// Slice-equivalent area: the scalar "area" number the paper's Fig. 14
  /// compares. DSPs and BRAMs are weighted by their slice-equivalent cost
  /// (a DSP48 ≈ 50 slices of logic if implemented in fabric; a BRAM36 ≈ 100).
  double equivalent_slices() const;
};

/// Datapath operator inventory (32-bit Q16.16 words unless noted).
enum class HwOp : std::uint8_t {
  kCompare,     ///< 32-bit magnitude comparator
  kAdd,         ///< 32-bit adder/subtractor
  kMul,         ///< 32x32 fixed-point multiplier (DSP-mapped)
  kMac,         ///< fused multiply-accumulate
  kMux2,        ///< 2:1 32-bit mux
  kAnd,         ///< wide AND reduction (rule conjunction)
  kSigmoidLut,  ///< BRAM-backed sigmoid/exp lookup
  kGaussianLut, ///< BRAM-backed log-density lookup (Naive Bayes)
  kArgmaxStage, ///< compare+select stage of an argmax tree
  kRegister,    ///< pipeline register stage
  kCount
};

std::string_view hw_op_name(HwOp op);

/// Per-instance resource cost of an operator.
ResourceCost hw_op_cost(HwOp op);

/// Pipeline latency of an operator, in cycles at the 100 MHz target clock.
std::uint32_t hw_op_latency(HwOp op);

/// Per-operation dynamic energy (pJ) at 100 MHz — drives the power model.
double hw_op_energy_pj(HwOp op);

}  // namespace hmd::hw
