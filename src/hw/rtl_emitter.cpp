#include "hw/rtl_emitter.hpp"

#include "hw/compile.hpp"
#include "hw/fixed_point_eval.hpp"
#include "hw/verilog_backend.hpp"

namespace hmd::hw {

namespace {

std::string emit_via_pipeline(const ml::Classifier& clf,
                              std::size_t num_features,
                              const std::string& module_name) {
  CompileOptions options;
  options.num_features = num_features;
  options.module_name = module_name;
  return compile(clf, std::move(options)).emit(VerilogBackend());
}

}  // namespace

std::string emit_verilog(const ml::OneR& model, std::size_t num_features,
                         const std::string& module_name) {
  return emit_via_pipeline(model, num_features, module_name);
}

std::string emit_verilog(const ml::DecisionStump& model,
                         std::size_t num_features,
                         const std::string& module_name) {
  return emit_via_pipeline(model, num_features, module_name);
}

std::string emit_verilog(const ml::J48& model, std::size_t num_features,
                         const std::string& module_name) {
  return emit_via_pipeline(model, num_features, module_name);
}

std::string emit_verilog(const ml::JRip& model, std::size_t num_features,
                         const std::string& module_name) {
  return emit_via_pipeline(model, num_features, module_name);
}

std::string emit_verilog(const ml::Logistic& model, std::size_t num_features,
                         const std::string& module_name) {
  return emit_via_pipeline(model, num_features, module_name);
}

std::string emit_verilog(const ml::LinearSvm& model,
                         std::size_t num_features,
                         const std::string& module_name) {
  return emit_via_pipeline(model, num_features, module_name);
}

std::string emit_verilog(const ml::Classifier& wrapped,
                         std::size_t num_features,
                         const std::string& module_name) {
  return emit_via_pipeline(wrapped, num_features, module_name);
}

std::string emit_verilog_testbench(const ml::Classifier& clf,
                                   const ml::Dataset& test,
                                   std::size_t num_vectors,
                                   const std::string& module_name) {
  CompileOptions options;
  options.num_features = test.num_features();
  options.module_name = module_name;
  // Pin the input grid to the dataset the way evaluate_fixed_point does,
  // so the vectors exercise the same quantization the accuracy harness
  // validated.
  options.feature_absmax = calibrate_feature_absmax(test);
  const CompiledDesign design = compile(clf, std::move(options));
  return VerilogBackend().emit_testbench(design, test, num_vectors);
}

}  // namespace hmd::hw
