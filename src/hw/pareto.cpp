#include "hw/pareto.hpp"

#include <algorithm>

#include "hw/lowering.hpp"
#include "util/error.hpp"

namespace hmd::hw {

namespace {

DesignPoint evaluate(const DataflowGraph& graph,
                     const OperatorAllocation& alloc, double clock_mhz) {
  SynthesisOptions options;
  options.clock_mhz = clock_mhz;
  const bool bounded = alloc.multipliers.has_value() ||
                       alloc.adders.has_value() ||
                       alloc.comparators.has_value();
  if (bounded) options.allocation = alloc;
  const SynthesisReport report = synthesize(graph, "dse", options);
  return {.allocation = alloc,
          .area_slices = report.area_slices(),
          .latency_cycles = report.latency_cycles,
          .pareto_optimal = false};
}

void mark_pareto(std::vector<DesignPoint>& points) {
  for (DesignPoint& p : points) {
    p.pareto_optimal = true;
    for (const DesignPoint& q : points) {
      const bool dominates =
          (q.area_slices <= p.area_slices &&
           q.latency_cycles <= p.latency_cycles) &&
          (q.area_slices < p.area_slices ||
           q.latency_cycles < p.latency_cycles);
      if (dominates) {
        p.pareto_optimal = false;
        break;
      }
    }
  }
}

}  // namespace

std::vector<DesignPoint> explore_design_space(const DataflowGraph& graph,
                                              const ParetoOptions& options) {
  HMD_REQUIRE(!options.pool_sizes.empty(),
              "explore_design_space: no pool sizes");
  std::vector<DesignPoint> points;

  // Fully parallel reference point.
  points.push_back(evaluate(graph, {}, options.clock_mhz));

  // Shared-multiplier sweeps (the dominant cost), alone and with matched
  // adder/comparator pools.
  for (std::uint32_t m : options.pool_sizes) {
    points.push_back(
        evaluate(graph, {.multipliers = m}, options.clock_mhz));
    points.push_back(evaluate(graph,
                              {.multipliers = m, .adders = m,
                               .comparators = m},
                              options.clock_mhz));
  }

  std::sort(points.begin(), points.end(),
            [](const DesignPoint& a, const DesignPoint& b) {
              if (a.area_slices != b.area_slices)
                return a.area_slices < b.area_slices;
              return a.latency_cycles < b.latency_cycles;
            });
  // Deduplicate identical (area, latency) points.
  points.erase(std::unique(points.begin(), points.end(),
                           [](const DesignPoint& a, const DesignPoint& b) {
                             return a.area_slices == b.area_slices &&
                                    a.latency_cycles == b.latency_cycles;
                           }),
               points.end());
  mark_pareto(points);
  return points;
}

std::vector<DesignPoint> explore_classifier(const ml::Classifier& clf,
                                            std::size_t num_features,
                                            const ParetoOptions& options) {
  return explore_design_space(lower_classifier(clf, num_features), options);
}

std::vector<DesignPoint> pareto_front(std::vector<DesignPoint> points) {
  mark_pareto(points);
  std::vector<DesignPoint> front;
  for (const DesignPoint& p : points)
    if (p.pareto_optimal) front.push_back(p);
  std::sort(front.begin(), front.end(),
            [](const DesignPoint& a, const DesignPoint& b) {
              return a.area_slices < b.area_slices;
            });
  return front;
}

}  // namespace hmd::hw
