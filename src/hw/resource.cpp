#include "hw/resource.hpp"

#include <algorithm>
#include <array>

#include "util/error.hpp"

namespace hmd::hw {

ResourceCost& ResourceCost::operator+=(const ResourceCost& other) {
  luts += other.luts;
  ffs += other.ffs;
  dsps += other.dsps;
  brams += other.brams;
  return *this;
}

ResourceCost ResourceCost::scaled(std::uint64_t n) const {
  return {luts * n, ffs * n, dsps * n, brams * n};
}

double ResourceCost::equivalent_slices() const {
  // 7-series slice: 4 LUTs + 8 FFs.
  const double logic_slices =
      std::max(static_cast<double>(luts) / 4.0, static_cast<double>(ffs) / 8.0);
  return logic_slices + 50.0 * static_cast<double>(dsps) +
         100.0 * static_cast<double>(brams);
}

namespace {

struct OpInfo {
  std::string_view name;
  ResourceCost cost;
  std::uint32_t latency;
  double energy_pj;
};

constexpr std::size_t kNumOps = static_cast<std::size_t>(HwOp::kCount);

const std::array<OpInfo, kNumOps>& op_table() {
  static const std::array<OpInfo, kNumOps> kTable = {{
      // name            {luts, ffs, dsps, brams} latency energy
      {"compare",        {16, 1, 0, 0},   1, 0.8},
      {"add",            {32, 32, 0, 0},  1, 1.2},
      {"mul",            {40, 64, 3, 0},  3, 6.5},
      {"mac",            {48, 72, 3, 0},  3, 7.0},
      {"mux2",           {16, 8, 0, 0},   1, 0.3},
      {"and",            {4, 1, 0, 0},    1, 0.2},
      {"sigmoid_lut",    {24, 32, 0, 1},  2, 2.5},
      {"gaussian_lut",   {24, 32, 0, 1},  2, 2.5},
      {"argmax_stage",   {36, 33, 0, 0},  1, 1.1},
      {"register",       {0, 32, 0, 0},   1, 0.4},
  }};
  return kTable;
}

const OpInfo& info_of(HwOp op) {
  const auto i = static_cast<std::size_t>(op);
  HMD_REQUIRE(i < kNumOps, "invalid hardware operator");
  return op_table()[i];
}

}  // namespace

std::string_view hw_op_name(HwOp op) { return info_of(op).name; }
ResourceCost hw_op_cost(HwOp op) { return info_of(op).cost; }
std::uint32_t hw_op_latency(HwOp op) { return info_of(op).latency; }
double hw_op_energy_pj(HwOp op) { return info_of(op).energy_pj; }

}  // namespace hmd::hw
