#include "hw/vhdl_backend.hpp"

#include <cstdint>
#include <sstream>

#include "hw/compile.hpp"
#include "util/error.hpp"
#include "util/strings.hpp"

namespace hmd::hw {

namespace {

/// 64-bit signed literal as a VHDL-2008 hex bit-string (two's complement).
std::string vs64(std::int64_t v) {
  return format("signed'(X\"%016llX\")",
                static_cast<unsigned long long>(v));
}

/// Signal name for a net, prefixed by value domain: n = signed(63 downto
/// 0), b = boolean, c = unsigned class label.
std::string sig(const Netlist& nl, NetId id) {
  switch (nl.node(id).type) {
    case NetType::kBit: return format("b%u", id);
    case NetType::kClass: return format("c%u", id);
    case NetType::kQ16:
    case NetType::kWide: break;
  }
  return format("n%u", id);
}

void emit_decl(std::ostringstream& os, const Netlist& nl, NetId id) {
  const NetNode& n = nl.node(id);
  if (n.op == NetOp::kOutput) return;  // the shared `decision` signal
  switch (n.type) {
    case NetType::kBit:
      os << "  signal " << sig(nl, id) << " : boolean;\n";
      break;
    case NetType::kClass:
      os << "  signal " << sig(nl, id) << " : unsigned("
         << nl.class_bits() - 1 << " downto 0);\n";
      break;
    case NetType::kQ16:
    case NetType::kWide:
      os << "  signal " << sig(nl, id) << " : signed(63 downto 0);\n";
      break;
  }
}

void emit_node(std::ostringstream& os, const Netlist& nl, NetId id) {
  const NetNode& n = nl.node(id);
  const std::size_t cb = nl.class_bits();
  const std::string me = sig(nl, id);
  switch (n.op) {
    case NetOp::kInput:
      os << "  " << me << " <= resize(f" << n.index << ", 64);\n";
      break;
    case NetOp::kConst:
      if (n.type == NetType::kBit)
        os << "  " << me << " <= " << (n.value != 0 ? "true" : "false")
           << ";\n";
      else if (n.type == NetType::kClass)
        os << "  " << me << " <= to_unsigned(" << n.value << ", " << cb
           << ");\n";
      else
        os << "  " << me << " <= " << vs64(n.value) << ";\n";
      break;
    case NetOp::kCmpLe:
      os << "  " << me << " <= " << sig(nl, n.args[0])
         << " <= " << sig(nl, n.args[1]) << ";\n";
      break;
    case NetOp::kCmpGt:
      os << "  " << me << " <= " << sig(nl, n.args[0]) << " > "
         << sig(nl, n.args[1]) << ";\n";
      break;
    case NetOp::kMux:
      os << "  " << me << " <= " << sig(nl, n.args[1]) << " when "
         << sig(nl, n.args[0]) << " else " << sig(nl, n.args[2]) << ";\n";
      break;
    case NetOp::kAdd:
      os << "  " << me << " <= " << sig(nl, n.args[0]) << " + "
         << sig(nl, n.args[1]) << ";\n";
      break;
    case NetOp::kMul:
      // Full-width product in a 256-bit intermediate, arithmetic shift,
      // then resize back onto the 64-bit Q48.16 grid.
      os << "  " << me << " <= resize(shift_right(resize("
         << sig(nl, n.args[0]) << ", 128) * resize(" << sig(nl, n.args[1])
         << ", 128), " << n.value << "), 64);\n";
      break;
    case NetOp::kAndReduce: {
      os << "  " << me << " <= ";
      for (std::size_t i = 0; i < n.args.size(); ++i) {
        if (i) os << " and ";
        os << sig(nl, n.args[i]);
      }
      os << ";\n";
      break;
    }
    case NetOp::kArgmax: {
      os << "  argmax" << id << " : process (";
      for (std::size_t i = 0; i < n.args.size(); ++i) {
        if (i) os << ", ";
        os << sig(nl, n.args[i]);
      }
      os << ")\n";
      os << "    variable best_idx : unsigned(" << cb - 1
         << " downto 0);\n";
      os << "    variable best_val : signed(63 downto 0);\n";
      os << "  begin\n";
      os << "    best_idx := to_unsigned(0, " << cb << ");\n";
      os << "    best_val := " << sig(nl, n.args[0]) << ";\n";
      for (std::size_t i = 1; i < n.args.size(); ++i) {
        os << "    if " << sig(nl, n.args[i]) << " > best_val then\n";
        os << "      best_idx := to_unsigned(" << i << ", " << cb << ");\n";
        os << "      best_val := " << sig(nl, n.args[i]) << ";\n";
        os << "    end if;\n";
      }
      os << "    " << me << " <= best_idx;\n";
      os << "  end process;\n";
      break;
    }
    case NetOp::kLutRom: {
      const LutRom& rom = nl.luts()[n.index];
      const std::size_t last = rom.values.size() - 1;
      os << "  lut" << id << " : process (" << sig(nl, n.args[0]) << ")\n";
      os << "    variable off : signed(63 downto 0);\n";
      os << "  begin\n";
      os << "    off := shift_right(" << sig(nl, n.args[0]) << " - "
         << vs64(rom.lo_raw) << ", " << rom.step_shift << ");\n";
      os << "    if off < 0 then\n";
      os << "      " << me << " <= rom" << n.index << "(0);\n";
      os << "    elsif off > " << last << " then\n";
      os << "      " << me << " <= rom" << n.index << "(" << last << ");\n";
      os << "    else\n";
      os << "      " << me << " <= rom" << n.index
         << "(to_integer(off));\n";
      os << "    end if;\n";
      os << "  end process;\n";
      break;
    }
    case NetOp::kOutput:
      os << "\n  decision <= " << sig(nl, n.args[0]) << ";\n";
      break;
    case NetOp::kCount:
      HMD_REQUIRE(false, "VhdlBackend: invalid op");
  }
}

void emit_preamble(std::ostringstream& os) {
  os << "library ieee;\n";
  os << "use ieee.std_logic_1164.all;\n";
  os << "use ieee.numeric_std.all;\n\n";
}

}  // namespace

std::string VhdlBackend::emit(const CompiledDesign& design) const {
  const Netlist& nl = design.netlist();
  HMD_REQUIRE(nl.has_output(), "VhdlBackend: design has no output net");
  const std::size_t cb = nl.class_bits();

  std::ostringstream os;
  os << "-- Generated by hmdetect: hardware malware detector RTL.\n";
  os << "-- Inputs are Q16.16 fixed-point HPC window counts.\n";
  os << "-- Scheme: " << design.scheme() << " — " << nl.num_nodes()
     << " nets from the hw::compile() netlist IR (VHDL-2008).\n";
  emit_preamble(os);

  os << "entity " << design.module_name() << " is\n";
  os << "  port (\n";
  os << "    clk       : in  std_logic;\n";
  os << "    rst       : in  std_logic;\n";
  os << "    valid_in  : in  std_logic;\n";
  for (std::size_t f = 0; f < nl.num_features(); ++f)
    os << "    f" << f << "        : in  signed(31 downto 0);\n";
  os << "    class_out : out unsigned(" << cb - 1 << " downto 0);\n";
  os << "    valid_out : out std_logic\n";
  os << "  );\n";
  os << "end entity " << design.module_name() << ";\n\n";

  os << "architecture rtl of " << design.module_name() << " is\n";
  for (std::size_t t = 0; t < nl.luts().size(); ++t) {
    const LutRom& rom = nl.luts()[t];
    os << "  -- "
       << (rom.kind == LutRom::Kind::kSigmoid ? "sigmoid" : "Gaussian")
       << " ROM " << t << " (" << rom.values.size() << " entries)\n";
    os << "  type rom" << t << "_t is array (0 to " << rom.values.size() - 1
       << ") of signed(63 downto 0);\n";
    os << "  constant rom" << t << " : rom" << t << "_t := (\n";
    for (std::size_t i = 0; i < rom.values.size(); ++i)
      os << "    " << vs64(rom.values[i])
         << (i + 1 < rom.values.size() ? "," : "") << "\n";
    os << "  );\n";
  }
  for (NetId id = 0; id < nl.num_nodes(); ++id) emit_decl(os, nl, id);
  os << "  signal decision : unsigned(" << cb - 1 << " downto 0);\n";
  os << "begin\n";

  for (NetId id = 0; id < nl.num_nodes(); ++id) emit_node(os, nl, id);

  os << "\n  registered_output : process (clk)\n";
  os << "  begin\n";
  os << "    if rising_edge(clk) then\n";
  os << "      if rst = '1' then\n";
  os << "        class_out <= (others => '0');\n";
  os << "        valid_out <= '0';\n";
  os << "      else\n";
  os << "        class_out <= decision;\n";
  os << "        valid_out <= valid_in;\n";
  os << "      end if;\n";
  os << "    end if;\n";
  os << "  end process;\n\n";
  os << "end architecture rtl;\n";
  return os.str();
}

std::string VhdlBackend::emit_testbench(const CompiledDesign& design,
                                        const ml::Dataset& test,
                                        std::size_t num_vectors) const {
  const std::vector<TestVector> vectors =
      testbench_vectors(design, test, num_vectors);
  const std::size_t d = design.num_features();
  const std::size_t cb = design.netlist().class_bits();
  const std::string& module_name = design.module_name();

  std::ostringstream os;
  os << "-- Self-checking testbench for " << module_name << ".\n";
  os << "-- Expected values are the netlist simulator's decisions on the\n";
  os << "-- shared Q16.16 input grid (hw/netlist.hpp).\n";
  emit_preamble(os);
  os << "use std.env.all;\n\n";
  os << "entity " << module_name << "_tb is\n";
  os << "end entity " << module_name << "_tb;\n\n";
  os << "architecture sim of " << module_name << "_tb is\n";
  os << "  signal clk       : std_logic := '0';\n";
  os << "  signal rst       : std_logic := '1';\n";
  os << "  signal valid_in  : std_logic := '0';\n";
  for (std::size_t f = 0; f < d; ++f)
    os << "  signal f" << f << "        : signed(31 downto 0) := "
       << "(others => '0');\n";
  os << "  signal class_out : unsigned(" << cb - 1 << " downto 0);\n";
  os << "  signal valid_out : std_logic;\n";
  os << "begin\n";
  os << "  clk <= not clk after 5 ns;\n\n";
  os << "  dut : entity work." << module_name << "\n";
  os << "    port map (clk => clk, rst => rst, valid_in => valid_in,\n";
  for (std::size_t f = 0; f < d; ++f)
    os << "      f" << f << " => f" << f << ",\n";
  os << "      class_out => class_out, valid_out => valid_out);\n\n";
  os << "  stimulus : process\n";
  os << "    variable errors : natural := 0;\n";
  os << "  begin\n";
  os << "    wait until rising_edge(clk);\n";
  os << "    rst <= '0';\n";
  os << "    valid_in <= '1';\n";
  for (std::size_t v = 0; v < vectors.size(); ++v) {
    os << "    ";
    for (std::size_t f = 0; f < d; ++f) {
      HMD_REQUIRE(vectors[v].raws[f] >= -2147483647LL &&
                      vectors[v].raws[f] <= 2147483647LL,
                  "testbench: port raw overflows 32 bits");
      os << "f" << f << " <= to_signed("
         << static_cast<long long>(vectors[v].raws[f]) << ", 32); ";
    }
    os << "\n    wait until rising_edge(clk);\n";
    os << "    wait for 1 ns;\n";
    os << "    if class_out /= to_unsigned(" << vectors[v].expected << ", "
       << cb << ") then\n";
    os << "      report \"FAIL: vector " << v << "\" severity warning;\n";
    os << "      errors := errors + 1;\n";
    os << "    end if;\n";
  }
  os << "    if errors = 0 then\n";
  os << "      report \"PASS: " << vectors.size() << " vectors\";\n";
  os << "    else\n";
  os << "      report \"FAIL\" severity error;\n";
  os << "    end if;\n";
  os << "    finish;\n";
  os << "  end process;\n";
  os << "end architecture sim;\n";
  return os.str();
}

}  // namespace hmd::hw
