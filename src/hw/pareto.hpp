// Area-latency design-space exploration.
//
// The thesis synthesizes each classifier once (fully parallel); a real HLS
// flow explores the allocation space. This module sweeps the shared
// multiplier/adder/comparator pools of a lowered classifier and returns the
// Pareto-optimal (area, latency) design points — the curve an implementer
// actually chooses from.
#pragma once

#include <vector>

#include "hw/dataflow.hpp"
#include "hw/synthesis.hpp"
#include "ml/classifier.hpp"

namespace hmd::hw {

/// One explored design point.
struct DesignPoint {
  OperatorAllocation allocation;  ///< empty optionals = unbounded
  double area_slices = 0.0;
  std::uint32_t latency_cycles = 0;
  bool pareto_optimal = false;
};

/// Exploration controls.
struct ParetoOptions {
  /// Candidate pool sizes tried for each operator class (also combined).
  std::vector<std::uint32_t> pool_sizes = {1, 2, 4, 8, 16, 32};
  double clock_mhz = 100.0;
};

/// Sweep operator allocations for `graph`; all evaluated points are
/// returned, sorted by area, with Pareto-optimal ones marked.
std::vector<DesignPoint> explore_design_space(const DataflowGraph& graph,
                                              const ParetoOptions& options = {});

/// Convenience: lower `clf` and explore.
std::vector<DesignPoint> explore_classifier(const ml::Classifier& clf,
                                            std::size_t num_features,
                                            const ParetoOptions& options = {});

/// Filter to the Pareto-optimal subset (sorted by area ascending).
std::vector<DesignPoint> pareto_front(std::vector<DesignPoint> points);

}  // namespace hmd::hw
