// Synthesis report: the numbers Vivado HLS hands back — area, latency,
// power — for one lowered classifier, at the 100 MHz target clock.
#pragma once

#include <string>

#include "hw/dataflow.hpp"

namespace hmd::hw {

/// Synthesis options.
struct SynthesisOptions {
  double clock_mhz = 100.0;
  /// When set, schedule with this operator allocation instead of full
  /// spatial parallelism (resources are then bounded by the allocation).
  std::optional<OperatorAllocation> allocation;
  /// Windows classified per second (drives average power): the paper's
  /// 10 ms sampling period → 100 inferences/s per monitored core.
  double inferences_per_second = 100.0;
};

/// The estimator's output for one classifier implementation.
struct SynthesisReport {
  std::string design_name;
  ResourceCost resources;
  std::uint32_t latency_cycles = 0;
  double clock_mhz = 100.0;
  double energy_per_inference_pj = 0.0;
  double static_power_mw = 0.0;
  double dynamic_power_mw = 0.0;

  double latency_us() const {
    return static_cast<double>(latency_cycles) / clock_mhz;
  }
  double area_slices() const { return resources.equivalent_slices(); }
  double total_power_mw() const { return static_power_mw + dynamic_power_mw; }

  /// Multi-line human-readable rendering.
  std::string to_string() const;
};

/// Schedule + bind `graph` and produce the report.
SynthesisReport synthesize(const DataflowGraph& graph, std::string design_name,
                           const SynthesisOptions& options = {});

/// Fill the power fields of a report whose area/energy are already set:
/// static power scales with occupied area, dynamic with inference rate.
/// Shared between the analytic estimator above and CompiledDesign::report().
void finalize_power(SynthesisReport& report, double inferences_per_second);

}  // namespace hmd::hw
