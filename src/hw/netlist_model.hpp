// NetlistClassifier: a compiled design served through the ml::Classifier
// interface — what ServeConfig::Tier::kFpga scores with. predict() runs
// the cycle-accurate NetlistSimulator on the shared Q16.16 input grid, so
// serving verdicts are exactly what the emitted RTL would produce.
//
// The classifier is predict-only: it wraps an already-trained model at
// construction (per-shard lazy compile after hot-swap) and train() throws.
#pragma once

#include <memory>

#include "hw/compile.hpp"
#include "hw/netlist_sim.hpp"
#include "ml/classifier.hpp"

namespace hmd::hw {

class NetlistClassifier final : public ml::Classifier {
 public:
  /// Compiles `clf` (throws like hw::compile on unsupported schemes /
  /// untrained models / bad options).
  NetlistClassifier(const ml::Classifier& clf, CompileOptions options);

  /// Wraps an already-compiled design (the Result-friendly path: pair
  /// with hw::try_compile to avoid exceptions on the serving hot-swap).
  explicit NetlistClassifier(CompiledDesign design);

  void train(const ml::DatasetView& data) override;
  std::size_t predict(std::span<const double> features) const override;
  void distribution_batch(std::span<const double> flat,
                          std::size_t window_size,
                          std::span<double> out) const override;
  /// "fpga/" + the compiled scheme's name ("fpga/J48", ...).
  std::string name() const override;
  std::size_t num_classes() const override;

  const CompiledDesign& design() const { return design_; }

 private:
  CompiledDesign design_;
  NetlistSimulator sim_;
};

}  // namespace hmd::hw
