// Fixed-point accuracy check: re-evaluate a trained classifier with inputs
// quantized through the Q16.16 datapath word, to confirm the hardware
// implementation would not lose accuracy (part of validating the HLS-style
// substitution for Vivado).
#pragma once

#include "ml/classifier.hpp"
#include "ml/evaluation.hpp"

namespace hmd::hw {

/// Evaluate `clf` on `test` with every feature quantized to Q16.16 after
/// per-feature scaling into the representable range.
ml::EvaluationReport evaluate_fixed_point(const ml::Classifier& clf,
                                          const ml::Dataset& test);

}  // namespace hmd::hw
