// Fixed-point accuracy check: re-evaluate a trained classifier with inputs
// quantized through the Q16.16 datapath word, to confirm the hardware
// implementation would not lose accuracy (part of validating the HLS-style
// substitution for Vivado).
#pragma once

#include "ml/classifier.hpp"
#include "ml/evaluation.hpp"

namespace hmd::hw {

/// Per-feature magnitude calibration over `test`: the absmax vector the
/// Q16.16 input grid scales against. Shared by evaluate_fixed_point, the
/// q16 serving tier (ml::QuantizedModel) and CompileOptions.feature_absmax,
/// so one dataset pins all three to the identical grid.
std::vector<double> calibrate_feature_absmax(const ml::Dataset& test);

/// Evaluate `clf` on `test` with every feature quantized to Q16.16 after
/// per-feature scaling into the representable range.
ml::EvaluationReport evaluate_fixed_point(const ml::Classifier& clf,
                                          const ml::Dataset& test);

}  // namespace hmd::hw
