// Sharded streaming detection engine — the serving path of the detector.
//
// A deployed HMD scores many monitored processes ("streams") at once. This
// engine turns the per-window OnlineDetector into a multi-stream service:
//
//   feeder threads ──ingest──▶ per-stream lock-free rings (spsc_ring.hpp)
//                                      │ StreamRouter: stream id → shard
//                                      ▼
//   shard workers ──gather──▶ one contiguous cross-stream batch
//                 ──score───▶ a single Classifier::distribution_batch call
//                 ──apply───▶ per-stream OnlineDetector streak/alarm state
//
// Batching across streams is the point: instead of one virtual
// distribution() call (and allocation) per window per stream, a shard
// gathers every pending window from all of its streams into one columnar-
// friendly block and scores it in one call, keeping the ml kernels' hot
// path warm. The streak/alarm state machine then replays per stream in
// arrival order, so for any shard count the verdict sequence of each
// stream is bit-identical to feeding that stream serially through
// OnlineDetector::observe (pinned by tests/serve/test_stream_engine.cpp).
//
// Backpressure is per stream and bounded (ServeConfig::backpressure):
//   kBlock      — ingest spins until the ring has space (lossless);
//   kDropOldest — ingest discards the stream's oldest unscored window and
//                 counts it (serve.dropped); the newest window always wins.
//
// Resilience (serve/resilience.hpp, docs/resilience.md): models arrive
// through a ModelHub — workers pin the current epoch per batch, so a
// hot-swap is one atomic publish and every verdict is stamped with the
// epoch version that scored it. A failing or over-budget primary walks
// the degradation ladder (retry w/ backoff → fallback model → probe &
// recover); only when there is no fallback does the engine latch a fatal
// error (surfaced as an ErrorInfo via drain()/last_error()). snapshot()/
// checkpoint() capture per-stream monitor state for bit-identical restart
// (ServeConfig::restore_from), safely while ingest is live.
//
// Observability (process metrics registry; see docs/serving.md):
//   serve.ingest_total[.shard<k>]    counter   windows accepted
//   serve.dropped[.shard<k>]         counter   windows dropped (kDropOldest)
//   serve.batches.shard<k>           counter   batches scored
//   serve.batch_size[.shard<k>]      histogram windows per batch
//   serve.queue_depth.shard<k>       gauge     windows pending after gather
//   serve.score_us[.shard<k>]        histogram batch score wall time
//   serve.e2e_latency_us[.shard<k>]  histogram ingest → verdict latency
// plus the serve.resilience.* family (docs/resilience.md):
//   retries, score_failures, fallback_batches, degrade_events, recoveries,
//   budget_overruns, swaps_observed, errors_swallowed, checkpoints,
//   restored_streams (counters); degraded_shards, model_version (gauges);
// the serve.drift.* family when config.drift.enabled (docs/drift.md):
//   scores, trips, trips_page_hinkley, trips_ks, suppressed,
//   retrains_started, retrains_completed, retrains_failed,
//   retrains_skipped, swaps_published (counters); window_log_rows (gauge);
// the serve.policy.* family when a non-single ensemble policy is active
// (serve/ensemble_policy.hpp, docs/adversarial.md):
//   windows, member<k>.windows, disagreements (counters); members (gauge);
// and a "serve/shard<k>/batch" trace span per scored batch (plus a
// "serve/drift/retrain" span around each background rebuild).
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <memory>
#include <mutex>
#include <optional>
#include <span>
#include <string>
#include <thread>
#include <vector>

#include "core/online_detector.hpp"
#include "ml/classifier.hpp"
#include "serve/drift.hpp"
#include "serve/ensemble_policy.hpp"
#include "serve/resilience.hpp"
#include "util/result.hpp"

namespace hmd::serve {

/// Hard cap on counters per window (the PMU exposes 16 events; reduced
/// feature sets are smaller). Ring slots store this many doubles inline.
inline constexpr std::size_t kMaxWindowWidth = 16;

/// Engine shape and policy. validate() is called by the engine
/// constructor; all fields are fixed for the engine's lifetime.
struct ServeConfig {
  /// Independent scoring workers; streams hash onto shards.
  std::size_t num_shards = 1;
  /// Counters per window (model input width), 1..kMaxWindowWidth.
  std::size_t window_size = 16;
  /// Per-stream ring capacity (rounded up to a power of two).
  std::size_t ring_capacity = 256;
  /// Max windows a shard gathers into one cross-stream batch.
  std::size_t max_batch_windows = 1024;

  enum class Backpressure {
    kBlock,      ///< ingest waits for ring space (lossless)
    kDropOldest  ///< ingest evicts the stream's oldest pending window
  };
  Backpressure backpressure = Backpressure::kBlock;

  /// Alarm policy replicated into every stream's monitor.
  core::OnlineDetectorConfig policy;

  /// Keep every verdict per stream (StreamEngine::verdicts), plus the
  /// model version that scored it (verdict_versions). Off by default:
  /// long-lived deployments only need the monitor's latched state, not
  /// an unbounded verdict log.
  bool record_verdicts = false;

  /// Retry / fallback / fault-injection policy (serve/resilience.hpp).
  ResilienceConfig resilience;

  /// Concept-drift detection + auto-retrain policy (serve/drift.hpp,
  /// docs/drift.md). Off by default; when enabled each shard watches its
  /// score stream and trips emit DriftEvents (drift_events()); with
  /// drift.retrain the engine also keeps a benign window log and rebuilds
  /// the model through drift_pump()/await_retrain().
  DriftConfig drift;

  /// Scoring policy between shard workers and the hub
  /// (serve/ensemble_policy.hpp, docs/adversarial.md). kSingle (the
  /// default) keeps the engine's direct scoring path, bit-identical to a
  /// policy-free build; majority/stochastic ensembles score through a
  /// ScoringPolicy, stamping each verdict with its scoring member's
  /// version. Degraded shards bypass the policy (fallback scores alone).
  EnsembleConfig ensemble;

  /// Serving precision tier. kFloat scores with the published model as-is
  /// (bit-identical to every prior release). kInt8 lowers the primary to
  /// an int8 ml::QuantizedModel per shard (lazily, re-derived after every
  /// hot-swap) and scores batches through the int8 GEMM; kQ16 instead
  /// passes inputs through the hardware Q16.16 grid before the unmodified
  /// float model — the exact semantics of hw/evaluate_fixed_point, so the
  /// serving scores match what the RTL datapath would compute. kFpga goes
  /// one step further: the primary is compiled to the netlist IR
  /// (hw::compile, lazily per shard after every hot-swap) and windows are
  /// scored by the cycle-accurate NetlistSimulator — the verdicts the
  /// emitted Verilog/VHDL would produce, bit-exact. Schemes without the
  /// respective lowering silently keep the float path, and
  /// degraded/fallback scoring is always float. Quantized tiers require
  /// the kSingle ensemble policy — ensemble members vote on float scores
  /// by design. The tier is part of a checkpoint's identity: snapshots pin
  /// it and a restore under a different tier fails (see EngineSnapshot).
  enum class Tier { kFloat, kInt8, kQ16, kFpga };
  Tier tier = Tier::kFloat;

  /// Checkpoint to resume from: streams registered with an id present in
  /// the snapshot pick up that stream's detector state and counters
  /// (first-come for duplicate ids). Null = cold start.
  std::shared_ptr<const EngineSnapshot> restore_from;

  /// The single validation entry point for the whole serving config: own
  /// fields first, then every nested cluster (policy, resilience, drift
  /// when enabled, ensemble). Failures are kPrecondition ErrorInfo values
  /// naming the offending field ("ServeConfig: OnlineDetectorConfig.
  /// flag_threshold: must be in (0, 1)"), so tools can print exactly
  /// which knob is wrong without string-matching exception text.
  Result<void> try_validate() const;
  /// Throwing wrapper over try_validate() (raises PreconditionError) —
  /// called by the engine constructor.
  void validate() const { try_validate().value(); }
};

/// "float", "int8", "q16", "fpga" — the --tier spellings and the
/// snapshot pin.
const char* to_string(ServeConfig::Tier tier);
/// Parse a --tier / snapshot tier name; nullopt for anything else.
std::optional<ServeConfig::Tier> tier_from_name(const std::string& name);

/// Deterministic stream-id → shard mapping (splitmix64 hash, mod shards).
/// A stream's shard never changes, so its windows are always consumed by
/// one worker, preserving per-stream order.
class StreamRouter {
 public:
  explicit StreamRouter(std::size_t num_shards);
  std::size_t num_shards() const { return num_shards_; }
  std::size_t shard_of(std::uint64_t stream_id) const;

 private:
  std::size_t num_shards_;
};

/// The engine. Construction spawns one worker per shard; destruction
/// drains and joins. Models come from a ModelHub (hot-swappable) or, for
/// the common static case, a single classifier reference that must
/// outlive the engine.
///
/// Threading contract:
///  * register_stream may be called from any thread, at any time;
///  * each stream's ingest calls must be serialized (one feeder per
///    stream — that is what defines the stream's window order); distinct
///    streams may ingest concurrently from distinct threads;
///  * hub().publish* may be called from any thread while traffic flows;
///  * snapshot()/checkpoint() may be called from any thread, any time —
///    they capture a between-batches state of every monitor;
///  * drain()/shutdown() require producers to have quiesced first;
///  * monitor()/verdicts()/dropped() are stable after drain() returns.
class StreamEngine {
 public:
  using StreamId = std::uint64_t;
  using Verdict = core::OnlineDetector::Verdict;

  /// Opaque per-stream registration returned by register_stream.
  struct Stream;
  using StreamHandle = Stream*;

  /// Serve epochs published to `hub` (at least one must be published
  /// already). The engine shares ownership of the hub; models stay alive
  /// for as long as any in-flight batch pins their epoch.
  explicit StreamEngine(std::shared_ptr<ModelHub> hub,
                        ServeConfig config = {});

  /// Static-model convenience: wraps `model` (trained, binary, must
  /// outlive the engine) in a single-epoch hub.
  explicit StreamEngine(const ml::Classifier& model, ServeConfig config = {});

  ~StreamEngine();

  StreamEngine(const StreamEngine&) = delete;
  StreamEngine& operator=(const StreamEngine&) = delete;

  const ServeConfig& config() const { return config_; }
  std::size_t num_shards() const { return router_.num_shards(); }
  std::size_t shard_of(StreamId id) const { return router_.shard_of(id); }
  std::size_t num_streams() const;

  /// The model hub — publish here to hot-swap under live traffic.
  ModelHub& hub() { return *hub_; }
  const ModelHub& hub() const { return *hub_; }

  /// Create (and start serving) a new stream. Ids need not be unique —
  /// two registrations are two independent streams that happen to share a
  /// shard. The handle stays valid for the engine's lifetime. When
  /// config().restore_from holds a snapshot with this id, the stream
  /// resumes from the checkpointed detector state.
  StreamHandle register_stream(StreamId id);

  /// Feed the stream's next window (exactly config().window_size
  /// counters). Returns false iff the backpressure policy dropped a
  /// window (kDropOldest evicted the oldest; the new window was still
  /// accepted). Lock-free except for a parked-worker wakeup.
  bool ingest(StreamHandle stream, std::span<const double> window);

  /// Block until every ingested window has been scored (producers must
  /// be quiet). Raises the first latched scoring error, if any. Workers
  /// keep running; more windows may be ingested afterwards.
  void drain();

  /// drain(), then stop and join the workers. Idempotent. Raises any
  /// latched error; the destructor instead records it
  /// (serve.resilience.errors_swallowed + a trace event) and stays
  /// silent.
  void shutdown();

  /// The latched engine error as a value, if any — set when a batch
  /// exhausts every recovery option (retries, then fallback). Inspect
  /// without rethrowing; drain()/shutdown() raise() the same ErrorInfo.
  std::optional<ErrorInfo> last_error() const;

  /// Capture a checkpoint of every stream (detector state + counters +
  /// ring high-water). Safe under live ingest: briefly pauses each
  /// shard's apply step so monitors are captured between batches.
  EngineSnapshot snapshot() const;
  /// snapshot() serialized to `out` (EngineSnapshot text format v1).
  void checkpoint(std::ostream& out) const;

  /// True while shard k is scoring on the fallback model.
  bool shard_degraded(std::size_t shard) const;

  /// The active scoring policy, or null when config().ensemble is single
  /// (tests predict the stochastic schedule through it).
  const ScoringPolicy* scoring_policy() const { return policy_.get(); }

  /// Per-stream monitor (streak/alarm state) — read after drain().
  const core::OnlineDetector& monitor(StreamHandle stream) const;
  /// Per-stream verdict log (empty unless config().record_verdicts).
  const std::vector<Verdict>& verdicts(StreamHandle stream) const;
  /// Model-hub epoch version that scored each logged verdict (parallel
  /// to verdicts(); empty unless config().record_verdicts).
  const std::vector<std::uint64_t>& verdict_versions(
      StreamHandle stream) const;
  /// Windows evicted from this stream under kDropOldest.
  std::uint64_t dropped(StreamHandle stream) const;
  /// Windows this stream accepted (including later-dropped ones).
  std::uint64_t ingested(StreamHandle stream) const;
  /// Peak pending depth this stream's ring ever reached.
  std::uint64_t high_water(StreamHandle stream) const;
  /// Windows accepted across all streams.
  std::uint64_t total_ingested() const;

  // --- Concept drift & auto-retrain (config().drift; docs/drift.md) ---

  /// Every drift trip emitted so far, in detection order. Thread-safe;
  /// stable after drain().
  std::vector<DriftEvent> drift_events() const;

  /// What one drift_pump() call did.
  struct DriftPumpResult {
    /// A background retrain was kicked off on the harvested window log.
    bool retrain_started = false;
    /// Non-zero when a finished retrain's model was published this call —
    /// the new hub epoch version.
    std::uint64_t published_version = 0;
  };

  /// The retrain loop's control point. Call between batches (after a
  /// drain() in tests/tools; on a timer in a long-lived deployment):
  ///   1. a finished retrain's staged model is published to the hub (the
  ///      hot-swap every shard observes on its next batch);
  ///   2. a pending drift trip harvests the benign window log and starts
  ///      the background retrain worker (skipped while one is running or
  ///      when the log has fewer than drift.retrain_min_rows rows).
  /// Publishing only here — never from the worker thread — is what makes
  /// a seeded drift→retrain→swap run deterministic: the swap lands at a
  /// pump point the caller chose, not at a thread-timing accident.
  DriftPumpResult drift_pump();

  /// drift_pump(), wait for any in-flight retrain to finish, then pump
  /// again so the fresh model is published. Returns the published epoch
  /// version (0 when there was nothing to retrain or the retrain failed —
  /// see last_retrain_error()).
  std::uint64_t await_retrain();

  /// Why the most recent retrain failed, if it did (the worker never
  /// throws — a failed rebuild keeps the current epoch serving).
  std::optional<ErrorInfo> last_retrain_error() const;

 private:
  struct Shard;
  struct Batch;
  struct ResilienceInstruments;
  struct DriftInstruments;
  struct PolicyInstruments;

  void worker_loop(Shard& shard);
  /// One batch through the degradation ladder; returns false when the
  /// batch could not be scored at all (error latched, windows dropped).
  bool score_batch(Shard& shard, Batch& batch);
  void enter_degraded(Shard& shard, const char* reason);
  void leave_degraded(Shard& shard);
  void latch_error(ErrorInfo error);
  void drain_internal();
  void join_workers();
  void rethrow_if_failed();
  void unpark(Shard& shard);

  /// Called by a shard worker (under its apply mutex) when its detector
  /// trips: logs the event, bumps metrics, flags a pending retrain.
  void record_drift_event(const DriftEvent& event);
  /// Copy the benign window logs of every stream, oldest-first per stream,
  /// streams in registration order. Takes every apply lock (callers must
  /// hold neither apply locks nor drift_mutex_).
  std::vector<double> harvest_window_log() const;
  /// Background thread body: rebuild drift.retrain_scheme on `rows` and
  /// stage the result for the next pump.
  void retrain_worker(std::vector<double> rows);
  void join_retrain_thread();

  std::shared_ptr<ModelHub> hub_;
  ServeConfig config_;
  StreamRouter router_;

  mutable std::mutex streams_mutex_;
  std::vector<std::unique_ptr<Stream>> streams_;
  /// restore_from entries already claimed by a registration.
  std::vector<bool> restore_claimed_;

  std::vector<std::unique_ptr<Shard>> shards_;
  std::atomic<bool> stop_{false};
  bool joined_ = false;

  std::unique_ptr<ResilienceInstruments> res_;
  std::atomic<std::size_t> degraded_count_{0};

  /// Non-null iff config_.ensemble.kind != kSingle. Shared by all shard
  /// workers (stateless; scratch lives in each worker's Batch).
  std::unique_ptr<ScoringPolicy> policy_;
  std::unique_ptr<PolicyInstruments> policy_ins_;

  mutable std::mutex error_mutex_;
  std::optional<ErrorInfo> first_error_;
  bool error_reported_ = false;  ///< raised to a caller at least once
  std::atomic<bool> failed_{false};

  // Drift + retrain state. Lock order: a shard's apply_mutex may be held
  // when taking drift_mutex_ (record_drift_event); NEVER take an apply
  // mutex while holding drift_mutex_ — harvest_window_log runs before
  // drift_mutex_ in drift_pump for exactly this reason.
  std::unique_ptr<DriftInstruments> drift_ins_;
  mutable std::mutex drift_mutex_;
  std::vector<DriftEvent> drift_events_;
  std::atomic<bool> retrain_requested_{false};
  std::thread retrain_thread_;
  bool retrain_running_ = false;        ///< under drift_mutex_
  std::condition_variable retrain_cv_;  ///< signals retrain_running_ false
  std::shared_ptr<const ml::Classifier> staged_model_;  ///< under drift_mutex_
  std::optional<ErrorInfo> retrain_error_;              ///< under drift_mutex_
};

}  // namespace hmd::serve
