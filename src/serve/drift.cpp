#include "serve/drift.hpp"

#include <algorithm>
#include <cmath>

#include "ml/registry.hpp"
#include "util/error.hpp"

namespace hmd::serve {

// ---------------------------------------------------------------------------
// Page–Hinkley

Result<void> PageHinkleyConfig::try_validate() const {
  if (delta < 0.0)
    return ErrorInfo(ErrCode::kPrecondition,
                     "PageHinkleyConfig.delta: must be >= 0");
  if (lambda <= 0.0)
    return ErrorInfo(ErrCode::kPrecondition,
                     "PageHinkleyConfig.lambda: must be > 0");
  if (min_samples == 0)
    return ErrorInfo(ErrCode::kPrecondition,
                     "PageHinkleyConfig.min_samples: must be >= 1");
  return {};
}

PageHinkley::PageHinkley(PageHinkleyConfig config)
    : config_(config) {
  config_.validate();
}

bool PageHinkley::observe(double x) {
  State& s = state_;
  ++s.count;
  s.mean += (x - s.mean) / static_cast<double>(s.count);
  s.cumulative += x - s.mean - config_.delta;
  s.minimum = std::min(s.minimum, s.cumulative);
  s.last_deviation = s.cumulative - s.minimum;
  if (s.count <= config_.min_samples) return false;
  if (s.last_deviation <= config_.lambda) return false;
  const std::uint64_t trips = s.trips + 1;
  const double tripping_deviation = s.last_deviation;
  reset();
  state_.trips = trips;
  // Keep the tripping statistic readable after the internal re-baseline so
  // callers can report it in the DriftEvent; an explicit reset() clears it.
  state_.last_deviation = tripping_deviation;
  return true;
}

void PageHinkley::reset() {
  const std::uint64_t trips = state_.trips;
  state_ = State{};
  state_.trips = trips;
}

void PageHinkley::restore(const State& state) { state_ = state; }

// ---------------------------------------------------------------------------
// Windowed two-sample KS

Result<void> KsConfig::try_validate() const {
  if (window < 8)
    return ErrorInfo(ErrCode::kPrecondition,
                     "KsConfig.window: must be >= 8");
  if (threshold <= 0.0 || threshold > 1.0)
    return ErrorInfo(ErrCode::kPrecondition,
                     "KsConfig.threshold: must be in (0, 1]");
  if (stride == 0)
    return ErrorInfo(ErrCode::kPrecondition,
                     "KsConfig.stride: must be >= 1");
  return {};
}

KsWindowDetector::KsWindowDetector(KsConfig config) : config_(config) {
  config_.validate();
  reference_.reserve(config_.window);
  ring_.reserve(config_.window);
}

double KsWindowDetector::ks_statistic(std::vector<double> a,
                                      std::vector<double> b) {
  if (a.empty() || b.empty())
    throw PreconditionError("ks_statistic requires non-empty samples");
  std::sort(a.begin(), a.end());
  std::sort(b.begin(), b.end());
  // Two-pointer sweep over the merged order: at every step advance the
  // pointer(s) with the smaller value (ties advance both, so equal values
  // never contribute a spurious gap) and track sup |F_a - F_b|.
  const double na = static_cast<double>(a.size());
  const double nb = static_cast<double>(b.size());
  std::size_t ia = 0, ib = 0;
  double d = 0.0;
  while (ia < a.size() && ib < b.size()) {
    const double va = a[ia], vb = b[ib];
    if (va <= vb) while (ia < a.size() && a[ia] == va) ++ia;
    if (vb <= va) while (ib < b.size() && b[ib] == vb) ++ib;
    d = std::max(d, std::fabs(static_cast<double>(ia) / na -
                              static_cast<double>(ib) / nb));
  }
  return d;
}

bool KsWindowDetector::observe(double x) {
  ++observed_;
  if (reference_.size() < config_.window) {
    reference_.push_back(x);
    return false;
  }
  if (ring_.size() < config_.window) {
    ring_.push_back(x);
    if (ring_.size() < config_.window) return false;
  } else {
    ring_[head_] = x;
    head_ = (head_ + 1) % config_.window;
  }
  // Ring is full: evaluate on the stride grid (counted from the point the
  // window first filled, so the first full window is always evaluated).
  const std::uint64_t since_full =
      observed_ - static_cast<std::uint64_t>(2 * config_.window);
  if (since_full % config_.stride != 0) return false;
  last_statistic_ = ks_statistic(reference_, ring_);
  if (last_statistic_ <= config_.threshold) return false;
  const std::uint64_t trips = trips_ + 1;
  const double tripping_statistic = last_statistic_;
  reset();
  trips_ = trips;
  // Keep the tripping D readable after the internal re-baseline so callers
  // can report it in the DriftEvent; an explicit reset() clears it.
  last_statistic_ = tripping_statistic;
  return true;
}

void KsWindowDetector::reset() {
  reference_.clear();
  ring_.clear();
  head_ = 0;
  observed_ = 0;
  last_statistic_ = 0.0;
  // trips_ deliberately kept: lifetime counter.
}

KsWindowDetector::State KsWindowDetector::state() const {
  State s;
  s.reference = reference_;
  // Normalize the ring to chronological (oldest first): once full, head_
  // points at the oldest element.
  s.current.reserve(ring_.size());
  if (ring_.size() == config_.window) {
    for (std::size_t i = 0; i < ring_.size(); ++i)
      s.current.push_back(ring_[(head_ + i) % ring_.size()]);
  } else {
    s.current = ring_;
  }
  s.observed = observed_;
  s.last_statistic = last_statistic_;
  s.trips = trips_;
  return s;
}

void KsWindowDetector::restore(const State& state) {
  if (state.reference.size() > config_.window ||
      state.current.size() > config_.window)
    throw PreconditionError("ks snapshot larger than configured window");
  reference_ = state.reference;
  ring_ = state.current;
  head_ = 0;  // chronological layout: next overwrite is the oldest slot
  observed_ = state.observed;
  last_statistic_ = state.last_statistic;
  trips_ = state.trips;
}

// ---------------------------------------------------------------------------
// Event / config

std::string to_string(DriftEvent::Detector detector) {
  switch (detector) {
    case DriftEvent::Detector::kPageHinkley: return "page_hinkley";
    case DriftEvent::Detector::kKs: return "ks";
  }
  throw Error("unknown drift detector enumerator");
}

Result<void> DriftConfig::try_validate() const {
  if (Result<void> r = page_hinkley.try_validate(); !r)
    return std::move(r).with_context("DriftConfig");
  if (Result<void> r = ks.try_validate(); !r)
    return std::move(r).with_context("DriftConfig");
  if (!retrain) return {};
  if (!ml::is_one_class_scheme(retrain_scheme))
    return ErrorInfo(
        ErrCode::kPrecondition,
        "DriftConfig.retrain_scheme: must be one-class (got \"" +
            retrain_scheme + "\"; the window log is unlabeled benign "
            "traffic)");
  if (window_log_capacity == 0)
    return ErrorInfo(ErrCode::kPrecondition,
                     "DriftConfig.window_log_capacity: must be >= 1");
  if (retrain_min_rows < 8)
    return ErrorInfo(
        ErrCode::kPrecondition,
        "DriftConfig.retrain_min_rows: must be >= 8 (one-class training "
        "floor)");
  if (retrain_max_rows < retrain_min_rows)
    return ErrorInfo(ErrCode::kPrecondition,
                     "DriftConfig.retrain_max_rows: must be >= "
                     "retrain_min_rows");
  return {};
}

// ---------------------------------------------------------------------------
// ShardDriftDetector

ShardDriftDetector::ShardDriftDetector(const DriftConfig& config,
                                       std::size_t shard)
    : shard_(shard),
      cooldown_scores_(config.cooldown_scores),
      page_hinkley_(config.page_hinkley),
      ks_(config.ks) {}

std::optional<DriftEvent> ShardDriftDetector::observe(
    double probability, std::uint64_t model_version) {
  ++scores_;
  // Both detectors always observe — the cooldown gates trip EMISSION, not
  // observation, so baselines keep tracking the stream during hysteresis.
  const bool ph_trip = page_hinkley_.observe(probability);
  const double ph_stat = page_hinkley_.deviation();
  const bool ks_trip = ks_.observe(probability);
  if (cooldown_left_ > 0) {
    --cooldown_left_;
    if (ph_trip || ks_trip) ++suppressed_;
    return std::nullopt;
  }
  if (!ph_trip && !ks_trip) return std::nullopt;
  DriftEvent event;
  // When both fire on the same score, report Page–Hinkley (the cheaper,
  // more interpretable statistic); the other's trip counter still advanced.
  if (ph_trip) {
    event.detector = DriftEvent::Detector::kPageHinkley;
    event.statistic = ph_stat;
  } else {
    event.detector = DriftEvent::Detector::kKs;
    event.statistic = ks_.last_statistic();
  }
  event.shard = shard_;
  event.score_index = scores_;
  event.model_version = model_version;
  // One trip re-baselines BOTH detectors: they watch the same stream, and
  // a stale sibling baseline would re-trip immediately on the same shift.
  page_hinkley_.reset();
  ks_.reset();
  cooldown_left_ = cooldown_scores_;
  return event;
}

void ShardDriftDetector::on_model_swap() {
  page_hinkley_.reset();
  ks_.reset();
  cooldown_left_ = 0;
}

ShardDriftDetector::State ShardDriftDetector::state() const {
  State s;
  s.page_hinkley = page_hinkley_.state();
  s.ks = ks_.state();
  s.scores = scores_;
  s.cooldown_left = cooldown_left_;
  s.suppressed = suppressed_;
  return s;
}

void ShardDriftDetector::restore(const State& state) {
  page_hinkley_.restore(state.page_hinkley);
  ks_.restore(state.ks);
  scores_ = state.scores;
  cooldown_left_ = state.cooldown_left;
  suppressed_ = state.suppressed;
}

}  // namespace hmd::serve
