#include "serve/ensemble_policy.hpp"

#include <algorithm>
#include <cmath>

#include "util/error.hpp"
#include "util/rng.hpp"
#include "util/strings.hpp"

namespace hmd::serve {

const char* to_string(EnsembleConfig::Kind kind) {
  switch (kind) {
    case EnsembleConfig::Kind::kSingle: return "single";
    case EnsembleConfig::Kind::kMajority: return "majority";
    case EnsembleConfig::Kind::kStochastic: return "stochastic";
  }
  return "?";
}

Result<EnsembleConfig::Kind> ensemble_kind_from_name(
    const std::string& name) {
  if (name == "single") return EnsembleConfig::Kind::kSingle;
  if (name == "majority") return EnsembleConfig::Kind::kMajority;
  if (name == "stochastic") return EnsembleConfig::Kind::kStochastic;
  return ErrorInfo(
      ErrCode::kParse,
      format("unknown policy kind '%s' (single|majority|stochastic)",
             name.c_str()));
}

Result<void> EnsembleConfig::try_validate() const {
  if (kind == Kind::kSingle) {
    if (!members.empty())
      return ErrorInfo(
          ErrCode::kPrecondition,
          "EnsembleConfig.members: single policy takes no extra members");
    return {};
  }
  const std::size_t total = total_members();
  if (total < 2)
    return ErrorInfo(ErrCode::kPrecondition,
                     format("EnsembleConfig.members: ensemble needs >= 2 "
                            "total members, got %zu",
                            total));
  if (kind == Kind::kMajority && (total < 3 || total % 2 == 0))
    return ErrorInfo(ErrCode::kPrecondition,
                     format("EnsembleConfig.members: majority vote needs an "
                            "odd member count >= 3, got %zu",
                            total));
  for (std::size_t i = 0; i < members.size(); ++i) {
    if (members[i].model == nullptr)
      return ErrorInfo(ErrCode::kPrecondition,
                       format("EnsembleConfig.members[%zu].model: null", i));
    if (members[i].model->num_classes() != 2)
      return ErrorInfo(
          ErrCode::kPrecondition,
          format("EnsembleConfig.members[%zu].model: '%s' is not a trained "
                 "binary classifier",
                 i, members[i].model->name().c_str()));
  }
  return {};
}

ScoringPolicy::ScoringPolicy(EnsembleConfig config)
    : config_(std::move(config)) {
  config_.validate();
  HMD_REQUIRE(config_.kind != EnsembleConfig::Kind::kSingle,
              "ScoringPolicy: single policies use the engine's direct path");
}

std::size_t ScoringPolicy::select_member(const WindowKey& key) const {
  // Counter-keyed selection: hash (seed, stream, ordinal) through three
  // splitmix64 rounds. Pure in its inputs, so the schedule is identical
  // for any shard count, batch shape, or restore point.
  std::uint64_t x = config_.seed;
  std::uint64_t h = splitmix64(x);
  x ^= key.stream_id + 0x9e3779b97f4a7c15ull;
  h ^= splitmix64(x);
  x ^= key.ordinal + 0xbf58476d1ce4e5b9ull;
  h ^= splitmix64(x);
  return static_cast<std::size_t>(h % total_members());
}

const ml::Classifier& ScoringPolicy::member_model(
    std::size_t index, const ml::Classifier& primary) const {
  if (config_.include_primary) {
    if (index == 0) return primary;
    return *config_.members[index - 1].model;
  }
  return *config_.members[index].model;
}

std::uint64_t ScoringPolicy::member_version(
    std::size_t index, std::uint64_t primary_version) const {
  if (config_.include_primary) {
    if (index == 0) return primary_version;
    return config_.members[index - 1].version;
  }
  return config_.members[index].version;
}

void ScoringPolicy::score(const ml::Classifier& primary,
                          std::uint64_t primary_version,
                          std::span<const double> flat, std::size_t width,
                          std::span<const WindowKey> keys, std::span<double> dist,
                          std::span<std::uint64_t> versions,
                          Scratch& scratch) const {
  const std::size_t n = keys.size();
  HMD_REQUIRE(width > 0 && flat.size() == n * width,
              "ScoringPolicy::score: flat/keys shape mismatch");
  HMD_REQUIRE(dist.size() == n * 2 && versions.size() == n,
              "ScoringPolicy::score: output shape mismatch");
  const std::size_t total = total_members();
  scratch.member_windows.assign(total, 0);
  scratch.disagreements = 0;
  if (n == 0) return;

  if (config_.kind == EnsembleConfig::Kind::kMajority) {
    // Every member scores the whole batch; the ensemble probability per
    // window is the median member probability (== majority vote at any
    // threshold for the odd member count validate() enforces).
    scratch.member_dist.assign(total * n * 2, 0.0);
    for (std::size_t m = 0; m < total; ++m) {
      std::span<double> out(scratch.member_dist.data() + m * n * 2, n * 2);
      member_model(m, primary).distribution_batch(flat, width, out);
      scratch.member_windows[m] += n;
    }
    scratch.probs.resize(total);
    for (std::size_t w = 0; w < n; ++w) {
      std::size_t flagged = 0;
      for (std::size_t m = 0; m < total; ++m) {
        const double p = scratch.member_dist[m * n * 2 + w * 2 + 1];
        scratch.probs[m] = p;
        if (p >= 0.5) ++flagged;
      }
      auto mid = scratch.probs.begin() +
                 static_cast<std::ptrdiff_t>(total / 2);
      std::nth_element(scratch.probs.begin(), mid, scratch.probs.end());
      const double median = *mid;
      dist[w * 2] = 1.0 - median;
      dist[w * 2 + 1] = median;
      // The median IS the ensemble verdict, so its stamp is the live
      // primary's version — the vote has no single scoring member.
      versions[w] = primary_version;
      if (flagged != 0 && flagged != total) ++scratch.disagreements;
    }
    return;
  }

  // Stochastic: pick each window's member, then batch the gathered
  // windows per member so member models still see one distribution_batch
  // call per batch.
  scratch.selection.resize(n);
  for (std::size_t w = 0; w < n; ++w)
    scratch.selection[w] = select_member(keys[w]);
  for (std::size_t m = 0; m < total; ++m) {
    scratch.gathered.clear();
    for (std::size_t w = 0; w < n; ++w)
      if (scratch.selection[w] == m) scratch.gathered.push_back(w);
    if (scratch.gathered.empty()) continue;
    const std::size_t rows = scratch.gathered.size();
    scratch.member_flat.resize(rows * width);
    for (std::size_t r = 0; r < rows; ++r)
      std::copy_n(flat.data() + scratch.gathered[r] * width, width,
                  scratch.member_flat.data() + r * width);
    scratch.member_dist.assign(rows * 2, 0.0);
    member_model(m, primary).distribution_batch(
        scratch.member_flat, width, scratch.member_dist);
    const std::uint64_t version = member_version(m, primary_version);
    for (std::size_t r = 0; r < rows; ++r) {
      const std::size_t w = scratch.gathered[r];
      dist[w * 2] = scratch.member_dist[r * 2];
      dist[w * 2 + 1] = scratch.member_dist[r * 2 + 1];
      versions[w] = version;
    }
    scratch.member_windows[m] += rows;
  }
}

}  // namespace hmd::serve
