// Bounded lock-free ring buffer — the ingress primitive of the streaming
// detection engine.
//
// Each monitored stream owns one ring: the stream's feeder thread is the
// single producer and the owning shard worker is the single consumer, so
// the nominal discipline is SPSC and the common path is a single
// uncontended CAS per push/pop. The implementation is slot-sequenced
// (Vyukov's bounded queue) rather than a plain head/tail SPSC ring for two
// reasons:
//
//  * the drop-oldest backpressure policy needs the *producer* to discard
//    the consumer's next element when the ring is full. With per-slot
//    sequence numbers that is just a second (contended) consumer — safe
//    and lock-free — whereas a classic SPSC ring would race on the slot
//    being recycled;
//  * accidental extra producers degrade into lock-free contention instead
//    of silent corruption.
//
// No operation blocks, allocates, or takes a lock after construction.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>

#include "util/error.hpp"

namespace hmd::serve {

/// Fixed-capacity lock-free FIFO. Capacity is rounded up to a power of
/// two (minimum 2). Elements are copied in and out; T must be copyable.
template <typename T>
class SpscRing {
 public:
  /// Throws PreconditionError when `capacity` is 0.
  explicit SpscRing(std::size_t capacity) {
    HMD_REQUIRE(capacity > 0, "SpscRing: capacity must be positive");
    std::size_t cap = 2;
    while (cap < capacity) cap <<= 1;
    slots_ = std::make_unique<Slot[]>(cap);
    mask_ = cap - 1;
    for (std::size_t i = 0; i < cap; ++i)
      slots_[i].seq.store(i, std::memory_order_relaxed);
  }

  SpscRing(const SpscRing&) = delete;
  SpscRing& operator=(const SpscRing&) = delete;

  /// Power-of-two slot count actually allocated.
  std::size_t capacity() const noexcept { return mask_ + 1; }

  /// Enqueue a copy of `v`. Returns false when the ring is full.
  bool try_push(const T& v) noexcept {
    std::uint64_t pos = enqueue_pos_.load(std::memory_order_relaxed);
    for (;;) {
      Slot& slot = slots_[pos & mask_];
      const std::uint64_t seq = slot.seq.load(std::memory_order_acquire);
      const auto dif =
          static_cast<std::int64_t>(seq) - static_cast<std::int64_t>(pos);
      if (dif == 0) {
        if (enqueue_pos_.compare_exchange_weak(pos, pos + 1,
                                               std::memory_order_relaxed)) {
          slot.value = v;
          slot.seq.store(pos + 1, std::memory_order_release);
          return true;
        }
      } else if (dif < 0) {
        return false;  // the slot still holds an unconsumed element
      } else {
        pos = enqueue_pos_.load(std::memory_order_relaxed);
      }
    }
  }

  /// Dequeue into `out`. Returns false when the ring is empty.
  bool try_pop(T& out) noexcept {
    std::uint64_t pos = dequeue_pos_.load(std::memory_order_relaxed);
    for (;;) {
      Slot& slot = slots_[pos & mask_];
      const std::uint64_t seq = slot.seq.load(std::memory_order_acquire);
      const auto dif = static_cast<std::int64_t>(seq) -
                       static_cast<std::int64_t>(pos + 1);
      if (dif == 0) {
        if (dequeue_pos_.compare_exchange_weak(pos, pos + 1,
                                               std::memory_order_relaxed)) {
          out = slot.value;
          slot.seq.store(pos + mask_ + 1, std::memory_order_release);
          return true;
        }
      } else if (dif < 0) {
        return false;  // nothing published yet
      } else {
        pos = dequeue_pos_.load(std::memory_order_relaxed);
      }
    }
  }

  /// Discard the oldest element (drop-oldest backpressure). Safe to call
  /// from the producer concurrently with the consumer's try_pop. Returns
  /// false when the ring is empty.
  bool pop_discard() noexcept {
    T sink;
    return try_pop(sink);
  }

  /// Elements currently enqueued. Racy by nature — use for gauges and
  /// idle-detection heuristics only, never for correctness.
  std::size_t size_approx() const noexcept {
    const std::uint64_t tail = enqueue_pos_.load(std::memory_order_relaxed);
    const std::uint64_t head = dequeue_pos_.load(std::memory_order_relaxed);
    return tail >= head ? static_cast<std::size_t>(tail - head) : 0;
  }

  bool empty_approx() const noexcept { return size_approx() == 0; }

 private:
  struct Slot {
    std::atomic<std::uint64_t> seq{0};
    T value{};
  };

  std::unique_ptr<Slot[]> slots_;
  std::uint64_t mask_ = 0;
  // Producer and consumer cursors on separate cache lines so SPSC traffic
  // does not false-share.
  alignas(64) std::atomic<std::uint64_t> enqueue_pos_{0};
  alignas(64) std::atomic<std::uint64_t> dequeue_pos_{0};
};

}  // namespace hmd::serve
