#include "serve/stream_engine.hpp"

#include <algorithm>
#include <array>
#include <chrono>
#include <condition_variable>
#include <ostream>
#include <string>
#include <thread>

#include "hw/compile.hpp"
#include "hw/netlist_model.hpp"
#include "ml/dataset.hpp"
#include "ml/quantized.hpp"
#include "ml/registry.hpp"
#include "serve/spsc_ring.hpp"
#include "util/error.hpp"
#include "util/metrics.hpp"
#include "util/rng.hpp"
#include "util/strings.hpp"
#include "util/trace.hpp"

namespace hmd::serve {

namespace {

/// One enqueued window: ingest timestamp (for the e2e latency histogram —
/// metrics only, never results) plus the counter values inline, so a ring
/// slot needs no heap indirection.
struct WindowSample {
  std::uint64_t ingest_us = 0;
  std::array<double, kMaxWindowWidth> counts{};
};

/// How long a shard worker sleeps when parked with nothing to do. Bounds
/// the staleness of any lost wakeup race to one timeout.
constexpr auto kParkTimeout = std::chrono::microseconds(200);

/// Single-epoch hub for the static-model constructor.
std::shared_ptr<ModelHub> hub_for(const ml::Classifier& model) {
  auto hub = std::make_shared<ModelHub>();
  hub->publish_unowned(model);
  return hub;
}

}  // namespace

Result<void> ServeConfig::try_validate() const {
  if (num_shards < 1)
    return ErrorInfo(ErrCode::kPrecondition,
                     "ServeConfig.num_shards: must be >= 1");
  if (window_size < 1 || window_size > kMaxWindowWidth)
    return ErrorInfo(ErrCode::kPrecondition,
                     "ServeConfig.window_size: must be in [1, 16]");
  if (ring_capacity < 2)
    return ErrorInfo(ErrCode::kPrecondition,
                     "ServeConfig.ring_capacity: must be >= 2");
  if (max_batch_windows < 1)
    return ErrorInfo(ErrCode::kPrecondition,
                     "ServeConfig.max_batch_windows: must be >= 1");
  if (Result<void> r = policy.try_validate(); !r)
    return std::move(r).with_context("ServeConfig");
  if (Result<void> r = resilience.try_validate(); !r)
    return std::move(r).with_context("ServeConfig");
  if (drift.enabled)
    if (Result<void> r = drift.try_validate(); !r)
      return std::move(r).with_context("ServeConfig");
  if (Result<void> r = ensemble.try_validate(); !r)
    return std::move(r).with_context("ServeConfig");
  if (tier != Tier::kFloat && ensemble.kind != EnsembleConfig::Kind::kSingle)
    return ErrorInfo(
        ErrCode::kPrecondition,
        std::string("ServeConfig.tier: the ") + to_string(tier) +
            " tier requires ensemble.kind = single (ensemble members vote "
            "on float scores)");
  return {};
}

const char* to_string(ServeConfig::Tier tier) {
  switch (tier) {
    case ServeConfig::Tier::kFloat: return "float";
    case ServeConfig::Tier::kInt8: return "int8";
    case ServeConfig::Tier::kQ16: return "q16";
    case ServeConfig::Tier::kFpga: return "fpga";
  }
  return "float";
}

std::optional<ServeConfig::Tier> tier_from_name(const std::string& name) {
  if (name == "float") return ServeConfig::Tier::kFloat;
  if (name == "int8") return ServeConfig::Tier::kInt8;
  if (name == "q16") return ServeConfig::Tier::kQ16;
  if (name == "fpga") return ServeConfig::Tier::kFpga;
  return std::nullopt;
}

StreamRouter::StreamRouter(std::size_t num_shards)
    : num_shards_(num_shards) {
  HMD_REQUIRE(num_shards_ >= 1, "StreamRouter: need at least one shard");
}

std::size_t StreamRouter::shard_of(std::uint64_t stream_id) const {
  // splitmix64 scrambles sequential ids (0, 1, 2, ...) into an even
  // spread; identical ids always land on the same shard.
  std::uint64_t x = stream_id;
  return static_cast<std::size_t>(splitmix64(x) % num_shards_);
}

/// Per-stream serving state. The ring is SPSC (the stream's feeder in,
/// the owning shard worker out); the monitor and logs are written only by
/// the shard worker under the shard's apply mutex (snapshot() takes the
/// same mutex) and read by callers after drain().
struct StreamEngine::Stream {
  Stream(StreamId stream_id, std::size_t shard_index,
         std::size_t ring_capacity,
         std::shared_ptr<const ml::Classifier> model,
         const core::OnlineDetectorConfig& policy)
      : id(stream_id),
        shard(shard_index),
        ring(ring_capacity),
        monitor_model(std::move(model)),
        monitor(*monitor_model, policy) {}

  const StreamId id;
  const std::size_t shard;
  SpscRing<WindowSample> ring;
  /// Pins the registration epoch's primary: the monitor holds a reference
  /// to it for its whole lifetime, across hot-swaps. The engine never
  /// calls monitor.observe() — batches are scored through the current
  /// epoch and fed in via apply_probability — so the pinned model is a
  /// lifetime anchor, not a scoring path.
  std::shared_ptr<const ml::Classifier> monitor_model;
  core::OnlineDetector monitor;
  std::vector<Verdict> verdict_log;        ///< only when record_verdicts
  std::vector<std::uint64_t> version_log;  ///< parallel to verdict_log
  std::atomic<std::uint64_t> accepted{0};
  std::atomic<std::uint64_t> evicted{0};
  std::atomic<std::uint64_t> high_water{0};  ///< peak pending ring depth

  // Benign window log for drift retraining (drift.retrain only): a flat
  // row-major ring of the last window_log_capacity UNFLAGGED windows.
  // Written only by the owning shard worker under its apply mutex;
  // harvest_window_log reads under the same locks.
  std::vector<double> window_log;
  std::size_t window_log_next = 0;      ///< next ring slot to overwrite
  std::uint64_t window_log_total = 0;   ///< lifetime rows appended
};

/// Per-shard worker state. `produced`/`consumed` converge once producers
/// quiesce; drain() waits on exactly that. The worker publishes scored
/// state with a release fetch_add on `consumed`, which drain()'s acquire
/// load synchronizes with (fetch_add chains preserve the release
/// sequence), so post-drain reads of monitors and verdict logs are safe.
struct StreamEngine::Shard {
  std::size_t index = 0;

  // Stream membership: registration appends under `reg_mutex` and bumps
  // `generation`; the worker refreshes its private snapshot when the
  // generation moves, so the gather loop runs lock-free.
  std::mutex reg_mutex;
  std::vector<Stream*> registered;
  std::atomic<std::uint64_t> generation{0};

  std::atomic<std::uint64_t> produced{0};
  std::atomic<std::uint64_t> consumed{0};

  // Parking: the worker naps when every ring is empty; ingest rings the
  // doorbell only when `parked` is set, keeping the hot path wait-free.
  std::mutex park_mutex;
  std::condition_variable park_cv;
  std::atomic<bool> parked{false};

  // Resilience state. The worker thread owns everything here except
  // `apply_mutex` (shared with snapshot()) and `degraded` (read by
  // shard_degraded() and tests).
  std::mutex apply_mutex;  ///< held around monitor updates per batch
  std::uint64_t batch_ordinal = 0;       ///< fault-injection key
  std::uint64_t last_epoch_version = 0;  ///< for swap detection

  // Quantized tiers (ServeConfig::Tier::kInt8 / kQ16 / kFpga): the
  // quantized or netlist-compiled lowering of the current primary, cached
  // per shard and re-derived after every hot-swap (keyed by epoch
  // version). Null when the primary has no lowering for the configured
  // tier.
  std::uint64_t quant_version = 0;
  std::shared_ptr<const ml::Classifier> quant_model;

  // Drift detection (config.drift.enabled only). Owned by the worker
  // under apply_mutex; snapshot() reads under the same lock.
  std::unique_ptr<ShardDriftDetector> drift;
  std::uint64_t drift_last_version = 0;  ///< drift-side swap detection
  std::size_t consecutive_failures = 0;  ///< batches that exhausted retries
  std::size_t budget_overruns = 0;       ///< consecutive over-budget batches
  std::uint64_t degraded_batches = 0;    ///< probe cadence counter
  std::atomic<bool> degraded{false};

  std::thread worker;
  std::string span_name;  ///< "serve/shard<k>/batch"

  // Registry-owned instruments (resolved once in the engine constructor).
  Counter* ingest_total = nullptr;
  Counter* dropped = nullptr;
  Counter* batches = nullptr;
  Histogram* batch_size = nullptr;
  Gauge* queue_depth = nullptr;
  Histogram* score_us = nullptr;
  Histogram* e2e_us = nullptr;
  // Engine-wide aggregates shared by all shards.
  Counter* agg_ingest_total = nullptr;
  Counter* agg_dropped = nullptr;
  Histogram* agg_batch_size = nullptr;
  Histogram* agg_score_us = nullptr;
  Histogram* agg_e2e_us = nullptr;
};

/// One gathered cross-stream batch (worker-local buffers, reused).
struct StreamEngine::Batch {
  struct Item {
    Stream* stream;
    std::uint64_t ingest_us;
  };
  std::vector<Item> items;
  std::vector<double> flat;
  std::vector<double> dist;
  // Policy-scored batches only (config.ensemble non-single): window
  // identities for member selection, the scoring member's version per
  // window, and the policy's reusable buffers.
  std::vector<ScoringPolicy::WindowKey> keys;
  std::vector<std::uint64_t> versions;
  ScoringPolicy::Scratch policy_scratch;
};

/// The serve.resilience.* family, resolved once in the constructor so
/// every instrument appears in metrics exports even while still zero.
struct StreamEngine::ResilienceInstruments {
  Counter& retries;
  Counter& score_failures;
  Counter& fallback_batches;
  Counter& degrade_events;
  Counter& recoveries;
  Counter& budget_overruns;
  Counter& swaps_observed;
  Counter& errors_swallowed;
  Counter& checkpoints;
  Counter& restored_streams;
  Gauge& degraded_shards;
  Gauge& model_version;
};

/// The serve.policy.* family (resolved only for non-single ensembles).
struct StreamEngine::PolicyInstruments {
  Counter& windows;
  Counter& disagreements;
  Gauge& members;
  std::vector<Counter*> member_windows;  ///< serve.policy.member<k>.windows
};

/// The serve.drift.* family (resolved only when config.drift.enabled).
struct StreamEngine::DriftInstruments {
  Counter& scores;
  Counter& trips;
  Counter& trips_page_hinkley;
  Counter& trips_ks;
  Counter& suppressed;
  Counter& retrains_started;
  Counter& retrains_completed;
  Counter& retrains_failed;
  Counter& retrains_skipped;
  Counter& swaps_published;
  Gauge& window_log_rows;
};

StreamEngine::StreamEngine(const ml::Classifier& model, ServeConfig config)
    : StreamEngine(hub_for(model), std::move(config)) {}

StreamEngine::StreamEngine(std::shared_ptr<ModelHub> hub, ServeConfig config)
    : hub_(std::move(hub)),
      config_(std::move(config)),
      router_(config_.num_shards) {
  HMD_REQUIRE(hub_ != nullptr, "StreamEngine: null model hub");
  config_.validate();
  HMD_REQUIRE(hub_->version() != 0,
              "StreamEngine: hub must have a published epoch");
  if (config_.restore_from != nullptr)
    restore_claimed_.assign(config_.restore_from->streams.size(), false);

  MetricsRegistry& reg = metrics();
  Counter& agg_ingest = reg.counter("serve.ingest_total");
  Counter& agg_dropped = reg.counter("serve.dropped");
  Histogram& agg_batch =
      reg.histogram("serve.batch_size", default_count_buckets());
  Histogram& agg_score =
      reg.histogram("serve.score_us", default_latency_buckets_us());
  Histogram& agg_e2e =
      reg.histogram("serve.e2e_latency_us", default_latency_buckets_us());

  res_ = std::make_unique<ResilienceInstruments>(ResilienceInstruments{
      reg.counter("serve.resilience.retries"),
      reg.counter("serve.resilience.score_failures"),
      reg.counter("serve.resilience.fallback_batches"),
      reg.counter("serve.resilience.degrade_events"),
      reg.counter("serve.resilience.recoveries"),
      reg.counter("serve.resilience.budget_overruns"),
      reg.counter("serve.resilience.swaps_observed"),
      reg.counter("serve.resilience.errors_swallowed"),
      reg.counter("serve.resilience.checkpoints"),
      reg.counter("serve.resilience.restored_streams"),
      reg.gauge("serve.resilience.degraded_shards"),
      reg.gauge("serve.resilience.model_version")});
  res_->model_version.set(static_cast<double>(hub_->version()));

  if (config_.drift.enabled)
    drift_ins_ = std::make_unique<DriftInstruments>(DriftInstruments{
        reg.counter("serve.drift.scores"),
        reg.counter("serve.drift.trips"),
        reg.counter("serve.drift.trips_page_hinkley"),
        reg.counter("serve.drift.trips_ks"),
        reg.counter("serve.drift.suppressed"),
        reg.counter("serve.drift.retrains_started"),
        reg.counter("serve.drift.retrains_completed"),
        reg.counter("serve.drift.retrains_failed"),
        reg.counter("serve.drift.retrains_skipped"),
        reg.counter("serve.drift.swaps_published"),
        reg.gauge("serve.drift.window_log_rows")});

  if (config_.ensemble.kind != EnsembleConfig::Kind::kSingle) {
    policy_ = std::make_unique<ScoringPolicy>(config_.ensemble);
    policy_ins_ = std::make_unique<PolicyInstruments>(PolicyInstruments{
        reg.counter("serve.policy.windows"),
        reg.counter("serve.policy.disagreements"),
        reg.gauge("serve.policy.members"),
        {}});
    policy_ins_->member_windows.reserve(policy_->total_members());
    for (std::size_t m = 0; m < policy_->total_members(); ++m)
      policy_ins_->member_windows.push_back(
          &reg.counter(format("serve.policy.member%zu.windows", m)));
    policy_ins_->members.set(static_cast<double>(policy_->total_members()));
  }
  if (config_.restore_from != nullptr &&
      config_.restore_from->policy.present) {
    // The stochastic selection sequence is keyed by (seed, stream, window
    // ordinal); the ordinals resume through the restored detector states,
    // so the only way to continue a checkpointed verdict stream correctly
    // is under the SAME policy. Refuse mismatched restores.
    const PolicySnapshot& snap = config_.restore_from->policy;
    HMD_REQUIRE(policy_ != nullptr,
                "ServeConfig.ensemble.kind: snapshot was written by a '" +
                    snap.kind + "' policy engine, config is 'single'");
    HMD_REQUIRE(snap.kind == to_string(config_.ensemble.kind),
                "ServeConfig.ensemble.kind: snapshot policy kind '" +
                    snap.kind + "' != configured '" +
                    to_string(config_.ensemble.kind) + "'");
    HMD_REQUIRE(snap.seed == config_.ensemble.seed,
                "ServeConfig.ensemble.seed: does not match the snapshot's "
                "policy seed");
    HMD_REQUIRE(snap.members == config_.ensemble.total_members(),
                "ServeConfig.ensemble.members: snapshot pinned " +
                    std::to_string(snap.members) + " members, config has " +
                    std::to_string(config_.ensemble.total_members()));
  }
  if (config_.restore_from != nullptr && config_.restore_from->tier.present) {
    // A checkpointed verdict stream is only continued correctly when the
    // remaining traffic is scored the way it was scored before the cut:
    // restoring under a different precision tier would silently change
    // every score after the restore point. Refuse mismatched restores.
    const TierSnapshot& snap = config_.restore_from->tier;
    HMD_REQUIRE(tier_from_name(snap.name).has_value(),
                "ServeConfig.restore_from: snapshot pins unknown serving "
                "tier '" + snap.name + "' (known: float int8 q16 fpga)");
    HMD_REQUIRE(snap.name == to_string(config_.tier),
                "ServeConfig.tier: snapshot was written by a '" + snap.name +
                    "' tier engine, config is '" + to_string(config_.tier) +
                    "'");
  }

  shards_.reserve(config_.num_shards);
  for (std::size_t k = 0; k < config_.num_shards; ++k) {
    auto shard = std::make_unique<Shard>();
    shard->index = k;
    const std::string suffix = ".shard" + std::to_string(k);
    shard->span_name = "serve/shard" + std::to_string(k) + "/batch";
    shard->ingest_total = &reg.counter("serve.ingest_total" + suffix);
    shard->dropped = &reg.counter("serve.dropped" + suffix);
    shard->batches = &reg.counter("serve.batches" + suffix);
    shard->batch_size = &reg.histogram("serve.batch_size" + suffix,
                                       default_count_buckets());
    shard->queue_depth = &reg.gauge("serve.queue_depth" + suffix);
    shard->score_us = &reg.histogram("serve.score_us" + suffix,
                                     default_latency_buckets_us());
    shard->e2e_us = &reg.histogram("serve.e2e_latency_us" + suffix,
                                   default_latency_buckets_us());
    shard->agg_ingest_total = &agg_ingest;
    shard->agg_dropped = &agg_dropped;
    shard->agg_batch_size = &agg_batch;
    shard->agg_score_us = &agg_score;
    shard->agg_e2e_us = &agg_e2e;
    if (config_.drift.enabled) {
      shard->drift = std::make_unique<ShardDriftDetector>(config_.drift, k);
      // Resume the drift baseline from the checkpoint (if it carries one
      // for this shard index) so a restored engine does not re-warm — or
      // spuriously re-trip — on the traffic it already saw.
      if (config_.restore_from != nullptr)
        for (const DriftShardSnapshot& d : config_.restore_from->drift)
          if (d.shard == k) {
            shard->drift->restore(d.state);
            break;
          }
    }
    shards_.push_back(std::move(shard));
  }
  for (auto& shard : shards_)
    shard->worker = std::thread([this, s = shard.get()] { worker_loop(*s); });
}

StreamEngine::~StreamEngine() {
  join_workers();
  // A latched error nobody has seen must not vanish with the engine:
  // count it and put it on the timeline so post-mortems can find it.
  std::lock_guard<std::mutex> lock(error_mutex_);
  if (first_error_.has_value() && !error_reported_) {
    res_->errors_swallowed.add();
    if (tracer().enabled())
      tracer().record({"serve/error_swallowed: " + first_error_->to_string(),
                       Tracer::current_thread_id(), Tracer::now_us(), 0});
  }
}

std::size_t StreamEngine::num_streams() const {
  std::lock_guard<std::mutex> lock(streams_mutex_);
  return streams_.size();
}

StreamEngine::StreamHandle StreamEngine::register_stream(StreamId id) {
  auto epoch = hub_->current();
  auto stream =
      std::make_unique<Stream>(id, router_.shard_of(id), config_.ring_capacity,
                               epoch->primary, config_.policy);
  Stream* handle = stream.get();
  {
    std::lock_guard<std::mutex> lock(streams_mutex_);
    if (config_.restore_from != nullptr) {
      // Resume from the checkpoint before the stream becomes visible to
      // its shard; duplicate ids claim snapshot entries first-come.
      const auto& snaps = config_.restore_from->streams;
      for (std::size_t i = 0; i < snaps.size(); ++i) {
        if (restore_claimed_[i] || snaps[i].id != id) continue;
        handle->monitor.restore(snaps[i].detector);
        handle->accepted.store(snaps[i].accepted, std::memory_order_relaxed);
        handle->evicted.store(snaps[i].evicted, std::memory_order_relaxed);
        handle->high_water.store(snaps[i].high_water,
                                 std::memory_order_relaxed);
        restore_claimed_[i] = true;
        res_->restored_streams.add();
        break;
      }
    }
    streams_.push_back(std::move(stream));
  }
  Shard& shard = *shards_[handle->shard];
  {
    std::lock_guard<std::mutex> lock(shard.reg_mutex);
    shard.registered.push_back(handle);
  }
  shard.generation.fetch_add(1, std::memory_order_release);
  return handle;
}

bool StreamEngine::ingest(StreamHandle stream,
                          std::span<const double> window) {
  HMD_REQUIRE(stream != nullptr, "StreamEngine::ingest: null stream");
  HMD_REQUIRE(window.size() == config_.window_size,
              "StreamEngine::ingest: window width != config window_size");

  WindowSample sample;
  sample.ingest_us = Tracer::now_us();
  std::copy(window.begin(), window.end(), sample.counts.begin());

  Shard& shard = *shards_[stream->shard];
  bool dropped_one = false;
  while (!stream->ring.try_push(sample)) {
    if (config_.backpressure == ServeConfig::Backpressure::kDropOldest) {
      if (stream->ring.pop_discard()) {
        dropped_one = true;
        stream->evicted.fetch_add(1, std::memory_order_relaxed);
        shard.dropped->add();
        shard.agg_dropped->add();
        // The evicted window was counted into `produced`; account it as
        // consumed so drain() still converges.
        shard.consumed.fetch_add(1, std::memory_order_relaxed);
      }
    } else {
      // kBlock: the worker is guaranteed to make space; just get out of
      // its way (and make sure it is not parked on a full ring, which
      // can happen if it parked between our push attempts).
      unpark(shard);
      std::this_thread::yield();
    }
  }
  stream->accepted.fetch_add(1, std::memory_order_relaxed);
  // Ring high-water mark (capacity planning; persisted in snapshots).
  const auto depth =
      static_cast<std::uint64_t>(stream->ring.size_approx());
  std::uint64_t seen = stream->high_water.load(std::memory_order_relaxed);
  while (depth > seen && !stream->high_water.compare_exchange_weak(
                             seen, depth, std::memory_order_relaxed)) {
  }
  shard.produced.fetch_add(1, std::memory_order_relaxed);
  shard.ingest_total->add();
  shard.agg_ingest_total->add();
  if (shard.parked.load(std::memory_order_seq_cst)) unpark(shard);
  return !dropped_one;
}

void StreamEngine::unpark(Shard& shard) {
  std::lock_guard<std::mutex> lock(shard.park_mutex);
  shard.park_cv.notify_one();
}

void StreamEngine::enter_degraded(Shard& shard, const char* reason) {
  shard.degraded.store(true, std::memory_order_release);
  shard.degraded_batches = 0;
  shard.budget_overruns = 0;
  res_->degrade_events.add();
  res_->degraded_shards.set(static_cast<double>(
      degraded_count_.fetch_add(1, std::memory_order_relaxed) + 1));
  if (tracer().enabled())
    tracer().record({"serve/shard" + std::to_string(shard.index) +
                         "/degrade:" + reason,
                     Tracer::current_thread_id(), Tracer::now_us(), 0});
}

void StreamEngine::leave_degraded(Shard& shard) {
  shard.degraded.store(false, std::memory_order_release);
  shard.consecutive_failures = 0;
  shard.budget_overruns = 0;
  shard.degraded_batches = 0;
  res_->recoveries.add();
  res_->degraded_shards.set(static_cast<double>(
      degraded_count_.fetch_sub(1, std::memory_order_relaxed) - 1));
  if (tracer().enabled())
    tracer().record({"serve/shard" + std::to_string(shard.index) + "/recover",
                     Tracer::current_thread_id(), Tracer::now_us(), 0});
}

void StreamEngine::latch_error(ErrorInfo error) {
  std::lock_guard<std::mutex> lock(error_mutex_);
  if (!first_error_.has_value()) first_error_.emplace(std::move(error));
  failed_.store(true, std::memory_order_release);
}

bool StreamEngine::score_batch(Shard& shard, Batch& batch) {
  const std::size_t n = batch.items.size();
  const std::size_t width = config_.window_size;
  const ResilienceConfig& res = config_.resilience;
  FaultInjector* faults = res.faults.get();

  // Pin the epoch for the whole batch: a concurrent publish cannot pull
  // the models out from under us, and every verdict below is stamped
  // with this version.
  const std::shared_ptr<const ModelHub::Epoch> epoch = hub_->current();
  const std::uint64_t ordinal = shard.batch_ordinal++;
  if (epoch->version != shard.last_epoch_version) {
    if (shard.last_epoch_version != 0) res_->swaps_observed.add();
    shard.last_epoch_version = epoch->version;
    res_->model_version.set(static_cast<double>(epoch->version));
  }
  const bool have_fallback = epoch->fallback != nullptr;

  // Quantized tiers: swap the batch's primary for its cached quantized
  // lowering (re-derived once per hot-swap). Policies and fallback scoring
  // stay on the float path; a primary without a lowering for the
  // configured tier does too.
  const ml::Classifier* primary = epoch->primary.get();
  if (config_.tier != ServeConfig::Tier::kFloat && policy_ == nullptr) {
    if (shard.quant_version != epoch->version) {
      shard.quant_version = epoch->version;
      shard.quant_model.reset();
      if (config_.tier == ServeConfig::Tier::kFpga) {
        // Compile the primary to the netlist IR and score through the
        // cycle-accurate simulator — the verdicts the emitted RTL would
        // produce. Model-derived grid calibration keeps the compile a
        // pure function of the model, so every shard builds the identical
        // design regardless of shard count.
        hw::CompileOptions opts;
        opts.num_features = config_.window_size;
        Result<hw::CompiledDesign> design =
            hw::try_compile(*epoch->primary, std::move(opts));
        if (design.ok())
          shard.quant_model = std::make_shared<const hw::NetlistClassifier>(
              std::move(design).value());
      } else {
        const bool int8 = config_.tier == ServeConfig::Tier::kInt8;
        const bool supported =
            int8 ? ml::QuantizedModel::int8_supported(*epoch->primary)
                 : ml::QuantizedModel::q16_supported(*epoch->primary);
        if (supported)
          shard.quant_model = std::make_shared<const ml::QuantizedModel>(
              epoch->primary, int8 ? ml::QuantizedModel::Mode::kInt8
                                   : ml::QuantizedModel::Mode::kQ16Input);
      }
    }
    if (shard.quant_model != nullptr) primary = shard.quant_model.get();
  }

  if (policy_ != nullptr) {
    // Window identities for member selection: each stream's windows sit
    // in one contiguous run of the gather order, so its ordinals are the
    // monitor's windows_seen() (this worker is the only writer) plus the
    // offset in the run. A failed batch never advances the monitors, so
    // dropped windows consume no ordinals and the selection sequence
    // stays a pure function of the scored traffic.
    batch.keys.resize(n);
    std::size_t w = 0;
    while (w < n) {
      Stream* stream = batch.items[w].stream;
      const auto base =
          static_cast<std::uint64_t>(stream->monitor.windows_seen());
      std::uint64_t offset = 0;
      while (w < n && batch.items[w].stream == stream) {
        batch.keys[w] = {stream->id, base + offset};
        ++offset;
        ++w;
      }
    }
  }

  std::optional<ErrorInfo> failure;
  auto attempt_score = [&](const ml::Classifier& model,
                           std::size_t attempt_no, bool inject,
                           bool via_policy) -> bool {
    try {
      if (inject && faults != nullptr)
        faults->on_score_attempt(shard.index, ordinal, attempt_no);
      batch.dist.assign(n * 2, 0.0);
      if (via_policy) {
        batch.versions.assign(n, 0);
        policy_->score(model, epoch->version, batch.flat, width, batch.keys,
                       batch.dist, batch.versions, batch.policy_scratch);
      } else {
        model.distribution_batch(batch.flat, width, batch.dist);
      }
      return true;
    } catch (...) {
      res_->score_failures.add();
      failure = ErrorInfo::from_current_exception();
      return false;
    }
  };

  TraceSpan span(shard.span_name);
  bool scored = false;
  bool by_primary = false;

  if (!shard.degraded.load(std::memory_order_relaxed)) {
    // Normal mode: primary with bounded retries and linear backoff.
    for (std::size_t a = 0; a <= res.max_retries && !scored; ++a) {
      if (a > 0) {
        res_->retries.add();
        if (res.retry_backoff_us > 0)
          std::this_thread::sleep_for(std::chrono::microseconds(
              res.retry_backoff_us * static_cast<std::uint64_t>(a)));
      }
      scored = attempt_score(*primary, a, true, policy_ != nullptr);
    }
    if (scored) {
      by_primary = true;
      shard.consecutive_failures = 0;
    } else {
      ++shard.consecutive_failures;
    }
  } else {
    // Degraded mode: fallback scores; every probe_every-th batch probes
    // the primary, and a single success recovers the shard.
    ++shard.degraded_batches;
    if (shard.degraded_batches % res.probe_every == 0 &&
        attempt_score(*primary, 0, true, policy_ != nullptr)) {
      scored = true;
      by_primary = true;
      leave_degraded(shard);
    }
  }

  if (!scored && have_fallback) {
    // Degraded scoring bypasses the ensemble: the fallback is the one
    // model known-good right now, and a policy whose members include the
    // failing primary would defeat the point of falling back.
    scored = attempt_score(*epoch->fallback, 0, false, false);
    if (scored) res_->fallback_batches.add();
  }

  const double score_us = span.elapsed_seconds() * 1e6;

  if (!scored) {
    // End of the ladder: no attempt succeeded and there is nowhere left
    // to fall. Latch; this batch's windows are dropped and subsequent
    // batches are drained unscored.
    HMD_ASSERT(failure.has_value());
    latch_error(std::move(*failure).with_context(
        "scoring batch on shard " + std::to_string(shard.index)));
    return false;
  }

  if (!shard.degraded.load(std::memory_order_relaxed)) {
    if (shard.consecutive_failures >= res.degrade_after && have_fallback) {
      enter_degraded(shard, "failures");
    } else if (by_primary && res.latency_budget_us > 0) {
      if (score_us > static_cast<double>(res.latency_budget_us)) {
        res_->budget_overruns.add();
        if (++shard.budget_overruns >= res.budget_strikes && have_fallback)
          enter_degraded(shard, "latency");
      } else {
        shard.budget_overruns = 0;
      }
    }
  }

  // True when this batch's distributions came from the scoring policy
  // (normal or probe path); fallback-scored batches carry the epoch
  // fallback's verdicts and version.
  const bool policy_scored = policy_ != nullptr && by_primary;

  // Serial per-stream replay of the streak/alarm machine, in gather
  // order — per stream this is exactly arrival order. Under the apply
  // mutex so snapshot() only ever sees monitors between batches.
  {
    std::lock_guard<std::mutex> apply_lock(shard.apply_mutex);
    const std::uint64_t now = Tracer::now_us();
    // Drift-side swap detection: a published retrain legitimately moves
    // the score distribution, so the detectors re-baseline rather than
    // tripping on their own medicine.
    if (shard.drift != nullptr &&
        epoch->version != shard.drift_last_version) {
      if (shard.drift_last_version != 0) shard.drift->on_model_swap();
      shard.drift_last_version = epoch->version;
    }
    const std::uint64_t suppressed_before =
        shard.drift != nullptr ? shard.drift->suppressed() : 0;
    for (std::size_t w = 0; w < n; ++w) {
      Stream& stream = *batch.items[w].stream;
      const double probability = batch.dist[w * 2 + 1];
      const Verdict verdict = stream.monitor.apply_probability(probability);
      if (config_.record_verdicts) {
        stream.verdict_log.push_back(verdict);
        // Under a policy the stamp is the member that actually scored the
        // window (majority verdicts carry the live primary's version);
        // drift detection below keeps keying off the epoch version, since
        // its swap re-baselining tracks hub publishes, not members.
        stream.version_log.push_back(policy_scored ? batch.versions[w]
                                                   : epoch->version);
      }
      if (shard.drift != nullptr) {
        if (const auto event =
                shard.drift->observe(probability, epoch->version))
          record_drift_event(*event);
        // Retrain data: windows the monitor did NOT flag are the stream's
        // benign-looking recent past — exactly what a one-class rebuild
        // should fit.
        if (config_.drift.retrain && !verdict.flagged) {
          const std::size_t cap = config_.drift.window_log_capacity;
          const std::size_t width_d = config_.window_size;
          if (stream.window_log.size() < cap * width_d)
            stream.window_log.resize(cap * width_d, 0.0);
          std::copy(batch.flat.begin() +
                        static_cast<std::ptrdiff_t>(w * width_d),
                    batch.flat.begin() +
                        static_cast<std::ptrdiff_t>((w + 1) * width_d),
                    stream.window_log.begin() +
                        static_cast<std::ptrdiff_t>(
                            stream.window_log_next * width_d));
          stream.window_log_next = (stream.window_log_next + 1) % cap;
          ++stream.window_log_total;
        }
      }
      const std::uint64_t e2e =
          now >= batch.items[w].ingest_us ? now - batch.items[w].ingest_us
                                          : 0;
      shard.e2e_us->record(static_cast<double>(e2e));
      shard.agg_e2e_us->record(static_cast<double>(e2e));
    }
    if (shard.drift != nullptr) {
      drift_ins_->scores.add(n);
      const std::uint64_t suppressed_now = shard.drift->suppressed();
      if (suppressed_now > suppressed_before)
        drift_ins_->suppressed.add(suppressed_now - suppressed_before);
    }
  }
  if (policy_scored) {
    const ScoringPolicy::Scratch& scratch = batch.policy_scratch;
    policy_ins_->windows.add(n);
    if (scratch.disagreements > 0)
      policy_ins_->disagreements.add(scratch.disagreements);
    for (std::size_t m = 0; m < scratch.member_windows.size(); ++m)
      if (scratch.member_windows[m] > 0)
        policy_ins_->member_windows[m]->add(scratch.member_windows[m]);
  }
  shard.batches->add();
  shard.batch_size->record(static_cast<double>(n));
  shard.agg_batch_size->record(static_cast<double>(n));
  shard.score_us->record(score_us);
  shard.agg_score_us->record(score_us);
  return true;
}

void StreamEngine::worker_loop(Shard& shard) {
  std::vector<Stream*> snapshot;
  std::uint64_t seen_generation = 0;

  Batch batch;
  const std::size_t width = config_.window_size;
  batch.items.reserve(config_.max_batch_windows);
  batch.flat.reserve(config_.max_batch_windows * width);

  for (;;) {
    if (shard.generation.load(std::memory_order_acquire) !=
        seen_generation) {
      std::lock_guard<std::mutex> lock(shard.reg_mutex);
      snapshot = shard.registered;
      seen_generation = shard.generation.load(std::memory_order_acquire);
    }

    // Gather: sweep this shard's streams in registration order, popping
    // every pending window (up to the batch cap) into one contiguous
    // row-major block. Within a stream, pops are FIFO, so per-stream
    // arrival order survives batching.
    batch.items.clear();
    batch.flat.clear();
    WindowSample sample;
    for (Stream* stream : snapshot) {
      while (batch.items.size() < config_.max_batch_windows &&
             stream->ring.try_pop(sample)) {
        batch.items.push_back({stream, sample.ingest_us});
        batch.flat.insert(
            batch.flat.end(), sample.counts.begin(),
            sample.counts.begin() + static_cast<std::ptrdiff_t>(width));
      }
      if (batch.items.size() >= config_.max_batch_windows) break;
    }

    if (!batch.items.empty()) {
      std::size_t backlog = 0;
      for (Stream* stream : snapshot) backlog += stream->ring.size_approx();
      shard.queue_depth->set(static_cast<double>(backlog));

      const std::size_t n = batch.items.size();
      // In the failed state windows are still drained (and discarded) so
      // drain() terminates and surfaces the stored error.
      if (!failed_.load(std::memory_order_relaxed))
        score_batch(shard, batch);
      shard.consumed.fetch_add(n, std::memory_order_release);
      continue;
    }

    if (stop_.load(std::memory_order_acquire)) break;

    // Park until new work (or a registration) arrives. The post-park
    // re-check closes the push-vs-park race; a lost doorbell costs at
    // most kParkTimeout.
    shard.parked.store(true, std::memory_order_seq_cst);
    bool work = shard.generation.load(std::memory_order_acquire) !=
                seen_generation;
    for (Stream* stream : snapshot)
      if (!stream->ring.empty_approx()) {
        work = true;
        break;
      }
    if (!work && !stop_.load(std::memory_order_acquire)) {
      std::unique_lock<std::mutex> lock(shard.park_mutex);
      shard.park_cv.wait_for(lock, kParkTimeout);
    }
    shard.parked.store(false, std::memory_order_seq_cst);
  }
}

void StreamEngine::drain_internal() {
  for (auto& shard : shards_) {
    while (shard->produced.load(std::memory_order_acquire) !=
           shard->consumed.load(std::memory_order_acquire)) {
      unpark(*shard);
      std::this_thread::sleep_for(std::chrono::microseconds(20));
    }
  }
}

void StreamEngine::rethrow_if_failed() {
  if (!failed_.load(std::memory_order_acquire)) return;
  std::lock_guard<std::mutex> lock(error_mutex_);
  if (first_error_.has_value()) {
    error_reported_ = true;
    first_error_->raise();
  }
}

void StreamEngine::drain() {
  drain_internal();
  rethrow_if_failed();
}

void StreamEngine::join_workers() {
  if (joined_) return;
  drain_internal();
  stop_.store(true, std::memory_order_release);
  for (auto& shard : shards_) unpark(*shard);
  for (auto& shard : shards_)
    if (shard->worker.joinable()) shard->worker.join();
  join_retrain_thread();
  joined_ = true;
}

void StreamEngine::join_retrain_thread() {
  std::unique_lock<std::mutex> lock(drift_mutex_);
  retrain_cv_.wait(lock, [this] { return !retrain_running_; });
  // Safe to join while holding drift_mutex_: the worker's last lock use
  // is clearing retrain_running_, so once the predicate holds the thread
  // never reacquires it.
  if (retrain_thread_.joinable()) retrain_thread_.join();
}

void StreamEngine::record_drift_event(const DriftEvent& event) {
  // Caller holds the shard's apply mutex; apply → drift is the one legal
  // lock order (see the member-declaration comment).
  {
    std::lock_guard<std::mutex> lock(drift_mutex_);
    drift_events_.push_back(event);
  }
  drift_ins_->trips.add();
  if (event.detector == DriftEvent::Detector::kPageHinkley)
    drift_ins_->trips_page_hinkley.add();
  else
    drift_ins_->trips_ks.add();
  if (config_.drift.retrain)
    retrain_requested_.store(true, std::memory_order_release);
  if (tracer().enabled())
    tracer().record({"serve/drift/trip:" + to_string(event.detector) +
                         ":shard" + std::to_string(event.shard),
                     Tracer::current_thread_id(), Tracer::now_us(), 0});
}

std::vector<double> StreamEngine::harvest_window_log() const {
  // Quiesce every apply step, then walk streams in registration order and
  // copy each stream's ring oldest-first — the harvested block is a pure
  // function of the traffic (no thread-timing dependence), which is what
  // makes the retrain deterministic.
  std::vector<std::unique_lock<std::mutex>> apply_locks;
  apply_locks.reserve(shards_.size());
  for (const auto& shard : shards_)
    apply_locks.emplace_back(shard->apply_mutex);
  std::lock_guard<std::mutex> lock(streams_mutex_);

  const std::size_t width = config_.window_size;
  const std::size_t cap = config_.drift.window_log_capacity;
  std::vector<double> rows;
  for (const auto& stream : streams_) {
    const std::uint64_t total = stream->window_log_total;
    if (total == 0) continue;
    const std::size_t kept =
        static_cast<std::size_t>(std::min<std::uint64_t>(total, cap));
    const std::size_t start =
        total <= cap ? 0 : stream->window_log_next;  // oldest slot
    for (std::size_t r = 0; r < kept; ++r) {
      const std::size_t slot = (start + r) % cap;
      const auto* begin = stream->window_log.data() + slot * width;
      rows.insert(rows.end(), begin, begin + width);
    }
  }
  drift_ins_->window_log_rows.set(
      static_cast<double>(rows.size() / width));
  return rows;
}

void StreamEngine::retrain_worker(std::vector<double> rows) {
  TraceSpan span("serve/drift/retrain");
  std::shared_ptr<const ml::Classifier> trained;
  std::optional<ErrorInfo> failure;
  try {
    const std::size_t width = config_.window_size;
    std::size_t num_rows = rows.size() / width;

    // Over-budget logs are thinned with a seeded index shuffle; keeping
    // the survivors sorted preserves temporal order. Deterministic given
    // (log, retrain_seed) — reruns rebuild the identical model.
    if (num_rows > config_.drift.retrain_max_rows) {
      std::vector<std::size_t> keep(num_rows);
      for (std::size_t i = 0; i < num_rows; ++i) keep[i] = i;
      Rng rng(config_.drift.retrain_seed);
      rng.shuffle(keep);
      keep.resize(config_.drift.retrain_max_rows);
      std::sort(keep.begin(), keep.end());
      std::vector<double> thinned;
      thinned.reserve(keep.size() * width);
      for (const std::size_t r : keep) {
        const auto* begin = rows.data() + r * width;
        thinned.insert(thinned.end(), begin, begin + width);
      }
      rows = std::move(thinned);
      num_rows = keep.size();
    }

    // The window log is unlabeled benign-looking traffic: every row gets
    // class 0 of a binary schema, which is exactly what a one-class
    // scheme trains on (it ignores the malware class by construction).
    std::vector<ml::Attribute> attrs;
    attrs.reserve(width + 1);
    for (std::size_t f = 0; f < width; ++f)
      attrs.emplace_back(format("c%zu", f));
    attrs.emplace_back(
        ml::Attribute("class", {"benign", "malware"}));
    ml::Dataset data(std::move(attrs), "drift-retrain");
    std::vector<double> row(width + 1, 0.0);
    for (std::size_t r = 0; r < num_rows; ++r) {
      std::copy(rows.begin() + static_cast<std::ptrdiff_t>(r * width),
                rows.begin() + static_cast<std::ptrdiff_t>((r + 1) * width),
                row.begin());
      data.add_row(row);
    }

    auto model = ml::make_classifier(config_.drift.retrain_scheme);
    model->train(data);
    trained = std::move(model);
  } catch (...) {
    failure = ErrorInfo::from_current_exception().with_context(
        "drift retrain (" + config_.drift.retrain_scheme + ")");
  }

  std::lock_guard<std::mutex> lock(drift_mutex_);
  if (failure.has_value()) {
    retrain_error_ = std::move(failure);
    drift_ins_->retrains_failed.add();
  } else {
    staged_model_ = std::move(trained);
    retrain_error_.reset();
    drift_ins_->retrains_completed.add();
  }
  retrain_running_ = false;
  retrain_cv_.notify_all();
}

StreamEngine::DriftPumpResult StreamEngine::drift_pump() {
  DriftPumpResult result;
  if (!config_.drift.enabled) return result;

  // 1. Publish a staged model from a finished retrain. Publishing happens
  // only here (the caller's control point), never on the worker thread.
  std::shared_ptr<const ml::Classifier> staged;
  {
    std::lock_guard<std::mutex> lock(drift_mutex_);
    if (!retrain_running_ && staged_model_ != nullptr) {
      staged = std::move(staged_model_);
      if (retrain_thread_.joinable()) retrain_thread_.join();
    }
  }
  if (staged != nullptr) {
    const auto epoch = hub_->current();
    result.published_version = hub_->publish(staged, epoch->fallback);
    drift_ins_->swaps_published.add();
    if (tracer().enabled())
      tracer().record({"serve/drift/swap:v" +
                           std::to_string(result.published_version),
                       Tracer::current_thread_id(), Tracer::now_us(), 0});
  }

  // 2. Kick a pending retrain. The log is harvested before drift_mutex_
  // is taken (harvest takes every apply mutex; see the lock-order note).
  if (!config_.drift.retrain ||
      !retrain_requested_.load(std::memory_order_acquire))
    return result;
  std::vector<double> rows = harvest_window_log();
  std::lock_guard<std::mutex> lock(drift_mutex_);
  if (retrain_running_) return result;  // request stays set for next pump
  retrain_requested_.store(false, std::memory_order_release);
  if (rows.size() / config_.window_size < config_.drift.retrain_min_rows) {
    drift_ins_->retrains_skipped.add();
    return result;
  }
  if (retrain_thread_.joinable()) retrain_thread_.join();
  retrain_running_ = true;
  drift_ins_->retrains_started.add();
  retrain_thread_ = std::thread(
      [this, moved = std::move(rows)]() mutable {
        retrain_worker(std::move(moved));
      });
  result.retrain_started = true;
  return result;
}

std::uint64_t StreamEngine::await_retrain() {
  // Kick any pending request, wait out the worker, then pump again so
  // the freshly staged model is published before we return.
  drift_pump();
  {
    std::unique_lock<std::mutex> lock(drift_mutex_);
    retrain_cv_.wait(lock, [this] { return !retrain_running_; });
  }
  return drift_pump().published_version;
}

std::vector<DriftEvent> StreamEngine::drift_events() const {
  std::lock_guard<std::mutex> lock(drift_mutex_);
  return drift_events_;
}

std::optional<ErrorInfo> StreamEngine::last_retrain_error() const {
  std::lock_guard<std::mutex> lock(drift_mutex_);
  return retrain_error_;
}

void StreamEngine::shutdown() {
  join_workers();
  rethrow_if_failed();
}

std::optional<ErrorInfo> StreamEngine::last_error() const {
  std::lock_guard<std::mutex> lock(error_mutex_);
  return first_error_;
}

EngineSnapshot StreamEngine::snapshot() const {
  HMD_TRACE_SPAN("serve/checkpoint");
  EngineSnapshot snap;
  snap.model_version = hub_->version();
  // Hold every shard's apply mutex: monitor state machines quiesce
  // between batches, so the captured states are a consistent cut even
  // while ingest and scoring are live.
  std::vector<std::unique_lock<std::mutex>> apply_locks;
  apply_locks.reserve(shards_.size());
  for (const auto& shard : shards_)
    apply_locks.emplace_back(shard->apply_mutex);
  std::lock_guard<std::mutex> lock(streams_mutex_);
  snap.streams.reserve(streams_.size());
  for (const auto& stream : streams_) {
    StreamSnapshot s;
    s.id = stream->id;
    s.accepted = stream->accepted.load(std::memory_order_relaxed);
    s.evicted = stream->evicted.load(std::memory_order_relaxed);
    s.high_water = stream->high_water.load(std::memory_order_relaxed);
    s.detector = stream->monitor.state();
    snap.streams.push_back(s);
  }
  // Drift baselines are part of the consistent cut: the apply locks held
  // above also quiesce every ShardDriftDetector.
  if (config_.drift.enabled) {
    snap.drift.reserve(shards_.size());
    for (const auto& shard : shards_) {
      DriftShardSnapshot d;
      d.shard = shard->index;
      d.state = shard->drift->state();
      snap.drift.push_back(std::move(d));
    }
  }
  if (policy_ != nullptr) {
    snap.policy.present = true;
    snap.policy.kind = to_string(config_.ensemble.kind);
    snap.policy.seed = config_.ensemble.seed;
    snap.policy.members = policy_->total_members();
  }
  // Always pinned (float included): the tier is part of the checkpoint's
  // identity — see TierSnapshot.
  snap.tier.present = true;
  snap.tier.name = to_string(config_.tier);
  res_->checkpoints.add();
  return snap;
}

void StreamEngine::checkpoint(std::ostream& out) const {
  snapshot().write(out);
}

bool StreamEngine::shard_degraded(std::size_t shard) const {
  HMD_REQUIRE(shard < shards_.size(),
              "StreamEngine::shard_degraded: shard out of range");
  return shards_[shard]->degraded.load(std::memory_order_acquire);
}

const core::OnlineDetector& StreamEngine::monitor(
    StreamHandle stream) const {
  HMD_REQUIRE(stream != nullptr, "StreamEngine::monitor: null stream");
  return stream->monitor;
}

const std::vector<StreamEngine::Verdict>& StreamEngine::verdicts(
    StreamHandle stream) const {
  HMD_REQUIRE(stream != nullptr, "StreamEngine::verdicts: null stream");
  return stream->verdict_log;
}

const std::vector<std::uint64_t>& StreamEngine::verdict_versions(
    StreamHandle stream) const {
  HMD_REQUIRE(stream != nullptr,
              "StreamEngine::verdict_versions: null stream");
  return stream->version_log;
}

std::uint64_t StreamEngine::dropped(StreamHandle stream) const {
  HMD_REQUIRE(stream != nullptr, "StreamEngine::dropped: null stream");
  return stream->evicted.load(std::memory_order_relaxed);
}

std::uint64_t StreamEngine::ingested(StreamHandle stream) const {
  HMD_REQUIRE(stream != nullptr, "StreamEngine::ingested: null stream");
  return stream->accepted.load(std::memory_order_relaxed);
}

std::uint64_t StreamEngine::high_water(StreamHandle stream) const {
  HMD_REQUIRE(stream != nullptr, "StreamEngine::high_water: null stream");
  return stream->high_water.load(std::memory_order_relaxed);
}

std::uint64_t StreamEngine::total_ingested() const {
  std::uint64_t total = 0;
  std::lock_guard<std::mutex> lock(streams_mutex_);
  for (const auto& stream : streams_)
    total += stream->accepted.load(std::memory_order_relaxed);
  return total;
}

}  // namespace hmd::serve
