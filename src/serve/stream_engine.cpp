#include "serve/stream_engine.hpp"

#include <algorithm>
#include <array>
#include <chrono>
#include <condition_variable>
#include <string>
#include <thread>

#include "serve/spsc_ring.hpp"
#include "util/error.hpp"
#include "util/metrics.hpp"
#include "util/rng.hpp"
#include "util/trace.hpp"

namespace hmd::serve {

namespace {

/// One enqueued window: ingest timestamp (for the e2e latency histogram —
/// metrics only, never results) plus the counter values inline, so a ring
/// slot needs no heap indirection.
struct WindowSample {
  std::uint64_t ingest_us = 0;
  std::array<double, kMaxWindowWidth> counts{};
};

/// How long a shard worker sleeps when parked with nothing to do. Bounds
/// the staleness of any lost wakeup race to one timeout.
constexpr auto kParkTimeout = std::chrono::microseconds(200);

}  // namespace

void ServeConfig::validate() const {
  HMD_REQUIRE(num_shards >= 1, "ServeConfig: num_shards must be >= 1");
  HMD_REQUIRE(window_size >= 1 && window_size <= kMaxWindowWidth,
              "ServeConfig: window_size must be in [1, 16]");
  HMD_REQUIRE(ring_capacity >= 2,
              "ServeConfig: ring_capacity must be >= 2");
  HMD_REQUIRE(max_batch_windows >= 1,
              "ServeConfig: max_batch_windows must be >= 1");
  policy.validate();
}

StreamRouter::StreamRouter(std::size_t num_shards)
    : num_shards_(num_shards) {
  HMD_REQUIRE(num_shards_ >= 1, "StreamRouter: need at least one shard");
}

std::size_t StreamRouter::shard_of(std::uint64_t stream_id) const {
  // splitmix64 scrambles sequential ids (0, 1, 2, ...) into an even
  // spread; identical ids always land on the same shard.
  std::uint64_t x = stream_id;
  return static_cast<std::size_t>(splitmix64(x) % num_shards_);
}

/// Per-stream serving state. The ring is SPSC (the stream's feeder in,
/// the owning shard worker out); everything below `monitor` is written
/// only by the shard worker and read by callers after drain().
struct StreamEngine::Stream {
  Stream(StreamId stream_id, std::size_t shard_index,
         std::size_t ring_capacity, const ml::Classifier& model,
         const core::OnlineDetectorConfig& policy)
      : id(stream_id),
        shard(shard_index),
        ring(ring_capacity),
        monitor(model, policy) {}

  const StreamId id;
  const std::size_t shard;
  SpscRing<WindowSample> ring;
  core::OnlineDetector monitor;
  std::vector<Verdict> verdict_log;  ///< only when record_verdicts
  std::atomic<std::uint64_t> accepted{0};
  std::atomic<std::uint64_t> evicted{0};
};

/// Per-shard worker state. `produced`/`consumed` converge once producers
/// quiesce; drain() waits on exactly that. The worker publishes scored
/// state with a release fetch_add on `consumed`, which drain()'s acquire
/// load synchronizes with (fetch_add chains preserve the release
/// sequence), so post-drain reads of monitors and verdict logs are safe.
struct StreamEngine::Shard {
  std::size_t index = 0;

  // Stream membership: registration appends under `reg_mutex` and bumps
  // `generation`; the worker refreshes its private snapshot when the
  // generation moves, so the gather loop runs lock-free.
  std::mutex reg_mutex;
  std::vector<Stream*> registered;
  std::atomic<std::uint64_t> generation{0};

  std::atomic<std::uint64_t> produced{0};
  std::atomic<std::uint64_t> consumed{0};

  // Parking: the worker naps when every ring is empty; ingest rings the
  // doorbell only when `parked` is set, keeping the hot path wait-free.
  std::mutex park_mutex;
  std::condition_variable park_cv;
  std::atomic<bool> parked{false};

  std::thread worker;
  std::string span_name;  ///< "serve/shard<k>/batch"

  // Registry-owned instruments (resolved once in the engine constructor).
  Counter* ingest_total = nullptr;
  Counter* dropped = nullptr;
  Counter* batches = nullptr;
  Histogram* batch_size = nullptr;
  Gauge* queue_depth = nullptr;
  Histogram* score_us = nullptr;
  Histogram* e2e_us = nullptr;
  // Engine-wide aggregates shared by all shards.
  Counter* agg_ingest_total = nullptr;
  Counter* agg_dropped = nullptr;
  Histogram* agg_batch_size = nullptr;
  Histogram* agg_score_us = nullptr;
  Histogram* agg_e2e_us = nullptr;
};

StreamEngine::StreamEngine(const ml::Classifier& model, ServeConfig config)
    : model_(model), config_(config), router_(config.num_shards) {
  config_.validate();
  HMD_REQUIRE(model_.num_classes() == 2,
              "StreamEngine needs a binary (benign/malware) model");

  MetricsRegistry& reg = metrics();
  Counter& agg_ingest = reg.counter("serve.ingest_total");
  Counter& agg_dropped = reg.counter("serve.dropped");
  Histogram& agg_batch =
      reg.histogram("serve.batch_size", default_count_buckets());
  Histogram& agg_score =
      reg.histogram("serve.score_us", default_latency_buckets_us());
  Histogram& agg_e2e =
      reg.histogram("serve.e2e_latency_us", default_latency_buckets_us());

  shards_.reserve(config_.num_shards);
  for (std::size_t k = 0; k < config_.num_shards; ++k) {
    auto shard = std::make_unique<Shard>();
    shard->index = k;
    const std::string suffix = ".shard" + std::to_string(k);
    shard->span_name = "serve/shard" + std::to_string(k) + "/batch";
    shard->ingest_total = &reg.counter("serve.ingest_total" + suffix);
    shard->dropped = &reg.counter("serve.dropped" + suffix);
    shard->batches = &reg.counter("serve.batches" + suffix);
    shard->batch_size = &reg.histogram("serve.batch_size" + suffix,
                                       default_count_buckets());
    shard->queue_depth = &reg.gauge("serve.queue_depth" + suffix);
    shard->score_us = &reg.histogram("serve.score_us" + suffix,
                                     default_latency_buckets_us());
    shard->e2e_us = &reg.histogram("serve.e2e_latency_us" + suffix,
                                   default_latency_buckets_us());
    shard->agg_ingest_total = &agg_ingest;
    shard->agg_dropped = &agg_dropped;
    shard->agg_batch_size = &agg_batch;
    shard->agg_score_us = &agg_score;
    shard->agg_e2e_us = &agg_e2e;
    shards_.push_back(std::move(shard));
  }
  for (auto& shard : shards_)
    shard->worker = std::thread([this, s = shard.get()] { worker_loop(*s); });
}

StreamEngine::~StreamEngine() {
  try {
    shutdown();
  } catch (...) {
    // A scoring error surfaced by drain(); destruction must not throw.
  }
}

std::size_t StreamEngine::num_streams() const {
  std::lock_guard<std::mutex> lock(streams_mutex_);
  return streams_.size();
}

StreamEngine::StreamHandle StreamEngine::register_stream(StreamId id) {
  auto stream = std::make_unique<Stream>(id, router_.shard_of(id),
                                         config_.ring_capacity, model_,
                                         config_.policy);
  Stream* handle = stream.get();
  {
    std::lock_guard<std::mutex> lock(streams_mutex_);
    streams_.push_back(std::move(stream));
  }
  Shard& shard = *shards_[handle->shard];
  {
    std::lock_guard<std::mutex> lock(shard.reg_mutex);
    shard.registered.push_back(handle);
  }
  shard.generation.fetch_add(1, std::memory_order_release);
  return handle;
}

bool StreamEngine::ingest(StreamHandle stream,
                          std::span<const double> window) {
  HMD_REQUIRE(stream != nullptr, "StreamEngine::ingest: null stream");
  HMD_REQUIRE(window.size() == config_.window_size,
              "StreamEngine::ingest: window width != config window_size");

  WindowSample sample;
  sample.ingest_us = Tracer::now_us();
  std::copy(window.begin(), window.end(), sample.counts.begin());

  Shard& shard = *shards_[stream->shard];
  bool dropped_one = false;
  while (!stream->ring.try_push(sample)) {
    if (config_.backpressure == ServeConfig::Backpressure::kDropOldest) {
      if (stream->ring.pop_discard()) {
        dropped_one = true;
        stream->evicted.fetch_add(1, std::memory_order_relaxed);
        shard.dropped->add();
        shard.agg_dropped->add();
        // The evicted window was counted into `produced`; account it as
        // consumed so drain() still converges.
        shard.consumed.fetch_add(1, std::memory_order_relaxed);
      }
    } else {
      // kBlock: the worker is guaranteed to make space; just get out of
      // its way (and make sure it is not parked on a full ring, which
      // can happen if it parked between our push attempts).
      unpark(shard);
      std::this_thread::yield();
    }
  }
  stream->accepted.fetch_add(1, std::memory_order_relaxed);
  shard.produced.fetch_add(1, std::memory_order_relaxed);
  shard.ingest_total->add();
  shard.agg_ingest_total->add();
  if (shard.parked.load(std::memory_order_seq_cst)) unpark(shard);
  return !dropped_one;
}

void StreamEngine::unpark(Shard& shard) {
  std::lock_guard<std::mutex> lock(shard.park_mutex);
  shard.park_cv.notify_one();
}

void StreamEngine::worker_loop(Shard& shard) {
  std::vector<Stream*> snapshot;
  std::uint64_t seen_generation = 0;

  struct Pending {
    Stream* stream;
    std::uint64_t ingest_us;
  };
  std::vector<Pending> pending;
  std::vector<double> flat;
  std::vector<double> dist;
  const std::size_t width = config_.window_size;
  pending.reserve(config_.max_batch_windows);
  flat.reserve(config_.max_batch_windows * width);

  for (;;) {
    if (shard.generation.load(std::memory_order_acquire) !=
        seen_generation) {
      std::lock_guard<std::mutex> lock(shard.reg_mutex);
      snapshot = shard.registered;
      seen_generation = shard.generation.load(std::memory_order_acquire);
    }

    // Gather: sweep this shard's streams in registration order, popping
    // every pending window (up to the batch cap) into one contiguous
    // row-major block. Within a stream, pops are FIFO, so per-stream
    // arrival order survives batching.
    pending.clear();
    flat.clear();
    WindowSample sample;
    for (Stream* stream : snapshot) {
      while (pending.size() < config_.max_batch_windows &&
             stream->ring.try_pop(sample)) {
        pending.push_back({stream, sample.ingest_us});
        flat.insert(flat.end(), sample.counts.begin(),
                    sample.counts.begin() + static_cast<std::ptrdiff_t>(width));
      }
      if (pending.size() >= config_.max_batch_windows) break;
    }

    if (!pending.empty()) {
      std::size_t backlog = 0;
      for (Stream* stream : snapshot) backlog += stream->ring.size_approx();
      shard.queue_depth->set(static_cast<double>(backlog));

      const std::size_t n = pending.size();
      if (!failed_.load(std::memory_order_relaxed)) {
        try {
          TraceSpan span(shard.span_name);
          dist.assign(n * 2, 0.0);
          model_.distribution_batch(flat, width, dist);
          // Serial per-stream replay of the streak/alarm machine, in
          // gather order — per stream this is exactly arrival order.
          const std::uint64_t now = Tracer::now_us();
          for (std::size_t w = 0; w < n; ++w) {
            Stream& stream = *pending[w].stream;
            const Verdict verdict =
                stream.monitor.apply_probability(dist[w * 2 + 1]);
            if (config_.record_verdicts)
              stream.verdict_log.push_back(verdict);
            const std::uint64_t e2e =
                now >= pending[w].ingest_us ? now - pending[w].ingest_us : 0;
            shard.e2e_us->record(static_cast<double>(e2e));
            shard.agg_e2e_us->record(static_cast<double>(e2e));
          }
          const double score_us = span.elapsed_seconds() * 1e6;
          shard.batches->add();
          shard.batch_size->record(static_cast<double>(n));
          shard.agg_batch_size->record(static_cast<double>(n));
          shard.score_us->record(score_us);
          shard.agg_score_us->record(score_us);
        } catch (...) {
          std::lock_guard<std::mutex> lock(error_mutex_);
          if (!first_error_) first_error_ = std::current_exception();
          failed_.store(true, std::memory_order_release);
        }
      }
      // In the failed state windows are still drained (and discarded) so
      // drain() terminates and surfaces the stored error.
      shard.consumed.fetch_add(n, std::memory_order_release);
      continue;
    }

    if (stop_.load(std::memory_order_acquire)) break;

    // Park until new work (or a registration) arrives. The post-park
    // re-check closes the push-vs-park race; a lost doorbell costs at
    // most kParkTimeout.
    shard.parked.store(true, std::memory_order_seq_cst);
    bool work = shard.generation.load(std::memory_order_acquire) !=
                seen_generation;
    for (Stream* stream : snapshot)
      if (!stream->ring.empty_approx()) {
        work = true;
        break;
      }
    if (!work && !stop_.load(std::memory_order_acquire)) {
      std::unique_lock<std::mutex> lock(shard.park_mutex);
      shard.park_cv.wait_for(lock, kParkTimeout);
    }
    shard.parked.store(false, std::memory_order_seq_cst);
  }
}

void StreamEngine::drain_internal() {
  for (auto& shard : shards_) {
    while (shard->produced.load(std::memory_order_acquire) !=
           shard->consumed.load(std::memory_order_acquire)) {
      unpark(*shard);
      std::this_thread::sleep_for(std::chrono::microseconds(20));
    }
  }
}

void StreamEngine::rethrow_if_failed() {
  if (!failed_.load(std::memory_order_acquire)) return;
  std::lock_guard<std::mutex> lock(error_mutex_);
  if (first_error_) std::rethrow_exception(first_error_);
}

void StreamEngine::drain() {
  drain_internal();
  rethrow_if_failed();
}

void StreamEngine::shutdown() {
  if (!joined_) {
    drain_internal();
    stop_.store(true, std::memory_order_release);
    for (auto& shard : shards_) unpark(*shard);
    for (auto& shard : shards_)
      if (shard->worker.joinable()) shard->worker.join();
    joined_ = true;
  }
  rethrow_if_failed();
}

const core::OnlineDetector& StreamEngine::monitor(
    StreamHandle stream) const {
  HMD_REQUIRE(stream != nullptr, "StreamEngine::monitor: null stream");
  return stream->monitor;
}

const std::vector<StreamEngine::Verdict>& StreamEngine::verdicts(
    StreamHandle stream) const {
  HMD_REQUIRE(stream != nullptr, "StreamEngine::verdicts: null stream");
  return stream->verdict_log;
}

std::uint64_t StreamEngine::dropped(StreamHandle stream) const {
  HMD_REQUIRE(stream != nullptr, "StreamEngine::dropped: null stream");
  return stream->evicted.load(std::memory_order_relaxed);
}

std::uint64_t StreamEngine::ingested(StreamHandle stream) const {
  HMD_REQUIRE(stream != nullptr, "StreamEngine::ingested: null stream");
  return stream->accepted.load(std::memory_order_relaxed);
}

std::uint64_t StreamEngine::total_ingested() const {
  std::uint64_t total = 0;
  std::lock_guard<std::mutex> lock(streams_mutex_);
  for (const auto& stream : streams_)
    total += stream->accepted.load(std::memory_order_relaxed);
  return total;
}

}  // namespace hmd::serve
