// Concept-drift detection over the streaming score distribution.
//
// A deployed HMD's model is frozen at train time, but live HPC traffic is
// not: workloads shift, benign software updates, and a model that was
// calibrated on last month's distribution silently degrades. This module
// watches the per-shard stream of P(malware) scores with two online
// change detectors and emits DriftEvents when the distribution moves
// (docs/drift.md has the math and the trip/cooldown protocol):
//
//   PageHinkley       cumulative-deviation test on the score MEAN. Tracks
//                     the running mean m̄ₜ and the cumulative deviation
//                     cₜ = Σ (xᵢ - m̄ᵢ - δ); trips when cₜ - min cₜ > λ.
//                     Cheap (O(1) per score), catches sustained shifts.
//
//   KsWindowDetector  windowed two-sample Kolmogorov–Smirnov test. The
//                     first `window` scores after a reset become the
//                     reference sample; a sliding window of the most
//                     recent scores is compared against it every `stride`
//                     scores, tripping when the KS statistic
//                     D = sup|F_ref - F_cur| exceeds the threshold.
//                     Catches shape changes a mean test misses.
//
// ShardDriftDetector runs both per shard with trip hysteresis: after any
// trip both detectors reset (new baseline) and further trips are
// suppressed for cooldown_scores scores, so flapping traffic cannot
// thrash the retrain loop. All state is snapshot/restorable — drift
// baselines survive an engine checkpoint (serve/resilience.hpp).
//
// DriftConfig also carries the auto-retrain policy the StreamEngine's
// background worker follows (window log size, row budget, the one-class
// scheme to rebuild); see stream_engine.hpp for the pump/await protocol.
#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "util/result.hpp"

namespace hmd::serve {

/// Page–Hinkley test parameters.
struct PageHinkleyConfig {
  /// Magnitude tolerance: deviations below δ never accumulate.
  double delta = 0.005;
  /// Trip threshold on the accumulated deviation.
  double lambda = 25.0;
  /// Scores observed before the test may trip (baseline warm-up).
  std::size_t min_samples = 64;

  /// kPrecondition error naming the offending field, or success.
  Result<void> try_validate() const;
  /// Throwing wrapper over try_validate() (raises PreconditionError).
  void validate() const { try_validate().value(); }
};

/// One-sided Page–Hinkley test for an upward mean shift in the score
/// stream (a drifting detector shows as scores creeping up or down; the
/// serving path feeds P(malware), where upward shift is the alarming
/// direction and a downward shift surfaces through the KS detector).
class PageHinkley {
 public:
  /// Complete mutable test state; snapshot/restore round-trips exactly.
  struct State {
    std::uint64_t count = 0;       ///< scores since the last reset
    double mean = 0.0;             ///< running mean since the last reset
    double cumulative = 0.0;       ///< Σ (x - mean - δ)
    double minimum = 0.0;          ///< min of `cumulative` so far
    double last_deviation = 0.0;   ///< cumulative - minimum at last observe
    std::uint64_t trips = 0;       ///< lifetime trip count
  };

  PageHinkley() : PageHinkley(PageHinkleyConfig{}) {}
  explicit PageHinkley(PageHinkleyConfig config);

  /// Feed the next score; true when the test trips. A trip resets the
  /// baseline (count/mean/cumulative) and bumps `trips`.
  bool observe(double x);

  /// Start a fresh baseline (keeps the lifetime trip count).
  void reset();

  /// Accumulated deviation at the last observe() — the trip statistic.
  double deviation() const { return state_.last_deviation; }

  const State& state() const { return state_; }
  void restore(const State& state);
  const PageHinkleyConfig& config() const { return config_; }

 private:
  PageHinkleyConfig config_;
  State state_;
};

/// Windowed two-sample KS test parameters.
struct KsConfig {
  /// Sample size of both the reference and the sliding window.
  std::size_t window = 128;
  /// Trip threshold on the KS statistic D ∈ [0, 1].
  double threshold = 0.4;
  /// Evaluate every `stride` scores once the sliding window is full.
  std::size_t stride = 32;

  /// kPrecondition error naming the offending field, or success.
  Result<void> try_validate() const;
  /// Throwing wrapper over try_validate() (raises PreconditionError).
  void validate() const { try_validate().value(); }
};

/// Windowed two-sample Kolmogorov–Smirnov drift detector.
class KsWindowDetector {
 public:
  /// Complete mutable state; `current` is chronological (oldest first).
  struct State {
    std::vector<double> reference;  ///< baseline sample (first `window`)
    std::vector<double> current;    ///< sliding window, oldest first
    std::uint64_t observed = 0;     ///< scores since the last reset
    double last_statistic = 0.0;    ///< D at the last evaluation
    std::uint64_t trips = 0;        ///< lifetime trip count
  };

  KsWindowDetector() : KsWindowDetector(KsConfig{}) {}
  explicit KsWindowDetector(KsConfig config);

  /// Feed the next score; true when an evaluation trips. A trip resets
  /// both samples (keeps the lifetime trip count).
  bool observe(double x);

  void reset();

  /// KS statistic at the last evaluation (0 before the first).
  double last_statistic() const { return last_statistic_; }

  State state() const;
  void restore(const State& state);
  const KsConfig& config() const { return config_; }

  /// Two-sample KS statistic sup_x |F_a(x) - F_b(x)|. Inputs need not be
  /// sorted; both must be non-empty.
  static double ks_statistic(std::vector<double> a, std::vector<double> b);

 private:
  KsConfig config_;
  std::vector<double> reference_;
  std::vector<double> ring_;  ///< sliding window (ring once full)
  std::size_t head_ = 0;      ///< next overwrite slot when the ring is full
  std::uint64_t observed_ = 0;
  double last_statistic_ = 0.0;
  std::uint64_t trips_ = 0;
};

/// One detected distribution change in a shard's score stream.
struct DriftEvent {
  enum class Detector { kPageHinkley, kKs };

  Detector detector = Detector::kPageHinkley;
  std::size_t shard = 0;
  /// Shard-local score ordinal (1-based) at which the trip fired.
  std::uint64_t score_index = 0;
  /// The trip statistic: PH accumulated deviation, or the KS D.
  double statistic = 0.0;
  /// Hub epoch that produced the tripping scores.
  std::uint64_t model_version = 0;
};

/// Human-readable detector name ("page_hinkley" / "ks").
std::string to_string(DriftEvent::Detector detector);

/// Drift + auto-retrain policy (embedded in ServeConfig).
struct DriftConfig {
  /// Master switch: when false the engine carries no drift state at all.
  bool enabled = false;

  PageHinkleyConfig page_hinkley;
  KsConfig ks;

  /// Trip hysteresis: scores after a trip during which further trips are
  /// counted (serve.drift.suppressed) but do not emit events.
  std::size_t cooldown_scores = 1024;

  /// Arm the background retrain worker: a trip stages a retrain request;
  /// StreamEngine::drift_pump() snapshots the benign window log, rebuilds
  /// `retrain_scheme` on it and publishes the new epoch via the ModelHub.
  bool retrain = false;
  /// Scheme to rebuild — must be one-class (ml::is_one_class_scheme),
  /// because the window log is unlabeled benign-looking traffic.
  std::string retrain_scheme = "MahalanobisThreshold";
  /// Per-stream ring of recent unflagged (benign-looking) windows kept
  /// for retraining.
  std::size_t window_log_capacity = 256;
  /// Fewest logged rows worth retraining on; below this a requested
  /// retrain is skipped (serve.drift.retrains_skipped).
  std::size_t retrain_min_rows = 32;
  /// Row budget for one retrain; larger logs are subsampled
  /// deterministically (seeded pick, temporal order preserved).
  std::size_t retrain_max_rows = 4096;
  std::uint64_t retrain_seed = 1;

  /// kPrecondition error naming the offending field; the nested detector
  /// configs are cascaded with a "DriftConfig" context frame. The retrain
  /// cluster is only checked when `retrain` is set.
  Result<void> try_validate() const;
  /// Throwing wrapper over try_validate() (raises PreconditionError).
  void validate() const { try_validate().value(); }
};

/// Both drift detectors plus the cooldown/hysteresis state for one shard.
/// Owned by the shard worker under its apply mutex; ingest-path cost is
/// O(1) per score outside KS evaluation points.
class ShardDriftDetector {
 public:
  /// Complete snapshot of a shard's drift state.
  struct State {
    PageHinkley::State page_hinkley;
    KsWindowDetector::State ks;
    std::uint64_t scores = 0;          ///< scores observed (lifetime)
    std::uint64_t cooldown_left = 0;   ///< scores of suppression remaining
    std::uint64_t suppressed = 0;      ///< trips swallowed by cooldown
  };

  ShardDriftDetector(const DriftConfig& config, std::size_t shard);

  /// Feed one score (stamped with the epoch that produced it). Returns
  /// the trip event, if any, respecting the cooldown.
  std::optional<DriftEvent> observe(double probability,
                                    std::uint64_t model_version);

  /// A retrained epoch was published: the score distribution legitimately
  /// changed, so both baselines reset and any cooldown is cleared.
  void on_model_swap();

  std::uint64_t scores() const { return scores_; }
  std::uint64_t suppressed() const { return suppressed_; }
  const PageHinkley& page_hinkley() const { return page_hinkley_; }
  const KsWindowDetector& ks() const { return ks_; }

  State state() const;
  void restore(const State& state);

 private:
  std::size_t shard_;
  std::size_t cooldown_scores_;
  PageHinkley page_hinkley_;
  KsWindowDetector ks_;
  std::uint64_t scores_ = 0;
  std::uint64_t cooldown_left_ = 0;
  std::uint64_t suppressed_ = 0;
};

}  // namespace hmd::serve
