#include "serve/resilience.hpp"

#include <chrono>
#include <cstdlib>
#include <istream>
#include <ostream>
#include <sstream>
#include <string>
#include <thread>

#include "core/deployment.hpp"
#include "util/rng.hpp"
#include "util/strings.hpp"

namespace hmd::serve {

// --------------------------------------------------------------------------
// ModelHub
// --------------------------------------------------------------------------

namespace {

void validate_epoch_models(const ml::Classifier& primary,
                           const ml::Classifier* fallback) {
  HMD_REQUIRE(primary.num_classes() == 2,
              "ModelHub: primary must be a trained binary classifier");
  if (fallback != nullptr)
    HMD_REQUIRE(fallback->num_classes() == primary.num_classes(),
                "ModelHub: fallback class count differs from primary");
}

}  // namespace

std::uint64_t ModelHub::publish(
    std::shared_ptr<const ml::Classifier> primary,
    std::shared_ptr<const ml::Classifier> fallback) {
  HMD_REQUIRE(primary != nullptr, "ModelHub::publish: null primary");
  validate_epoch_models(*primary, fallback.get());
  auto epoch = std::make_shared<Epoch>();
  epoch->primary = std::move(primary);
  epoch->fallback = std::move(fallback);
  std::lock_guard<std::mutex> lock(mutex_);
  epoch->version = next_version_++;
  current_ = std::move(epoch);
  return current_->version;
}

std::uint64_t ModelHub::publish_unowned(const ml::Classifier& primary,
                                        const ml::Classifier* fallback) {
  // Aliasing shared_ptrs with an empty owner: no lifetime management,
  // same epoch plumbing as owned models.
  std::shared_ptr<const ml::Classifier> p(std::shared_ptr<void>(), &primary);
  std::shared_ptr<const ml::Classifier> f;
  if (fallback != nullptr)
    f = std::shared_ptr<const ml::Classifier>(std::shared_ptr<void>(),
                                              fallback);
  return publish(std::move(p), std::move(f));
}

Result<std::uint64_t> ModelHub::publish_from_stream(std::istream& in) {
  Result<core::DeploymentBundle> loaded = core::try_load_bundle(in);
  if (!loaded)
    return Result<std::uint64_t>(std::move(loaded.error()))
        .with_context("hot-swap rejected");
  // The bundle owns the models; aliasing shared_ptrs keep it alive for as
  // long as any batch holds the epoch.
  auto bundle =
      std::make_shared<core::DeploymentBundle>(std::move(loaded).value());
  std::shared_ptr<const ml::Classifier> primary(bundle, &bundle->model());
  std::shared_ptr<const ml::Classifier> fallback;
  if (bundle->fallback_model() != nullptr)
    fallback = std::shared_ptr<const ml::Classifier>(bundle,
                                                     bundle->fallback_model());
  return capture_result([&] {
    return publish(std::move(primary), std::move(fallback));
  }).with_context("hot-swap rejected");
}

std::shared_ptr<const ModelHub::Epoch> ModelHub::current() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return current_;
}

std::uint64_t ModelHub::version() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return current_ ? current_->version : 0;
}

// --------------------------------------------------------------------------
// EngineSnapshot
// --------------------------------------------------------------------------

namespace {

/// Doubles in snapshots use hexfloat ("%a"): exact round-trip, so restored
/// drift baselines continue bit-identically (same contract as model
/// serialization in ml/serialization.cpp).
std::string hex_double(double v) { return format("%a", v); }

void write_hex_vector(std::ostream& out, const char* keyword,
                      const std::vector<double>& values) {
  out << keyword << " " << values.size();
  for (double v : values) out << " " << hex_double(v);
  out << "\n";
}

}  // namespace

void EngineSnapshot::write(std::ostream& out) const {
  out << "hmd-snapshot v1\n";
  out << "model_version " << model_version << "\n";
  out << "streams " << streams.size() << "\n";
  for (const StreamSnapshot& s : streams) {
    out << "stream " << s.id << " accepted " << s.accepted << " evicted "
        << s.evicted << " high_water " << s.high_water << " windows "
        << s.detector.windows << " flagged " << s.detector.flagged
        << " streak " << s.detector.streak << " alarmed "
        << (s.detector.alarmed ? 1 : 0) << " alarm_window ";
    if (s.detector.alarmed)
      out << s.detector.alarm_window;
    else
      out << "-";
    out << "\n";
  }
  if (!drift.empty()) {
    // Optional trailing drift section — readers that predate it stop at
    // the last stream line, readers that expect it treat EOF as "none".
    out << "drift_shards " << drift.size() << "\n";
    for (const DriftShardSnapshot& d : drift) {
      const ShardDriftDetector::State& st = d.state;
      out << "drift_shard " << d.shard << " scores " << st.scores
          << " cooldown_left " << st.cooldown_left << " suppressed "
          << st.suppressed << "\n";
      out << "ph count " << st.page_hinkley.count << " mean "
          << hex_double(st.page_hinkley.mean) << " cumulative "
          << hex_double(st.page_hinkley.cumulative) << " minimum "
          << hex_double(st.page_hinkley.minimum) << " last_deviation "
          << hex_double(st.page_hinkley.last_deviation) << " trips "
          << st.page_hinkley.trips << "\n";
      out << "ks observed " << st.ks.observed << " last_statistic "
          << hex_double(st.ks.last_statistic) << " trips " << st.ks.trips
          << "\n";
      write_hex_vector(out, "ks_reference", st.ks.reference);
      write_hex_vector(out, "ks_current", st.ks.current);
    }
  }
  // Optional policy section (after drift): pins the scoring-policy
  // identity so a restore under a different policy fails loudly.
  if (policy.present)
    out << "policy " << policy.kind << " seed " << policy.seed << " members "
        << policy.members << "\n";
  // Optional tier section (after policy): pins the serving precision tier
  // the same way — a restore under a different tier fails loudly.
  if (tier.present) out << "tier " << tier.name << "\n";
}

namespace {

[[noreturn]] void snapshot_fail(const std::string& what) {
  throw ParseError("snapshot: " + what);
}

/// Reads "<keyword> <value>" from `line`, failing loudly on drift — a
/// snapshot is a restart-critical artifact, so silent misparses are worse
/// than rejects.
std::uint64_t expect_field(std::istringstream& line, const char* keyword) {
  std::string word;
  if (!(line >> word) || word != keyword)
    snapshot_fail(std::string("expected field '") + keyword + "'");
  std::uint64_t value = 0;
  if (!(line >> value))
    snapshot_fail(std::string("bad value for field '") + keyword + "'");
  return value;
}

/// Reads "<keyword> <hexfloat>" (strtod accepts the "%a" encoding).
double expect_double_field(std::istringstream& line, const char* keyword) {
  std::string word;
  if (!(line >> word) || word != keyword)
    snapshot_fail(std::string("expected field '") + keyword + "'");
  if (!(line >> word))
    snapshot_fail(std::string("bad value for field '") + keyword + "'");
  char* end = nullptr;
  const double value = std::strtod(word.c_str(), &end);
  if (end == nullptr || *end != '\0')
    snapshot_fail(std::string("bad double for field '") + keyword + "'");
  return value;
}

/// Reads "<keyword> <n> <hexfloat>*n".
std::vector<double> expect_hex_vector(std::istringstream& line,
                                      const char* keyword) {
  std::string word;
  if (!(line >> word) || word != keyword)
    snapshot_fail(std::string("expected field '") + keyword + "'");
  std::size_t count = 0;
  if (!(line >> count))
    snapshot_fail(std::string("bad count for field '") + keyword + "'");
  std::vector<double> values;
  values.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    if (!(line >> word))
      snapshot_fail(std::string("truncated vector for field '") + keyword +
                    "'");
    char* end = nullptr;
    values.push_back(std::strtod(word.c_str(), &end));
    if (end == nullptr || *end != '\0')
      snapshot_fail(std::string("bad double in field '") + keyword + "'");
  }
  return values;
}

void expect_line_end(std::istringstream& line, const char* what) {
  std::string word;
  if (line >> word)
    snapshot_fail(std::string("trailing tokens on ") + what + " line");
}

std::istringstream next_line(std::istream& in, const char* what) {
  std::string line;
  if (!std::getline(in, line))
    snapshot_fail(std::string("truncated: missing ") + what + " line");
  return std::istringstream(line);
}

void read_drift_shards(std::istream& in, std::uint64_t drift_count,
                       EngineSnapshot& snapshot);

EngineSnapshot read_snapshot_impl(std::istream& in) {
  std::string line;
  if (!std::getline(in, line) || line != "hmd-snapshot v1")
    snapshot_fail("bad header (expected 'hmd-snapshot v1')");

  EngineSnapshot snapshot;
  if (!std::getline(in, line)) snapshot_fail("missing model_version line");
  {
    std::istringstream fields(line);
    snapshot.model_version = expect_field(fields, "model_version");
  }
  if (!std::getline(in, line)) snapshot_fail("missing streams line");
  std::uint64_t count = 0;
  {
    std::istringstream fields(line);
    count = expect_field(fields, "streams");
  }

  snapshot.streams.reserve(count);
  for (std::uint64_t i = 0; i < count; ++i) {
    if (!std::getline(in, line))
      snapshot_fail("truncated: expected " + std::to_string(count) +
                    " stream lines, got " + std::to_string(i));
    std::istringstream fields(line);
    StreamSnapshot s;
    s.id = expect_field(fields, "stream");
    s.accepted = expect_field(fields, "accepted");
    s.evicted = expect_field(fields, "evicted");
    s.high_water = expect_field(fields, "high_water");
    s.detector.windows = expect_field(fields, "windows");
    s.detector.flagged = expect_field(fields, "flagged");
    s.detector.streak = expect_field(fields, "streak");
    const std::uint64_t alarmed = expect_field(fields, "alarmed");
    if (alarmed > 1) snapshot_fail("alarmed must be 0 or 1");
    s.detector.alarmed = alarmed == 1;
    std::string word;
    if (!(fields >> word) || word != "alarm_window")
      snapshot_fail("expected field 'alarm_window'");
    if (!(fields >> word)) snapshot_fail("bad value for field 'alarm_window'");
    if (word == "-") {
      s.detector.alarm_window = core::OnlineDetector::kNoAlarm;
    } else {
      std::istringstream value(word);
      std::uint64_t w = 0;
      if (!(value >> w)) snapshot_fail("bad value for field 'alarm_window'");
      s.detector.alarm_window = static_cast<std::size_t>(w);
    }
    if (fields >> word) snapshot_fail("trailing tokens on stream line");
    // Cross-field consistency is OnlineDetector::restore's job; reject
    // here so a corrupt snapshot fails at load, not mid-restore.
    if (s.detector.alarmed != (s.detector.alarm_window !=
                               core::OnlineDetector::kNoAlarm) ||
        s.detector.flagged > s.detector.windows ||
        s.detector.streak > s.detector.flagged)
      snapshot_fail("inconsistent detector state for stream " +
                    std::to_string(s.id));
    snapshot.streams.push_back(s);
  }

  // Optional trailing sections, in order: drift, then policy, then tier.
  // EOF (or a blank line) at any point means a snapshot written before
  // that layer existed, or by an engine running without it — all load
  // fine.
  if (!std::getline(in, line)) return snapshot;
  if (line.find_first_not_of(" \t\r") == std::string::npos) return snapshot;
  if (line.rfind("drift_shards", 0) == 0) {
    std::uint64_t drift_count = 0;
    {
      std::istringstream fields(line);
      drift_count = expect_field(fields, "drift_shards");
      expect_line_end(fields, "drift_shards");
    }
    read_drift_shards(in, drift_count, snapshot);
    if (!std::getline(in, line)) return snapshot;
    if (line.find_first_not_of(" \t\r") == std::string::npos)
      return snapshot;
  }
  if (line.rfind("policy", 0) == 0) {
    std::istringstream fields(line);
    std::string word;
    fields >> word;
    if (!(fields >> snapshot.policy.kind))
      snapshot_fail("bad value for field 'policy'");
    snapshot.policy.seed = expect_field(fields, "seed");
    snapshot.policy.members = expect_field(fields, "members");
    expect_line_end(fields, "policy");
    snapshot.policy.present = true;
    if (!std::getline(in, line)) return snapshot;
    if (line.find_first_not_of(" \t\r") == std::string::npos)
      return snapshot;
  }
  {
    std::istringstream fields(line);
    std::string word;
    if (!(fields >> word) || word != "tier")
      snapshot_fail(
          "expected optional section 'drift_shards', 'policy' or 'tier'");
    if (!(fields >> snapshot.tier.name))
      snapshot_fail("bad value for field 'tier'");
    expect_line_end(fields, "tier");
    snapshot.tier.present = true;
  }
  return snapshot;
}

/// Reads `drift_count` per-shard drift blocks into `snapshot.drift`.
void read_drift_shards(std::istream& in, std::uint64_t drift_count,
                       EngineSnapshot& snapshot) {
  snapshot.drift.reserve(drift_count);
  for (std::uint64_t i = 0; i < drift_count; ++i) {
    DriftShardSnapshot d;
    {
      auto fields = next_line(in, "drift_shard");
      d.shard = static_cast<std::size_t>(expect_field(fields, "drift_shard"));
      d.state.scores = expect_field(fields, "scores");
      d.state.cooldown_left = expect_field(fields, "cooldown_left");
      d.state.suppressed = expect_field(fields, "suppressed");
      expect_line_end(fields, "drift_shard");
    }
    {
      auto fields = next_line(in, "ph");
      std::string word;
      if (!(fields >> word) || word != "ph")
        snapshot_fail("expected field 'ph'");
      d.state.page_hinkley.count = expect_field(fields, "count");
      d.state.page_hinkley.mean = expect_double_field(fields, "mean");
      d.state.page_hinkley.cumulative =
          expect_double_field(fields, "cumulative");
      d.state.page_hinkley.minimum = expect_double_field(fields, "minimum");
      d.state.page_hinkley.last_deviation =
          expect_double_field(fields, "last_deviation");
      d.state.page_hinkley.trips = expect_field(fields, "trips");
      expect_line_end(fields, "ph");
    }
    {
      auto fields = next_line(in, "ks");
      std::string word;
      if (!(fields >> word) || word != "ks")
        snapshot_fail("expected field 'ks'");
      d.state.ks.observed = expect_field(fields, "observed");
      d.state.ks.last_statistic =
          expect_double_field(fields, "last_statistic");
      d.state.ks.trips = expect_field(fields, "trips");
      expect_line_end(fields, "ks");
    }
    {
      auto fields = next_line(in, "ks_reference");
      d.state.ks.reference = expect_hex_vector(fields, "ks_reference");
      expect_line_end(fields, "ks_reference");
    }
    {
      auto fields = next_line(in, "ks_current");
      d.state.ks.current = expect_hex_vector(fields, "ks_current");
      expect_line_end(fields, "ks_current");
    }
    snapshot.drift.push_back(std::move(d));
  }
}

}  // namespace

Result<EngineSnapshot> EngineSnapshot::read(std::istream& in) {
  return capture_result([&in] { return read_snapshot_impl(in); })
      .with_context("reading engine snapshot");
}

EngineSnapshot EngineSnapshot::read_or_throw(std::istream& in) {
  return read(in).value();
}

// --------------------------------------------------------------------------
// FaultInjector
// --------------------------------------------------------------------------

Result<void> FaultPlan::try_validate() const {
  if (!(score_throw_rate >= 0.0 && score_throw_rate <= 1.0))
    return ErrorInfo(ErrCode::kPrecondition,
                     "FaultPlan.score_throw_rate: must be in [0, 1]");
  if (!(slow_batch_rate >= 0.0 && slow_batch_rate <= 1.0))
    return ErrorInfo(ErrCode::kPrecondition,
                     "FaultPlan.slow_batch_rate: must be in [0, 1]");
  if (throw_burst < 1)
    return ErrorInfo(ErrCode::kPrecondition,
                     "FaultPlan.throw_burst: must be >= 1");
  return {};
}

FaultInjector::FaultInjector(FaultPlan plan) : plan_(plan) {
  plan_.validate();
}

namespace {

/// Deterministic uniform [0, 1) from (seed, shard, ordinal, salt) — a few
/// splitmix64 steps over a mixed key. Pure, so tests can predict the
/// fault schedule.
double fault_uniform(std::uint64_t seed, std::size_t shard,
                     std::uint64_t ordinal, std::uint64_t salt) {
  std::uint64_t x = seed;
  x ^= splitmix64(x) + static_cast<std::uint64_t>(shard);
  x ^= splitmix64(x) + ordinal;
  x ^= splitmix64(x) + salt;
  const std::uint64_t bits = splitmix64(x);
  return static_cast<double>(bits >> 11) * 0x1.0p-53;
}

}  // namespace

bool FaultInjector::batch_throws(std::size_t shard,
                                 std::uint64_t ordinal) const {
  if (ordinal < plan_.fail_first_batches) return true;
  return plan_.score_throw_rate > 0.0 &&
         fault_uniform(plan_.seed, shard, ordinal, /*salt=*/1) <
             plan_.score_throw_rate;
}

bool FaultInjector::batch_is_slow(std::size_t shard,
                                  std::uint64_t ordinal) const {
  return plan_.slow_batch_rate > 0.0 &&
         fault_uniform(plan_.seed, shard, ordinal, /*salt=*/2) <
             plan_.slow_batch_rate;
}

void FaultInjector::on_score_attempt(std::size_t shard, std::uint64_t ordinal,
                                     std::size_t attempt) {
  if (attempt == 0 && plan_.slow_batch_us > 0 &&
      batch_is_slow(shard, ordinal)) {
    delays_injected_.fetch_add(1, std::memory_order_relaxed);
    std::this_thread::sleep_for(std::chrono::microseconds(plan_.slow_batch_us));
  }
  if (!batch_throws(shard, ordinal)) return;
  // fail_first_batches faults every attempt (forces retry exhaustion);
  // rate-chosen faults fail only the first throw_burst attempts, so a
  // retry budget >= throw_burst masks them completely.
  if (ordinal >= plan_.fail_first_batches && attempt >= plan_.throw_burst)
    return;
  throws_injected_.fetch_add(1, std::memory_order_relaxed);
  throw InjectedFault("injected scoring fault (shard " +
                      std::to_string(shard) + ", batch " +
                      std::to_string(ordinal) + ", attempt " +
                      std::to_string(attempt) + ")");
}

// --------------------------------------------------------------------------
// ResilienceConfig
// --------------------------------------------------------------------------

Result<void> ResilienceConfig::try_validate() const {
  if (degrade_after < 1)
    return ErrorInfo(ErrCode::kPrecondition,
                     "ResilienceConfig.degrade_after: must be >= 1");
  if (probe_every < 1)
    return ErrorInfo(ErrCode::kPrecondition,
                     "ResilienceConfig.probe_every: must be >= 1");
  if (budget_strikes < 1)
    return ErrorInfo(ErrCode::kPrecondition,
                     "ResilienceConfig.budget_strikes: must be >= 1");
  if (faults)
    return std::move(faults->plan().try_validate())
        .with_context("ResilienceConfig");
  return {};
}

}  // namespace hmd::serve
