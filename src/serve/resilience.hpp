// Resilience layer for the streaming detection engine.
//
// A monitor that dies — or silently stops scoring — is worse than a noisy
// one: the window in which an HMD is blind is exactly the window malware
// needs. This header holds the four pieces that keep serve::StreamEngine
// scoring through model updates, restarts and faults (docs/resilience.md
// has the full protocol write-ups):
//
//   ModelHub        versioned hot-swap. Classifier epochs are published as
//                   shared_ptr<const Epoch>; shard workers pin the current
//                   epoch per batch, so a swap under live traffic is one
//                   atomic pointer exchange and old epochs die when the
//                   last in-flight batch releases them. Every verdict is
//                   stamped with the epoch version that produced it.
//
//   EngineSnapshot  checkpoint/restore. Serializes per-stream monitor
//                   state (OnlineDetector::State), accept/evict counters
//                   and the ring high-water mark into a small versioned
//                   text artifact; an engine constructed with a snapshot
//                   continues the verdict sequence bit-identically.
//
//   FaultInjector   deterministic fault injection for tests. A seeded
//                   FaultPlan decides — as a pure function of (shard,
//                   batch ordinal, attempt) — which scoring attempts throw
//                   and which batches are artificially slow, so a fault
//                   soak is exactly reproducible from its seed.
//
//   ResilienceConfig  degradation policy: retry budget with backoff,
//                   consecutive-failure threshold for falling back to the
//                   bundle's cheap secondary model, latency budget, and
//                   the probe cadence for recovering onto the primary.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "core/online_detector.hpp"
#include "ml/classifier.hpp"
#include "serve/drift.hpp"
#include "util/error.hpp"
#include "util/result.hpp"

namespace hmd::serve {

// ---------------------------------------------------------------------------
// ModelHub — versioned model hot-swap
// ---------------------------------------------------------------------------

/// Publishes classifier epochs to the serving path. Thread-safe: any
/// thread may publish while shard workers read. Workers call current()
/// once per batch and hold the returned shared_ptr for the batch's
/// lifetime, so publish never invalidates an in-flight score.
class ModelHub {
 public:
  /// One published model generation. `fallback` (the degraded-mode
  /// secondary) may be null — degradation then has nowhere to go and a
  /// persistently failing primary becomes a latched engine error.
  struct Epoch {
    std::uint64_t version = 0;
    std::shared_ptr<const ml::Classifier> primary;
    std::shared_ptr<const ml::Classifier> fallback;
  };

  ModelHub() = default;

  /// Publish a new epoch; returns its version (1, 2, 3, ...). `primary`
  /// must be a trained binary classifier; `fallback`, when present, must
  /// be trained with the same class count. Throws PreconditionError
  /// otherwise — the current epoch is untouched on failure.
  std::uint64_t publish(std::shared_ptr<const ml::Classifier> primary,
                        std::shared_ptr<const ml::Classifier> fallback = {});

  /// Publish models owned elsewhere (the engine's legacy "const
  /// Classifier&" constructor). The caller guarantees the models outlive
  /// every consumer of this epoch.
  std::uint64_t publish_unowned(const ml::Classifier& primary,
                                const ml::Classifier* fallback = nullptr);

  /// Hot-swap from a serialized deployment bundle (core::save_bundle
  /// output; v2 bundles carry the fallback). A corrupt bundle is the
  /// failure this API is for: the error comes back as a value and the
  /// previous epoch KEEPS SERVING — a bad push can never take the
  /// monitor down. Returns the new version on success.
  Result<std::uint64_t> publish_from_stream(std::istream& in);

  /// The live epoch (null until the first publish). The returned pointer
  /// pins the epoch: models stay valid for as long as the caller holds it.
  std::shared_ptr<const Epoch> current() const;

  /// Version of the live epoch (0 until the first publish).
  std::uint64_t version() const;

 private:
  mutable std::mutex mutex_;
  std::shared_ptr<const Epoch> current_;
  std::uint64_t next_version_ = 1;
};

// ---------------------------------------------------------------------------
// EngineSnapshot — checkpoint/restore
// ---------------------------------------------------------------------------

/// Persisted state of one stream: identity, accounting, the ring
/// high-water mark (peak pending depth — capacity-planning data, not
/// restored into behavior) and the full detector state machine.
struct StreamSnapshot {
  std::uint64_t id = 0;
  std::uint64_t accepted = 0;    ///< windows ingested (incl. later-dropped)
  std::uint64_t evicted = 0;     ///< windows dropped under kDropOldest
  std::uint64_t high_water = 0;  ///< max windows ever pending in the ring
  core::OnlineDetector::State detector;
};

/// Drift-detector state of one shard (serve/drift.hpp): the Page–Hinkley
/// and KS baselines plus the cooldown/hysteresis counters, so a restored
/// engine continues drift detection from the checkpointed baseline rather
/// than re-warming (and possibly re-tripping) on restart.
struct DriftShardSnapshot {
  std::size_t shard = 0;
  ShardDriftDetector::State state;
};

/// Identity of the scoring policy that produced a checkpoint
/// (serve/ensemble_policy.hpp). The stochastic policy's selection
/// sequence is a pure function of (seed, stream, window ordinal) and the
/// ordinals are already restored through each stream's detector state, so
/// nothing mutable needs persisting — but restoring a snapshot into an
/// engine with a DIFFERENT policy would silently change the verdict
/// stream. This section pins kind/seed/member count so such a restore
/// fails loudly instead.
struct PolicySnapshot {
  bool present = false;  ///< engine ran a non-single scoring policy
  std::string kind;      ///< to_string(EnsembleConfig::Kind)
  std::uint64_t seed = 0;
  std::uint64_t members = 0;  ///< total ensemble size
};

/// Serving precision tier that produced a checkpoint
/// (ServeConfig::Tier). A checkpointed verdict stream is only continued
/// correctly by scoring the remaining traffic the same way it was scored
/// before the cut — restoring a float-tier snapshot into an int8/q16
/// engine (or vice versa) would silently change every score after the
/// restore point. This section pins the tier name so such a restore fails
/// loudly instead. Absent from snapshots written before the tier layer
/// existed (which all served float).
struct TierSnapshot {
  bool present = false;
  std::string name;  ///< serve::to_string(ServeConfig::Tier)
};

/// A whole-engine checkpoint. Write with checkpoint(); feed back through
/// ServeConfig::restore_from to continue bit-identically. The format is a
/// line-oriented text artifact ("hmd-snapshot v1") — small (streams are
/// dozens, not millions) and diffable in test failures.
struct EngineSnapshot {
  std::uint64_t model_version = 0;  ///< hub epoch at snapshot time
  std::vector<StreamSnapshot> streams;
  /// Per-shard drift state — an OPTIONAL trailing section: empty when the
  /// engine ran without DriftConfig::enabled, and absent from (still
  /// readable) snapshots written before the drift layer existed.
  std::vector<DriftShardSnapshot> drift;
  /// Scoring-policy identity — an OPTIONAL trailing section after drift,
  /// written only by engines running a non-single policy.
  PolicySnapshot policy;
  /// Serving-tier identity — an OPTIONAL trailing section after policy,
  /// written by every tier-aware engine (including float).
  TierSnapshot tier;

  void write(std::ostream& out) const;

  /// Parse a snapshot; malformed input yields ErrCode::kParse with a
  /// "reading engine snapshot" context frame.
  static Result<EngineSnapshot> read(std::istream& in);

  /// Convenience over read(): thin throwing wrapper (raises ParseError).
  static EngineSnapshot read_or_throw(std::istream& in);
};

// ---------------------------------------------------------------------------
// FaultInjector — deterministic fault injection
// ---------------------------------------------------------------------------

/// Thrown by FaultInjector for an injected scoring failure. A distinct
/// type so tests can tell injected faults from real bugs.
class InjectedFault : public Error {
 public:
  explicit InjectedFault(const std::string& what) : Error(what) {}
};

/// What to inject, decided per (shard, batch ordinal, attempt) from
/// `seed` — rerunning the same plan against the same traffic replays the
/// same faults. Two fault classes live elsewhere by construction:
/// ring-full bursts are produced by a small ring_capacity under bursty
/// ingest, and corrupt-bundle loads by handing publish_from_stream bad
/// bytes (both exercised in the fault soak test).
struct FaultPlan {
  std::uint64_t seed = 0;
  /// Probability a batch is faulted (its scoring attempts throw).
  double score_throw_rate = 0.0;
  /// Attempts that throw for a faulted batch before it succeeds. Keep
  /// <= ResilienceConfig retries and retries mask every fault — the
  /// contract the soak test pins (verdicts identical to a fault-free run).
  std::size_t throw_burst = 1;
  /// Probability a batch's first attempt is delayed by slow_batch_us
  /// (exercises the latency-budget degradation path).
  double slow_batch_rate = 0.0;
  std::uint64_t slow_batch_us = 0;
  /// Every shard's first N batches throw on every attempt — forces
  /// retry exhaustion and degraded mode deterministically.
  std::size_t fail_first_batches = 0;

  /// kPrecondition error naming the offending field, or success.
  Result<void> try_validate() const;
  /// Throwing wrapper over try_validate() (raises PreconditionError).
  void validate() const { try_validate().value(); }
};

/// The injection hook the shard workers call before every scoring
/// attempt. Stateless between calls except for the injected counters;
/// all decisions derive from the plan's seed.
class FaultInjector {
 public:
  explicit FaultInjector(FaultPlan plan);

  const FaultPlan& plan() const { return plan_; }

  /// Called at the top of scoring attempt `attempt` (0-based) of batch
  /// `ordinal` (0-based, per shard) on shard `shard`. Sleeps for the
  /// plan's slow-batch delay and/or throws InjectedFault, per the plan.
  void on_score_attempt(std::size_t shard, std::uint64_t ordinal,
                        std::size_t attempt);

  /// Pure decision functions (no side effects) — used by tests to
  /// predict the injected schedule.
  bool batch_throws(std::size_t shard, std::uint64_t ordinal) const;
  bool batch_is_slow(std::size_t shard, std::uint64_t ordinal) const;

  std::uint64_t throws_injected() const {
    return throws_injected_.load(std::memory_order_relaxed);
  }
  std::uint64_t delays_injected() const {
    return delays_injected_.load(std::memory_order_relaxed);
  }

 private:
  FaultPlan plan_;
  std::atomic<std::uint64_t> throws_injected_{0};
  std::atomic<std::uint64_t> delays_injected_{0};
};

// ---------------------------------------------------------------------------
// ResilienceConfig — degradation policy
// ---------------------------------------------------------------------------

/// Per-engine resilience policy (embedded in ServeConfig). The failure
/// ladder for a scoring batch:
///   1. retry the primary up to max_retries more times, backing off
///      retry_backoff_us * attempt between tries;
///   2. after `degrade_after` consecutive batches exhaust their retries
///      (or `budget_strikes` consecutive batches blow latency_budget_us),
///      the shard degrades: batches score on the epoch's fallback model;
///   3. every probe_every-th degraded batch probes the primary; one
///      success recovers the shard.
/// With no fallback in the epoch, step 2 latches the engine error
/// instead (the pre-resilience behavior).
struct ResilienceConfig {
  std::size_t max_retries = 2;        ///< extra attempts after the first
  std::uint64_t retry_backoff_us = 50;  ///< base backoff between attempts
  std::size_t degrade_after = 3;      ///< consecutive failed batches
  std::size_t probe_every = 8;        ///< degraded-batch probe cadence
  std::uint64_t latency_budget_us = 0;  ///< 0 = no budget
  std::size_t budget_strikes = 4;     ///< consecutive over-budget batches
  /// Test hook; null in production.
  std::shared_ptr<FaultInjector> faults;

  /// kPrecondition error naming the offending field (an attached fault
  /// plan is cascaded with a "ResilienceConfig" context frame).
  Result<void> try_validate() const;
  /// Throwing wrapper over try_validate() (raises PreconditionError).
  void validate() const { try_validate().value(); }
};

}  // namespace hmd::serve
