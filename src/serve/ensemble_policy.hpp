// Scoring policies for the streaming engine — the ensemble defense of
// Kuruvila et al. ("Defending Hardware-based Malware Detectors against
// Adversarial Attacks", arXiv:2005.03644).
//
// A single frozen detector is a stationary target: an adversary that can
// probe it can shape a malware footprint toward benign until the model
// stops flagging (workload/evasion.hpp builds exactly that attack). The
// defense is detector diversity:
//
//   kSingle      status quo — the hub's live primary scores every window.
//                The engine keeps its pre-policy scoring path, bit-identical
//                to a policy-free build.
//   kMajority    every member scores every window; the per-window ensemble
//                probability is the MEDIAN member probability. For an odd
//                member count, median >= t iff a majority of members score
//                >= t — i.e. one median implements majority voting at every
//                downstream flag threshold simultaneously (which is why the
//                member count must be odd).
//   kStochastic  each window is scored by one member chosen as a pure
//                function of (policy seed, stream id, per-stream window
//                ordinal) — the Kuruvila defense: the adversary cannot know
//                which detector will score any given window, so a
//                perturbation tuned to one model leaks through the others.
//                The counter-keyed selection makes verdict streams
//                bit-identical for any shard count or feeder interleaving,
//                and checkpoint/restore resumes the selection sequence
//                exactly (the "RNG state" is the restored per-stream window
//                count; the EngineSnapshot policy section pins seed/kind/
//                member count so a mismatched restore fails loudly).
//
// Member 0 is the ModelHub's live primary when include_primary is set, so
// hot-swap and drift-retrain publishes rotate the ensemble's first slot
// under live traffic; the remaining members are version-pinned frozen
// models. Degraded shards (serve/resilience.hpp) bypass the ensemble and
// score on the epoch fallback alone — resilience outranks defense.
//
// Metrics (registered only when a non-single policy is active):
//   serve.policy.windows            counter  windows scored by the policy
//   serve.policy.member<k>.windows  counter  windows member k scored (or
//                                            contributed to, for majority)
//   serve.policy.disagreements      counter  majority windows whose members
//                                            straddled P(malware) = 0.5
//   serve.policy.members            gauge    ensemble size
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "ml/classifier.hpp"
#include "util/result.hpp"

namespace hmd::serve {

/// One frozen ensemble member: a trained binary classifier plus the
/// version stamp its verdicts carry (verdict_versions). Versions are
/// caller-assigned labels; hmd_serve numbers bundle-loaded members from
/// 1001 so they cannot collide with live hub epochs.
struct PolicyMember {
  std::string name;
  std::shared_ptr<const ml::Classifier> model;
  std::uint64_t version = 0;
};

/// Ensemble policy configuration (embedded in ServeConfig).
struct EnsembleConfig {
  enum class Kind {
    kSingle,     ///< hub primary only (default; pre-policy scoring path)
    kMajority,   ///< median member probability == majority vote
    kStochastic  ///< seeded per-window member selection
  };

  Kind kind = Kind::kSingle;
  /// Selection seed for kStochastic (part of the determinism contract and
  /// persisted in snapshots).
  std::uint64_t seed = 0;
  /// Use the hub's live primary as member 0 (hot-swaps rotate it).
  bool include_primary = true;
  /// Frozen members after the optional primary slot.
  std::vector<PolicyMember> members;

  /// Members in the ensemble, counting the primary slot.
  std::size_t total_members() const {
    return members.size() + (include_primary ? 1 : 0);
  }

  /// kPrecondition error naming the offending field, or success: single
  /// policies carry no members; ensembles need >= 2 total members (odd
  /// and >= 3 for kMajority) and every member model trained binary.
  Result<void> try_validate() const;
  void validate() const { try_validate().value(); }
};

const char* to_string(EnsembleConfig::Kind kind);
/// Inverse of to_string; kParse error for unknown names.
Result<EnsembleConfig::Kind> ensemble_kind_from_name(const std::string& name);

/// The scoring strategy between shard workers and the ModelHub. Stateless
/// across calls (all mutable scratch is caller-owned), so shard workers
/// share one instance without synchronization.
class ScoringPolicy {
 public:
  /// Identity of one window for stochastic selection: the stream id and
  /// the stream's scored-window ordinal (0-based). Both survive
  /// checkpoint/restore, which is what resumes the selection sequence.
  struct WindowKey {
    std::uint64_t stream_id = 0;
    std::uint64_t ordinal = 0;
  };

  /// Caller-owned (per-worker) buffers + per-call outcome counters.
  struct Scratch {
    std::vector<double> member_dist;   ///< majority: all members' outputs
    std::vector<double> member_flat;   ///< stochastic: gathered windows
    std::vector<double> probs;         ///< majority: per-window member probs
    std::vector<std::size_t> selection;  ///< stochastic: member per window
    std::vector<std::size_t> gathered;   ///< stochastic: window indices
    /// Windows each member scored in the last score() call.
    std::vector<std::uint64_t> member_windows;
    /// Majority windows whose member predictions disagreed at 0.5.
    std::uint64_t disagreements = 0;
  };

  /// `config` must be a validated non-single ensemble.
  explicit ScoringPolicy(EnsembleConfig config);

  const EnsembleConfig& config() const { return config_; }
  std::size_t total_members() const { return config_.total_members(); }

  /// Member index scoring window `key` under kStochastic — a pure
  /// function of (config seed, key), exposed so tests can predict the
  /// schedule.
  std::size_t select_member(const WindowKey& key) const;

  /// Score `keys.size()` windows of `width` counters ([flat] row-major).
  /// `primary` is the pinned epoch's live model (member 0 when
  /// include_primary), `primary_version` its hub version. Writes binary
  /// distributions to `dist` (n x 2) and the scoring member's version to
  /// `versions` (n). Member model failures propagate as exceptions — the
  /// engine's retry/fallback ladder owns recovery.
  void score(const ml::Classifier& primary, std::uint64_t primary_version,
             std::span<const double> flat, std::size_t width,
             std::span<const WindowKey> keys, std::span<double> dist,
             std::span<std::uint64_t> versions, Scratch& scratch) const;

 private:
  const ml::Classifier& member_model(std::size_t index,
                                     const ml::Classifier& primary) const;
  std::uint64_t member_version(std::size_t index,
                               std::uint64_t primary_version) const;

  EnsembleConfig config_;
};

}  // namespace hmd::serve
