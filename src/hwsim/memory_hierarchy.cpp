#include "hwsim/memory_hierarchy.hpp"

namespace hmd::hwsim {

MemoryHierarchy::MemoryHierarchy()
    : MemoryHierarchy(haswell_l1i(), haswell_l1d(), haswell_l2(),
                      haswell_llc(), TlbConfig{.entries = 128},
                      TlbConfig{.entries = 64}) {}

MemoryHierarchy MemoryHierarchy::miniature() {
  return MemoryHierarchy(miniature_l1i(), miniature_l1d(), miniature_l2(),
                         miniature_llc(), TlbConfig{.entries = 64},
                         TlbConfig{.entries = 48});
}

MemoryHierarchy::MemoryHierarchy(CacheConfig l1i, CacheConfig l1d,
                                 CacheConfig l2, CacheConfig llc,
                                 TlbConfig itlb, TlbConfig dtlb,
                                 HierarchyLatencies latencies)
    : l1i_(std::move(l1i)),
      l1d_(std::move(l1d)),
      l2_(std::move(l2)),
      llc_(std::move(llc)),
      itlb_(itlb),
      dtlb_(dtlb),
      latencies_(latencies) {}

AccessOutcome MemoryHierarchy::through_shared_levels(std::uint64_t addr,
                                                     bool is_store,
                                                     bool l1_missed,
                                                     bool tlb_missed) {
  AccessOutcome out;
  out.l1_miss = l1_missed;
  out.tlb_miss = tlb_missed;
  out.latency_cycles = latencies_.l1_hit;
  if (tlb_missed) out.latency_cycles += latencies_.tlb_miss_walk;
  if (!l1_missed) return out;

  const CacheAccessResult l2_res = l2_.access(addr, is_store);
  if (l2_res.hit) {
    out.latency_cycles += latencies_.l2_hit;
    return out;
  }
  out.l2_miss = true;

  // L2 victim write-back lands in the LLC as a store.
  if (l2_res.writeback) {
    const CacheAccessResult wb = llc_.access(addr, /*is_store=*/true);
    if (wb.writeback) ++out.node_stores;
  }

  out.llc_accessed = true;
  const CacheAccessResult llc_res = llc_.access(addr, is_store);
  if (llc_res.writeback) ++out.node_stores;
  if (llc_res.hit) {
    out.latency_cycles += latencies_.llc_hit;
    return out;
  }
  out.llc_miss = true;
  out.latency_cycles += latencies_.memory;
  return out;
}

AccessOutcome MemoryHierarchy::fetch(std::uint64_t pc) {
  const bool tlb_hit = itlb_.access(pc);
  const CacheAccessResult l1 = l1i_.access(pc, /*is_store=*/false);
  return through_shared_levels(pc, /*is_store=*/false, !l1.hit, !tlb_hit);
}

AccessOutcome MemoryHierarchy::load(std::uint64_t addr, std::uint64_t pc) {
  const bool tlb_hit = dtlb_.access(addr);
  const CacheAccessResult l1 = l1d_.access(addr, /*is_store=*/false);
  AccessOutcome out =
      through_shared_levels(addr, /*is_store=*/false, !l1.hit, !tlb_hit);
  if (prefetcher_.has_value()) {
    for (std::uint64_t pf_addr : prefetcher_->observe(pc, addr)) {
      // Fill L2; on an LLC miss the line is read from DRAM.
      const CacheAccessResult l2_fill = l2_.fill(pf_addr);
      if (l2_fill.hit) continue;
      const CacheAccessResult llc_fill = llc_.fill(pf_addr);
      if (llc_fill.writeback) ++out.node_stores;
      if (!llc_fill.hit) ++out.prefetch_fills;
    }
  }
  return out;
}

void MemoryHierarchy::enable_prefetcher(PrefetcherConfig config) {
  prefetcher_.emplace(config);
}

AccessOutcome MemoryHierarchy::store(std::uint64_t addr) {
  const bool tlb_hit = dtlb_.access(addr);
  const CacheAccessResult l1 = l1d_.access(addr, /*is_store=*/true);
  AccessOutcome out =
      through_shared_levels(addr, /*is_store=*/true, !l1.hit, !tlb_hit);
  // An L1D dirty eviction is absorbed by the L2 in this model (no extra
  // event), matching how perf's node-stores only sees DRAM traffic.
  (void)l1.writeback;
  return out;
}

void MemoryHierarchy::flush() {
  l1i_.flush();
  l1d_.flush();
  l2_.flush();
  llc_.flush();
  itlb_.flush();
  dtlb_.flush();
}

}  // namespace hmd::hwsim
