// Hardware event definitions.
//
// The thesis collects 16 named perf events on an Intel Haswell Core i5-4590
// (52 hardware events multiplexed onto 8 programmable PMU registers). This
// header defines the subset of architectural events the simulator produces;
// the 16 events used as classifier features are exactly the ones visible in
// the thesis's WEKA screenshot (Fig. 8) and Table 2.
#pragma once

#include <array>
#include <cstdint>
#include <string_view>

namespace hmd::hwsim {

/// Architectural events counted by the simulated PMU.
///
/// Semantics follow perf(1) event names on Haswell:
///  - kCacheReferences / kCacheMisses count at the last-level cache;
///  - kNodeLoads / kNodeStores count local-memory-node traffic (LLC misses
///    that reach DRAM);
///  - kBusCycles advances at a fixed ratio of core cycles.
enum class HwEvent : std::uint8_t {
  kInstructions = 0,
  kBranchInstructions,
  kBranchMisses,
  kBranchLoads,
  kCacheReferences,
  kCacheMisses,
  kL1DcacheLoads,
  kL1DcacheStores,
  kL1DcacheLoadMisses,
  kL1IcacheLoadMisses,
  kLlcLoads,
  kLlcLoadMisses,
  kITlbLoadMisses,
  kBusCycles,
  kNodeLoads,
  kNodeStores,
  // Events below are supported by the PMU but are not among the paper's 16
  // classifier features; they exist so that multiplexing pressure (more
  // events than registers) can be exercised realistically.
  kCycles,
  kL1DcacheStoreMisses,
  kDTlbLoadMisses,
  kLlcStores,
  kLlcStoreMisses,
  kStalledCyclesFrontend,
  kCount  // sentinel
};

inline constexpr std::size_t kNumEvents =
    static_cast<std::size_t>(HwEvent::kCount);

/// The 16 events used as classifier features throughout the paper.
inline constexpr std::size_t kNumFeatureEvents = 16;

/// perf(1)-style name for an event.
std::string_view event_name(HwEvent e);

/// Inverse of event_name; throws hmd::ParseError for unknown names.
HwEvent event_from_name(std::string_view name);

/// The 16 feature events in the order used for dataset columns.
const std::array<HwEvent, kNumFeatureEvents>& feature_events();

}  // namespace hmd::hwsim
