#include "hwsim/events.hpp"

#include "util/error.hpp"

namespace hmd::hwsim {

namespace {
constexpr std::array<std::string_view, kNumEvents> kNames = {
    "instructions",
    "branch-instructions",
    "branch-misses",
    "branch-loads",
    "cache-references",
    "cache-misses",
    "L1-dcache-loads",
    "L1-dcache-stores",
    "L1-dcache-load-misses",
    "L1-icache-load-misses",
    "LLC-loads",
    "LLC-load-misses",
    "iTLB-load-misses",
    "bus-cycles",
    "node-loads",
    "node-stores",
    "cycles",
    "L1-dcache-store-misses",
    "dTLB-load-misses",
    "LLC-stores",
    "LLC-store-misses",
    "stalled-cycles-frontend",
};
}  // namespace

std::string_view event_name(HwEvent e) {
  const auto i = static_cast<std::size_t>(e);
  HMD_REQUIRE(i < kNumEvents, "event_name: invalid event");
  return kNames[i];
}

HwEvent event_from_name(std::string_view name) {
  for (std::size_t i = 0; i < kNumEvents; ++i)
    if (kNames[i] == name) return static_cast<HwEvent>(i);
  throw ParseError("unknown hardware event: " + std::string(name));
}

const std::array<HwEvent, kNumFeatureEvents>& feature_events() {
  static const std::array<HwEvent, kNumFeatureEvents> kFeatures = {
      HwEvent::kInstructions,        HwEvent::kBranchInstructions,
      HwEvent::kBranchMisses,        HwEvent::kBranchLoads,
      HwEvent::kCacheReferences,     HwEvent::kCacheMisses,
      HwEvent::kL1DcacheLoads,       HwEvent::kL1DcacheStores,
      HwEvent::kL1DcacheLoadMisses,  HwEvent::kL1IcacheLoadMisses,
      HwEvent::kLlcLoads,            HwEvent::kLlcLoadMisses,
      HwEvent::kITlbLoadMisses,      HwEvent::kBusCycles,
      HwEvent::kNodeLoads,           HwEvent::kNodeStores,
  };
  return kFeatures;
}

}  // namespace hmd::hwsim
