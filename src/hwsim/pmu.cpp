#include "hwsim/pmu.hpp"

#include "util/error.hpp"

namespace hmd::hwsim {

void Pmu::add(HwEvent e, std::uint64_t n) {
  const auto idx = static_cast<std::size_t>(e);
  HMD_REQUIRE(idx < kNumEvents, "Pmu::add: invalid event");
  true_counts_[idx] += n;
  for (auto& reg : registers_)
    if (reg.active && reg.event == e) reg.value += n;
}

void Pmu::advance_time(std::uint64_t ns) {
  for (auto& reg : registers_)
    if (reg.active) reg.time_running_ns += ns;
}

void Pmu::program(std::size_t slot, HwEvent e) {
  HMD_REQUIRE(slot < kNumCounters, "Pmu::program: slot out of range");
  HMD_REQUIRE(e < HwEvent::kCount, "Pmu::program: invalid event");
  registers_[slot] = {.event = e, .value = 0, .time_running_ns = 0,
                      .active = true};
}

void Pmu::stop(std::size_t slot) {
  HMD_REQUIRE(slot < kNumCounters, "Pmu::stop: slot out of range");
  registers_[slot].active = false;
}

bool Pmu::is_active(std::size_t slot) const {
  HMD_REQUIRE(slot < kNumCounters, "Pmu::is_active: slot out of range");
  return registers_[slot].active;
}

std::optional<HwEvent> Pmu::programmed_event(std::size_t slot) const {
  HMD_REQUIRE(slot < kNumCounters, "Pmu::programmed_event: slot out of range");
  const Register& reg = registers_[slot];
  if (reg.event == HwEvent::kCount) return std::nullopt;
  return reg.event;
}

CounterReading Pmu::read(std::size_t slot) const {
  HMD_REQUIRE(slot < kNumCounters, "Pmu::read: slot out of range");
  const Register& reg = registers_[slot];
  return {.value = reg.value, .time_running_ns = reg.time_running_ns};
}

std::uint64_t Pmu::true_count(HwEvent e) const {
  const auto idx = static_cast<std::size_t>(e);
  HMD_REQUIRE(idx < kNumEvents, "Pmu::true_count: invalid event");
  return true_counts_[idx];
}

void Pmu::reset() {
  true_counts_.fill(0);
  registers_.fill({});
}

}  // namespace hmd::hwsim
