// The simulated core: retires MicroOps, charges a simple timing model, and
// feeds the PMU with every architectural event the paper's detector reads.
#pragma once

#include <cstdint>
#include <span>

#include "hwsim/branch_predictor.hpp"
#include "hwsim/memory_hierarchy.hpp"
#include "hwsim/micro_op.hpp"
#include "hwsim/pmu.hpp"

namespace hmd::hwsim {

/// Core timing parameters (Haswell-shaped; 3.3 GHz i5-4590).
struct CoreConfig {
  double frequency_ghz = 3.3;
  std::uint32_t branch_miss_penalty = 14;  ///< pipeline refill cycles
  std::uint32_t bus_ratio = 33;            ///< core cycles per bus cycle (100 MHz bus)
  /// Instruction fetches hit the L1I once per fetched line, not per op; a
  /// taken branch always refetches.
  std::uint32_t fetch_line_bytes = 64;
};

/// In-order retirement engine with structural cache/branch/TLB modeling.
///
/// Event mapping (perf(1) semantics on Haswell):
///   instructions            — every retired MicroOp
///   branch-instructions     — every kBranch
///   branch-loads            — conditional branches (BPU direction lookups)
///   branch-misses           — direction or BTB-target mispredictions
///   L1-dcache-loads/stores  — kLoad / kStore retirements
///   L1-dcache-load-misses   — L1D load misses
///   L1-icache-load-misses   — L1I fetch misses
///   LLC-loads / LLC-load-misses — demand loads reaching / missing the LLC
///   cache-references / cache-misses — all LLC accesses / misses
///   iTLB-load-misses        — iTLB walk on fetch
///   node-loads / node-stores — DRAM reads / dirty write-backs to DRAM
///   bus-cycles              — core cycles divided by the bus ratio
class Core {
 public:
  explicit Core(CoreConfig config = {});
  /// Core with an explicit memory hierarchy (e.g.
  /// MemoryHierarchy::miniature() for the collection pipeline).
  Core(CoreConfig config, MemoryHierarchy memory);

  /// Retire one instruction.
  void execute(const MicroOp& op);
  /// Retire a stream.
  void execute(std::span<const MicroOp> ops);

  /// Advances PMU time by the cycles elapsed since the previous sync, at
  /// the configured core frequency. Collectors call this at sample edges.
  void sync_pmu_time();

  Pmu& pmu() { return pmu_; }
  const Pmu& pmu() const { return pmu_; }
  MemoryHierarchy& memory() { return memory_; }
  const MemoryHierarchy& memory() const { return memory_; }
  BranchPredictor& branch_predictor() { return predictor_; }

  std::uint64_t cycles() const { return cycles_; }
  std::uint64_t instructions() const { return instructions_; }
  double ipc() const;
  /// Nanoseconds of simulated execution so far.
  double elapsed_ns() const;

  /// Full microarchitectural reset (between sandboxed runs).
  void reset();

 private:
  CoreConfig config_;
  MemoryHierarchy memory_;
  BranchPredictor predictor_;
  Pmu pmu_;
  std::uint64_t cycles_ = 0;
  std::uint64_t instructions_ = 0;
  std::uint64_t last_synced_cycles_ = 0;
  std::uint64_t last_fetch_line_ = ~std::uint64_t{0};
  std::uint64_t bus_cycle_remainder_ = 0;

  enum class MemAccessKind { kInstructionFetch, kDataLoad, kDataStore };

  void charge_cycles(std::uint64_t cycles);
  void account_memory_outcome(const AccessOutcome& out, MemAccessKind kind);
};

}  // namespace hmd::hwsim
