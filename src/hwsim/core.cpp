#include "hwsim/core.hpp"

#include "util/error.hpp"

namespace hmd::hwsim {

Core::Core(CoreConfig config) : Core(config, MemoryHierarchy{}) {}

Core::Core(CoreConfig config, MemoryHierarchy memory)
    : config_(config), memory_(std::move(memory)) {
  HMD_REQUIRE(config_.frequency_ghz > 0.0, "core frequency must be positive");
  HMD_REQUIRE(config_.bus_ratio > 0, "bus ratio must be positive");
  HMD_REQUIRE(config_.fetch_line_bytes >= 16,
              "fetch line must be at least 16 bytes");
}

void Core::charge_cycles(std::uint64_t cycles) {
  cycles_ += cycles;
  pmu_.add(HwEvent::kCycles, cycles);
  bus_cycle_remainder_ += cycles;
  const std::uint64_t bus = bus_cycle_remainder_ / config_.bus_ratio;
  if (bus > 0) {
    pmu_.add(HwEvent::kBusCycles, bus);
    bus_cycle_remainder_ %= config_.bus_ratio;
  }
}

void Core::account_memory_outcome(const AccessOutcome& out,
                                  MemAccessKind kind) {
  if (out.llc_accessed) {
    pmu_.add(HwEvent::kCacheReferences);
    // LLC-loads / LLC-stores are data-side events in perf's mapping;
    // instruction fetches contribute to cache-references/misses and DRAM
    // (node) traffic only.
    if (kind == MemAccessKind::kDataLoad)
      pmu_.add(HwEvent::kLlcLoads);
    else if (kind == MemAccessKind::kDataStore)
      pmu_.add(HwEvent::kLlcStores);
    if (out.llc_miss) {
      pmu_.add(HwEvent::kCacheMisses);
      pmu_.add(HwEvent::kNodeLoads);  // demand fill (or write-allocate) read
      if (kind == MemAccessKind::kDataLoad)
        pmu_.add(HwEvent::kLlcLoadMisses);
      else if (kind == MemAccessKind::kDataStore)
        pmu_.add(HwEvent::kLlcStoreMisses);
    }
  }
  if (out.node_stores > 0) pmu_.add(HwEvent::kNodeStores, out.node_stores);
  if (out.prefetch_fills > 0)
    pmu_.add(HwEvent::kNodeLoads, out.prefetch_fills);
}

void Core::execute(const MicroOp& op) {
  ++instructions_;
  pmu_.add(HwEvent::kInstructions);

  // Fetch: one L1I access per new fetch line; taken branches refetch.
  const std::uint64_t line = op.pc / config_.fetch_line_bytes;
  if (line != last_fetch_line_) {
    last_fetch_line_ = line;
    const AccessOutcome fetch = memory_.fetch(op.pc);
    if (fetch.l1_miss) {
      pmu_.add(HwEvent::kL1IcacheLoadMisses);
      pmu_.add(HwEvent::kStalledCyclesFrontend, fetch.latency_cycles);
    }
    if (fetch.tlb_miss) pmu_.add(HwEvent::kITlbLoadMisses);
    account_memory_outcome(fetch, MemAccessKind::kInstructionFetch);
    charge_cycles(fetch.l1_miss ? fetch.latency_cycles : 0);
  }

  switch (op.kind) {
    case OpKind::kAlu:
      charge_cycles(1);
      break;

    case OpKind::kLoad: {
      pmu_.add(HwEvent::kL1DcacheLoads);
      const AccessOutcome out = memory_.load(op.addr, op.pc);
      if (out.l1_miss) pmu_.add(HwEvent::kL1DcacheLoadMisses);
      if (out.tlb_miss) pmu_.add(HwEvent::kDTlbLoadMisses);
      account_memory_outcome(out, MemAccessKind::kDataLoad);
      charge_cycles(out.latency_cycles);
      break;
    }

    case OpKind::kStore: {
      pmu_.add(HwEvent::kL1DcacheStores);
      const AccessOutcome out = memory_.store(op.addr);
      if (out.l1_miss) pmu_.add(HwEvent::kL1DcacheStoreMisses);
      account_memory_outcome(out, MemAccessKind::kDataStore);
      // Stores retire without waiting for the hierarchy (store buffer);
      // charge only the L1 cycle.
      charge_cycles(1);
      break;
    }

    case OpKind::kBranch: {
      pmu_.add(HwEvent::kBranchInstructions);
      bool correct = true;
      if (op.conditional) {
        pmu_.add(HwEvent::kBranchLoads);
        correct = predictor_.predict_and_update(op.pc, op.taken, op.target);
      } else {
        // Unconditional: only the BTB target matters; model as an
        // always-taken branch through the predictor's BTB path.
        correct = predictor_.predict_and_update(op.pc, /*taken=*/true,
                                                op.target);
      }
      if (!correct) {
        pmu_.add(HwEvent::kBranchMisses);
        charge_cycles(config_.branch_miss_penalty);
      } else {
        charge_cycles(1);
      }
      if (op.taken) last_fetch_line_ = ~std::uint64_t{0};  // refetch target
      break;
    }
  }
}

void Core::execute(std::span<const MicroOp> ops) {
  for (const MicroOp& op : ops) execute(op);
}

void Core::sync_pmu_time() {
  const std::uint64_t delta = cycles_ - last_synced_cycles_;
  last_synced_cycles_ = cycles_;
  const double ns = static_cast<double>(delta) / config_.frequency_ghz;
  pmu_.advance_time(static_cast<std::uint64_t>(ns));
}

double Core::ipc() const {
  return cycles_ == 0 ? 0.0
                      : static_cast<double>(instructions_) /
                            static_cast<double>(cycles_);
}

double Core::elapsed_ns() const {
  return static_cast<double>(cycles_) / config_.frequency_ghz;
}

void Core::reset() {
  memory_.flush();
  predictor_.reset();
  pmu_.reset();
  cycles_ = 0;
  instructions_ = 0;
  last_synced_cycles_ = 0;
  last_fetch_line_ = ~std::uint64_t{0};
  bus_cycle_remainder_ = 0;
}

}  // namespace hmd::hwsim
