// Set-associative cache model with true-LRU replacement.
//
// Timing is not modeled here; the Core charges miss penalties. The cache
// only answers hit/miss and maintains per-port access statistics, which is
// all the PMU needs.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace hmd::hwsim {

/// Victim selection policy.
enum class ReplacementPolicy : std::uint8_t {
  kLru,         ///< true LRU (default; what the thesis's Haswell models)
  kRoundRobin,  ///< per-set rotating pointer (FIFO-like; common in L1I)
  kRandom,      ///< pseudo-random way (deterministic xorshift)
};

/// Geometry of one cache level.
struct CacheConfig {
  std::string name;              ///< e.g. "L1D"
  std::uint64_t size_bytes = 0;  ///< total capacity
  std::uint32_t ways = 1;        ///< associativity
  std::uint32_t line_bytes = 64;
  ReplacementPolicy policy = ReplacementPolicy::kLru;

  std::uint64_t num_sets() const;
  /// Validates the geometry (power-of-two sets/lines, size divisible).
  void validate() const;
};

/// Result of a single cache access.
struct CacheAccessResult {
  bool hit = false;
  /// True when the access victimized a dirty line (write-back traffic).
  bool writeback = false;
};

/// One level of a write-back, write-allocate cache with true LRU.
class Cache {
 public:
  explicit Cache(CacheConfig config);

  /// Performs a load (`is_store == false`) or store at `addr`.
  CacheAccessResult access(std::uint64_t addr, bool is_store);

  /// Installs the line containing `addr` without counting demand
  /// statistics (prefetch fills). Returns hit=true when the line was
  /// already present; writeback reports a dirty eviction.
  CacheAccessResult fill(std::uint64_t addr);

  /// Invalidate everything (e.g. between sandboxed runs).
  void flush();

  const CacheConfig& config() const { return config_; }
  std::uint64_t loads() const { return loads_; }
  std::uint64_t stores() const { return stores_; }
  std::uint64_t load_misses() const { return load_misses_; }
  std::uint64_t store_misses() const { return store_misses_; }
  std::uint64_t accesses() const { return loads_ + stores_; }
  std::uint64_t misses() const { return load_misses_ + store_misses_; }
  double miss_rate() const;
  void reset_stats();

 private:
  struct Line {
    std::uint64_t tag = 0;
    std::uint32_t lru = 0;  ///< higher = more recently used
    bool valid = false;
    bool dirty = false;
  };

  CacheConfig config_;
  std::uint64_t set_mask_;
  std::uint32_t line_shift_;
  std::vector<Line> lines_;  ///< sets * ways, row-major by set
  std::uint64_t loads_ = 0;
  std::uint64_t stores_ = 0;
  std::uint64_t load_misses_ = 0;
  std::uint64_t store_misses_ = 0;
  std::uint32_t lru_clock_ = 0;
  std::vector<std::uint32_t> rr_next_;  ///< round-robin pointer per set
  std::uint64_t rand_state_ = 0x9e3779b97f4a7c15ull;  ///< xorshift64 state

  Line* set_begin(std::uint64_t set);
  Line* choose_victim(Line* set_lines, std::uint64_t set);
};

/// Haswell-i5-4590-shaped cache geometry (per the thesis's test machine).
CacheConfig haswell_l1i();
CacheConfig haswell_l1d();
CacheConfig haswell_l2();
CacheConfig haswell_llc();

/// Miniature geometry for miniaturized sampling windows.
///
/// The collector simulates each 10 ms window with a few thousand retired
/// ops standing in for the ~30 M a real window retires. For cache behaviour
/// to reach the same steady state (capacity misses, dirty write-backs →
/// node-store traffic) at that scale, capacities are shrunk by a matching
/// factor while keeping the Haswell shape (associativity, 3 levels, line
/// size). See DESIGN.md "miniature machine" for the calibration argument.
CacheConfig miniature_l1i();
CacheConfig miniature_l1d();
CacheConfig miniature_l2();
CacheConfig miniature_llc();

}  // namespace hmd::hwsim
