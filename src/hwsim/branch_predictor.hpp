// Gshare branch direction predictor with a direct-mapped BTB.
//
// Drives the branch-misses counter: a misprediction is a wrong direction or
// (for taken branches) a BTB target miss.
#pragma once

#include <cstdint>
#include <vector>

namespace hmd::hwsim {

/// Configuration of the gshare predictor.
struct BranchPredictorConfig {
  std::uint32_t history_bits = 12;   ///< global history register width
  std::uint32_t table_bits = 12;     ///< log2(# of 2-bit counters)
  std::uint32_t btb_entries = 4096;  ///< direct-mapped BTB size (power of two)
};

/// Gshare: PC xor global-history indexes a table of 2-bit saturating
/// counters; taken branches also consult the BTB for the target.
class BranchPredictor {
 public:
  explicit BranchPredictor(BranchPredictorConfig config = {});

  /// Predicts and then updates with the actual outcome.
  /// Returns true when the prediction was correct.
  bool predict_and_update(std::uint64_t pc, bool taken, std::uint64_t target);

  void reset();

  std::uint64_t branches() const { return branches_; }
  std::uint64_t mispredictions() const { return mispredictions_; }
  double misprediction_rate() const;
  void reset_stats();

 private:
  struct BtbEntry {
    std::uint64_t pc = 0;
    std::uint64_t target = 0;
    bool valid = false;
  };

  BranchPredictorConfig config_;
  std::vector<std::uint8_t> counters_;  ///< 2-bit saturating
  std::vector<BtbEntry> btb_;
  std::uint64_t history_ = 0;
  std::uint64_t history_mask_;
  std::uint64_t table_mask_;
  std::uint64_t branches_ = 0;
  std::uint64_t mispredictions_ = 0;
};

}  // namespace hmd::hwsim
