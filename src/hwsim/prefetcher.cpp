#include "hwsim/prefetcher.hpp"

#include <bit>

#include "util/error.hpp"

namespace hmd::hwsim {

StridePrefetcher::StridePrefetcher(PrefetcherConfig config)
    : config_(config) {
  HMD_REQUIRE(std::has_single_bit(config_.table_entries),
              "prefetcher table size must be a power of two");
  HMD_REQUIRE(config_.degree >= 1, "prefetch degree must be at least 1");
  table_.assign(config_.table_entries, {});
}

std::vector<std::uint64_t> StridePrefetcher::observe(std::uint64_t pc,
                                                     std::uint64_t addr) {
  Entry& entry = table_[(pc >> 2) & (config_.table_entries - 1)];
  std::vector<std::uint64_t> prefetches;

  if (!entry.valid || entry.tag != pc) {
    entry = {.tag = pc, .last_addr = addr, .stride = 0, .confidence = 0,
             .valid = true};
    return prefetches;
  }

  const auto stride =
      static_cast<std::int64_t>(addr) -
      static_cast<std::int64_t>(entry.last_addr);
  if (stride != 0 && stride == entry.stride) {
    if (entry.confidence < config_.min_confidence) ++entry.confidence;
  } else {
    entry.stride = stride;
    entry.confidence = stride != 0 ? 1 : 0;
  }
  entry.last_addr = addr;

  if (entry.confidence >= config_.min_confidence) {
    prefetches.reserve(config_.degree);
    std::int64_t ahead = static_cast<std::int64_t>(addr);
    for (std::uint32_t d = 0; d < config_.degree; ++d) {
      ahead += entry.stride;
      if (ahead < 0) break;
      prefetches.push_back(static_cast<std::uint64_t>(ahead));
    }
    issued_ += prefetches.size();
  }
  return prefetches;
}

void StridePrefetcher::reset() {
  table_.assign(table_.size(), {});
  issued_ = 0;
}

}  // namespace hmd::hwsim
