// Stride prefetcher (reference-prediction-table style).
//
// Haswell prefetches aggressively; streaming workloads (virus scans, worm
// replication) would otherwise show inflated demand-miss counts. The
// prefetcher watches the demand-load stream, detects constant strides per
// "pc region", and issues prefetches `degree` lines ahead. It is optional
// on the MemoryHierarchy (off by default so existing analyses are
// unchanged; the miniature pipeline can enable it as a sensitivity knob).
#pragma once

#include <cstdint>
#include <vector>

namespace hmd::hwsim {

/// Prefetcher configuration.
struct PrefetcherConfig {
  std::uint32_t table_entries = 16;  ///< tracked streams (power of two)
  std::uint32_t degree = 2;          ///< lines fetched ahead on a match
  std::uint32_t min_confidence = 2;  ///< stride repeats before issuing
};

/// Per-stream stride detector. Feed it demand loads; it returns the
/// addresses to prefetch.
class StridePrefetcher {
 public:
  explicit StridePrefetcher(PrefetcherConfig config = {});

  /// Observe a demand load at `addr` from instruction `pc`; returns the
  /// prefetch addresses (possibly empty).
  std::vector<std::uint64_t> observe(std::uint64_t pc, std::uint64_t addr);

  void reset();

  std::uint64_t issued() const { return issued_; }

 private:
  struct Entry {
    std::uint64_t tag = 0;
    std::uint64_t last_addr = 0;
    std::int64_t stride = 0;
    std::uint32_t confidence = 0;
    bool valid = false;
  };

  PrefetcherConfig config_;
  std::vector<Entry> table_;
  std::uint64_t issued_ = 0;
};

}  // namespace hmd::hwsim
