#include "hwsim/branch_predictor.hpp"

#include <bit>

#include "util/error.hpp"

namespace hmd::hwsim {

BranchPredictor::BranchPredictor(BranchPredictorConfig config)
    : config_(config) {
  HMD_REQUIRE(config_.history_bits > 0 && config_.history_bits <= 24,
              "history_bits out of range");
  HMD_REQUIRE(config_.table_bits > 0 && config_.table_bits <= 24,
              "table_bits out of range");
  HMD_REQUIRE(std::has_single_bit(config_.btb_entries),
              "btb_entries must be a power of two");
  counters_.assign(std::size_t{1} << config_.table_bits, 1);  // weakly not-taken
  btb_.assign(config_.btb_entries, {});
  history_mask_ = (std::uint64_t{1} << config_.history_bits) - 1;
  table_mask_ = (std::uint64_t{1} << config_.table_bits) - 1;
}

bool BranchPredictor::predict_and_update(std::uint64_t pc, bool taken,
                                         std::uint64_t target) {
  ++branches_;
  const std::uint64_t index = ((pc >> 2) ^ history_) & table_mask_;
  std::uint8_t& ctr = counters_[index];
  const bool predicted_taken = ctr >= 2;

  bool correct = predicted_taken == taken;
  if (taken && predicted_taken) {
    // Direction correct; target must also come from the BTB.
    BtbEntry& entry = btb_[(pc >> 2) & (config_.btb_entries - 1)];
    if (!entry.valid || entry.pc != pc || entry.target != target)
      correct = false;
  }
  if (!correct) ++mispredictions_;

  // Update direction counter.
  if (taken) {
    if (ctr < 3) ++ctr;
  } else {
    if (ctr > 0) --ctr;
  }
  // Update BTB on taken branches.
  if (taken) {
    BtbEntry& entry = btb_[(pc >> 2) & (config_.btb_entries - 1)];
    entry = {.pc = pc, .target = target, .valid = true};
  }
  history_ = ((history_ << 1) | (taken ? 1u : 0u)) & history_mask_;
  return correct;
}

void BranchPredictor::reset() {
  counters_.assign(counters_.size(), 1);
  btb_.assign(btb_.size(), {});
  history_ = 0;
}

double BranchPredictor::misprediction_rate() const {
  return branches_ == 0
             ? 0.0
             : static_cast<double>(mispredictions_) /
                   static_cast<double>(branches_);
}

void BranchPredictor::reset_stats() {
  branches_ = 0;
  mispredictions_ = 0;
}

}  // namespace hmd::hwsim
