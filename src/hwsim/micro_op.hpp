// The abstract instruction the simulator executes.
//
// The workload layer lowers application behaviour into streams of MicroOps;
// the Core retires them through the memory hierarchy, branch predictor, and
// PMU. This is deliberately ISA-free: the paper's detector only observes
// event counts, so the op carries exactly what the event machinery needs.
#pragma once

#include <cstdint>

namespace hmd::hwsim {

/// Retired-instruction categories.
enum class OpKind : std::uint8_t {
  kAlu,     ///< integer/FP computation; no memory or control side effects
  kLoad,    ///< data load from `addr`
  kStore,   ///< data store to `addr`
  kBranch,  ///< control transfer; see `conditional`/`taken`/`target`
};

/// One retired instruction.
struct MicroOp {
  OpKind kind = OpKind::kAlu;
  std::uint64_t pc = 0;      ///< fetch address
  std::uint64_t addr = 0;    ///< data address (loads/stores)
  std::uint64_t target = 0;  ///< branch target (branches)
  bool conditional = false;  ///< direction-predicted branch (BPU load)
  bool taken = false;        ///< actual branch outcome
};

}  // namespace hmd::hwsim
