#include "hwsim/tlb.hpp"

#include "util/error.hpp"

namespace hmd::hwsim {

Tlb::Tlb(TlbConfig config) : config_(config) {
  HMD_REQUIRE(config_.entries > 0, "TLB needs at least one entry");
  HMD_REQUIRE(config_.page_bits >= 10 && config_.page_bits <= 30,
              "page size out of range");
  entries_.assign(config_.entries, {});
}

bool Tlb::access(std::uint64_t addr) {
  ++accesses_;
  ++lru_clock_;
  const std::uint64_t vpn = addr >> config_.page_bits;

  Entry* victim = &entries_.front();
  for (auto& e : entries_) {
    if (e.valid && e.vpn == vpn) {
      e.lru = lru_clock_;
      return true;
    }
    if (!e.valid) {
      victim = &e;
    } else if (victim->valid && e.lru < victim->lru) {
      victim = &e;
    }
  }

  ++misses_;
  *victim = {.vpn = vpn, .lru = lru_clock_, .valid = true};
  return false;
}

void Tlb::flush() {
  entries_.assign(entries_.size(), {});
  lru_clock_ = 0;
}

double Tlb::miss_rate() const {
  return accesses_ == 0
             ? 0.0
             : static_cast<double>(misses_) / static_cast<double>(accesses_);
}

void Tlb::reset_stats() {
  accesses_ = 0;
  misses_ = 0;
}

}  // namespace hmd::hwsim
