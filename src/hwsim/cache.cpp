#include "hwsim/cache.hpp"

#include <bit>

#include "util/error.hpp"

namespace hmd::hwsim {

std::uint64_t CacheConfig::num_sets() const {
  const std::uint64_t line_capacity = size_bytes / line_bytes;
  return line_capacity / ways;
}

void CacheConfig::validate() const {
  HMD_REQUIRE(size_bytes > 0, "cache size must be positive");
  HMD_REQUIRE(line_bytes > 0 && std::has_single_bit(line_bytes),
              "line size must be a power of two");
  HMD_REQUIRE(ways > 0, "associativity must be positive");
  HMD_REQUIRE(size_bytes % (static_cast<std::uint64_t>(line_bytes) * ways) == 0,
              "capacity must divide evenly into sets");
  HMD_REQUIRE(std::has_single_bit(num_sets()),
              "number of sets must be a power of two");
}

Cache::Cache(CacheConfig config) : config_(std::move(config)) {
  config_.validate();
  const std::uint64_t sets = config_.num_sets();
  set_mask_ = sets - 1;
  line_shift_ = static_cast<std::uint32_t>(std::countr_zero(
      static_cast<std::uint64_t>(config_.line_bytes)));
  lines_.resize(sets * config_.ways);
  if (config_.policy == ReplacementPolicy::kRoundRobin)
    rr_next_.assign(sets, 0);
}

Cache::Line* Cache::choose_victim(Line* set_lines, std::uint64_t set) {
  // Invalid ways are always preferred, regardless of policy.
  for (std::uint32_t w = 0; w < config_.ways; ++w)
    if (!set_lines[w].valid) return &set_lines[w];

  switch (config_.policy) {
    case ReplacementPolicy::kLru: {
      Line* victim = set_lines;
      for (std::uint32_t w = 1; w < config_.ways; ++w)
        if (set_lines[w].lru < victim->lru) victim = &set_lines[w];
      return victim;
    }
    case ReplacementPolicy::kRoundRobin: {
      const std::uint32_t w = rr_next_[set];
      rr_next_[set] = (w + 1) % config_.ways;
      return &set_lines[w];
    }
    case ReplacementPolicy::kRandom: {
      // xorshift64: deterministic, stateful per cache instance.
      rand_state_ ^= rand_state_ << 13;
      rand_state_ ^= rand_state_ >> 7;
      rand_state_ ^= rand_state_ << 17;
      return &set_lines[rand_state_ % config_.ways];
    }
  }
  return set_lines;
}

Cache::Line* Cache::set_begin(std::uint64_t set) {
  return &lines_[set * config_.ways];
}

CacheAccessResult Cache::access(std::uint64_t addr, bool is_store) {
  const std::uint64_t block = addr >> line_shift_;
  const std::uint64_t set = block & set_mask_;
  const std::uint64_t tag = block >> std::countr_zero(set_mask_ + 1);

  if (is_store)
    ++stores_;
  else
    ++loads_;

  Line* set_lines = set_begin(set);
  ++lru_clock_;
  // On LRU counter wrap, re-base the whole set ordering (rare).
  if (lru_clock_ == 0) {
    for (auto& l : lines_) l.lru = 0;
    lru_clock_ = 1;
  }

  for (std::uint32_t w = 0; w < config_.ways; ++w) {
    Line& line = set_lines[w];
    if (line.valid && line.tag == tag) {
      line.lru = lru_clock_;
      if (is_store) line.dirty = true;
      return {.hit = true, .writeback = false};
    }
  }

  if (is_store)
    ++store_misses_;
  else
    ++load_misses_;

  Line* victim = choose_victim(set_lines, set);
  const bool writeback = victim->valid && victim->dirty;
  victim->valid = true;
  victim->tag = tag;
  victim->lru = lru_clock_;
  victim->dirty = is_store;
  return {.hit = false, .writeback = writeback};
}

CacheAccessResult Cache::fill(std::uint64_t addr) {
  // Same lookup/replacement as access(), but without statistics and
  // without dirtying the line.
  const std::uint64_t block = addr >> line_shift_;
  const std::uint64_t set = block & set_mask_;
  const std::uint64_t tag = block >> std::countr_zero(set_mask_ + 1);

  Line* set_lines = set_begin(set);
  ++lru_clock_;
  if (lru_clock_ == 0) {
    for (auto& l : lines_) l.lru = 0;
    lru_clock_ = 1;
  }
  for (std::uint32_t w = 0; w < config_.ways; ++w) {
    Line& line = set_lines[w];
    if (line.valid && line.tag == tag) {
      line.lru = lru_clock_;
      return {.hit = true, .writeback = false};
    }
  }
  Line* victim = choose_victim(set_lines, set);
  const bool writeback = victim->valid && victim->dirty;
  *victim = {.tag = tag, .lru = lru_clock_, .valid = true, .dirty = false};
  return {.hit = false, .writeback = writeback};
}

void Cache::flush() {
  for (auto& l : lines_) l = Line{};
  lru_clock_ = 0;
}

double Cache::miss_rate() const {
  const std::uint64_t a = accesses();
  return a == 0 ? 0.0 : static_cast<double>(misses()) / static_cast<double>(a);
}

void Cache::reset_stats() {
  loads_ = stores_ = load_misses_ = store_misses_ = 0;
}

CacheConfig haswell_l1i() {
  return {.name = "L1I", .size_bytes = 32 * 1024, .ways = 8, .line_bytes = 64};
}

CacheConfig haswell_l1d() {
  return {.name = "L1D", .size_bytes = 32 * 1024, .ways = 8, .line_bytes = 64};
}

CacheConfig haswell_l2() {
  return {.name = "L2", .size_bytes = 256 * 1024, .ways = 8, .line_bytes = 64};
}

CacheConfig haswell_llc() {
  // i5-4590: 6 MiB shared LLC, 12-way. 12 ways keeps sets a power of two.
  return {.name = "LLC", .size_bytes = 6ull * 1024 * 1024, .ways = 12,
          .line_bytes = 64};
}

CacheConfig miniature_l1i() {
  return {.name = "L1I", .size_bytes = 16 * 1024, .ways = 8, .line_bytes = 64};
}

CacheConfig miniature_l1d() {
  return {.name = "L1D", .size_bytes = 16 * 1024, .ways = 8, .line_bytes = 64};
}

CacheConfig miniature_l2() {
  return {.name = "L2", .size_bytes = 64 * 1024, .ways = 8, .line_bytes = 64};
}

CacheConfig miniature_llc() {
  return {.name = "LLC", .size_bytes = 256 * 1024, .ways = 8,
          .line_bytes = 64};
}

}  // namespace hmd::hwsim
