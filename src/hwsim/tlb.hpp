// Fully-associative translation lookaside buffer with LRU replacement.
//
// Separate instances model the iTLB and dTLB; the PMU counts their load
// misses (iTLB-load-misses is one of the paper's 16 features).
#pragma once

#include <cstdint>
#include <vector>

namespace hmd::hwsim {

/// TLB geometry.
struct TlbConfig {
  std::uint32_t entries = 64;
  std::uint32_t page_bits = 12;  ///< 4 KiB pages
};

/// Fully-associative TLB, true LRU.
class Tlb {
 public:
  explicit Tlb(TlbConfig config = {});

  /// Translates `addr`; returns true on a TLB hit.
  bool access(std::uint64_t addr);

  void flush();

  std::uint64_t accesses() const { return accesses_; }
  std::uint64_t misses() const { return misses_; }
  double miss_rate() const;
  void reset_stats();

 private:
  struct Entry {
    std::uint64_t vpn = 0;
    std::uint64_t lru = 0;
    bool valid = false;
  };

  TlbConfig config_;
  std::vector<Entry> entries_;
  std::uint64_t lru_clock_ = 0;
  std::uint64_t accesses_ = 0;
  std::uint64_t misses_ = 0;
};

}  // namespace hmd::hwsim
