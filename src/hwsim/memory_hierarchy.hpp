// Three-level cache hierarchy with TLBs, as on the thesis's Haswell i5-4590:
// split 32 KiB L1I/L1D, unified 256 KiB L2, shared 6 MiB LLC, and
// fully-associative i/d TLBs. Misses propagate level to level; dirty
// evictions generate write-back traffic that ultimately reaches the memory
// node (the paper's node-stores event).
#pragma once

#include <cstdint>

#include <optional>

#include "hwsim/cache.hpp"
#include "hwsim/prefetcher.hpp"
#include "hwsim/tlb.hpp"

namespace hmd::hwsim {

/// What happened on one instruction fetch or data access, expressed as the
/// counter increments the PMU needs plus a latency charge for the core.
struct AccessOutcome {
  bool l1_miss = false;
  bool l2_miss = false;
  bool llc_accessed = false;  ///< access reached the LLC
  bool llc_miss = false;      ///< ... and missed there (memory access)
  bool tlb_miss = false;
  std::uint32_t node_stores = 0;  ///< dirty lines written back to DRAM
  std::uint32_t prefetch_fills = 0;  ///< prefetch lines read from DRAM
  std::uint32_t latency_cycles = 0;
};

/// Latency model (cycles), roughly Haswell-shaped.
struct HierarchyLatencies {
  std::uint32_t l1_hit = 1;
  std::uint32_t l2_hit = 12;
  std::uint32_t llc_hit = 36;
  std::uint32_t memory = 180;
  std::uint32_t tlb_miss_walk = 30;
};

/// The full hierarchy. Not thread-safe; one instance per simulated core.
class MemoryHierarchy {
 public:
  MemoryHierarchy();
  MemoryHierarchy(CacheConfig l1i, CacheConfig l1d, CacheConfig l2,
                  CacheConfig llc, TlbConfig itlb, TlbConfig dtlb,
                  HierarchyLatencies latencies = {});

  /// Scaled-down geometry matched to miniaturized sampling windows (see
  /// miniature_llc() in cache.hpp). Used by the HPC collection pipeline.
  static MemoryHierarchy miniature();

  /// Instruction fetch at `pc`.
  AccessOutcome fetch(std::uint64_t pc);
  /// Data load at `addr` (`pc` trains the optional stride prefetcher).
  AccessOutcome load(std::uint64_t addr, std::uint64_t pc = 0);
  /// Data store at `addr`.
  AccessOutcome store(std::uint64_t addr);

  /// Drop all cached state (sandbox isolation between runs).
  void flush();

  /// Enable the stride prefetcher on the demand-load path (off by
  /// default). Prefetch fills install into L2/LLC without perturbing
  /// demand statistics; DRAM reads they cause are reported via
  /// AccessOutcome::prefetch_fills.
  void enable_prefetcher(PrefetcherConfig config = {});
  bool prefetcher_enabled() const { return prefetcher_.has_value(); }
  const StridePrefetcher* prefetcher() const {
    return prefetcher_.has_value() ? &*prefetcher_ : nullptr;
  }

  const Cache& l1i() const { return l1i_; }
  const Cache& l1d() const { return l1d_; }
  const Cache& l2() const { return l2_; }
  const Cache& llc() const { return llc_; }
  const Tlb& itlb() const { return itlb_; }
  const Tlb& dtlb() const { return dtlb_; }

 private:
  Cache l1i_;
  Cache l1d_;
  Cache l2_;
  Cache llc_;
  Tlb itlb_;
  Tlb dtlb_;
  HierarchyLatencies latencies_;
  std::optional<StridePrefetcher> prefetcher_;

  AccessOutcome through_shared_levels(std::uint64_t addr, bool is_store,
                                      bool l1_missed, bool tlb_missed);
};

}  // namespace hmd::hwsim
