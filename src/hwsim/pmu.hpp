// Performance Monitoring Unit model.
//
// Mirrors the Haswell PMU as the thesis uses it: a small file of
// programmable counter registers (8 on the i5-4590) onto which a larger set
// of architectural events must be multiplexed. The Pmu additionally keeps
// free-running "ground truth" counts for every event, which the tests use to
// quantify multiplexing error and which an idealized collector can read
// directly.
#pragma once

#include <array>
#include <cstdint>
#include <optional>

#include "hwsim/events.hpp"

namespace hmd::hwsim {

/// Snapshot returned when reading a programmable counter: the raw count plus
/// the time the event was actually scheduled on the register, so collectors
/// can scale multiplexed counts the way perf(1) does.
struct CounterReading {
  std::uint64_t value = 0;
  std::uint64_t time_running_ns = 0;  ///< time this event held the register
};

/// The PMU: ground-truth event accumulation plus a programmable register
/// file with perf-style time accounting.
class Pmu {
 public:
  /// Number of general-purpose programmable counters (Haswell: 8 with
  /// hyper-threading off, as on the i5-4590).
  static constexpr std::size_t kNumCounters = 8;

  /// Record `n` occurrences of `e`: updates ground truth and any active
  /// register currently programmed with `e`.
  void add(HwEvent e, std::uint64_t n = 1);

  /// Advance wall-clock time; accrues time_running for active registers.
  void advance_time(std::uint64_t ns);

  /// Program register `slot` to count `e`, clearing its value and time.
  void program(std::size_t slot, HwEvent e);
  /// Stop counting on `slot`; the value/time remain readable.
  void stop(std::size_t slot);
  /// True if `slot` currently has an event programmed and counting.
  bool is_active(std::size_t slot) const;
  /// Event programmed on `slot`, if any.
  std::optional<HwEvent> programmed_event(std::size_t slot) const;

  /// Read a programmable counter.
  CounterReading read(std::size_t slot) const;

  /// Ground-truth count of `e` since the last reset (free-running).
  std::uint64_t true_count(HwEvent e) const;

  /// Clear everything: ground truth, registers, time.
  void reset();

 private:
  struct Register {
    HwEvent event = HwEvent::kCount;
    std::uint64_t value = 0;
    std::uint64_t time_running_ns = 0;
    bool active = false;
  };

  std::array<std::uint64_t, kNumEvents> true_counts_{};
  std::array<Register, kNumCounters> registers_{};
};

}  // namespace hmd::hwsim
