// End-to-end pipeline configuration: database composition, sandbox, HPC
// collection, and evaluation protocol — the knobs of the thesis's
// experimental setup in one place.
#pragma once

#include <cstdint>
#include <string>

#include "perf/collector.hpp"
#include "workload/evasion.hpp"
#include "workload/sample_database.hpp"
#include "workload/sandbox.hpp"

namespace hmd::core {

struct PipelineConfig {
  /// Sample database composition (Table 1 by default, possibly scaled).
  workload::DatabaseComposition composition =
      workload::DatabaseComposition::paper_table1();
  /// Master seed: the entire pipeline is deterministic in it.
  std::uint64_t seed = 2018;
  /// HPC collection (10 ms windows, 16 events, multiplexed 8-register PMU).
  perf::CollectorConfig collector;
  /// Container isolation / residual host noise.
  workload::SandboxConfig sandbox;
  /// Train share of the 70/30 split the thesis uses.
  double train_fraction = 0.7;
  /// Per-class adversarial perturbations applied to the generated samples
  /// (empty = clean pipeline — the default; an empty plan leaves the
  /// dataset and its cache key byte-identical to pre-evasion builds).
  workload::EvasionPlan evasion;

  /// Paper-scale configuration: full Table 1 database, 16 windows per
  /// sample → ~49k dataset rows (the thesis reports "around 50,000").
  static PipelineConfig paper();
  /// Reduced-scale configuration for tests and quick runs: `scale` shrinks
  /// the database, `windows` the rows per sample.
  static PipelineConfig quick(double scale = 0.05, std::size_t windows = 6);

  /// Stable fingerprint of everything that affects the generated dataset
  /// (used as a cache key by the benches).
  std::string cache_key() const;
};

}  // namespace hmd::core
