#include "core/detector.hpp"

#include <algorithm>

#include "hw/lowering.hpp"
#include "ml/instrumented.hpp"
#include "ml/registry.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"
#include "util/trace.hpp"

namespace hmd::core {

TrainedModel train_and_evaluate(const std::string& scheme,
                                const ml::Dataset& train,
                                const ml::Dataset& test) {
  std::unique_ptr<ml::Classifier> model =
      ml::instrument(ml::make_classifier(scheme));
  TraceSpan timer("");
  model->train(train);
  const double train_seconds = timer.elapsed_seconds();
  ml::EvaluationReport evaluation = ml::evaluate(*model, test);
  evaluation.train_seconds = train_seconds;
  return {std::move(model), std::move(evaluation)};
}

BinaryStudy::BinaryStudy(ml::Dataset train, ml::Dataset test)
    : train_(std::move(train)), test_(std::move(test)) {
  HMD_REQUIRE(train_.num_classes() == 2 && test_.num_classes() == 2,
              "BinaryStudy expects binary datasets");
  HMD_REQUIRE(train_.num_features() == test_.num_features(),
              "BinaryStudy: train/test schema mismatch");
}

std::vector<BinaryStudyRow> BinaryStudy::run(const std::vector<std::string>& schemes,
                                             const FeatureSet* features,
                                             ThreadPool* pool) const {
  const bool project = features != nullptr && !features->indices.empty();
  const ml::Dataset train =
      project ? train_.project(features->indices) : train_;
  const ml::Dataset test = project ? test_.project(features->indices) : test_;

  return parallel_map(pool, schemes, [&](const std::string& scheme) {
    HMD_TRACE_SPAN("study/" + scheme + "/" +
                   std::to_string(train.num_features()) + "f");
    TrainedModel tm = train_and_evaluate(scheme, train, test);
    BinaryStudyRow row;
    row.scheme = scheme;
    row.num_features = train.num_features();
    row.report = std::move(tm.evaluation);
    row.synthesis =
        hw::synthesize_classifier(*tm.model, train.num_features());
    return row;
  });
}

void PcaAssistedOvr::train(const ml::Dataset& train) {
  HMD_REQUIRE(train.num_classes() == workload::kNumAppClasses,
              "PcaAssistedOvr expects the 6-class dataset");
  const std::size_t k = train.num_classes();
  class_names_ = train.class_attribute().values();
  detectors_.clear();
  features_.clear();
  detectors_.reserve(k);
  features_.reserve(k);

  const FeatureReducer reducer(train, config_.variance_cutoff);
  for (std::size_t c = 0; c < k; ++c) {
    FeatureSet fs =
        config_.fixed_features.has_value()
            ? *config_.fixed_features
            : reducer.custom_features(static_cast<workload::AppClass>(c),
                                      config_.features_per_class);
    // One-vs-rest binary problem on the class's feature subset, with the
    // negative side subsampled so the detector's probabilities stay
    // competitive for rare classes.
    ml::Dataset binary =
        train.relabel_binary({c}, "rest", class_names_[c]);
    ml::Dataset projected = binary.project(fs.indices);
    if (config_.max_negative_ratio > 0.0) {
      const auto counts = projected.class_counts();
      const auto max_neg = static_cast<std::size_t>(
          config_.max_negative_ratio * static_cast<double>(counts[1]));
      if (counts[0] > max_neg && counts[1] > 0) {
        Rng rng(config_.subsample_seed ^ (c * 0x9e3779b97f4a7c15ull));
        ml::Dataset balanced(
            std::vector<ml::Attribute>(projected.attributes()),
            projected.relation());
        const double keep = static_cast<double>(max_neg) /
                            static_cast<double>(counts[0]);
        for (std::size_t i = 0; i < projected.num_instances(); ++i) {
          if (projected.class_of(i) == 1 || rng.bernoulli(keep))
            balanced.add_row(projected.row(i));
        }
        projected = std::move(balanced);
      }
    }
    auto detector = ml::make_classifier(config_.scheme);
    detector->train(projected);
    detectors_.push_back(std::move(detector));
    features_.push_back(std::move(fs));
  }
}

std::size_t PcaAssistedOvr::predict(std::span<const double> features) const {
  HMD_REQUIRE(!detectors_.empty(), "PcaAssistedOvr: predict before train");
  std::size_t best = 0;
  double best_score = -1.0;
  std::vector<double> projected;
  for (std::size_t c = 0; c < detectors_.size(); ++c) {
    projected.clear();
    for (std::size_t idx : features_[c].indices) {
      HMD_REQUIRE(idx < features.size(),
                  "PcaAssistedOvr: feature vector too short");
      projected.push_back(features[idx]);
    }
    // Probability of the positive (class) label, index 1.
    const std::vector<double> dist = detectors_[c]->distribution(projected);
    HMD_ASSERT(dist.size() == 2);
    if (dist[1] > best_score) {
      best_score = dist[1];
      best = c;
    }
  }
  return best;
}

ml::EvaluationReport PcaAssistedOvr::evaluate(const ml::Dataset& test) const {
  HMD_REQUIRE(test.num_classes() == class_names_.size(),
              "PcaAssistedOvr: test class mismatch");
  ml::EvaluationReport report;
  report.scheme = "PcaOvr/" + config_.scheme;
  report.result = ml::EvaluationResult(test.num_classes(), class_names_);
  TraceSpan timer("");
  for (std::size_t i = 0; i < test.num_instances(); ++i)
    report.record(test.class_of(i), predict(test.features_of(i)));
  report.predict_seconds = timer.elapsed_seconds();
  return report;
}

}  // namespace hmd::core
