#include "core/online_detector.hpp"

#include <algorithm>

#include "util/error.hpp"
#include "util/metrics.hpp"
#include "util/trace.hpp"

namespace hmd::core {

namespace {

/// Deployment-side instruments, resolved once per process.
struct DetectorInstruments {
  Counter& windows_scored;
  Counter& windows_flagged;
  Counter& alarms;
  Histogram& alarm_latency_windows;
  Histogram& batch_us;

  static DetectorInstruments& get() {
    static DetectorInstruments instance{
        metrics().counter("online_detector.windows_scored"),
        metrics().counter("online_detector.windows_flagged"),
        metrics().counter("online_detector.alarms"),
        metrics().histogram("online_detector.alarm_latency_windows",
                            default_count_buckets()),
        metrics().histogram("online_detector.batch_us",
                            default_latency_buckets_us())};
    return instance;
  }
};

}  // namespace

Result<void> OnlineDetectorConfig::try_validate() const {
  if (!(flag_threshold > 0.0 && flag_threshold < 1.0))
    return ErrorInfo(
        ErrCode::kPrecondition,
        "OnlineDetectorConfig.flag_threshold: must be in (0, 1)");
  if (confirm_windows < 1)
    return ErrorInfo(ErrCode::kPrecondition,
                     "OnlineDetectorConfig.confirm_windows: must be >= 1");
  if (score_chunk_windows < 1)
    return ErrorInfo(
        ErrCode::kPrecondition,
        "OnlineDetectorConfig.score_chunk_windows: must be >= 1");
  return {};
}

OnlineDetector::OnlineDetector(const ml::Classifier& model,
                               OnlineDetectorConfig config)
    : model_(model), config_(config) {
  config_.validate();
}

void OnlineDetector::advance(Verdict& verdict) {
  DetectorInstruments& instruments = DetectorInstruments::get();
  verdict.flagged = verdict.probability > config_.flag_threshold;
  instruments.windows_scored.add();
  score_stats_.add(verdict.probability);
  if (verdict.flagged) {
    ++flagged_;
    instruments.windows_flagged.add();
  } else {
    benign_score_stats_.add(verdict.probability);
  }
  streak_ = verdict.flagged ? streak_ + 1 : 0;
  if (!alarmed_ && streak_ >= config_.confirm_windows) {
    alarmed_ = true;
    alarm_window_ = windows_;
    instruments.alarms.add();
    instruments.alarm_latency_windows.record(
        static_cast<double>(windows_ + 1));
  }
  verdict.alarm = alarmed_;
  ++windows_;
}

OnlineDetector::Verdict OnlineDetector::observe(
    std::span<const double> counts) {
  HMD_REQUIRE(model_.num_classes() == 2,
              "OnlineDetector needs a binary (benign/malware) model");
  return apply_probability(model_.distribution(counts)[1]);
}

OnlineDetector::Verdict OnlineDetector::apply_probability(
    double probability) {
  Verdict verdict;
  verdict.probability = probability;
  advance(verdict);
  return verdict;
}

std::vector<OnlineDetector::Verdict> OnlineDetector::score_windows(
    std::span<const double> flat, std::size_t window_size, ThreadPool* pool) {
  HMD_REQUIRE(model_.num_classes() == 2,
              "OnlineDetector needs a binary (benign/malware) model");
  HMD_REQUIRE(window_size > 0, "score_windows: window_size must be positive");
  HMD_REQUIRE(flat.size() % window_size == 0,
              "score_windows: input not a whole number of windows");
  const std::size_t num_windows = flat.size() / window_size;
  HMD_TRACE_SPAN("online_detector/score_windows");

  // Stage 1 (parallel): per-window malware probabilities, computed chunk
  // by chunk through distribution_batch so schemes with buffer-reusing
  // overrides avoid a heap allocation per window. Each chunk writes a
  // disjoint slice; each slot is written once.
  std::vector<double> probabilities(num_windows);
  const std::size_t chunk = config_.score_chunk_windows;
  const std::size_t num_chunks = (num_windows + chunk - 1) / chunk;
  DetectorInstruments& instruments = DetectorInstruments::get();
  parallel_for(pool, num_chunks, [&](std::size_t c) {
    const std::size_t begin = c * chunk;
    const std::size_t count = std::min(chunk, num_windows - begin);
    TraceSpan timer("");
    std::vector<double> dist(count * 2);
    model_.distribution_batch(
        flat.subspan(begin * window_size, count * window_size), window_size,
        dist);
    for (std::size_t w = 0; w < count; ++w)
      probabilities[begin + w] = dist[w * 2 + 1];
    instruments.batch_us.record(timer.elapsed_seconds() * 1e6);
  });

  // Stage 2 (serial): the order-dependent streak/alarm state machine,
  // mirroring observe() exactly.
  std::vector<Verdict> verdicts;
  verdicts.reserve(num_windows);
  for (std::size_t w = 0; w < num_windows; ++w)
    verdicts.push_back(apply_probability(probabilities[w]));
  return verdicts;
}

void OnlineDetector::restore(const State& state) {
  HMD_REQUIRE(state.flagged <= state.windows,
              "OnlineDetector::restore: flagged exceeds windows");
  HMD_REQUIRE(state.streak <= state.flagged,
              "OnlineDetector::restore: streak exceeds flagged");
  HMD_REQUIRE(state.alarmed == (state.alarm_window != kNoAlarm),
              "OnlineDetector::restore: alarmed and alarm_window disagree");
  HMD_REQUIRE(!state.alarmed || state.alarm_window < state.windows,
              "OnlineDetector::restore: alarm_window beyond windows seen");
  windows_ = state.windows;
  flagged_ = state.flagged;
  streak_ = state.streak;
  alarmed_ = state.alarmed;
  alarm_window_ = state.alarm_window;
}

void OnlineDetector::reset() {
  windows_ = 0;
  flagged_ = 0;
  streak_ = 0;
  alarmed_ = false;
  alarm_window_ = kNoAlarm;
  score_stats_.clear();
  benign_score_stats_.clear();
}

}  // namespace hmd::core
