#include "core/online_detector.hpp"

#include "util/error.hpp"

namespace hmd::core {

OnlineDetector::OnlineDetector(const ml::Classifier& model,
                               OnlineDetectorConfig config)
    : model_(model), config_(config) {
  HMD_REQUIRE(config_.flag_threshold > 0.0 && config_.flag_threshold < 1.0,
              "flag_threshold must be in (0, 1)");
  HMD_REQUIRE(config_.confirm_windows >= 1,
              "confirm_windows must be at least 1");
}

OnlineDetector::Verdict OnlineDetector::observe(
    std::span<const double> counts) {
  HMD_REQUIRE(model_.num_classes() == 2,
              "OnlineDetector needs a binary (benign/malware) model");
  Verdict verdict;
  verdict.probability = model_.distribution(counts)[1];
  verdict.flagged = verdict.probability > config_.flag_threshold;

  streak_ = verdict.flagged ? streak_ + 1 : 0;
  if (!alarmed_ && streak_ >= config_.confirm_windows) {
    alarmed_ = true;
    alarm_window_ = windows_;
  }
  verdict.alarm = alarmed_;
  ++windows_;
  return verdict;
}

void OnlineDetector::reset() {
  windows_ = 0;
  streak_ = 0;
  alarmed_ = false;
  alarm_window_ = kNoAlarm;
}

}  // namespace hmd::core
