#include "core/online_detector.hpp"

#include "util/error.hpp"

namespace hmd::core {

OnlineDetector::OnlineDetector(const ml::Classifier& model,
                               OnlineDetectorConfig config)
    : model_(model), config_(config) {
  HMD_REQUIRE(config_.flag_threshold > 0.0 && config_.flag_threshold < 1.0,
              "flag_threshold must be in (0, 1)");
  HMD_REQUIRE(config_.confirm_windows >= 1,
              "confirm_windows must be at least 1");
}

OnlineDetector::Verdict OnlineDetector::observe(
    std::span<const double> counts) {
  HMD_REQUIRE(model_.num_classes() == 2,
              "OnlineDetector needs a binary (benign/malware) model");
  Verdict verdict;
  verdict.probability = model_.distribution(counts)[1];
  verdict.flagged = verdict.probability > config_.flag_threshold;

  streak_ = verdict.flagged ? streak_ + 1 : 0;
  if (!alarmed_ && streak_ >= config_.confirm_windows) {
    alarmed_ = true;
    alarm_window_ = windows_;
  }
  verdict.alarm = alarmed_;
  ++windows_;
  return verdict;
}

std::vector<OnlineDetector::Verdict> OnlineDetector::score_windows(
    std::span<const double> flat, std::size_t window_size, ThreadPool* pool) {
  HMD_REQUIRE(model_.num_classes() == 2,
              "OnlineDetector needs a binary (benign/malware) model");
  HMD_REQUIRE(window_size > 0, "score_windows: window_size must be positive");
  HMD_REQUIRE(flat.size() % window_size == 0,
              "score_windows: input not a whole number of windows");
  const std::size_t num_windows = flat.size() / window_size;

  // Stage 1 (parallel): per-window malware probabilities. Classifier
  // prediction is const and thread-compatible; each slot is written once.
  std::vector<double> probabilities(num_windows);
  parallel_for(pool, num_windows, [&](std::size_t w) {
    probabilities[w] =
        model_.distribution(flat.subspan(w * window_size, window_size))[1];
  });

  // Stage 2 (serial): the order-dependent streak/alarm state machine,
  // mirroring observe() exactly.
  std::vector<Verdict> verdicts;
  verdicts.reserve(num_windows);
  for (std::size_t w = 0; w < num_windows; ++w) {
    Verdict verdict;
    verdict.probability = probabilities[w];
    verdict.flagged = verdict.probability > config_.flag_threshold;
    streak_ = verdict.flagged ? streak_ + 1 : 0;
    if (!alarmed_ && streak_ >= config_.confirm_windows) {
      alarmed_ = true;
      alarm_window_ = windows_;
    }
    verdict.alarm = alarmed_;
    ++windows_;
    verdicts.push_back(verdict);
  }
  return verdicts;
}

void OnlineDetector::reset() {
  windows_ = 0;
  streak_ = 0;
  alarmed_ = false;
  alarm_window_ = kNoAlarm;
}

}  // namespace hmd::core
