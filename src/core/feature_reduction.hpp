// PCA-assisted feature reduction — the thesis's contribution.
//
// The thesis notes its procedure "is actually not pure PCA but a
// combination of PCA and Clustering technique". The realization here: PCA
// is fitted once on the HPC data; for each class, the retained components
// are weighted by how well they separate that class's cluster from the
// rest (Fisher separation of the projections — the quantity the thesis's
// PCA scatter plots visualize), and the original attributes are ranked by
// walking the separating components round-robin (one attribute per
// orthogonal separating direction; summed loadings would just return k
// proxies of the dominant memory cluster). The top-k become the class's
// "custom" feature set (Table 2). Features that rank highly for every
// class are the "common" features (Table 2's first four rows). The binary
// study (Fig. 13) uses a round-robin union of the per-family rankings.
#pragma once

#include <map>
#include <optional>
#include <string>
#include <vector>

#include "ml/dataset.hpp"
#include "ml/pca.hpp"
#include "workload/app_class.hpp"

namespace hmd::core {

/// A named feature subset (indices into the full 16-feature dataset).
struct FeatureSet {
  std::vector<std::size_t> indices;
  std::vector<std::string> names;
};

/// Table 2 equivalent: common features + per-class custom sets.
struct ReducedFeatureTable {
  FeatureSet common;
  std::map<workload::AppClass, FeatureSet> custom;  ///< per malware class
};

class FeatureReducer {
 public:
  /// `multiclass` must be the 6-class dataset (benign class 0).
  /// `variance_cutoff` is WEKA's -R 0.95.
  explicit FeatureReducer(const ml::Dataset& multiclass,
                          double variance_cutoff = 0.95);

  /// PCA ranking of all features for one class (class-vs-benign dataset;
  /// for kBenign, benign-vs-all).
  std::vector<ml::RankedFeature> rank_for_class(workload::AppClass c) const;

  /// Top-k custom feature set for a class.
  FeatureSet custom_features(workload::AppClass c, std::size_t k = 8) const;

  /// Features in every malware class's top-`per_class_k`, ordered by mean
  /// rank, truncated to `k` (Table 2's 4 common features).
  FeatureSet common_features(std::size_t k = 4,
                             std::size_t per_class_k = 8) const;

  /// Top-k of a PCA over the whole binary (benign-vs-malware) dataset —
  /// the 8- and 4-feature sets of the Fig. 13-16 binary study.
  FeatureSet binary_top_features(std::size_t k) const;

  /// Assemble the full Table 2 analogue.
  ReducedFeatureTable reduced_table(std::size_t common_k = 4,
                                    std::size_t custom_k = 8) const;

 private:
  const ml::Dataset& data_;
  double variance_cutoff_;
  mutable std::optional<ml::PrincipalComponents> pca_;  ///< lazy, cached

  const ml::PrincipalComponents& fitted_pca() const;
  FeatureSet to_feature_set(std::vector<ml::RankedFeature> ranked,
                            std::size_t k) const;
};

}  // namespace hmd::core
