// DatasetBuilder: the full data-collection pipeline of Fig. 4/5 of the
// thesis — sample database → sandboxed execution → perf-style HPC
// collection → labelled dataset ("16 Performance Counters + class").
#pragma once

#include <functional>
#include <string>

#include "core/pipeline_config.hpp"
#include "ml/dataset.hpp"
#include "perf/perf_log.hpp"

namespace hmd {
class ThreadPool;
}

namespace hmd::core {

class DatasetBuilder {
 public:
  explicit DatasetBuilder(PipelineConfig config);

  const PipelineConfig& config() const { return config_; }

  /// Generates the labelled database (Table 1 composition).
  workload::SampleDatabase build_database() const;

  /// Runs every sample and returns the 6-class dataset: one row per 10 ms
  /// window, 16 features + class. Deterministic in config().seed.
  /// `progress`, when set, is called with (done, total) sample counts.
  ///
  /// Collection fans the per-sample simulations across `pool` (nullptr =
  /// serial). Every sample already carries its own splitmix64-derived
  /// sub-seed (SampleDatabase::generate), so runs are independent of
  /// scheduling and the resulting dataset — and its CSV — is bit-identical
  /// to the serial build at any thread count (regression-tested). Under a
  /// pool, `progress` is invoked in completion order (done still counts
  /// monotonically 1..total) and must therefore be thread-compatible; the
  /// builder serializes the calls.
  ml::Dataset build_multiclass_dataset(
      const std::function<void(std::size_t, std::size_t)>& progress = {},
      ThreadPool* pool = nullptr) const;

  /// Binary view of a multiclass dataset: {benign, malware}.
  static ml::Dataset to_binary(const ml::Dataset& multiclass);

  /// Per-run perf text logs for the first `max_runs` samples — the thesis's
  /// intermediate artifact (text files later combined into a CSV).
  std::vector<perf::RunLog> collect_run_logs(std::size_t max_runs) const;

  /// Cache helpers: write/read the multiclass dataset as CSV.
  static void save_dataset_csv(const ml::Dataset& data,
                               const std::string& path);
  static ml::Dataset load_dataset_csv(const std::string& path);
  /// Load from `path` if present, else build (collection fanned across
  /// `pool`, see build_multiclass_dataset) and save there. Empty path
  /// always builds.
  ml::Dataset load_or_build(const std::string& path,
                            ThreadPool* pool = nullptr) const;

 private:
  PipelineConfig config_;

  std::vector<perf::HpcSample> run_sample(
      const workload::SampleRecord& rec) const;
};

}  // namespace hmd::core
