#include "core/feature_reduction.hpp"

#include <algorithm>
#include <cmath>
#include <map>
#include <set>

#include "util/error.hpp"
#include "util/stats.hpp"

namespace hmd::core {

using workload::AppClass;

FeatureReducer::FeatureReducer(const ml::Dataset& multiclass,
                               double variance_cutoff)
    : data_(multiclass), variance_cutoff_(variance_cutoff) {
  HMD_REQUIRE(multiclass.num_classes() == workload::kNumAppClasses,
              "FeatureReducer expects the 6-class dataset");
}

const ml::PrincipalComponents& FeatureReducer::fitted_pca() const {
  if (!pca_.has_value()) {
    pca_.emplace(variance_cutoff_);
    pca_->fit(data_);
  }
  return *pca_;
}

std::vector<ml::RankedFeature> FeatureReducer::rank_for_class(
    AppClass c) const {
  // PCA is fitted once on the full dataset; the per-class "clustering"
  // step weights each retained component by the Fisher separation of the
  // class's windows against EVERYTHING ELSE along it. (Class-vs-benign
  // weighting picks features that distinguish the class from benign but
  // not from its sibling families, which is what the one-vs-rest
  // detectors actually need — measured as a multi-point accuracy loss.)
  const ml::PrincipalComponents& pca = fitted_pca();
  const auto pos_class = static_cast<std::size_t>(c);
  std::vector<RunningStats> pos(pca.num_components());
  std::vector<RunningStats> neg(pca.num_components());
  for (std::size_t i = 0; i < data_.num_instances(); ++i) {
    const std::vector<double> pc = pca.transform(data_.features_of(i));
    const bool is_pos = data_.class_of(i) == pos_class;
    for (std::size_t j = 0; j < pc.size(); ++j)
      (is_pos ? pos[j] : neg[j]).add(pc[j]);
  }

  // Components ordered by how well they separate the clusters.
  std::vector<std::pair<double, std::size_t>> components;  // (sep, comp)
  components.reserve(pca.num_components());
  for (std::size_t j = 0; j < pca.num_components(); ++j) {
    const double pooled_var =
        0.5 * (pos[j].variance() + neg[j].variance());
    const double sep =
        pooled_var > 0.0
            ? std::abs(pos[j].mean() - neg[j].mean()) / std::sqrt(pooled_var)
            : 0.0;
    components.emplace_back(sep, j);
  }
  std::stable_sort(components.rbegin(), components.rend());

  // HPC counters are strongly correlated, so ranking attributes by summed
  // loadings just returns k proxies of the single biggest direction.
  // Instead, walk the separating components round-robin and let each one
  // contribute its highest-|loading| attribute not yet chosen — one
  // attribute per orthogonal separating direction, then the second-best
  // per direction, and so on. (This is the "PCA + clustering" selection.)
  const std::size_t d = data_.num_features();
  std::vector<std::vector<std::size_t>> per_component(components.size());
  for (std::size_t ci = 0; ci < components.size(); ++ci) {
    std::vector<std::pair<double, std::size_t>> by_loading;  // (|l|, feat)
    by_loading.reserve(d);
    for (std::size_t f = 0; f < d; ++f)
      by_loading.emplace_back(
          std::abs(pca.loading(f, components[ci].second)), f);
    std::stable_sort(by_loading.rbegin(), by_loading.rend());
    per_component[ci].reserve(d);
    for (const auto& [l, f] : by_loading) per_component[ci].push_back(f);
  }

  std::vector<ml::RankedFeature> ranked;
  ranked.reserve(d);
  std::set<std::size_t> seen;
  for (std::size_t depth = 0; ranked.size() < d && depth < d; ++depth) {
    for (std::size_t ci = 0; ci < components.size() && ranked.size() < d;
         ++ci) {
      const std::size_t f = per_component[ci][depth];
      if (!seen.insert(f).second) continue;
      ranked.push_back(
          {.index = f,
           .name = data_.attribute(f).name(),
           .score = components[ci].first *
                    std::abs(pca.loading(f, components[ci].second))});
    }
  }
  for (std::size_t f = 0; f < d; ++f)  // numerical leftovers, if any
    if (seen.insert(f).second)
      ranked.push_back({.index = f, .name = data_.attribute(f).name(),
                        .score = 0.0});
  return ranked;
}

FeatureSet FeatureReducer::to_feature_set(
    std::vector<ml::RankedFeature> ranked, std::size_t k) const {
  if (ranked.size() > k) ranked.resize(k);
  FeatureSet set;
  for (const ml::RankedFeature& f : ranked) {
    set.indices.push_back(f.index);
    set.names.push_back(f.name);
  }
  return set;
}

FeatureSet FeatureReducer::custom_features(AppClass c, std::size_t k) const {
  return to_feature_set(rank_for_class(c), k);
}

FeatureSet FeatureReducer::common_features(std::size_t k,
                                           std::size_t per_class_k) const {
  // Mean rank of each feature across the malware classes' PCA rankings.
  // A feature outside a class's top-per_class_k counts as ranked at
  // per_class_k (so a feature must rank highly for essentially every class
  // to surface — these are Table 2's "common" features).
  std::map<std::size_t, double> rank_sum;  // idx → summed rank
  for (AppClass c : workload::malware_classes()) {
    const auto ranked = rank_for_class(c);
    for (std::size_t pos = 0; pos < ranked.size(); ++pos) {
      const double effective =
          static_cast<double>(std::min(pos, per_class_k));
      rank_sum[ranked[pos].index] += effective;
    }
  }
  std::vector<std::pair<double, std::size_t>> common;  // (mean rank, idx)
  for (const auto& [idx, sum] : rank_sum) {
    common.emplace_back(
        sum / static_cast<double>(workload::kNumMalwareClasses), idx);
  }
  std::sort(common.begin(), common.end());
  if (common.size() > k) common.resize(k);

  FeatureSet set;
  for (const auto& [rank, idx] : common) {
    set.indices.push_back(idx);
    set.names.push_back(data_.attribute(idx).name());
  }
  return set;
}

FeatureSet FeatureReducer::binary_top_features(std::size_t k) const {
  // "Malware" is a union of families whose benign-separation lives along
  // different counters (backdoor: memory quiet; rootkit: frontend; worm:
  // DRAM traffic). Round-robin over the per-family rankings so the reduced
  // set covers every family's strongest separators.
  std::vector<std::vector<ml::RankedFeature>> rankings;
  rankings.reserve(workload::kNumMalwareClasses);
  for (AppClass c : workload::malware_classes())
    rankings.push_back(rank_for_class(c));

  FeatureSet fs;
  std::set<std::size_t> seen;
  for (std::size_t pos = 0; fs.indices.size() < k && pos < data_.num_features();
       ++pos) {
    for (const auto& ranking : rankings) {
      if (fs.indices.size() >= k) break;
      const ml::RankedFeature& f = ranking[pos];
      if (seen.insert(f.index).second) {
        fs.indices.push_back(f.index);
        fs.names.push_back(f.name);
      }
    }
  }
  return fs;
}

ReducedFeatureTable FeatureReducer::reduced_table(std::size_t common_k,
                                                  std::size_t custom_k) const {
  ReducedFeatureTable table;
  table.common = common_features(common_k, custom_k);
  for (AppClass c : workload::malware_classes())
    table.custom[c] = custom_features(c, custom_k);
  return table;
}

}  // namespace hmd::core
