// Deployment bundles: everything a runtime monitor needs in one artifact.
//
// A deployed HMD is more than a model: it is a model, the counter subset
// the PMU must be programmed with (feature reduction means the monitor
// samples fewer events — possibly few enough to avoid multiplexing
// entirely), and the alarm policy. The bundle serializes all three, so
// training infrastructure and the monitor can be separate programs.
#pragma once

#include <iosfwd>
#include <memory>

#include "core/feature_reduction.hpp"
#include "core/online_detector.hpp"
#include "ml/classifier.hpp"

namespace hmd::core {

/// A complete, loadable detector deployment.
class DeploymentBundle {
 public:
  /// Assemble a bundle. `features` lists the counter columns (of the full
  /// 16-event layout) the model consumes, in model input order; empty
  /// means the model consumes all counters unprojected.
  DeploymentBundle(std::unique_ptr<ml::Classifier> model,
                   FeatureSet features, OnlineDetectorConfig policy);

  const ml::Classifier& model() const { return *model_; }
  const FeatureSet& features() const { return features_; }
  const OnlineDetectorConfig& policy() const { return policy_; }

  /// Predicted class for a FULL counter vector (projection applied).
  std::size_t predict(std::span<const double> full_counters) const;
  /// P(malware) for a full counter vector (binary bundles).
  double malware_probability(std::span<const double> full_counters) const;

  /// A fresh monitor wired to this bundle's model and policy. The monitor
  /// consumes full counter vectors through `observe_full`.
  OnlineDetector make_monitor() const;
  /// Observe a full counter vector on `monitor` (projection applied).
  OnlineDetector::Verdict observe_full(
      OnlineDetector& monitor, std::span<const double> full_counters) const;

 private:
  std::unique_ptr<ml::Classifier> model_;
  FeatureSet features_;
  OnlineDetectorConfig policy_;

  std::vector<double> project(std::span<const double> full) const;
};

/// Serialize a bundle (embeds the model via ml::save_model, so only those
/// schemes are supported).
void save_bundle(std::ostream& out, const DeploymentBundle& bundle);

/// Load a bundle saved by save_bundle.
DeploymentBundle load_bundle(std::istream& in);

}  // namespace hmd::core
