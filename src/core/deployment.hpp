// Deployment bundles: everything a runtime monitor needs in one artifact.
//
// A deployed HMD is more than a model: it is a model, the counter subset
// the PMU must be programmed with (feature reduction means the monitor
// samples fewer events — possibly few enough to avoid multiplexing
// entirely), and the alarm policy. The bundle serializes all three, so
// training infrastructure and the monitor can be separate programs.
//
// Format v2 adds an optional *fallback* model — a cheap secondary
// classifier (OneR, ZeroR, a small stump) the serving path degrades to
// when the primary keeps failing or blows its latency budget (see
// serve/resilience.hpp and docs/resilience.md). v1 bundles load
// unchanged; bundles without a fallback still save as v1.
#pragma once

#include <iosfwd>
#include <memory>

#include "core/feature_reduction.hpp"
#include "core/online_detector.hpp"
#include "ml/classifier.hpp"
#include "util/result.hpp"

namespace hmd::core {

/// A complete, loadable detector deployment.
class DeploymentBundle {
 public:
  /// Assemble a bundle. `features` lists the counter columns (of the full
  /// 16-event layout) the model consumes, in model input order; empty
  /// means the model consumes all counters unprojected.
  DeploymentBundle(std::unique_ptr<ml::Classifier> model,
                   FeatureSet features, OnlineDetectorConfig policy);

  /// Assemble a bundle with a degraded-mode fallback model (v2). The
  /// fallback consumes the same projected counter layout as the primary;
  /// nullptr is equivalent to the three-argument constructor.
  DeploymentBundle(std::unique_ptr<ml::Classifier> model,
                   std::unique_ptr<ml::Classifier> fallback,
                   FeatureSet features, OnlineDetectorConfig policy);

  const ml::Classifier& model() const { return *model_; }
  /// The degraded-mode secondary model, or nullptr (v1 bundles).
  const ml::Classifier* fallback_model() const { return fallback_.get(); }
  const FeatureSet& features() const { return features_; }
  const OnlineDetectorConfig& policy() const { return policy_; }

  /// Predicted class for a FULL counter vector (projection applied).
  std::size_t predict(std::span<const double> full_counters) const;
  /// P(malware) for a full counter vector (binary bundles).
  double malware_probability(std::span<const double> full_counters) const;

  /// A fresh monitor wired to this bundle's model and policy. The monitor
  /// consumes full counter vectors through `observe_full`.
  OnlineDetector make_monitor() const;
  /// Observe a full counter vector on `monitor` (projection applied).
  OnlineDetector::Verdict observe_full(
      OnlineDetector& monitor, std::span<const double> full_counters) const;

 private:
  std::unique_ptr<ml::Classifier> model_;
  std::unique_ptr<ml::Classifier> fallback_;  ///< may be null (v1)
  FeatureSet features_;
  OnlineDetectorConfig policy_;

  std::vector<double> project(std::span<const double> full) const;
};

/// Serialize a bundle (embeds the models via ml::save_model, so only those
/// schemes are supported). Bundles without a fallback write format v1;
/// bundles with one write v2.
void save_bundle(std::ostream& out, const DeploymentBundle& bundle);

/// Load a bundle saved by save_bundle (v1 or v2). Malformed input yields
/// an ErrorInfo (ErrCode::kParse) carrying a "loading deployment bundle"
/// context frame — the hot-swap path (serve::ModelHub::publish_from_stream)
/// rejects the swap on error and keeps the previous model serving.
Result<DeploymentBundle> try_load_bundle(std::istream& in);

/// Thin throwing wrapper over try_load_bundle (raises hmd::ParseError).
DeploymentBundle load_bundle(std::istream& in);

}  // namespace hmd::core
