// Detector assemblies:
//
//  * train_and_evaluate — the train/test protocol shared by all studies;
//  * BinaryStudy        — Figs. 13-16: every classifier × feature count,
//                         accuracy plus hardware synthesis;
//  * PcaAssistedOvr     — the thesis's PCA-assisted multiclass detector:
//                         one one-vs-rest classifier per class, each on its
//                         own PCA-custom feature subset (Fig. 19).
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "core/feature_reduction.hpp"
#include "hw/synthesis.hpp"
#include "ml/classifier.hpp"
#include "ml/evaluation.hpp"
#include "util/thread_pool.hpp"

namespace hmd::core {

/// Train a fresh `scheme` classifier on `train`, evaluate on `test`.
/// The classifier is wrapped in the metrics-instrumented decorator, so
/// every study run feeds the per-scheme train/predict histograms.
struct TrainedModel {
  std::unique_ptr<ml::Classifier> model;
  ml::EvaluationReport evaluation;
};
TrainedModel train_and_evaluate(const std::string& scheme,
                                const ml::Dataset& train,
                                const ml::Dataset& test);

/// One row of the binary study: a classifier at a feature count.
struct BinaryStudyRow {
  std::string scheme;
  std::size_t num_features = 0;
  ml::EvaluationReport report;  ///< full evaluation incl. train/test time
  hw::SynthesisReport synthesis;

  double accuracy() const { return report.accuracy(); }
  double accuracy_per_slice() const {
    const double area = synthesis.area_slices();
    return area > 0.0 ? accuracy() / area : 0.0;
  }
};

/// Runs the Fig. 13-16 study: each scheme trained/evaluated/synthesized on
/// each projected feature set.
class BinaryStudy {
 public:
  BinaryStudy(ml::Dataset train, ml::Dataset test);

  /// Evaluate `schemes` on the given feature subset (empty = all features).
  /// Each scheme trains independently with its own fixed internal seeds, so
  /// fanning the sweep across `pool` (nullptr = serial) returns
  /// bit-identical rows in scheme order.
  std::vector<BinaryStudyRow> run(const std::vector<std::string>& schemes,
                                  const FeatureSet* features = nullptr,
                                  ThreadPool* pool = nullptr) const;

 private:
  ml::Dataset train_;
  ml::Dataset test_;
};

/// The thesis's PCA-assisted multiclass detector: per class, a binary
/// one-vs-rest classifier over that class's custom feature subset; the
/// class whose detector reports the highest positive probability wins.
class PcaAssistedOvr {
 public:
  struct Config {
    std::string scheme = "MLR";
    std::size_t features_per_class = 8;
    double variance_cutoff = 0.95;
    /// When set, every class uses this same subset instead of its own
    /// PCA-custom one (the "non-custom features" baseline of Fig. 19).
    std::optional<FeatureSet> fixed_features;
    /// Cap on negatives per positive when training each one-vs-rest
    /// detector (balanced subsampling; 0 disables). Without it the rare
    /// classes' detectors never produce competitive probabilities.
    double max_negative_ratio = 0.0;
    std::uint64_t subsample_seed = 0xba1a;
  };

  explicit PcaAssistedOvr(Config config) : config_(std::move(config)) {}

  /// `train` must be the 6-class dataset. Feature selection runs on the
  /// training data only (no leakage).
  void train(const ml::Dataset& train);

  std::size_t predict(std::span<const double> features) const;
  ml::EvaluationReport evaluate(const ml::Dataset& test) const;

  /// The per-class feature subsets actually used.
  const std::vector<FeatureSet>& class_features() const { return features_; }

 private:
  Config config_;
  std::vector<std::unique_ptr<ml::Classifier>> detectors_;  ///< per class
  std::vector<FeatureSet> features_;                        ///< per class
  std::vector<std::string> class_names_;
};

}  // namespace hmd::core
