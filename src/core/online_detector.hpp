// Runtime detection policy: turns a trained binary classifier into a
// deployable monitor. Raw per-window argmax is unusable under the ~90 %
// malware training prior (it flags everything), so the deployed detector
// thresholds the malware probability and requires consecutive confirmation
// before raising an alarm — trading detection latency for false-positive
// rate, exactly the knob an SOC team tunes.
//
// Deployment counters feed the process metrics registry:
//   online_detector.windows_scored   windows observed (all instances)
//   online_detector.windows_flagged  windows above the flag threshold
//   online_detector.alarms           alarms latched
//   online_detector.alarm_latency_windows  histogram of windows-to-alarm
//   online_detector.batch_us         histogram of score_windows chunk time
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "ml/classifier.hpp"
#include "util/result.hpp"
#include "util/stats.hpp"
#include "util/thread_pool.hpp"

namespace hmd::core {

/// Alarm policy parameters.
struct OnlineDetectorConfig {
  /// Minimum malware probability for a window to be flagged.
  double flag_threshold = 0.97;
  /// Consecutive flagged windows required to raise the alarm.
  std::size_t confirm_windows = 4;
  /// Windows per Classifier::distribution_batch call in score_windows —
  /// the unit of work fanned across the pool. Purely a tuning knob (the
  /// serve engine and benches size it to their batch shape); it never
  /// affects verdicts and is not part of the persisted policy.
  std::size_t score_chunk_windows = 256;

  /// kPrecondition error naming the offending field unless
  /// flag_threshold is in (0, 1), confirm_windows >= 1 and
  /// score_chunk_windows >= 1. Call sites that accept external policy
  /// (the detector constructor, deployment-bundle load) all funnel
  /// through this, so a corrupt persisted policy cannot arm a broken
  /// monitor.
  Result<void> try_validate() const;
  /// Throwing wrapper over try_validate() (raises PreconditionError).
  void validate() const { try_validate().value(); }
};

/// Stateful per-program monitor. Feed it HPC windows in order; it reports
/// per-window flags and a latched alarm. One instance per monitored
/// program; reset() when the program changes.
class OnlineDetector {
 public:
  /// What the monitor concluded from one window.
  struct Verdict {
    double probability = 0.0;  ///< model's P(malware) for this window
    bool flagged = false;      ///< probability above the threshold
    bool alarm = false;        ///< alarm latched (this window or earlier)
  };

  /// `model` must be a trained binary classifier (class 1 = malware) and
  /// must outlive the detector. Throws PreconditionError for an invalid
  /// config (see OnlineDetectorConfig::validate).
  OnlineDetector(const ml::Classifier& model,
                 OnlineDetectorConfig config = {});

  /// Observe the next window's counter values.
  Verdict observe(std::span<const double> counts);

  /// Advance the streak/alarm state machine on an externally computed
  /// P(malware) — the batched serving path (serve::StreamEngine) scores
  /// whole cross-stream batches through Classifier::distribution_batch
  /// and then applies each probability here, so batched and per-window
  /// scoring share one state machine. observe(w) is exactly
  /// apply_probability(model.distribution(w)[1]).
  Verdict apply_probability(double probability);

  /// Batched deployment-style scoring: `flat` holds consecutive windows of
  /// `window_size` counters each (row-major). Model evaluation — the hot
  /// part — runs through Classifier::distribution_batch in chunks fanned
  /// across `pool` (nullptr = serial); the streak/alarm state machine then
  /// replays serially in window order, so the verdicts and final detector
  /// state are bit-identical to calling observe() on each window in
  /// sequence.
  std::vector<Verdict> score_windows(std::span<const double> flat,
                                     std::size_t window_size,
                                     ThreadPool* pool = nullptr);

  bool alarmed() const { return alarmed_; }
  std::size_t windows_seen() const { return windows_; }
  /// Window index (0-based) at which the alarm latched, or npos.
  std::size_t alarm_window() const { return alarm_window_; }
  static constexpr std::size_t kNoAlarm = static_cast<std::size_t>(-1);

  /// The complete mutable detector state — everything observe() advances.
  /// Snapshotting this and restoring it into a fresh detector over the
  /// same model/policy continues the verdict sequence bit-identically
  /// (the serving engine's checkpoint/restore path is built on this).
  struct State {
    std::size_t windows = 0;
    std::size_t flagged = 0;
    std::size_t streak = 0;
    bool alarmed = false;
    std::size_t alarm_window = kNoAlarm;
  };

  /// Copy out the streak/alarm state.
  State state() const {
    return {windows_, flagged_, streak_, alarmed_, alarm_window_};
  }

  /// Overwrite the streak/alarm state (checkpoint restore). Throws
  /// PreconditionError on internally inconsistent states (flagged or
  /// streak exceeding windows, alarm_window set without alarmed, ...).
  void restore(const State& state);

  /// Fraction of observed windows that were flagged (0 before any window).
  double flag_rate() const {
    return windows_ == 0 ? 0.0
                         : static_cast<double>(flagged_) /
                               static_cast<double>(windows_);
  }

  /// Running summary of every observed P(malware). Observability export
  /// (the drift layer and tools read the benign-side stats); deliberately
  /// NOT part of State — restoring a checkpoint restores behavior, and
  /// these summaries never affect verdicts.
  const RunningStats& score_stats() const { return score_stats_; }
  /// Running summary of the scores of UNFLAGGED windows only — the
  /// benign-looking score mass a drift baseline should sit on.
  const RunningStats& benign_score_stats() const {
    return benign_score_stats_;
  }

  /// Forget all streak/alarm state (new program under observation).
  void reset();

 private:
  /// Shared streak/alarm update for observe() and score_windows().
  void advance(Verdict& verdict);

  const ml::Classifier& model_;
  OnlineDetectorConfig config_;
  std::size_t windows_ = 0;
  std::size_t flagged_ = 0;
  std::size_t streak_ = 0;
  bool alarmed_ = false;
  std::size_t alarm_window_ = kNoAlarm;
  RunningStats score_stats_;
  RunningStats benign_score_stats_;
};

}  // namespace hmd::core
