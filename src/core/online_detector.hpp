// Runtime detection policy: turns a trained binary classifier into a
// deployable monitor. Raw per-window argmax is unusable under the ~90 %
// malware training prior (it flags everything), so the deployed detector
// thresholds the malware probability and requires consecutive confirmation
// before raising an alarm — trading detection latency for false-positive
// rate, exactly the knob an SOC team tunes.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "ml/classifier.hpp"
#include "util/thread_pool.hpp"

namespace hmd::core {

/// Alarm policy parameters.
struct OnlineDetectorConfig {
  /// Minimum malware probability for a window to be flagged.
  double flag_threshold = 0.97;
  /// Consecutive flagged windows required to raise the alarm.
  std::size_t confirm_windows = 4;
};

/// Stateful per-program monitor. Feed it HPC windows in order; it reports
/// per-window flags and a latched alarm. One instance per monitored
/// program; reset() when the program changes.
class OnlineDetector {
 public:
  /// What the monitor concluded from one window.
  struct Verdict {
    double probability = 0.0;  ///< model's P(malware) for this window
    bool flagged = false;      ///< probability above the threshold
    bool alarm = false;        ///< alarm latched (this window or earlier)
  };

  /// `model` must be a trained binary classifier (class 1 = malware) and
  /// must outlive the detector.
  OnlineDetector(const ml::Classifier& model,
                 OnlineDetectorConfig config = {});

  /// Observe the next window's counter values.
  Verdict observe(std::span<const double> counts);

  /// Batched deployment-style scoring: `flat` holds consecutive windows of
  /// `window_size` counters each (row-major). Model evaluation — the hot
  /// part — fans across `pool` (nullptr = serial); the streak/alarm state
  /// machine then replays serially in window order, so the verdicts and
  /// final detector state are bit-identical to calling observe() on each
  /// window in sequence.
  std::vector<Verdict> score_windows(std::span<const double> flat,
                                     std::size_t window_size,
                                     ThreadPool* pool = nullptr);

  bool alarmed() const { return alarmed_; }
  std::size_t windows_seen() const { return windows_; }
  /// Window index (0-based) at which the alarm latched, or npos.
  std::size_t alarm_window() const { return alarm_window_; }
  static constexpr std::size_t kNoAlarm = static_cast<std::size_t>(-1);

  /// Forget all streak/alarm state (new program under observation).
  void reset();

 private:
  const ml::Classifier& model_;
  OnlineDetectorConfig config_;
  std::size_t windows_ = 0;
  std::size_t streak_ = 0;
  bool alarmed_ = false;
  std::size_t alarm_window_ = kNoAlarm;
};

}  // namespace hmd::core
