#include "core/dataset_builder.hpp"

#include <atomic>
#include <filesystem>
#include <fstream>
#include <mutex>

#include "hwsim/core.hpp"
#include "ml/arff.hpp"
#include "util/error.hpp"
#include "util/thread_pool.hpp"
#include "workload/sandbox.hpp"

namespace hmd::core {

namespace {

std::vector<ml::Attribute> feature_schema(
    const std::vector<hwsim::HwEvent>& events) {
  std::vector<ml::Attribute> attrs;
  attrs.reserve(events.size() + 1);
  for (hwsim::HwEvent e : events)
    attrs.emplace_back(std::string(hwsim::event_name(e)));
  std::vector<std::string> class_values;
  for (workload::AppClass c : workload::all_app_classes())
    class_values.emplace_back(workload::app_class_name(c));
  attrs.emplace_back("class", std::move(class_values));
  return attrs;
}

}  // namespace

DatasetBuilder::DatasetBuilder(PipelineConfig config)
    : config_(std::move(config)) {
  if (config_.collector.events.empty())
    config_.collector.events = perf::default_feature_events();
}

workload::SampleDatabase DatasetBuilder::build_database() const {
  return workload::SampleDatabase::generate(config_.composition,
                                            config_.seed, config_.evasion);
}

std::vector<perf::HpcSample> DatasetBuilder::run_sample(
    const workload::SampleRecord& rec) const {
  workload::Sandbox sandbox(rec, config_.sandbox);
  // Miniature hierarchy: window sizes are miniaturized, so cache capacities
  // are scaled to match (see DESIGN.md).
  hwsim::Core core(hwsim::CoreConfig{}, hwsim::MemoryHierarchy::miniature());
  const perf::HpcCollector collector(config_.collector);
  return collector.collect(core, sandbox, rec.seed ^ 0xab5e11);
}

ml::Dataset DatasetBuilder::build_multiclass_dataset(
    const std::function<void(std::size_t, std::size_t)>& progress,
    ThreadPool* pool) const {
  const workload::SampleDatabase db = build_database();
  ml::Dataset data(feature_schema(config_.collector.events), "hmd_hpc");

  // Stage 1 (parallel): simulate every sample. Each run is seeded by its
  // record's own splitmix64-derived sub-seed, so the windows depend only
  // on the record, never on scheduling. Results land in per-sample slots.
  const auto& samples = db.samples();
  std::vector<std::vector<perf::HpcSample>> windows(samples.size());
  std::atomic<std::size_t> done{0};
  std::mutex progress_mutex;
  parallel_for(pool, samples.size(), [&](std::size_t i) {
    windows[i] = run_sample(samples[i]);
    const std::size_t finished =
        done.fetch_add(1, std::memory_order_relaxed) + 1;
    if (progress) {
      std::lock_guard<std::mutex> lock(progress_mutex);
      progress(finished, samples.size());
    }
  });

  // Stage 2 (serial): append rows in database order — the exact row order
  // of the serial build, so the cached CSV is bit-identical.
  for (std::size_t i = 0; i < samples.size(); ++i) {
    const auto label = static_cast<double>(samples[i].label);
    for (const perf::HpcSample& w : windows[i]) {
      ml::Instance row;
      row.values.reserve(w.counts.size() + 1);
      row.values.insert(row.values.end(), w.counts.begin(), w.counts.end());
      row.values.push_back(label);
      data.add(std::move(row));
    }
  }
  return data;
}

ml::Dataset DatasetBuilder::to_binary(const ml::Dataset& multiclass) {
  std::vector<std::size_t> positive;
  for (workload::AppClass c : workload::malware_classes())
    positive.push_back(static_cast<std::size_t>(c));
  return multiclass.relabel_binary(positive, "benign", "malware");
}

std::vector<perf::RunLog> DatasetBuilder::collect_run_logs(
    std::size_t max_runs) const {
  const workload::SampleDatabase db = build_database();
  std::vector<perf::RunLog> logs;
  const std::size_t n = std::min(max_runs, db.size());
  logs.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    const workload::SampleRecord& rec = db.samples()[i];
    perf::RunLog log;
    log.sample_id = rec.id;
    log.label = std::string(workload::app_class_name(rec.label));
    log.events = config_.collector.events;
    log.samples = run_sample(rec);
    logs.push_back(std::move(log));
  }
  return logs;
}

void DatasetBuilder::save_dataset_csv(const ml::Dataset& data,
                                      const std::string& path) {
  std::ofstream out(path);
  if (!out) throw Error("cannot write dataset CSV: " + path);
  ml::write_dataset_csv(out, data);
}

ml::Dataset DatasetBuilder::load_dataset_csv(const std::string& path) {
  const CsvTable table = read_csv_file(path);
  std::vector<std::string> class_values;
  for (workload::AppClass c : workload::all_app_classes())
    class_values.emplace_back(workload::app_class_name(c));
  return ml::dataset_from_csv(table, class_values);
}

ml::Dataset DatasetBuilder::load_or_build(const std::string& path,
                                          ThreadPool* pool) const {
  if (!path.empty() && std::filesystem::exists(path))
    return load_dataset_csv(path);
  ml::Dataset data = build_multiclass_dataset({}, pool);
  if (!path.empty()) save_dataset_csv(data, path);
  return data;
}

}  // namespace hmd::core
