#include "core/pipeline_config.hpp"

#include "util/strings.hpp"

namespace hmd::core {

PipelineConfig PipelineConfig::paper() {
  PipelineConfig cfg;
  cfg.collector.num_windows = 16;
  cfg.collector.ops_per_window = 4000;
  return cfg;
}

PipelineConfig PipelineConfig::quick(double scale, std::size_t windows) {
  PipelineConfig cfg;
  cfg.composition = workload::DatabaseComposition::scaled(scale);
  cfg.collector.num_windows = windows;
  cfg.collector.ops_per_window = 3000;
  return cfg;
}

std::string PipelineConfig::cache_key() const {
  std::uint64_t h = seed;
  auto mix = [&h](std::uint64_t v) {
    h ^= v + 0x9e3779b97f4a7c15ull + (h << 6) + (h >> 2);
  };
  for (const auto& [cls, n] : composition.counts) {
    mix(static_cast<std::uint64_t>(cls));
    mix(n);
  }
  mix(collector.num_windows);
  mix(collector.warmup_windows);
  mix(collector.rotations_per_window);
  mix(collector.ops_per_window);
  mix(static_cast<std::uint64_t>(collector.window_ms * 1000.0));
  mix(collector.ideal_pmu ? 1 : 0);
  mix(static_cast<std::uint64_t>(collector.mux_scaling_sigma * 1e6));
  mix(collector.events.size());
  mix(static_cast<std::uint64_t>(sandbox.host_noise_frac * 1e6));
  mix(static_cast<std::uint64_t>(train_fraction * 1e6));
  // Mixed only when a plan is attached so clean-pipeline keys are
  // unchanged from pre-evasion builds.
  if (!evasion.empty()) mix(evasion.fingerprint());
  return format("hmd_%016llx", static_cast<unsigned long long>(h));
}

}  // namespace hmd::core
