#include "core/deployment.hpp"

#include <cstdlib>
#include <istream>
#include <ostream>

#include "ml/serialization.hpp"
#include "util/error.hpp"
#include "util/strings.hpp"

namespace hmd::core {

DeploymentBundle::DeploymentBundle(std::unique_ptr<ml::Classifier> model,
                                   FeatureSet features,
                                   OnlineDetectorConfig policy)
    : DeploymentBundle(std::move(model), nullptr, std::move(features),
                       policy) {}

DeploymentBundle::DeploymentBundle(std::unique_ptr<ml::Classifier> model,
                                   std::unique_ptr<ml::Classifier> fallback,
                                   FeatureSet features,
                                   OnlineDetectorConfig policy)
    : model_(std::move(model)),
      fallback_(std::move(fallback)),
      features_(std::move(features)),
      policy_(policy) {
  HMD_REQUIRE(model_ != nullptr, "DeploymentBundle: null model");
  HMD_REQUIRE(model_->num_classes() >= 2,
              "DeploymentBundle: model is not trained");
  HMD_REQUIRE(fallback_ == nullptr || fallback_->num_classes() >= 2,
              "DeploymentBundle: fallback model is not trained");
  HMD_REQUIRE(fallback_ == nullptr ||
                  fallback_->num_classes() == model_->num_classes(),
              "DeploymentBundle: fallback class count differs from primary");
  HMD_REQUIRE(features_.indices.size() == features_.names.size(),
              "DeploymentBundle: feature set indices/names mismatch");
  // Reject broken alarm policies at assembly time, not first monitor use —
  // this also guards load_bundle against corrupt persisted policies.
  policy_.validate();
}

std::vector<double> DeploymentBundle::project(
    std::span<const double> full) const {
  if (features_.indices.empty()) return {full.begin(), full.end()};
  std::vector<double> projected;
  projected.reserve(features_.indices.size());
  for (std::size_t idx : features_.indices) {
    HMD_REQUIRE(idx < full.size(),
                "DeploymentBundle: counter vector too short");
    projected.push_back(full[idx]);
  }
  return projected;
}

std::size_t DeploymentBundle::predict(
    std::span<const double> full_counters) const {
  return model_->predict(project(full_counters));
}

double DeploymentBundle::malware_probability(
    std::span<const double> full_counters) const {
  HMD_REQUIRE(model_->num_classes() == 2,
              "malware_probability: binary bundles only");
  return model_->distribution(project(full_counters))[1];
}

OnlineDetector DeploymentBundle::make_monitor() const {
  return OnlineDetector(*model_, policy_);
}

OnlineDetector::Verdict DeploymentBundle::observe_full(
    OnlineDetector& monitor, std::span<const double> full_counters) const {
  return monitor.observe(project(full_counters));
}

void save_bundle(std::ostream& out, const DeploymentBundle& bundle) {
  const bool v2 = bundle.fallback_model() != nullptr;
  out << (v2 ? "hmd-bundle v2\n" : "hmd-bundle v1\n");
  out << "features " << bundle.features().indices.size() << '\n';
  for (std::size_t i = 0; i < bundle.features().indices.size(); ++i)
    out << "feature " << bundle.features().indices[i] << ' '
        << bundle.features().names[i] << '\n';
  out << format("policy %a %zu\n", bundle.policy().flag_threshold,
                bundle.policy().confirm_windows);
  if (v2) out << "fallback 1\n";
  ml::save_model(out, bundle.model());
  if (v2) ml::save_model(out, *bundle.fallback_model());
}

namespace {

/// The actual parser (v1 and v2); throws ParseError on malformed input.
DeploymentBundle load_bundle_impl(std::istream& in) {
  std::string line;
  auto next_line = [&]() -> std::string {
    while (std::getline(in, line)) {
      if (!trim(line).empty()) return std::string(trim(line));
    }
    throw ParseError("bundle: unexpected end of input");
  };

  const std::string header = next_line();
  bool v2 = false;
  if (header == "hmd-bundle v2")
    v2 = true;
  else if (header != "hmd-bundle v1")
    throw ParseError(
        "bundle: bad header (expected 'hmd-bundle v1' or 'hmd-bundle v2')");

  const auto feat_header = split(next_line(), ' ');
  if (feat_header.size() != 2 || feat_header[0] != "features")
    throw ParseError("bundle: bad features header");
  const auto n_features =
      static_cast<std::size_t>(parse_int(feat_header[1]));

  FeatureSet features;
  for (std::size_t i = 0; i < n_features; ++i) {
    // "feature <idx> <name>" — event names are hyphenated, no spaces.
    const auto tokens = split(next_line(), ' ');
    if (tokens.size() != 3 || tokens[0] != "feature")
      throw ParseError("bundle: bad feature line");
    features.indices.push_back(
        static_cast<std::size_t>(parse_int(tokens[1])));
    features.names.push_back(tokens[2]);
  }

  const auto policy_tokens = split(next_line(), ' ');
  if (policy_tokens.size() != 3 || policy_tokens[0] != "policy")
    throw ParseError("bundle: bad policy line");
  OnlineDetectorConfig policy;
  {
    const char* begin = policy_tokens[1].c_str();
    char* end = nullptr;
    policy.flag_threshold = std::strtod(begin, &end);
    if (end != begin + policy_tokens[1].size())
      throw ParseError("bundle: bad policy threshold");
  }
  policy.confirm_windows =
      static_cast<std::size_t>(parse_int(policy_tokens[2]));

  bool has_fallback = false;
  if (v2) {
    const auto fb_tokens = split(next_line(), ' ');
    if (fb_tokens.size() != 2 || fb_tokens[0] != "fallback")
      throw ParseError("bundle: bad fallback line");
    if (fb_tokens[1] != "0" && fb_tokens[1] != "1")
      throw ParseError("bundle: fallback must be 0 or 1");
    has_fallback = fb_tokens[1] == "1";
  }

  std::unique_ptr<ml::Classifier> model = ml::load_model(in);
  std::unique_ptr<ml::Classifier> fallback;
  if (has_fallback) fallback = ml::load_model(in);
  return DeploymentBundle(std::move(model), std::move(fallback),
                          std::move(features), policy);
}

}  // namespace

Result<DeploymentBundle> try_load_bundle(std::istream& in) {
  return capture_result([&in] { return load_bundle_impl(in); })
      .with_context("loading deployment bundle");
}

DeploymentBundle load_bundle(std::istream& in) {
  // Thin throwing wrapper: value() raises the ErrorInfo as a ParseError.
  return try_load_bundle(in).value();
}

}  // namespace hmd::core
