// MiBench-style benign program suite.
//
// The thesis cites MiBench (Guthaus et al., WWC'01) as the source of
// "commercially representative embedded" benign programs. This module
// provides named benign behaviour profiles shaped after well-known MiBench
// kernels — useful when an experiment wants specific, recognizable benign
// programs rather than the generic benign archetype (e.g. characterization
// studies, demos, or a benign suite for the anomaly detector).
//
// These are additive: the default database generation keeps using the
// generic benign archetype so published results are unchanged.
#pragma once

#include <string>
#include <vector>

#include "workload/behavior_profile.hpp"
#include "workload/sample_database.hpp"

namespace hmd::workload {

/// Names of the provided MiBench-style kernels.
///  qsort     — pointer-chasing comparisons over a working set
///  dijkstra  — graph relaxations: irregular loads, data-dependent branches
///  crc32     — tiny streaming loop, near-perfect prediction
///  jpeg      — blocked compute with table lookups, moderate stores
///  susan     — image smoothing: 2-D stencil streams
///  sha       — register-heavy crypto rounds, almost no memory traffic
const std::vector<std::string>& mibench_kernels();

/// The behaviour profile for a named kernel; throws hmd::PreconditionError
/// for unknown names.
BehaviorProfile mibench_profile(const std::string& kernel);

/// A named, jittered instance of a kernel (ready for TraceGenerator).
struct MibenchInstance {
  std::string name;        ///< e.g. "qsort_03"
  BehaviorProfile profile;
  std::uint64_t seed = 0;  ///< trace seed
};

/// `per_kernel` jittered instances of every kernel. Deterministic in
/// `seed`. Use with TraceGenerator / the perf collector for benign-suite
/// studies (e.g. training the anomaly detector on realistic benign mix).
std::vector<MibenchInstance> mibench_suite(std::size_t per_kernel,
                                           std::uint64_t seed);

}  // namespace hmd::workload
