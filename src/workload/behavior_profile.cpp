#include "workload/behavior_profile.hpp"

#include <algorithm>
#include <cmath>

#include "util/error.hpp"

namespace hmd::workload {

void PhaseParams::sanitize() {
  auto clamp01 = [](double& v) { v = std::clamp(v, 0.0, 1.0); };
  clamp01(load_frac);
  clamp01(store_frac);
  clamp01(branch_frac);
  // Keep the mix a valid distribution (ALU gets the remainder).
  const double total = load_frac + store_frac + branch_frac;
  if (total > 0.95) {
    const double scale = 0.95 / total;
    load_frac *= scale;
    store_frac *= scale;
    branch_frac *= scale;
  }
  clamp01(cond_branch_frac);
  clamp01(branch_bias);
  clamp01(jump_spread);
  clamp01(hot_frac);
  clamp01(stream_frac);
  code_pages = std::max<std::uint32_t>(code_pages, 1);
  data_pages = std::max<std::uint32_t>(data_pages, 1);
  hot_pages = std::clamp<std::uint32_t>(hot_pages, 1, data_pages);
  weight = std::max(weight, 1e-6);
}

std::vector<double> BehaviorProfile::normalized_weights() const {
  HMD_REQUIRE(!phases.empty(), "profile must have at least one phase");
  double total = 0.0;
  for (const auto& p : phases) total += p.weight;
  HMD_REQUIRE(total > 0.0, "phase weights must be positive");
  std::vector<double> w;
  w.reserve(phases.size());
  for (const auto& p : phases) w.push_back(p.weight / total);
  return w;
}

namespace {

PhaseParams benign_compute() {
  return {.name = "compute", .weight = 0.5,
          .load_frac = 0.25, .store_frac = 0.12, .branch_frac = 0.18,
          .cond_branch_frac = 0.80, .branch_bias = 0.93, .jump_spread = 0.05,
          .code_pages = 16,
          .data_pages = 48, .hot_pages = 8, .hot_frac = 0.80,
          .stream_frac = 0.40};
}

PhaseParams benign_io() {
  return {.name = "io", .weight = 0.3,
          .load_frac = 0.30, .store_frac = 0.20, .branch_frac = 0.15,
          .cond_branch_frac = 0.75, .branch_bias = 0.90, .jump_spread = 0.10,
          .code_pages = 24,
          .data_pages = 40, .hot_pages = 8, .hot_frac = 0.55,
          .stream_frac = 0.60};
}

PhaseParams benign_idle() {
  return {.name = "idle", .weight = 0.2,
          .load_frac = 0.16, .store_frac = 0.06, .branch_frac = 0.20,
          .cond_branch_frac = 0.80, .branch_bias = 0.92, .jump_spread = 0.04,
          .code_pages = 8,
          .data_pages = 12, .hot_pages = 4, .hot_frac = 0.85,
          .stream_frac = 0.15};
}

BehaviorProfile benign_archetype() {
  return {.app_class = AppClass::kBenign,
          .phases = {benign_compute(), benign_io(), benign_idle()}};
}

BehaviorProfile backdoor_archetype() {
  PhaseParams poll{.name = "poll", .weight = 0.8,
                   .load_frac = 0.12, .store_frac = 0.03, .branch_frac = 0.34,
                   .cond_branch_frac = 0.92, .branch_bias = 0.985,
                   .jump_spread = 0.01,
                   .code_pages = 2,
                   .data_pages = 4, .hot_pages = 2, .hot_frac = 0.97,
                   .stream_frac = 0.10};
  PhaseParams command{.name = "command", .weight = 0.2,
                      .load_frac = 0.28, .store_frac = 0.18,
                      .branch_frac = 0.17,
                      .cond_branch_frac = 0.75, .branch_bias = 0.88,
                      .jump_spread = 0.10,
                      .code_pages = 16,
                      .data_pages = 32, .hot_pages = 6, .hot_frac = 0.60,
                      .stream_frac = 0.50};
  return {.app_class = AppClass::kBackdoor, .phases = {poll, command}};
}

BehaviorProfile rootkit_archetype() {
  PhaseParams interpose{.name = "interpose", .weight = 0.6,
                        .load_frac = 0.22, .store_frac = 0.10,
                        .branch_frac = 0.24,
                        .cond_branch_frac = 0.55, .branch_bias = 0.50,
                        .jump_spread = 0.55,
                        .code_pages = 128,
                        .data_pages = 48, .hot_pages = 6, .hot_frac = 0.60,
                        .stream_frac = 0.20};
  PhaseParams scan{.name = "scan", .weight = 0.4,
                   .load_frac = 0.30, .store_frac = 0.08, .branch_frac = 0.20,
                   .cond_branch_frac = 0.65, .branch_bias = 0.70,
                   .jump_spread = 0.30,
                   .code_pages = 64,
                   .data_pages = 96, .hot_pages = 8, .hot_frac = 0.45,
                   .stream_frac = 0.60};
  return {.app_class = AppClass::kRootkit, .phases = {interpose, scan}};
}

BehaviorProfile trojan_archetype() {
  PhaseParams facade{.name = "facade", .weight = 0.5,
                     .load_frac = 0.22, .store_frac = 0.10,
                     .branch_frac = 0.22,
                     .cond_branch_frac = 0.82, .branch_bias = 0.95,
                     .jump_spread = 0.04,
                     .code_pages = 8,
                     .data_pages = 40, .hot_pages = 8, .hot_frac = 0.90,
                     .stream_frac = 0.20};
  PhaseParams keylog{.name = "keylog", .weight = 0.2,
                     .load_frac = 0.18, .store_frac = 0.10,
                     .branch_frac = 0.26,
                     .cond_branch_frac = 0.85, .branch_bias = 0.94,
                     .jump_spread = 0.05,
                     .code_pages = 8,
                     .data_pages = 16, .hot_pages = 4, .hot_frac = 0.85,
                     .stream_frac = 0.15};
  PhaseParams exfil{.name = "exfil", .weight = 0.3,
                    .load_frac = 0.30, .store_frac = 0.32,
                    .branch_frac = 0.10,
                    .cond_branch_frac = 0.70, .branch_bias = 0.90,
                    .jump_spread = 0.08,
                    .code_pages = 16,
                    .data_pages = 768, .hot_pages = 8, .hot_frac = 0.15,
                    .stream_frac = 0.85};
  return {.app_class = AppClass::kTrojan, .phases = {facade, keylog, exfil}};
}

BehaviorProfile virus_archetype() {
  PhaseParams scan{.name = "scan", .weight = 0.55,
                   .load_frac = 0.40, .store_frac = 0.06, .branch_frac = 0.16,
                   .cond_branch_frac = 0.80, .branch_bias = 0.85,
                   .jump_spread = 0.08,
                   .code_pages = 24,
                   .data_pages = 1024, .hot_pages = 16, .hot_frac = 0.15,
                   .stream_frac = 0.92};
  PhaseParams infect{.name = "infect", .weight = 0.25,
                     .load_frac = 0.30, .store_frac = 0.25,
                     .branch_frac = 0.14,
                     .cond_branch_frac = 0.75, .branch_bias = 0.82,
                     .jump_spread = 0.10,
                     .code_pages = 24,
                     .data_pages = 256, .hot_pages = 12, .hot_frac = 0.30,
                     .stream_frac = 0.70};
  PhaseParams dormant{.name = "dormant", .weight = 0.2,
                      .load_frac = 0.20, .store_frac = 0.04,
                      .branch_frac = 0.20,
                      .cond_branch_frac = 0.88, .branch_bias = 0.97,
                      .jump_spread = 0.02,
                      .code_pages = 6,
                      .data_pages = 8, .hot_pages = 4, .hot_frac = 0.92,
                      .stream_frac = 0.10};
  return {.app_class = AppClass::kVirus, .phases = {scan, infect, dormant}};
}

BehaviorProfile worm_archetype() {
  PhaseParams replicate{.name = "replicate", .weight = 0.6,
                        .load_frac = 0.32, .store_frac = 0.32,
                        .branch_frac = 0.12,
                        .cond_branch_frac = 0.70, .branch_bias = 0.88,
                        .jump_spread = 0.06,
                        .code_pages = 16,
                        .data_pages = 2048, .hot_pages = 8, .hot_frac = 0.08,
                        .stream_frac = 0.90};
  PhaseParams propagate{.name = "propagate", .weight = 0.4,
                        .load_frac = 0.25, .store_frac = 0.15,
                        .branch_frac = 0.20,
                        .cond_branch_frac = 0.80, .branch_bias = 0.85,
                        .jump_spread = 0.12,
                        .code_pages = 32,
                        .data_pages = 128, .hot_pages = 8, .hot_frac = 0.40,
                        .stream_frac = 0.50};
  return {.app_class = AppClass::kWorm, .phases = {replicate, propagate}};
}

/// Multiplicative log-normal jitter, clamped to [0.4x, 2.5x].
double jitter(Rng& rng, double value, double sigma) {
  const double factor =
      std::clamp(rng.lognormal(0.0, sigma), 0.4, 2.5);
  return value * factor;
}

std::uint32_t jitter_pages(Rng& rng, std::uint32_t pages, double sigma) {
  const double v = jitter(rng, static_cast<double>(pages), sigma);
  return static_cast<std::uint32_t>(std::max(1.0, v));
}

}  // namespace

BehaviorProfile class_archetype(AppClass c) {
  switch (c) {
    case AppClass::kBenign:   return benign_archetype();
    case AppClass::kBackdoor: return backdoor_archetype();
    case AppClass::kRootkit:  return rootkit_archetype();
    case AppClass::kTrojan:   return trojan_archetype();
    case AppClass::kVirus:    return virus_archetype();
    case AppClass::kWorm:     return worm_archetype();
    case AppClass::kCount:    break;
  }
  throw PreconditionError("class_archetype: invalid class");
}

BehaviorProfile instantiate_sample_profile(AppClass c, Rng& rng,
                                           double stealth_prob) {
  HMD_REQUIRE(stealth_prob >= 0.0 && stealth_prob <= 1.0,
              "stealth_prob must be a probability");
  BehaviorProfile profile = class_archetype(c);

  // Benign samples vary widely (different programs): heavier jitter, and
  // occasionally drop a phase entirely.
  const bool benign = c == AppClass::kBenign;
  const double frac_sigma = benign ? 0.18 : 0.15;
  const double pages_sigma = benign ? 0.40 : 0.30;

  for (PhaseParams& p : profile.phases) {
    p.weight = jitter(rng, p.weight, 0.18);
    p.load_frac = jitter(rng, p.load_frac, frac_sigma);
    p.store_frac = jitter(rng, p.store_frac, frac_sigma);
    p.branch_frac = jitter(rng, p.branch_frac, frac_sigma);
    p.cond_branch_frac = jitter(rng, p.cond_branch_frac, 0.10);
    p.branch_bias = jitter(rng, p.branch_bias, 0.04);
    p.jump_spread = jitter(rng, p.jump_spread, 0.30);
    p.code_pages = jitter_pages(rng, p.code_pages, pages_sigma);
    p.data_pages = jitter_pages(rng, p.data_pages, pages_sigma);
    p.hot_pages = jitter_pages(rng, p.hot_pages, 0.35);
    p.hot_frac = jitter(rng, p.hot_frac, 0.15);
    p.stream_frac = jitter(rng, p.stream_frac, 0.20);
    p.sanitize();
  }

  if (benign && profile.phases.size() > 1 && rng.bernoulli(0.2)) {
    profile.phases.erase(profile.phases.begin() +
                         static_cast<std::ptrdiff_t>(
                             rng.uniform_index(profile.phases.size())));
  }

  // Stealthy malware variants hide behind a benign facade for a sizeable
  // share of their execution.
  if (is_malware(c) && rng.bernoulli(stealth_prob)) {
    PhaseParams facade = benign_compute();
    facade.name = "stealth-facade";
    facade.weight = rng.uniform(0.25, 0.45);
    facade.sanitize();
    profile.phases.push_back(facade);
  }

  return profile;
}

}  // namespace hmd::workload
