#include "workload/app_class.hpp"

#include "util/error.hpp"

namespace hmd::workload {

namespace {
constexpr std::array<std::string_view, kNumAppClasses> kNames = {
    "benign", "backdoor", "rootkit", "trojan", "virus", "worm"};
}

std::string_view app_class_name(AppClass c) {
  const auto i = static_cast<std::size_t>(c);
  HMD_REQUIRE(i < kNumAppClasses, "app_class_name: invalid class");
  return kNames[i];
}

AppClass app_class_from_name(std::string_view name) {
  for (std::size_t i = 0; i < kNumAppClasses; ++i)
    if (kNames[i] == name) return static_cast<AppClass>(i);
  throw ParseError("unknown application class: " + std::string(name));
}

const std::array<AppClass, kNumAppClasses>& all_app_classes() {
  static const std::array<AppClass, kNumAppClasses> kAll = {
      AppClass::kBenign, AppClass::kBackdoor, AppClass::kRootkit,
      AppClass::kTrojan, AppClass::kVirus,    AppClass::kWorm};
  return kAll;
}

const std::array<AppClass, kNumMalwareClasses>& malware_classes() {
  static const std::array<AppClass, kNumMalwareClasses> kMal = {
      AppClass::kBackdoor, AppClass::kRootkit, AppClass::kTrojan,
      AppClass::kVirus, AppClass::kWorm};
  return kMal;
}

bool is_malware(AppClass c) { return c != AppClass::kBenign; }

}  // namespace hmd::workload
