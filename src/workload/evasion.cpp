#include "workload/evasion.hpp"

#include <algorithm>
#include <cmath>
#include <cstring>

#include "hwsim/core.hpp"
#include "hwsim/memory_hierarchy.hpp"
#include "ml/classifier.hpp"
#include "util/error.hpp"
#include "util/strings.hpp"
#include "workload/sandbox.hpp"

namespace hmd::workload {

namespace {

/// Scales the k-th numeric knob of a phase (declaration order: weight,
/// load_frac, store_frac, branch_frac, cond_branch_frac, branch_bias,
/// jump_spread, code_pages, data_pages, hot_pages, hot_frac, stream_frac).
void knob_scale(PhaseParams& p, std::size_t k, double factor) {
  auto pages = [factor](std::uint32_t v) {
    const double scaled = std::lround(static_cast<double>(v) * factor);
    return static_cast<std::uint32_t>(std::max(1.0, scaled));
  };
  switch (k) {
    case 0: p.weight *= factor; return;
    case 1: p.load_frac *= factor; return;
    case 2: p.store_frac *= factor; return;
    case 3: p.branch_frac *= factor; return;
    case 4: p.cond_branch_frac *= factor; return;
    case 5: p.branch_bias *= factor; return;
    case 6: p.jump_spread *= factor; return;
    case 7: p.code_pages = pages(p.code_pages); return;
    case 8: p.data_pages = pages(p.data_pages); return;
    case 9: p.hot_pages = pages(p.hot_pages); return;
    case 10: p.hot_frac *= factor; return;
    case 11: p.stream_frac *= factor; return;
    default: break;
  }
  throw PreconditionError("knob index out of range");
}

std::uint64_t fnv1a_mix(std::uint64_t h, std::uint64_t v) {
  for (int byte = 0; byte < 8; ++byte) {
    h ^= (v >> (byte * 8)) & 0xffull;
    h *= 0x100000001b3ull;
  }
  return h;
}

std::uint64_t fnv1a_mix(std::uint64_t h, double v) {
  std::uint64_t bits;
  static_assert(sizeof(bits) == sizeof(v));
  std::memcpy(&bits, &v, sizeof(bits));
  return fnv1a_mix(h, bits);
}

constexpr std::uint64_t kFnvOffset = 0xcbf29ce484222325ull;

}  // namespace

Result<void> EvasionBudget::try_validate() const {
  if (!(max_rel_step > 0.0 && max_rel_step < 1.0))
    return ErrorInfo(ErrCode::kPrecondition,
                     "EvasionBudget.max_rel_step: must be in (0, 1)");
  if (!(max_facade_weight >= 0.0 && max_facade_weight < 1.0))
    return ErrorInfo(ErrCode::kPrecondition,
                     "EvasionBudget.max_facade_weight: must be in [0, 1)");
  return {};
}

BehaviorProfile EvasionPerturbation::apply(const BehaviorProfile& base) const {
  HMD_REQUIRE(factors.size() % kKnobsPerPhase == 0,
              "EvasionPerturbation.factors must be phases x kKnobsPerPhase");
  BehaviorProfile out = base;
  const std::size_t covered =
      std::min(out.phases.size(), factors.size() / kKnobsPerPhase);
  for (std::size_t p = 0; p < covered; ++p) {
    for (std::size_t k = 0; k < kKnobsPerPhase; ++k)
      knob_scale(out.phases[p], k, factors[p * kKnobsPerPhase + k]);
    out.phases[p].sanitize();
  }
  if (facade_weight > 0.0) {
    HMD_REQUIRE(facade_weight < 1.0, "facade_weight must be < 1");
    double total = 0.0;
    for (const PhaseParams& p : out.phases) total += p.weight;
    PhaseParams facade = class_archetype(AppClass::kBenign).phases.front();
    facade.name = "evasion-facade";
    // Weight chosen so the facade's *normalized* share is facade_weight.
    facade.weight = facade_weight / (1.0 - facade_weight) * total;
    facade.sanitize();
    out.phases.push_back(std::move(facade));
  }
  return out;
}

Result<void> EvasionPerturbation::try_validate(
    const EvasionBudget& budget) const {
  if (Result<void> r = budget.try_validate(); !r) return r;
  if (factors.size() % kKnobsPerPhase != 0)
    return ErrorInfo(
        ErrCode::kPrecondition,
        format("EvasionPerturbation.factors: size %zu is not a multiple of "
               "%zu knobs per phase",
               factors.size(), kKnobsPerPhase));
  const double lo = 1.0 - budget.max_rel_step;
  const double hi = 1.0 + budget.max_rel_step;
  for (std::size_t i = 0; i < factors.size(); ++i) {
    const double f = factors[i];
    if (!std::isfinite(f) || f < lo || f > hi)
      return ErrorInfo(
          ErrCode::kPrecondition,
          format("EvasionPerturbation.factors[%zu]: %g outside budget "
                 "[%g, %g]",
                 i, f, lo, hi));
  }
  if (!std::isfinite(facade_weight) || facade_weight < 0.0 ||
      facade_weight > budget.max_facade_weight)
    return ErrorInfo(
        ErrCode::kPrecondition,
        format("EvasionPerturbation.facade_weight: %g outside [0, %g]",
               facade_weight, budget.max_facade_weight));
  return {};
}

std::uint64_t EvasionPerturbation::fingerprint() const {
  std::uint64_t h = kFnvOffset;
  h = fnv1a_mix(h, static_cast<std::uint64_t>(factors.size()));
  for (double f : factors) h = fnv1a_mix(h, f);
  h = fnv1a_mix(h, facade_weight);
  return h;
}

BehaviorProfile ProfileSpec::instantiate() const {
  Rng rng(seed_);
  BehaviorProfile profile =
      instantiate_sample_profile(family_, rng, stealth_prob_);
  if (perturbation_ && !perturbation_->empty())
    profile = perturbation_->apply(profile);
  return profile;
}

void EvasionPlan::set(AppClass c, EvasionPerturbation p) {
  const auto idx = static_cast<std::size_t>(c);
  HMD_REQUIRE(idx < kNumAppClasses, "EvasionPlan: invalid class");
  by_class_[idx] = std::make_shared<const EvasionPerturbation>(std::move(p));
}

std::shared_ptr<const EvasionPerturbation> EvasionPlan::find(
    AppClass c) const {
  const auto idx = static_cast<std::size_t>(c);
  HMD_REQUIRE(idx < kNumAppClasses, "EvasionPlan: invalid class");
  return by_class_[idx];
}

bool EvasionPlan::empty() const {
  return std::all_of(by_class_.begin(), by_class_.end(),
                     [](const auto& p) { return p == nullptr; });
}

std::uint64_t EvasionPlan::fingerprint() const {
  std::uint64_t h = kFnvOffset;
  for (std::size_t c = 0; c < kNumAppClasses; ++c) {
    if (by_class_[c] == nullptr) continue;
    h = fnv1a_mix(h, static_cast<std::uint64_t>(c));
    h = fnv1a_mix(h, by_class_[c]->fingerprint());
  }
  return h;
}

perf::CollectorConfig default_probe_collector() {
  perf::CollectorConfig cfg;
  cfg.num_windows = 4;
  cfg.warmup_windows = 2;
  cfg.ops_per_window = 2000;
  return cfg;
}

Result<void> EvasionConfig::try_validate() const {
  if (iterations == 0)
    return ErrorInfo(ErrCode::kPrecondition,
                     "EvasionConfig.iterations: must be >= 1");
  if (probe_samples == 0)
    return ErrorInfo(ErrCode::kPrecondition,
                     "EvasionConfig.probe_samples: must be >= 1");
  if (!(step > 0.0 && step < 1.0))
    return ErrorInfo(ErrCode::kPrecondition,
                     "EvasionConfig.step: must be in (0, 1)");
  if (collector.num_windows == 0)
    return ErrorInfo(ErrCode::kPrecondition,
                     "EvasionConfig.collector.num_windows: must be >= 1");
  return std::move(budget.try_validate()).with_context("EvasionConfig");
}

namespace {

/// Mean surrogate P(malware) over probe instantiations of `family` under
/// `perturbation`. Probes run the full sandbox -> core -> collector
/// pipeline that dataset builds use, including the default container
/// noise model and the builder's noise-seed salt.
double evasion_objective(AppClass family, const ml::Classifier& surrogate,
                         const EvasionConfig& config,
                         const EvasionPerturbation& perturbation,
                         const std::vector<std::uint64_t>& probe_seeds) {
  const auto shared =
      std::make_shared<const EvasionPerturbation>(perturbation);
  double sum = 0.0;
  std::size_t windows = 0;
  std::vector<double> features;
  for (std::uint64_t probe_seed : probe_seeds) {
    SampleRecord rec;
    rec.id = "evasion-probe";
    rec.label = family;
    rec.seed = probe_seed;
    rec.perturbation = shared;
    Sandbox sandbox(rec);
    hwsim::Core core(hwsim::CoreConfig{},
                     hwsim::MemoryHierarchy::miniature());
    const perf::HpcCollector collector(config.collector);
    const auto samples =
        collector.collect(core, sandbox, probe_seed ^ 0xab5e11);
    for (const perf::HpcSample& w : samples) {
      features.clear();
      if (config.feature_subset.empty()) {
        features.assign(w.counts.begin(), w.counts.end());
      } else {
        for (std::size_t idx : config.feature_subset) {
          HMD_REQUIRE(idx < w.counts.size(),
                      "EvasionConfig.feature_subset index out of range");
          features.push_back(w.counts[idx]);
        }
      }
      sum += surrogate.distribution(features)[1];
      ++windows;
    }
  }
  return sum / static_cast<double>(windows);
}

}  // namespace

EvasionResult evade_family(AppClass family, const ml::Classifier& surrogate,
                           const EvasionConfig& config) {
  config.validate();
  HMD_REQUIRE(is_malware(family), "evade_family: family must be malware");
  HMD_REQUIRE(surrogate.num_classes() == 2,
              "evade_family: surrogate must be a binary classifier");

  // Probe sub-seeds are fixed up front from the config seed so every
  // candidate is scored on the same instantiations.
  std::vector<std::uint64_t> probe_seeds;
  probe_seeds.reserve(config.probe_samples);
  std::uint64_t chain = config.seed ^ 0xe7a5'1011'5eed'0a11ull;
  for (std::size_t i = 0; i < config.probe_samples; ++i)
    probe_seeds.push_back(splitmix64(chain));

  const std::size_t num_phases = class_archetype(family).phases.size();
  const std::size_t num_factor_knobs = num_phases * kKnobsPerPhase;

  EvasionResult result;
  result.perturbation.factors.assign(num_factor_knobs, 1.0);
  result.clean_score = evasion_objective(family, surrogate, config,
                                         result.perturbation, probe_seeds);
  result.evaluations = 1;

  double best = result.clean_score;
  const double lo = 1.0 - config.budget.max_rel_step;
  const double hi = 1.0 + config.budget.max_rel_step;

  // Coordinates are visited in seeded random order, one full pass after
  // another (the extra index is the facade weight). Independent uniform
  // picks would leave many knobs untouched whenever iterations is of the
  // same order as the knob count — and reach the facade, the single most
  // effective knob, only with probability 1/(n+1) per iteration.
  std::vector<std::size_t> order(num_factor_knobs + 1);
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  Rng rng(config.seed);
  for (std::size_t iter = 0; iter < config.iterations; ++iter) {
    // One coordinate per iteration; all rng draws happen unconditionally
    // so the search trajectory is a pure function of the seed.
    if (iter % order.size() == 0) rng.shuffle(order);
    const std::size_t k = order[iter % order.size()];
    const double magnitude = config.step * rng.uniform(0.5, 1.5);
    for (const double direction : {1.0, -1.0}) {
      EvasionPerturbation candidate = result.perturbation;
      if (k == num_factor_knobs) {
        candidate.facade_weight =
            std::clamp(candidate.facade_weight + direction * magnitude,
                       0.0, config.budget.max_facade_weight);
        if (candidate.facade_weight == result.perturbation.facade_weight)
          continue;
      } else {
        candidate.factors[k] =
            std::clamp(candidate.factors[k] + direction * magnitude, lo, hi);
        if (candidate.factors[k] == result.perturbation.factors[k]) continue;
      }
      const double score = evasion_objective(family, surrogate, config,
                                             candidate, probe_seeds);
      ++result.evaluations;
      if (score < best) {
        best = score;
        result.perturbation = std::move(candidate);
        ++result.accepted_steps;
        break;
      }
    }
  }

  result.evaded_score = best;
  return result;
}

}  // namespace hmd::workload
