// The labelled sample database.
//
// The thesis downloads >3000 malware samples from virusshare.com, labels
// them via virustotal.com, and adds benign programs, yielding the Table 1
// composition (452 backdoor / 324 rootkit / 1169 trojan / 650 virus /
// 149 worm / 326 benign = 3070). This module reproduces that registry
// synthetically: each record carries a VirusShare-style identifier, a
// VirusTotal-style label with AV-detection metadata, and the seed from which
// its behaviour profile is instantiated.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "util/rng.hpp"
#include "workload/app_class.hpp"
#include "workload/behavior_profile.hpp"
#include "workload/evasion.hpp"

namespace hmd::workload {

/// One application sample in the database.
struct SampleRecord {
  std::string id;          ///< e.g. "VirusShare_0f3a..." or "benign_firefox_12"
  AppClass label = AppClass::kBenign;
  std::uint64_t seed = 0;  ///< instantiation seed for the behaviour profile
  int av_positives = 0;    ///< VirusTotal-style detections (out of av_total)
  int av_total = 0;
  /// Adversarial perturbation applied on top of the instantiated profile
  /// (null for clean samples — the default).
  std::shared_ptr<const EvasionPerturbation> perturbation;

  /// The per-sample behaviour profile (deterministic in `seed` and the
  /// attached perturbation).
  BehaviorProfile profile() const;
};

/// Per-class sample counts.
struct DatabaseComposition {
  std::vector<std::pair<AppClass, std::size_t>> counts;

  std::size_t total() const;
  /// Table 1 of the thesis: 452/324/1169/650/149 malware + 326 benign.
  static DatabaseComposition paper_table1();
  /// Table 1 scaled by `factor` (ceil, at least 2 per class) — for tests
  /// and quick experiments.
  static DatabaseComposition scaled(double factor);
};

/// The labelled database: generation, class queries, composition stats.
class SampleDatabase {
 public:
  /// Builds a database with the given composition. Deterministic in `seed`.
  static SampleDatabase generate(const DatabaseComposition& composition,
                                 std::uint64_t seed);

  /// As above, attaching `plan`'s per-class perturbations to the records.
  /// The identity/seed/AV metadata draw sequence is unchanged: a plan
  /// shapes the *footprints* of the same samples, it never changes which
  /// samples exist.
  static SampleDatabase generate(const DatabaseComposition& composition,
                                 std::uint64_t seed,
                                 const EvasionPlan& plan);

  const std::vector<SampleRecord>& samples() const { return samples_; }
  std::size_t size() const { return samples_.size(); }

  /// All samples with the given label.
  std::vector<const SampleRecord*> by_class(AppClass c) const;
  std::size_t count(AppClass c) const;

  /// Class shares (Fig. 6 of the thesis), malware-only when
  /// `malware_only` is set (as the paper's pie chart is).
  std::vector<std::pair<AppClass, double>> distribution(
      bool malware_only) const;

 private:
  std::vector<SampleRecord> samples_;
};

}  // namespace hmd::workload
