#include "workload/trace_generator.hpp"

#include "util/error.hpp"

namespace hmd::workload {

using hwsim::MicroOp;
using hwsim::OpKind;

TraceGenerator::TraceGenerator(BehaviorProfile profile, std::uint64_t seed)
    : profile_(std::move(profile)),
      phase_weights_(profile_.normalized_weights()),
      rng_(seed) {
  // Place code and data in disjoint seed-derived segments (1 GiB apart).
  std::uint64_t s = seed;
  code_base_ = 0x400000 + (splitmix64(s) % 1024) * 0x10000;
  data_base_ = 0x40000000 + (splitmix64(s) % 4096) * 0x40000;
  pc_ = code_base_;
  enter_next_phase();
}

void TraceGenerator::enter_next_phase() {
  phase_index_ = rng_.categorical(phase_weights_);
  // Phase runs are short relative to a sampling window, so each window
  // reflects the profile's phase mixture (a real 10 ms window covers tens
  // of milliseconds' worth of alternating application phases).
  phase_ops_left_ = 128 + rng_.uniform_index(256);
  loop_count_left_ = 0;
  // Phase change often means a fresh region of code.
  pc_ = random_code_target(/*far=*/true);
}

std::uint64_t TraceGenerator::code_limit() const {
  return code_base_ + static_cast<std::uint64_t>(phase().code_pages) * kPageBytes;
}

std::uint64_t TraceGenerator::random_code_target(bool far) {
  const std::uint64_t span =
      static_cast<std::uint64_t>(phase().code_pages) * kPageBytes;
  if (far) {
    // Anywhere in the code footprint, 4-byte aligned.
    return code_base_ + (rng_.uniform_index(span) & ~std::uint64_t{3});
  }
  // Near target: within +-2 KiB of the current pc, clamped to the footprint.
  const std::int64_t offset = rng_.uniform_int(-2048, 2048) & ~std::int64_t{3};
  std::int64_t t = static_cast<std::int64_t>(pc_) + offset;
  const auto lo = static_cast<std::int64_t>(code_base_);
  const auto hi = static_cast<std::int64_t>(code_base_ + span - 4);
  if (t < lo) t = lo;
  if (t > hi) t = hi;
  return static_cast<std::uint64_t>(t);
}

std::uint64_t TraceGenerator::data_address() {
  const PhaseParams& p = phase();
  if (rng_.bernoulli(p.hot_frac)) {
    const std::uint64_t span =
        static_cast<std::uint64_t>(p.hot_pages) * kPageBytes;
    return data_base_ + (rng_.uniform_index(span) & ~std::uint64_t{7});
  }
  const std::uint64_t span =
      static_cast<std::uint64_t>(p.data_pages) * kPageBytes;
  if (rng_.bernoulli(p.stream_frac)) {
    // Sequential streaming through the working set, one line per step.
    stream_cursor_ = (stream_cursor_ + 64) % span;
    return data_base_ + stream_cursor_;
  }
  return data_base_ + (rng_.uniform_index(span) & ~std::uint64_t{7});
}

MicroOp TraceGenerator::next() {
  if (phase_ops_left_ == 0) enter_next_phase();
  --phase_ops_left_;

  const PhaseParams& p = phase();
  MicroOp op;
  op.pc = pc_;

  const double r = rng_.uniform();
  if (r < p.load_frac) {
    op.kind = OpKind::kLoad;
    op.addr = data_address();
    pc_ += 4;
  } else if (r < p.load_frac + p.store_frac) {
    op.kind = OpKind::kStore;
    op.addr = data_address();
    pc_ += 4;
  } else if (r < p.load_frac + p.store_frac + p.branch_frac) {
    op.kind = OpKind::kBranch;
    op.conditional = rng_.bernoulli(p.cond_branch_frac);
    if (op.conditional) {
      if (loop_count_left_ > 0) {
        // Inside an emulated loop: the SAME loop-closing branch (fixed pc)
        // jumps back to the loop head until the trip count runs out — the
        // highly predictable pattern real loops give the BPU.
        op.pc = loop_branch_pc_;
        --loop_count_left_;
        op.taken = loop_count_left_ > 0;
        op.target = loop_head_pc_;
      } else if (rng_.bernoulli(p.branch_bias)) {
        // Start a new loop: 8..128 iterations closed by this branch.
        loop_count_left_ = 8 + static_cast<std::uint32_t>(
                                   rng_.uniform_index(120));
        loop_head_pc_ = random_code_target(/*far=*/false);
        loop_branch_pc_ = op.pc;
        op.taken = true;
        op.target = loop_head_pc_;
      } else {
        // Unpatterned data-dependent branch.
        op.taken = rng_.bernoulli(0.5);
        op.target = random_code_target(rng_.bernoulli(p.jump_spread));
      }
    } else {
      // Unconditional jump / call / return.
      op.taken = true;
      op.target = random_code_target(rng_.bernoulli(p.jump_spread));
    }
    pc_ = op.taken ? op.target : pc_ + 4;
  } else {
    op.kind = OpKind::kAlu;
    pc_ += 4;
  }

  // Keep the pc inside the footprint (sequential fall-through wrap).
  if (pc_ >= code_limit()) pc_ = code_base_;
  return op;
}

void TraceGenerator::fill(std::span<MicroOp> out) {
  for (MicroOp& op : out) op = next();
}

std::vector<MicroOp> TraceGenerator::generate(std::size_t n) {
  std::vector<MicroOp> ops(n);
  fill(ops);
  return ops;
}

}  // namespace hmd::workload
