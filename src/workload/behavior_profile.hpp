// Generative behaviour model for application classes.
//
// The paper executes real malware samples and benign programs; the detector
// only ever observes 16 HPC values per 10 ms window. This module substitutes
// real binaries with parameterized behaviour archetypes — one per class —
// that encode the *published qualitative microarchitectural signatures* of
// each malware family (see DESIGN.md):
//
//   backdoor — tight poll loops: branchy, highly predictable, tiny footprint
//   rootkit  — hooking/interposition: indirect control flow over a large code
//              footprint → icache/iTLB/branch-miss pressure
//   trojan   — benign facade with keylogging + exfiltration bursts (the
//              family that overlaps benign the most)
//   virus    — file scanning/infection: streaming reads over large data
//   worm     — self-replication: bulk memory copies with working sets beyond
//              the LLC → node (DRAM) load/store traffic
//   benign   — a mixture of compute / IO / idle shapes with high variance
//              across samples (many different installed programs)
//
// Each *sample* is an instantiation of its class archetype with per-sample
// parameter jitter; a fraction of malware samples additionally blend in a
// benign facade phase ("stealthy" variants), which keeps classifiers off the
// 100 %-accuracy ceiling just as real polymorphic samples do.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "util/rng.hpp"
#include "workload/app_class.hpp"

namespace hmd::workload {

/// One execution phase of an application.
struct PhaseParams {
  std::string name;
  double weight = 1.0;  ///< relative share of execution time

  // Instruction mix (fractions of retired ops; remainder is ALU).
  double load_frac = 0.25;
  double store_frac = 0.10;
  double branch_frac = 0.15;

  // Control-flow behaviour.
  double cond_branch_frac = 0.8;  ///< of branches, conditional share
  double branch_bias = 0.9;       ///< predictable (loop-like) branch share
  double jump_spread = 0.1;       ///< far-target share for unpatterned jumps

  // Code footprint.
  std::uint32_t code_pages = 16;  ///< instruction footprint, 4 KiB pages

  // Data footprint and locality.
  std::uint32_t data_pages = 256;  ///< working set, 4 KiB pages
  std::uint32_t hot_pages = 16;    ///< hot-subset size
  double hot_frac = 0.7;           ///< accesses hitting the hot subset
  double stream_frac = 0.4;        ///< sequential share of cold accesses

  /// Clamp fractions to valid ranges and footprints to sane minima.
  void sanitize();
};

/// A complete behaviour description of one application sample.
struct BehaviorProfile {
  AppClass app_class = AppClass::kBenign;
  std::vector<PhaseParams> phases;

  /// Phase weights normalized to sum to 1.
  std::vector<double> normalized_weights() const;
};

/// The archetype profile for a class (deterministic; no jitter).
BehaviorProfile class_archetype(AppClass c);

/// Instantiate a per-sample profile: multiplicative jitter on every numeric
/// parameter, plus (for malware, with probability `stealth_prob`) blending a
/// benign facade phase into the profile.
BehaviorProfile instantiate_sample_profile(AppClass c, Rng& rng,
                                           double stealth_prob = 0.15);

}  // namespace hmd::workload
