#include "workload/mibench.hpp"

#include "util/error.hpp"
#include "util/strings.hpp"

namespace hmd::workload {

namespace {

BehaviorProfile qsort_profile() {
  // Recursive partitioning: comparison loads over the working set with
  // data-dependent (hard-to-predict) comparison branches.
  PhaseParams partition{.name = "partition", .weight = 0.7,
                        .load_frac = 0.30, .store_frac = 0.14,
                        .branch_frac = 0.22,
                        .cond_branch_frac = 0.85, .branch_bias = 0.65,
                        .jump_spread = 0.05,
                        .code_pages = 4,
                        .data_pages = 48, .hot_pages = 8, .hot_frac = 0.55,
                        .stream_frac = 0.35};
  PhaseParams recurse{.name = "recurse", .weight = 0.3,
                      .load_frac = 0.22, .store_frac = 0.10,
                      .branch_frac = 0.25,
                      .cond_branch_frac = 0.70, .branch_bias = 0.80,
                      .jump_spread = 0.10,
                      .code_pages = 6,
                      .data_pages = 24, .hot_pages = 6, .hot_frac = 0.70,
                      .stream_frac = 0.20};
  return {.app_class = AppClass::kBenign, .phases = {partition, recurse}};
}

BehaviorProfile dijkstra_profile() {
  // Priority-queue relaxations: irregular pointer loads, mispredicting
  // comparison branches, moderate working set.
  PhaseParams relax{.name = "relax", .weight = 1.0,
                    .load_frac = 0.34, .store_frac = 0.10,
                    .branch_frac = 0.20,
                    .cond_branch_frac = 0.80, .branch_bias = 0.60,
                    .jump_spread = 0.08,
                    .code_pages = 6,
                    .data_pages = 40, .hot_pages = 6, .hot_frac = 0.40,
                    .stream_frac = 0.10};
  return {.app_class = AppClass::kBenign, .phases = {relax}};
}

BehaviorProfile crc32_profile() {
  // Byte-stream checksum: tiny loop, one table, near-perfect prediction.
  PhaseParams loop{.name = "crc-loop", .weight = 1.0,
                   .load_frac = 0.35, .store_frac = 0.02,
                   .branch_frac = 0.18,
                   .cond_branch_frac = 0.95, .branch_bias = 0.99,
                   .jump_spread = 0.0,
                   .code_pages = 1,
                   .data_pages = 16, .hot_pages = 1, .hot_frac = 0.55,
                   .stream_frac = 0.95};
  return {.app_class = AppClass::kBenign, .phases = {loop}};
}

BehaviorProfile jpeg_profile() {
  // Blocked DCT + Huffman tables: compute-heavy with table lookups.
  PhaseParams dct{.name = "dct", .weight = 0.6,
                  .load_frac = 0.26, .store_frac = 0.12,
                  .branch_frac = 0.10,
                  .cond_branch_frac = 0.85, .branch_bias = 0.95,
                  .jump_spread = 0.02,
                  .code_pages = 10,
                  .data_pages = 24, .hot_pages = 6, .hot_frac = 0.75,
                  .stream_frac = 0.50};
  PhaseParams huffman{.name = "huffman", .weight = 0.4,
                      .load_frac = 0.30, .store_frac = 0.10,
                      .branch_frac = 0.24,
                      .cond_branch_frac = 0.85, .branch_bias = 0.70,
                      .jump_spread = 0.04,
                      .code_pages = 8,
                      .data_pages = 12, .hot_pages = 4, .hot_frac = 0.85,
                      .stream_frac = 0.30};
  return {.app_class = AppClass::kBenign, .phases = {dct, huffman}};
}

BehaviorProfile susan_profile() {
  // 2-D stencil smoothing: streaming loads with high spatial locality.
  PhaseParams stencil{.name = "stencil", .weight = 1.0,
                      .load_frac = 0.38, .store_frac = 0.12,
                      .branch_frac = 0.12,
                      .cond_branch_frac = 0.90, .branch_bias = 0.96,
                      .jump_spread = 0.01,
                      .code_pages = 4,
                      .data_pages = 96, .hot_pages = 8, .hot_frac = 0.35,
                      .stream_frac = 0.90};
  return {.app_class = AppClass::kBenign, .phases = {stencil}};
}

BehaviorProfile sha_profile() {
  // Crypto rounds: almost pure ALU, tiny state, perfect loops.
  PhaseParams rounds{.name = "rounds", .weight = 1.0,
                     .load_frac = 0.12, .store_frac = 0.04,
                     .branch_frac = 0.10,
                     .cond_branch_frac = 0.95, .branch_bias = 0.99,
                     .jump_spread = 0.0,
                     .code_pages = 2,
                     .data_pages = 2, .hot_pages = 1, .hot_frac = 0.95,
                     .stream_frac = 0.40};
  return {.app_class = AppClass::kBenign, .phases = {rounds}};
}

}  // namespace

const std::vector<std::string>& mibench_kernels() {
  static const std::vector<std::string> kKernels = {
      "qsort", "dijkstra", "crc32", "jpeg", "susan", "sha"};
  return kKernels;
}

BehaviorProfile mibench_profile(const std::string& kernel) {
  if (kernel == "qsort") return qsort_profile();
  if (kernel == "dijkstra") return dijkstra_profile();
  if (kernel == "crc32") return crc32_profile();
  if (kernel == "jpeg") return jpeg_profile();
  if (kernel == "susan") return susan_profile();
  if (kernel == "sha") return sha_profile();
  throw PreconditionError("unknown MiBench kernel: " + kernel);
}

std::vector<MibenchInstance> mibench_suite(std::size_t per_kernel,
                                           std::uint64_t seed) {
  HMD_REQUIRE(per_kernel >= 1, "mibench_suite: per_kernel must be >= 1");
  std::vector<MibenchInstance> suite;
  suite.reserve(mibench_kernels().size() * per_kernel);
  Rng rng(seed);
  for (const std::string& kernel : mibench_kernels()) {
    for (std::size_t i = 0; i < per_kernel; ++i) {
      const BehaviorProfile archetype = mibench_profile(kernel);
      // Jitter every instance (input sizes differ run to run), using the
      // same machinery as sample instantiation but milder.
      BehaviorProfile jittered = archetype;
      for (PhaseParams& p : jittered.phases) {
        p.load_frac *= rng.uniform(0.9, 1.1);
        p.store_frac *= rng.uniform(0.9, 1.1);
        p.branch_frac *= rng.uniform(0.9, 1.1);
        p.data_pages = static_cast<std::uint32_t>(
            std::max(1.0, p.data_pages * rng.uniform(0.7, 1.5)));
        p.hot_pages = std::min(p.hot_pages, p.data_pages);
        p.sanitize();
      }
      suite.push_back({.name = format("%s_%02zu", kernel.c_str(), i),
                       .profile = std::move(jittered),
                       .seed = rng.next_u64()});
    }
  }
  return suite;
}

}  // namespace hmd::workload
