// Adversarial evasion of HPC-based detectors (Kuruvila et al.,
// arXiv:2005.03644): shape a malware family's hardware-counter footprint
// toward the benign distribution while preserving the payload-defining
// structure of its behaviour profile.
//
// The attack operates on the *generative* parameters, not on counter
// values directly: an EvasionPerturbation multiplies the numeric knobs of
// the family archetype's phases (instruction mix, branch behaviour,
// footprints, locality) by bounded per-knob factors and may blend in a
// benign "evasion-facade" phase — the knobs an author of a real evasive
// variant could actually turn. Payload structure is preserved by
// construction: the archetype's phases are never removed or reordered,
// only rescaled within the declared EvasionBudget.
//
// evade_family() searches for such a perturbation with a seeded,
// gradient-free coordinate hill-climb scored against a frozen surrogate
// classifier: each candidate is evaluated by instantiating probe samples,
// running them through the same sandbox -> simulated core -> HPC collector
// pipeline that builds training datasets, and averaging the surrogate's
// P(malware) over the collected windows. Fixed seed => identical
// perturbation, bit-for-bit.
//
// ProfileSpec is the fluent builder that composes family, seed, stealth
// probability and an optional perturbation into a sample profile; it is
// the single instantiation path used by SampleRecord::profile(), so a
// perturbation attached to a database record flows through Sandbox and
// DatasetBuilder unchanged.
#pragma once

#include <array>
#include <cstdint>
#include <memory>
#include <vector>

#include "perf/collector.hpp"
#include "util/result.hpp"
#include "util/rng.hpp"
#include "workload/app_class.hpp"
#include "workload/behavior_profile.hpp"

namespace hmd::ml {
class Classifier;
}  // namespace hmd::ml

namespace hmd::workload {

/// Number of numeric knobs EvasionPerturbation controls per phase
/// (every PhaseParams field except the name).
inline constexpr std::size_t kKnobsPerPhase = 12;

/// How far a perturbation may move the generative parameters. The budget
/// is what keeps the payload behaviour recognizable: factors stay within
/// [1 - max_rel_step, 1 + max_rel_step] and the facade share is capped.
struct EvasionBudget {
  /// Per-knob multiplicative bound: factors lie in [1 - b, 1 + b].
  double max_rel_step = 0.30;
  /// Cap on the normalized execution share of the blended benign facade.
  double max_facade_weight = 0.35;

  /// kPrecondition error naming the offending field, or success.
  Result<void> try_validate() const;
  /// Throwing wrapper around try_validate().
  void validate() const { try_validate().value(); }
};

/// A bounded perturbation of one family's generative parameters.
///
/// `factors` is a flat phases x kKnobsPerPhase array of multiplicative
/// factors applied to the archetype-derived phases in declaration order
/// (weight, load_frac, store_frac, branch_frac, cond_branch_frac,
/// branch_bias, jump_spread, code_pages, data_pages, hot_pages, hot_frac,
/// stream_frac). Phases beyond factors.size() / kKnobsPerPhase — e.g. a
/// jitter-added stealth facade — pass through untouched. An empty
/// perturbation is the identity.
struct EvasionPerturbation {
  std::vector<double> factors;
  /// Normalized execution share of the appended benign facade phase
  /// (0 = no facade).
  double facade_weight = 0.0;

  bool empty() const { return factors.empty() && facade_weight <= 0.0; }

  /// Applies the perturbation: rescale knobs, re-sanitize each phase,
  /// append the facade phase when facade_weight > 0. The base profile's
  /// phases are never removed or reordered.
  BehaviorProfile apply(const BehaviorProfile& base) const;

  /// Checks the perturbation lies within `budget` (kPrecondition error
  /// naming the offending field otherwise).
  Result<void> try_validate(const EvasionBudget& budget) const;

  /// Stable FNV-1a fingerprint of the perturbation contents.
  std::uint64_t fingerprint() const;
};

/// Fluent builder for per-sample behaviour profiles — the declarative
/// replacement for the positional (class, rng, stealth_prob) plumbing:
///
///   ProfileSpec{}.family(AppClass::kVirus).seed(42)
///                .perturb(perturbation).instantiate()
///
/// instantiate() is deterministic in the builder's state and, with no
/// perturbation attached, byte-identical to the legacy
/// instantiate_sample_profile(family, Rng(seed)) path.
class ProfileSpec {
 public:
  ProfileSpec& family(AppClass c) { family_ = c; return *this; }
  ProfileSpec& seed(std::uint64_t s) { seed_ = s; return *this; }
  ProfileSpec& stealth_prob(double p) { stealth_prob_ = p; return *this; }
  ProfileSpec& perturb(std::shared_ptr<const EvasionPerturbation> p) {
    perturbation_ = std::move(p);
    return *this;
  }

  AppClass family() const { return family_; }
  std::uint64_t seed() const { return seed_; }
  const std::shared_ptr<const EvasionPerturbation>& perturbation() const {
    return perturbation_;
  }

  /// Instantiate the sample profile (jitter, optional stealth facade,
  /// then the perturbation, if any).
  BehaviorProfile instantiate() const;

 private:
  AppClass family_ = AppClass::kBenign;
  std::uint64_t seed_ = 0;
  double stealth_prob_ = 0.15;
  std::shared_ptr<const EvasionPerturbation> perturbation_;
};

/// Per-family perturbations to apply across a generated database —
/// the "adversarial campaign" attached to SampleDatabase::generate.
class EvasionPlan {
 public:
  /// Attach a perturbation to every sample of class `c`.
  void set(AppClass c, EvasionPerturbation p);

  /// The perturbation for class `c`, or null.
  std::shared_ptr<const EvasionPerturbation> find(AppClass c) const;

  bool empty() const;

  /// Stable FNV-1a fingerprint of the whole plan (for dataset cache keys).
  std::uint64_t fingerprint() const;

 private:
  std::array<std::shared_ptr<const EvasionPerturbation>, kNumAppClasses>
      by_class_{};
};

/// Probe-collection shape for evade_family: few short windows, enough to
/// estimate the surrogate's view of a candidate cheaply.
perf::CollectorConfig default_probe_collector();

/// Search configuration for evade_family. Deterministic in `seed`.
struct EvasionConfig {
  std::uint64_t seed = 0x5eed;
  /// Coordinate-search iterations (each tries up to two directions).
  std::size_t iterations = 48;
  /// Profile instantiations averaged per candidate evaluation.
  std::size_t probe_samples = 3;
  /// Base coordinate step, scaled by a seeded U(0.5, 1.5) per iteration.
  double step = 0.12;
  EvasionBudget budget;
  /// Probe collection shape; should mirror the config the surrogate's
  /// training dataset was built with (probes use the default sandbox
  /// noise model, as dataset builds do).
  perf::CollectorConfig collector = default_probe_collector();
  /// Feature indices the surrogate consumes (empty = all collected
  /// events, in collector order).
  std::vector<std::size_t> feature_subset;

  /// kPrecondition error naming the offending field, or success.
  Result<void> try_validate() const;
  void validate() const { try_validate().value(); }
};

/// Outcome of an evasion search.
struct EvasionResult {
  EvasionPerturbation perturbation;
  /// Mean surrogate P(malware) of the unperturbed family.
  double clean_score = 0.0;
  /// Mean surrogate P(malware) under the returned perturbation
  /// (<= clean_score: only improving steps are accepted).
  double evaded_score = 0.0;
  std::size_t evaluations = 0;     ///< candidate objective evaluations
  std::size_t accepted_steps = 0;  ///< candidates that improved the score
};

/// Seeded coordinate hill-climb: find a within-budget perturbation of
/// `family`'s generative parameters that minimizes the frozen binary
/// `surrogate`'s mean P(malware) over probe windows. Requires
/// is_malware(family) and surrogate.num_classes() == 2.
EvasionResult evade_family(AppClass family, const ml::Classifier& surrogate,
                           const EvasionConfig& config);

}  // namespace hmd::workload
