// Application classes: the five malware families from the thesis plus
// benign. Table 1 / Figures 3 and 6 use exactly these.
#pragma once

#include <array>
#include <cstdint>
#include <string_view>

namespace hmd::workload {

/// Class label for an application sample.
enum class AppClass : std::uint8_t {
  kBenign = 0,
  kBackdoor,
  kRootkit,
  kTrojan,
  kVirus,
  kWorm,
  kCount  // sentinel
};

inline constexpr std::size_t kNumAppClasses =
    static_cast<std::size_t>(AppClass::kCount);

/// Number of malware families (excludes benign).
inline constexpr std::size_t kNumMalwareClasses = kNumAppClasses - 1;

/// Human-readable name ("benign", "backdoor", ...).
std::string_view app_class_name(AppClass c);

/// Inverse of app_class_name; throws hmd::ParseError for unknown names.
AppClass app_class_from_name(std::string_view name);

/// All classes, benign first.
const std::array<AppClass, kNumAppClasses>& all_app_classes();

/// The five malware families (no benign).
const std::array<AppClass, kNumMalwareClasses>& malware_classes();

/// True for any class other than kBenign.
bool is_malware(AppClass c);

}  // namespace hmd::workload
