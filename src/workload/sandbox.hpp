// LXC-style sandboxed execution of one sample.
//
// The thesis runs each malware inside a Linux container so that (a) the host
// is not infected and (b) host activity does not bias the measured HPC
// values. The simulator's analogue: each run gets a freshly reset core
// (no cross-sample microarchitectural state), and a small, configurable
// amount of residual container noise — background ops from an idle-system
// profile interleaved into the sample's own stream — models the isolation
// being good but not perfect.
#pragma once

#include <cstdint>

#include "hwsim/micro_op.hpp"
#include "workload/sample_database.hpp"
#include "workload/trace_generator.hpp"

namespace hmd::workload {

/// Sandbox (container) configuration.
struct SandboxConfig {
  /// Fraction of retired ops contributed by container background activity.
  double host_noise_frac = 0.03;
  /// Seed salt for the noise stream (combined with the sample seed).
  std::uint64_t noise_salt = 0x5b1dc0de;
};

/// An op source that interleaves the sample's trace with container noise.
/// One Sandbox per run; feed its ops to a freshly reset hwsim::Core.
class Sandbox {
 public:
  Sandbox(const SampleRecord& sample, SandboxConfig config = {});

  /// Next retired op (sample trace or background noise).
  hwsim::MicroOp next();

  const SampleRecord& sample() const { return sample_; }

 private:
  SampleRecord sample_;
  SandboxConfig config_;
  TraceGenerator app_trace_;
  TraceGenerator noise_trace_;
  Rng mix_rng_;
};

}  // namespace hmd::workload
