#include "workload/sandbox.hpp"

#include "util/error.hpp"

namespace hmd::workload {

namespace {
BehaviorProfile container_noise_profile() {
  // Idle container daemons: tiny, branchy, predictable.
  BehaviorProfile p = class_archetype(AppClass::kBenign);
  // Keep only the idle-like last phase.
  p.phases.erase(p.phases.begin(), p.phases.end() - 1);
  p.phases.front().weight = 1.0;
  return p;
}
}  // namespace

Sandbox::Sandbox(const SampleRecord& sample, SandboxConfig config)
    : sample_(sample),
      config_(config),
      app_trace_(sample.profile(), sample.seed),
      noise_trace_(container_noise_profile(),
                   sample.seed ^ config.noise_salt),
      mix_rng_(sample.seed ^ (config.noise_salt * 0x9e3779b97f4a7c15ull)) {
  HMD_REQUIRE(config_.host_noise_frac >= 0.0 && config_.host_noise_frac < 1.0,
              "host_noise_frac must be in [0, 1)");
}

hwsim::MicroOp Sandbox::next() {
  if (config_.host_noise_frac > 0.0 &&
      mix_rng_.bernoulli(config_.host_noise_frac))
    return noise_trace_.next();
  return app_trace_.next();
}

}  // namespace hmd::workload
