#include "workload/sample_database.hpp"

#include <algorithm>
#include <cmath>

#include "util/error.hpp"
#include "util/strings.hpp"

namespace hmd::workload {

BehaviorProfile SampleRecord::profile() const {
  return ProfileSpec{}
      .family(label)
      .seed(seed)
      .perturb(perturbation)
      .instantiate();
}

std::size_t DatabaseComposition::total() const {
  std::size_t t = 0;
  for (const auto& [cls, n] : counts) t += n;
  return t;
}

DatabaseComposition DatabaseComposition::paper_table1() {
  return {.counts = {{AppClass::kBackdoor, 452},
                     {AppClass::kRootkit, 324},
                     {AppClass::kTrojan, 1169},
                     {AppClass::kVirus, 650},
                     {AppClass::kWorm, 149},
                     {AppClass::kBenign, 326}}};
}

DatabaseComposition DatabaseComposition::scaled(double factor) {
  HMD_REQUIRE(factor > 0.0, "scale factor must be positive");
  DatabaseComposition comp = paper_table1();
  for (auto& [cls, n] : comp.counts) {
    n = std::max<std::size_t>(
        2, static_cast<std::size_t>(
               std::ceil(static_cast<double>(n) * factor)));
  }
  return comp;
}

SampleDatabase SampleDatabase::generate(
    const DatabaseComposition& composition, std::uint64_t seed) {
  return generate(composition, seed, EvasionPlan{});
}

SampleDatabase SampleDatabase::generate(
    const DatabaseComposition& composition, std::uint64_t seed,
    const EvasionPlan& plan) {
  HMD_REQUIRE(!composition.counts.empty(), "empty database composition");
  SampleDatabase db;
  Rng rng(seed);
  std::size_t benign_index = 0;
  for (const auto& [cls, n] : composition.counts) {
    for (std::size_t i = 0; i < n; ++i) {
      SampleRecord rec;
      rec.label = cls;
      rec.seed = rng.next_u64();
      if (is_malware(cls)) {
        // VirusShare-style hash id + VirusTotal-style detection counts.
        rec.id = format("VirusShare_%016llx",
                        static_cast<unsigned long long>(rec.seed));
        rec.av_total = 60 + static_cast<int>(rng.uniform_index(8));
        const double detect_rate = rng.uniform(0.55, 0.95);
        rec.av_positives = std::max(
            1, static_cast<int>(std::lround(detect_rate * rec.av_total)));
      } else {
        rec.id = format("benign_prog_%03zu", benign_index++);
        rec.av_total = 60 + static_cast<int>(rng.uniform_index(8));
        rec.av_positives = 0;
      }
      // Attached after the id/AV draws: a plan never shifts the RNG
      // sequence, so the sample registry is byte-identical to a clean run.
      rec.perturbation = plan.find(cls);
      db.samples_.push_back(std::move(rec));
    }
  }
  return db;
}

std::vector<const SampleRecord*> SampleDatabase::by_class(AppClass c) const {
  std::vector<const SampleRecord*> out;
  for (const auto& s : samples_)
    if (s.label == c) out.push_back(&s);
  return out;
}

std::size_t SampleDatabase::count(AppClass c) const {
  return static_cast<std::size_t>(
      std::count_if(samples_.begin(), samples_.end(),
                    [c](const SampleRecord& s) { return s.label == c; }));
}

std::vector<std::pair<AppClass, double>> SampleDatabase::distribution(
    bool malware_only) const {
  std::vector<std::pair<AppClass, double>> out;
  std::size_t denom = 0;
  for (const auto& s : samples_)
    if (!malware_only || is_malware(s.label)) ++denom;
  if (denom == 0) return out;
  for (AppClass c : all_app_classes()) {
    if (malware_only && !is_malware(c)) continue;
    out.emplace_back(c, static_cast<double>(count(c)) /
                            static_cast<double>(denom));
  }
  return out;
}

}  // namespace hmd::workload
