// Lowers a BehaviorProfile into the MicroOp stream the simulated core
// retires. This is where abstract behaviour (instruction mix, locality,
// branch predictability, footprints) becomes concrete fetch/load/store/
// branch addresses that exercise the cache/TLB/predictor models.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "hwsim/micro_op.hpp"
#include "util/rng.hpp"
#include "workload/behavior_profile.hpp"

namespace hmd::workload {

/// Stateful generator: call next() (or fill()) to stream ops indefinitely.
///
/// Address layout: each sample gets disjoint, seed-derived code and data
/// segments so different samples map differently onto cache sets, as
/// different binaries do.
class TraceGenerator {
 public:
  static constexpr std::uint64_t kPageBytes = 4096;

  TraceGenerator(BehaviorProfile profile, std::uint64_t seed);

  hwsim::MicroOp next();
  void fill(std::span<hwsim::MicroOp> out);
  /// Generates `n` ops into a fresh vector.
  std::vector<hwsim::MicroOp> generate(std::size_t n);

  const BehaviorProfile& profile() const { return profile_; }
  /// Index of the phase the generator is currently executing.
  std::size_t current_phase() const { return phase_index_; }

 private:
  BehaviorProfile profile_;
  std::vector<double> phase_weights_;
  Rng rng_;

  std::uint64_t code_base_;
  std::uint64_t data_base_;

  std::size_t phase_index_ = 0;
  std::uint64_t phase_ops_left_ = 0;

  std::uint64_t pc_;
  std::uint64_t stream_cursor_ = 0;

  // Loop emulation: a biased branch iterates `loop_count_left_` times.
  // The loop-closing branch instruction lives at a fixed pc
  // (`loop_branch_pc_`), as in real code, so the predictor/BTB can learn it.
  std::uint64_t loop_head_pc_ = 0;
  std::uint64_t loop_branch_pc_ = 0;
  std::uint32_t loop_count_left_ = 0;

  void enter_next_phase();
  const PhaseParams& phase() const { return profile_.phases[phase_index_]; }
  std::uint64_t code_limit() const;
  std::uint64_t random_code_target(bool far);
  std::uint64_t data_address();
};

}  // namespace hmd::workload
