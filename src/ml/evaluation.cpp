#include "ml/evaluation.hpp"

#include <ostream>
#include <sstream>

#include "util/error.hpp"
#include "util/metrics.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"
#include "util/trace.hpp"

namespace hmd::ml {

EvaluationResult::EvaluationResult(std::size_t num_classes,
                                   std::vector<std::string> class_names)
    : class_names_(std::move(class_names)),
      matrix_(num_classes * num_classes, 0) {
  HMD_REQUIRE(class_names_.size() == num_classes,
              "EvaluationResult: name/class count mismatch");
  HMD_REQUIRE(num_classes >= 2, "EvaluationResult: need at least two classes");
}

void EvaluationResult::record(std::size_t actual, std::size_t predicted) {
  const std::size_t k = num_classes();
  HMD_REQUIRE(actual < k && predicted < k,
              "EvaluationResult::record: class index out of range");
  ++matrix_[actual * k + predicted];
  ++total_;
  if (actual == predicted) ++correct_;
}

double EvaluationResult::accuracy() const {
  return total_ == 0 ? 0.0
                     : static_cast<double>(correct_) /
                           static_cast<double>(total_);
}

std::size_t EvaluationResult::confusion(std::size_t actual,
                                        std::size_t predicted) const {
  const std::size_t k = num_classes();
  HMD_REQUIRE(actual < k && predicted < k,
              "EvaluationResult::confusion: index out of range");
  return matrix_[actual * k + predicted];
}

double EvaluationResult::recall(std::size_t c) const {
  const std::size_t k = num_classes();
  HMD_REQUIRE(c < k, "recall: class out of range");
  std::size_t row = 0;
  for (std::size_t j = 0; j < k; ++j) row += matrix_[c * k + j];
  return row == 0 ? 0.0
                  : static_cast<double>(matrix_[c * k + c]) /
                        static_cast<double>(row);
}

double EvaluationResult::precision(std::size_t c) const {
  const std::size_t k = num_classes();
  HMD_REQUIRE(c < k, "precision: class out of range");
  std::size_t col = 0;
  for (std::size_t i = 0; i < k; ++i) col += matrix_[i * k + c];
  return col == 0 ? 0.0
                  : static_cast<double>(matrix_[c * k + c]) /
                        static_cast<double>(col);
}

double EvaluationResult::f1(std::size_t c) const {
  const double p = precision(c);
  const double r = recall(c);
  return p + r == 0.0 ? 0.0 : 2.0 * p * r / (p + r);
}

double EvaluationResult::macro_recall() const {
  const std::size_t k = num_classes();
  double s = 0.0;
  for (std::size_t c = 0; c < k; ++c) s += recall(c);
  return s / static_cast<double>(k);
}

double EvaluationResult::kappa() const {
  if (total_ == 0) return 0.0;
  const std::size_t k = num_classes();
  const double n = static_cast<double>(total_);
  double expected = 0.0;
  for (std::size_t c = 0; c < k; ++c) {
    double row = 0.0, col = 0.0;
    for (std::size_t j = 0; j < k; ++j) {
      row += static_cast<double>(matrix_[c * k + j]);
      col += static_cast<double>(matrix_[j * k + c]);
    }
    expected += (row / n) * (col / n);
  }
  const double observed = accuracy();
  return expected >= 1.0 ? 0.0 : (observed - expected) / (1.0 - expected);
}

std::string EvaluationResult::to_string() const {
  std::ostringstream os;
  os << "accuracy: " << accuracy() * 100.0 << "% (" << correct_ << "/"
     << total_ << "), kappa: " << kappa() << '\n';
  TextTable table("confusion matrix (rows = actual)");
  std::vector<std::string> header = {"actual\\pred"};
  for (const auto& name : class_names_) header.push_back(name);
  header.push_back("recall");
  table.set_header(header);
  const std::size_t k = num_classes();
  for (std::size_t a = 0; a < k; ++a) {
    std::vector<std::string> row = {class_names_[a]};
    for (std::size_t p = 0; p < k; ++p)
      row.push_back(std::to_string(matrix_[a * k + p]));
    std::ostringstream rec;
    rec.precision(3);
    rec << recall(a);
    row.push_back(rec.str());
    table.add_row(row);
  }
  os << table.to_string();
  return os.str();
}

std::vector<EvaluationReport::ClassMetrics> EvaluationReport::per_class()
    const {
  std::vector<ClassMetrics> rows;
  rows.reserve(num_classes());
  for (std::size_t c = 0; c < num_classes(); ++c)
    rows.push_back({class_names()[c], precision(c), recall(c), f1(c)});
  return rows;
}

std::string EvaluationReport::to_string() const {
  std::ostringstream os;
  if (!scheme.empty()) os << scheme << '\n';
  os << result.to_string();
  os.precision(3);
  os << "train: " << train_seconds * 1e3
     << " ms, predict: " << predict_seconds * 1e3 << " ms\n";
  return os.str();
}

void EvaluationReport::write_json(std::ostream& out) const {
  const std::size_t k = num_classes();
  out << "{\"scheme\": \"" << json_escape(scheme) << "\""
      << ", \"total\": " << total() << ", \"correct\": " << correct()
      << ", \"accuracy\": " << accuracy() << ", \"kappa\": " << kappa()
      << ", \"macro_recall\": " << macro_recall()
      << ", \"train_seconds\": " << train_seconds
      << ", \"predict_seconds\": " << predict_seconds << ", \"classes\": [";
  const auto rows = per_class();
  for (std::size_t c = 0; c < rows.size(); ++c) {
    if (c != 0) out << ", ";
    out << "{\"name\": \"" << json_escape(rows[c].name) << "\""
        << ", \"precision\": " << rows[c].precision
        << ", \"recall\": " << rows[c].recall << ", \"f1\": " << rows[c].f1
        << "}";
  }
  out << "], \"confusion\": [";
  for (std::size_t a = 0; a < k; ++a) {
    if (a != 0) out << ", ";
    out << "[";
    for (std::size_t p = 0; p < k; ++p) {
      if (p != 0) out << ", ";
      out << confusion(a, p);
    }
    out << "]";
  }
  out << "]}";
}

EvaluationReport evaluate(const Classifier& clf, const Dataset& test) {
  HMD_REQUIRE(!test.empty(), "evaluate: test set is empty");
  EvaluationReport report;
  report.scheme = clf.name();
  report.result = EvaluationResult(test.num_classes(),
                                   test.class_attribute().values());
  const std::size_t n = test.num_instances();
  {
    HMD_TRACE_SPAN("evaluate/" + report.scheme);
    TraceSpan timer("");  // timing only; "" spans are not recorded
    for (std::size_t i = 0; i < n; ++i)
      report.record(test.class_of(i), clf.predict(test.features_of(i)));
    report.predict_seconds = timer.elapsed_seconds();
  }
  metrics()
      .histogram("ml.predict_us." + report.scheme,
                 default_latency_buckets_us())
      .record(report.predict_seconds * 1e6 / static_cast<double>(n));
  return report;
}

}  // namespace hmd::ml
