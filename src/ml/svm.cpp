#include "ml/svm.hpp"

#include <algorithm>
#include <cmath>

#include "ml/kernels.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace hmd::ml {

void LinearSvm::train(const DatasetView& data) {
  require_trainable(data);
  standardizer_.fit(data);
  const std::size_t k = data.num_classes();
  const std::size_t d = data.num_features();
  const std::size_t n = data.num_instances();

  std::vector<double> x(n * d);  // standardized rows, contiguous
  std::vector<std::size_t> labels(n);
  for (std::size_t i = 0; i < n; ++i) {
    kernels::standardize_into(data.features_of(i), standardizer_.means(),
                              standardizer_.stddevs(),
                              {x.data() + i * d, d});
    labels[i] = data.class_of(i);
  }

  weights_.assign(k, std::vector<double>(d + 1, 0.0));
  Rng rng(params_.seed);

  // One Pegasos run per one-vs-rest problem.
  for (std::size_t cls = 0; cls < k; ++cls) {
    std::vector<double>& w = weights_[cls];
    std::size_t t = 0;
    for (std::size_t epoch = 0; epoch < params_.epochs; ++epoch) {
      for (std::size_t step = 0; step < n; ++step) {
        ++t;
        const std::size_t i = static_cast<std::size_t>(rng.uniform_index(n));
        const std::span<const double> xi{x.data() + i * d, d};
        const double y = labels[i] == cls ? 1.0 : -1.0;
        const double eta = 1.0 / (params_.lambda * static_cast<double>(t));
        const double score = kernels::dot({w.data(), d}, xi, w[d]);
        // Shrink then, on a margin violation, step toward the example.
        const double shrink = 1.0 - eta * params_.lambda;
        for (std::size_t f = 0; f < d; ++f) w[f] *= shrink;
        if (y * score < 1.0) {
          kernels::axpy(eta * y, xi, {w.data(), d});
          w[d] += eta * y;  // unregularized bias
        }
      }
    }
  }
  build_packed();
}

void LinearSvm::build_packed() {
  packed_ = kernels::pack_weights_feature_major(weights_);
}

void LinearSvm::distribution_batch(std::span<const double> flat,
                                   std::size_t window_size,
                                   std::span<double> out) const {
  HMD_REQUIRE(!weights_.empty(), "SVM: distribution before train");
  const std::size_t rows = require_batch(flat, window_size, out);
  const std::size_t k = weights_.size();
  const std::vector<double>& mean = standardizer_.means();
  const std::vector<double>& stddev = standardizer_.stddevs();
  HMD_REQUIRE(window_size == mean.size(),
              "SVM::distribution_batch: width mismatch");

  // Chunked GEMM over the one-vs-rest margins, then the same logistic
  // link + normalization as distribution(), in the output slice.
  constexpr std::size_t kChunkRows = 128;
  std::vector<double> x(std::min(rows, kChunkRows) * window_size);
  for (std::size_t base = 0; base < rows; base += kChunkRows) {
    const std::size_t lim = std::min(kChunkRows, rows - base);
    kernels::standardize_rows(flat.data() + base * window_size, lim, mean,
                              stddev, x.data());
    kernels::affine_batch(x.data(), lim, window_size, packed_.data(), k,
                          out.data() + base * k);
    for (std::size_t r = 0; r < lim; ++r) {
      const std::span<double> row = out.subspan((base + r) * k, k);
      double total = 0.0;
      for (double& v : row) {
        v = 1.0 / (1.0 + std::exp(-v));
        total += v;
      }
      if (total > 0.0)
        for (double& v : row) v /= total;
    }
  }
}

double LinearSvm::margin(std::size_t cls, std::span<const double> x) const {
  return kernels::affine_bias_last(weights_[cls], x);
}

std::size_t LinearSvm::predict(std::span<const double> features) const {
  HMD_REQUIRE(!weights_.empty(), "SVM: predict before train");
  const std::vector<double> x = standardizer_.transform(features);
  std::size_t best = 0;
  double best_margin = margin(0, x);
  for (std::size_t c = 1; c < weights_.size(); ++c) {
    const double m = margin(c, x);
    if (m > best_margin) {
      best_margin = m;
      best = c;
    }
  }
  return best;
}

std::vector<double> LinearSvm::distribution(
    std::span<const double> features) const {
  HMD_REQUIRE(!weights_.empty(), "SVM: distribution before train");
  const std::vector<double> x = standardizer_.transform(features);
  std::vector<double> out(weights_.size());
  double total = 0.0;
  for (std::size_t c = 0; c < weights_.size(); ++c) {
    out[c] = 1.0 / (1.0 + std::exp(-margin(c, x)));
    total += out[c];
  }
  if (total > 0.0)
    for (double& v : out) v /= total;
  return out;
}

}  // namespace hmd::ml
