// Statistical anomaly detection — the thesis's future-work item #2
// ("alternatives to Machine Learning Techniques for Classification"), and
// the unsupervised direction of Tang et al. (RAID'14): model BENIGN
// behaviour only and flag windows that deviate. No malware samples are
// needed for training, so zero-day families are detectable in principle.
#pragma once

#include <span>

#include "ml/classifier.hpp"
#include "ml/dataset.hpp"
#include "ml/matrix.hpp"
#include "ml/preprocess.hpp"

namespace hmd::ml {

/// One-class detector: squared Mahalanobis distance to the benign centroid
/// under the benign covariance; the alarm threshold is the given percentile
/// of the training scores.
class MahalanobisDetector {
 public:
  struct Params {
    double threshold_percentile = 97.5;  ///< benign windows above this alarm
    double regularization = 1e-3;        ///< ridge added to the covariance
  };

  MahalanobisDetector() : MahalanobisDetector(Params{}) {}
  explicit MahalanobisDetector(Params params) : params_(params) {}

  /// Fit on benign feature rows only.
  void fit(const std::vector<std::vector<double>>& benign_rows);

  bool fitted() const { return precision_.rows() > 0; }
  /// Squared Mahalanobis distance of a window to the benign profile.
  double score(std::span<const double> features) const;
  /// True when score() exceeds the calibrated threshold.
  bool is_anomalous(std::span<const double> features) const;
  double threshold() const { return threshold_; }

 private:
  friend struct ModelIo;
  Params params_;
  std::vector<double> mean_;
  Matrix precision_;  ///< inverse covariance
  double threshold_ = 0.0;
};

/// Classifier adapter: trains the one-class detector on the BENIGN rows of
/// a binary dataset (class 0 = benign) and predicts 1 (malware) for
/// anomalous windows — so the standard evaluation harness applies.
class AnomalyClassifier final : public Classifier {
 public:
  AnomalyClassifier() = default;
  explicit AnomalyClassifier(MahalanobisDetector::Params params)
      : detector_(params) {}

  void train(const DatasetView& data) override;
  std::size_t predict(std::span<const double> features) const override;
  /// Batch path: one-hot of predict() per row without per-row allocation.
  void distribution_batch(std::span<const double> flat,
                          std::size_t window_size,
                          std::span<double> out) const override {
    predict_one_hot_batch(flat, window_size, out);
  }
  std::string name() const override { return "Mahalanobis"; }
  std::size_t num_classes() const override { return 2; }

  const MahalanobisDetector& detector() const { return detector_; }

 private:
  friend struct ModelIo;
  MahalanobisDetector detector_;
};

}  // namespace hmd::ml
