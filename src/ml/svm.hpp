// Linear support vector machine trained in the primal with Pegasos
// (Shalev-Shwartz et al., 2007); multiclass via one-vs-rest, matching how
// WEKA's SMO handles multiclass with a linear kernel.
#pragma once

#include <cstdint>

#include "ml/classifier.hpp"
#include "ml/preprocess.hpp"

namespace hmd::ml {

class LinearSvm final : public Classifier {
 public:
  struct Params {
    double lambda = 1e-4;      ///< regularization (≈ 1/C·n)
    std::size_t epochs = 30;   ///< passes over the data
    std::uint64_t seed = 7;    ///< SGD sampling order
  };

  LinearSvm() : LinearSvm(Params{}) {}
  explicit LinearSvm(Params params) : params_(params) {}

  void train(const DatasetView& data) override;
  std::size_t predict(std::span<const double> features) const override;
  /// Margins mapped through a logistic link (not calibrated probabilities).
  std::vector<double> distribution(
      std::span<const double> features) const override;
  /// GEMM batch scoring: all one-vs-rest margins of a chunk come from one
  /// kernels::affine_batch call (bit-identical to the per-row path), with
  /// the logistic link and normalization applied in the output slice.
  void distribution_batch(std::span<const double> flat,
                          std::size_t window_size,
                          std::span<double> out) const override;
  std::string name() const override { return "SVM"; }
  std::size_t num_classes() const override { return weights_.size(); }

  /// weights()[c]: one-vs-rest hyperplane, num_features entries + bias last
  /// (standardized space).
  const std::vector<std::vector<double>>& weights() const { return weights_; }
  const Standardizer& standardizer() const { return standardizer_; }

 private:
  friend struct ModelIo;
  /// Rebuilds packed_ from weights_ (train and model load).
  void build_packed();

  Params params_;
  Standardizer standardizer_;
  std::vector<std::vector<double>> weights_;
  /// weights_ in the feature-major layout kernels::affine_batch consumes.
  std::vector<double> packed_;

  double margin(std::size_t cls, std::span<const double> x) const;
};

}  // namespace hmd::ml
