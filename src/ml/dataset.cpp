#include "ml/dataset.hpp"

#include <algorithm>
#include <cmath>

#include "util/error.hpp"

namespace hmd::ml {

Attribute::Attribute(std::string name, std::vector<std::string> values)
    : name_(std::move(name)), kind_(Kind::kNominal), values_(std::move(values)) {
  HMD_REQUIRE(!values_.empty(), "nominal attribute needs at least one value");
}

std::size_t Attribute::value_index(std::string_view value) const {
  HMD_REQUIRE(is_nominal(), "value_index on a numeric attribute");
  for (std::size_t i = 0; i < values_.size(); ++i)
    if (values_[i] == value) return i;
  throw PreconditionError("unknown nominal value '" + std::string(value) +
                          "' for attribute " + name_);
}

Dataset::Dataset(std::vector<Attribute> attributes, std::string relation)
    : relation_(std::move(relation)), attributes_(std::move(attributes)) {
  HMD_REQUIRE(attributes_.size() >= 2,
              "dataset needs at least one feature and a class attribute");
  HMD_REQUIRE(attributes_.back().is_nominal(),
              "class attribute (last column) must be nominal");
}

// The column mirror's atomic/mutex members are not copyable, so copies and
// moves are spelled out. A copy starts with a cold mirror (rebuilt on first
// use); a move steals the source's mirror if it was ready.
Dataset::Dataset(const Dataset& other)
    : relation_(other.relation_),
      attributes_(other.attributes_),
      storage_(other.storage_),
      num_rows_(other.num_rows_) {}

Dataset& Dataset::operator=(const Dataset& other) {
  if (this == &other) return *this;
  relation_ = other.relation_;
  attributes_ = other.attributes_;
  storage_ = other.storage_;
  num_rows_ = other.num_rows_;
  columns_.clear();
  columns_ready_.store(false, std::memory_order_release);
  return *this;
}

Dataset::Dataset(Dataset&& other) noexcept
    : relation_(std::move(other.relation_)),
      attributes_(std::move(other.attributes_)),
      storage_(std::move(other.storage_)),
      num_rows_(other.num_rows_) {
  if (other.columns_ready_.load(std::memory_order_acquire)) {
    columns_ = std::move(other.columns_);
    columns_ready_.store(true, std::memory_order_release);
  }
  other.num_rows_ = 0;
  other.columns_.clear();
  other.columns_ready_.store(false, std::memory_order_release);
}

Dataset& Dataset::operator=(Dataset&& other) noexcept {
  if (this == &other) return *this;
  relation_ = std::move(other.relation_);
  attributes_ = std::move(other.attributes_);
  storage_ = std::move(other.storage_);
  num_rows_ = other.num_rows_;
  if (other.columns_ready_.load(std::memory_order_acquire)) {
    columns_ = std::move(other.columns_);
    columns_ready_.store(true, std::memory_order_release);
  } else {
    columns_.clear();
    columns_ready_.store(false, std::memory_order_release);
  }
  other.num_rows_ = 0;
  other.columns_.clear();
  other.columns_ready_.store(false, std::memory_order_release);
  return *this;
}

const Attribute& Dataset::attribute(std::size_t i) const {
  HMD_REQUIRE(i < attributes_.size(), "attribute index out of range");
  return attributes_[i];
}

const Attribute& Dataset::class_attribute() const {
  HMD_REQUIRE(!attributes_.empty(), "dataset has no attributes");
  return attributes_.back();
}

std::size_t Dataset::feature_index(std::string_view name) const {
  for (std::size_t i = 0; i + 1 < attributes_.size(); ++i)
    if (attributes_[i].name() == name) return i;
  throw PreconditionError("no feature named '" + std::string(name) + "'");
}

void Dataset::check_row(std::span<const double> values) const {
  HMD_REQUIRE(values.size() == attributes_.size(),
              "instance width does not match schema");
  for (std::size_t i = 0; i < attributes_.size(); ++i) {
    if (attributes_[i].is_nominal()) {
      const double v = values[i];
      HMD_REQUIRE(v >= 0.0 && v < static_cast<double>(
                                      attributes_[i].num_values()) &&
                      v == std::floor(v),
                  "nominal value index out of range");
    }
  }
}

void Dataset::add(Instance instance) { add_row(instance.values); }

void Dataset::add_row(std::span<const double> values) {
  check_row(values);
  storage_.insert(storage_.end(), values.begin(), values.end());
  ++num_rows_;
  if (columns_ready_.load(std::memory_order_relaxed)) {
    columns_.clear();
    columns_ready_.store(false, std::memory_order_release);
  }
}

RowRef Dataset::instance(std::size_t i) const {
  HMD_REQUIRE(i < num_rows_, "instance index out of range");
  return RowRef{row(i)};
}

std::span<const double> Dataset::row(std::size_t i) const {
  const std::size_t width = attributes_.size();
  return {storage_.data() + i * width, width};
}

void Dataset::build_columns() const {
  std::lock_guard<std::mutex> lock(columns_mutex_);
  if (columns_ready_.load(std::memory_order_relaxed)) return;
  const std::size_t width = attributes_.size();
  columns_.resize(width * num_rows_);
  for (std::size_t i = 0; i < num_rows_; ++i) {
    const double* src = storage_.data() + i * width;
    for (std::size_t a = 0; a < width; ++a) columns_[a * num_rows_ + i] = src[a];
  }
  columns_ready_.store(true, std::memory_order_release);
}

std::span<const double> Dataset::column(std::size_t a) const {
  HMD_REQUIRE(a < attributes_.size(), "column index out of range");
  if (!columns_ready_.load(std::memory_order_acquire)) build_columns();
  return {columns_.data() + a * num_rows_, num_rows_};
}

std::span<const double> Dataset::feature_columns() const {
  if (!columns_ready_.load(std::memory_order_acquire)) build_columns();
  return {columns_.data(), (attributes_.size() - 1) * num_rows_};
}

std::vector<std::size_t> Dataset::class_counts() const {
  std::vector<std::size_t> counts(num_classes(), 0);
  for (std::size_t i = 0; i < num_rows_; ++i) ++counts[class_of(i)];
  return counts;
}

std::size_t Dataset::majority_class() const {
  const auto counts = class_counts();
  return static_cast<std::size_t>(
      std::max_element(counts.begin(), counts.end()) - counts.begin());
}

Dataset Dataset::with_same_schema() const {
  Dataset out;
  out.relation_ = relation_;
  out.attributes_ = attributes_;
  return out;
}

Dataset Dataset::project(
    const std::vector<std::size_t>& feature_indices) const {
  HMD_REQUIRE(!feature_indices.empty(), "project: keep at least one feature");
  std::vector<Attribute> attrs;
  attrs.reserve(feature_indices.size() + 1);
  for (std::size_t f : feature_indices) {
    HMD_REQUIRE(f + 1 < attributes_.size(),
                "project: index is not a feature column");
    attrs.push_back(attributes_[f]);
  }
  attrs.push_back(attributes_.back());
  Dataset out(std::move(attrs), relation_);
  const std::size_t width = attributes_.size();
  out.storage_.reserve((feature_indices.size() + 1) * num_rows_);
  for (std::size_t i = 0; i < num_rows_; ++i) {
    const double* src = storage_.data() + i * width;
    for (std::size_t f : feature_indices) out.storage_.push_back(src[f]);
    out.storage_.push_back(src[width - 1]);
  }
  out.num_rows_ = num_rows_;
  return out;
}

Dataset Dataset::filter_classes(const std::vector<std::size_t>& keep) const {
  HMD_REQUIRE(!keep.empty(), "filter_classes: keep at least one class");
  const Attribute& cls = class_attribute();
  std::vector<std::string> values;
  values.reserve(keep.size());
  std::vector<std::ptrdiff_t> remap(cls.num_values(), -1);
  for (std::size_t i = 0; i < keep.size(); ++i) {
    HMD_REQUIRE(keep[i] < cls.num_values(),
                "filter_classes: class index out of range");
    values.push_back(cls.values()[keep[i]]);
    remap[keep[i]] = static_cast<std::ptrdiff_t>(i);
  }
  std::vector<Attribute> attrs(attributes_.begin(), attributes_.end() - 1);
  attrs.emplace_back(cls.name(), std::move(values));
  Dataset out(std::move(attrs), relation_);
  const std::size_t width = attributes_.size();
  for (std::size_t i = 0; i < num_rows_; ++i) {
    const double* src = storage_.data() + i * width;
    const auto c = static_cast<std::size_t>(src[width - 1]);
    if (remap[c] < 0) continue;
    out.storage_.insert(out.storage_.end(), src, src + width - 1);
    out.storage_.push_back(static_cast<double>(remap[c]));
    ++out.num_rows_;
  }
  return out;
}

Dataset Dataset::relabel_binary(const std::vector<std::size_t>& positive,
                                const std::string& negative_name,
                                const std::string& positive_name) const {
  const Attribute& cls = class_attribute();
  std::vector<bool> is_positive(cls.num_values(), false);
  for (std::size_t p : positive) {
    HMD_REQUIRE(p < cls.num_values(),
                "relabel_binary: class index out of range");
    is_positive[p] = true;
  }
  std::vector<Attribute> attrs(attributes_.begin(), attributes_.end() - 1);
  attrs.emplace_back(cls.name(),
                     std::vector<std::string>{negative_name, positive_name});
  Dataset out(std::move(attrs), relation_);
  const std::size_t width = attributes_.size();
  out.storage_.reserve(storage_.size());
  for (std::size_t i = 0; i < num_rows_; ++i) {
    const double* src = storage_.data() + i * width;
    out.storage_.insert(out.storage_.end(), src, src + width - 1);
    const auto c = static_cast<std::size_t>(src[width - 1]);
    out.storage_.push_back(is_positive[c] ? 1.0 : 0.0);
  }
  out.num_rows_ = num_rows_;
  return out;
}

std::pair<std::vector<std::size_t>, std::vector<std::size_t>>
Dataset::stratified_split_rows(double train_fraction, Rng& rng) const {
  HMD_REQUIRE(train_fraction > 0.0 && train_fraction < 1.0,
              "train_fraction must be in (0, 1)");
  std::vector<std::size_t> train_rows;
  std::vector<std::size_t> test_rows;
  // Bucket row indices per class, shuffle, and take the head of each.
  std::vector<std::vector<std::size_t>> buckets(num_classes());
  for (std::size_t i = 0; i < num_rows_; ++i)
    buckets[class_of(i)].push_back(i);
  for (auto& bucket : buckets) {
    rng.shuffle(bucket);
    const auto n_train = static_cast<std::size_t>(
        std::lround(train_fraction * static_cast<double>(bucket.size())));
    for (std::size_t j = 0; j < bucket.size(); ++j) {
      (j < n_train ? train_rows : test_rows).push_back(bucket[j]);
    }
  }
  // Shuffle row order so class blocks don't bias order-sensitive learners.
  // (Shuffling index lists consumes the same RNG draws the seed consumed
  // shuffling materialized rows — same lengths, same Fisher–Yates.)
  rng.shuffle(train_rows);
  rng.shuffle(test_rows);
  return {std::move(train_rows), std::move(test_rows)};
}

std::pair<Dataset, Dataset> Dataset::stratified_split(double train_fraction,
                                                      Rng& rng) const {
  auto [train_rows, test_rows] = stratified_split_rows(train_fraction, rng);
  return {DatasetView(*this, std::move(train_rows)).materialize(),
          DatasetView(*this, std::move(test_rows)).materialize()};
}

std::pair<DatasetView, DatasetView> Dataset::stratified_split_views(
    double train_fraction, Rng& rng) const {
  auto [train_rows, test_rows] = stratified_split_rows(train_fraction, rng);
  return {DatasetView(*this, std::move(train_rows)),
          DatasetView(*this, std::move(test_rows))};
}

double Dataset::feature_mean(std::size_t feature) const {
  HMD_REQUIRE(feature + 1 < attributes_.size(), "not a feature column");
  if (num_rows_ == 0) return 0.0;
  const std::size_t width = attributes_.size();
  double s = 0.0;
  for (std::size_t i = 0; i < num_rows_; ++i) s += storage_[i * width + feature];
  return s / static_cast<double>(num_rows_);
}

double Dataset::feature_stddev(std::size_t feature) const {
  HMD_REQUIRE(feature + 1 < attributes_.size(), "not a feature column");
  if (num_rows_ < 2) return 0.0;
  const double m = feature_mean(feature);
  const std::size_t width = attributes_.size();
  double s2 = 0.0;
  for (std::size_t i = 0; i < num_rows_; ++i) {
    const double d = storage_[i * width + feature] - m;
    s2 += d * d;
  }
  return std::sqrt(s2 / static_cast<double>(num_rows_ - 1));
}

std::vector<std::size_t> DatasetView::class_counts() const {
  if (identity_) return data_->class_counts();
  std::vector<std::size_t> counts(num_classes(), 0);
  for (std::size_t r : rows_) ++counts[data_->class_of(r)];
  return counts;
}

std::size_t DatasetView::majority_class() const {
  const auto counts = class_counts();
  return static_cast<std::size_t>(
      std::max_element(counts.begin(), counts.end()) - counts.begin());
}

double DatasetView::feature_mean(std::size_t feature) const {
  if (identity_) return data_->feature_mean(feature);
  HMD_REQUIRE(feature + 1 < num_attributes(), "not a feature column");
  if (rows_.empty()) return 0.0;
  double s = 0.0;
  for (std::size_t r : rows_) s += data_->features_of(r)[feature];
  return s / static_cast<double>(rows_.size());
}

double DatasetView::feature_stddev(std::size_t feature) const {
  if (identity_) return data_->feature_stddev(feature);
  HMD_REQUIRE(feature + 1 < num_attributes(), "not a feature column");
  if (rows_.size() < 2) return 0.0;
  const double m = feature_mean(feature);
  double s2 = 0.0;
  for (std::size_t r : rows_) {
    const double d = data_->features_of(r)[feature] - m;
    s2 += d * d;
  }
  return std::sqrt(s2 / static_cast<double>(rows_.size() - 1));
}

DatasetView DatasetView::select(const std::vector<std::size_t>& rows) const {
  std::vector<std::size_t> parent_rows;
  parent_rows.reserve(rows.size());
  for (std::size_t i : rows) {
    HMD_REQUIRE(i < num_instances(), "select: row index out of range");
    parent_rows.push_back(row_index(i));
  }
  return DatasetView(*data_, std::move(parent_rows));
}

Dataset DatasetView::materialize() const {
  Dataset out;
  out.relation_ = data_->relation_;
  out.attributes_ = data_->attributes_;
  const std::size_t n = num_instances();
  const std::size_t width = out.attributes_.size();
  out.storage_.reserve(n * width);
  for (std::size_t i = 0; i < n; ++i) {
    const auto r = row(i);
    out.storage_.insert(out.storage_.end(), r.begin(), r.end());
  }
  out.num_rows_ = n;
  return out;
}

std::span<const double> DatasetView::feature_columns(
    std::vector<double>& scratch) const {
  if (identity_) return data_->feature_columns();
  const std::size_t n = rows_.size();
  const std::size_t features = num_features();
  scratch.resize(features * n);
  for (std::size_t f = 0; f < features; ++f) {
    const auto parent_col = data_->column(f);
    double* dst = scratch.data() + f * n;
    for (std::size_t i = 0; i < n; ++i) dst[i] = parent_col[rows_[i]];
  }
  return {scratch.data(), scratch.size()};
}

}  // namespace hmd::ml
