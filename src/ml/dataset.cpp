#include "ml/dataset.hpp"

#include <algorithm>
#include <cmath>

#include "util/error.hpp"

namespace hmd::ml {

Attribute::Attribute(std::string name, std::vector<std::string> values)
    : name_(std::move(name)), kind_(Kind::kNominal), values_(std::move(values)) {
  HMD_REQUIRE(!values_.empty(), "nominal attribute needs at least one value");
}

std::size_t Attribute::value_index(std::string_view value) const {
  HMD_REQUIRE(is_nominal(), "value_index on a numeric attribute");
  for (std::size_t i = 0; i < values_.size(); ++i)
    if (values_[i] == value) return i;
  throw PreconditionError("unknown nominal value '" + std::string(value) +
                          "' for attribute " + name_);
}

Dataset::Dataset(std::vector<Attribute> attributes, std::string relation)
    : relation_(std::move(relation)), attributes_(std::move(attributes)) {
  HMD_REQUIRE(attributes_.size() >= 2,
              "dataset needs at least one feature and a class attribute");
  HMD_REQUIRE(attributes_.back().is_nominal(),
              "class attribute (last column) must be nominal");
}

const Attribute& Dataset::attribute(std::size_t i) const {
  HMD_REQUIRE(i < attributes_.size(), "attribute index out of range");
  return attributes_[i];
}

const Attribute& Dataset::class_attribute() const {
  HMD_REQUIRE(!attributes_.empty(), "dataset has no attributes");
  return attributes_.back();
}

std::size_t Dataset::feature_index(std::string_view name) const {
  for (std::size_t i = 0; i + 1 < attributes_.size(); ++i)
    if (attributes_[i].name() == name) return i;
  throw PreconditionError("no feature named '" + std::string(name) + "'");
}

void Dataset::check_row(const Instance& inst) const {
  HMD_REQUIRE(inst.values.size() == attributes_.size(),
              "instance width does not match schema");
  for (std::size_t i = 0; i < attributes_.size(); ++i) {
    if (attributes_[i].is_nominal()) {
      const double v = inst.values[i];
      HMD_REQUIRE(v >= 0.0 && v < static_cast<double>(
                                      attributes_[i].num_values()) &&
                      v == std::floor(v),
                  "nominal value index out of range");
    }
  }
}

void Dataset::add(Instance instance) {
  check_row(instance);
  instances_.push_back(std::move(instance));
}

const Instance& Dataset::instance(std::size_t i) const {
  HMD_REQUIRE(i < instances_.size(), "instance index out of range");
  return instances_[i];
}

std::size_t Dataset::class_of(std::size_t i) const {
  return static_cast<std::size_t>(instance(i).values.back());
}

std::span<const double> Dataset::features_of(std::size_t i) const {
  const Instance& inst = instance(i);
  return {inst.values.data(), inst.values.size() - 1};
}

std::vector<std::size_t> Dataset::class_counts() const {
  std::vector<std::size_t> counts(num_classes(), 0);
  for (std::size_t i = 0; i < instances_.size(); ++i) ++counts[class_of(i)];
  return counts;
}

std::size_t Dataset::majority_class() const {
  const auto counts = class_counts();
  return static_cast<std::size_t>(
      std::max_element(counts.begin(), counts.end()) - counts.begin());
}

Dataset Dataset::with_same_schema() const {
  Dataset out;
  out.relation_ = relation_;
  out.attributes_ = attributes_;
  return out;
}

Dataset Dataset::project(
    const std::vector<std::size_t>& feature_indices) const {
  HMD_REQUIRE(!feature_indices.empty(), "project: keep at least one feature");
  std::vector<Attribute> attrs;
  attrs.reserve(feature_indices.size() + 1);
  for (std::size_t f : feature_indices) {
    HMD_REQUIRE(f + 1 < attributes_.size(),
                "project: index is not a feature column");
    attrs.push_back(attributes_[f]);
  }
  attrs.push_back(attributes_.back());
  Dataset out(std::move(attrs), relation_);
  for (const Instance& inst : instances_) {
    Instance row;
    row.values.reserve(feature_indices.size() + 1);
    for (std::size_t f : feature_indices) row.values.push_back(inst.values[f]);
    row.values.push_back(inst.values.back());
    out.instances_.push_back(std::move(row));
  }
  return out;
}

Dataset Dataset::filter_classes(const std::vector<std::size_t>& keep) const {
  HMD_REQUIRE(!keep.empty(), "filter_classes: keep at least one class");
  const Attribute& cls = class_attribute();
  std::vector<std::string> values;
  values.reserve(keep.size());
  std::vector<std::ptrdiff_t> remap(cls.num_values(), -1);
  for (std::size_t i = 0; i < keep.size(); ++i) {
    HMD_REQUIRE(keep[i] < cls.num_values(),
                "filter_classes: class index out of range");
    values.push_back(cls.values()[keep[i]]);
    remap[keep[i]] = static_cast<std::ptrdiff_t>(i);
  }
  std::vector<Attribute> attrs(attributes_.begin(), attributes_.end() - 1);
  attrs.emplace_back(cls.name(), std::move(values));
  Dataset out(std::move(attrs), relation_);
  for (const Instance& inst : instances_) {
    const auto c = static_cast<std::size_t>(inst.values.back());
    if (remap[c] < 0) continue;
    Instance row = inst;
    row.values.back() = static_cast<double>(remap[c]);
    out.instances_.push_back(std::move(row));
  }
  return out;
}

Dataset Dataset::relabel_binary(const std::vector<std::size_t>& positive,
                                const std::string& negative_name,
                                const std::string& positive_name) const {
  const Attribute& cls = class_attribute();
  std::vector<bool> is_positive(cls.num_values(), false);
  for (std::size_t p : positive) {
    HMD_REQUIRE(p < cls.num_values(),
                "relabel_binary: class index out of range");
    is_positive[p] = true;
  }
  std::vector<Attribute> attrs(attributes_.begin(), attributes_.end() - 1);
  attrs.emplace_back(cls.name(),
                     std::vector<std::string>{negative_name, positive_name});
  Dataset out(std::move(attrs), relation_);
  for (const Instance& inst : instances_) {
    Instance row = inst;
    const auto c = static_cast<std::size_t>(inst.values.back());
    row.values.back() = is_positive[c] ? 1.0 : 0.0;
    out.instances_.push_back(std::move(row));
  }
  return out;
}

std::pair<Dataset, Dataset> Dataset::stratified_split(double train_fraction,
                                                      Rng& rng) const {
  HMD_REQUIRE(train_fraction > 0.0 && train_fraction < 1.0,
              "train_fraction must be in (0, 1)");
  Dataset train = with_same_schema();
  Dataset test = with_same_schema();
  // Bucket row indices per class, shuffle, and take the head of each.
  std::vector<std::vector<std::size_t>> buckets(num_classes());
  for (std::size_t i = 0; i < instances_.size(); ++i)
    buckets[class_of(i)].push_back(i);
  for (auto& bucket : buckets) {
    rng.shuffle(bucket);
    const auto n_train = static_cast<std::size_t>(
        std::lround(train_fraction * static_cast<double>(bucket.size())));
    for (std::size_t j = 0; j < bucket.size(); ++j) {
      (j < n_train ? train : test).instances_.push_back(instances_[bucket[j]]);
    }
  }
  // Shuffle row order so class blocks don't bias order-sensitive learners.
  rng.shuffle(train.instances_);
  rng.shuffle(test.instances_);
  return {std::move(train), std::move(test)};
}

double Dataset::feature_mean(std::size_t feature) const {
  HMD_REQUIRE(feature + 1 < attributes_.size(), "not a feature column");
  if (instances_.empty()) return 0.0;
  double s = 0.0;
  for (const Instance& inst : instances_) s += inst.values[feature];
  return s / static_cast<double>(instances_.size());
}

double Dataset::feature_stddev(std::size_t feature) const {
  HMD_REQUIRE(feature + 1 < attributes_.size(), "not a feature column");
  if (instances_.size() < 2) return 0.0;
  const double m = feature_mean(feature);
  double s2 = 0.0;
  for (const Instance& inst : instances_) {
    const double d = inst.values[feature] - m;
    s2 += d * d;
  }
  return std::sqrt(s2 / static_cast<double>(instances_.size() - 1));
}

}  // namespace hmd::ml
