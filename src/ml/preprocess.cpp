#include "ml/preprocess.hpp"

#include "util/error.hpp"

namespace hmd::ml {

void Standardizer::fit(const DatasetView& data) {
  HMD_REQUIRE(!data.empty(), "Standardizer::fit: empty dataset");
  const std::size_t d = data.num_features();
  mean_.assign(d, 0.0);
  stddev_.assign(d, 0.0);
  for (std::size_t f = 0; f < d; ++f) {
    mean_[f] = data.feature_mean(f);
    stddev_[f] = data.feature_stddev(f);
  }
}

std::vector<double> Standardizer::transform(
    std::span<const double> features) const {
  HMD_REQUIRE(fitted(), "Standardizer::transform before fit");
  HMD_REQUIRE(features.size() == mean_.size(),
              "Standardizer::transform: width mismatch");
  std::vector<double> out(features.size());
  for (std::size_t f = 0; f < features.size(); ++f) {
    out[f] = stddev_[f] > 0.0 ? (features[f] - mean_[f]) / stddev_[f] : 0.0;
  }
  return out;
}

}  // namespace hmd::ml
