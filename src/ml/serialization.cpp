#include "ml/serialization.hpp"

#include <cstdlib>
#include <istream>
#include <ostream>
#include <sstream>

#include "ml/anomaly.hpp"
#include "ml/decision_stump.hpp"
#include "ml/ensemble.hpp"
#include "ml/j48.hpp"
#include "ml/jrip.hpp"
#include "ml/knn.hpp"
#include "ml/logistic.hpp"
#include "ml/mlp.hpp"
#include "ml/naive_bayes.hpp"
#include "ml/one_class.hpp"
#include "ml/one_r.hpp"
#include "ml/svm.hpp"
#include "ml/zero_r.hpp"
#include "util/error.hpp"
#include "util/strings.hpp"

namespace hmd::ml {

namespace {

/// Exact double encoding (hexfloat; strtod parses it back bit-identically).
std::string enc(double v) { return format("%a", v); }

double dec(const std::string& token) {
  const char* begin = token.c_str();
  char* end = nullptr;
  const double v = std::strtod(begin, &end);
  if (end != begin + token.size())
    throw ParseError("model: bad double token '" + token + "'");
  return v;
}

/// Tokenized line reader with one-token lookahead-free semantics.
class Reader {
 public:
  explicit Reader(std::istream& in) : in_(in) {}

  /// Next non-empty line's tokens; throws at EOF.
  std::vector<std::string> line() {
    std::string raw;
    while (std::getline(in_, raw)) {
      std::vector<std::string> tokens;
      for (const auto& t : split(raw, ' '))
        if (!trim(t).empty()) tokens.emplace_back(trim(t));
      if (!tokens.empty()) return tokens;
    }
    throw ParseError("model: unexpected end of input");
  }

  /// Next line must start with `key`; returns the remaining tokens.
  std::vector<std::string> expect(const std::string& key) {
    auto tokens = line();
    if (tokens.front() != key)
      throw ParseError("model: expected '" + key + "', got '" +
                       tokens.front() + "'");
    tokens.erase(tokens.begin());
    return tokens;
  }

  std::size_t expect_size(const std::string& key) {
    const auto tokens = expect(key);
    if (tokens.size() != 1)
      throw ParseError("model: '" + key + "' needs one value");
    return static_cast<std::size_t>(parse_int(tokens[0]));
  }

 private:
  std::istream& in_;
};

void write_vector(std::ostream& out, const std::string& key,
                  const std::vector<double>& v) {
  out << key;
  for (double x : v) out << ' ' << enc(x);
  out << '\n';
}

std::vector<double> read_vector(Reader& reader, const std::string& key,
                                std::size_t expected) {
  const auto tokens = reader.expect(key);
  if (tokens.size() != expected)
    throw ParseError("model: '" + key + "' expected " +
                     std::to_string(expected) + " values, got " +
                     std::to_string(tokens.size()));
  std::vector<double> v;
  v.reserve(tokens.size());
  for (const auto& t : tokens) v.push_back(dec(t));
  return v;
}

void write_matrix(std::ostream& out, const std::string& key,
                  const std::vector<std::vector<double>>& m) {
  out << key << ' ' << m.size() << ' '
      << (m.empty() ? 0 : m.front().size()) << '\n';
  for (const auto& row : m) write_vector(out, "row", row);
}

std::vector<std::vector<double>> read_matrix(Reader& reader,
                                             const std::string& key) {
  const auto dims = reader.expect(key);
  if (dims.size() != 2) throw ParseError("model: bad matrix header");
  const auto rows = static_cast<std::size_t>(parse_int(dims[0]));
  const auto cols = static_cast<std::size_t>(parse_int(dims[1]));
  std::vector<std::vector<double>> m;
  m.reserve(rows);
  for (std::size_t r = 0; r < rows; ++r)
    m.push_back(read_vector(reader, "row", cols));
  return m;
}

void write_standardizer(std::ostream& out, const Standardizer& s) {
  write_vector(out, "standardizer_mean", s.means());
  write_vector(out, "standardizer_sd", s.stddevs());
}

void write_j48_node(std::ostream& out, const J48::Node& node) {
  if (node.is_leaf()) {
    out << "leaf " << node.cls << ' ' << node.n << ' ' << node.errors
        << '\n';
    return;
  }
  out << "split " << node.feature << ' ' << enc(node.threshold) << ' '
      << node.cls << ' ' << node.n << ' ' << node.errors << '\n';
  write_j48_node(out, *node.left);
  write_j48_node(out, *node.right);
}

std::unique_ptr<J48::Node> read_j48_node(Reader& reader) {
  const auto tokens = reader.line();
  auto node = std::make_unique<J48::Node>();
  if (tokens.front() == "leaf") {
    if (tokens.size() != 4) throw ParseError("model: bad leaf line");
    node->cls = static_cast<std::size_t>(parse_int(tokens[1]));
    node->n = static_cast<std::size_t>(parse_int(tokens[2]));
    node->errors = static_cast<std::size_t>(parse_int(tokens[3]));
    return node;
  }
  if (tokens.front() != "split" || tokens.size() != 6)
    throw ParseError("model: bad tree line");
  node->feature = static_cast<std::size_t>(parse_int(tokens[1]));
  node->threshold = dec(tokens[2]);
  node->cls = static_cast<std::size_t>(parse_int(tokens[3]));
  node->n = static_cast<std::size_t>(parse_int(tokens[4]));
  node->errors = static_cast<std::size_t>(parse_int(tokens[5]));
  node->left = read_j48_node(reader);
  node->right = read_j48_node(reader);
  return node;
}

}  // namespace

/// Private-state access point (befriended by the supported classifiers).
struct ModelIo {
  // ----- save ------------------------------------------------------------
  static void save(std::ostream& out, const ZeroR& m) {
    HMD_REQUIRE(!m.priors_.empty(), "save_model: untrained ZeroR");
    out << "majority " << m.majority_ << '\n';
    write_vector(out, "priors", m.priors_);
  }
  static void save(std::ostream& out, const OneR& m) {
    HMD_REQUIRE(m.trained_, "save_model: untrained OneR");
    out << "feature " << m.feature_ << '\n';
    out << "training_error " << enc(m.training_error_) << '\n';
    out << "intervals " << m.intervals_.size() << '\n';
    for (const auto& iv : m.intervals_)
      out << "interval " << enc(iv.upper_bound) << ' ' << iv.cls << '\n';
  }
  static void save(std::ostream& out, const DecisionStump& m) {
    HMD_REQUIRE(m.trained_, "save_model: untrained DecisionStump");
    out << "split " << m.feature_ << ' ' << enc(m.threshold_) << ' '
        << m.left_class_ << ' ' << m.right_class_ << '\n';
  }
  static void save(std::ostream& out, const J48& m) {
    HMD_REQUIRE(m.root_ != nullptr, "save_model: untrained J48");
    write_j48_node(out, *m.root_);
  }
  static void save(std::ostream& out, const JRip& m) {
    HMD_REQUIRE(m.trained_, "save_model: untrained JRip");
    out << "default " << m.default_class_ << '\n';
    out << "rules " << m.rules_.size() << '\n';
    for (const auto& rule : m.rules_) {
      out << "rule " << rule.cls << ' ' << rule.conditions.size() << '\n';
      for (const auto& cond : rule.conditions)
        out << "cond " << cond.feature << ' ' << (cond.greater ? 1 : 0)
            << ' ' << enc(cond.threshold) << '\n';
    }
  }
  static void save(std::ostream& out, const NaiveBayes& m) {
    HMD_REQUIRE(!m.priors_.empty(), "save_model: untrained NaiveBayes");
    write_vector(out, "priors", m.priors_);
    write_matrix(out, "means", m.mean_);
    write_matrix(out, "variances", m.var_);
  }
  static void save(std::ostream& out, const Logistic& m) {
    HMD_REQUIRE(!m.weights_.empty(), "save_model: untrained MLR");
    write_standardizer(out, m.standardizer_);
    write_matrix(out, "weights", m.weights_);
  }
  static void save(std::ostream& out, const LinearSvm& m) {
    HMD_REQUIRE(!m.weights_.empty(), "save_model: untrained SVM");
    write_standardizer(out, m.standardizer_);
    write_matrix(out, "weights", m.weights_);
  }
  static void save(std::ostream& out, const Mlp& m) {
    HMD_REQUIRE(!m.w2_.empty(), "save_model: untrained MLP");
    write_standardizer(out, m.standardizer_);
    write_matrix(out, "w1", m.w1_);
    write_matrix(out, "w2", m.w2_);
  }
  static void save(std::ostream& out, const Knn& m) {
    HMD_REQUIRE(!m.points_.empty(), "save_model: untrained IBk");
    out << "k " << m.k_ << '\n';
    write_standardizer(out, m.standardizer_);
    out << "labels";
    for (std::size_t l : m.labels_) out << ' ' << l;
    out << '\n';
    // points_ is stored flat row-major; the on-disk format stays one row
    // per reference point.
    const std::size_t dim = m.standardizer_.means().size();
    const std::size_t n = dim == 0 ? 0 : m.points_.size() / dim;
    std::vector<std::vector<double>> rows(n);
    for (std::size_t r = 0; r < n; ++r)
      rows[r].assign(m.points_.begin() + static_cast<std::ptrdiff_t>(r * dim),
                     m.points_.begin() +
                         static_cast<std::ptrdiff_t>((r + 1) * dim));
    write_matrix(out, "points", rows);
  }
  static void save(std::ostream& out, const AnomalyClassifier& m) {
    const MahalanobisDetector& d = m.detector_;
    HMD_REQUIRE(d.fitted(), "save_model: untrained Mahalanobis");
    write_vector(out, "mean", d.mean_);
    std::vector<std::vector<double>> precision(d.precision_.rows());
    for (std::size_t r = 0; r < d.precision_.rows(); ++r) {
      const auto row = d.precision_.row(r);
      precision[r].assign(row.begin(), row.end());
    }
    write_matrix(out, "precision", precision);
    out << "threshold " << enc(d.threshold_) << '\n';
  }
  /// Shared tail of every one-class block: the calibrated sigmoid.
  static void save_calibration(std::ostream& out,
                               const OneClassClassifier& m) {
    out << "threshold " << enc(m.threshold_) << '\n';
    out << "scale " << enc(m.scale_) << '\n';
  }
  static void load_calibration(Reader& reader, OneClassClassifier& m) {
    m.threshold_ = dec(reader.expect("threshold").at(0));
    m.scale_ = dec(reader.expect("scale").at(0));
    if (m.scale_ <= 0.0)
      throw ParseError("model: one-class scale must be positive");
  }
  static void save(std::ostream& out, const OneClassSvm& m) {
    HMD_REQUIRE(m.calibrated(), "save_model: untrained OneClassSvm");
    write_vector(out, "mean", m.mean_);
    write_vector(out, "sd", m.sd_);
    write_vector(out, "weights", m.weights_);
    out << "rho " << enc(m.rho_) << '\n';
    save_calibration(out, m);
  }
  static void save(std::ostream& out, const KdeAnomaly& m) {
    HMD_REQUIRE(m.calibrated(), "save_model: untrained KdeAnomaly");
    write_vector(out, "mean", m.mean_);
    write_vector(out, "sd", m.sd_);
    out << "bandwidth " << enc(m.bandwidth_) << '\n';
    const std::size_t dim = m.mean_.size();
    const std::size_t n = dim == 0 ? 0 : m.points_.size() / dim;
    std::vector<std::vector<double>> rows(n);
    for (std::size_t r = 0; r < n; ++r)
      rows[r].assign(
          m.points_.begin() + static_cast<std::ptrdiff_t>(r * dim),
          m.points_.begin() + static_cast<std::ptrdiff_t>((r + 1) * dim));
    write_matrix(out, "points", rows);
    save_calibration(out, m);
  }
  static void save(std::ostream& out, const MahalanobisThreshold& m) {
    HMD_REQUIRE(m.calibrated(), "save_model: untrained MahalanobisThreshold");
    const MahalanobisDetector& d = m.detector_;
    write_vector(out, "mean", d.mean_);
    std::vector<std::vector<double>> precision(d.precision_.rows());
    for (std::size_t r = 0; r < d.precision_.rows(); ++r) {
      const auto row = d.precision_.row(r);
      precision[r].assign(row.begin(), row.end());
    }
    write_matrix(out, "precision", precision);
    save_calibration(out, m);
  }
  /// Committee save: alphas (AdaBoost only) plus each member as a nested
  /// "member <scheme>" block reusing the member scheme's own format.
  static void save_committee(
      std::ostream& out, const std::vector<std::unique_ptr<Classifier>>& members,
      const std::vector<double>* alphas) {
    out << "members " << members.size() << '\n';
    if (alphas != nullptr) write_vector(out, "alphas", *alphas);
    for (const auto& member : members) {
      out << "member " << member->name() << '\n';
      if (!save_body(out, *member))
        throw PreconditionError("save_model: no serialization for member " +
                                member->name());
    }
  }
  static void save(std::ostream& out, const AdaBoostM1& m) {
    HMD_REQUIRE(!m.members_.empty(), "save_model: untrained AdaBoostM1");
    save_committee(out, m.members_, &m.alphas_);
  }
  static void save(std::ostream& out, const Bagging& m) {
    HMD_REQUIRE(!m.members_.empty(), "save_model: untrained Bagging");
    save_committee(out, m.members_, nullptr);
  }

  /// Scheme-dispatched body save shared by save_model and nested committee
  /// members; returns false for schemes without a serialization.
  static bool save_body(std::ostream& out, const Classifier& wrapped) {
    const Classifier& clf = wrapped.unwrap();
    if (const auto* m = dynamic_cast<const ZeroR*>(&clf)) save(out, *m);
    else if (const auto* m1 = dynamic_cast<const OneR*>(&clf)) save(out, *m1);
    else if (const auto* m2 = dynamic_cast<const DecisionStump*>(&clf)) save(out, *m2);
    else if (const auto* m3 = dynamic_cast<const J48*>(&clf)) save(out, *m3);
    else if (const auto* m4 = dynamic_cast<const JRip*>(&clf)) save(out, *m4);
    else if (const auto* m5 = dynamic_cast<const NaiveBayes*>(&clf)) save(out, *m5);
    else if (const auto* m6 = dynamic_cast<const Logistic*>(&clf)) save(out, *m6);
    else if (const auto* m7 = dynamic_cast<const LinearSvm*>(&clf)) save(out, *m7);
    else if (const auto* m8 = dynamic_cast<const Mlp*>(&clf)) save(out, *m8);
    else if (const auto* m9 = dynamic_cast<const Knn*>(&clf)) save(out, *m9);
    else if (const auto* m10 = dynamic_cast<const AnomalyClassifier*>(&clf)) save(out, *m10);
    else if (const auto* m11 = dynamic_cast<const AdaBoostM1*>(&clf)) save(out, *m11);
    else if (const auto* m12 = dynamic_cast<const Bagging*>(&clf)) save(out, *m12);
    else if (const auto* m13 = dynamic_cast<const OneClassSvm*>(&clf)) save(out, *m13);
    else if (const auto* m14 = dynamic_cast<const KdeAnomaly*>(&clf)) save(out, *m14);
    else if (const auto* m15 = dynamic_cast<const MahalanobisThreshold*>(&clf)) save(out, *m15);
    else return false;
    return true;
  }

  // ----- load ------------------------------------------------------------
  static Standardizer read_standardizer(Reader& reader) {
    Standardizer s;
    {
      const auto tokens = reader.expect("standardizer_mean");
      for (const auto& t : tokens) s.mean_.push_back(dec(t));
    }
    {
      const auto tokens = reader.expect("standardizer_sd");
      for (const auto& t : tokens) s.stddev_.push_back(dec(t));
    }
    if (s.mean_.size() != s.stddev_.size())
      throw ParseError("model: standardizer width mismatch");
    return s;
  }

  static std::unique_ptr<Classifier> load(Reader& reader,
                                          const std::string& scheme,
                                          std::size_t classes) {
    if (scheme == "ZeroR") {
      auto m = std::make_unique<ZeroR>();
      m->majority_ = reader.expect_size("majority");
      const auto tokens = reader.expect("priors");
      for (const auto& t : tokens) m->priors_.push_back(dec(t));
      if (m->priors_.size() != classes)
        throw ParseError("model: prior count mismatch");
      return m;
    }
    if (scheme == "OneR") {
      auto m = std::make_unique<OneR>();
      m->num_classes_ = classes;
      m->feature_ = reader.expect_size("feature");
      m->training_error_ = dec(reader.expect("training_error").at(0));
      const std::size_t n = reader.expect_size("intervals");
      for (std::size_t i = 0; i < n; ++i) {
        const auto tokens = reader.expect("interval");
        if (tokens.size() != 2) throw ParseError("model: bad interval");
        m->intervals_.push_back(
            {.upper_bound = dec(tokens[0]),
             .cls = static_cast<std::size_t>(parse_int(tokens[1]))});
      }
      if (m->intervals_.empty()) throw ParseError("model: OneR no intervals");
      m->trained_ = true;
      return m;
    }
    if (scheme == "DecisionStump") {
      auto m = std::make_unique<DecisionStump>();
      m->num_classes_ = classes;
      const auto tokens = reader.expect("split");
      if (tokens.size() != 4) throw ParseError("model: bad stump");
      m->feature_ = static_cast<std::size_t>(parse_int(tokens[0]));
      m->threshold_ = dec(tokens[1]);
      m->left_class_ = static_cast<std::size_t>(parse_int(tokens[2]));
      m->right_class_ = static_cast<std::size_t>(parse_int(tokens[3]));
      m->trained_ = true;
      return m;
    }
    if (scheme == "J48") {
      auto m = std::make_unique<J48>();
      m->num_classes_ = classes;
      m->root_ = read_j48_node(reader);
      return m;
    }
    if (scheme == "JRip") {
      auto m = std::make_unique<JRip>();
      m->num_classes_ = classes;
      m->default_class_ = reader.expect_size("default");
      const std::size_t n_rules = reader.expect_size("rules");
      for (std::size_t r = 0; r < n_rules; ++r) {
        const auto head = reader.expect("rule");
        if (head.size() != 2) throw ParseError("model: bad rule header");
        JRip::Rule rule;
        rule.cls = static_cast<std::size_t>(parse_int(head[0]));
        const auto n_conds = static_cast<std::size_t>(parse_int(head[1]));
        for (std::size_t c = 0; c < n_conds; ++c) {
          const auto tokens = reader.expect("cond");
          if (tokens.size() != 3) throw ParseError("model: bad condition");
          rule.conditions.push_back(
              {.feature = static_cast<std::size_t>(parse_int(tokens[0])),
               .greater = parse_int(tokens[1]) != 0,
               .threshold = dec(tokens[2])});
        }
        m->rules_.push_back(std::move(rule));
      }
      m->trained_ = true;
      return m;
    }
    if (scheme == "NaiveBayes") {
      auto m = std::make_unique<NaiveBayes>();
      const auto tokens = reader.expect("priors");
      for (const auto& t : tokens) m->priors_.push_back(dec(t));
      m->mean_ = read_matrix(reader, "means");
      m->var_ = read_matrix(reader, "variances");
      if (m->priors_.size() != classes || m->mean_.size() != classes ||
          m->var_.size() != classes)
        throw ParseError("model: NaiveBayes shape mismatch");
      return m;
    }
    if (scheme == "MLR") {
      auto m = std::make_unique<Logistic>();
      m->standardizer_ = read_standardizer(reader);
      m->weights_ = read_matrix(reader, "weights");
      if (m->weights_.size() != classes)
        throw ParseError("model: MLR shape mismatch");
      m->build_packed();
      return m;
    }
    if (scheme == "SVM") {
      auto m = std::make_unique<LinearSvm>();
      m->standardizer_ = read_standardizer(reader);
      m->weights_ = read_matrix(reader, "weights");
      if (m->weights_.size() != classes)
        throw ParseError("model: SVM shape mismatch");
      m->build_packed();
      return m;
    }
    if (scheme == "MLP") {
      auto m = std::make_unique<Mlp>();
      m->standardizer_ = read_standardizer(reader);
      m->w1_ = read_matrix(reader, "w1");
      m->w2_ = read_matrix(reader, "w2");
      if (m->w2_.size() != classes)
        throw ParseError("model: MLP shape mismatch");
      m->build_packed();
      return m;
    }
    if (scheme == "IBk") {
      auto m = std::make_unique<Knn>();
      m->num_classes_ = classes;
      m->k_ = reader.expect_size("k");
      m->standardizer_ = read_standardizer(reader);
      const auto tokens = reader.expect("labels");
      for (const auto& t : tokens)
        m->labels_.push_back(static_cast<std::size_t>(parse_int(t)));
      const auto rows = read_matrix(reader, "points");
      if (rows.size() != m->labels_.size() || rows.empty())
        throw ParseError("model: IBk shape mismatch");
      const std::size_t dim = rows.front().size();
      m->points_.reserve(rows.size() * dim);
      for (const auto& row : rows) {
        if (row.size() != dim)
          throw ParseError("model: IBk ragged points matrix");
        m->points_.insert(m->points_.end(), row.begin(), row.end());
      }
      m->build_quantized();
      m->build_index();
      for (std::size_t l : m->labels_)
        if (l >= classes) throw ParseError("model: IBk label out of range");
      return m;
    }
    if (scheme == "Mahalanobis") {
      if (classes != 2)
        throw ParseError("model: Mahalanobis must be binary");
      auto m = std::make_unique<AnomalyClassifier>();
      MahalanobisDetector& d = m->detector_;
      {
        const auto tokens = reader.expect("mean");
        for (const auto& t : tokens) d.mean_.push_back(dec(t));
      }
      const auto precision = read_matrix(reader, "precision");
      if (precision.size() != d.mean_.size() || d.mean_.empty())
        throw ParseError("model: Mahalanobis shape mismatch");
      d.precision_ = Matrix(precision.size(), precision.size());
      for (std::size_t r = 0; r < precision.size(); ++r) {
        if (precision[r].size() != d.mean_.size())
          throw ParseError("model: Mahalanobis precision not square");
        for (std::size_t c = 0; c < precision[r].size(); ++c)
          d.precision_(r, c) = precision[r][c];
      }
      d.threshold_ = dec(reader.expect("threshold").at(0));
      return m;
    }
    if (scheme == "OneClassSvm") {
      if (classes != 2)
        throw ParseError("model: OneClassSvm must be binary");
      auto m = std::make_unique<OneClassSvm>();
      {
        const auto tokens = reader.expect("mean");
        for (const auto& t : tokens) m->mean_.push_back(dec(t));
      }
      m->sd_ = read_vector(reader, "sd", m->mean_.size());
      m->weights_ = read_vector(reader, "weights", 2 * m->mean_.size());
      if (m->mean_.empty())
        throw ParseError("model: OneClassSvm shape mismatch");
      m->rho_ = dec(reader.expect("rho").at(0));
      load_calibration(reader, *m);
      return m;
    }
    if (scheme == "KdeAnomaly") {
      if (classes != 2) throw ParseError("model: KdeAnomaly must be binary");
      auto m = std::make_unique<KdeAnomaly>();
      {
        const auto tokens = reader.expect("mean");
        for (const auto& t : tokens) m->mean_.push_back(dec(t));
      }
      m->sd_ = read_vector(reader, "sd", m->mean_.size());
      m->bandwidth_ = dec(reader.expect("bandwidth").at(0));
      if (m->mean_.empty() || m->bandwidth_ <= 0.0)
        throw ParseError("model: KdeAnomaly shape mismatch");
      const auto rows = read_matrix(reader, "points");
      if (rows.empty()) throw ParseError("model: KdeAnomaly has no points");
      m->points_.reserve(rows.size() * m->mean_.size());
      for (const auto& row : rows) {
        if (row.size() != m->mean_.size())
          throw ParseError("model: KdeAnomaly point width mismatch");
        m->points_.insert(m->points_.end(), row.begin(), row.end());
      }
      load_calibration(reader, *m);
      return m;
    }
    if (scheme == "MahalanobisThreshold") {
      if (classes != 2)
        throw ParseError("model: MahalanobisThreshold must be binary");
      auto m = std::make_unique<MahalanobisThreshold>();
      MahalanobisDetector& d = m->detector_;
      {
        const auto tokens = reader.expect("mean");
        for (const auto& t : tokens) d.mean_.push_back(dec(t));
      }
      const auto precision = read_matrix(reader, "precision");
      if (precision.size() != d.mean_.size() || d.mean_.empty())
        throw ParseError("model: MahalanobisThreshold shape mismatch");
      d.precision_ = Matrix(precision.size(), precision.size());
      for (std::size_t r = 0; r < precision.size(); ++r) {
        if (precision[r].size() != d.mean_.size())
          throw ParseError("model: MahalanobisThreshold precision not square");
        for (std::size_t c = 0; c < precision[r].size(); ++c)
          d.precision_(r, c) = precision[r][c];
      }
      load_calibration(reader, *m);
      // The embedded detector thresholds at the same calibrated score.
      d.threshold_ = m->threshold_;
      return m;
    }
    if (scheme == "AdaBoostM1" || scheme == "Bagging") {
      const bool boosted = scheme == "AdaBoostM1";
      const std::size_t n_members = reader.expect_size("members");
      if (n_members == 0) throw ParseError("model: empty committee");
      std::vector<double> alphas;
      if (boosted) alphas = read_vector(reader, "alphas", n_members);
      std::vector<std::unique_ptr<Classifier>> members;
      members.reserve(n_members);
      for (std::size_t i = 0; i < n_members; ++i) {
        const auto head = reader.expect("member");
        if (head.size() != 1) throw ParseError("model: bad member header");
        members.push_back(load(reader, head[0], classes));
      }
      // The factory is only needed to (re)train; a loaded committee is
      // inference-only until train() is called with a fresh instance.
      if (boosted) {
        auto m = std::make_unique<AdaBoostM1>(BaseFactory{});
        m->num_classes_ = classes;
        m->members_ = std::move(members);
        m->alphas_ = std::move(alphas);
        return m;
      }
      auto m = std::make_unique<Bagging>(BaseFactory{});
      m->num_classes_ = classes;
      m->members_ = std::move(members);
      return m;
    }
    throw ParseError("model: unsupported scheme '" + scheme + "'");
  }
};

void save_model(std::ostream& out, const Classifier& clf) {
  HMD_REQUIRE(clf.num_classes() >= 2, "save_model: classifier not trained");
  out << "hmd-model v1\n";
  out << "scheme " << clf.name() << '\n';
  out << "classes " << clf.num_classes() << '\n';

  if (!ModelIo::save_body(out, clf))
    throw PreconditionError("save_model: no serialization for " + clf.name());

  out << "end\n";
}

namespace {

/// The actual parser; throws ParseError on malformed input.
std::unique_ptr<Classifier> load_model_impl(std::istream& in) {
  Reader reader(in);
  {
    const auto header = reader.line();
    if (header.size() != 2 || header[0] != "hmd-model" || header[1] != "v1")
      throw ParseError("model: bad header (expected 'hmd-model v1')");
  }
  const auto scheme_tokens = reader.expect("scheme");
  if (scheme_tokens.size() != 1) throw ParseError("model: bad scheme line");
  const std::size_t classes = reader.expect_size("classes");
  if (classes < 2) throw ParseError("model: class count must be >= 2");

  std::unique_ptr<Classifier> model =
      ModelIo::load(reader, scheme_tokens[0], classes);
  reader.expect("end");
  return model;
}

}  // namespace

Result<std::unique_ptr<Classifier>> try_load_model(std::istream& in) {
  return capture_result([&in] { return load_model_impl(in); })
      .with_context("loading model");
}

std::unique_ptr<Classifier> load_model(std::istream& in) {
  // Thin throwing wrapper: value() raises the ErrorInfo as a ParseError.
  return try_load_model(in).value();
}

}  // namespace hmd::ml
