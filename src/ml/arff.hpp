// ARFF (Attribute-Relation File Format) IO, plus the CSV→Dataset bridge.
//
// The thesis converts its combined CSV files to ARFF "for easier
// implementation of Machine Learning models in WEKA"; both formats
// round-trip here.
#pragma once

#include <iosfwd>
#include <string>

#include "ml/dataset.hpp"
#include "util/csv.hpp"
#include "util/result.hpp"

namespace hmd::ml {

/// Write `data` as ARFF (numeric features + nominal class).
void write_arff(std::ostream& out, const Dataset& data);

/// Parse ARFF (numeric and nominal attributes; the last attribute must be
/// nominal and becomes the class). Malformed input yields an ErrorInfo
/// (ErrCode::kParse) with a "reading ARFF" context frame.
Result<Dataset> try_read_arff(std::istream& in);

/// Thin throwing wrapper over try_read_arff (raises hmd::ParseError).
Dataset read_arff(std::istream& in);

/// Build a Dataset from a CSV table: all columns but the last are numeric
/// features; the last is the nominal class, value set in first-appearance
/// order (or `class_values` when given, enforcing that order/closure).
Dataset dataset_from_csv(const CsvTable& table,
                         const std::vector<std::string>& class_values = {});

/// Write `data` as CSV (the inverse of dataset_from_csv).
void write_dataset_csv(std::ostream& out, const Dataset& data);

}  // namespace hmd::ml
