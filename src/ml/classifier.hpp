// Abstract classifier interface — the equivalent of WEKA's Classifier.
//
// All classifiers consume a Dataset whose last column is the nominal class
// attribute and predict a class index from a feature vector (the row minus
// the class column). Training is batch; prediction is const and
// thread-compatible.
#pragma once

#include <memory>
#include <span>
#include <string>
#include <vector>

#include "ml/dataset.hpp"

namespace hmd::ml {

/// Base class for all learners.
class Classifier {
 public:
  virtual ~Classifier() = default;

  /// Fit the model. Implementations must tolerate repeated calls
  /// (retraining replaces the model). Takes a DatasetView — a Dataset
  /// converts implicitly, and row-subset views (CV folds, bootstrap bags)
  /// train without materializing a copy.
  virtual void train(const DatasetView& data) = 0;

  /// Predicted class index for a feature vector (dataset feature order).
  virtual std::size_t predict(std::span<const double> features) const = 0;

  /// Class probability distribution; default is a one-hot of predict().
  virtual std::vector<double> distribution(
      std::span<const double> features) const;

  /// Batched distributions: `flat` holds consecutive feature rows of
  /// `window_size` values each (row-major); writes row r's distribution to
  /// out[r * num_classes() ... r * num_classes() + num_classes()).
  /// `out.size()` must equal rows x num_classes(). The default loops over
  /// distribution(); schemes override it to reuse buffers across rows
  /// (batch scorers like OnlineDetector::score_windows call this once per
  /// chunk instead of allocating a fresh vector per row).
  virtual void distribution_batch(std::span<const double> flat,
                                  std::size_t window_size,
                                  std::span<double> out) const;

  /// Short WEKA-style scheme name ("J48", "JRip", "OneR", ...).
  virtual std::string name() const = 0;

  /// The underlying scheme object. Identity for concrete schemes;
  /// decorators (InstrumentedClassifier) forward to the wrapped model so
  /// dynamic_cast-dispatched consumers (hardware lowering, serialization)
  /// see the concrete type.
  virtual const Classifier& unwrap() const { return *this; }

  /// Number of classes the trained model distinguishes (0 before train()).
  virtual std::size_t num_classes() const = 0;

 protected:
  /// Shared precondition check for train().
  static void require_trainable(const DatasetView& data);

  /// Batch helper for predict-only schemes: zeroes `out` and writes a
  /// one-hot of predict() per row — bit-identical to the default
  /// distribution_batch loop without the per-row vector allocation.
  void predict_one_hot_batch(std::span<const double> flat,
                             std::size_t window_size,
                             std::span<double> out) const;

  /// Validates distribution_batch arguments; returns the row count.
  std::size_t require_batch(std::span<const double> flat,
                            std::size_t window_size,
                            std::span<const double> out) const;
};

/// Factory signature used by the experiment harness.
using ClassifierFactory = std::unique_ptr<Classifier> (*)();

}  // namespace hmd::ml
