// Multilayer perceptron — WEKA's MultilayerPerceptron with its default
// topology: one hidden sigmoid layer of (features + classes) / 2 units
// (WEKA's 'a' setting), softmax output, SGD with momentum.
//
// The thesis's most accurate — and by far most hardware-expensive —
// classifier.
#pragma once

#include <cstdint>

#include "ml/classifier.hpp"
#include "ml/preprocess.hpp"

namespace hmd::ml {

class Mlp final : public Classifier {
 public:
  struct Params {
    std::size_t hidden_units = 0;  ///< 0 → WEKA 'a': (features+classes)/2
    std::size_t epochs = 300;
    double learning_rate = 0.05;  ///< WEKA -L (0.3 default is unstable here)
    double momentum = 0.9;       ///< WEKA -M
    bool decay = true;           ///< WEKA -D: lr decays as epochs progress
    std::uint64_t seed = 11;
  };

  Mlp() : Mlp(Params{}) {}
  explicit Mlp(Params params) : params_(params) {}

  void train(const DatasetView& data) override;
  std::size_t predict(std::span<const double> features) const override;
  std::vector<double> distribution(
      std::span<const double> features) const override;
  /// GEMM batch scoring: both layers of the whole chunk run as single
  /// kernels::affine_batch calls (hidden sigmoids and output softmax
  /// applied per element in between), bit-identical to the per-row path.
  void distribution_batch(std::span<const double> flat,
                          std::size_t window_size,
                          std::span<double> out) const override;
  std::string name() const override { return "MLP"; }
  std::size_t num_classes() const override { return w2_.size(); }

  std::size_t hidden_units() const { return w1_.size(); }
  /// Input→hidden weights: w1()[h] has num_features entries + bias last.
  const std::vector<std::vector<double>>& w1() const { return w1_; }
  /// Hidden→output weights: w2()[c] has hidden_units entries + bias last.
  const std::vector<std::vector<double>>& w2() const { return w2_; }
  const Standardizer& standardizer() const { return standardizer_; }

 private:
  friend struct ModelIo;
  /// Rebuilds packed1_/packed2_ from w1_/w2_ (train and model load).
  void build_packed();

  Params params_;
  Standardizer standardizer_;
  std::vector<std::vector<double>> w1_;
  std::vector<std::vector<double>> w2_;
  /// w1_/w2_ in the feature-major layout kernels::affine_batch consumes.
  std::vector<double> packed1_;
  std::vector<double> packed2_;

  std::vector<double> hidden_activations(std::span<const double> x) const;
};

}  // namespace hmd::ml
