// Supervised feature ranking — WEKA's InfoGainAttributeEval equivalent.
//
// The thesis uses PCA (unsupervised) for feature reduction; its related
// work (Sayadi et al.) uses supervised rankers. This module provides the
// standard information-gain ranking so the two selection philosophies can
// be compared on the same dataset (see bench_ablation_feature_selection).
#pragma once

#include <cstddef>
#include <vector>

#include "ml/dataset.hpp"
#include "ml/pca.hpp"  // RankedFeature

namespace hmd::ml {

/// Information gain of each feature w.r.t. the class, with numeric
/// features discretized into `bins` equal-frequency bins. Returns all
/// features, descending by gain.
std::vector<RankedFeature> rank_by_info_gain(const Dataset& data,
                                             std::size_t bins = 10);

/// Symmetrical-uncertainty variant (gain normalized by the attribute and
/// class entropies), WEKA's SymmetricalUncertAttributeEval: robust to
/// features with many distinct values.
std::vector<RankedFeature> rank_by_symmetrical_uncertainty(
    const Dataset& data, std::size_t bins = 10);

}  // namespace hmd::ml
