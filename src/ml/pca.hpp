// Principal Component Analysis — the counterpart of WEKA's
// `PrincipalComponents -R 0.95` attribute evaluator the thesis uses
// (Fig. 8), including its Ranker-style attribute ranking.
//
// Following WEKA, PCA runs on the correlation matrix (i.e. standardized
// features), retains components until the configured variance fraction is
// covered, and ranks the ORIGINAL attributes by their loadings on the
// retained components weighted by explained variance. The thesis uses that
// ranking to pick each malware class's "custom" 8-feature set (Table 2) and
// the top-2 components for the per-family PCA scatter plots (Figs. 9-12).
#pragma once

#include <string>
#include <vector>

#include "ml/dataset.hpp"
#include "ml/matrix.hpp"
#include "ml/preprocess.hpp"

namespace hmd::ml {

/// One original attribute with its PCA importance score.
struct RankedFeature {
  std::size_t index = 0;  ///< feature column in the source dataset
  std::string name;
  double score = 0.0;
};

class PrincipalComponents {
 public:
  /// `variance_cutoff` is WEKA's -R: retain components until this fraction
  /// of total variance is explained.
  explicit PrincipalComponents(double variance_cutoff = 0.95);

  /// Fit on the feature columns of `data` (class column ignored).
  void fit(const DatasetView& data);

  bool fitted() const { return !eigenvalues_.empty(); }
  std::size_t num_components() const { return retained_; }
  std::size_t num_input_features() const { return eigenvalues_.size(); }

  /// Eigenvalues, descending (all of them, not just retained).
  const std::vector<double>& eigenvalues() const { return eigenvalues_; }
  /// Fraction of variance explained by component j.
  double explained_variance_ratio(std::size_t j) const;
  /// Loading of original feature i on component j.
  double loading(std::size_t feature, std::size_t component) const;

  /// Project one feature vector onto the retained components.
  std::vector<double> transform(std::span<const double> features) const;
  /// Project onto the top-2 components (for the Figs. 9-12 scatter data).
  std::pair<double, double> project2d(std::span<const double> features) const;

  /// Rank original attributes: score(i) = Σ_j evr(j) · |loading(i, j)| over
  /// retained components, descending.
  std::vector<RankedFeature> ranked_features() const;

 private:
  double variance_cutoff_;
  Standardizer standardizer_;
  std::vector<double> eigenvalues_;
  Matrix eigenvectors_;  ///< column j = component j
  std::size_t retained_ = 0;
  std::vector<std::string> feature_names_;
  double total_variance_ = 0.0;
};

/// Convenience: fit PCA on `data` and return the top `k` ranked features.
std::vector<RankedFeature> top_pca_features(const DatasetView& data,
                                            std::size_t k,
                                            double variance_cutoff = 0.95);

}  // namespace hmd::ml
