// Ensemble learners — the direction the HMD literature took right after
// the paper (Khasawneh et al. RAID'15; Sayadi et al. DAC'18 apply boosting
// and bagging to hardware malware detectors). Provided as the repository's
// related-work extension: AdaBoost.M1 and Bagging over any base scheme.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>

#include "ml/classifier.hpp"
#include "util/rng.hpp"

namespace hmd::ml {

/// Factory producing fresh untrained base classifiers.
using BaseFactory = std::function<std::unique_ptr<Classifier>()>;

/// AdaBoost.M1 (Freund & Schapire) with weight-proportional resampling
/// (how WEKA trains weight-unaware base learners).
class AdaBoostM1 final : public Classifier {
 public:
  struct Params {
    std::size_t iterations = 30;
    std::uint64_t seed = 0xada;
  };

  AdaBoostM1(BaseFactory base, Params params)
      : base_(std::move(base)), params_(params) {}
  explicit AdaBoostM1(BaseFactory base) : AdaBoostM1(std::move(base), {}) {}

  void train(const DatasetView& data) override;
  std::size_t predict(std::span<const double> features) const override;
  std::vector<double> distribution(
      std::span<const double> features) const override;
  /// Batch path: member votes accumulated straight into each output slice
  /// (bit-identical to the per-row path, no per-row allocation).
  void distribution_batch(std::span<const double> flat,
                          std::size_t window_size,
                          std::span<double> out) const override;
  std::string name() const override { return "AdaBoostM1"; }
  std::size_t num_classes() const override { return num_classes_; }

  std::size_t committee_size() const { return members_.size(); }
  const std::vector<double>& member_weights() const { return alphas_; }

 private:
  friend struct ModelIo;
  BaseFactory base_;
  Params params_;
  std::size_t num_classes_ = 0;
  std::vector<std::unique_ptr<Classifier>> members_;
  std::vector<double> alphas_;
};

/// Bagging (Breiman): bootstrap replicates + majority vote.
class Bagging final : public Classifier {
 public:
  struct Params {
    std::size_t bags = 10;
    std::uint64_t seed = 0xba9;
  };

  Bagging(BaseFactory base, Params params)
      : base_(std::move(base)), params_(params) {}
  explicit Bagging(BaseFactory base) : Bagging(std::move(base), {}) {}

  void train(const DatasetView& data) override;
  std::size_t predict(std::span<const double> features) const override;
  std::vector<double> distribution(
      std::span<const double> features) const override;
  /// Batch path: member votes accumulated straight into each output slice
  /// (bit-identical to the per-row path, no per-row allocation).
  void distribution_batch(std::span<const double> flat,
                          std::size_t window_size,
                          std::span<double> out) const override;
  std::string name() const override { return "Bagging"; }
  std::size_t num_classes() const override { return num_classes_; }

  std::size_t committee_size() const { return members_.size(); }

 private:
  friend struct ModelIo;
  BaseFactory base_;
  Params params_;
  std::size_t num_classes_ = 0;
  std::vector<std::unique_ptr<Classifier>> members_;
};

}  // namespace hmd::ml
