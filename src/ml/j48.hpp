// J48 — WEKA's name for a C4.5 decision tree.
//
// Numeric features only (all HPC features are numeric): binary splits on
// gain-ratio-optimal thresholds, minimum-instances-per-leaf stopping, and
// C4.5-style pessimistic-error subtree-replacement pruning with the
// standard 0.25 confidence factor.
#pragma once

#include <memory>

#include "ml/classifier.hpp"

namespace hmd::ml {

class J48 final : public Classifier {
 public:
  struct Params {
    std::size_t min_leaf = 8;    ///< WEKA -M (2 overfits noisy HPC data)
    double confidence = 0.25;    ///< WEKA -C
    std::size_t max_depth = 20;  ///< bound (tree depth = hardware latency)
    bool prune = true;           ///< unpruned tree when false (WEKA -U)
  };

  /// A tree node; leaves have no children.
  struct Node {
    std::size_t feature = 0;
    double threshold = 0.0;
    std::unique_ptr<Node> left;   ///< value <= threshold
    std::unique_ptr<Node> right;  ///< value >  threshold
    std::size_t cls = 0;          ///< majority class at this node
    std::size_t n = 0;            ///< training instances reaching the node
    std::size_t errors = 0;       ///< training errors if made a leaf

    bool is_leaf() const { return left == nullptr; }
  };

  J48() : J48(Params{}) {}
  explicit J48(Params params) : params_(params) {}

  void train(const DatasetView& data) override;
  std::size_t predict(std::span<const double> features) const override;
  /// Batch path: one-hot of predict() per row without per-row allocation.
  void distribution_batch(std::span<const double> flat,
                          std::size_t window_size,
                          std::span<double> out) const override {
    predict_one_hot_batch(flat, window_size, out);
  }
  std::string name() const override { return "J48"; }
  std::size_t num_classes() const override { return num_classes_; }

  const Node& root() const;
  std::size_t num_leaves() const;
  std::size_t num_nodes() const;
  std::size_t depth() const;

 private:
  friend struct ModelIo;
  Params params_;
  std::size_t num_classes_ = 0;
  std::unique_ptr<Node> root_;
};

/// C4.5's pessimistic error estimate: the binomial upper confidence bound
/// on the error count for `errors` observed errors out of `n`, at
/// confidence factor `cf` (0.25 → z ≈ 0.6745... C4.5 uses 0.69).
double pessimistic_error_count(std::size_t n, std::size_t errors, double cf);

}  // namespace hmd::ml
