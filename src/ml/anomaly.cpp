#include "ml/anomaly.hpp"

#include "ml/kernels.hpp"
#include "util/error.hpp"
#include "util/stats.hpp"

namespace hmd::ml {

void MahalanobisDetector::fit(
    const std::vector<std::vector<double>>& benign_rows) {
  HMD_REQUIRE(benign_rows.size() >= 8,
              "MahalanobisDetector: need at least 8 benign rows");
  const std::size_t d = benign_rows.front().size();
  HMD_REQUIRE(d > 0, "MahalanobisDetector: empty feature vectors");

  Matrix x(benign_rows.size(), d);
  for (std::size_t i = 0; i < benign_rows.size(); ++i) {
    HMD_REQUIRE(benign_rows[i].size() == d,
                "MahalanobisDetector: ragged rows");
    for (std::size_t f = 0; f < d; ++f) x(i, f) = benign_rows[i][f];
  }

  mean_.assign(d, 0.0);
  for (std::size_t i = 0; i < benign_rows.size(); ++i)
    for (std::size_t f = 0; f < d; ++f) mean_[f] += x(i, f);
  for (double& m : mean_) m /= static_cast<double>(benign_rows.size());

  Matrix cov = covariance_matrix(x);
  // Ridge keeps the precision matrix well-conditioned: counters are
  // strongly correlated and some are near-constant on benign data.
  double trace = 0.0;
  for (std::size_t f = 0; f < d; ++f) trace += cov(f, f);
  const double ridge =
      params_.regularization * std::max(trace / static_cast<double>(d), 1.0);
  for (std::size_t f = 0; f < d; ++f) cov(f, f) += ridge;
  precision_ = cov.inverse();

  // Calibrate the alarm threshold on the training scores.
  std::vector<double> scores;
  scores.reserve(benign_rows.size());
  for (const auto& row : benign_rows) scores.push_back(score(row));
  threshold_ = percentile(scores, params_.threshold_percentile);
}

double MahalanobisDetector::score(std::span<const double> features) const {
  HMD_REQUIRE(fitted(), "MahalanobisDetector: score before fit");
  HMD_REQUIRE(features.size() == mean_.size(),
              "MahalanobisDetector: feature width mismatch");
  const std::size_t d = mean_.size();
  std::vector<double> delta(d);
  for (std::size_t f = 0; f < d; ++f) delta[f] = features[f] - mean_[f];
  const std::vector<double> pd = precision_.multiply(delta);
  return kernels::dot(delta, pd);
}

bool MahalanobisDetector::is_anomalous(
    std::span<const double> features) const {
  return score(features) > threshold_;
}

void AnomalyClassifier::train(const DatasetView& data) {
  require_trainable(data);
  HMD_REQUIRE(data.num_classes() == 2,
              "AnomalyClassifier expects a binary (benign/malware) dataset");
  std::vector<std::vector<double>> benign;
  for (std::size_t i = 0; i < data.num_instances(); ++i) {
    if (data.class_of(i) != 0) continue;  // benign is class 0
    const auto x = data.features_of(i);
    benign.emplace_back(x.begin(), x.end());
  }
  HMD_REQUIRE(benign.size() >= 8,
              "AnomalyClassifier: too few benign training rows");
  detector_.fit(benign);
}

std::size_t AnomalyClassifier::predict(
    std::span<const double> features) const {
  return detector_.is_anomalous(features) ? 1u : 0u;
}

}  // namespace hmd::ml
