#include "ml/instrumented.hpp"

#include <utility>

#include "util/error.hpp"
#include "util/metrics.hpp"
#include "util/trace.hpp"

namespace hmd::ml {

InstrumentedClassifier::InstrumentedClassifier(
    std::unique_ptr<Classifier> inner)
    : inner_(std::move(inner)) {
  HMD_REQUIRE(inner_ != nullptr, "InstrumentedClassifier: null classifier");
  scheme_ = inner_->name();
  MetricsRegistry& reg = metrics();
  train_ms_ = &reg.histogram("ml.train_ms." + scheme_,
                             default_latency_buckets_us());
  predict_us_ = &reg.histogram("ml.predict_us." + scheme_,
                               default_latency_buckets_us());
  batch_us_ = &reg.histogram("ml.batch_us." + scheme_,
                             default_latency_buckets_us());
  batch_rows_ = &reg.counter("ml.batch_rows." + scheme_);
}

void InstrumentedClassifier::train(const DatasetView& data) {
  HMD_TRACE_SPAN("train/" + scheme_);
  TraceSpan timer("");
  inner_->train(data);
  train_ms_->record(timer.elapsed_seconds() * 1e3);
}

std::size_t InstrumentedClassifier::predict(
    std::span<const double> features) const {
  TraceSpan timer("");
  const std::size_t p = inner_->predict(features);
  predict_us_->record(timer.elapsed_seconds() * 1e6);
  return p;
}

std::vector<double> InstrumentedClassifier::distribution(
    std::span<const double> features) const {
  TraceSpan timer("");
  std::vector<double> dist = inner_->distribution(features);
  predict_us_->record(timer.elapsed_seconds() * 1e6);
  return dist;
}

void InstrumentedClassifier::distribution_batch(std::span<const double> flat,
                                                std::size_t window_size,
                                                std::span<double> out) const {
  TraceSpan timer("");
  inner_->distribution_batch(flat, window_size, out);
  batch_us_->record(timer.elapsed_seconds() * 1e6);
  if (window_size > 0) batch_rows_->add(flat.size() / window_size);
}

std::unique_ptr<Classifier> instrument(std::unique_ptr<Classifier> inner) {
  return std::make_unique<InstrumentedClassifier>(std::move(inner));
}

}  // namespace hmd::ml
