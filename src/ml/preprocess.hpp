// Feature preprocessing: z-score standardization fitted on training data.
//
// Gradient-trained models (Logistic/MLR, SVM, MLP) standardize internally so
// raw HPC magnitudes (which span orders of magnitude across counters) don't
// dominate the optimization; tree/rule learners consume raw values, as WEKA's
// do.
#pragma once

#include <span>
#include <vector>

#include "ml/dataset.hpp"

namespace hmd::ml {

/// Per-feature z-score transform. Constant features map to 0.
class Standardizer {
 public:
  /// Fit on the feature columns of `data`.
  void fit(const DatasetView& data);

  bool fitted() const { return !mean_.empty(); }
  std::size_t num_features() const { return mean_.size(); }

  /// Transform one feature vector.
  std::vector<double> transform(std::span<const double> features) const;

  const std::vector<double>& means() const { return mean_; }
  const std::vector<double>& stddevs() const { return stddev_; }

 private:
  friend struct ModelIo;
  std::vector<double> mean_;
  std::vector<double> stddev_;
};

}  // namespace hmd::ml
