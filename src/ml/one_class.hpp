// One-class (benign-only) detection schemes — the unsupervised direction
// of Tang/Sethumadhavan/Stolfo (arXiv:1403.1631): model BENIGN hardware
// behaviour only and flag deviations, so malware families absent from the
// training corpus are detectable in principle.
//
// All three schemes share one contract (OneClassClassifier):
//   * train() consumes the benign rows (class 0) of a binary dataset and
//     ignores the malware rows entirely;
//   * a raw anomaly_score() (higher = more anomalous) is thresholded at a
//     percentile of the benign training scores;
//   * distribution() maps the score through a calibrated sigmoid so the
//     serving path sees a CONTINUOUS P(malware) — the drift detectors
//     (serve/drift.hpp) test the score distribution, which one-hot
//     distributions would starve.
// Because training is unsupervised, these are the only schemes the
// drift-triggered retrain loop may rebuild from live (unlabeled) traffic;
// the registry marks them via ml::one_class_schemes().
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "ml/anomaly.hpp"
#include "ml/classifier.hpp"

namespace hmd::ml {

/// Shared benign-only training + sigmoid score calibration. Derived
/// schemes implement fit_benign() and anomaly_score(); the base extracts
/// the benign rows, fits, and calibrates threshold_ (the given percentile
/// of benign training scores) and scale_ (their spread) so that
/// P(malware) = sigmoid((score - threshold) / scale).
class OneClassClassifier : public Classifier {
 public:
  /// Fewest benign rows any one-class scheme will fit on.
  static constexpr std::size_t kMinBenignRows = 8;

  void train(const DatasetView& data) override;
  std::size_t predict(std::span<const double> features) const override;
  std::vector<double> distribution(
      std::span<const double> features) const override;
  void distribution_batch(std::span<const double> flat,
                          std::size_t window_size,
                          std::span<double> out) const override;
  std::size_t num_classes() const override { return 2; }

  /// Raw anomaly score of one window (higher = more anomalous). Throws
  /// before training.
  virtual double anomaly_score(std::span<const double> features) const = 0;

  bool calibrated() const { return scale_ > 0.0; }
  /// Benign-percentile score threshold: predict() says malware above it.
  double threshold() const { return threshold_; }
  /// Sigmoid temperature (benign training-score spread).
  double score_scale() const { return scale_; }
  /// The calibrated sigmoid: P(malware) for a raw anomaly score.
  double calibrated_probability(double score) const;

 protected:
  explicit OneClassClassifier(double threshold_percentile)
      : threshold_percentile_(threshold_percentile) {}

  /// Fit scheme state on the benign feature rows (>= kMinBenignRows,
  /// rectangular, at least one feature — validated by train()).
  virtual void fit_benign(const std::vector<std::vector<double>>& rows) = 0;

 private:
  friend struct ModelIo;
  double threshold_percentile_;
  double threshold_ = 0.0;
  double scale_ = 0.0;  ///< 0 until calibrated
};

/// ν-one-class SVM (Schölkopf et al., 2001) trained in the primal with
/// Pegasos-style seeded subgradient descent, over a bounded per-feature
/// Gaussian-envelope map φ(z) = [exp(-z²/2), z·exp(-z²/2)] of the
/// standardized window (the explicit-feature stand-in for the RBF kernel:
/// φ vanishes far from the benign mass, so w·φ falls below the margin ρ
/// for outliers in ANY direction). Anomaly score: ρ - w·φ(x).
class OneClassSvm final : public OneClassClassifier {
 public:
  struct Params {
    double nu = 0.1;            ///< target benign margin-violation fraction
    std::size_t epochs = 40;    ///< passes over the benign rows
    std::uint64_t seed = 7;     ///< SGD sampling order
    double threshold_percentile = 95.0;
  };

  OneClassSvm() : OneClassSvm(Params{}) {}
  explicit OneClassSvm(Params params)
      : OneClassClassifier(params.threshold_percentile), params_(params) {}

  std::string name() const override { return "OneClassSvm"; }
  double anomaly_score(std::span<const double> features) const override;

  double rho() const { return rho_; }
  const std::vector<double>& weights() const { return weights_; }

 protected:
  void fit_benign(const std::vector<std::vector<double>>& rows) override;

 private:
  friend struct ModelIo;
  void map_features(std::span<const double> x, std::span<double> phi) const;

  Params params_;
  std::vector<double> mean_;     ///< per-feature standardization
  std::vector<double> sd_;
  std::vector<double> weights_;  ///< 2·d envelope-feature weights
  double rho_ = 0.0;             ///< margin offset
};

/// Kernel density anomaly detection: a product-Gaussian KDE over the
/// standardized benign rows (Scott's-rule bandwidth, deterministic seeded
/// subsample above max_reference_rows); the anomaly score is the negative
/// log mean kernel, computed with a log-sum-exp so far-away windows score
/// finitely and monotonically in distance.
class KdeAnomaly final : public OneClassClassifier {
 public:
  struct Params {
    double threshold_percentile = 97.5;
    std::size_t max_reference_rows = 256;  ///< KDE reference-set cap
    std::uint64_t seed = 11;               ///< subsample selection
  };

  KdeAnomaly() : KdeAnomaly(Params{}) {}
  explicit KdeAnomaly(Params params)
      : OneClassClassifier(params.threshold_percentile), params_(params) {}

  std::string name() const override { return "KdeAnomaly"; }
  double anomaly_score(std::span<const double> features) const override;

  double bandwidth() const { return bandwidth_; }
  std::size_t num_reference_rows() const {
    return mean_.empty() ? 0 : points_.size() / mean_.size();
  }

 protected:
  void fit_benign(const std::vector<std::vector<double>>& rows) override;

 private:
  friend struct ModelIo;
  Params params_;
  std::vector<double> mean_;
  std::vector<double> sd_;
  std::vector<double> points_;  ///< standardized reference rows, row-major
  double bandwidth_ = 0.0;      ///< shared per-feature Gaussian bandwidth
};

/// Mahalanobis-distance threshold, reusing MahalanobisDetector (the same
/// ridge-regularized covariance/precision kernel path as the "Mahalanobis"
/// scheme) but with the calibrated continuous distribution of the
/// one-class family instead of AnomalyClassifier's one-hot output.
class MahalanobisThreshold final : public OneClassClassifier {
 public:
  struct Params {
    double threshold_percentile = 97.5;
    double regularization = 1e-3;
  };

  MahalanobisThreshold() : MahalanobisThreshold(Params{}) {}
  explicit MahalanobisThreshold(Params params)
      : OneClassClassifier(params.threshold_percentile),
        detector_({.threshold_percentile = params.threshold_percentile,
                   .regularization = params.regularization}) {}

  std::string name() const override { return "MahalanobisThreshold"; }
  double anomaly_score(std::span<const double> features) const override;

  const MahalanobisDetector& detector() const { return detector_; }

 protected:
  void fit_benign(const std::vector<std::vector<double>>& rows) override;

 private:
  friend struct ModelIo;
  MahalanobisDetector detector_;
};

}  // namespace hmd::ml
