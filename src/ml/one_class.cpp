#include "ml/one_class.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>

#include "ml/kernels.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"

namespace hmd::ml {

namespace {

/// Per-feature mean and sample stddev of a rectangular row set.
void fit_standardization(const std::vector<std::vector<double>>& rows,
                         std::vector<double>& mean, std::vector<double>& sd) {
  const std::size_t d = rows.front().size();
  mean.assign(d, 0.0);
  sd.assign(d, 0.0);
  for (const auto& row : rows)
    for (std::size_t f = 0; f < d; ++f) mean[f] += row[f];
  for (double& m : mean) m /= static_cast<double>(rows.size());
  for (const auto& row : rows)
    for (std::size_t f = 0; f < d; ++f) {
      const double delta = row[f] - mean[f];
      sd[f] += delta * delta;
    }
  for (double& s : sd)
    s = std::sqrt(s / static_cast<double>(rows.size() - 1));
}

}  // namespace

// ---------------------------------------------------------------------------
// OneClassClassifier — shared benign-only training and calibration
// ---------------------------------------------------------------------------

void OneClassClassifier::train(const DatasetView& data) {
  require_trainable(data);
  HMD_REQUIRE(data.num_classes() == 2,
              name() + " expects a binary (benign/malware) dataset");
  std::vector<std::vector<double>> benign;
  for (std::size_t i = 0; i < data.num_instances(); ++i) {
    if (data.class_of(i) != 0) continue;  // benign is class 0
    const auto x = data.features_of(i);
    benign.emplace_back(x.begin(), x.end());
  }
  HMD_REQUIRE(benign.size() >= kMinBenignRows,
              name() + ": too few benign training rows");

  scale_ = 0.0;  // retraining replaces the model; invalidate first
  fit_benign(benign);

  // Calibrate on the benign training scores: the threshold is the given
  // percentile, the sigmoid temperature their spread (floored so a
  // degenerate constant-score fit still yields a monotone map).
  std::vector<double> scores;
  scores.reserve(benign.size());
  for (const auto& row : benign) scores.push_back(anomaly_score(row));
  threshold_ = percentile(scores, threshold_percentile_);
  scale_ = std::max(stddev_of(scores), 1e-9);
}

double OneClassClassifier::calibrated_probability(double score) const {
  HMD_REQUIRE(calibrated(), name() + ": distribution before train");
  return 1.0 / (1.0 + std::exp(-(score - threshold_) / scale_));
}

std::size_t OneClassClassifier::predict(
    std::span<const double> features) const {
  HMD_REQUIRE(calibrated(), name() + ": predict before train");
  return anomaly_score(features) > threshold_ ? 1u : 0u;
}

std::vector<double> OneClassClassifier::distribution(
    std::span<const double> features) const {
  const double p = calibrated_probability(anomaly_score(features));
  return {1.0 - p, p};
}

void OneClassClassifier::distribution_batch(std::span<const double> flat,
                                            std::size_t window_size,
                                            std::span<double> out) const {
  const std::size_t rows = require_batch(flat, window_size, out);
  HMD_REQUIRE(calibrated(), name() + ": distribution before train");
  for (std::size_t r = 0; r < rows; ++r) {
    const double p = calibrated_probability(
        anomaly_score(flat.subspan(r * window_size, window_size)));
    out[r * 2] = 1.0 - p;
    out[r * 2 + 1] = p;
  }
}

// ---------------------------------------------------------------------------
// OneClassSvm
// ---------------------------------------------------------------------------

void OneClassSvm::map_features(std::span<const double> x,
                               std::span<double> phi) const {
  const std::size_t d = mean_.size();
  for (std::size_t f = 0; f < d; ++f) {
    const double z =
        sd_[f] > 0.0 ? (x[f] - mean_[f]) / sd_[f] : 0.0;
    const double envelope = std::exp(-0.5 * z * z);
    phi[f] = envelope;
    phi[d + f] = z * envelope;
  }
}

void OneClassSvm::fit_benign(const std::vector<std::vector<double>>& rows) {
  HMD_REQUIRE(params_.nu > 0.0 && params_.nu <= 1.0,
              "OneClassSvm: nu must be in (0, 1]");
  HMD_REQUIRE(params_.epochs >= 1, "OneClassSvm: epochs must be >= 1");
  fit_standardization(rows, mean_, sd_);

  const std::size_t n = rows.size();
  const std::size_t d = mean_.size();
  const std::size_t dim = 2 * d;

  // Pre-map every row once; training touches only φ-space.
  std::vector<double> phi(n * dim);
  for (std::size_t i = 0; i < n; ++i)
    map_features(rows[i], {phi.data() + i * dim, dim});

  // Pegasos-style subgradient descent on the ν-one-class primal
  //   min (λ/2)||w||² - ρ + (1/(νn)) Σ max(0, ρ - w·φᵢ),  λ = 1,
  // with a seeded per-epoch shuffle so training is bit-reproducible.
  weights_.assign(dim, 0.0);
  rho_ = 0.0;
  const double inv_nu = 1.0 / params_.nu;
  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), 0);
  Rng rng(params_.seed);
  std::size_t t = 0;
  for (std::size_t epoch = 0; epoch < params_.epochs; ++epoch) {
    rng.shuffle(order);
    for (std::size_t i : order) {
      const double eta = 1.0 / static_cast<double>(++t);
      const std::span<const double> row(phi.data() + i * dim, dim);
      const double margin = kernels::dot(weights_, row);
      const double decay = 1.0 - eta;  // λ = 1
      for (double& w : weights_) w *= decay;
      if (margin < rho_) {
        kernels::axpy(eta * inv_nu, row, weights_);
        rho_ -= eta * (inv_nu - 1.0);
      } else {
        rho_ += eta;
      }
    }
  }
}

double OneClassSvm::anomaly_score(std::span<const double> features) const {
  HMD_REQUIRE(!weights_.empty(), "OneClassSvm: score before train");
  HMD_REQUIRE(features.size() == mean_.size(),
              "OneClassSvm: feature width mismatch");
  std::vector<double> phi(weights_.size());
  map_features(features, phi);
  return rho_ - kernels::dot(weights_, phi);
}

// ---------------------------------------------------------------------------
// KdeAnomaly
// ---------------------------------------------------------------------------

void KdeAnomaly::fit_benign(const std::vector<std::vector<double>>& rows) {
  HMD_REQUIRE(params_.max_reference_rows >= kMinBenignRows,
              "KdeAnomaly: max_reference_rows must be >= 8");
  fit_standardization(rows, mean_, sd_);
  const std::size_t d = mean_.size();

  // Deterministic subsample above the reference cap: a seeded shuffle
  // picks the kept rows, then sorting restores temporal order.
  std::vector<std::size_t> keep(rows.size());
  std::iota(keep.begin(), keep.end(), 0);
  if (rows.size() > params_.max_reference_rows) {
    Rng rng(params_.seed);
    rng.shuffle(keep);
    keep.resize(params_.max_reference_rows);
    std::sort(keep.begin(), keep.end());
  }

  points_.clear();
  points_.reserve(keep.size() * d);
  for (std::size_t i : keep) {
    const std::size_t base = points_.size();
    points_.resize(base + d);
    kernels::standardize_into(rows[i], mean_, sd_,
                              {points_.data() + base, d});
  }

  // Scott's rule with unit per-feature variance (post-standardization):
  // h = (4 / (d + 2))^(1/(d+4)) · n^(-1/(d+4)).
  const double nd = static_cast<double>(keep.size());
  const double dd = static_cast<double>(d);
  bandwidth_ = std::pow(4.0 / (dd + 2.0), 1.0 / (dd + 4.0)) *
               std::pow(nd, -1.0 / (dd + 4.0));
}

double KdeAnomaly::anomaly_score(std::span<const double> features) const {
  HMD_REQUIRE(!points_.empty(), "KdeAnomaly: score before train");
  HMD_REQUIRE(features.size() == mean_.size(),
              "KdeAnomaly: feature width mismatch");
  const std::size_t d = mean_.size();
  const std::size_t n = points_.size() / d;
  std::vector<double> z(d);
  kernels::standardize_into(features, mean_, sd_, z);

  // -log mean kernel via log-sum-exp: exponents are -||z - zᵢ||² / (2h²);
  // the max-shift keeps far-away windows finite (score grows ~ distance²).
  const double inv_2h2 = 1.0 / (2.0 * bandwidth_ * bandwidth_);
  std::vector<double> exponents(n);
  double peak = -std::numeric_limits<double>::infinity();
  for (std::size_t i = 0; i < n; ++i) {
    const double e =
        -kernels::squared_l2(z, {points_.data() + i * d, d}) * inv_2h2;
    exponents[i] = e;
    peak = std::max(peak, e);
  }
  double acc = 0.0;
  for (std::size_t i = 0; i < n; ++i) acc += std::exp(exponents[i] - peak);
  return -(peak + std::log(acc) - std::log(static_cast<double>(n)));
}

// ---------------------------------------------------------------------------
// MahalanobisThreshold
// ---------------------------------------------------------------------------

void MahalanobisThreshold::fit_benign(
    const std::vector<std::vector<double>>& rows) {
  detector_.fit(rows);
}

double MahalanobisThreshold::anomaly_score(
    std::span<const double> features) const {
  return detector_.score(features);
}

}  // namespace hmd::ml
