#include "ml/feature_ranking.hpp"

#include <algorithm>
#include <cmath>
#include <functional>

#include "ml/decision_stump.hpp"  // entropy_of_counts
#include "util/error.hpp"

namespace hmd::ml {

namespace {

/// Equal-frequency bin id for each row of one feature column.
std::vector<std::size_t> discretize(const Dataset& data, std::size_t feature,
                                    std::size_t bins) {
  const std::size_t n = data.num_instances();
  std::vector<std::size_t> order(n);
  for (std::size_t i = 0; i < n; ++i) order[i] = i;
  std::stable_sort(order.begin(), order.end(),
                   [&](std::size_t a, std::size_t b) {
                     return data.features_of(a)[feature] <
                            data.features_of(b)[feature];
                   });
  std::vector<std::size_t> bin_of(n, 0);
  for (std::size_t rank = 0; rank < n; ++rank) {
    std::size_t b = rank * bins / n;
    // Ties must share a bin: extend the previous row's bin when values are
    // equal (otherwise identical values would straddle a boundary).
    if (rank > 0 && data.features_of(order[rank])[feature] ==
                        data.features_of(order[rank - 1])[feature])
      b = bin_of[order[rank - 1]];
    bin_of[order[rank]] = b;
  }
  return bin_of;
}

struct GainParts {
  double info_gain = 0.0;
  double attribute_entropy = 0.0;
};

GainParts gain_of(const Dataset& data, std::size_t feature,
                  std::size_t bins) {
  const std::size_t n = data.num_instances();
  const std::size_t k = data.num_classes();
  const std::vector<std::size_t> bin_of = discretize(data, feature, bins);

  // Joint counts bin x class.
  std::vector<std::vector<std::size_t>> joint(
      bins, std::vector<std::size_t>(k, 0));
  std::vector<std::size_t> bin_counts(bins, 0);
  for (std::size_t i = 0; i < n; ++i) {
    ++joint[bin_of[i]][data.class_of(i)];
    ++bin_counts[bin_of[i]];
  }

  const double class_entropy = entropy_of_counts(data.class_counts());
  double conditional = 0.0;
  for (std::size_t b = 0; b < bins; ++b) {
    if (bin_counts[b] == 0) continue;
    conditional += static_cast<double>(bin_counts[b]) /
                   static_cast<double>(n) * entropy_of_counts(joint[b]);
  }
  return {.info_gain = class_entropy - conditional,
          .attribute_entropy = entropy_of_counts(bin_counts)};
}

std::vector<RankedFeature> rank_with(
    const Dataset& data, std::size_t bins,
    const std::function<double(const GainParts&, double)>& score_fn) {
  HMD_REQUIRE(!data.empty(), "feature ranking: empty dataset");
  HMD_REQUIRE(bins >= 2, "feature ranking: need at least two bins");
  const double class_entropy = entropy_of_counts(data.class_counts());
  std::vector<RankedFeature> ranked;
  ranked.reserve(data.num_features());
  for (std::size_t f = 0; f < data.num_features(); ++f) {
    const GainParts parts = gain_of(data, f, bins);
    ranked.push_back({.index = f,
                      .name = data.attribute(f).name(),
                      .score = score_fn(parts, class_entropy)});
  }
  std::stable_sort(ranked.begin(), ranked.end(),
                   [](const RankedFeature& a, const RankedFeature& b) {
                     return a.score > b.score;
                   });
  return ranked;
}

}  // namespace

std::vector<RankedFeature> rank_by_info_gain(const Dataset& data,
                                             std::size_t bins) {
  return rank_with(data, bins, [](const GainParts& p, double) {
    return p.info_gain;
  });
}

std::vector<RankedFeature> rank_by_symmetrical_uncertainty(
    const Dataset& data, std::size_t bins) {
  return rank_with(data, bins, [](const GainParts& p, double class_h) {
    const double denom = p.attribute_entropy + class_h;
    return denom > 0.0 ? 2.0 * p.info_gain / denom : 0.0;
  });
}

}  // namespace hmd::ml
