// ZeroR: predicts the majority class. The sanity-check baseline every WEKA
// comparison includes — any real detector must beat it.
#pragma once

#include "ml/classifier.hpp"

namespace hmd::ml {

class ZeroR final : public Classifier {
 public:
  void train(const DatasetView& data) override;
  std::size_t predict(std::span<const double> features) const override;
  std::vector<double> distribution(
      std::span<const double> features) const override;
  /// Batch path: fills every output slice with the training priors
  /// (bit-identical to the per-row path, no per-row allocation).
  void distribution_batch(std::span<const double> flat,
                          std::size_t window_size,
                          std::span<double> out) const override;
  std::string name() const override { return "ZeroR"; }
  std::size_t num_classes() const override { return priors_.size(); }

  /// Training-set class priors.
  const std::vector<double>& priors() const { return priors_; }

 private:
  friend struct ModelIo;
  std::size_t majority_ = 0;
  std::vector<double> priors_;
};

}  // namespace hmd::ml
