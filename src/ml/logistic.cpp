#include "ml/logistic.hpp"

#include <algorithm>
#include <cmath>

#include "ml/kernels.hpp"
#include "util/error.hpp"

namespace hmd::ml {

void softmax_inplace(std::vector<double>& logits) {
  HMD_REQUIRE(!logits.empty(), "softmax of empty vector");
  const double mx = *std::max_element(logits.begin(), logits.end());
  double total = 0.0;
  for (double& v : logits) {
    v = std::exp(v - mx);
    total += v;
  }
  for (double& v : logits) v /= total;
}

void Logistic::train(const DatasetView& data) {
  require_trainable(data);
  standardizer_.fit(data);
  const std::size_t k = data.num_classes();
  const std::size_t d = data.num_features();
  const std::size_t n = data.num_instances();

  // Pre-standardize the training matrix once, into one contiguous block.
  std::vector<double> x(n * d);
  std::vector<std::size_t> labels(n);
  for (std::size_t i = 0; i < n; ++i) {
    kernels::standardize_into(data.features_of(i), standardizer_.means(),
                              standardizer_.stddevs(),
                              {x.data() + i * d, d});
    labels[i] = data.class_of(i);
  }

  weights_.assign(k, std::vector<double>(d + 1, 0.0));
  std::vector<std::vector<double>> velocity(k,
                                            std::vector<double>(d + 1, 0.0));
  std::vector<std::vector<double>> grad(k, std::vector<double>(d + 1, 0.0));

  std::vector<double> logits(k);
  for (std::size_t iter = 0; iter < params_.iterations; ++iter) {
    for (auto& g : grad) std::fill(g.begin(), g.end(), 0.0);

    for (std::size_t i = 0; i < n; ++i) {
      const std::span<const double> xi{x.data() + i * d, d};
      for (std::size_t c = 0; c < k; ++c) {
        logits[c] = kernels::dot({weights_[c].data(), d}, xi, weights_[c][d]);
      }
      softmax_inplace(logits);
      const std::size_t y = labels[i];
      for (std::size_t c = 0; c < k; ++c) {
        const double err = logits[c] - (c == y ? 1.0 : 0.0);
        kernels::axpy(err, xi, {grad[c].data(), d});
        grad[c][d] += err;
      }
    }

    const double inv_n = 1.0 / static_cast<double>(n);
    for (std::size_t c = 0; c < k; ++c) {
      for (std::size_t f = 0; f <= d; ++f) {
        double g = grad[c][f] * inv_n;
        if (f < d) g += params_.l2 * weights_[c][f];  // no bias decay
        velocity[c][f] = params_.momentum * velocity[c][f] -
                         params_.learning_rate * g;
        weights_[c][f] += velocity[c][f];
      }
    }
  }
  build_packed();
}

void Logistic::build_packed() {
  packed_ = kernels::pack_weights_feature_major(weights_);
}

std::vector<double> Logistic::distribution(
    std::span<const double> features) const {
  HMD_REQUIRE(!weights_.empty(), "Logistic: predict before train");
  const std::vector<double> x = standardizer_.transform(features);
  std::vector<double> logits(weights_.size());
  for (std::size_t c = 0; c < weights_.size(); ++c)
    logits[c] = kernels::affine_bias_last(weights_[c], x);
  softmax_inplace(logits);
  return logits;
}

void Logistic::distribution_batch(std::span<const double> flat,
                                  std::size_t window_size,
                                  std::span<double> out) const {
  HMD_REQUIRE(!weights_.empty(), "Logistic: predict before train");
  const std::size_t rows = require_batch(flat, window_size, out);
  const std::size_t k = weights_.size();
  const std::vector<double>& mean = standardizer_.means();
  const std::vector<double>& stddev = standardizer_.stddevs();
  HMD_REQUIRE(window_size == mean.size(),
              "Logistic::distribution_batch: width mismatch");

  // Chunked GEMM: standardize a block of rows into one contiguous scratch
  // buffer, compute every logit of the block in a single affine_batch call
  // (bit-identical to per-row affine_bias_last), then softmax each output
  // slice in place. The chunk bounds scratch memory for huge batches while
  // keeping the kernel's row blocking effective.
  constexpr std::size_t kChunkRows = 128;
  std::vector<double> x(std::min(rows, kChunkRows) * window_size);
  for (std::size_t base = 0; base < rows; base += kChunkRows) {
    const std::size_t lim = std::min(kChunkRows, rows - base);
    kernels::standardize_rows(flat.data() + base * window_size, lim, mean,
                              stddev, x.data());
    kernels::affine_batch(x.data(), lim, window_size, packed_.data(), k,
                          out.data() + base * k);
    for (std::size_t r = 0; r < lim; ++r) {
      const std::span<double> logits = out.subspan((base + r) * k, k);
      // Stable softmax in place in the output slice. The max element's
      // shifted logit is exactly 0.0 and std::exp(0.0) is exactly 1.0, so
      // skipping the libm call there changes nothing but the call count.
      const double mx = *std::max_element(logits.begin(), logits.end());
      double total = 0.0;
      for (double& v : logits) {
        const double t = v - mx;
        v = t == 0.0 ? 1.0 : std::exp(t);
        total += v;
      }
      for (double& v : logits) v /= total;
    }
  }
}

std::size_t Logistic::predict(std::span<const double> features) const {
  const auto dist = distribution(features);
  return static_cast<std::size_t>(
      std::max_element(dist.begin(), dist.end()) - dist.begin());
}

}  // namespace hmd::ml
