// Trained-model persistence.
//
// A deployed detector is trained once and shipped; this module saves and
// loads trained classifiers in a line-oriented text format:
//
//   hmd-model v1
//   scheme <name>
//   classes <k>
//   ...scheme-specific sections...
//   end
//
// Supported schemes: ZeroR, OneR, DecisionStump, J48, JRip, NaiveBayes,
// MLR (Logistic), SVM, MLP. Round-trip is exact: a loaded model produces
// bit-identical predictions (all parameters serialize via hex-encoded
// doubles). Lazy/ensemble learners (IBk, AdaBoostM1, Bagging, Mahalanobis)
// are not currently serializable and raise PreconditionError.
#pragma once

#include <iosfwd>
#include <memory>

#include "ml/classifier.hpp"

namespace hmd::ml {

/// Serialize a trained classifier. Throws hmd::PreconditionError for
/// unsupported or untrained models.
void save_model(std::ostream& out, const Classifier& clf);

/// Reconstruct a classifier saved by save_model. Throws hmd::ParseError on
/// malformed input.
std::unique_ptr<Classifier> load_model(std::istream& in);

}  // namespace hmd::ml
