// Trained-model persistence.
//
// A deployed detector is trained once and shipped; this module saves and
// loads trained classifiers in a line-oriented text format:
//
//   hmd-model v1
//   scheme <name>
//   classes <k>
//   ...scheme-specific sections...
//   end
//
// Supported schemes: ZeroR, OneR, DecisionStump, J48, JRip, NaiveBayes,
// MLR (Logistic), SVM, MLP, IBk, AdaBoostM1, Bagging, Mahalanobis, and
// the one-class family (OneClassSvm, KdeAnomaly, MahalanobisThreshold —
// the drift retrain loop round-trips these through deployment bundles).
// Round-trip is exact: a loaded model produces bit-identical predictions
// (all parameters serialize via hex-encoded doubles).
#pragma once

#include <iosfwd>
#include <memory>

#include "ml/classifier.hpp"
#include "util/result.hpp"

namespace hmd::ml {

/// Serialize a trained classifier. Throws hmd::PreconditionError for
/// unsupported or untrained models.
void save_model(std::ostream& out, const Classifier& clf);

/// Reconstruct a classifier saved by save_model. Malformed input yields an
/// ErrorInfo (ErrCode::kParse) with a "loading model" context frame — the
/// primary load API; the resilience layer branches on it without unwinding.
Result<std::unique_ptr<Classifier>> try_load_model(std::istream& in);

/// Thin throwing wrapper over try_load_model: raises hmd::ParseError on
/// malformed input. Kept so pre-Result call sites compile unchanged.
std::unique_ptr<Classifier> load_model(std::istream& in);

}  // namespace hmd::ml
