#include "ml/naive_bayes.hpp"

#include <algorithm>
#include <cmath>
#include <numbers>

#include "util/error.hpp"

namespace hmd::ml {

void NaiveBayes::train(const DatasetView& data) {
  require_trainable(data);
  const std::size_t k = data.num_classes();
  const std::size_t d = data.num_features();
  const std::size_t n = data.num_instances();

  priors_.assign(k, 0.0);
  mean_.assign(k, std::vector<double>(d, 0.0));
  var_.assign(k, std::vector<double>(d, 0.0));
  std::vector<std::size_t> counts(k, 0);

  for (std::size_t i = 0; i < n; ++i) {
    const std::size_t c = data.class_of(i);
    ++counts[c];
    const auto x = data.features_of(i);
    for (std::size_t f = 0; f < d; ++f) mean_[c][f] += x[f];
  }
  for (std::size_t c = 0; c < k; ++c) {
    priors_[c] =
        (static_cast<double>(counts[c]) + 1.0) / (static_cast<double>(n) + static_cast<double>(k));
    if (counts[c] > 0)
      for (double& m : mean_[c]) m /= static_cast<double>(counts[c]);
  }
  for (std::size_t i = 0; i < n; ++i) {
    const std::size_t c = data.class_of(i);
    const auto x = data.features_of(i);
    for (std::size_t f = 0; f < d; ++f) {
      const double dlt = x[f] - mean_[c][f];
      var_[c][f] += dlt * dlt;
    }
  }
  // Variance floor keeps degenerate (constant) features from producing
  // infinite densities; WEKA applies a similar minimum-precision floor.
  for (std::size_t c = 0; c < k; ++c) {
    for (std::size_t f = 0; f < d; ++f) {
      var_[c][f] = counts[c] > 1
                       ? var_[c][f] / static_cast<double>(counts[c] - 1)
                       : 1.0;
      const double global_sd = data.feature_stddev(f);
      const double floor =
          std::max(1e-6, 1e-4 * global_sd * global_sd);
      var_[c][f] = std::max(var_[c][f], floor);
    }
  }
}

std::vector<double> NaiveBayes::distribution(
    std::span<const double> features) const {
  HMD_REQUIRE(!priors_.empty(), "NaiveBayes: predict before train");
  HMD_REQUIRE(features.size() == mean_.front().size(),
              "NaiveBayes: feature width mismatch");
  const std::size_t k = priors_.size();
  std::vector<double> log_post(k, 0.0);
  for (std::size_t c = 0; c < k; ++c) {
    double lp = std::log(priors_[c]);
    for (std::size_t f = 0; f < features.size(); ++f) {
      const double v = var_[c][f];
      const double dlt = features[f] - mean_[c][f];
      lp += -0.5 * std::log(2.0 * std::numbers::pi * v) -
            dlt * dlt / (2.0 * v);
    }
    log_post[c] = lp;
  }
  // Softmax the log posteriors.
  const double mx = *std::max_element(log_post.begin(), log_post.end());
  double total = 0.0;
  std::vector<double> post(k);
  for (std::size_t c = 0; c < k; ++c) {
    post[c] = std::exp(log_post[c] - mx);
    total += post[c];
  }
  for (double& p : post) p /= total;
  return post;
}

void NaiveBayes::distribution_batch(std::span<const double> flat,
                                    std::size_t window_size,
                                    std::span<double> out) const {
  HMD_REQUIRE(!priors_.empty(), "NaiveBayes: predict before train");
  const std::size_t rows = require_batch(flat, window_size, out);
  HMD_REQUIRE(window_size == mean_.front().size(),
              "NaiveBayes::distribution_batch: width mismatch");
  const std::size_t k = priors_.size();
  std::vector<double> log_post(k);  // reused across rows
  for (std::size_t r = 0; r < rows; ++r) {
    const std::span<const double> x =
        flat.subspan(r * window_size, window_size);
    for (std::size_t c = 0; c < k; ++c) {
      double lp = std::log(priors_[c]);
      for (std::size_t f = 0; f < window_size; ++f) {
        const double v = var_[c][f];
        const double dlt = x[f] - mean_[c][f];
        lp += -0.5 * std::log(2.0 * std::numbers::pi * v) -
              dlt * dlt / (2.0 * v);
      }
      log_post[c] = lp;
    }
    // Softmax the log posteriors, straight into the output slice.
    const std::span<double> post = out.subspan(r * k, k);
    const double mx = *std::max_element(log_post.begin(), log_post.end());
    double total = 0.0;
    for (std::size_t c = 0; c < k; ++c) {
      post[c] = std::exp(log_post[c] - mx);
      total += post[c];
    }
    for (double& p : post) p /= total;
  }
}

std::size_t NaiveBayes::predict(std::span<const double> features) const {
  const auto dist = distribution(features);
  return static_cast<std::size_t>(
      std::max_element(dist.begin(), dist.end()) - dist.begin());
}

}  // namespace hmd::ml
