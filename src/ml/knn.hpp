// k-nearest-neighbours (WEKA's IBk) over standardized Euclidean distance.
// Lazy learner: training stores the data; prediction is a linear scan, so
// use on modest datasets (it is an example/ablation classifier here, not a
// hardware-deployment candidate — the paper's point exactly).
#pragma once

#include <cstdint>

#include "ml/classifier.hpp"
#include "ml/preprocess.hpp"

namespace hmd::ml {

class Knn final : public Classifier {
 public:
  explicit Knn(std::size_t k = 5) : k_(k) {}

  void train(const DatasetView& data) override;
  std::size_t predict(std::span<const double> features) const override;
  std::vector<double> distribution(
      std::span<const double> features) const override;
  /// Buffer-reusing batch path: one standardized-row buffer and one k-heap
  /// reused across the whole chunk (the per-row path allocates both).
  void distribution_batch(std::span<const double> flat,
                          std::size_t window_size,
                          std::span<double> out) const override;
  std::string name() const override { return "IBk"; }
  std::size_t num_classes() const override { return num_classes_; }

 private:
  friend struct ModelIo;
  /// (distance², label) — heap entries for the k-closest scan.
  using Entry = std::pair<double, std::size_t>;

  std::size_t dim() const { return standardizer_.means().size(); }
  void score_into(std::span<const double> x, std::vector<Entry>& heap,
                  std::span<double> dist) const;
  /// Rebuilds the int16 screen mirror from points_ (train and model load).
  void build_quantized();

  std::size_t k_;
  std::size_t num_classes_ = 0;
  Standardizer standardizer_;
  /// Standardized training points, row-major n x dim() (contiguous so the
  /// distance scan streams memory).
  std::vector<double> points_;
  std::vector<std::size_t> labels_;
  /// 12-bit quantization of points_ in blocked column-major layout
  /// (kernels::kScreenBlock rows per block, 4x fewer bytes than the double
  /// rows). The distance scan is memory-bound, so most candidates are
  /// rejected from this mirror via an exact-integer lower bound on their
  /// distance; only candidates the bound cannot rule out touch the double
  /// rows. The verdicts are provably identical to scanning points_
  /// directly — see score_into. Empty when the screen is disabled.
  std::vector<std::int16_t> qpoints_;
  double qlo_ = 0.0;     ///< value mapped to grid index 0 (stored -2047)
  double qscale_ = 1.0;  ///< quantization step
};

}  // namespace hmd::ml
