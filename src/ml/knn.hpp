// k-nearest-neighbours (WEKA's IBk) over standardized Euclidean distance.
// Lazy learner: training stores the data — plus an exact KD-tree index so
// prediction is sublinear on big stores instead of a full linear scan. The
// index is an accelerator, not an approximation: every prediction (ties
// included) is bit-identical to the brute-force scan, which remains the
// reference path (and the fallback for tiny stores, non-finite queries,
// or when the index is disabled).
#pragma once

#include <cstdint>
#include <utility>

#include "ml/classifier.hpp"
#include "ml/preprocess.hpp"

namespace hmd::ml {

class Knn final : public Classifier {
 public:
  explicit Knn(std::size_t k = 5) : k_(k) {}

  void train(const DatasetView& data) override;
  std::size_t predict(std::span<const double> features) const override;
  std::vector<double> distribution(
      std::span<const double> features) const override;
  /// Buffer-reusing batch path: one scratch block (standardized row,
  /// quantized query, heaps, candidate list, traversal stack) reused
  /// across the whole chunk.
  void distribution_batch(std::span<const double> flat,
                          std::size_t window_size,
                          std::span<double> out) const override;
  std::string name() const override { return "IBk"; }
  std::size_t num_classes() const override { return num_classes_; }

  /// Test/bench hook: force the brute-force reference scan (true by
  /// default when an index exists). Flipping this never changes verdicts,
  /// only speed — the index is exact.
  void set_index_enabled(bool enabled) { index_enabled_ = enabled; }
  /// Test/bench hook: bypass the int16 screen so score_brute degrades to
  /// the plain exact scan — the reference "brute path" every accelerated
  /// path is benched and verified against. Never changes verdicts.
  void set_screen_enabled(bool enabled) { screen_enabled_ = enabled; }
  /// Whether a KD-tree index was built (stores below the build threshold
  /// stay brute-force).
  bool has_index() const { return !nodes_.empty(); }

 private:
  friend struct ModelIo;
  /// (distance², label) — heap entries for the k-closest scan.
  using Entry = std::pair<double, std::size_t>;

  /// KD-tree node over positions [begin, end) of the permuted store.
  /// left == 0 marks a leaf (node 0 is the root, so 0 is never a child).
  struct KdNode {
    std::uint32_t left = 0;
    std::uint32_t right = 0;
    std::uint32_t begin = 0;
    std::uint32_t end = 0;
    std::uint32_t qoff = 0;  ///< leaf: offset of its int16 block in qtree_
  };

  /// Per-query scratch reused across batch rows (the pre-index code
  /// allocated the quantized-query vector inside every score_into call).
  struct Scratch {
    std::vector<double> x;           ///< standardized query
    std::vector<std::int16_t> qx;    ///< quantized query
    std::vector<Entry> heap;         ///< exact k-closest (d2, label) heap
    std::vector<double> dheap;       ///< traversal pure-d2 k-smallest heap
    std::vector<Entry> cand;         ///< (d2, original index) candidates
    /// Near-child-first DFS stack of (box bound, node id).
    std::vector<std::pair<double, std::uint32_t>> frontier;
    /// Batch processing order (locality-sorted row indices).
    std::vector<std::uint32_t> order;
  };

  std::size_t dim() const { return standardizer_.means().size(); }
  void score_into(std::span<const double> x, Scratch& s,
                  std::span<double> dist) const;
  void score_brute(std::span<const double> x, Scratch& s, bool finite) const;
  void score_indexed(std::span<const double> x, Scratch& s) const;
  /// Quantizes a query onto the training grid; returns the rigorous
  /// reconstruction-error norm used by the integer screen threshold.
  double quantize_query(std::span<const double> x,
                        std::vector<std::int16_t>& qx) const;
  /// Rebuilds the int16 screen mirror from points_ (train and model load).
  void build_quantized();
  /// Rebuilds the KD-tree index from points_ (train and model load).
  void build_index();

  std::size_t k_;
  std::size_t num_classes_ = 0;
  Standardizer standardizer_;
  /// Standardized training points, row-major n x dim() (contiguous so the
  /// distance scan streams memory).
  std::vector<double> points_;
  std::vector<std::size_t> labels_;
  /// Adaptive-span quantization of points_ in blocked dim-pair-interleaved
  /// layout (kernels::kScreenBlock rows per block,
  /// kernels::screen_block_index addressing, 4x fewer bytes than the
  /// double rows). The distance scan
  /// is memory-bound, so most candidates are rejected from this mirror via
  /// an exact-integer lower bound on their distance; only candidates the
  /// bound cannot rule out touch the double rows. The verdicts are
  /// provably identical to scanning points_ directly — see score_brute.
  /// Empty when the screen is disabled.
  std::vector<std::int16_t> qpoints_;
  double qlo_ = 0.0;     ///< value mapped to grid index 0 (stored -qspan_/2)
  double qscale_ = 1.0;  ///< quantization step
  /// Even grid span: indices run [0, qspan_], stored centred at
  /// qspan_/2. The finest span with dim * qspan_² <= INT32_MAX (exact
  /// screen sums) and int16 diffs — 4094 at 128 dims, finer below.
  std::int64_t qspan_ = 4094;

  // --- KD-tree index (exact; see score_indexed) --------------------------
  bool index_enabled_ = true;
  bool screen_enabled_ = true;
  std::vector<KdNode> nodes_;        ///< nodes_[0] is the root
  std::vector<double> box_lo_;       ///< per-node bounding box, nodes x dim
  std::vector<double> box_hi_;
  std::vector<std::uint32_t> perm_;  ///< tree position -> original index
  /// points_ rows permuted into tree order, so leaf scans are contiguous.
  std::vector<double> tree_points_;
  /// One int16 screen block per leaf (same grid as qpoints_), leaf rows in
  /// the dim-pair-interleaved screen layout, padded to kernels::kLeafBlock.
  std::vector<std::int16_t> qtree_;
};

}  // namespace hmd::ml
