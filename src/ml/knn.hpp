// k-nearest-neighbours (WEKA's IBk) over standardized Euclidean distance.
// Lazy learner: training stores the data; prediction is a linear scan, so
// use on modest datasets (it is an example/ablation classifier here, not a
// hardware-deployment candidate — the paper's point exactly).
#pragma once

#include "ml/classifier.hpp"
#include "ml/preprocess.hpp"

namespace hmd::ml {

class Knn final : public Classifier {
 public:
  explicit Knn(std::size_t k = 5) : k_(k) {}

  void train(const Dataset& data) override;
  std::size_t predict(std::span<const double> features) const override;
  std::vector<double> distribution(
      std::span<const double> features) const override;
  std::string name() const override { return "IBk"; }
  std::size_t num_classes() const override { return num_classes_; }

 private:
  friend struct ModelIo;
  std::size_t k_;
  std::size_t num_classes_ = 0;
  Standardizer standardizer_;
  std::vector<std::vector<double>> points_;
  std::vector<std::size_t> labels_;
};

}  // namespace hmd::ml
