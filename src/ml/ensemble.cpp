#include "ml/ensemble.hpp"

#include <algorithm>
#include <cmath>

#include "util/error.hpp"

namespace hmd::ml {

namespace {

/// Weighted bootstrap: n draws with replacement, probability ∝ weights.
/// Returns row indices so callers can train on a zero-copy view.
std::vector<std::size_t> resample(const DatasetView& data,
                                  const std::vector<double>& weights,
                                  Rng& rng) {
  // Cumulative distribution for O(log n) draws.
  std::vector<double> cumulative(weights.size());
  double total = 0.0;
  for (std::size_t i = 0; i < weights.size(); ++i) {
    total += weights[i];
    cumulative[i] = total;
  }
  HMD_ASSERT(total > 0.0);
  std::vector<std::size_t> rows;
  rows.reserve(data.num_instances());
  for (std::size_t i = 0; i < data.num_instances(); ++i) {
    const double r = rng.uniform() * total;
    const auto it =
        std::upper_bound(cumulative.begin(), cumulative.end(), r);
    const auto idx = static_cast<std::size_t>(
        std::min<std::ptrdiff_t>(it - cumulative.begin(),
                                 static_cast<std::ptrdiff_t>(
                                     cumulative.size() - 1)));
    rows.push_back(idx);
  }
  return rows;
}

}  // namespace

void AdaBoostM1::train(const DatasetView& data) {
  require_trainable(data);
  HMD_REQUIRE(base_ != nullptr, "AdaBoostM1: no base factory");
  num_classes_ = data.num_classes();
  members_.clear();
  alphas_.clear();

  const std::size_t n = data.num_instances();
  std::vector<double> weights(n, 1.0 / static_cast<double>(n));
  Rng rng(params_.seed);

  for (std::size_t t = 0; t < params_.iterations; ++t) {
    const DatasetView sample = data.select(resample(data, weights, rng));
    std::unique_ptr<Classifier> member = base_();
    HMD_REQUIRE(member != nullptr, "AdaBoostM1: factory returned null");
    member->train(sample);

    // Weighted error on the ORIGINAL training distribution.
    double error = 0.0;
    std::vector<bool> wrong(n);
    for (std::size_t i = 0; i < n; ++i) {
      wrong[i] = member->predict(data.features_of(i)) != data.class_of(i);
      if (wrong[i]) error += weights[i];
    }

    if (error >= 0.5) {
      // Worse than chance: discard and restart from uniform weights, as
      // AdaBoost.M1 prescribes (stop if this is the first member).
      if (members_.empty() && t + 1 == params_.iterations) break;
      std::fill(weights.begin(), weights.end(),
                1.0 / static_cast<double>(n));
      continue;
    }

    const double bounded_error = std::max(error, 1e-10);
    const double alpha =
        std::log((1.0 - bounded_error) / bounded_error);
    members_.push_back(std::move(member));
    alphas_.push_back(alpha);

    if (error <= 1e-10) break;  // perfect member: committee is done

    // Reweight: misclassified instances gain weight.
    double total = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      if (wrong[i]) weights[i] *= std::exp(alpha);
      total += weights[i];
    }
    for (double& w : weights) w /= total;
  }

  if (members_.empty()) {
    // Degenerate data: fall back to a single base member.
    std::unique_ptr<Classifier> member = base_();
    member->train(data);
    members_.push_back(std::move(member));
    alphas_.push_back(1.0);
  }
}

std::vector<double> AdaBoostM1::distribution(
    std::span<const double> features) const {
  HMD_REQUIRE(!members_.empty(), "AdaBoostM1: predict before train");
  std::vector<double> votes(num_classes_, 0.0);
  for (std::size_t m = 0; m < members_.size(); ++m)
    votes[members_[m]->predict(features)] += alphas_[m];
  double total = 0.0;
  for (double v : votes) total += v;
  if (total > 0.0)
    for (double& v : votes) v /= total;
  return votes;
}

void AdaBoostM1::distribution_batch(std::span<const double> flat,
                                    std::size_t window_size,
                                    std::span<double> out) const {
  HMD_REQUIRE(!members_.empty(), "AdaBoostM1: predict before train");
  const std::size_t rows = require_batch(flat, window_size, out);
  const std::size_t k = num_classes_;
  std::fill(out.begin(), out.end(), 0.0);
  for (std::size_t r = 0; r < rows; ++r) {
    const std::span<const double> x =
        flat.subspan(r * window_size, window_size);
    const std::span<double> votes = out.subspan(r * k, k);
    for (std::size_t m = 0; m < members_.size(); ++m)
      votes[members_[m]->predict(x)] += alphas_[m];
    double total = 0.0;
    for (double v : votes) total += v;
    if (total > 0.0)
      for (double& v : votes) v /= total;
  }
}

std::size_t AdaBoostM1::predict(std::span<const double> features) const {
  const auto dist = distribution(features);
  return static_cast<std::size_t>(
      std::max_element(dist.begin(), dist.end()) - dist.begin());
}

void Bagging::train(const DatasetView& data) {
  require_trainable(data);
  HMD_REQUIRE(base_ != nullptr, "Bagging: no base factory");
  HMD_REQUIRE(params_.bags >= 1, "Bagging: need at least one bag");
  num_classes_ = data.num_classes();
  members_.clear();

  Rng rng(params_.seed);
  const std::vector<double> uniform(data.num_instances(), 1.0);
  for (std::size_t b = 0; b < params_.bags; ++b) {
    const DatasetView bag = data.select(resample(data, uniform, rng));
    std::unique_ptr<Classifier> member = base_();
    HMD_REQUIRE(member != nullptr, "Bagging: factory returned null");
    member->train(bag);
    members_.push_back(std::move(member));
  }
}

std::vector<double> Bagging::distribution(
    std::span<const double> features) const {
  HMD_REQUIRE(!members_.empty(), "Bagging: predict before train");
  std::vector<double> votes(num_classes_, 0.0);
  for (const auto& member : members_)
    votes[member->predict(features)] += 1.0;
  for (double& v : votes) v /= static_cast<double>(members_.size());
  return votes;
}

void Bagging::distribution_batch(std::span<const double> flat,
                                 std::size_t window_size,
                                 std::span<double> out) const {
  HMD_REQUIRE(!members_.empty(), "Bagging: predict before train");
  const std::size_t rows = require_batch(flat, window_size, out);
  const std::size_t k = num_classes_;
  std::fill(out.begin(), out.end(), 0.0);
  for (std::size_t r = 0; r < rows; ++r) {
    const std::span<const double> x =
        flat.subspan(r * window_size, window_size);
    const std::span<double> votes = out.subspan(r * k, k);
    for (const auto& member : members_) votes[member->predict(x)] += 1.0;
    for (double& v : votes) v /= static_cast<double>(members_.size());
  }
}

std::size_t Bagging::predict(std::span<const double> features) const {
  const auto dist = distribution(features);
  return static_cast<std::size_t>(
      std::max_element(dist.begin(), dist.end()) - dist.begin());
}

}  // namespace hmd::ml
