// Dense row-major matrix with exactly the linear algebra PCA needs:
// products, transpose, covariance/correlation, and a cyclic Jacobi
// eigensolver for symmetric matrices (the feature dimension is 16, so
// Jacobi is both simple and plenty fast).
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace hmd::ml {

/// Dense row-major matrix of doubles.
class Matrix {
 public:
  Matrix() = default;
  Matrix(std::size_t rows, std::size_t cols, double fill = 0.0);

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }

  double& at(std::size_t r, std::size_t c);
  double at(std::size_t r, std::size_t c) const;
  double& operator()(std::size_t r, std::size_t c) { return at(r, c); }
  double operator()(std::size_t r, std::size_t c) const { return at(r, c); }

  std::span<const double> row(std::size_t r) const;
  /// Writable view of row `r` (kernels write standardized rows in place).
  std::span<double> mutable_row(std::size_t r);

  static Matrix identity(std::size_t n);

  Matrix transposed() const;
  Matrix operator*(const Matrix& other) const;
  /// y = A x for a vector x.
  std::vector<double> multiply(std::span<const double> x) const;

  bool is_symmetric(double tol = 1e-9) const;
  /// Largest absolute off-diagonal element (square matrices).
  double max_off_diagonal() const;

  /// Inverse via Gauss–Jordan with partial pivoting. Throws
  /// hmd::PreconditionError if the matrix is singular or non-square.
  Matrix inverse() const;

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<double> data_;
};

/// Sample covariance matrix of `data` rows (columns are variables).
Matrix covariance_matrix(const Matrix& data);

/// Correlation matrix (covariance of standardized columns). Constant
/// columns get unit self-correlation and zero cross-correlation.
Matrix correlation_matrix(const Matrix& data);

/// Result of a symmetric eigendecomposition, eigenvalues descending.
struct EigenDecomposition {
  std::vector<double> eigenvalues;
  /// Column j of `eigenvectors` is the unit eigenvector for eigenvalue j.
  Matrix eigenvectors;
};

/// Cyclic Jacobi eigendecomposition of a symmetric matrix.
/// Throws hmd::PreconditionError if `m` is not symmetric.
EigenDecomposition jacobi_eigen(const Matrix& m, double tol = 1e-12,
                                std::size_t max_sweeps = 100);

}  // namespace hmd::ml
