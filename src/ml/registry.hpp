// Name-based classifier construction for the experiment harness and
// benches ("give me a fresh J48"), mirroring WEKA's scheme-name strings.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "ml/classifier.hpp"

namespace hmd::ml {

/// Construct a fresh classifier by scheme name. Known names:
/// "ZeroR", "OneR", "DecisionStump", "J48", "JRip", "NaiveBayes",
/// "MLR" (alias "Logistic"), "SVM", "MLP", "IBk",
/// "AdaBoostM1" (boosted stumps), "Bagging" (bagged J48),
/// "Mahalanobis" (benign-only anomaly detector, binary datasets only).
/// Throws hmd::PreconditionError for unknown names.
std::unique_ptr<Classifier> make_classifier(const std::string& name);

/// The binary-detection classifier set compared in Figs. 13-16.
std::vector<std::string> binary_study_classifiers();

/// The multiclass classifier set compared in Figs. 17-19 (MLR, MLP, SVM).
std::vector<std::string> multiclass_study_classifiers();

}  // namespace hmd::ml
