// Name-based classifier construction for the experiment harness and
// benches ("give me a fresh J48"), mirroring WEKA's scheme-name strings.
//
// The registry is table-driven: one SchemeEntry per scheme carries the
// factory, a one-line description, and the scheme's position (if any) in
// the thesis's binary (Figs. 13-16) and multiclass (Figs. 17-19) study
// lists — so known_schemes(), make_classifier() and the study lists can
// never drift apart.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "ml/classifier.hpp"

namespace hmd::ml {

/// Construct a fresh classifier by scheme name (see known_schemes()).
/// "Logistic" is accepted as an alias of "MLR". Throws
/// hmd::PreconditionError listing all known schemes for unknown names.
std::unique_ptr<Classifier> make_classifier(const std::string& name);

/// Every scheme name make_classifier accepts (canonical names, no
/// aliases), in registry order.
std::vector<std::string> known_schemes();

/// One-line description of a known scheme ("" for unknown names).
std::string scheme_description(const std::string& name);

/// True if `name` (canonical or alias) constructs a classifier.
bool is_known_scheme(const std::string& name);

/// Benign-only (one-class) schemes, in registry order: they train on the
/// benign rows of a binary dataset only, so the serving drift loop can
/// retrain them from unlabeled live traffic (serve/drift.hpp).
std::vector<std::string> one_class_schemes();

/// True if `name` (canonical or alias) names a one-class scheme.
bool is_one_class_scheme(const std::string& name);

/// Schemes hw::compile() can lower to the netlist IR (RTL emission, the
/// cycle-accurate simulator, the fpga serving tier), in registry order.
std::vector<std::string> rtl_schemes();

/// The subset of rtl_schemes() whose netlist class decisions are
/// bit-identical to hw/evaluate_fixed_point (exact threshold/weight
/// folding; excludes the LUT-approximated NaiveBayes and MLP).
std::vector<std::string> rtl_exact_schemes();

/// True if `name` (canonical or alias) names an RTL-compilable scheme.
bool is_rtl_scheme(const std::string& name);

/// The binary-detection classifier set compared in Figs. 13-16.
std::vector<std::string> binary_study_classifiers();

/// The multiclass classifier set compared in Figs. 17-19 (MLR, MLP, SVM).
std::vector<std::string> multiclass_study_classifiers();

}  // namespace hmd::ml
