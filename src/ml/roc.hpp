// ROC analysis for binary detectors.
//
// With an 89 %-malware prior (Table 1), raw accuracy hugs the majority
// rate; ROC/AUC measures ranking quality independent of the prior and of
// the alarm threshold — the right lens for comparing detectors that will
// be threshold-tuned at deployment (see examples/online_monitor.cpp).
#pragma once

#include <vector>

#include "ml/classifier.hpp"
#include "ml/dataset.hpp"

namespace hmd::ml {

/// One operating point of a detector.
struct RocPoint {
  double threshold = 0.0;
  double true_positive_rate = 0.0;   ///< malware recall
  double false_positive_rate = 0.0;  ///< 1 - benign recall
};

/// ROC curve of a binary classifier (positive class = index 1), computed
/// from distribution()[1] scores over `test`. Points are ordered by
/// descending threshold, starting at (0,0) and ending at (1,1).
std::vector<RocPoint> roc_curve(const Classifier& clf, const Dataset& test);

/// Area under the ROC curve (trapezoidal). 0.5 = chance, 1.0 = perfect.
double auc(const std::vector<RocPoint>& curve);

/// Convenience: AUC of `clf` on `test`.
double auc_of(const Classifier& clf, const Dataset& test);

/// The operating point with the highest Youden index (TPR - FPR) — a
/// standard threshold choice for imbalanced deployments.
RocPoint best_youden_point(const std::vector<RocPoint>& curve);

}  // namespace hmd::ml
