#include "ml/mlp.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "ml/logistic.hpp"  // softmax_inplace
#include "util/error.hpp"
#include "util/rng.hpp"

namespace hmd::ml {

namespace {
double sigmoid(double z) { return 1.0 / (1.0 + std::exp(-z)); }
}  // namespace

void Mlp::train(const Dataset& data) {
  require_trainable(data);
  standardizer_.fit(data);
  const std::size_t k = data.num_classes();
  const std::size_t d = data.num_features();
  const std::size_t n = data.num_instances();
  const std::size_t h =
      params_.hidden_units > 0 ? params_.hidden_units : (d + k) / 2;
  HMD_REQUIRE(h > 0, "MLP needs at least one hidden unit");

  std::vector<std::vector<double>> x(n);
  for (std::size_t i = 0; i < n; ++i)
    x[i] = standardizer_.transform(data.features_of(i));

  Rng rng(params_.seed);
  auto init = [&](std::size_t fan_in) {
    return rng.normal(0.0, 1.0 / std::sqrt(static_cast<double>(fan_in)));
  };
  w1_.assign(h, std::vector<double>(d + 1, 0.0));
  w2_.assign(k, std::vector<double>(h + 1, 0.0));
  for (auto& row : w1_)
    for (double& w : row) w = init(d + 1);
  for (auto& row : w2_)
    for (double& w : row) w = init(h + 1);

  std::vector<std::vector<double>> v1(h, std::vector<double>(d + 1, 0.0));
  std::vector<std::vector<double>> v2(k, std::vector<double>(h + 1, 0.0));

  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), 0);

  std::vector<double> hidden(h);
  std::vector<double> out(k);
  std::vector<double> delta_h(h);

  for (std::size_t epoch = 0; epoch < params_.epochs; ++epoch) {
    const double lr =
        params_.decay ? params_.learning_rate /
                            (1.0 + 4.0 * static_cast<double>(epoch) /
                                       static_cast<double>(params_.epochs))
                      : params_.learning_rate;
    rng.shuffle(order);
    for (std::size_t idx : order) {
      const std::vector<double>& xi = x[idx];
      // Forward.
      for (std::size_t j = 0; j < h; ++j) {
        double z = w1_[j][d];
        for (std::size_t f = 0; f < d; ++f) z += w1_[j][f] * xi[f];
        hidden[j] = sigmoid(z);
      }
      for (std::size_t c = 0; c < k; ++c) {
        double z = w2_[c][h];
        for (std::size_t j = 0; j < h; ++j) z += w2_[c][j] * hidden[j];
        out[c] = z;
      }
      softmax_inplace(out);

      // Backward (cross-entropy + softmax → out - onehot).
      const std::size_t y = data.class_of(idx);
      std::fill(delta_h.begin(), delta_h.end(), 0.0);
      for (std::size_t c = 0; c < k; ++c) {
        const double err = out[c] - (c == y ? 1.0 : 0.0);
        for (std::size_t j = 0; j < h; ++j) {
          delta_h[j] += err * w2_[c][j];
          v2[c][j] = params_.momentum * v2[c][j] -
                     lr * err * hidden[j];
          w2_[c][j] += v2[c][j];
        }
        v2[c][h] =
            params_.momentum * v2[c][h] - lr * err;
        w2_[c][h] += v2[c][h];
      }
      for (std::size_t j = 0; j < h; ++j) {
        const double grad = delta_h[j] * hidden[j] * (1.0 - hidden[j]);
        for (std::size_t f = 0; f < d; ++f) {
          v1[j][f] = params_.momentum * v1[j][f] -
                     lr * grad * xi[f];
          w1_[j][f] += v1[j][f];
        }
        v1[j][d] =
            params_.momentum * v1[j][d] - lr * grad;
        w1_[j][d] += v1[j][d];
      }
    }
  }
}

std::vector<double> Mlp::hidden_activations(std::span<const double> x) const {
  const std::size_t d = x.size();
  std::vector<double> hidden(w1_.size());
  for (std::size_t j = 0; j < w1_.size(); ++j) {
    double z = w1_[j][d];
    for (std::size_t f = 0; f < d; ++f) z += w1_[j][f] * x[f];
    hidden[j] = sigmoid(z);
  }
  return hidden;
}

std::vector<double> Mlp::distribution(std::span<const double> features) const {
  HMD_REQUIRE(!w2_.empty(), "MLP: predict before train");
  const std::vector<double> x = standardizer_.transform(features);
  const std::vector<double> hidden = hidden_activations(x);
  std::vector<double> out(w2_.size());
  for (std::size_t c = 0; c < w2_.size(); ++c) {
    double z = w2_[c][hidden.size()];
    for (std::size_t j = 0; j < hidden.size(); ++j) z += w2_[c][j] * hidden[j];
    out[c] = z;
  }
  softmax_inplace(out);
  return out;
}

std::size_t Mlp::predict(std::span<const double> features) const {
  const auto dist = distribution(features);
  return static_cast<std::size_t>(
      std::max_element(dist.begin(), dist.end()) - dist.begin());
}

}  // namespace hmd::ml
