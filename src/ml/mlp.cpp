#include "ml/mlp.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "ml/kernels.hpp"
#include "ml/logistic.hpp"  // softmax_inplace
#include "util/error.hpp"
#include "util/rng.hpp"

namespace hmd::ml {

namespace {
double sigmoid(double z) { return 1.0 / (1.0 + std::exp(-z)); }
}  // namespace

void Mlp::train(const DatasetView& data) {
  require_trainable(data);
  standardizer_.fit(data);
  const std::size_t k = data.num_classes();
  const std::size_t d = data.num_features();
  const std::size_t n = data.num_instances();
  const std::size_t h =
      params_.hidden_units > 0 ? params_.hidden_units : (d + k) / 2;
  HMD_REQUIRE(h > 0, "MLP needs at least one hidden unit");

  std::vector<double> x(n * d);  // standardized rows, contiguous
  std::vector<std::size_t> labels(n);
  for (std::size_t i = 0; i < n; ++i) {
    kernels::standardize_into(data.features_of(i), standardizer_.means(),
                              standardizer_.stddevs(),
                              {x.data() + i * d, d});
    labels[i] = data.class_of(i);
  }

  Rng rng(params_.seed);
  auto init = [&](std::size_t fan_in) {
    return rng.normal(0.0, 1.0 / std::sqrt(static_cast<double>(fan_in)));
  };
  w1_.assign(h, std::vector<double>(d + 1, 0.0));
  w2_.assign(k, std::vector<double>(h + 1, 0.0));
  for (auto& row : w1_)
    for (double& w : row) w = init(d + 1);
  for (auto& row : w2_)
    for (double& w : row) w = init(h + 1);

  std::vector<std::vector<double>> v1(h, std::vector<double>(d + 1, 0.0));
  std::vector<std::vector<double>> v2(k, std::vector<double>(h + 1, 0.0));

  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), 0);

  std::vector<double> hidden(h);
  std::vector<double> out(k);
  std::vector<double> delta_h(h);

  for (std::size_t epoch = 0; epoch < params_.epochs; ++epoch) {
    const double lr =
        params_.decay ? params_.learning_rate /
                            (1.0 + 4.0 * static_cast<double>(epoch) /
                                       static_cast<double>(params_.epochs))
                      : params_.learning_rate;
    rng.shuffle(order);
    for (std::size_t idx : order) {
      const std::span<const double> xi{x.data() + idx * d, d};
      // Forward.
      for (std::size_t j = 0; j < h; ++j)
        hidden[j] = sigmoid(kernels::dot({w1_[j].data(), d}, xi, w1_[j][d]));
      for (std::size_t c = 0; c < k; ++c)
        out[c] = kernels::dot({w2_[c].data(), h}, hidden, w2_[c][h]);
      softmax_inplace(out);

      // Backward (cross-entropy + softmax → out - onehot). delta_h is
      // accumulated from the PRE-update output weights, then the momentum
      // step runs per layer — value-identical to the interleaved per-j
      // form, since each delta_h[j] read w2_[c][j] before that j updated.
      const std::size_t y = labels[idx];
      std::fill(delta_h.begin(), delta_h.end(), 0.0);
      for (std::size_t c = 0; c < k; ++c) {
        const double err = out[c] - (c == y ? 1.0 : 0.0);
        kernels::axpy(err, {w2_[c].data(), h}, delta_h);
        const double scale = lr * err;
        for (std::size_t j = 0; j < h; ++j) {
          v2[c][j] = params_.momentum * v2[c][j] - scale * hidden[j];
          w2_[c][j] += v2[c][j];
        }
        v2[c][h] = params_.momentum * v2[c][h] - lr * err;
        w2_[c][h] += v2[c][h];
      }
      for (std::size_t j = 0; j < h; ++j) {
        const double grad = delta_h[j] * hidden[j] * (1.0 - hidden[j]);
        const double scale = lr * grad;
        for (std::size_t f = 0; f < d; ++f) {
          v1[j][f] = params_.momentum * v1[j][f] - scale * xi[f];
          w1_[j][f] += v1[j][f];
        }
        v1[j][d] = params_.momentum * v1[j][d] - lr * grad;
        w1_[j][d] += v1[j][d];
      }
    }
  }
  build_packed();
}

void Mlp::build_packed() {
  packed1_ = kernels::pack_weights_feature_major(w1_);
  packed2_ = kernels::pack_weights_feature_major(w2_);
}

std::vector<double> Mlp::hidden_activations(std::span<const double> x) const {
  std::vector<double> hidden(w1_.size());
  for (std::size_t j = 0; j < w1_.size(); ++j)
    hidden[j] = sigmoid(kernels::affine_bias_last(w1_[j], x));
  return hidden;
}

std::vector<double> Mlp::distribution(std::span<const double> features) const {
  HMD_REQUIRE(!w2_.empty(), "MLP: predict before train");
  const std::vector<double> x = standardizer_.transform(features);
  const std::vector<double> hidden = hidden_activations(x);
  std::vector<double> out(w2_.size());
  for (std::size_t c = 0; c < w2_.size(); ++c)
    out[c] = kernels::affine_bias_last(w2_[c], hidden);
  softmax_inplace(out);
  return out;
}

void Mlp::distribution_batch(std::span<const double> flat,
                             std::size_t window_size,
                             std::span<double> out) const {
  HMD_REQUIRE(!w2_.empty(), "MLP: predict before train");
  const std::size_t rows = require_batch(flat, window_size, out);
  const std::size_t k = w2_.size();
  const std::size_t h = w1_.size();
  const std::vector<double>& mean = standardizer_.means();
  const std::vector<double>& stddev = standardizer_.stddevs();
  HMD_REQUIRE(window_size == mean.size(),
              "MLP::distribution_batch: width mismatch");

  // Chunked two-layer GEMM. Per element the operation sequence is exactly
  // the per-row path's: sigmoid(affine_bias_last(w1_[j], x)) into hidden,
  // affine_bias_last(w2_[c], hidden) into the logits, stable softmax —
  // affine_batch pins the affine forms bit-identical, and sigmoid/softmax
  // are applied with the same code, so batch == per-row to the last bit.
  constexpr std::size_t kChunkRows = 128;
  const std::size_t chunk = std::min(rows, kChunkRows);
  std::vector<double> x(chunk * window_size);  // standardized rows
  std::vector<double> hidden(chunk * h);       // sigmoid activations
  for (std::size_t base = 0; base < rows; base += kChunkRows) {
    const std::size_t lim = std::min(kChunkRows, rows - base);
    kernels::standardize_rows(flat.data() + base * window_size, lim, mean,
                              stddev, x.data());
    kernels::affine_batch(x.data(), lim, window_size, packed1_.data(), h,
                          hidden.data());
    for (std::size_t i = 0; i < lim * h; ++i) hidden[i] = sigmoid(hidden[i]);
    kernels::affine_batch(hidden.data(), lim, h, packed2_.data(), k,
                          out.data() + base * k);
    for (std::size_t r = 0; r < lim; ++r) {
      const std::span<double> logits = out.subspan((base + r) * k, k);
      // exp(0.0) == 1.0 exactly, so the max element skips the libm call.
      const double mx = *std::max_element(logits.begin(), logits.end());
      double total = 0.0;
      for (double& v : logits) {
        const double t = v - mx;
        v = t == 0.0 ? 1.0 : std::exp(t);
        total += v;
      }
      for (double& v : logits) v /= total;
    }
  }
}

std::size_t Mlp::predict(std::span<const double> features) const {
  const auto dist = distribution(features);
  return static_cast<std::size_t>(
      std::max_element(dist.begin(), dist.end()) - dist.begin());
}

}  // namespace hmd::ml
