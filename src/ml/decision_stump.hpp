// Decision stump: a single information-gain-optimal threshold split.
// Used as a baseline and as the cheapest tree-shaped hardware target.
#pragma once

#include "ml/classifier.hpp"

namespace hmd::ml {

class DecisionStump final : public Classifier {
 public:
  void train(const DatasetView& data) override;
  std::size_t predict(std::span<const double> features) const override;
  /// Batch path: one-hot of predict() per row without per-row allocation.
  void distribution_batch(std::span<const double> flat,
                          std::size_t window_size,
                          std::span<double> out) const override {
    predict_one_hot_batch(flat, window_size, out);
  }
  std::string name() const override { return "DecisionStump"; }
  std::size_t num_classes() const override { return num_classes_; }

  std::size_t split_feature() const;
  double split_threshold() const;
  std::size_t left_class() const { return left_class_; }    ///< value <= threshold
  std::size_t right_class() const { return right_class_; }  ///< value > threshold

 private:
  friend struct ModelIo;
  bool trained_ = false;
  std::size_t num_classes_ = 0;
  std::size_t feature_ = 0;
  double threshold_ = 0.0;
  std::size_t left_class_ = 0;
  std::size_t right_class_ = 0;
};

/// Shannon entropy (bits) of a count vector; 0 for an empty vector.
double entropy_of_counts(const std::vector<std::size_t>& counts);

}  // namespace hmd::ml
