#include "ml/arff.hpp"

#include <algorithm>
#include <istream>
#include <ostream>

#include "util/error.hpp"
#include "util/strings.hpp"

namespace hmd::ml {

void write_arff(std::ostream& out, const Dataset& data) {
  out << "@relation " << data.relation() << "\n\n";
  for (std::size_t i = 0; i < data.num_attributes(); ++i) {
    const Attribute& a = data.attribute(i);
    out << "@attribute '" << a.name() << "' ";
    if (a.is_nominal()) {
      out << '{';
      for (std::size_t v = 0; v < a.num_values(); ++v) {
        if (v) out << ',';
        out << a.values()[v];
      }
      out << "}\n";
    } else {
      out << "numeric\n";
    }
  }
  out << "\n@data\n";
  for (std::size_t i = 0; i < data.num_instances(); ++i) {
    const auto inst = data.instance(i);
    for (std::size_t a = 0; a < data.num_attributes(); ++a) {
      if (a) out << ',';
      const Attribute& attr = data.attribute(a);
      if (attr.is_nominal())
        out << attr.values()[static_cast<std::size_t>(inst.values[a])];
      else
        out << format("%.6g", inst.values[a]);
    }
    out << '\n';
  }
}

namespace {

/// Parses "@attribute 'name' numeric" or "@attribute name {a,b,c}".
Attribute parse_attribute_line(std::string_view body, std::size_t lineno) {
  std::string_view rest = trim(body);
  std::string name;
  if (!rest.empty() && (rest.front() == '\'' || rest.front() == '"')) {
    const char quote = rest.front();
    const std::size_t end = rest.find(quote, 1);
    if (end == std::string_view::npos)
      throw ParseError("ARFF line " + std::to_string(lineno) +
                       ": unterminated attribute name");
    name = std::string(rest.substr(1, end - 1));
    rest = trim(rest.substr(end + 1));
  } else {
    const std::size_t sp = rest.find_first_of(" \t");
    if (sp == std::string_view::npos)
      throw ParseError("ARFF line " + std::to_string(lineno) +
                       ": attribute missing type");
    name = std::string(rest.substr(0, sp));
    rest = trim(rest.substr(sp));
  }
  if (istarts_with(rest, "numeric") || istarts_with(rest, "real") ||
      istarts_with(rest, "integer"))
    return Attribute(name);
  if (!rest.empty() && rest.front() == '{') {
    const std::size_t close = rest.find('}');
    if (close == std::string_view::npos)
      throw ParseError("ARFF line " + std::to_string(lineno) +
                       ": unterminated nominal spec");
    std::vector<std::string> values;
    for (const auto& v : split(rest.substr(1, close - 1), ','))
      values.emplace_back(trim(v));
    return Attribute(name, std::move(values));
  }
  throw ParseError("ARFF line " + std::to_string(lineno) +
                   ": unsupported attribute type: " + std::string(rest));
}

}  // namespace

namespace {

/// The actual parser; throws ParseError on malformed input.
Dataset read_arff_impl(std::istream& in) {
  std::string relation = "unnamed";
  std::vector<Attribute> attributes;
  bool in_data = false;
  Dataset dataset;
  bool dataset_ready = false;

  std::string line;
  std::size_t lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    const std::string_view t = trim(line);
    if (t.empty() || t.front() == '%') continue;
    if (!in_data) {
      if (istarts_with(t, "@relation")) {
        relation = std::string(trim(t.substr(9)));
      } else if (istarts_with(t, "@attribute")) {
        attributes.push_back(parse_attribute_line(t.substr(10), lineno));
      } else if (istarts_with(t, "@data")) {
        if (attributes.size() < 2 || !attributes.back().is_nominal())
          throw ParseError(
              "ARFF: need >= 2 attributes with a nominal class last");
        dataset = Dataset(attributes, relation);
        dataset_ready = true;
        in_data = true;
      } else {
        throw ParseError("ARFF line " + std::to_string(lineno) +
                         ": unexpected header line");
      }
      continue;
    }
    const auto cells = split(std::string(t), ',');
    if (cells.size() != attributes.size())
      throw ParseError("ARFF line " + std::to_string(lineno) +
                       ": wrong field count");
    Instance inst;
    inst.values.reserve(cells.size());
    for (std::size_t a = 0; a < cells.size(); ++a) {
      const std::string_view cell = trim(cells[a]);
      if (attributes[a].is_nominal())
        inst.values.push_back(
            static_cast<double>(attributes[a].value_index(cell)));
      else
        inst.values.push_back(parse_double(cell));
    }
    dataset.add(std::move(inst));
  }
  if (!dataset_ready) throw ParseError("ARFF: missing @data section");
  if (dataset.num_instances() == 0)
    throw ParseError("ARFF: empty @data section");
  return dataset;
}

}  // namespace

Result<Dataset> try_read_arff(std::istream& in) {
  return capture_result([&in] { return read_arff_impl(in); })
      .with_context("reading ARFF");
}

Dataset read_arff(std::istream& in) {
  // Thin throwing wrapper: value() raises the ErrorInfo as a ParseError.
  return try_read_arff(in).value();
}

Dataset dataset_from_csv(const CsvTable& table,
                         const std::vector<std::string>& class_values) {
  HMD_REQUIRE(table.header.size() >= 2,
              "CSV needs at least one feature column plus the class");
  const std::size_t class_col = table.header.size() - 1;

  std::vector<std::string> values = class_values;
  if (values.empty()) {
    for (const auto& row : table.rows) {
      const std::string& v = row[class_col];
      if (std::find(values.begin(), values.end(), v) == values.end())
        values.push_back(v);
    }
    HMD_REQUIRE(!values.empty(), "CSV has no data rows");
  }

  std::vector<Attribute> attrs;
  for (std::size_t c = 0; c < class_col; ++c)
    attrs.emplace_back(table.header[c]);
  attrs.emplace_back(table.header[class_col], values);
  Dataset data(std::move(attrs));

  for (const auto& row : table.rows) {
    Instance inst;
    inst.values.reserve(row.size());
    for (std::size_t c = 0; c < class_col; ++c)
      inst.values.push_back(parse_double(row[c]));
    inst.values.push_back(static_cast<double>(
        data.class_attribute().value_index(row[class_col])));
    data.add(std::move(inst));
  }
  return data;
}

void write_dataset_csv(std::ostream& out, const Dataset& data) {
  CsvWriter writer(out);
  std::vector<std::string> header;
  for (const Attribute& a : data.attributes()) header.push_back(a.name());
  writer.write_row(header);
  for (std::size_t i = 0; i < data.num_instances(); ++i) {
    const auto inst = data.instance(i);
    std::vector<std::string> row;
    row.reserve(inst.values.size());
    for (std::size_t a = 0; a < data.num_attributes(); ++a) {
      const Attribute& attr = data.attribute(a);
      if (attr.is_nominal())
        row.push_back(attr.values()[static_cast<std::size_t>(inst.values[a])]);
      else
        row.push_back(format("%.6g", inst.values[a]));
    }
    writer.write_row(row);
  }
}

}  // namespace hmd::ml
