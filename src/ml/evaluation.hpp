// Test-set evaluation — the counterpart of WEKA's Evaluation panel.
// The thesis reports accuracy (binary and multiclass) and per-class
// accuracy (recall), both provided here alongside the confusion matrix,
// precision, F1, and Cohen's kappa.
#pragma once

#include <string>
#include <vector>

#include "ml/classifier.hpp"
#include "ml/dataset.hpp"

namespace hmd::ml {

/// Result of evaluating a classifier on a labelled dataset.
class EvaluationResult {
 public:
  EvaluationResult(std::size_t num_classes,
                   std::vector<std::string> class_names);

  void record(std::size_t actual, std::size_t predicted);

  std::size_t total() const { return total_; }
  std::size_t correct() const { return correct_; }
  double accuracy() const;
  /// Recall of class c — the thesis's "per-class accuracy".
  double recall(std::size_t c) const;
  double precision(std::size_t c) const;
  double f1(std::size_t c) const;
  /// Unweighted mean of per-class recalls.
  double macro_recall() const;
  double kappa() const;

  std::size_t confusion(std::size_t actual, std::size_t predicted) const;
  const std::vector<std::string>& class_names() const { return class_names_; }
  std::size_t num_classes() const { return class_names_.size(); }

  /// Multi-line text rendering (accuracy + confusion matrix).
  std::string to_string() const;

 private:
  std::vector<std::string> class_names_;
  std::vector<std::size_t> matrix_;  ///< [actual * k + predicted]
  std::size_t total_ = 0;
  std::size_t correct_ = 0;
};

/// Evaluate `clf` on every row of `test`.
EvaluationResult evaluate(const Classifier& clf, const Dataset& test);

}  // namespace hmd::ml
