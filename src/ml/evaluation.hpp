// Test-set evaluation — the counterpart of WEKA's Evaluation panel.
// The thesis reports accuracy (binary and multiclass) and per-class
// accuracy (recall), both provided here alongside the confusion matrix,
// precision, F1, and Cohen's kappa.
//
// Two layers:
//  * EvaluationResult — the pure confusion-matrix arithmetic;
//  * EvaluationReport — the one result type every study path returns
//    (evaluate(), cross_validate(), train_and_evaluate, the Fig. 13-19
//    benches): the result plus scheme name and train/predict wall time
//    from the observability layer, with JSON export for dashboards.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "ml/classifier.hpp"
#include "ml/dataset.hpp"

namespace hmd::ml {

/// Result of evaluating a classifier on a labelled dataset.
class EvaluationResult {
 public:
  /// Empty placeholder (0 classes); record() rejects everything until a
  /// real result is assigned over it.
  EvaluationResult() = default;

  EvaluationResult(std::size_t num_classes,
                   std::vector<std::string> class_names);

  void record(std::size_t actual, std::size_t predicted);

  std::size_t total() const { return total_; }
  std::size_t correct() const { return correct_; }
  double accuracy() const;
  /// Recall of class c — the thesis's "per-class accuracy".
  double recall(std::size_t c) const;
  double precision(std::size_t c) const;
  double f1(std::size_t c) const;
  /// Unweighted mean of per-class recalls.
  double macro_recall() const;
  double kappa() const;

  std::size_t confusion(std::size_t actual, std::size_t predicted) const;
  const std::vector<std::string>& class_names() const { return class_names_; }
  std::size_t num_classes() const { return class_names_.size(); }

  /// Multi-line text rendering (accuracy + confusion matrix).
  std::string to_string() const;

 private:
  std::vector<std::string> class_names_;
  std::vector<std::size_t> matrix_;  ///< [actual * k + predicted]
  std::size_t total_ = 0;
  std::size_t correct_ = 0;
};

/// The consolidated evaluation artifact: confusion-matrix metrics plus the
/// scheme name and measured train/predict wall time. Accessors forward to
/// the embedded EvaluationResult, so report.accuracy() etc. read naturally.
struct EvaluationReport {
  std::string scheme;
  EvaluationResult result;
  double train_seconds = 0.0;    ///< 0 when the path did not train
  double predict_seconds = 0.0;  ///< whole test-set prediction pass

  double accuracy() const { return result.accuracy(); }
  double recall(std::size_t c) const { return result.recall(c); }
  double precision(std::size_t c) const { return result.precision(c); }
  double f1(std::size_t c) const { return result.f1(c); }
  double macro_recall() const { return result.macro_recall(); }
  double kappa() const { return result.kappa(); }
  std::size_t total() const { return result.total(); }
  std::size_t correct() const { return result.correct(); }
  std::size_t confusion(std::size_t actual, std::size_t predicted) const {
    return result.confusion(actual, predicted);
  }
  std::size_t num_classes() const { return result.num_classes(); }
  const std::vector<std::string>& class_names() const {
    return result.class_names();
  }
  void record(std::size_t actual, std::size_t predicted) {
    result.record(actual, predicted);
  }

  /// Per-class precision/recall/F1 rows, in class order.
  struct ClassMetrics {
    std::string name;
    double precision = 0.0;
    double recall = 0.0;
    double f1 = 0.0;
  };
  std::vector<ClassMetrics> per_class() const;

  /// Result text plus a timing line.
  std::string to_string() const;

  /// One JSON object: scheme, accuracy, kappa, timings, per-class
  /// precision/recall/F1 and the confusion matrix.
  void write_json(std::ostream& out) const;
};

/// Evaluate `clf` on every row of `test`: times the prediction pass,
/// records per-scheme predict latency into the process metrics registry,
/// and traces an "evaluate/<scheme>" span.
EvaluationReport evaluate(const Classifier& clf, const Dataset& test);

}  // namespace hmd::ml
