// Dataset container for the ML library — the C++ analogue of WEKA's
// Instances/Attribute model, covering exactly what the thesis pipeline
// needs: numeric features, one nominal class attribute (always the last
// column, as in the paper's "16 performance counters + class" CSVs),
// feature projection, stratified splitting, and CSV/ARFF round-tripping.
//
// Storage layout (see docs/perf.md): rows live in ONE contiguous row-major
// block (stride = num_attributes), so row access is a span into that block
// and training loops stream memory instead of chasing per-row heap
// allocations. A column-major mirror is built lazily on the first
// column()/feature_columns() call — split finders and column statistics
// gather from it — and is invalidated by add(). The mirror build is
// double-checked-locked, so concurrent readers (parallel CV folds sharing
// one parent Dataset) are race-free; add() is NOT safe to run concurrently
// with readers.
#pragma once

#include <atomic>
#include <cstdint>
#include <mutex>
#include <span>
#include <string>
#include <vector>

#include "util/rng.hpp"

namespace hmd::ml {

/// A column description: numeric, or nominal with a fixed value set.
class Attribute {
 public:
  enum class Kind { kNumeric, kNominal };

  /// Numeric attribute.
  explicit Attribute(std::string name)
      : name_(std::move(name)), kind_(Kind::kNumeric) {}
  /// Nominal attribute with the given value set.
  Attribute(std::string name, std::vector<std::string> values);

  const std::string& name() const { return name_; }
  Kind kind() const { return kind_; }
  bool is_nominal() const { return kind_ == Kind::kNominal; }

  /// Nominal values (empty for numeric).
  const std::vector<std::string>& values() const { return values_; }
  std::size_t num_values() const { return values_.size(); }
  /// Index of a nominal value; throws if absent or numeric.
  std::size_t value_index(std::string_view value) const;

 private:
  std::string name_;
  Kind kind_;
  std::vector<std::string> values_;
};

/// One row, by value. Nominal attribute values are stored as value
/// indices. Used to BUILD datasets; stored rows live in the dataset's
/// contiguous block and are read back through spans (RowRef).
struct Instance {
  std::vector<double> values;
};

/// Zero-copy reference to one stored row (all columns, class last).
/// Returned by value; the span aliases the dataset's storage and is
/// invalidated by add().
struct RowRef {
  std::span<const double> values;
};

class DatasetView;

/// A table of instances with a designated class attribute.
///
/// Invariant maintained throughout the library: the class attribute is the
/// LAST column (matching the paper's CSV layout). Feature columns are
/// everything before it.
class Dataset {
 public:
  Dataset() = default;
  /// The last attribute is the class attribute.
  explicit Dataset(std::vector<Attribute> attributes,
                   std::string relation = "hmd");

  Dataset(const Dataset& other);
  Dataset& operator=(const Dataset& other);
  Dataset(Dataset&& other) noexcept;
  Dataset& operator=(Dataset&& other) noexcept;

  const std::string& relation() const { return relation_; }
  void set_relation(std::string relation) { relation_ = std::move(relation); }

  std::size_t num_attributes() const { return attributes_.size(); }
  std::size_t num_features() const { return attributes_.size() - 1; }
  std::size_t num_instances() const { return num_rows_; }
  bool empty() const { return num_rows_ == 0; }

  const Attribute& attribute(std::size_t i) const;
  const std::vector<Attribute>& attributes() const { return attributes_; }
  const Attribute& class_attribute() const;
  std::size_t num_classes() const { return class_attribute().num_values(); }

  /// Index of the feature column named `name` (throws if absent or if it
  /// names the class column).
  std::size_t feature_index(std::string_view name) const;

  void add(Instance instance);
  /// Appends one row (all columns, class last) without an Instance
  /// allocation. Invalidates the column mirror and outstanding spans.
  void add_row(std::span<const double> values);

  /// Row `i` as a zero-copy reference (`.values` spans all columns).
  RowRef instance(std::size_t i) const;
  /// Row `i` as a span over all columns (class last).
  std::span<const double> row(std::size_t i) const;

  /// Class value (nominal index) of row `i`.
  std::size_t class_of(std::size_t i) const {
    return static_cast<std::size_t>(
        storage_[i * attributes_.size() + attributes_.size() - 1]);
  }
  /// Feature values of row `i` (excludes the class column).
  std::span<const double> features_of(std::size_t i) const {
    return {storage_.data() + i * attributes_.size(), attributes_.size() - 1};
  }

  /// Column `a` of the lazily built column-major mirror, one value per
  /// row. Thread-safe against concurrent column() callers; invalidated by
  /// add().
  std::span<const double> column(std::size_t a) const;
  /// The mirror's feature block: num_features() columns of num_instances()
  /// values each, column-contiguous (column f starts at f * rows).
  std::span<const double> feature_columns() const;

  /// Per-class instance counts.
  std::vector<std::size_t> class_counts() const;
  /// Index of the majority class (ties → lowest index).
  std::size_t majority_class() const;

  /// New dataset keeping only the feature columns in `feature_indices`
  /// (class column always kept).
  Dataset project(const std::vector<std::size_t>& feature_indices) const;

  /// New dataset keeping rows whose class is in `keep` and re-encoding the
  /// class attribute to just those values (order preserved from `keep`).
  Dataset filter_classes(const std::vector<std::size_t>& keep) const;

  /// Binary re-labelling: rows whose class index is in `positive` become
  /// `positive_name`, everything else `negative_name`. Negative is class 0.
  Dataset relabel_binary(const std::vector<std::size_t>& positive,
                         const std::string& negative_name,
                         const std::string& positive_name) const;

  /// Stratified split: `train_fraction` of each class into the first
  /// dataset, the rest into the second. Shuffles with `rng`.
  std::pair<Dataset, Dataset> stratified_split(double train_fraction,
                                               Rng& rng) const;
  /// Zero-copy variant: the same split as row-index views over this
  /// dataset. Consumes `rng` identically to stratified_split, so the two
  /// produce the same rows in the same order.
  std::pair<DatasetView, DatasetView> stratified_split_views(
      double train_fraction, Rng& rng) const;

  /// Column statistics over a feature.
  double feature_mean(std::size_t feature) const;
  double feature_stddev(std::size_t feature) const;

 private:
  friend class DatasetView;  // materialize() builds Datasets directly

  std::string relation_ = "hmd";
  std::vector<Attribute> attributes_;
  /// Row-major block: num_rows_ x num_attributes() values.
  std::vector<double> storage_;
  std::size_t num_rows_ = 0;

  /// Lazily built column-major mirror (num_attributes() columns of
  /// num_rows_ values). `columns_ready_` is the double-checked publication
  /// flag; `columns_mutex_` serializes the build.
  mutable std::vector<double> columns_;
  mutable std::atomic<bool> columns_ready_{false};
  mutable std::mutex columns_mutex_;

  void check_row(std::span<const double> values) const;
  void build_columns() const;
  Dataset with_same_schema() const;
  /// The split's index lists (shared by both stratified_split flavours).
  std::pair<std::vector<std::size_t>, std::vector<std::size_t>>
  stratified_split_rows(double train_fraction, Rng& rng) const;
};

/// Zero-copy row selection over a Dataset: a schema/storage pointer plus a
/// row-index list. Mirrors the read API classifiers train against, so
/// cross-validation folds, stratified splits and ensemble bootstrap bags
/// can train without materializing copied Datasets. Implicitly
/// constructible from Dataset, so `clf->train(dataset)` call sites are
/// unchanged.
///
/// Views alias the parent's storage: the parent must outlive the view and
/// must not be add()-ed to while the view is in use. Read-only sharing
/// across threads is race-free (see Dataset::column).
class DatasetView {
 public:
  /// Whole-dataset (identity) view; no index list is allocated.
  DatasetView(const Dataset& data)  // NOLINT(google-explicit-constructor)
      : data_(&data), identity_(true) {}
  /// View of `rows` (parent row indices, in view order; duplicates allowed
  /// — bootstrap resampling uses them).
  DatasetView(const Dataset& data, std::vector<std::size_t> rows)
      : data_(&data), rows_(std::move(rows)), identity_(false) {}

  const Dataset& dataset() const { return *data_; }
  bool is_identity() const { return identity_; }

  std::size_t num_instances() const {
    return identity_ ? data_->num_instances() : rows_.size();
  }
  bool empty() const { return num_instances() == 0; }
  std::size_t num_attributes() const { return data_->num_attributes(); }
  std::size_t num_features() const { return data_->num_features(); }
  std::size_t num_classes() const { return data_->num_classes(); }
  const std::string& relation() const { return data_->relation(); }
  const Attribute& attribute(std::size_t i) const {
    return data_->attribute(i);
  }
  const std::vector<Attribute>& attributes() const {
    return data_->attributes();
  }
  const Attribute& class_attribute() const { return data_->class_attribute(); }

  /// Parent row index of view row `i`.
  std::size_t row_index(std::size_t i) const {
    return identity_ ? i : rows_[i];
  }
  std::span<const double> features_of(std::size_t i) const {
    return data_->features_of(row_index(i));
  }
  std::span<const double> row(std::size_t i) const {
    return data_->row(row_index(i));
  }
  std::size_t class_of(std::size_t i) const {
    return data_->class_of(row_index(i));
  }

  std::vector<std::size_t> class_counts() const;
  std::size_t majority_class() const;
  double feature_mean(std::size_t feature) const;
  double feature_stddev(std::size_t feature) const;

  /// View of this view's rows at positions `rows` (composes index lists,
  /// so the result still points straight at the parent Dataset).
  DatasetView select(const std::vector<std::size_t>& rows) const;

  /// Deep copy into a standalone Dataset (row order = view order).
  Dataset materialize() const;

  /// Column-major feature matrix of this view: num_features() columns of
  /// num_instances() values. Identity views return the parent's mirror
  /// directly (zero-copy); subset views gather into `scratch`.
  std::span<const double> feature_columns(std::vector<double>& scratch) const;

 private:
  const Dataset* data_;
  std::vector<std::size_t> rows_;  ///< empty when identity_
  bool identity_;
};

}  // namespace hmd::ml
