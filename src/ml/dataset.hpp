// Dataset container for the ML library — the C++ analogue of WEKA's
// Instances/Attribute model, covering exactly what the thesis pipeline
// needs: numeric features, one nominal class attribute (always the last
// column, as in the paper's "16 performance counters + class" CSVs),
// feature projection, stratified splitting, and CSV/ARFF round-tripping.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "util/rng.hpp"

namespace hmd::ml {

/// A column description: numeric, or nominal with a fixed value set.
class Attribute {
 public:
  enum class Kind { kNumeric, kNominal };

  /// Numeric attribute.
  explicit Attribute(std::string name)
      : name_(std::move(name)), kind_(Kind::kNumeric) {}
  /// Nominal attribute with the given value set.
  Attribute(std::string name, std::vector<std::string> values);

  const std::string& name() const { return name_; }
  Kind kind() const { return kind_; }
  bool is_nominal() const { return kind_ == Kind::kNominal; }

  /// Nominal values (empty for numeric).
  const std::vector<std::string>& values() const { return values_; }
  std::size_t num_values() const { return values_.size(); }
  /// Index of a nominal value; throws if absent or numeric.
  std::size_t value_index(std::string_view value) const;

 private:
  std::string name_;
  Kind kind_;
  std::vector<std::string> values_;
};

/// One row. Nominal attribute values are stored as value indices.
struct Instance {
  std::vector<double> values;
};

/// A table of instances with a designated class attribute.
///
/// Invariant maintained throughout the library: the class attribute is the
/// LAST column (matching the paper's CSV layout). Feature columns are
/// everything before it.
class Dataset {
 public:
  Dataset() = default;
  /// The last attribute is the class attribute.
  explicit Dataset(std::vector<Attribute> attributes,
                   std::string relation = "hmd");

  const std::string& relation() const { return relation_; }
  void set_relation(std::string relation) { relation_ = std::move(relation); }

  std::size_t num_attributes() const { return attributes_.size(); }
  std::size_t num_features() const { return attributes_.size() - 1; }
  std::size_t num_instances() const { return instances_.size(); }
  bool empty() const { return instances_.empty(); }

  const Attribute& attribute(std::size_t i) const;
  const std::vector<Attribute>& attributes() const { return attributes_; }
  const Attribute& class_attribute() const;
  std::size_t num_classes() const { return class_attribute().num_values(); }

  /// Index of the feature column named `name` (throws if absent or if it
  /// names the class column).
  std::size_t feature_index(std::string_view name) const;

  void add(Instance instance);
  const Instance& instance(std::size_t i) const;
  const std::vector<Instance>& instances() const { return instances_; }

  /// Class value (nominal index) of row `i`.
  std::size_t class_of(std::size_t i) const;
  /// Feature values of row `i` (excludes the class column).
  std::span<const double> features_of(std::size_t i) const;

  /// Per-class instance counts.
  std::vector<std::size_t> class_counts() const;
  /// Index of the majority class (ties → lowest index).
  std::size_t majority_class() const;

  /// New dataset keeping only the feature columns in `feature_indices`
  /// (class column always kept).
  Dataset project(const std::vector<std::size_t>& feature_indices) const;

  /// New dataset keeping rows whose class is in `keep` and re-encoding the
  /// class attribute to just those values (order preserved from `keep`).
  Dataset filter_classes(const std::vector<std::size_t>& keep) const;

  /// Binary re-labelling: rows whose class index is in `positive` become
  /// `positive_name`, everything else `negative_name`. Negative is class 0.
  Dataset relabel_binary(const std::vector<std::size_t>& positive,
                         const std::string& negative_name,
                         const std::string& positive_name) const;

  /// Stratified split: `train_fraction` of each class into the first
  /// dataset, the rest into the second. Shuffles with `rng`.
  std::pair<Dataset, Dataset> stratified_split(double train_fraction,
                                               Rng& rng) const;

  /// Column statistics over a feature.
  double feature_mean(std::size_t feature) const;
  double feature_stddev(std::size_t feature) const;

 private:
  std::string relation_ = "hmd";
  std::vector<Attribute> attributes_;
  std::vector<Instance> instances_;

  void check_row(const Instance& inst) const;
  Dataset with_same_schema() const;
};

}  // namespace hmd::ml
