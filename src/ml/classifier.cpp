#include "ml/classifier.hpp"

#include "util/error.hpp"

namespace hmd::ml {

std::vector<double> Classifier::distribution(
    std::span<const double> features) const {
  std::vector<double> dist(num_classes(), 0.0);
  const std::size_t p = predict(features);
  HMD_ASSERT(p < dist.size());
  dist[p] = 1.0;
  return dist;
}

void Classifier::require_trainable(const Dataset& data) {
  HMD_REQUIRE(!data.empty(), "train: dataset is empty");
  HMD_REQUIRE(data.num_features() >= 1, "train: dataset has no features");
  HMD_REQUIRE(data.num_classes() >= 2,
              "train: class attribute needs at least two values");
}

}  // namespace hmd::ml
