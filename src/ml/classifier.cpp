#include "ml/classifier.hpp"

#include <algorithm>

#include "util/error.hpp"

namespace hmd::ml {

std::vector<double> Classifier::distribution(
    std::span<const double> features) const {
  std::vector<double> dist(num_classes(), 0.0);
  const std::size_t p = predict(features);
  HMD_ASSERT(p < dist.size());
  dist[p] = 1.0;
  return dist;
}

void Classifier::distribution_batch(std::span<const double> flat,
                                    std::size_t window_size,
                                    std::span<double> out) const {
  const std::size_t rows = require_batch(flat, window_size, out);
  const std::size_t k = num_classes();
  for (std::size_t r = 0; r < rows; ++r) {
    const std::vector<double> dist =
        distribution(flat.subspan(r * window_size, window_size));
    HMD_ASSERT(dist.size() == k);
    std::copy(dist.begin(), dist.end(), out.begin() + r * k);
  }
}

void Classifier::predict_one_hot_batch(std::span<const double> flat,
                                       std::size_t window_size,
                                       std::span<double> out) const {
  const std::size_t rows = require_batch(flat, window_size, out);
  const std::size_t k = num_classes();
  std::fill(out.begin(), out.end(), 0.0);
  for (std::size_t r = 0; r < rows; ++r) {
    const std::size_t p = predict(flat.subspan(r * window_size, window_size));
    HMD_ASSERT(p < k);
    out[r * k + p] = 1.0;
  }
}

std::size_t Classifier::require_batch(std::span<const double> flat,
                                      std::size_t window_size,
                                      std::span<const double> out) const {
  HMD_REQUIRE(window_size > 0,
              "distribution_batch: window_size must be positive");
  HMD_REQUIRE(flat.size() % window_size == 0,
              "distribution_batch: input not a whole number of rows");
  const std::size_t rows = flat.size() / window_size;
  HMD_REQUIRE(out.size() == rows * num_classes(),
              "distribution_batch: output size must be rows x num_classes");
  return rows;
}

void Classifier::require_trainable(const DatasetView& data) {
  HMD_REQUIRE(!data.empty(), "train: dataset is empty");
  HMD_REQUIRE(data.num_features() >= 1, "train: dataset has no features");
  HMD_REQUIRE(data.num_classes() >= 2,
              "train: class attribute needs at least two values");
}

}  // namespace hmd::ml
