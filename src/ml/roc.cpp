#include "ml/roc.hpp"

#include <algorithm>

#include "util/error.hpp"

namespace hmd::ml {

std::vector<RocPoint> roc_curve(const Classifier& clf, const Dataset& test) {
  HMD_REQUIRE(test.num_classes() == 2, "roc_curve: binary datasets only");
  HMD_REQUIRE(!test.empty(), "roc_curve: empty test set");

  // Score every instance; sort by descending score.
  struct Scored {
    double score;
    bool positive;
  };
  std::vector<Scored> scored;
  scored.reserve(test.num_instances());
  std::size_t positives = 0;
  for (std::size_t i = 0; i < test.num_instances(); ++i) {
    const double s = clf.distribution(test.features_of(i))[1];
    const bool pos = test.class_of(i) == 1;
    positives += pos;
    scored.push_back({s, pos});
  }
  const std::size_t negatives = scored.size() - positives;
  HMD_REQUIRE(positives > 0 && negatives > 0,
              "roc_curve: test set needs both classes");
  std::stable_sort(scored.begin(), scored.end(),
                   [](const Scored& a, const Scored& b) {
                     return a.score > b.score;
                   });

  std::vector<RocPoint> curve;
  curve.push_back({.threshold = 1.0 + 1e-9,
                   .true_positive_rate = 0.0,
                   .false_positive_rate = 0.0});
  std::size_t tp = 0, fp = 0;
  for (std::size_t i = 0; i < scored.size(); ++i) {
    if (scored[i].positive)
      ++tp;
    else
      ++fp;
    // Emit a point only at score boundaries (ties share one point).
    if (i + 1 < scored.size() && scored[i + 1].score == scored[i].score)
      continue;
    curve.push_back(
        {.threshold = scored[i].score,
         .true_positive_rate =
             static_cast<double>(tp) / static_cast<double>(positives),
         .false_positive_rate =
             static_cast<double>(fp) / static_cast<double>(negatives)});
  }
  return curve;
}

double auc(const std::vector<RocPoint>& curve) {
  HMD_REQUIRE(curve.size() >= 2, "auc: need at least two ROC points");
  double area = 0.0;
  for (std::size_t i = 1; i < curve.size(); ++i) {
    const double dx =
        curve[i].false_positive_rate - curve[i - 1].false_positive_rate;
    const double avg_y =
        0.5 * (curve[i].true_positive_rate + curve[i - 1].true_positive_rate);
    area += dx * avg_y;
  }
  return area;
}

double auc_of(const Classifier& clf, const Dataset& test) {
  return auc(roc_curve(clf, test));
}

RocPoint best_youden_point(const std::vector<RocPoint>& curve) {
  HMD_REQUIRE(!curve.empty(), "best_youden_point: empty curve");
  const auto it = std::max_element(
      curve.begin(), curve.end(), [](const RocPoint& a, const RocPoint& b) {
        return (a.true_positive_rate - a.false_positive_rate) <
               (b.true_positive_rate - b.false_positive_rate);
      });
  return *it;
}

}  // namespace hmd::ml
