#include "ml/registry.hpp"

#include "ml/anomaly.hpp"
#include "ml/decision_stump.hpp"
#include "ml/ensemble.hpp"
#include "ml/j48.hpp"
#include "ml/jrip.hpp"
#include "ml/knn.hpp"
#include "ml/logistic.hpp"
#include "ml/mlp.hpp"
#include "ml/naive_bayes.hpp"
#include "ml/one_r.hpp"
#include "ml/svm.hpp"
#include "ml/zero_r.hpp"
#include "util/error.hpp"

namespace hmd::ml {

std::unique_ptr<Classifier> make_classifier(const std::string& name) {
  if (name == "ZeroR") return std::make_unique<ZeroR>();
  if (name == "OneR") return std::make_unique<OneR>();
  if (name == "DecisionStump") return std::make_unique<DecisionStump>();
  if (name == "J48") return std::make_unique<J48>();
  if (name == "JRip") return std::make_unique<JRip>();
  if (name == "NaiveBayes") return std::make_unique<NaiveBayes>();
  if (name == "MLR" || name == "Logistic") return std::make_unique<Logistic>();
  if (name == "SVM") return std::make_unique<LinearSvm>();
  if (name == "MLP") return std::make_unique<Mlp>();
  if (name == "IBk") return std::make_unique<Knn>();
  if (name == "AdaBoostM1")
    return std::make_unique<AdaBoostM1>(
        [] { return std::make_unique<DecisionStump>(); });
  if (name == "Bagging")
    return std::make_unique<Bagging>([]() -> std::unique_ptr<Classifier> {
      return std::make_unique<J48>();
    });
  if (name == "Mahalanobis") return std::make_unique<AnomalyClassifier>();
  throw PreconditionError("unknown classifier scheme: " + name);
}

std::vector<std::string> binary_study_classifiers() {
  return {"OneR", "JRip", "J48", "NaiveBayes", "MLR", "SVM", "MLP"};
}

std::vector<std::string> multiclass_study_classifiers() {
  return {"MLR", "MLP", "SVM"};
}

}  // namespace hmd::ml
