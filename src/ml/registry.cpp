#include "ml/registry.hpp"

#include <algorithm>

#include "ml/anomaly.hpp"
#include "ml/decision_stump.hpp"
#include "ml/ensemble.hpp"
#include "ml/j48.hpp"
#include "ml/jrip.hpp"
#include "ml/knn.hpp"
#include "ml/logistic.hpp"
#include "ml/mlp.hpp"
#include "ml/naive_bayes.hpp"
#include "ml/one_class.hpp"
#include "ml/one_r.hpp"
#include "ml/svm.hpp"
#include "ml/zero_r.hpp"
#include "util/error.hpp"

namespace hmd::ml {

namespace {

struct SchemeEntry {
  const char* name;
  const char* alias;  ///< nullptr when the scheme has no alias
  const char* description;
  std::unique_ptr<Classifier> (*make)();
  int binary_order;  ///< position in the Figs. 13-16 study list, -1 if absent
  int multi_order;   ///< position in the Figs. 17-19 study list, -1 if absent
  /// Benign-only scheme: trains on the benign rows of a binary dataset
  /// only, so the drift retrain loop can rebuild it from unlabeled
  /// traffic (serve/drift.hpp).
  bool one_class = false;
  /// hw::compile() has a netlist lowering for this scheme (RTL emission,
  /// netlist simulation, the fpga serving tier).
  bool rtl = false;
  /// Netlist class decisions are bit-identical to hw/evaluate_fixed_point
  /// (gated in tests/hw and bench_netlist). False for the LUT-approximated
  /// schemes (NaiveBayes, MLP).
  bool rtl_exact = false;
};

// Registry order is presentation order (--list-classifiers, error
// messages); binary_order/multi_order preserve the thesis's study-table
// column order independently of it.
constexpr int kNone = -1;
const SchemeEntry kSchemes[] = {
    {"ZeroR", nullptr, "majority-class baseline",
     [] { return std::unique_ptr<Classifier>(std::make_unique<ZeroR>()); },
     kNone, kNone},
    {"OneR", nullptr, "single-feature rule learner",
     [] { return std::unique_ptr<Classifier>(std::make_unique<OneR>()); }, 0,
     kNone, false, true, true},
    {"DecisionStump", nullptr, "one-split decision tree",
     [] {
       return std::unique_ptr<Classifier>(std::make_unique<DecisionStump>());
     },
     kNone, kNone, false, true, true},
    {"J48", nullptr, "C4.5 decision tree",
     [] { return std::unique_ptr<Classifier>(std::make_unique<J48>()); }, 2,
     kNone, false, true, true},
    {"JRip", nullptr, "RIPPER rule learner",
     [] { return std::unique_ptr<Classifier>(std::make_unique<JRip>()); }, 1,
     kNone, false, true, true},
    {"NaiveBayes", nullptr, "Gaussian naive Bayes",
     [] {
       return std::unique_ptr<Classifier>(std::make_unique<NaiveBayes>());
     },
     3, kNone, false, true, false},
    {"MLR", "Logistic", "multinomial logistic regression",
     [] { return std::unique_ptr<Classifier>(std::make_unique<Logistic>()); },
     4, 0, false, true, true},
    {"SVM", nullptr, "linear soft-margin SVM",
     [] { return std::unique_ptr<Classifier>(std::make_unique<LinearSvm>()); },
     5, 2, false, true, true},
    {"MLP", nullptr, "multi-layer perceptron",
     [] { return std::unique_ptr<Classifier>(std::make_unique<Mlp>()); }, 6,
     1, false, true, false},
    {"IBk", nullptr, "k-nearest neighbours",
     [] { return std::unique_ptr<Classifier>(std::make_unique<Knn>()); },
     kNone, kNone},
    {"AdaBoostM1", nullptr, "boosted decision stumps",
     [] {
       return std::unique_ptr<Classifier>(std::make_unique<AdaBoostM1>(
           [] { return std::make_unique<DecisionStump>(); }));
     },
     kNone, kNone},
    {"Bagging", nullptr, "bagged J48 trees",
     [] {
       return std::unique_ptr<Classifier>(
           std::make_unique<Bagging>([]() -> std::unique_ptr<Classifier> {
             return std::make_unique<J48>();
           }));
     },
     kNone, kNone},
    {"Mahalanobis", nullptr,
     "benign-only anomaly detector (binary datasets)",
     [] {
       return std::unique_ptr<Classifier>(
           std::make_unique<AnomalyClassifier>());
     },
     kNone, kNone, true},
    {"OneClassSvm", nullptr,
     "one-class SVM margin over benign windows (binary datasets)",
     [] {
       return std::unique_ptr<Classifier>(std::make_unique<OneClassSvm>());
     },
     kNone, kNone, true},
    {"KdeAnomaly", nullptr,
     "benign kernel-density anomaly threshold (binary datasets)",
     [] {
       return std::unique_ptr<Classifier>(std::make_unique<KdeAnomaly>());
     },
     kNone, kNone, true},
    {"MahalanobisThreshold", nullptr,
     "calibrated Mahalanobis-distance threshold (binary datasets)",
     [] {
       return std::unique_ptr<Classifier>(
           std::make_unique<MahalanobisThreshold>());
     },
     kNone, kNone, true},
};

const SchemeEntry* find_scheme(const std::string& name) {
  for (const SchemeEntry& entry : kSchemes) {
    if (name == entry.name ||
        (entry.alias != nullptr && name == entry.alias))
      return &entry;
  }
  return nullptr;
}

/// Schemes with `order` >= 0 via the given member, sorted by that order.
std::vector<std::string> study_list(int SchemeEntry::* order) {
  std::vector<const SchemeEntry*> picked;
  for (const SchemeEntry& entry : kSchemes)
    if (entry.*order >= 0) picked.push_back(&entry);
  std::sort(picked.begin(), picked.end(),
            [order](const SchemeEntry* a, const SchemeEntry* b) {
              return a->*order < b->*order;
            });
  std::vector<std::string> names;
  names.reserve(picked.size());
  for (const SchemeEntry* entry : picked) names.emplace_back(entry->name);
  return names;
}

}  // namespace

std::unique_ptr<Classifier> make_classifier(const std::string& name) {
  if (const SchemeEntry* entry = find_scheme(name)) return entry->make();
  std::string message = "unknown classifier scheme: " + name + " (known:";
  for (const SchemeEntry& entry : kSchemes)
    message += std::string(" ") + entry.name;
  message += ")";
  throw PreconditionError(message);
}

std::vector<std::string> known_schemes() {
  std::vector<std::string> names;
  names.reserve(std::size(kSchemes));
  for (const SchemeEntry& entry : kSchemes) names.emplace_back(entry.name);
  return names;
}

std::string scheme_description(const std::string& name) {
  const SchemeEntry* entry = find_scheme(name);
  return entry != nullptr ? entry->description : "";
}

bool is_known_scheme(const std::string& name) {
  return find_scheme(name) != nullptr;
}

std::vector<std::string> one_class_schemes() {
  std::vector<std::string> names;
  for (const SchemeEntry& entry : kSchemes)
    if (entry.one_class) names.emplace_back(entry.name);
  return names;
}

bool is_one_class_scheme(const std::string& name) {
  const SchemeEntry* entry = find_scheme(name);
  return entry != nullptr && entry->one_class;
}

std::vector<std::string> rtl_schemes() {
  std::vector<std::string> names;
  for (const SchemeEntry& entry : kSchemes)
    if (entry.rtl) names.emplace_back(entry.name);
  return names;
}

std::vector<std::string> rtl_exact_schemes() {
  std::vector<std::string> names;
  for (const SchemeEntry& entry : kSchemes)
    if (entry.rtl_exact) names.emplace_back(entry.name);
  return names;
}

bool is_rtl_scheme(const std::string& name) {
  const SchemeEntry* entry = find_scheme(name);
  return entry != nullptr && entry->rtl;
}

std::vector<std::string> binary_study_classifiers() {
  return study_list(&SchemeEntry::binary_order);
}

std::vector<std::string> multiclass_study_classifiers() {
  return study_list(&SchemeEntry::multi_order);
}

}  // namespace hmd::ml
