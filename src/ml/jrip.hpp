// JRip — WEKA's implementation of RIPPER (Cohen, 1995).
//
// This is the incremental-reduced-error-pruning core of RIPPER: classes are
// learned in ascending-frequency order; for each class, rules are grown
// condition-by-condition to maximize FOIL gain on a grow set, then pruned
// back on a held-out prune set; covered instances are removed and the loop
// repeats until the class is exhausted or a new rule fails the prune-set
// precision bar. The most frequent class becomes the default rule. (RIPPER's
// global post-optimization passes are omitted; they refine rule sets but do
// not change the accuracy/area picture the thesis draws.)
//
// The thesis singles out JRip, with OneR, as the classifier family whose
// tiny hardware footprint (a chain of comparators) wins the accuracy/area
// trade-off.
#pragma once

#include <cstdint>

#include "ml/classifier.hpp"

namespace hmd::ml {

class JRip final : public Classifier {
 public:
  struct Params {
    std::size_t max_rules_per_class = 12;
    std::size_t max_conditions_per_rule = 6;
    std::size_t thresholds_per_feature = 24;  ///< candidate split quantiles
    double prune_fraction = 1.0 / 3.0;        ///< held-out share for pruning
    double min_precision = 0.5;  ///< prune-set bar for accepting a rule
    std::uint64_t seed = 0x2f1b;
  };

  /// One antecedent: feature {<=,>} threshold.
  struct Condition {
    std::size_t feature = 0;
    bool greater = false;  ///< false: value <= threshold; true: value > threshold
    double threshold = 0.0;

    bool matches(std::span<const double> features) const {
      const double v = features[feature];
      return greater ? v > threshold : v <= threshold;
    }
  };

  /// A conjunction of conditions implying a class.
  struct Rule {
    std::vector<Condition> conditions;
    std::size_t cls = 0;

    bool matches(std::span<const double> features) const {
      for (const Condition& c : conditions)
        if (!c.matches(features)) return false;
      return true;
    }
  };

  JRip() : JRip(Params{}) {}
  explicit JRip(Params params) : params_(params) {}

  void train(const DatasetView& data) override;
  std::size_t predict(std::span<const double> features) const override;
  /// Batch path: one-hot of predict() per row without per-row allocation.
  void distribution_batch(std::span<const double> flat,
                          std::size_t window_size,
                          std::span<double> out) const override {
    predict_one_hot_batch(flat, window_size, out);
  }
  std::string name() const override { return "JRip"; }
  std::size_t num_classes() const override { return num_classes_; }

  /// The ordered rule list (first match wins).
  const std::vector<Rule>& rules() const { return rules_; }
  /// Class predicted when no rule matches.
  std::size_t default_class() const { return default_class_; }
  /// Total number of conditions across all rules (hardware size proxy).
  std::size_t total_conditions() const;

 private:
  friend struct ModelIo;
  Params params_;
  std::size_t num_classes_ = 0;
  bool trained_ = false;
  std::vector<Rule> rules_;
  std::size_t default_class_ = 0;
};

}  // namespace hmd::ml
