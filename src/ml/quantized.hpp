// Quantized inference views over trained classifiers — the serving-side
// low-latency tier.
//
// Two modes:
//  * kQ16Input — inputs pass through the hardware Q16.16 datapath word
//    (util/fixed_point.hpp) before hitting the unmodified float model.
//    This is exactly the quantization hw/evaluate_fixed_point applies, so
//    a Q16-wrapped model is bit-identical to that reference harness when
//    calibrated with the same per-feature magnitudes. Works for every
//    scheme.
//  * kInt8 — weights are folded (standardizer into the first layer, input
//    scales into the rows) and quantized to symmetric per-row int8; inputs
//    quantize to int8 per feature; the matmul runs through the
//    runtime-dispatched kernels::gemm_i8_i32 with exact int32 accumulation
//    and is dequantized per row before the scheme's probability link.
//    Supported for the affine schemes (MLR, SVM, MLP); accuracy is close
//    to but not bit-identical to float — the delta is measured by
//    bench_batch_scoring and must be judged per deployment.
#pragma once

#include <cstdint>
#include <memory>

#include "ml/classifier.hpp"

namespace hmd::ml {

class QuantizedModel final : public Classifier {
 public:
  enum class Mode { kQ16Input, kInt8 };

  /// True when `base` (after unwrapping decorators) has an int8 lowering.
  static bool int8_supported(const Classifier& base);

  /// True when `base` can be wrapped in kQ16Input mode WITHOUT an explicit
  /// calibration — i.e. the scheme exposes a standardizer to derive the
  /// per-feature magnitudes from. The serving tier uses this gate the same
  /// way int8_supported gates kInt8: unsupported schemes keep the float
  /// path instead of throwing mid-serve.
  static bool q16_supported(const Classifier& base);

  /// Wraps a trained model. `feature_absmax` (one per raw input feature)
  /// calibrates the input grids; when empty it is derived from the base
  /// model's standardizer as |mean| + 6*stddev — a dataset-free bound
  /// covering essentially all of the training distribution's mass (kInt8
  /// and kQ16Input both accept it; kQ16Input on a scheme without a
  /// standardizer requires an explicit calibration).
  QuantizedModel(std::shared_ptr<const Classifier> base, Mode mode,
                 std::vector<double> feature_absmax = {});

  /// Wrapping is post-training only.
  void train(const DatasetView& data) override;
  std::size_t predict(std::span<const double> features) const override;
  std::vector<double> distribution(
      std::span<const double> features) const override;
  void distribution_batch(std::span<const double> flat,
                          std::size_t window_size,
                          std::span<double> out) const override;
  std::string name() const override;
  std::size_t num_classes() const override { return base_->num_classes(); }
  /// Decorator convention: expose the wrapped concrete scheme.
  const Classifier& unwrap() const override { return base_->unwrap(); }

  Mode mode() const { return mode_; }

 private:
  /// One folded affine stage: y_c = row_scale[c] * Σ_f q_in[f]*w[c*in+f]
  /// + bias[c], with the sum in exact int32.
  struct Int8Layer {
    std::vector<std::int8_t> w;     ///< out x in, row-major per output
    std::vector<double> row_scale;  ///< per output
    std::vector<double> bias;       ///< per output, folds absorbed
    std::size_t in = 0;
    std::size_t out = 0;
  };
  enum class Link { kSoftmax, kSigmoidNorm, kMlp };

  void build_q16();
  void build_int8();
  /// Full int8 forward pass for `rows` raw rows into out (rows x classes).
  void int8_batch(const double* flat, std::size_t rows, double* out) const;
  void q16_rows(std::span<const double> flat, std::size_t rows,
                std::vector<double>& buf) const;

  std::shared_ptr<const Classifier> base_;
  Mode mode_;
  std::vector<double> absmax_;     ///< per raw feature, >= 1e-12
  std::vector<double> q16_scale_;  ///< kQ16Input: per-feature pre-scale
  std::vector<double> in_scale_;   ///< kInt8: 127/absmax per raw feature
  Link link_ = Link::kSoftmax;
  std::vector<Int8Layer> layers_;  ///< 1 (linear) or 2 (MLP) stages
};

}  // namespace hmd::ml
