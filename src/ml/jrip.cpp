#include "ml/jrip.hpp"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <numeric>

#include "util/error.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"

namespace hmd::ml {

namespace {

/// Train-local columnar snapshot of the training view: rule growing
/// evaluates thousands of candidate conditions per feature, so conditions
/// read contiguous column slices instead of strided row storage.
struct ColumnData {
  std::span<const double> cols;  ///< column-major, cols[f*n + r]
  std::size_t n = 0;
  std::vector<std::uint32_t> classes;

  const double* col(std::size_t f) const { return cols.data() + f * n; }

  bool matches(const JRip::Rule& rule, std::size_t r) const {
    for (const JRip::Condition& c : rule.conditions) {
      const double v = col(c.feature)[r];
      if (!(c.greater ? v > c.threshold : v <= c.threshold)) return false;
    }
    return true;
  }
};

/// Coverage of a rule over a row-index subset.
struct Coverage {
  std::size_t pos = 0;
  std::size_t neg = 0;
};

Coverage coverage_of(const JRip::Rule& rule, const ColumnData& data,
                     const std::vector<std::size_t>& rows, std::size_t cls) {
  Coverage cov;
  for (std::size_t r : rows) {
    if (!data.matches(rule, r)) continue;
    if (data.classes[r] == cls)
      ++cov.pos;
    else
      ++cov.neg;
  }
  return cov;
}

double log2_ratio(double p, double n) {
  return std::log2((p + 1.0) / (p + n + 2.0));  // Laplace-smoothed
}

/// Candidate thresholds for one feature: quantiles over the rows the rule
/// currently covers (subsampled for cost).
std::vector<double> candidate_thresholds(const ColumnData& data,
                                         const std::vector<std::size_t>& rows,
                                         std::size_t feature,
                                         std::size_t how_many, Rng& rng) {
  std::vector<double> values;
  const double* col = data.col(feature);
  const std::size_t max_sample = 512;
  if (rows.size() <= max_sample) {
    values.reserve(rows.size());
    for (std::size_t r : rows) values.push_back(col[r]);
  } else {
    values.reserve(max_sample);
    for (std::size_t i = 0; i < max_sample; ++i) {
      const std::size_t r = rows[rng.uniform_index(rows.size())];
      values.push_back(col[r]);
    }
  }
  std::sort(values.begin(), values.end());
  values.erase(std::unique(values.begin(), values.end()), values.end());
  if (values.size() <= how_many) return values;
  std::vector<double> out;
  out.reserve(how_many);
  for (std::size_t i = 1; i <= how_many; ++i) {
    const std::size_t idx =
        i * (values.size() - 1) / (how_many + 1);
    out.push_back(values[idx]);
  }
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

}  // namespace

void JRip::train(const DatasetView& view) {
  require_trainable(view);
  num_classes_ = view.num_classes();
  rules_.clear();

  Rng rng(params_.seed);

  const std::size_t n = view.num_instances();
  const std::size_t num_features = view.num_features();
  ColumnData data;
  std::vector<double> col_scratch;
  data.cols = view.feature_columns(col_scratch);
  data.n = n;
  data.classes.resize(n);
  for (std::size_t i = 0; i < n; ++i)
    data.classes[i] = static_cast<std::uint32_t>(view.class_of(i));

  // Classes in ascending frequency; the most frequent becomes the default.
  const auto counts = view.class_counts();
  std::vector<std::size_t> order(num_classes_);
  std::iota(order.begin(), order.end(), 0);
  std::stable_sort(order.begin(), order.end(),
                   [&](std::size_t a, std::size_t b) {
                     return counts[a] < counts[b];
                   });
  default_class_ = order.back();

  std::vector<std::size_t> remaining(n);
  std::iota(remaining.begin(), remaining.end(), 0);

  for (std::size_t ci = 0; ci + 1 < order.size(); ++ci) {
    const std::size_t cls = order[ci];
    std::size_t rules_for_class = 0;

    while (rules_for_class < params_.max_rules_per_class) {
      // Any positives left to cover?
      std::size_t pos_left = 0;
      for (std::size_t r : remaining)
        if (data.classes[r] == cls) ++pos_left;
      if (pos_left < 2) break;

      // Stratified-ish grow/prune split of the remaining data.
      std::vector<std::size_t> shuffled = remaining;
      rng.shuffle(shuffled);
      const std::size_t n_prune = static_cast<std::size_t>(
          params_.prune_fraction * static_cast<double>(shuffled.size()));
      std::vector<std::size_t> prune_rows(shuffled.begin(),
                                          shuffled.begin() +
                                              static_cast<std::ptrdiff_t>(n_prune));
      std::vector<std::size_t> grow_rows(shuffled.begin() +
                                             static_cast<std::ptrdiff_t>(n_prune),
                                         shuffled.end());

      // ---- Grow ----
      Rule rule;
      rule.cls = cls;
      std::vector<std::size_t> covered = grow_rows;
      Coverage cov = coverage_of(rule, data, covered, cls);
      while (cov.neg > 0 &&
             rule.conditions.size() < params_.max_conditions_per_rule) {
        Condition best_cond;
        double best_gain = 0.0;
        Coverage best_cov;
        const double base = log2_ratio(static_cast<double>(cov.pos),
                                       static_cast<double>(cov.neg));
        for (std::size_t f = 0; f < num_features; ++f) {
          const auto thresholds = candidate_thresholds(
              data, covered, f, params_.thresholds_per_feature, rng);
          const double* col = data.col(f);
          for (double t : thresholds) {
            for (bool greater : {false, true}) {
              const Condition cond{.feature = f, .greater = greater,
                                   .threshold = t};
              Coverage c;
              for (std::size_t r : covered) {
                const double v = col[r];
                if (!(greater ? v > t : v <= t)) continue;
                if (data.classes[r] == cls)
                  ++c.pos;
                else
                  ++c.neg;
              }
              if (c.pos == 0) continue;
              const double gain =
                  static_cast<double>(c.pos) *
                  (log2_ratio(static_cast<double>(c.pos),
                              static_cast<double>(c.neg)) -
                   base);
              if (gain > best_gain) {
                best_gain = gain;
                best_cond = cond;
                best_cov = c;
              }
            }
          }
        }
        if (best_gain <= 1e-9) break;
        rule.conditions.push_back(best_cond);
        const double* col = data.col(best_cond.feature);
        std::vector<std::size_t> still_covered;
        still_covered.reserve(covered.size());
        for (std::size_t r : covered) {
          const double v = col[r];
          if (best_cond.greater ? v > best_cond.threshold
                                : v <= best_cond.threshold)
            still_covered.push_back(r);
        }
        covered = std::move(still_covered);
        cov = best_cov;
      }
      if (rule.conditions.empty()) break;

      // ---- Prune: drop trailing conditions maximizing (p-n)/(p+n). ----
      auto rule_value = [&](const Rule& r) {
        const Coverage c = coverage_of(r, data, prune_rows, cls);
        if (c.pos + c.neg == 0) return -1.0;
        return (static_cast<double>(c.pos) - static_cast<double>(c.neg)) /
               static_cast<double>(c.pos + c.neg);
      };
      Rule pruned = rule;
      double best_value = rule_value(pruned);
      Rule candidate = rule;
      while (candidate.conditions.size() > 1) {
        candidate.conditions.pop_back();
        const double v = rule_value(candidate);
        if (v >= best_value) {
          best_value = v;
          pruned = candidate;
        }
      }

      // ---- Accept? ----
      const Coverage prune_cov = coverage_of(pruned, data, prune_rows, cls);
      const std::size_t covered_total = prune_cov.pos + prune_cov.neg;
      const double precision =
          covered_total == 0
              ? 0.0
              : static_cast<double>(prune_cov.pos) /
                    static_cast<double>(covered_total);
      // Accept a rule the prune set never sees only if it grew clean.
      const bool acceptable =
          covered_total == 0 ? cov.neg == 0 : precision >= params_.min_precision;
      if (!acceptable) break;

      rules_.push_back(pruned);
      ++rules_for_class;

      // Remove everything the rule covers from the remaining data.
      std::vector<std::size_t> still_remaining;
      still_remaining.reserve(remaining.size());
      for (std::size_t r : remaining)
        if (!data.matches(pruned, r))
          still_remaining.push_back(r);
      if (still_remaining.size() == remaining.size()) break;  // no progress
      remaining = std::move(still_remaining);
    }
  }

  // Default class: majority among uncovered instances (falls back to the
  // globally most frequent class when everything is covered).
  if (!remaining.empty()) {
    std::vector<std::size_t> rem_counts(num_classes_, 0);
    for (std::size_t r : remaining) ++rem_counts[data.classes[r]];
    default_class_ = static_cast<std::size_t>(
        std::max_element(rem_counts.begin(), rem_counts.end()) -
        rem_counts.begin());
  }
  trained_ = true;
}

std::size_t JRip::predict(std::span<const double> features) const {
  HMD_REQUIRE(trained_, "JRip: predict before train");
  for (const Rule& rule : rules_)
    if (rule.matches(features)) return rule.cls;
  return default_class_;
}

std::size_t JRip::total_conditions() const {
  std::size_t n = 0;
  for (const Rule& r : rules_) n += r.conditions.size();
  return n;
}

}  // namespace hmd::ml
