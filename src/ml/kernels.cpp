#include "ml/kernels.hpp"

#include <algorithm>
#include <atomic>
#include <cstdlib>

#if defined(__x86_64__) && defined(__GNUC__)
#include <immintrin.h>
#endif

#include "util/error.hpp"

// This file MUST be compiled with -ffp-contract=off (pinned in
// src/ml/CMakeLists.txt): the AVX-512 clones of the float GEMM would
// otherwise fuse `acc += x*w` into an FMA and skip the intermediate
// rounding the scalar body performs, breaking the clone-for-clone
// bit-exactness the dispatch-parity tests pin.

namespace hmd::ml::kernels {

namespace {

// Integer math only — every variant computes the identical exact result,
// so runtime dispatch cannot change behaviour, only speed. The reference
// body walks the dim-pair-interleaved layout (screen_block_index) exactly
// the way the madd clones consume it; the SIMD clones below are written
// with intrinsics because vpmaddwd (multiply adjacent int16 pairs, add
// each pair into an int32 lane) is the whole reason this layout exists
// and no autovectorizer reliably finds it.
inline void screen_body(const std::int16_t* __restrict block,
                        const std::int16_t* __restrict qx, std::size_t dims,
                        std::size_t rows, std::int32_t* __restrict acc) {
  for (std::size_t b = 0; b < rows; ++b) acc[b] = 0;
  const std::size_t pairs = dims / 2;
  for (std::size_t p = 0; p < pairs; ++p) {
    const std::int16_t* col = block + p * 2 * rows;
    const std::int32_t q0 = qx[2 * p];
    const std::int32_t q1 = qx[2 * p + 1];
    for (std::size_t b = 0; b < rows; ++b) {
      const std::int32_t d0 = q0 - col[2 * b];
      const std::int32_t d1 = q1 - col[2 * b + 1];
      acc[b] += d0 * d0 + d1 * d1;
    }
  }
  if (dims % 2 != 0) {
    // Last (unpaired) dimension: its pad partner is stored as 0 and
    // screened against a query coordinate of 0, contributing nothing.
    const std::int16_t* col = block + pairs * 2 * rows;
    const std::int32_t q0 = qx[dims - 1];
    for (std::size_t b = 0; b < rows; ++b) {
      const std::int32_t d0 = q0 - col[2 * b];
      acc[b] += d0 * d0;
    }
  }
}

// Reference survivor-mask body: bit b of mask iff acc[b] <= thr.
inline void mask_body(const std::int32_t* __restrict acc, std::size_t n,
                      std::int32_t thr, std::uint64_t* __restrict mask) {
  for (std::size_t w = 0; w * 64 < n; ++w) mask[w] = 0;
  for (std::size_t b = 0; b < n; ++b)
    if (acc[b] <= thr) mask[b / 64] |= std::uint64_t{1} << (b % 64);
}

// Reference box-bound body: Σ max(0, lo-x, x-hi)² over the axes. A
// pruning bound only — clones may reassociate (see kernels.hpp).
inline double bound_body(const double* __restrict lo,
                         const double* __restrict hi,
                         const double* __restrict x, std::size_t d) {
  double acc = 0.0;
  for (std::size_t j = 0; j < d; ++j) {
    const double a = lo[j] - x[j];
    const double b = x[j] - hi[j];
    double t = a > b ? a : b;
    t = t > 0.0 ? t : 0.0;
    acc += t * t;
  }
  return acc;
}

// Bias-init batch affine map. Each output accumulates init-first then
// features ascending — exactly affine_bias_last's order — so SIMD lanes
// run across independent outputs/rows and never across the reduction:
// every clone is bit-identical to the scalar body.
//
// Fallback shape for wide outputs: rows are blocked so a block's input
// rows stay in L1 while the packed weights stream once per feature.
#if defined(__GNUC__)
__attribute__((always_inline))
#endif
inline void
affine_body_wide(const double* __restrict a, std::size_t rows, std::size_t d,
                 const double* __restrict packed, std::size_t k,
                 double* __restrict out) {
  constexpr std::size_t kRowBlock = 32;
  const double* bias = packed + d * k;
  for (std::size_t r0 = 0; r0 < rows; r0 += kRowBlock) {
    const std::size_t rl = std::min(kRowBlock, rows - r0);
    for (std::size_t r = 0; r < rl; ++r) {
      double* o = out + (r0 + r) * k;
      for (std::size_t c = 0; c < k; ++c) o[c] = bias[c];
    }
    for (std::size_t f = 0; f < d; ++f) {
      const double* wf = packed + f * k;
      for (std::size_t r = 0; r < rl; ++r) {
        const double x = a[(r0 + r) * d + f];
        double* o = out + (r0 + r) * k;
        for (std::size_t c = 0; c < k; ++c) o[c] += x * wf[c];
      }
    }
  }
}

// Main shape for the library's small class/hidden counts (k <= 16): tiles
// of 8 rows run in one generic 8-lane vector (GCC vector extension — the
// AVX-512 clone maps it to one zmm, AVX2 to two ymm, the scalar reference
// to plain doubles), so the math vectorizes across ROWS with full lanes
// regardless of k — unlike the wide shape whose innermost k-loop leaves
// most of a vector idle at k = 6. Every lane owns one (row, output)
// reduction accumulated bias-first then features ascending: per-lane
// independence keeps every variant bit-identical to the scalar order.
#if defined(__GNUC__)
typedef double hmd_v8df __attribute__((vector_size(64), aligned(8)));

__attribute__((always_inline)) inline void affine_body(
    const double* __restrict a, std::size_t rows, std::size_t d,
    const double* __restrict packed, std::size_t k, double* __restrict out) {
  constexpr std::size_t kTileRows = 8;
  constexpr std::size_t kMaxCols = 16;  // accumulator tile stays in L1
  if (k > kMaxCols) {
    affine_body_wide(a, rows, d, packed, k, out);
    return;
  }
  const double* bias = packed + d * k;
  hmd_v8df acc[kMaxCols];
  std::size_t r0 = 0;
  for (; r0 + kTileRows <= rows; r0 += kTileRows) {
    const double* ar = a + r0 * d;
    for (std::size_t c = 0; c < k; ++c) acc[c] = hmd_v8df{} + bias[c];
    for (std::size_t f = 0; f < d; ++f) {
      const hmd_v8df av = {ar[f],         ar[d + f],     ar[2 * d + f],
                           ar[3 * d + f], ar[4 * d + f], ar[5 * d + f],
                           ar[6 * d + f], ar[7 * d + f]};
      const double* wf = packed + f * k;
      for (std::size_t c = 0; c < k; ++c) acc[c] += av * wf[c];
    }
    for (std::size_t t = 0; t < kTileRows; ++t)
      for (std::size_t c = 0; c < k; ++c) out[(r0 + t) * k + c] = acc[c][t];
  }
  // Tail rows, in the reference per-row order.
  for (; r0 < rows; ++r0) {
    double* o = out + r0 * k;
    for (std::size_t c = 0; c < k; ++c) o[c] = bias[c];
    for (std::size_t f = 0; f < d; ++f) {
      const double x = a[r0 * d + f];
      const double* wf = packed + f * k;
      for (std::size_t c = 0; c < k; ++c) o[c] += x * wf[c];
    }
  }
}
#else
inline void affine_body(const double* a, std::size_t rows, std::size_t d,
                        const double* packed, std::size_t k, double* out) {
  affine_body_wide(a, rows, d, packed, k, out);
}
#endif

// Int8 × int8 → int32 GEMM. Exact integer math (|product| <= 127², sums
// far below INT32_MAX for any practical width), so clones may freely
// reassociate; the inner loop is written for pmaddwd-style vectorization.
#if defined(__GNUC__)
__attribute__((always_inline))
#endif
inline void
gemm_i8_body(const std::int8_t* __restrict a, std::size_t rows,
             std::size_t d, const std::int8_t* __restrict w, std::size_t k,
             std::int32_t* __restrict out) {
  for (std::size_t r = 0; r < rows; ++r) {
    const std::int8_t* x = a + r * d;
    for (std::size_t c = 0; c < k; ++c) {
      const std::int8_t* wc = w + c * d;
      std::int32_t acc = 0;
      for (std::size_t f = 0; f < d; ++f)
        acc += static_cast<std::int32_t>(x[f]) * wc[f];
      out[r * k + c] = acc;
    }
  }
}

// Dispatch by hand instead of target_clones: the ifunc resolvers clones
// emit run before sanitizer runtimes initialize and crash TSan/ASan
// binaries at startup, while a dispatch switch on a cached choice is
// sanitizer-clean.
#if defined(__x86_64__) && defined(__GNUC__)
#define HMD_SIMD_DISPATCH 1

// Replicates the query into one int32 per stored pair — qx[2p] in the low
// half, qx[2p+1] (or 0 for the odd-width pad) in the high half — so the
// inner loops broadcast one int32 per pair instead of re-packing int16s.
// dims <= 128 is guaranteed by the screen's overflow gate, so a fixed
// 64-pair scratch suffices.
inline std::size_t pack_query_pairs(const std::int16_t* qx, std::size_t dims,
                                    std::int32_t* qp) {
  const std::size_t dpairs = (dims + 1) / 2;
  for (std::size_t p = 0; p < dims / 2; ++p)
    qp[p] = static_cast<std::int32_t>(
        static_cast<std::uint32_t>(static_cast<std::uint16_t>(qx[2 * p])) |
        (static_cast<std::uint32_t>(static_cast<std::uint16_t>(qx[2 * p + 1]))
         << 16));
  if (dims % 2 != 0)
    qp[dpairs - 1] = static_cast<std::int32_t>(
        static_cast<std::uint16_t>(qx[dims - 1]));
  return dpairs;
}

// One vpmaddwd squares-and-sums a dimension pair for 16 rows: diff fits
// int16 (|q - p| <= 4094), diff² pairs fit int32 (2·4094² < 2³¹), and the
// per-row total stays exact for dims <= 128 — identical to screen_body.
// Two accumulators split the madd->add dependency chain so consecutive
// pairs issue back to back instead of serializing on the adder.
__attribute__((target("avx512f,avx512bw"))) void screen_avx512(
    const std::int16_t* __restrict block, const std::int16_t* __restrict qx,
    std::size_t dims, std::size_t rows, std::int32_t* __restrict acc) {
  std::int32_t qp[64];
  const std::size_t dpairs = pack_query_pairs(qx, dims, qp);
  for (std::size_t g = 0; g < rows; g += 16) {
    const std::int16_t* base = block + 2 * g;
    __m512i s0 = _mm512_setzero_si512();
    __m512i s1 = _mm512_setzero_si512();
    std::size_t p = 0;
    for (; p + 2 <= dpairs; p += 2) {
      const __m512i d0 = _mm512_sub_epi16(
          _mm512_set1_epi32(qp[p]),
          _mm512_loadu_si512(static_cast<const void*>(base + p * 2 * rows)));
      const __m512i d1 = _mm512_sub_epi16(
          _mm512_set1_epi32(qp[p + 1]),
          _mm512_loadu_si512(
              static_cast<const void*>(base + (p + 1) * 2 * rows)));
      s0 = _mm512_add_epi32(s0, _mm512_madd_epi16(d0, d0));
      s1 = _mm512_add_epi32(s1, _mm512_madd_epi16(d1, d1));
    }
    if (p < dpairs) {
      const __m512i d0 = _mm512_sub_epi16(
          _mm512_set1_epi32(qp[p]),
          _mm512_loadu_si512(static_cast<const void*>(base + p * 2 * rows)));
      s0 = _mm512_add_epi32(s0, _mm512_madd_epi16(d0, d0));
    }
    _mm512_storeu_si512(static_cast<void*>(acc + g),
                        _mm512_add_epi32(s0, s1));
  }
}

__attribute__((target("avx2"))) void screen_avx2(
    const std::int16_t* __restrict block, const std::int16_t* __restrict qx,
    std::size_t dims, std::size_t rows, std::int32_t* __restrict acc) {
  std::int32_t qp[64];
  const std::size_t dpairs = pack_query_pairs(qx, dims, qp);
  for (std::size_t g = 0; g < rows; g += 8) {
    const std::int16_t* base = block + 2 * g;
    __m256i s0 = _mm256_setzero_si256();
    __m256i s1 = _mm256_setzero_si256();
    std::size_t p = 0;
    for (; p + 2 <= dpairs; p += 2) {
      const __m256i d0 = _mm256_sub_epi16(
          _mm256_set1_epi32(qp[p]),
          _mm256_loadu_si256(
              reinterpret_cast<const __m256i*>(base + p * 2 * rows)));
      const __m256i d1 = _mm256_sub_epi16(
          _mm256_set1_epi32(qp[p + 1]),
          _mm256_loadu_si256(
              reinterpret_cast<const __m256i*>(base + (p + 1) * 2 * rows)));
      s0 = _mm256_add_epi32(s0, _mm256_madd_epi16(d0, d0));
      s1 = _mm256_add_epi32(s1, _mm256_madd_epi16(d1, d1));
    }
    if (p < dpairs) {
      const __m256i d0 = _mm256_sub_epi16(
          _mm256_set1_epi32(qp[p]),
          _mm256_loadu_si256(
              reinterpret_cast<const __m256i*>(base + p * 2 * rows)));
      s0 = _mm256_add_epi32(s0, _mm256_madd_epi16(d0, d0));
    }
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(acc + g),
                        _mm256_add_epi32(s0, s1));
  }
}

__attribute__((target("avx512f"))) void mask_avx512(
    const std::int32_t* __restrict acc, std::size_t n, std::int32_t thr,
    std::uint64_t* __restrict mask) {
  const __m512i tv = _mm512_set1_epi32(thr);
  for (std::size_t w = 0; w * 64 < n; ++w) {
    std::uint64_t m = 0;
    const std::size_t base = w * 64;
    const std::size_t lim = std::min<std::size_t>(64, n - base);
    for (std::size_t off = 0; off < lim; off += 16) {
      const __mmask16 k = _mm512_cmple_epi32_mask(
          _mm512_loadu_si512(static_cast<const void*>(acc + base + off)), tv);
      m |= std::uint64_t{k} << off;
    }
    mask[w] = m;
  }
}

__attribute__((target("avx2"))) void mask_avx2(
    const std::int32_t* __restrict acc, std::size_t n, std::int32_t thr,
    std::uint64_t* __restrict mask) {
  const __m256i tv = _mm256_set1_epi32(thr);
  for (std::size_t w = 0; w * 64 < n; ++w) {
    std::uint64_t m = 0;
    const std::size_t base = w * 64;
    const std::size_t lim = std::min<std::size_t>(64, n - base);
    for (std::size_t off = 0; off < lim; off += 8) {
      // AVX2 has no cmple_epi32: le == !gt, inverted after movemask.
      const __m256i gt = _mm256_cmpgt_epi32(
          _mm256_loadu_si256(
              reinterpret_cast<const __m256i*>(acc + base + off)),
          tv);
      const auto bits = static_cast<std::uint32_t>(
          _mm256_movemask_ps(_mm256_castsi256_ps(gt)));
      m |= std::uint64_t{~bits & 0xFFu} << off;
    }
    mask[w] = m;
  }
}

__attribute__((target("avx512f"))) double bound_avx512(
    const double* __restrict lo, const double* __restrict hi,
    const double* __restrict x, std::size_t d) {
  __m512d acc = _mm512_setzero_pd();
  const __m512d zero = _mm512_setzero_pd();
  std::size_t j = 0;
  for (; j + 8 <= d; j += 8) {
    const __m512d xv = _mm512_loadu_pd(x + j);
    const __m512d a = _mm512_sub_pd(_mm512_loadu_pd(lo + j), xv);
    const __m512d b = _mm512_sub_pd(xv, _mm512_loadu_pd(hi + j));
    const __m512d t = _mm512_max_pd(_mm512_max_pd(a, b), zero);
    acc = _mm512_fmadd_pd(t, t, acc);
  }
  double s = _mm512_reduce_add_pd(acc);
  for (; j < d; ++j) {
    const double a = lo[j] - x[j];
    const double b = x[j] - hi[j];
    double t = a > b ? a : b;
    t = t > 0.0 ? t : 0.0;
    s += t * t;
  }
  return s;
}

__attribute__((target("avx2"))) double bound_avx2(
    const double* __restrict lo, const double* __restrict hi,
    const double* __restrict x, std::size_t d) {
  __m256d acc = _mm256_setzero_pd();
  const __m256d zero = _mm256_setzero_pd();
  std::size_t j = 0;
  for (; j + 4 <= d; j += 4) {
    const __m256d xv = _mm256_loadu_pd(x + j);
    const __m256d a = _mm256_sub_pd(_mm256_loadu_pd(lo + j), xv);
    const __m256d b = _mm256_sub_pd(xv, _mm256_loadu_pd(hi + j));
    const __m256d t = _mm256_max_pd(_mm256_max_pd(a, b), zero);
    acc = _mm256_add_pd(acc, _mm256_mul_pd(t, t));
  }
  const __m128d pair =
      _mm_add_pd(_mm256_castpd256_pd128(acc), _mm256_extractf128_pd(acc, 1));
  double s = _mm_cvtsd_f64(_mm_add_sd(pair, _mm_unpackhi_pd(pair, pair)));
  for (; j < d; ++j) {
    const double a = lo[j] - x[j];
    const double b = x[j] - hi[j];
    double t = a > b ? a : b;
    t = t > 0.0 ? t : 0.0;
    s += t * t;
  }
  return s;
}

__attribute__((target("avx512f,avx512bw"))) void affine_avx512(
    const double* __restrict a, std::size_t rows, std::size_t d,
    const double* __restrict packed, std::size_t k, double* __restrict out) {
  affine_body(a, rows, d, packed, k, out);
}

__attribute__((target("avx2"))) void affine_avx2(
    const double* __restrict a, std::size_t rows, std::size_t d,
    const double* __restrict packed, std::size_t k, double* __restrict out) {
  affine_body(a, rows, d, packed, k, out);
}

__attribute__((target("avx512f,avx512bw"))) void gemm_i8_avx512(
    const std::int8_t* __restrict a, std::size_t rows, std::size_t d,
    const std::int8_t* __restrict w, std::size_t k,
    std::int32_t* __restrict out) {
  gemm_i8_body(a, rows, d, w, k, out);
}

__attribute__((target("avx2"))) void gemm_i8_avx2(
    const std::int8_t* __restrict a, std::size_t rows, std::size_t d,
    const std::int8_t* __restrict w, std::size_t k,
    std::int32_t* __restrict out) {
  gemm_i8_body(a, rows, d, w, k, out);
}
#endif

/// force_isa() override; -1 = unset.
std::atomic<int> g_forced{-1};

Isa best_supported_isa() {
#ifdef HMD_SIMD_DISPATCH
  if (__builtin_cpu_supports("avx512f") &&
      __builtin_cpu_supports("avx512bw"))
    return Isa::kAvx512;
  if (__builtin_cpu_supports("avx2")) return Isa::kAvx2;
#endif
  return Isa::kScalar;
}

/// HMD_KERNEL_ISA, resolved once (heterogeneous CI runners set it so every
/// job runs the same codepath); the best supported ISA otherwise. The
/// request is clamped to what this CPU supports — a CI matrix can export
/// HMD_KERNEL_ISA=avx512 fleet-wide and the avx2-only runners simply run
/// their best tier instead of aborting. Unknown names still fail fast.
Isa env_or_best_isa() {
  static const Isa choice = [] {
    if (const char* env = std::getenv("HMD_KERNEL_ISA");
        env != nullptr && env[0] != '\0')
      return resolve_isa_request(env);
    return best_supported_isa();
  }();
  return choice;
}

}  // namespace

const char* to_string(Isa isa) {
  switch (isa) {
    case Isa::kScalar: return "scalar";
    case Isa::kAvx2: return "avx2";
    case Isa::kAvx512: return "avx512";
  }
  return "scalar";
}

std::optional<Isa> isa_from_name(const std::string& name) {
  if (name == "scalar") return Isa::kScalar;
  if (name == "avx2") return Isa::kAvx2;
  if (name == "avx512") return Isa::kAvx512;
  return std::nullopt;
}

Isa resolve_isa_request(const std::string& name) {
  const std::optional<Isa> parsed = isa_from_name(name);
  HMD_REQUIRE(parsed.has_value(), "HMD_KERNEL_ISA: unknown ISA '" + name +
                                      "' (known: scalar avx2 avx512)");
  return std::min(*parsed, best_supported_isa());
}

bool isa_supported(Isa isa) {
  return static_cast<int>(isa) <= static_cast<int>(best_supported_isa());
}

Isa active_isa() {
  const int forced = g_forced.load(std::memory_order_relaxed);
  if (forced >= 0) return static_cast<Isa>(forced);
  return env_or_best_isa();
}

void force_isa(Isa isa) {
  HMD_REQUIRE(isa_supported(isa),
              std::string("force_isa: ISA '") + to_string(isa) +
                  "' is not supported by this CPU");
  g_forced.store(static_cast<int>(isa), std::memory_order_relaxed);
}

void force_isa_by_name(const std::string& name) {
  const std::optional<Isa> parsed = isa_from_name(name);
  HMD_REQUIRE(parsed.has_value(), "--isa: unknown ISA '" + name +
                                      "' (known: scalar avx2 avx512)");
  force_isa(*parsed);
}

void screen_squared_l2_i16(const std::int16_t* block, const std::int16_t* qx,
                           std::size_t dims, std::size_t rows,
                           std::int32_t* acc) {
  screen_squared_l2_i16_as(active_isa(), block, qx, dims, rows, acc);
}

void screen_squared_l2_i16_as(Isa isa, const std::int16_t* block,
                              const std::int16_t* qx, std::size_t dims,
                              std::size_t rows, std::int32_t* acc) {
#ifdef HMD_SIMD_DISPATCH
  switch (isa) {
    case Isa::kAvx512: screen_avx512(block, qx, dims, rows, acc); return;
    case Isa::kAvx2: screen_avx2(block, qx, dims, rows, acc); return;
    case Isa::kScalar: break;
  }
#else
  (void)isa;
#endif
  screen_body(block, qx, dims, rows, acc);
}

void mask_le_i32(const std::int32_t* acc, std::size_t n, std::int32_t thr,
                 std::uint64_t* mask) {
  mask_le_i32_as(active_isa(), acc, n, thr, mask);
}

void mask_le_i32_as(Isa isa, const std::int32_t* acc, std::size_t n,
                    std::int32_t thr, std::uint64_t* mask) {
#ifdef HMD_SIMD_DISPATCH
  switch (isa) {
    case Isa::kAvx512: mask_avx512(acc, n, thr, mask); return;
    case Isa::kAvx2: mask_avx2(acc, n, thr, mask); return;
    case Isa::kScalar: break;
  }
#else
  (void)isa;
#endif
  mask_body(acc, n, thr, mask);
}

double bound_squared_l2(const double* lo, const double* hi, const double* x,
                        std::size_t d) {
  return bound_squared_l2_as(active_isa(), lo, hi, x, d);
}

double bound_squared_l2_as(Isa isa, const double* lo, const double* hi,
                           const double* x, std::size_t d) {
#ifdef HMD_SIMD_DISPATCH
  switch (isa) {
    case Isa::kAvx512: return bound_avx512(lo, hi, x, d);
    case Isa::kAvx2: return bound_avx2(lo, hi, x, d);
    case Isa::kScalar: break;
  }
#else
  (void)isa;
#endif
  return bound_body(lo, hi, x, d);
}

std::vector<double> pack_weights_feature_major(
    const std::vector<std::vector<double>>& w) {
  HMD_REQUIRE(!w.empty() && !w.front().empty(),
              "pack_weights_feature_major: empty weights");
  const std::size_t k = w.size();
  const std::size_t d = w.front().size() - 1;  // bias last
  std::vector<double> packed((d + 1) * k);
  for (std::size_t c = 0; c < k; ++c) {
    HMD_REQUIRE(w[c].size() == d + 1,
                "pack_weights_feature_major: ragged weights");
    for (std::size_t f = 0; f <= d; ++f) packed[f * k + c] = w[c][f];
  }
  return packed;
}

void affine_batch(const double* a, std::size_t rows, std::size_t d,
                  const double* packed, std::size_t k, double* out) {
  affine_batch_as(active_isa(), a, rows, d, packed, k, out);
}

void affine_batch_as(Isa isa, const double* a, std::size_t rows,
                     std::size_t d, const double* packed, std::size_t k,
                     double* out) {
#ifdef HMD_SIMD_DISPATCH
  switch (isa) {
    case Isa::kAvx512: affine_avx512(a, rows, d, packed, k, out); return;
    case Isa::kAvx2: affine_avx2(a, rows, d, packed, k, out); return;
    case Isa::kScalar: break;
  }
#else
  (void)isa;
#endif
  affine_body(a, rows, d, packed, k, out);
}

void gemm_i8_i32(const std::int8_t* a, std::size_t rows, std::size_t d,
                 const std::int8_t* w, std::size_t k, std::int32_t* out) {
  gemm_i8_i32_as(active_isa(), a, rows, d, w, k, out);
}

void gemm_i8_i32_as(Isa isa, const std::int8_t* a, std::size_t rows,
                    std::size_t d, const std::int8_t* w, std::size_t k,
                    std::int32_t* out) {
#ifdef HMD_SIMD_DISPATCH
  switch (isa) {
    case Isa::kAvx512: gemm_i8_avx512(a, rows, d, w, k, out); return;
    case Isa::kAvx2: gemm_i8_avx2(a, rows, d, w, k, out); return;
    case Isa::kScalar: break;
  }
#else
  (void)isa;
#endif
  gemm_i8_body(a, rows, d, w, k, out);
}

void gemv_row_major(std::span<const double> matrix, std::size_t rows,
                    std::span<const double> x, std::span<double> out) {
  const std::size_t cols = x.size();
  for (std::size_t r = 0; r < rows; ++r) {
    out[r] = dot({matrix.data() + r * cols, cols}, x);
  }
}

}  // namespace hmd::ml::kernels
