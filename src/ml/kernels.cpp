#include "ml/kernels.hpp"

namespace hmd::ml::kernels {

namespace {

// Integer math only — every instantiation computes the identical exact
// result, so runtime dispatch cannot change behaviour, only speed.
// Baseline x86-64 codegen cannot vectorize the widening multiply-accumulate
// well, which is why the SIMD variants exist at all.
#if defined(__GNUC__)
__attribute__((always_inline))
#endif
inline void
screen_body(const std::int16_t* __restrict block,
            const std::int16_t* __restrict qx, std::size_t dims,
            std::int32_t* __restrict acc) {
  for (std::size_t b = 0; b < kScreenBlock; ++b) acc[b] = 0;
  for (std::size_t j = 0; j < dims; ++j) {
    const std::int16_t* col = block + j * kScreenBlock;
    const std::int32_t q = qx[j];
    for (std::size_t b = 0; b < kScreenBlock; ++b) {
      const std::int32_t d = q - col[b];
      acc[b] += d * d;
    }
  }
}

// Dispatch by hand instead of target_clones: the ifunc resolvers clones
// emit run before sanitizer runtimes initialize and crash TSan/ASan
// binaries at startup, while a function-pointer static chosen on first
// call is sanitizer-clean.
#if defined(__x86_64__) && defined(__GNUC__)
#define HMD_SCREEN_SIMD_DISPATCH 1

__attribute__((target("avx512f,avx512bw"))) void screen_avx512(
    const std::int16_t* __restrict block, const std::int16_t* __restrict qx,
    std::size_t dims, std::int32_t* __restrict acc) {
  screen_body(block, qx, dims, acc);
}

__attribute__((target("avx2"))) void screen_avx2(
    const std::int16_t* __restrict block, const std::int16_t* __restrict qx,
    std::size_t dims, std::int32_t* __restrict acc) {
  screen_body(block, qx, dims, acc);
}
#endif

}  // namespace

void screen_squared_l2_i16(const std::int16_t* block, const std::int16_t* qx,
                           std::size_t dims, std::int32_t* acc) {
#ifdef HMD_SCREEN_SIMD_DISPATCH
  using Fn = void (*)(const std::int16_t*, const std::int16_t*, std::size_t,
                      std::int32_t*);
  static const Fn impl = [] {
    if (__builtin_cpu_supports("avx512bw")) return Fn(screen_avx512);
    if (__builtin_cpu_supports("avx2")) return Fn(screen_avx2);
    return Fn(screen_body);
  }();
  impl(block, qx, dims, acc);
#else
  screen_body(block, qx, dims, acc);
#endif
}

void gemv_row_major(std::span<const double> matrix, std::size_t rows,
                    std::span<const double> x, std::span<double> out) {
  const std::size_t cols = x.size();
  for (std::size_t r = 0; r < rows; ++r) {
    out[r] = dot({matrix.data() + r * cols, cols}, x);
  }
}

}  // namespace hmd::ml::kernels
