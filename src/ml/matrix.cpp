#include "ml/matrix.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "ml/kernels.hpp"
#include "util/error.hpp"

namespace hmd::ml {

Matrix::Matrix(std::size_t rows, std::size_t cols, double fill)
    : rows_(rows), cols_(cols), data_(rows * cols, fill) {}

double& Matrix::at(std::size_t r, std::size_t c) {
  HMD_REQUIRE(r < rows_ && c < cols_, "matrix index out of range");
  return data_[r * cols_ + c];
}

double Matrix::at(std::size_t r, std::size_t c) const {
  HMD_REQUIRE(r < rows_ && c < cols_, "matrix index out of range");
  return data_[r * cols_ + c];
}

std::span<const double> Matrix::row(std::size_t r) const {
  HMD_REQUIRE(r < rows_, "matrix row out of range");
  return {data_.data() + r * cols_, cols_};
}

std::span<double> Matrix::mutable_row(std::size_t r) {
  HMD_REQUIRE(r < rows_, "matrix row out of range");
  return {data_.data() + r * cols_, cols_};
}

Matrix Matrix::identity(std::size_t n) {
  Matrix m(n, n);
  for (std::size_t i = 0; i < n; ++i) m(i, i) = 1.0;
  return m;
}

Matrix Matrix::transposed() const {
  Matrix t(cols_, rows_);
  for (std::size_t r = 0; r < rows_; ++r)
    for (std::size_t c = 0; c < cols_; ++c) t(c, r) = at(r, c);
  return t;
}

Matrix Matrix::operator*(const Matrix& other) const {
  HMD_REQUIRE(cols_ == other.rows_, "matrix product shape mismatch");
  Matrix out(rows_, other.cols_);
  for (std::size_t r = 0; r < rows_; ++r) {
    for (std::size_t k = 0; k < cols_; ++k) {
      const double a = at(r, k);
      if (a == 0.0) continue;
      for (std::size_t c = 0; c < other.cols_; ++c)
        out(r, c) += a * other(k, c);
    }
  }
  return out;
}

std::vector<double> Matrix::multiply(std::span<const double> x) const {
  HMD_REQUIRE(x.size() == cols_, "matrix-vector shape mismatch");
  std::vector<double> y(rows_, 0.0);
  kernels::gemv_row_major({data_.data(), data_.size()}, rows_, x, y);
  return y;
}

bool Matrix::is_symmetric(double tol) const {
  if (rows_ != cols_) return false;
  for (std::size_t r = 0; r < rows_; ++r)
    for (std::size_t c = r + 1; c < cols_; ++c)
      if (std::abs(at(r, c) - at(c, r)) > tol) return false;
  return true;
}

double Matrix::max_off_diagonal() const {
  HMD_REQUIRE(rows_ == cols_, "max_off_diagonal needs a square matrix");
  double m = 0.0;
  for (std::size_t r = 0; r < rows_; ++r)
    for (std::size_t c = 0; c < cols_; ++c)
      if (r != c) m = std::max(m, std::abs(at(r, c)));
  return m;
}

Matrix Matrix::inverse() const {
  HMD_REQUIRE(rows_ == cols_, "inverse: matrix must be square");
  const std::size_t n = rows_;
  Matrix a = *this;
  Matrix inv = Matrix::identity(n);
  for (std::size_t col = 0; col < n; ++col) {
    // Partial pivot.
    std::size_t pivot = col;
    for (std::size_t r = col + 1; r < n; ++r)
      if (std::abs(a(r, col)) > std::abs(a(pivot, col))) pivot = r;
    HMD_REQUIRE(std::abs(a(pivot, col)) > 1e-12,
                "inverse: matrix is singular");
    if (pivot != col) {
      for (std::size_t c = 0; c < n; ++c) {
        std::swap(a(pivot, c), a(col, c));
        std::swap(inv(pivot, c), inv(col, c));
      }
    }
    const double scale = 1.0 / a(col, col);
    for (std::size_t c = 0; c < n; ++c) {
      a(col, c) *= scale;
      inv(col, c) *= scale;
    }
    for (std::size_t r = 0; r < n; ++r) {
      if (r == col) continue;
      const double factor = a(r, col);
      if (factor == 0.0) continue;
      for (std::size_t c = 0; c < n; ++c) {
        a(r, c) -= factor * a(col, c);
        inv(r, c) -= factor * inv(col, c);
      }
    }
  }
  return inv;
}

Matrix covariance_matrix(const Matrix& data) {
  HMD_REQUIRE(data.rows() >= 2, "covariance needs at least two rows");
  const std::size_t n = data.rows();
  const std::size_t d = data.cols();
  std::vector<double> mean(d, 0.0);
  for (std::size_t r = 0; r < n; ++r)
    for (std::size_t c = 0; c < d; ++c) mean[c] += data(r, c);
  for (double& m : mean) m /= static_cast<double>(n);

  // Per-row centered buffer + axpy on the upper-triangle row slices; the
  // per-(i, j) accumulation order over rows is unchanged from the nested
  // at()-based loops, so the result is bit-identical.
  Matrix cov(d, d);
  std::vector<double> delta(d);
  for (std::size_t r = 0; r < n; ++r) {
    const auto row = data.row(r);
    for (std::size_t j = 0; j < d; ++j) delta[j] = row[j] - mean[j];
    for (std::size_t i = 0; i < d; ++i) {
      kernels::axpy(delta[i], {delta.data() + i, d - i},
                    cov.mutable_row(i).subspan(i));
    }
  }
  const double denom = static_cast<double>(n - 1);
  for (std::size_t i = 0; i < d; ++i)
    for (std::size_t j = i; j < d; ++j) {
      cov(i, j) /= denom;
      cov(j, i) = cov(i, j);
    }
  return cov;
}

Matrix correlation_matrix(const Matrix& data) {
  Matrix cov = covariance_matrix(data);
  const std::size_t d = cov.rows();
  std::vector<double> sd(d);
  for (std::size_t i = 0; i < d; ++i) sd[i] = std::sqrt(cov(i, i));
  Matrix corr(d, d);
  for (std::size_t i = 0; i < d; ++i) {
    for (std::size_t j = 0; j < d; ++j) {
      if (sd[i] <= 0.0 || sd[j] <= 0.0)
        corr(i, j) = i == j ? 1.0 : 0.0;
      else
        corr(i, j) = cov(i, j) / (sd[i] * sd[j]);
    }
  }
  return corr;
}

EigenDecomposition jacobi_eigen(const Matrix& m, double tol,
                                std::size_t max_sweeps) {
  HMD_REQUIRE(m.is_symmetric(1e-8), "jacobi_eigen: matrix must be symmetric");
  const std::size_t n = m.rows();
  Matrix a = m;
  Matrix v = Matrix::identity(n);

  for (std::size_t sweep = 0; sweep < max_sweeps; ++sweep) {
    if (a.max_off_diagonal() < tol) break;
    for (std::size_t p = 0; p + 1 < n; ++p) {
      for (std::size_t q = p + 1; q < n; ++q) {
        const double apq = a(p, q);
        if (std::abs(apq) < tol) continue;
        const double app = a(p, p);
        const double aqq = a(q, q);
        const double theta = (aqq - app) / (2.0 * apq);
        const double t = (theta >= 0.0 ? 1.0 : -1.0) /
                         (std::abs(theta) + std::sqrt(theta * theta + 1.0));
        const double c = 1.0 / std::sqrt(t * t + 1.0);
        const double s = t * c;
        // Apply the rotation G(p, q, theta): A <- G^T A G, V <- V G.
        for (std::size_t k = 0; k < n; ++k) {
          const double akp = a(k, p);
          const double akq = a(k, q);
          a(k, p) = c * akp - s * akq;
          a(k, q) = s * akp + c * akq;
        }
        for (std::size_t k = 0; k < n; ++k) {
          const double apk = a(p, k);
          const double aqk = a(q, k);
          a(p, k) = c * apk - s * aqk;
          a(q, k) = s * apk + c * aqk;
        }
        for (std::size_t k = 0; k < n; ++k) {
          const double vkp = v(k, p);
          const double vkq = v(k, q);
          v(k, p) = c * vkp - s * vkq;
          v(k, q) = s * vkp + c * vkq;
        }
      }
    }
  }

  // Sort eigenpairs descending by eigenvalue.
  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](std::size_t i, std::size_t j) {
    return a(i, i) > a(j, j);
  });

  EigenDecomposition out;
  out.eigenvalues.resize(n);
  out.eigenvectors = Matrix(n, n);
  for (std::size_t j = 0; j < n; ++j) {
    out.eigenvalues[j] = a(order[j], order[j]);
    for (std::size_t i = 0; i < n; ++i)
      out.eigenvectors(i, j) = v(i, order[j]);
  }
  return out;
}

}  // namespace hmd::ml
