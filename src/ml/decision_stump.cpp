#include "ml/decision_stump.hpp"

#include <algorithm>
#include <cmath>

#include "util/error.hpp"

namespace hmd::ml {

double entropy_of_counts(const std::vector<std::size_t>& counts) {
  std::size_t total = 0;
  for (std::size_t c : counts) total += c;
  if (total == 0) return 0.0;
  double h = 0.0;
  for (std::size_t c : counts) {
    if (c == 0) continue;
    const double p = static_cast<double>(c) / static_cast<double>(total);
    h -= p * std::log2(p);
  }
  return h;
}

void DecisionStump::train(const DatasetView& data) {
  require_trainable(data);
  num_classes_ = data.num_classes();
  const std::size_t n = data.num_instances();
  const auto total_counts = data.class_counts();
  const double base_entropy = entropy_of_counts(total_counts);

  // One columnar gather up front; the per-feature loop then reads
  // contiguous column slices instead of strided row storage.
  std::vector<double> col_scratch;
  const auto cols = data.feature_columns(col_scratch);
  std::vector<std::size_t> classes(n);
  for (std::size_t i = 0; i < n; ++i) classes[i] = data.class_of(i);

  double best_gain = -1.0;
  std::vector<std::pair<double, std::size_t>> column;
  for (std::size_t f = 0; f < data.num_features(); ++f) {
    // Sort (value, class) and scan every class-boundary threshold.
    const double* col = cols.data() + f * n;
    column.clear();
    column.reserve(n);
    for (std::size_t i = 0; i < n; ++i) column.emplace_back(col[i], classes[i]);
    std::sort(column.begin(), column.end());

    std::vector<std::size_t> left(num_classes_, 0);
    std::vector<std::size_t> right = total_counts;
    for (std::size_t i = 0; i + 1 < n; ++i) {
      ++left[column[i].second];
      --right[column[i].second];
      if (column[i].first == column[i + 1].first) continue;
      const double nl = static_cast<double>(i + 1);
      const double nr = static_cast<double>(n - i - 1);
      const double gain =
          base_entropy - (nl / static_cast<double>(n)) * entropy_of_counts(left) -
          (nr / static_cast<double>(n)) * entropy_of_counts(right);
      if (gain > best_gain) {
        best_gain = gain;
        feature_ = f;
        threshold_ = 0.5 * (column[i].first + column[i + 1].first);
        left_class_ = static_cast<std::size_t>(
            std::max_element(left.begin(), left.end()) - left.begin());
        right_class_ = static_cast<std::size_t>(
            std::max_element(right.begin(), right.end()) - right.begin());
      }
    }
  }
  if (best_gain < 0.0) {
    // Degenerate data (all feature values identical): majority on both sides.
    feature_ = 0;
    threshold_ = 0.0;
    left_class_ = right_class_ = data.majority_class();
  }
  trained_ = true;
}

std::size_t DecisionStump::split_feature() const {
  HMD_REQUIRE(trained_, "DecisionStump: model not trained");
  return feature_;
}

double DecisionStump::split_threshold() const {
  HMD_REQUIRE(trained_, "DecisionStump: model not trained");
  return threshold_;
}

std::size_t DecisionStump::predict(std::span<const double> features) const {
  HMD_REQUIRE(trained_, "DecisionStump: predict before train");
  HMD_REQUIRE(feature_ < features.size(),
              "DecisionStump: feature vector too short");
  return features[feature_] <= threshold_ ? left_class_ : right_class_;
}

}  // namespace hmd::ml
