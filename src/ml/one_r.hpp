// OneR (Holte, 1993): one rule on one attribute.
//
// For each feature, numeric values are discretized into intervals whose
// majority class "settles" after a minimum bucket size (WEKA's -B, default
// 6); the feature whose interval rule set has the lowest training error
// wins. The thesis highlights OneR as the extreme low-cost end of the
// accuracy/area trade-off: in hardware it is a handful of comparators.
#pragma once

#include <limits>

#include "ml/classifier.hpp"

namespace hmd::ml {

class OneR final : public Classifier {
 public:
  /// `min_bucket_size` is WEKA's -B parameter.
  explicit OneR(std::size_t min_bucket_size = 6)
      : min_bucket_size_(min_bucket_size) {}

  void train(const DatasetView& data) override;
  std::size_t predict(std::span<const double> features) const override;
  /// Batch path: one-hot of predict() per row without per-row allocation.
  void distribution_batch(std::span<const double> flat,
                          std::size_t window_size,
                          std::span<double> out) const override {
    predict_one_hot_batch(flat, window_size, out);
  }
  std::string name() const override { return "OneR"; }
  std::size_t num_classes() const override { return num_classes_; }

  /// One interval of the learned rule: values < upper_bound (and >= the
  /// previous interval's bound) map to `cls`. The last interval's bound is
  /// +infinity.
  struct Interval {
    double upper_bound = std::numeric_limits<double>::infinity();
    std::size_t cls = 0;
  };

  /// The chosen feature column.
  std::size_t chosen_feature() const;
  /// The learned intervals, ascending by bound.
  const std::vector<Interval>& intervals() const { return intervals_; }
  /// Training error rate of the winning rule.
  double training_error() const { return training_error_; }

 private:
  friend struct ModelIo;
  std::size_t min_bucket_size_;
  std::size_t num_classes_ = 0;
  std::size_t feature_ = 0;
  bool trained_ = false;
  std::vector<Interval> intervals_;
  double training_error_ = 1.0;
};

}  // namespace hmd::ml
