#include "ml/zero_r.hpp"

#include <algorithm>

#include "util/error.hpp"

namespace hmd::ml {

void ZeroR::train(const DatasetView& data) {
  require_trainable(data);
  const auto counts = data.class_counts();
  priors_.assign(counts.size(), 0.0);
  for (std::size_t c = 0; c < counts.size(); ++c)
    priors_[c] = static_cast<double>(counts[c]) /
                 static_cast<double>(data.num_instances());
  majority_ = data.majority_class();
}

std::size_t ZeroR::predict(std::span<const double>) const {
  HMD_REQUIRE(!priors_.empty(), "ZeroR: predict before train");
  return majority_;
}

std::vector<double> ZeroR::distribution(std::span<const double>) const {
  HMD_REQUIRE(!priors_.empty(), "ZeroR: distribution before train");
  return priors_;
}

void ZeroR::distribution_batch(std::span<const double> flat,
                               std::size_t window_size,
                               std::span<double> out) const {
  HMD_REQUIRE(!priors_.empty(), "ZeroR: distribution before train");
  const std::size_t rows = require_batch(flat, window_size, out);
  const std::size_t k = priors_.size();
  for (std::size_t r = 0; r < rows; ++r)
    std::copy(priors_.begin(), priors_.end(), out.begin() + r * k);
}

}  // namespace hmd::ml
