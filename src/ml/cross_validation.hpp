// k-fold cross-validation — the third evaluation protocol the thesis
// mentions ("self-testing, test-set or cross validation"); WEKA's default
// is stratified 10-fold.
//
// Folds are independent, so the engine can fan them across a ThreadPool.
// Determinism contract: all rng consumption happens up front (fold
// assignment + one draw that sub-seeds a splitmix64 stream of per-fold
// Rngs), each fold's work depends only on its fold index, and fold results
// merge in fold order — so serial and parallel runs produce bit-identical
// CrossValidationResults and leave `rng` in the same state.
#pragma once

#include <functional>

#include "ml/classifier.hpp"
#include "ml/evaluation.hpp"
#include "util/rng.hpp"
#include "util/thread_pool.hpp"

namespace hmd::ml {

/// Result of a k-fold run: pooled predictions plus per-fold accuracies.
/// `pooled` is an EvaluationReport whose train/predict times are the sums
/// across folds (wall time of the work, not of the possibly-parallel run).
struct CrossValidationResult {
  EvaluationReport pooled;             ///< all folds' predictions combined
  std::vector<double> fold_accuracies;

  double mean_accuracy() const;
  double stddev_accuracy() const;
};

/// Execution policy for cross_validate.
struct CrossValidationOptions {
  /// Fold-level parallelism: 1 = serial (default), 0 = default_jobs().
  std::size_t num_threads = 1;
  /// Pool to fan folds across; nullptr with num_threads > 1 uses
  /// global_pool(). Ignored when num_threads == 1.
  ThreadPool* pool = nullptr;
};

/// Factory receiving the fold's independent sub-seeded Rng, for stochastic
/// schemes that want per-fold randomness without breaking reproducibility.
using SeededClassifierFactory =
    std::function<std::unique_ptr<Classifier>(Rng&)>;

/// Stratified k-fold cross-validation. `factory` must return a fresh,
/// untrained classifier per fold. Deterministic in `rng`'s state
/// regardless of `options.num_threads`.
CrossValidationResult cross_validate(
    const SeededClassifierFactory& factory, const Dataset& data,
    std::size_t folds, Rng& rng, const CrossValidationOptions& options = {});

/// Convenience overload for rng-free factories.
CrossValidationResult cross_validate(
    const std::function<std::unique_ptr<Classifier>()>& factory,
    const Dataset& data, std::size_t folds, Rng& rng,
    const CrossValidationOptions& options = {});

}  // namespace hmd::ml
