// k-fold cross-validation — the third evaluation protocol the thesis
// mentions ("self-testing, test-set or cross validation"); WEKA's default
// is stratified 10-fold.
#pragma once

#include <functional>

#include "ml/classifier.hpp"
#include "ml/evaluation.hpp"
#include "util/rng.hpp"

namespace hmd::ml {

/// Result of a k-fold run: pooled predictions plus per-fold accuracies.
struct CrossValidationResult {
  EvaluationResult pooled;             ///< all folds' predictions combined
  std::vector<double> fold_accuracies;

  double mean_accuracy() const;
  double stddev_accuracy() const;
};

/// Stratified k-fold cross-validation. `factory` must return a fresh,
/// untrained classifier per fold. Deterministic in `rng`'s state.
CrossValidationResult cross_validate(
    const std::function<std::unique_ptr<Classifier>()>& factory,
    const Dataset& data, std::size_t folds, Rng& rng);

}  // namespace hmd::ml
