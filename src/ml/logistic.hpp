// Multinomial logistic regression (softmax regression) — WEKA's Logistic,
// and the thesis's "MLR" multiclass classifier. Two classes degenerate to
// ordinary binary logistic regression.
//
// Training: full-batch gradient descent with momentum on the L2-regularized
// cross-entropy, over internally standardized features.
#pragma once

#include "ml/classifier.hpp"
#include "ml/preprocess.hpp"

namespace hmd::ml {

class Logistic final : public Classifier {
 public:
  struct Params {
    std::size_t iterations = 300;
    double learning_rate = 0.5;
    double momentum = 0.9;
    double l2 = 1e-4;  ///< ridge, as WEKA's -R
  };

  Logistic() : Logistic(Params{}) {}
  explicit Logistic(Params params) : params_(params) {}

  void train(const DatasetView& data) override;
  std::size_t predict(std::span<const double> features) const override;
  std::vector<double> distribution(
      std::span<const double> features) const override;
  /// GEMM batch scoring: rows are standardized into one contiguous chunk
  /// and all class logits come from a single kernels::affine_batch call
  /// (bit-identical to the per-row affine path), with the softmax computed
  /// in place in the output slice.
  void distribution_batch(std::span<const double> flat,
                          std::size_t window_size,
                          std::span<double> out) const override;
  std::string name() const override { return "MLR"; }
  std::size_t num_classes() const override { return weights_.size(); }

  /// weights()[c] has num_features entries + bias last (standardized space).
  const std::vector<std::vector<double>>& weights() const { return weights_; }
  const Standardizer& standardizer() const { return standardizer_; }

 private:
  friend struct ModelIo;
  /// Rebuilds packed_ from weights_ (train and model load).
  void build_packed();

  Params params_;
  Standardizer standardizer_;
  std::vector<std::vector<double>> weights_;  ///< [class][feature+1]
  /// weights_ in the feature-major layout kernels::affine_batch consumes.
  std::vector<double> packed_;
};

/// Numerically stable in-place softmax of logits.
void softmax_inplace(std::vector<double>& logits);

}  // namespace hmd::ml
