// Gaussian Naive Bayes — WEKA's NaiveBayes with numeric attributes under
// the default normal-density estimator.
#pragma once

#include "ml/classifier.hpp"

namespace hmd::ml {

class NaiveBayes final : public Classifier {
 public:
  void train(const DatasetView& data) override;
  std::size_t predict(std::span<const double> features) const override;
  std::vector<double> distribution(
      std::span<const double> features) const override;
  /// Buffer-reusing batch path: one log-posterior buffer reused across the
  /// chunk, posteriors written straight into the output slice
  /// (bit-identical to the per-row path).
  void distribution_batch(std::span<const double> flat,
                          std::size_t window_size,
                          std::span<double> out) const override;
  std::string name() const override { return "NaiveBayes"; }
  std::size_t num_classes() const override { return priors_.size(); }

  /// Per-class per-feature Gaussian parameters (for the HW lowering).
  const std::vector<std::vector<double>>& means() const { return mean_; }
  const std::vector<std::vector<double>>& variances() const { return var_; }
  const std::vector<double>& priors() const { return priors_; }

 private:
  friend struct ModelIo;
  std::vector<double> priors_;              ///< [class]
  std::vector<std::vector<double>> mean_;   ///< [class][feature]
  std::vector<std::vector<double>> var_;    ///< [class][feature]
};

}  // namespace hmd::ml
