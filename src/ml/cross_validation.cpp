#include "ml/cross_validation.hpp"

#include <cmath>
#include <numeric>
#include <utility>

#include "util/error.hpp"
#include "util/metrics.hpp"
#include "util/trace.hpp"

namespace hmd::ml {

double CrossValidationResult::mean_accuracy() const {
  if (fold_accuracies.empty()) return 0.0;
  return std::accumulate(fold_accuracies.begin(), fold_accuracies.end(),
                         0.0) /
         static_cast<double>(fold_accuracies.size());
}

double CrossValidationResult::stddev_accuracy() const {
  if (fold_accuracies.size() < 2) return 0.0;
  const double m = mean_accuracy();
  double s2 = 0.0;
  for (double a : fold_accuracies) s2 += (a - m) * (a - m);
  return std::sqrt(s2 / static_cast<double>(fold_accuracies.size() - 1));
}

namespace {

/// One fold's outcome, merged into the pooled result in fold order.
struct FoldOutcome {
  std::vector<std::pair<std::size_t, std::size_t>> records;  ///< actual, pred
  double accuracy = 0.0;
  std::string scheme;
  double train_seconds = 0.0;
  double predict_seconds = 0.0;
};

}  // namespace

CrossValidationResult cross_validate(const SeededClassifierFactory& factory,
                                     const Dataset& data, std::size_t folds,
                                     Rng& rng,
                                     const CrossValidationOptions& options) {
  HMD_REQUIRE(folds >= 2, "cross_validate: need at least two folds");
  HMD_REQUIRE(data.num_instances() >= folds,
              "cross_validate: more folds than instances");

  // Stratified fold assignment: shuffle each class's rows, deal them out
  // round-robin so every fold mirrors the class distribution.
  std::vector<std::size_t> fold_of(data.num_instances(), 0);
  std::vector<std::vector<std::size_t>> per_class(data.num_classes());
  for (std::size_t i = 0; i < data.num_instances(); ++i)
    per_class[data.class_of(i)].push_back(i);
  std::size_t dealer = 0;
  for (auto& rows : per_class) {
    rng.shuffle(rows);
    for (std::size_t r : rows) fold_of[r] = dealer++ % folds;
  }

  // Sub-seed an independent Rng per fold through splitmix64. One draw from
  // `rng` feeds the stream, so rng's final state is the same however many
  // threads run, and fold f's randomness depends only on (draw, f).
  std::vector<std::uint64_t> fold_seeds(folds);
  std::uint64_t seed_stream = rng.next_u64();
  for (std::size_t fold = 0; fold < folds; ++fold)
    fold_seeds[fold] = splitmix64(seed_stream);

  const auto run_fold = [&](std::size_t fold) {
    // Zero-copy fold selection: the training set is a row-index view over
    // the parent dataset (same ascending row order the materialized copy
    // used to have), so no per-fold deep copy happens.
    std::vector<std::size_t> train_rows;
    std::vector<std::size_t> test_rows;
    for (std::size_t i = 0; i < data.num_instances(); ++i) {
      if (fold_of[i] == fold)
        test_rows.push_back(i);
      else
        train_rows.push_back(i);
    }
    HMD_ASSERT(!test_rows.empty());
    const DatasetView train(data, std::move(train_rows));

    Rng fold_rng(fold_seeds[fold]);
    std::unique_ptr<Classifier> clf = factory(fold_rng);
    HMD_REQUIRE(clf != nullptr, "cross_validate: factory returned null");

    FoldOutcome outcome;
    outcome.scheme = clf->name();
    HMD_TRACE_SPAN("cv_fold/" + outcome.scheme + "#" + std::to_string(fold));
    {
      TraceSpan timer("");
      clf->train(train);
      outcome.train_seconds = timer.elapsed_seconds();
    }

    outcome.records.reserve(test_rows.size());
    std::size_t correct = 0;
    TraceSpan timer("");
    for (std::size_t i : test_rows) {
      const std::size_t predicted = clf->predict(data.features_of(i));
      outcome.records.emplace_back(data.class_of(i), predicted);
      correct += predicted == data.class_of(i);
    }
    outcome.predict_seconds = timer.elapsed_seconds();
    outcome.accuracy = static_cast<double>(correct) /
                       static_cast<double>(test_rows.size());
    return outcome;
  };

  std::vector<FoldOutcome> outcomes(folds);
  std::size_t threads = options.num_threads == 0 ? default_jobs()
                                                 : options.num_threads;
  if (threads <= 1) {
    for (std::size_t fold = 0; fold < folds; ++fold)
      outcomes[fold] = run_fold(fold);
  } else {
    ThreadPool* pool = options.pool != nullptr ? options.pool : &global_pool();
    parallel_for(pool, folds,
                 [&](std::size_t fold) { outcomes[fold] = run_fold(fold); });
  }

  // Merge in fold order: identical to the serial loop by construction.
  CrossValidationResult result;
  result.pooled.result = EvaluationResult(data.num_classes(),
                                          data.class_attribute().values());
  result.fold_accuracies.reserve(folds);
  Histogram& fold_ms = metrics().histogram("ml.cv_fold_ms",
                                           default_latency_buckets_ms());
  for (FoldOutcome& outcome : outcomes) {
    for (const auto& [actual, predicted] : outcome.records)
      result.pooled.record(actual, predicted);
    result.fold_accuracies.push_back(outcome.accuracy);
    result.pooled.scheme = outcome.scheme;
    result.pooled.train_seconds += outcome.train_seconds;
    result.pooled.predict_seconds += outcome.predict_seconds;
    fold_ms.record((outcome.train_seconds + outcome.predict_seconds) * 1e3);
  }
  return result;
}

CrossValidationResult cross_validate(
    const std::function<std::unique_ptr<Classifier>()>& factory,
    const Dataset& data, std::size_t folds, Rng& rng,
    const CrossValidationOptions& options) {
  HMD_REQUIRE(factory != nullptr, "cross_validate: null factory");
  return cross_validate(
      [&factory](Rng&) { return factory(); }, data, folds, rng, options);
}

}  // namespace hmd::ml
