// Observability wrapper for classifiers: times train()/distribution()/
// distribution_batch() into the process metrics registry and emits trace
// spans, without touching the scheme implementations themselves.
//
// The wrapper resolves its per-scheme instruments (histograms, counters)
// once at construction, so the per-call overhead is two clock reads and an
// atomic add — no registry lookups on the hot path.
#pragma once

#include <memory>

#include "ml/classifier.hpp"

namespace hmd {
class Counter;
class Histogram;
}  // namespace hmd

namespace hmd::ml {

/// Decorates another classifier with metrics + tracing. Instruments:
///   ml.train_ms.<scheme>      histogram, per train() call (milliseconds)
///   ml.predict_us.<scheme>    histogram, per distribution()/predict() row
///   ml.batch_rows.<scheme>    counter, rows scored via distribution_batch
///   ml.batch_us.<scheme>      histogram, per distribution_batch() call
class InstrumentedClassifier final : public Classifier {
 public:
  explicit InstrumentedClassifier(std::unique_ptr<Classifier> inner);

  void train(const DatasetView& data) override;
  std::size_t predict(std::span<const double> features) const override;
  std::vector<double> distribution(
      std::span<const double> features) const override;
  void distribution_batch(std::span<const double> flat,
                          std::size_t window_size,
                          std::span<double> out) const override;
  std::string name() const override { return inner_->name(); }
  std::size_t num_classes() const override { return inner_->num_classes(); }
  const Classifier& unwrap() const override { return inner_->unwrap(); }

  const Classifier& inner() const { return *inner_; }
  Classifier& inner() { return *inner_; }
  /// Releases ownership of the wrapped scheme (wrapper becomes unusable).
  std::unique_ptr<Classifier> release() { return std::move(inner_); }

 private:
  std::unique_ptr<Classifier> inner_;
  std::string scheme_;
  Histogram* train_ms_;
  Histogram* predict_us_;
  Histogram* batch_us_;
  Counter* batch_rows_;
};

/// Wraps `inner` in an InstrumentedClassifier.
std::unique_ptr<Classifier> instrument(std::unique_ptr<Classifier> inner);

}  // namespace hmd::ml
