#include "ml/knn.hpp"

#include <algorithm>
#include <array>
#include <cmath>
#include <limits>

#include "ml/kernels.hpp"
#include "util/error.hpp"

namespace hmd::ml {

void Knn::train(const DatasetView& data) {
  require_trainable(data);
  HMD_REQUIRE(k_ >= 1, "Knn: k must be at least 1");
  num_classes_ = data.num_classes();
  standardizer_.fit(data);
  const std::size_t n = data.num_instances();
  const std::size_t d = data.num_features();
  points_.assign(n * d, 0.0);
  labels_.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    kernels::standardize_into(data.features_of(i), standardizer_.means(),
                              standardizer_.stddevs(),
                              {points_.data() + i * d, d});
    labels_[i] = data.class_of(i);
  }
  build_quantized();
}

void Knn::build_quantized() {
  constexpr std::size_t B = kernels::kScreenBlock;
  const std::size_t d = dim();
  qpoints_.clear();
  // Per-lane screen sums must stay below INT32_MAX: dims * 4094^2 < 2^31
  // holds up to 128 dimensions. Past that the screen is simply disabled
  // and score_into falls back to the plain exact scan.
  if (points_.empty() || d > 128) return;
  double lo = points_[0];
  double hi = points_[0];
  for (double v : points_) {
    lo = std::min(lo, v);
    hi = std::max(hi, v);
  }
  qlo_ = lo;
  const double range = hi - lo;
  qscale_ = range > 0.0 ? range / 4094.0 : 1.0;
  const std::size_t n = labels_.size();
  const std::size_t padded = (n + B - 1) / B * B;
  qpoints_.assign(padded * d, 0);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < d; ++j) {
      // Training values always land inside [lo, hi], so the rounded grid
      // index is in [0, 4094] and the representation error is at most
      // qscale_/2 per coordinate. Blocked column-major layout: dimension j
      // of row i lives at block(i) + j*B + (i mod B).
      const double t = (points_[i * d + j] - qlo_) / qscale_;
      qpoints_[(i / B) * B * d + j * B + i % B] =
          static_cast<std::int16_t>(std::llround(t) - 2047);
    }
  }
}

// Scores one standardized query against all training points. The k-closest
// heap mirrors std::priority_queue exactly (push_heap/pop_heap on a vector
// with the default pair comparator), so the kept set — ties included — is
// identical to the pre-refactor per-row priority_queue.
//
// The scan is memory-bound (every query streams the whole points_ block),
// so candidates are first screened against the int16 mirror, which is 4x
// smaller. The screen is an exact-integer lower bound on the true
// distance: with per-coordinate reconstruction error at most
// err_j = |x_j - dequant(qx_j)| + qscale/2 and E = ||err||_2, the triangle
// inequality gives ||x - p|| >= qscale*||qx - qp|| - E. A candidate with
// qscale*sqrt(S_q) - E > sqrt(cap) therefore cannot beat the heap's k-th
// distance, whether or not its exact distance is ever computed — rejecting
// it is provably identical to the full scan. Survivors (a handful per
// query) get the exact left-to-right double scan, so every distance that
// reaches the heap is bit-identical to the unscreened code.
void Knn::score_into(std::span<const double> x, std::vector<Entry>& heap,
                     std::span<double> dist) const {
  constexpr std::size_t B = kernels::kScreenBlock;
  const std::size_t d = x.size();
  const std::size_t n = labels_.size();
  heap.clear();
  const auto offer = [&](double d2, std::size_t i) {
    if (heap.size() < k_) {
      heap.emplace_back(d2, labels_[i]);
      std::push_heap(heap.begin(), heap.end());
      return heap.size() == k_;
    }
    if (d2 < heap.front().first) {
      std::pop_heap(heap.begin(), heap.end());
      heap.back() = {d2, labels_[i]};
      std::push_heap(heap.begin(), heap.end());
      return true;
    }
    return false;
  };

  if (qpoints_.empty()) {
    // Screen disabled (too many dimensions): plain exact scan.
    for (std::size_t i = 0; i < n; ++i) {
      offer(kernels::squared_l2({points_.data() + i * d, d}, x), i);
    }
  } else {
    // Quantize the query onto the training grid, tracking its exact
    // reconstruction error (clamped coordinates just widen the error term —
    // the bound stays rigorous; a NaN coordinate maps to grid 0 and is
    // likewise absorbed into its error term).
    std::vector<std::int16_t> qx(d);
    double err_sq = 0.0;
    for (std::size_t j = 0; j < d; ++j) {
      const double t = (x[j] - qlo_) / qscale_;
      long long q = 0;
      if (t >= 4094.0)
        q = 4094;
      else if (t >= 0.0)
        q = std::llround(t);
      const double recon = qlo_ + qscale_ * static_cast<double>(q);
      qx[j] = static_cast<std::int16_t>(q - 2047);
      const double e = std::abs(x[j] - recon) + 0.5 * qscale_;
      err_sq += e * e;
    }
    const double err = std::sqrt(err_sq);

    // Integer screen threshold derived from the heap's current k-th
    // distance; INT32_MAX (no rejection possible) until the heap is full.
    // The 1e-12 relative slack dwarfs the ~1e-15 rounding of the exact
    // double scan while staying far below the quantization margin, so a
    // candidate with screen sum > thr provably cannot enter the heap. The
    // threshold is refreshed on every heap improvement; blocks screened
    // against a momentarily stale (larger) threshold only pass extra
    // candidates to the exact path, never reject a viable one.
    std::int32_t thr = std::numeric_limits<std::int32_t>::max();
    const auto update_threshold = [&]() {
      const double t =
          (std::sqrt(heap.front().first) * (1.0 + 1e-12) + err) / qscale_;
      const double t_sq = t * t;
      thr = t_sq >= 2147483647.0 ? std::numeric_limits<std::int32_t>::max()
                                 : static_cast<std::int32_t>(t_sq);
    };

    std::array<std::int32_t, B> acc;
    for (std::size_t base = 0; base < n; base += B) {
      kernels::screen_squared_l2_i16(qpoints_.data() + base * d, qx.data(), d,
                                     acc.data());
      const std::size_t lim = std::min(B, n - base);
      for (std::size_t b = 0; b < lim; ++b) {
        if (acc[b] > thr) continue;  // provably >= current k-th distance
        const std::size_t i = base + b;
        const double d2 = kernels::squared_l2({points_.data() + i * d, d}, x);
        if (offer(d2, i)) update_threshold();
      }
    }
  }

  std::fill(dist.begin(), dist.end(), 0.0);
  const double share = 1.0 / static_cast<double>(heap.size());
  for (const Entry& e : heap) dist[e.second] += share;
}

std::vector<double> Knn::distribution(std::span<const double> features) const {
  HMD_REQUIRE(!points_.empty(), "Knn: predict before train");
  const std::vector<double> x = standardizer_.transform(features);
  std::vector<Entry> heap;
  heap.reserve(k_);
  std::vector<double> dist(num_classes_, 0.0);
  score_into(x, heap, dist);
  return dist;
}

void Knn::distribution_batch(std::span<const double> flat,
                             std::size_t window_size,
                             std::span<double> out) const {
  HMD_REQUIRE(!points_.empty(), "Knn: predict before train");
  const std::size_t rows = require_batch(flat, window_size, out);
  HMD_REQUIRE(window_size == dim(),
              "Knn::distribution_batch: width mismatch");
  std::vector<double> x(window_size);  // standardized row, reused
  std::vector<Entry> heap;
  heap.reserve(k_);
  for (std::size_t r = 0; r < rows; ++r) {
    kernels::standardize_into(flat.subspan(r * window_size, window_size),
                              standardizer_.means(), standardizer_.stddevs(),
                              x);
    score_into(x, heap, out.subspan(r * num_classes_, num_classes_));
  }
}

std::size_t Knn::predict(std::span<const double> features) const {
  const auto dist = distribution(features);
  return static_cast<std::size_t>(
      std::max_element(dist.begin(), dist.end()) - dist.begin());
}

}  // namespace hmd::ml
