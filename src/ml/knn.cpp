#include "ml/knn.hpp"

#include <algorithm>
#include <queue>

#include "util/error.hpp"

namespace hmd::ml {

void Knn::train(const Dataset& data) {
  require_trainable(data);
  HMD_REQUIRE(k_ >= 1, "Knn: k must be at least 1");
  num_classes_ = data.num_classes();
  standardizer_.fit(data);
  points_.clear();
  labels_.clear();
  points_.reserve(data.num_instances());
  labels_.reserve(data.num_instances());
  for (std::size_t i = 0; i < data.num_instances(); ++i) {
    points_.push_back(standardizer_.transform(data.features_of(i)));
    labels_.push_back(data.class_of(i));
  }
}

std::vector<double> Knn::distribution(std::span<const double> features) const {
  HMD_REQUIRE(!points_.empty(), "Knn: predict before train");
  const std::vector<double> x = standardizer_.transform(features);
  // Max-heap of the k closest squared distances.
  using Entry = std::pair<double, std::size_t>;  // distance², label
  std::priority_queue<Entry> heap;
  for (std::size_t i = 0; i < points_.size(); ++i) {
    double d2 = 0.0;
    for (std::size_t f = 0; f < x.size(); ++f) {
      const double d = points_[i][f] - x[f];
      d2 += d * d;
    }
    if (heap.size() < k_) {
      heap.emplace(d2, labels_[i]);
    } else if (d2 < heap.top().first) {
      heap.pop();
      heap.emplace(d2, labels_[i]);
    }
  }
  std::vector<double> dist(num_classes_, 0.0);
  const double share = 1.0 / static_cast<double>(heap.size());
  while (!heap.empty()) {
    dist[heap.top().second] += share;
    heap.pop();
  }
  return dist;
}

std::size_t Knn::predict(std::span<const double> features) const {
  const auto dist = distribution(features);
  return static_cast<std::size_t>(
      std::max_element(dist.begin(), dist.end()) - dist.begin());
}

}  // namespace hmd::ml
