#include "ml/knn.hpp"

#include <algorithm>
#include <array>
#include <bit>
#include <cmath>
#include <cstdint>
#include <functional>
#include <limits>
#include <numeric>

#include "ml/kernels.hpp"
#include "util/error.hpp"

namespace hmd::ml {

namespace {

// The k-closest heap protocol every scoring path must reproduce exactly:
// push_heap/pop_heap on a vector of (distance², label) with the default
// pair comparator — a bit-level mirror of the pre-refactor per-row
// std::priority_queue, ties included. Returns true when the heap filled
// up or improved (the screen threshold can then tighten).
bool offer(std::vector<std::pair<double, std::size_t>>& heap, std::size_t k,
           double d2, std::size_t label) {
  if (heap.size() < k) {
    heap.emplace_back(d2, label);
    std::push_heap(heap.begin(), heap.end());
    return heap.size() == k;
  }
  if (d2 < heap.front().first) {
    std::pop_heap(heap.begin(), heap.end());
    heap.back() = {d2, label};
    std::push_heap(heap.begin(), heap.end());
    return true;
  }
  return false;
}

// Integer screen threshold derived from the current k-th distance. The
// 1e-12 relative slack dwarfs the ~1e-15 rounding of the exact double
// scan while staying far below the quantization margin, so a candidate
// with screen sum > thr provably cannot enter the heap.
std::int32_t screen_threshold(double kth_d2, double err, double qscale) {
  const double t = (std::sqrt(kth_d2) * (1.0 + 1e-12) + err) / qscale;
  const double t_sq = t * t;
  return t_sq >= 2147483647.0 ? std::numeric_limits<std::int32_t>::max()
                              : static_cast<std::int32_t>(t_sq);
}

}  // namespace

void Knn::train(const DatasetView& data) {
  require_trainable(data);
  HMD_REQUIRE(k_ >= 1, "Knn: k must be at least 1");
  num_classes_ = data.num_classes();
  standardizer_.fit(data);
  const std::size_t n = data.num_instances();
  const std::size_t d = data.num_features();
  points_.assign(n * d, 0.0);
  labels_.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    kernels::standardize_into(data.features_of(i), standardizer_.means(),
                              standardizer_.stddevs(),
                              {points_.data() + i * d, d});
    labels_[i] = data.class_of(i);
  }
  build_quantized();
  build_index();
}

void Knn::build_quantized() {
  constexpr std::size_t B = kernels::kScreenBlock;
  const std::size_t d = dim();
  qpoints_.clear();
  // The grid span adapts to dims (see below), but past 128 dimensions
  // even the legacy 12-bit grid would be coarsened; the screen is simply
  // disabled there and the scans fall back to plain exact distances.
  if (points_.empty() || d > 128) return;
  double lo = points_[0];
  double hi = points_[0];
  for (double v : points_) {
    lo = std::min(lo, v);
    hi = std::max(hi, v);
  }
  qlo_ = lo;
  const double range = hi - lo;
  // Grid span: the finest even span with d * span² <= INT32_MAX (so
  // per-lane screen sums cannot overflow) whose diffs still fit int16.
  // At d = 128 this reproduces the legacy 4094-step 12-bit grid; narrower
  // stores get a proportionally finer grid, a proportionally smaller
  // reconstruction error, and therefore a tighter screen threshold —
  // fewer quantization-slack survivors reach the exact double scan.
  std::int64_t span = static_cast<std::int64_t>(
      std::sqrt(2147483647.0 / static_cast<double>(d)));
  span &= ~std::int64_t{1};  // even: the centre offset span/2 is integral
  while (span > 2 && span * span * static_cast<std::int64_t>(d) > 2147483647)
    span -= 2;
  qspan_ = std::min<std::int64_t>(span, 32766);
  qscale_ = range > 0.0 ? range / static_cast<double>(qspan_) : 1.0;
  const std::size_t n = labels_.size();
  const std::size_t padded = (n + B - 1) / B * B;
  const std::size_t entries = kernels::screen_block_entries(B, d);
  qpoints_.assign(padded / B * entries, 0);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < d; ++j) {
      // Training values always land inside [lo, hi], so the rounded grid
      // index is in [0, qspan_] and the representation error is at most
      // qscale_/2 per coordinate. Dim-pair-interleaved layout within each
      // block — the shape the screen kernel's madd step consumes.
      const double t = (points_[i * d + j] - qlo_) / qscale_;
      qpoints_[(i / B) * entries + kernels::screen_block_index(B, i % B, j)] =
          static_cast<std::int16_t>(std::llround(t) - qspan_ / 2);
    }
  }
}

void Knn::build_index() {
  // Small leaves are the point of the tree: pruning happens at leaf
  // granularity, so the per-query work scales with how few points the
  // leaves near the query hold. The brute path keeps its long
  // kScreenBlock stride — it streams everything regardless.
  constexpr std::size_t B = kernels::kLeafBlock;
  // Below this the tree is a couple of leaves of linear scan plus
  // traversal overhead — the brute path is already optimal.
  constexpr std::size_t kIndexMinPoints = 2 * kernels::kLeafBlock;
  const std::size_t d = dim();
  const std::size_t n = labels_.size();
  nodes_.clear();
  box_lo_.clear();
  box_hi_.clear();
  perm_.clear();
  tree_points_.clear();
  qtree_.clear();
  if (n < kIndexMinPoints || k_ * 4 >= n) return;
  // Box pruning needs finite geometry; a store with non-finite values
  // (degenerate upstream data) keeps the legacy brute-force behaviour.
  for (double v : points_)
    if (!std::isfinite(v)) return;

  perm_.resize(n);
  std::iota(perm_.begin(), perm_.end(), 0u);

  const auto build = [&](auto&& self, std::uint32_t begin,
                         std::uint32_t end) -> std::uint32_t {
    const auto id = static_cast<std::uint32_t>(nodes_.size());
    nodes_.push_back(KdNode{0, 0, begin, end, 0});
    // Tight bounding box over the node's points (axis j of node id lives
    // at id*d + j).
    box_lo_.resize(box_lo_.size() + d,
                   std::numeric_limits<double>::infinity());
    box_hi_.resize(box_hi_.size() + d,
                   -std::numeric_limits<double>::infinity());
    std::size_t widest = 0;
    {
      double* lo = box_lo_.data() + std::size_t{id} * d;
      double* hi = box_hi_.data() + std::size_t{id} * d;
      for (std::uint32_t p = begin; p < end; ++p) {
        const double* row = points_.data() + std::size_t{perm_[p]} * d;
        for (std::size_t j = 0; j < d; ++j) {
          lo[j] = std::min(lo[j], row[j]);
          hi[j] = std::max(hi[j], row[j]);
        }
      }
      for (std::size_t j = 1; j < d; ++j)
        if (hi[j] - lo[j] > hi[widest] - lo[widest]) widest = j;
    }
    if (end - begin <= B) return id;  // leaf
    const std::uint32_t mid = begin + (end - begin) / 2;
    std::nth_element(perm_.begin() + begin, perm_.begin() + mid,
                     perm_.begin() + end,
                     [&](std::uint32_t a, std::uint32_t b) {
                       return points_[std::size_t{a} * d + widest] <
                              points_[std::size_t{b} * d + widest];
                     });
    // Children are created after this node, so their ids are nonzero and
    // box_lo_/box_hi_ grow append-only.
    const std::uint32_t left = self(self, begin, mid);
    const std::uint32_t right = self(self, mid, end);
    nodes_[id].left = left;
    nodes_[id].right = right;
    return id;
  };
  build(build, 0, static_cast<std::uint32_t>(n));

  // Permuted mirror of the store so leaf scans stream contiguous rows.
  tree_points_.resize(n * d);
  for (std::size_t pos = 0; pos < n; ++pos)
    std::copy_n(points_.data() + std::size_t{perm_[pos]} * d, d,
                tree_points_.data() + pos * d);

  // One int16 screen block per leaf on the same grid as qpoints_
  // (identical quantization formula, so the screen bound carries over).
  // Blocks are sized to the leaf's actual row count rounded up to the
  // kernel's 16-row granule — NOT to kLeafBlock: the midpoint split
  // snaps real leaf sizes to n/2^depth, and screening a block padded all
  // the way to kLeafBlock would waste up to half the screen bandwidth on
  // zero rows.
  if (!qpoints_.empty()) {
    for (KdNode& nd : nodes_) {
      if (nd.left != 0) continue;
      const std::size_t rows16 = (nd.end - nd.begin + 15) / 16 * 16;
      nd.qoff = static_cast<std::uint32_t>(qtree_.size());
      qtree_.resize(qtree_.size() + kernels::screen_block_entries(rows16, d),
                    0);
      for (std::uint32_t b = 0; b < nd.end - nd.begin; ++b) {
        const double* row =
            tree_points_.data() + std::size_t{nd.begin + b} * d;
        for (std::size_t j = 0; j < d; ++j) {
          const double t = (row[j] - qlo_) / qscale_;
          qtree_[nd.qoff + kernels::screen_block_index(rows16, b, j)] =
              static_cast<std::int16_t>(std::llround(t) - qspan_ / 2);
        }
      }
    }
  }
}

double Knn::quantize_query(std::span<const double> x,
                           std::vector<std::int16_t>& qx) const {
  // Quantize the query onto the training grid, tracking its exact
  // reconstruction error (clamped coordinates just widen the error term —
  // the bound stays rigorous; callers gate non-finite queries off the
  // screened paths entirely).
  const std::size_t d = x.size();
  qx.resize(d);
  double err_sq = 0.0;
  for (std::size_t j = 0; j < d; ++j) {
    const double t = (x[j] - qlo_) / qscale_;
    long long q = 0;
    if (t >= static_cast<double>(qspan_))
      q = qspan_;
    else if (t >= 0.0)
      q = std::llround(t);
    const double recon = qlo_ + qscale_ * static_cast<double>(q);
    qx[j] = static_cast<std::int16_t>(q - qspan_ / 2);
    const double e = std::abs(x[j] - recon) + 0.5 * qscale_;
    err_sq += e * e;
  }
  return std::sqrt(err_sq);
}

// Brute-force reference scan. The int16 screen is an exact-integer lower
// bound on the true distance: with per-coordinate reconstruction error at
// most err_j = |x_j - dequant(qx_j)| + qscale/2 and E = ||err||_2, the
// triangle inequality gives ||x - p|| >= qscale*||qx - qp|| - E. A
// candidate with qscale*sqrt(S_q) - E > sqrt(cap) therefore cannot beat
// the heap's k-th distance, whether or not its exact distance is ever
// computed — rejecting it is provably identical to the full scan.
// Survivors get the exact left-to-right double scan, so every distance
// that reaches the heap is bit-identical to the unscreened code.
void Knn::score_brute(std::span<const double> x, Scratch& s,
                      bool finite) const {
  constexpr std::size_t B = kernels::kScreenBlock;
  const std::size_t d = x.size();
  const std::size_t n = labels_.size();
  s.heap.clear();

  if (qpoints_.empty() || !screen_enabled_ || !finite) {
    // Screen disabled (too many dimensions or the bench/test hook) or a
    // non-finite query (its reconstruction-error bound would be
    // meaningless): plain exact scan.
    for (std::size_t i = 0; i < n; ++i)
      offer(s.heap, k_,
            kernels::squared_l2({points_.data() + i * d, d}, x), labels_[i]);
    return;
  }

  const double err = quantize_query(x, s.qx);
  const kernels::Isa isa = kernels::active_isa();
  // Seed the heap with the first k rows so a finite screen threshold
  // exists before any block is masked — an INT32_MAX threshold would
  // make the first block's mask all-ones and force a slow bit-walk over
  // every row. The threshold is then refreshed on every heap
  // improvement; blocks screened against a momentarily stale (larger)
  // threshold only pass extra candidates to the exact path, never
  // reject a viable one.
  std::int32_t thr = std::numeric_limits<std::int32_t>::max();
  std::size_t start = 0;
  while (start < n && s.heap.size() < k_) {
    offer(s.heap, k_,
          kernels::squared_l2({points_.data() + start * d, d}, x),
          labels_[start]);
    ++start;
  }
  if (s.heap.size() == k_)
    thr = screen_threshold(s.heap.front().first, err, qscale_);
  const std::size_t entries = kernels::screen_block_entries(B, d);
  std::array<std::int32_t, B> acc;
  std::array<std::uint64_t, B / 64> mask;
  for (std::size_t base = 0; base < n; base += B) {
    kernels::screen_squared_l2_i16_as(isa,
                                      qpoints_.data() + (base / B) * entries,
                                      s.qx.data(), d, B, acc.data());
    const std::size_t lim = std::min(B, n - base);
    // Survivors via one vectorized compare per block: computed against the
    // block-entry threshold, so the per-survivor recheck below (thr may
    // have tightened within the block) stays load-bearing.
    kernels::mask_le_i32_as(isa, acc.data(), B, thr, mask.data());
    for (std::size_t w = 0; w * 64 < B; ++w) {
      std::uint64_t m = mask[w];
      while (m != 0) {
        const std::size_t b =
            w * 64 + static_cast<std::size_t>(std::countr_zero(m));
        m &= m - 1;
        if (b >= lim) break;  // zero padding rows at the store's end
        if (base + b < start) continue;  // seed rows already offered
        if (acc[b] > thr) continue;  // provably >= current k-th distance
        const std::size_t i = base + b;
        const double d2 = kernels::squared_l2({points_.data() + i * d, d}, x);
        if (offer(s.heap, k_, d2, labels_[i]))
          thr = screen_threshold(s.heap.front().first, err, qscale_);
      }
    }
  }
}

// Exact KD-tree scan in two phases.
//
// Phase 1 walks the tree near-child-first (a LIFO stack of (bound, id)
// pairs; the nearer child is pushed last so it is explored first),
// keeping a pure-d2 heap of the k smallest exact distances seen so far.
// Once full, the heap's top upper-bounds the true k-th distance T, and
// because a k-smallest multiset is visit-order independent it ends
// exactly at T. Subtrees are pruned when their box bound exceeds the
// current k-th — at push time and again at pop time, by which point kth
// has usually tightened (descending the near side first makes most far
// entries die stale). Leaves are screened with the int16 bound first.
// Every rejection — stale pop, box prune, screen — discards only
// candidates provably farther than the current k-th >= T, so every
// training point with d2 <= T is exactly scanned and collected.
//
// The box bound is kernels::bound_squared_l2 (per axis
// t_j = max(0, lo_j - x_j, x_j - hi_j) <= |p_j - x_j| for any p in the
// box) shrunk by a relative 1e-12. The kernel's SIMD clones reassociate
// the reduction, so the raw value can sit a few ulps (~1e-14 relative)
// above the exact sum — and the left-to-right fl(d2) of an in-box point
// can itself round ~1e-15 below ITS exact value, which the exact sum
// lower-bounds. The 1e-12 shrink dwarfs both roundings, so the shrunk
// bound never overshoots any fl(d2) it prunes against.
//
// Phase 2 sorts the collected (d2, original index) superset of
// {i : d2_i <= T} by original index and replays it through the exact
// (d2, label) heap protocol. Replay is verdict-identical to the full
// scan: an entry with d2 > T is always the lexicographic maximum of the
// pair-ordered heap whenever one is present, so such fillers are evicted
// before any <=T entry, <=T entries are admitted unconditionally while a
// filler occupies a full heap, and evictions among <=T entries only
// happen when the heap holds exactly the <=T multiset the full scan's
// heap holds at the same index. The final heap therefore carries the
// identical (d2, label) multiset — and the distribution depends on
// nothing else.
void Knn::score_indexed(std::span<const double> x, Scratch& s) const {
  constexpr std::size_t B = kernels::kLeafBlock;
  const std::size_t d = x.size();
  const double inf = std::numeric_limits<double>::infinity();

  s.dheap.clear();
  s.cand.clear();
  double kth = inf;
  // Returns true when kth just became finite or shrank — the moment the
  // screen threshold can tighten.
  const auto offer_d2 = [&](double d2) {
    if (s.dheap.size() < k_) {
      s.dheap.push_back(d2);
      std::push_heap(s.dheap.begin(), s.dheap.end());
      if (s.dheap.size() < k_) return false;
      kth = s.dheap.front();
      return true;
    }
    if (d2 < s.dheap.front()) {
      std::pop_heap(s.dheap.begin(), s.dheap.end());
      s.dheap.back() = d2;
      std::push_heap(s.dheap.begin(), s.dheap.end());
      kth = s.dheap.front();
      return true;
    }
    return false;
  };

  const bool screen = !qtree_.empty();
  const double err = screen ? quantize_query(x, s.qx) : 0.0;
  // One dispatch resolution per query; the leaf loop calls kernels tens
  // of times and need not re-read the override atomics every time.
  const kernels::Isa isa = kernels::active_isa();

  const auto box_bound = [&](std::uint32_t id) {
    return kernels::bound_squared_l2_as(
               isa, box_lo_.data() + std::size_t{id} * d,
               box_hi_.data() + std::size_t{id} * d, x.data(), d) *
           (1.0 - 1e-12);
  };

  std::array<std::int32_t, B> acc;
  std::array<std::uint64_t, (B + 63) / 64> mask;
  s.frontier.clear();
  s.frontier.emplace_back(box_bound(0), 0);
  while (!s.frontier.empty()) {
    const auto [bound, id] = s.frontier.back();
    s.frontier.pop_back();
    // Bounds are checked at push time, but kth may have tightened since;
    // a stale entry whose box is now provably outside the answer set is
    // dropped here.
    if (bound > kth) continue;
    const KdNode& nd = nodes_[id];
    if (nd.left != 0) {
      double bl = box_bound(nd.left);
      double br = box_bound(nd.right);
      std::uint32_t nearc = nd.left;
      std::uint32_t farc = nd.right;
      if (br < bl) {
        std::swap(bl, br);
        nearc = nd.right;
        farc = nd.left;
      }
      // Far child below the near one on the stack: descending into the
      // nearer box first tightens kth before the far bound is re-tested
      // at pop time, so most far subtrees die as stale entries.
      if (br <= kth) s.frontier.emplace_back(br, farc);
      if (bl <= kth) s.frontier.emplace_back(bl, nearc);
      continue;
    }
    // Leaf: int16 screen against the leaf's block, exact distances for
    // survivors (walked via the vectorized survivor bitmask). The
    // threshold is refreshed whenever kth tightens; the per-survivor
    // recheck against the refreshed thr is what makes the entry-time
    // mask safe.
    const std::size_t cnt = nd.end - nd.begin;
    // Screen-block rows for this leaf: actual count rounded up to the
    // kernel granule (matches build_index's tight qtree_ blocks).
    const std::size_t rows16 = (cnt + 15) / 16 * 16;
    std::int32_t thr = std::numeric_limits<std::int32_t>::max();
    std::size_t start = 0;
    if (screen) {
      kernels::screen_squared_l2_i16_as(isa, qtree_.data() + nd.qoff,
                                        s.qx.data(), d, rows16, acc.data());
      if (kth == inf) {
        // First leaf: the heap is not yet full, so no finite screen
        // threshold exists and the mask would pass every row. Scan
        // linearly just until the k-th distance becomes finite (k rows),
        // then mask the rest against the real threshold.
        while (start < cnt && kth == inf) {
          const std::size_t pos = nd.begin + start;
          const double d2 =
              kernels::squared_l2({tree_points_.data() + pos * d, d}, x);
          s.cand.emplace_back(d2, perm_[pos]);  // kth == inf: collect all
          offer_d2(d2);
          ++start;
        }
        if (start >= cnt) continue;  // whole leaf consumed by the seed
      }
      thr = screen_threshold(kth, err, qscale_);
      kernels::mask_le_i32_as(isa, acc.data(), rows16, thr, mask.data());
    } else {
      mask.fill(~std::uint64_t{0});
    }
    for (std::size_t w = 0; w * 64 < rows16; ++w) {
      std::uint64_t m = mask[w];
      while (m != 0) {
        const std::size_t b =
            w * 64 + static_cast<std::size_t>(std::countr_zero(m));
        m &= m - 1;
        if (b < start) continue;  // rows the seed scan already consumed
        if (b >= cnt) break;  // zero padding rows at the leaf's end
        if (screen && acc[b] > thr) continue;  // provably > current k-th
        const std::size_t pos = nd.begin + b;
        const double d2 =
            kernels::squared_l2({tree_points_.data() + pos * d, d}, x);
        // Collect against the pre-offer kth: kth only shrinks, so this
        // keeps a superset of {d2 <= T} for the replay.
        if (d2 <= kth) s.cand.emplace_back(d2, perm_[pos]);
        if (offer_d2(d2) && screen)
          thr = screen_threshold(kth, err, qscale_);
      }
    }
  }

  // The walk is complete, so kth IS the true k-th distance T (the d2 heap
  // saw every point with d2 <= T). Entries beyond it are exactly the
  // fillers the replay is guaranteed to evict — drop them before paying
  // for the sort.
  s.cand.erase(std::remove_if(s.cand.begin(), s.cand.end(),
                              [&](const Entry& c) { return c.first > kth; }),
               s.cand.end());
  std::sort(s.cand.begin(), s.cand.end(),
            [](const Entry& a, const Entry& b) { return a.second < b.second; });
  s.heap.clear();
  for (const Entry& c : s.cand) offer(s.heap, k_, c.first, labels_[c.second]);
}

void Knn::score_into(std::span<const double> x, Scratch& s,
                     std::span<double> dist) const {
  bool finite = true;
  for (double v : x)
    if (!std::isfinite(v)) {
      finite = false;
      break;
    }
  if (finite && index_enabled_ && !nodes_.empty())
    score_indexed(x, s);
  else
    score_brute(x, s, finite);

  std::fill(dist.begin(), dist.end(), 0.0);
  const double share = 1.0 / static_cast<double>(s.heap.size());
  for (const Entry& e : s.heap) dist[e.second] += share;
}

std::vector<double> Knn::distribution(std::span<const double> features) const {
  HMD_REQUIRE(!points_.empty(), "Knn: predict before train");
  Scratch s;
  s.heap.reserve(k_);
  const std::vector<double> x = standardizer_.transform(features);
  std::vector<double> dist(num_classes_, 0.0);
  score_into(x, s, dist);
  return dist;
}

void Knn::distribution_batch(std::span<const double> flat,
                             std::size_t window_size,
                             std::span<double> out) const {
  HMD_REQUIRE(!points_.empty(), "Knn: predict before train");
  const std::size_t rows = require_batch(flat, window_size, out);
  HMD_REQUIRE(window_size == dim(),
              "Knn::distribution_batch: width mismatch");
  Scratch s;
  s.x.resize(window_size);
  s.heap.reserve(k_);
  // Each row is scored independently, so the batch can be walked in any
  // order without changing a single verdict. Process rows grouped by
  // their leading feature: nearby queries visit the same handful of tree
  // leaves, so each group's screen blocks and point rows stay hot in
  // cache instead of being evicted between every pair of unrelated
  // queries. (Skipped when there is no index — the brute scan streams
  // the whole store regardless of query locality.)
  s.order.resize(rows);
  std::iota(s.order.begin(), s.order.end(), 0u);
  if (index_enabled_ && !nodes_.empty() && rows > 1)
    std::sort(s.order.begin(), s.order.end(),
              [&](std::uint32_t a, std::uint32_t b) {
                return flat[std::size_t{a} * window_size] <
                       flat[std::size_t{b} * window_size];
              });
  for (std::size_t i = 0; i < rows; ++i) {
    const std::size_t r = s.order[i];
    kernels::standardize_into(flat.subspan(r * window_size, window_size),
                              standardizer_.means(), standardizer_.stddevs(),
                              s.x);
    score_into(s.x, s, out.subspan(r * num_classes_, num_classes_));
  }
}

std::size_t Knn::predict(std::span<const double> features) const {
  const auto dist = distribution(features);
  return static_cast<std::size_t>(
      std::max_element(dist.begin(), dist.end()) - dist.begin());
}

}  // namespace hmd::ml
