#include "ml/one_r.hpp"

#include <algorithm>

#include "util/error.hpp"

namespace hmd::ml {

namespace {

struct ValueLabel {
  double value;
  std::size_t cls;
};

struct CandidateRule {
  std::vector<OneR::Interval> intervals;
  std::size_t errors = 0;
};

/// Builds the OneR interval rule for one feature.
CandidateRule build_rule(std::vector<ValueLabel>& data,
                         std::size_t num_classes,
                         std::size_t min_bucket_size) {
  std::sort(data.begin(), data.end(),
            [](const ValueLabel& a, const ValueLabel& b) {
              return a.value < b.value;
            });

  struct Bucket {
    std::vector<std::size_t> counts;
    std::size_t total = 0;
    double last_value = 0.0;
    std::size_t majority() const {
      return static_cast<std::size_t>(
          std::max_element(counts.begin(), counts.end()) - counts.begin());
    }
    std::size_t majority_count() const {
      return *std::max_element(counts.begin(), counts.end());
    }
  };

  std::vector<Bucket> buckets;
  Bucket current{.counts = std::vector<std::size_t>(num_classes, 0)};
  for (std::size_t i = 0; i < data.size(); ++i) {
    ++current.counts[data[i].cls];
    ++current.total;
    current.last_value = data[i].value;
    const bool class_settled = current.majority_count() >= min_bucket_size;
    const bool boundary =
        i + 1 < data.size() && data[i + 1].value != data[i].value;
    if (class_settled && boundary) {
      buckets.push_back(current);
      current = Bucket{.counts = std::vector<std::size_t>(num_classes, 0)};
    }
  }
  if (current.total > 0) {
    buckets.push_back(current);
  }
  HMD_ASSERT(!buckets.empty());

  // Merge adjacent buckets with the same majority class.
  std::vector<Bucket> merged;
  for (Bucket& b : buckets) {
    if (!merged.empty() && merged.back().majority() == b.majority()) {
      Bucket& m = merged.back();
      for (std::size_t c = 0; c < num_classes; ++c) m.counts[c] += b.counts[c];
      m.total += b.total;
      m.last_value = b.last_value;
    } else {
      merged.push_back(std::move(b));
    }
  }

  CandidateRule rule;
  for (std::size_t i = 0; i < merged.size(); ++i) {
    OneR::Interval interval;
    interval.cls = merged[i].majority();
    if (i + 1 < merged.size()) {
      // Boundary halfway between this bucket's last value and the next
      // bucket's first value; approximate with last_value (the next bucket
      // begins strictly above it by construction).
      interval.upper_bound = merged[i].last_value;
    }
    rule.intervals.push_back(interval);
    rule.errors += merged[i].total - merged[i].majority_count();
  }
  return rule;
}

}  // namespace

void OneR::train(const DatasetView& data) {
  require_trainable(data);
  num_classes_ = data.num_classes();
  const std::size_t n = data.num_instances();

  std::size_t best_errors = n + 1;
  for (std::size_t f = 0; f < data.num_features(); ++f) {
    std::vector<ValueLabel> column;
    column.reserve(n);
    for (std::size_t i = 0; i < n; ++i)
      column.push_back({data.features_of(i)[f], data.class_of(i)});
    CandidateRule rule = build_rule(column, num_classes_, min_bucket_size_);
    if (rule.errors < best_errors) {
      best_errors = rule.errors;
      feature_ = f;
      intervals_ = std::move(rule.intervals);
    }
  }
  training_error_ = static_cast<double>(best_errors) / static_cast<double>(n);
  trained_ = true;
}

std::size_t OneR::chosen_feature() const {
  HMD_REQUIRE(trained_, "OneR: model not trained");
  return feature_;
}

std::size_t OneR::predict(std::span<const double> features) const {
  HMD_REQUIRE(trained_, "OneR: predict before train");
  HMD_REQUIRE(feature_ < features.size(), "OneR: feature vector too short");
  const double v = features[feature_];
  for (const Interval& interval : intervals_) {
    if (v <= interval.upper_bound) return interval.cls;
  }
  return intervals_.back().cls;
}

}  // namespace hmd::ml
