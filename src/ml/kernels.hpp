// Shared hot-path numeric kernels for the ML library. Every classifier's
// inner loop (logistic/SVM/MLP dots, Knn distances, Mahalanobis forms,
// PCA covariance) funnels through these so the memory-access pattern is
// written once and optimized once.
//
// Bit-exactness contract: each kernel accumulates LEFT TO RIGHT in the
// same order the pre-refactor per-classifier loops did (init value first,
// then elements ascending), and nothing here may be compiled with
// -ffast-math (kernels.cpp is additionally pinned to -ffp-contract=off so
// an FMA-capable SIMD clone cannot skip the intermediate rounding the
// scalar path performs). Changing an accumulation order is a behaviour
// change — the determinism regression tests will catch it. Integer
// kernels are exempt: exact math, so reassociation is a pure speed change.
//
// SIMD dispatch: the out-of-line kernels (screen, GEMM) carry scalar +
// AVX2 + AVX-512 clones selected at runtime (active_isa()). The choice is
// overridable via the HMD_KERNEL_ISA environment variable or force_isa()
// so heterogeneous CI runners produce reproducible codepaths, and every
// clone of a float kernel is bit-identical by construction — pinned by
// the dispatch-parity test suite through the *_as(Isa, ...) entry points.
#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <vector>

namespace hmd::ml::kernels {

/// init + Σ a[i]*b[i], accumulated left to right. The `init` seed makes
/// bias-first affine forms (`z = w[d] + Σ w[f]*x[f]`) exact.
inline double dot(std::span<const double> a, std::span<const double> b,
                  double init = 0.0) {
  double acc = init;
  const std::size_t n = a.size();
  for (std::size_t i = 0; i < n; ++i) acc += a[i] * b[i];
  return acc;
}

/// Affine form with the bias stored LAST in `weights` (the library's
/// weight-vector convention): weights[n] + Σ weights[f]*x[f].
inline double affine_bias_last(std::span<const double> weights,
                               std::span<const double> x) {
  return dot({weights.data(), x.size()}, x, weights[x.size()]);
}

/// y[i] += alpha * x[i].
inline void axpy(double alpha, std::span<const double> x,
                 std::span<double> y) {
  const std::size_t n = x.size();
  for (std::size_t i = 0; i < n; ++i) y[i] += alpha * x[i];
}

/// Σ (a[i]-b[i])², accumulated left to right.
inline double squared_l2(std::span<const double> a,
                         std::span<const double> b) {
  double acc = 0.0;
  const std::size_t n = a.size();
  for (std::size_t i = 0; i < n; ++i) {
    const double d = a[i] - b[i];
    acc += d * d;
  }
  return acc;
}

// --- Runtime ISA dispatch ---------------------------------------------------

/// The instruction sets the dispatched kernels are cloned for. kScalar is
/// baseline x86-64 (and the only choice off x86-64).
enum class Isa { kScalar, kAvx2, kAvx512 };

/// "scalar", "avx2", "avx512".
const char* to_string(Isa isa);

/// Parse an ISA name (the HMD_KERNEL_ISA / --isa spellings); nullopt for
/// anything else.
std::optional<Isa> isa_from_name(const std::string& name);

/// True when the running CPU can execute kernels cloned for `isa`
/// (kScalar is always true).
bool isa_supported(Isa isa);

/// The ISA the dispatched kernels currently select. Resolution order:
/// force_isa() override, else HMD_KERNEL_ISA from the environment (read
/// once, resolved by resolve_isa_request below), else the best
/// CPU-supported ISA.
Isa active_isa();

/// Resolve an HMD_KERNEL_ISA-style request: parse the name and CLAMP it
/// to the best ISA this CPU supports — a CI matrix can export
/// HMD_KERNEL_ISA=avx512 fleet-wide and an avx2-only runner simply runs
/// its best tier instead of aborting. Unknown names raise
/// PreconditionError (a typo should fail fast, not silently fall back).
Isa resolve_isa_request(const std::string& name);

/// Programmatic override (tools' --isa flag, tests). Raises
/// PreconditionError when the CPU cannot execute `isa`.
void force_isa(Isa isa);
/// force_isa by flag value ("scalar", "avx2", "avx512"); HMD_REQUIREs on
/// unknown names and unsupported CPUs — the --isa plumbing of the tools.
void force_isa_by_name(const std::string& name);

/// Rows per quantized-screen block (see screen_squared_l2_i16).
inline constexpr std::size_t kScreenBlock = 256;

/// Entries a screen block occupies for `rows` rows of `dims` dimensions in
/// the dim-pair-interleaved layout below (odd widths pad a zero dimension).
inline constexpr std::size_t screen_block_entries(std::size_t rows,
                                                  std::size_t dims) {
  return rows * 2 * ((dims + 1) / 2);
}

/// Index of dimension j of row b inside a screen block of `rows` rows:
/// dimensions are taken in PAIRS, and within a pair the block is
/// row-major — pair p of row b lives at [p*2*rows + 2*b] / [.. + 1]. Two
/// adjacent int16 therefore hold two dimensions of ONE row, which is
/// exactly the shape of the x86 madd (vpmaddwd) step: multiply adjacent
/// int16 pairs, add each pair into an int32 lane — one instruction
/// squares-and-sums a dimension pair for 8/16 rows at once.
inline constexpr std::size_t screen_block_index(std::size_t rows,
                                                std::size_t b,
                                                std::size_t j) {
  return (j / 2) * 2 * rows + 2 * b + (j % 2);
}

/// Exact integer squared-L2 screen over one block of `rows` quantized
/// candidates in the dim-pair-interleaved layout above. For every b:
///
///   acc[b] = sum_j (qx[j] - block[screen_block_index(rows, b, j)])^2
///
/// (a padded odd dimension is stored as 0 and screened against a query
/// coordinate of 0, so it contributes nothing). The caller must pick its
/// quantization grid so every difference fits int16 and
/// dims * span² <= INT32_MAX (Knn adapts the span to the store width) —
/// then the arithmetic is exact integer math with no rounding, and
/// reassociating it across lanes is a pure speed change. Implemented out
/// of line with runtime-dispatched SIMD clones (vpmaddwd on
/// AVX2/AVX-512). `rows` must be a multiple of 16.
void screen_squared_l2_i16(const std::int16_t* block, const std::int16_t* qx,
                           std::size_t dims, std::size_t rows,
                           std::int32_t* acc);
/// Fixed-ISA variant for the dispatch-parity tests (caller must check
/// isa_supported first).
void screen_squared_l2_i16_as(Isa isa, const std::int16_t* block,
                              const std::int16_t* qx, std::size_t dims,
                              std::size_t rows, std::int32_t* acc);

/// Rows per KD-tree-leaf screen block. Leaves are deliberately much
/// smaller than the brute-force screen block: the tree prunes at leaf
/// granularity, so small leaves mean each query touches a small fraction
/// of the store, while the brute scan streams everything anyway and
/// prefers the long-stride block.
inline constexpr std::size_t kLeafBlock = 768;

/// Bitmask of screen survivors: bit b of mask[b/64] is set iff
/// acc[b] <= thr. `n` must be a multiple of 16; mask holds ceil(n/64)
/// words. A dispatched kernel because the comparison over a whole block
/// is the screen's companion hot loop (one vector compare per 8/16 lanes
/// beats a branchy scalar scan whose branches are almost always taken).
void mask_le_i32(const std::int32_t* acc, std::size_t n, std::int32_t thr,
                 std::uint64_t* mask);
/// Fixed-ISA variant for the dispatch-parity tests.
void mask_le_i32_as(Isa isa, const std::int32_t* acc, std::size_t n,
                    std::int32_t thr, std::uint64_t* mask);

/// Lower bound on the squared distance from `x` to the axis-aligned box
/// [lo, hi] (all length d): Σ_j t_j² with t_j = max(0, lo[j]-x[j],
/// x[j]-hi[j]). EXEMPT from the left-to-right bit-exactness contract:
/// this is a pruning bound, not a reproducible distance, so the SIMD
/// clones reassociate the reduction freely. Any clone's value is within
/// a few ulps (≲ 2·d·ε relative) of the exact sum; a caller comparing it
/// against exactly-computed distances must shrink it by a relative slack
/// that dwarfs that rounding (Knn uses 1e-12). Inputs must be finite.
double bound_squared_l2(const double* lo, const double* hi, const double* x,
                        std::size_t d);
/// Fixed-ISA variant for the dispatch tests (values may differ across
/// ISAs by the rounding slack above — tests compare with tolerance).
double bound_squared_l2_as(Isa isa, const double* lo, const double* hi,
                           const double* x, std::size_t d);

/// Pack per-class bias-last weight rows (w[c] = d weights + bias) into the
/// feature-major layout affine_batch consumes: packed[f*k + c] = w[c][f]
/// for f < d, and packed[d*k + c] = w[c][d] (the bias row last). The
/// transpose puts one feature's weights for ALL outputs contiguous, so the
/// GEMM's inner update is a unit-stride SIMD axpy across outputs.
std::vector<double> pack_weights_feature_major(
    const std::vector<std::vector<double>>& w);

/// Blocked batch affine map (the serve-path GEMM): for every input row r
/// of `a` (rows x d, row-major) and every output c of k,
///
///   out[r*k + c] = packed[d*k + c] + Σ_f ascending a[r*d+f]*packed[f*k+c]
///
/// i.e. bit-identical to affine_bias_last(w[c], row r) — the bias seeds
/// the accumulator and features accumulate left to right, so blocking over
/// rows and vectorizing ACROSS outputs changes nothing (IEEE ops happen in
/// the same order per output; SIMD lanes never span the reduction axis).
/// `packed` comes from pack_weights_feature_major. Runtime-dispatched
/// scalar/AVX2/AVX-512 clones.
void affine_batch(const double* a, std::size_t rows, std::size_t d,
                  const double* packed, std::size_t k, double* out);
/// Fixed-ISA variant for the dispatch-parity tests.
void affine_batch_as(Isa isa, const double* a, std::size_t rows,
                     std::size_t d, const double* packed, std::size_t k,
                     double* out);

/// Int8 GEMM for the quantized serving tier: out[r*k + c] =
/// Σ_f a[r*d+f] * w[c*d+f], accumulated in int32 (weights row-major per
/// output). Products are at most 127*127 and the int32 accumulator is
/// exact for any practical d (d < 2^16), so all clones agree exactly and
/// reassociation is again pure speed.
void gemm_i8_i32(const std::int8_t* a, std::size_t rows, std::size_t d,
                 const std::int8_t* w, std::size_t k, std::int32_t* out);
/// Fixed-ISA variant for the dispatch-parity tests.
void gemm_i8_i32_as(Isa isa, const std::int8_t* a, std::size_t rows,
                    std::size_t d, const std::int8_t* w, std::size_t k,
                    std::int32_t* out);

/// Standardize `x` into `out`: (x-mean)/stddev per feature, 0 where the
/// training stddev was 0 (constant column). Matches Standardizer::transform
/// exactly, without the per-call allocation.
inline void standardize_into(std::span<const double> x,
                             std::span<const double> means,
                             std::span<const double> stddevs,
                             std::span<double> out) {
  const std::size_t n = x.size();
  for (std::size_t i = 0; i < n; ++i) {
    out[i] = stddevs[i] > 0.0 ? (x[i] - means[i]) / stddevs[i] : 0.0;
  }
}

/// Standardize `rows` contiguous rows of width means.size() in one call —
/// per element bit-identical to standardize_into. The constant-column
/// rule is applied as an unconditional divide (by a safe divisor of 1
/// where stddev == 0) followed by a blend to 0 — dividing by `safe` never
/// traps, so the division stays a straight-line vectorizable statement,
/// unlike the conditional divide in the per-row form which the
/// vectorizer must refuse to speculate. The select (not a multiply by a
/// 0/1 mask) keeps non-finite inputs on constant columns mapping to 0.
inline void standardize_rows(const double* flat, std::size_t rows,
                             std::span<const double> means,
                             std::span<const double> stddevs,
                             double* out) {
  const std::size_t d = means.size();
  constexpr std::size_t kMaxStack = 256;
  if (d > kMaxStack) {  // unusual width: keep the simple per-element form
    for (std::size_t r = 0; r < rows; ++r)
      for (std::size_t j = 0; j < d; ++j) {
        const std::size_t i = r * d + j;
        out[i] = stddevs[j] > 0.0 ? (flat[i] - means[j]) / stddevs[j] : 0.0;
      }
    return;
  }
  double safe[kMaxStack];
  double mask[kMaxStack];
  for (std::size_t j = 0; j < d; ++j) {
    const bool live = stddevs[j] > 0.0;
    safe[j] = live ? stddevs[j] : 1.0;
    mask[j] = live ? 1.0 : 0.0;
  }
  for (std::size_t r = 0; r < rows; ++r) {
    const double* x = flat + r * d;
    double* o = out + r * d;
    for (std::size_t j = 0; j < d; ++j) {
      const double val = (x[j] - means[j]) / safe[j];
      o[j] = mask[j] != 0.0 ? val : 0.0;
    }
  }
}

/// Row-major GEMV: out[r] = dot(matrix row r, x) for r in [0, rows).
/// `matrix` holds rows contiguously with stride `cols` (= x.size()).
void gemv_row_major(std::span<const double> matrix, std::size_t rows,
                    std::span<const double> x, std::span<double> out);

}  // namespace hmd::ml::kernels
