// Shared hot-path numeric kernels for the ML library. Every classifier's
// inner loop (logistic/SVM/MLP dots, Knn distances, Mahalanobis forms,
// PCA covariance) funnels through these so the memory-access pattern is
// written once and optimized once.
//
// Bit-exactness contract: each kernel accumulates LEFT TO RIGHT in the
// same order the pre-refactor per-classifier loops did (init value first,
// then elements ascending), and nothing here may be compiled with
// -ffast-math. Changing an accumulation order is a behaviour change —
// the determinism regression tests will catch it.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>

namespace hmd::ml::kernels {

/// init + Σ a[i]*b[i], accumulated left to right. The `init` seed makes
/// bias-first affine forms (`z = w[d] + Σ w[f]*x[f]`) exact.
inline double dot(std::span<const double> a, std::span<const double> b,
                  double init = 0.0) {
  double acc = init;
  const std::size_t n = a.size();
  for (std::size_t i = 0; i < n; ++i) acc += a[i] * b[i];
  return acc;
}

/// Affine form with the bias stored LAST in `weights` (the library's
/// weight-vector convention): weights[n] + Σ weights[f]*x[f].
inline double affine_bias_last(std::span<const double> weights,
                               std::span<const double> x) {
  return dot({weights.data(), x.size()}, x, weights[x.size()]);
}

/// y[i] += alpha * x[i].
inline void axpy(double alpha, std::span<const double> x,
                 std::span<double> y) {
  const std::size_t n = x.size();
  for (std::size_t i = 0; i < n; ++i) y[i] += alpha * x[i];
}

/// Σ (a[i]-b[i])², accumulated left to right.
inline double squared_l2(std::span<const double> a,
                         std::span<const double> b) {
  double acc = 0.0;
  const std::size_t n = a.size();
  for (std::size_t i = 0; i < n; ++i) {
    const double d = a[i] - b[i];
    acc += d * d;
  }
  return acc;
}

/// Rows per quantized-screen block (see screen_squared_l2_i16).
inline constexpr std::size_t kScreenBlock = 256;

/// Exact integer squared-L2 screen over one block of quantized candidates.
/// `block` holds kScreenBlock rows in column-major order within the block
/// (block[j * kScreenBlock + b] is dimension j of row b), so the inner loop
/// is a straight-line int16 stream the compiler can vectorize. For every b:
///
///   acc[b] = sum_j (qx[j] - block[j * kScreenBlock + b])^2
///
/// Grid values lie in [-2047, 2047] (12-bit grid), so each difference fits
/// int16 and each per-lane sum stays below INT32_MAX for dims <= 128 — the
/// arithmetic is exact integer math with no rounding; reassociating it
/// across lanes is therefore a pure speed change. Implemented out of line
/// with runtime-dispatched SIMD clones.
void screen_squared_l2_i16(const std::int16_t* block, const std::int16_t* qx,
                           std::size_t dims, std::int32_t* acc);

/// Standardize `x` into `out`: (x-mean)/stddev per feature, 0 where the
/// training stddev was 0 (constant column). Matches Standardizer::transform
/// exactly, without the per-call allocation.
inline void standardize_into(std::span<const double> x,
                             std::span<const double> means,
                             std::span<const double> stddevs,
                             std::span<double> out) {
  const std::size_t n = x.size();
  for (std::size_t i = 0; i < n; ++i) {
    out[i] = stddevs[i] > 0.0 ? (x[i] - means[i]) / stddevs[i] : 0.0;
  }
}

/// Row-major GEMV: out[r] = dot(matrix row r, x) for r in [0, rows).
/// `matrix` holds rows contiguously with stride `cols` (= x.size()).
void gemv_row_major(std::span<const double> matrix, std::size_t rows,
                    std::span<const double> x, std::span<double> out);

}  // namespace hmd::ml::kernels
