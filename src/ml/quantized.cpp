#include "ml/quantized.hpp"

#include <algorithm>
#include <cmath>

#include "ml/kernels.hpp"
#include "ml/logistic.hpp"
#include "ml/mlp.hpp"
#include "ml/svm.hpp"
#include "util/error.hpp"
#include "util/fixed_point.hpp"

namespace hmd::ml {

namespace {

/// Symmetric int8 quantizer with saturation; non-finite inputs clamp by
/// sign (NaN maps to 0) so degenerate rows cannot poison the matmul.
std::int8_t quantize_i8(double v) {
  if (!std::isfinite(v)) {
    if (std::isnan(v)) return 0;
    return v > 0.0 ? std::int8_t{127} : std::int8_t{-127};
  }
  const long long q = std::llround(v);
  return static_cast<std::int8_t>(std::clamp(q, -127LL, 127LL));
}

void softmax_span(std::span<double> logits) {
  const double mx = *std::max_element(logits.begin(), logits.end());
  double total = 0.0;
  for (double& v : logits) {
    v = std::exp(v - mx);
    total += v;
  }
  for (double& v : logits) v /= total;
}

void sigmoid_norm_span(std::span<double> margins) {
  double total = 0.0;
  for (double& v : margins) {
    v = 1.0 / (1.0 + std::exp(-v));
    total += v;
  }
  if (total > 0.0)
    for (double& v : margins) v /= total;
}

const Standardizer* find_standardizer(const Classifier& c) {
  const Classifier& u = c.unwrap();
  if (const auto* p = dynamic_cast<const Logistic*>(&u))
    return &p->standardizer();
  if (const auto* p = dynamic_cast<const LinearSvm*>(&u))
    return &p->standardizer();
  if (const auto* p = dynamic_cast<const Mlp*>(&u)) return &p->standardizer();
  return nullptr;
}

}  // namespace

bool QuantizedModel::int8_supported(const Classifier& base) {
  const Classifier& u = base.unwrap();
  return dynamic_cast<const Logistic*>(&u) != nullptr ||
         dynamic_cast<const LinearSvm*>(&u) != nullptr ||
         dynamic_cast<const Mlp*>(&u) != nullptr;
}

bool QuantizedModel::q16_supported(const Classifier& base) {
  return find_standardizer(base) != nullptr;
}

QuantizedModel::QuantizedModel(std::shared_ptr<const Classifier> base,
                               Mode mode, std::vector<double> feature_absmax)
    : base_(std::move(base)), mode_(mode), absmax_(std::move(feature_absmax)) {
  HMD_REQUIRE(base_ != nullptr, "QuantizedModel: null base model");
  HMD_REQUIRE(base_->num_classes() >= 2,
              "QuantizedModel: base model is not trained");
  if (mode_ == Mode::kQ16Input)
    build_q16();
  else
    build_int8();
}

void QuantizedModel::train(const DatasetView&) {
  HMD_REQUIRE(false, "QuantizedModel: train the base model, then wrap it");
}

std::string QuantizedModel::name() const {
  return (mode_ == Mode::kInt8 ? "int8/" : "q16/") + base_->name();
}

void QuantizedModel::build_q16() {
  if (absmax_.empty()) {
    const Standardizer* std_ = find_standardizer(*base_);
    HMD_REQUIRE(std_ != nullptr,
                "QuantizedModel: q16 mode needs feature_absmax calibration "
                "for schemes without a standardizer");
    const auto& mean = std_->means();
    const auto& sd = std_->stddevs();
    absmax_.resize(mean.size());
    for (std::size_t f = 0; f < mean.size(); ++f)
      absmax_[f] = std::abs(mean[f]) + 6.0 * sd[f];
  }
  q16_scale_.resize(absmax_.size());
  for (std::size_t f = 0; f < absmax_.size(); ++f) {
    absmax_[f] = std::max(absmax_[f], 1e-12);
    // Keep values within +-2^14 so Q16.16 products stay representable —
    // the identical rule hw/evaluate_fixed_point applies.
    q16_scale_[f] = absmax_[f] > 16000.0 ? 16000.0 / absmax_[f] : 1.0;
  }
}

void QuantizedModel::build_int8() {
  const Classifier& u = base_->unwrap();
  HMD_REQUIRE(int8_supported(u),
              "QuantizedModel: int8 mode supports MLR, SVM and MLP only");
  const Standardizer& std_ = *find_standardizer(u);
  const auto& mean = std_.means();
  const auto& sd = std_.stddevs();
  const std::size_t d = mean.size();

  if (absmax_.empty()) {
    absmax_.resize(d);
    for (std::size_t f = 0; f < d; ++f)
      absmax_[f] = std::abs(mean[f]) + 6.0 * sd[f];
  }
  HMD_REQUIRE(absmax_.size() == d,
              "QuantizedModel: feature_absmax width mismatch");
  in_scale_.resize(d);
  for (std::size_t f = 0; f < d; ++f)
    in_scale_[f] = 127.0 / std::max(absmax_[f], 1e-12);

  // Folds standardization (optional) and input scales into the rows, then
  // quantizes each row to symmetric int8 with its own scale.
  const auto fold = [](const std::vector<std::vector<double>>& w,
                       const std::vector<double>& fold_mean,
                       const std::vector<double>& fold_sd,
                       const std::vector<double>& in_scale) {
    const std::size_t out = w.size();
    const std::size_t in = in_scale.size();
    Int8Layer layer;
    layer.in = in;
    layer.out = out;
    layer.w.assign(out * in, 0);
    layer.row_scale.assign(out, 1.0);
    layer.bias.assign(out, 0.0);
    std::vector<double> v(in);
    for (std::size_t c = 0; c < out; ++c) {
      HMD_REQUIRE(w[c].size() == in + 1,
                  "QuantizedModel: weight row width mismatch");
      double b = w[c][in];
      double mx = 0.0;
      for (std::size_t f = 0; f < in; ++f) {
        double wf = w[c][f];
        if (!fold_sd.empty()) {
          if (fold_sd[f] > 0.0) {
            wf = w[c][f] / fold_sd[f];
            b -= w[c][f] * fold_mean[f] / fold_sd[f];
          } else {
            wf = 0.0;  // constant column standardizes to 0
          }
        }
        v[f] = wf / in_scale[f];
        mx = std::max(mx, std::abs(v[f]));
      }
      layer.row_scale[c] = mx > 0.0 ? mx / 127.0 : 1.0;
      for (std::size_t f = 0; f < in; ++f)
        layer.w[c * in + f] = quantize_i8(v[f] / layer.row_scale[c]);
      layer.bias[c] = b;
    }
    return layer;
  };

  layers_.clear();
  if (const auto* lr = dynamic_cast<const Logistic*>(&u)) {
    link_ = Link::kSoftmax;
    layers_.push_back(fold(lr->weights(), mean, sd, in_scale_));
  } else if (const auto* svm = dynamic_cast<const LinearSvm*>(&u)) {
    link_ = Link::kSigmoidNorm;
    layers_.push_back(fold(svm->weights(), mean, sd, in_scale_));
  } else {
    const auto* m = dynamic_cast<const Mlp*>(&u);
    link_ = Link::kMlp;
    layers_.push_back(fold(m->w1(), mean, sd, in_scale_));
    // Hidden activations are sigmoids in (0, 1); they requantize with the
    // fixed scale 127, folded into the second layer here.
    const std::vector<double> hidden_scale(m->hidden_units(), 127.0);
    layers_.push_back(fold(m->w2(), {}, {}, hidden_scale));
  }
}

void QuantizedModel::q16_rows(std::span<const double> flat, std::size_t rows,
                              std::vector<double>& buf) const {
  const std::size_t d = q16_scale_.size();
  buf.resize(rows * d);
  for (std::size_t r = 0; r < rows; ++r)
    for (std::size_t f = 0; f < d; ++f) {
      const double x = flat[r * d + f];
      buf[r * d + f] = quantize_q16(x * q16_scale_[f]) / q16_scale_[f];
    }
}

void QuantizedModel::int8_batch(const double* flat, std::size_t rows,
                                double* out) const {
  const std::size_t d = in_scale_.size();
  const Int8Layer& l1 = layers_.front();

  std::vector<std::int8_t> q(rows * d);
  for (std::size_t r = 0; r < rows; ++r)
    for (std::size_t f = 0; f < d; ++f)
      q[r * d + f] = quantize_i8(flat[r * d + f] * in_scale_[f]);

  std::vector<std::int32_t> acc(rows * l1.out);
  kernels::gemm_i8_i32(q.data(), rows, d, l1.w.data(), l1.out, acc.data());

  if (layers_.size() == 1) {
    for (std::size_t r = 0; r < rows; ++r) {
      const std::span<double> row{out + r * l1.out, l1.out};
      for (std::size_t c = 0; c < l1.out; ++c)
        row[c] = l1.row_scale[c] * static_cast<double>(acc[r * l1.out + c]) +
                 l1.bias[c];
      if (link_ == Link::kSoftmax)
        softmax_span(row);
      else
        sigmoid_norm_span(row);
    }
    return;
  }

  const Int8Layer& l2 = layers_[1];
  std::vector<std::int8_t> qh(rows * l1.out);
  for (std::size_t r = 0; r < rows; ++r)
    for (std::size_t h = 0; h < l1.out; ++h) {
      const double z =
          l1.row_scale[h] * static_cast<double>(acc[r * l1.out + h]) +
          l1.bias[h];
      const double a = 1.0 / (1.0 + std::exp(-z));
      qh[r * l1.out + h] = quantize_i8(a * 127.0);
    }
  std::vector<std::int32_t> acc2(rows * l2.out);
  kernels::gemm_i8_i32(qh.data(), rows, l1.out, l2.w.data(), l2.out,
                       acc2.data());
  for (std::size_t r = 0; r < rows; ++r) {
    const std::span<double> row{out + r * l2.out, l2.out};
    for (std::size_t c = 0; c < l2.out; ++c)
      row[c] = l2.row_scale[c] * static_cast<double>(acc2[r * l2.out + c]) +
               l2.bias[c];
    softmax_span(row);
  }
}

std::size_t QuantizedModel::predict(std::span<const double> features) const {
  if (mode_ == Mode::kQ16Input) {
    HMD_REQUIRE(features.size() == q16_scale_.size(),
                "QuantizedModel: feature width mismatch");
    std::vector<double> buf;
    q16_rows(features, 1, buf);
    return base_->predict(buf);
  }
  const auto dist = distribution(features);
  return static_cast<std::size_t>(
      std::max_element(dist.begin(), dist.end()) - dist.begin());
}

std::vector<double> QuantizedModel::distribution(
    std::span<const double> features) const {
  if (mode_ == Mode::kQ16Input) {
    HMD_REQUIRE(features.size() == q16_scale_.size(),
                "QuantizedModel: feature width mismatch");
    std::vector<double> buf;
    q16_rows(features, 1, buf);
    return base_->distribution(buf);
  }
  HMD_REQUIRE(features.size() == in_scale_.size(),
              "QuantizedModel: feature width mismatch");
  std::vector<double> out(num_classes());
  int8_batch(features.data(), 1, out.data());
  return out;
}

void QuantizedModel::distribution_batch(std::span<const double> flat,
                                        std::size_t window_size,
                                        std::span<double> out) const {
  const std::size_t rows = require_batch(flat, window_size, out);
  const std::size_t k = num_classes();
  constexpr std::size_t kChunkRows = 1024;
  if (mode_ == Mode::kQ16Input) {
    HMD_REQUIRE(window_size == q16_scale_.size(),
                "QuantizedModel: feature width mismatch");
    std::vector<double> buf;
    for (std::size_t base = 0; base < rows; base += kChunkRows) {
      const std::size_t lim = std::min(kChunkRows, rows - base);
      q16_rows(flat.subspan(base * window_size, lim * window_size), lim, buf);
      base_->distribution_batch(buf, window_size,
                                out.subspan(base * k, lim * k));
    }
    return;
  }
  HMD_REQUIRE(window_size == in_scale_.size(),
              "QuantizedModel: feature width mismatch");
  for (std::size_t base = 0; base < rows; base += kChunkRows) {
    const std::size_t lim = std::min(kChunkRows, rows - base);
    int8_batch(flat.data() + base * window_size, lim,
               out.data() + base * k);
  }
}

}  // namespace hmd::ml
