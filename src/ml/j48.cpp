#include "ml/j48.hpp"

#include <algorithm>
#include <cmath>

#include "ml/decision_stump.hpp"  // entropy_of_counts
#include "util/error.hpp"

namespace hmd::ml {

namespace {

/// Inverse standard normal CDF (Acklam's rational approximation); enough
/// accuracy for the pruning confidence bound.
double normal_quantile(double p) {
  HMD_REQUIRE(p > 0.0 && p < 1.0, "normal_quantile: p outside (0,1)");
  static const double a[] = {-3.969683028665376e+01, 2.209460984245205e+02,
                             -2.759285104469687e+02, 1.383577518672690e+02,
                             -3.066479806614716e+01, 2.506628277459239e+00};
  static const double b[] = {-5.447609879822406e+01, 1.615858368580409e+02,
                             -1.556989798598866e+02, 6.680131188771972e+01,
                             -1.328068155288572e+01};
  static const double c[] = {-7.784894002430293e-03, -3.223964580411365e-01,
                             -2.400758277161838e+00, -2.549732539343734e+00,
                             4.374664141464968e+00,  2.938163982698783e+00};
  static const double d[] = {7.784695709041462e-03, 3.224671290700398e-01,
                             2.445134137142996e+00, 3.754408661907416e+00};
  const double plow = 0.02425;
  if (p < plow) {
    const double q = std::sqrt(-2.0 * std::log(p));
    return (((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q +
            c[5]) /
           ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0);
  }
  if (p > 1.0 - plow) {
    const double q = std::sqrt(-2.0 * std::log(1.0 - p));
    return -(((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q +
             c[5]) /
           ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0);
  }
  const double q = p - 0.5;
  const double r = q * q;
  return (((((a[0] * r + a[1]) * r + a[2]) * r + a[3]) * r + a[4]) * r + a[5]) *
         q /
         (((((b[0] * r + b[1]) * r + b[2]) * r + b[3]) * r + b[4]) * r + 1.0);
}

struct Split {
  std::size_t feature = 0;
  double threshold = 0.0;
  double gain_ratio = -1.0;
};

}  // namespace

double pessimistic_error_count(std::size_t n, std::size_t errors, double cf) {
  if (n == 0) return 0.0;
  const double z = -normal_quantile(cf);  // upper-tail quantile
  const double nn = static_cast<double>(n);
  const double f = static_cast<double>(errors) / nn;
  const double z2 = z * z;
  const double upper =
      (f + z2 / (2.0 * nn) +
       z * std::sqrt(std::max(0.0, f / nn - f * f / nn + z2 / (4.0 * nn * nn)))) /
      (1.0 + z2 / nn);
  return upper * nn;
}

void J48::train(const Dataset& data) {
  require_trainable(data);
  num_classes_ = data.num_classes();
  std::vector<std::size_t> rows(data.num_instances());
  for (std::size_t i = 0; i < rows.size(); ++i) rows[i] = i;
  root_ = build(data, rows, 0);
  if (params_.prune) prune_subtree(*root_);
}

std::unique_ptr<J48::Node> J48::build(const Dataset& data,
                                      std::vector<std::size_t>& rows,
                                      std::size_t depth) {
  auto node = std::make_unique<Node>();
  node->n = rows.size();

  std::vector<std::size_t> counts(num_classes_, 0);
  for (std::size_t r : rows) ++counts[data.class_of(r)];
  node->cls = static_cast<std::size_t>(
      std::max_element(counts.begin(), counts.end()) - counts.begin());
  node->errors = rows.size() - counts[node->cls];

  const bool pure = counts[node->cls] == rows.size();
  if (pure || rows.size() < 2 * params_.min_leaf ||
      depth >= params_.max_depth)
    return node;

  const double base_entropy = entropy_of_counts(counts);
  const double n_total = static_cast<double>(rows.size());

  Split best;
  std::vector<std::pair<double, std::size_t>> column(rows.size());
  for (std::size_t f = 0; f < data.num_features(); ++f) {
    for (std::size_t i = 0; i < rows.size(); ++i)
      column[i] = {data.features_of(rows[i])[f], data.class_of(rows[i])};
    std::sort(column.begin(), column.end());

    std::vector<std::size_t> left(num_classes_, 0);
    std::vector<std::size_t> right = counts;
    for (std::size_t i = 0; i + 1 < column.size(); ++i) {
      ++left[column[i].second];
      --right[column[i].second];
      if (column[i].first == column[i + 1].first) continue;
      const std::size_t nl = i + 1;
      const std::size_t nr = column.size() - nl;
      if (nl < params_.min_leaf || nr < params_.min_leaf) continue;
      const double pl = static_cast<double>(nl) / n_total;
      const double pr = static_cast<double>(nr) / n_total;
      const double gain = base_entropy - pl * entropy_of_counts(left) -
                          pr * entropy_of_counts(right);
      const double split_info = -pl * std::log2(pl) - pr * std::log2(pr);
      if (split_info <= 1e-9) continue;
      const double ratio = gain / split_info;
      if (ratio > best.gain_ratio && gain > 1e-9) {
        best = {.feature = f,
                .threshold = 0.5 * (column[i].first + column[i + 1].first),
                .gain_ratio = ratio};
      }
    }
  }

  if (best.gain_ratio <= 0.0) return node;  // no useful split

  std::vector<std::size_t> left_rows;
  std::vector<std::size_t> right_rows;
  for (std::size_t r : rows) {
    if (data.features_of(r)[best.feature] <= best.threshold)
      left_rows.push_back(r);
    else
      right_rows.push_back(r);
  }
  HMD_ASSERT(!left_rows.empty() && !right_rows.empty());

  node->feature = best.feature;
  node->threshold = best.threshold;
  rows.clear();
  rows.shrink_to_fit();  // free before recursing
  node->left = build(data, left_rows, depth + 1);
  node->right = build(data, right_rows, depth + 1);
  return node;
}

double J48::prune_subtree(Node& node) {
  if (node.is_leaf())
    return pessimistic_error_count(node.n, node.errors, params_.confidence);

  const double subtree_est =
      prune_subtree(*node.left) + prune_subtree(*node.right);
  const double leaf_est =
      pessimistic_error_count(node.n, node.errors, params_.confidence);
  if (leaf_est <= subtree_est + 0.1) {
    node.left.reset();
    node.right.reset();
    return leaf_est;
  }
  return subtree_est;
}

std::size_t J48::predict(std::span<const double> features) const {
  HMD_REQUIRE(root_ != nullptr, "J48: predict before train");
  const Node* node = root_.get();
  while (!node->is_leaf()) {
    HMD_REQUIRE(node->feature < features.size(),
                "J48: feature vector too short");
    node = features[node->feature] <= node->threshold ? node->left.get()
                                                      : node->right.get();
  }
  return node->cls;
}

const J48::Node& J48::root() const {
  HMD_REQUIRE(root_ != nullptr, "J48: model not trained");
  return *root_;
}

namespace {
std::size_t count_leaves(const J48::Node& n) {
  if (n.is_leaf()) return 1;
  return count_leaves(*n.left) + count_leaves(*n.right);
}
std::size_t count_nodes(const J48::Node& n) {
  if (n.is_leaf()) return 1;
  return 1 + count_nodes(*n.left) + count_nodes(*n.right);
}
std::size_t tree_depth(const J48::Node& n) {
  if (n.is_leaf()) return 0;
  return 1 + std::max(tree_depth(*n.left), tree_depth(*n.right));
}
}  // namespace

std::size_t J48::num_leaves() const { return count_leaves(root()); }
std::size_t J48::num_nodes() const { return count_nodes(root()); }
std::size_t J48::depth() const { return tree_depth(root()); }

}  // namespace hmd::ml
