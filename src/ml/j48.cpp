#include "ml/j48.hpp"

#include <algorithm>
#include <bit>
#include <cmath>
#include <cstdint>

#include "ml/decision_stump.hpp"  // entropy_of_counts
#include "util/error.hpp"

namespace hmd::ml {

namespace {

/// Inverse standard normal CDF (Acklam's rational approximation); enough
/// accuracy for the pruning confidence bound.
double normal_quantile(double p) {
  HMD_REQUIRE(p > 0.0 && p < 1.0, "normal_quantile: p outside (0,1)");
  static const double a[] = {-3.969683028665376e+01, 2.209460984245205e+02,
                             -2.759285104469687e+02, 1.383577518672690e+02,
                             -3.066479806614716e+01, 2.506628277459239e+00};
  static const double b[] = {-5.447609879822406e+01, 1.615858368580409e+02,
                             -1.556989798598866e+02, 6.680131188771972e+01,
                             -1.328068155288572e+01};
  static const double c[] = {-7.784894002430293e-03, -3.223964580411365e-01,
                             -2.400758277161838e+00, -2.549732539343734e+00,
                             4.374664141464968e+00,  2.938163982698783e+00};
  static const double d[] = {7.784695709041462e-03, 3.224671290700398e-01,
                             2.445134137142996e+00, 3.754408661907416e+00};
  const double plow = 0.02425;
  if (p < plow) {
    const double q = std::sqrt(-2.0 * std::log(p));
    return (((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q +
            c[5]) /
           ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0);
  }
  if (p > 1.0 - plow) {
    const double q = std::sqrt(-2.0 * std::log(1.0 - p));
    return -(((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q +
             c[5]) /
           ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0);
  }
  const double q = p - 0.5;
  const double r = q * q;
  return (((((a[0] * r + a[1]) * r + a[2]) * r + a[3]) * r + a[4]) * r + a[5]) *
         q /
         (((((b[0] * r + b[1]) * r + b[2]) * r + b[3]) * r + b[4]) * r + 1.0);
}

struct Split {
  std::size_t feature = 0;
  double threshold = 0.0;
  double gain_ratio = -1.0;
};

/// Order-preserving bit transform: key_of(a) < key_of(b) iff a < b for all
/// non-NaN doubles (with -0.0 ordered before +0.0 — numerically equal, so
/// every split statistic and threshold is unaffected by their relative
/// order). value_of inverts it bit-exactly.
std::uint64_t key_of(double v) {
  const std::uint64_t bits = std::bit_cast<std::uint64_t>(v);
  return (bits & 0x8000000000000000ull) ? ~bits
                                        : bits | 0x8000000000000000ull;
}

double value_of(std::uint64_t key) {
  return std::bit_cast<double>(
      (key & 0x8000000000000000ull) ? key ^ 0x8000000000000000ull : ~key);
}

struct SortItem {
  std::uint64_t key;
  std::uint32_t idx;
};

/// Stable LSD radix sort by key, 16-bit digits. Stability makes ties come
/// out in ascending-index order, so the permutation is identical to
/// std::sort with the (value, index) comparator the presort used before.
/// Digits whose histogram is a single bucket are skipped — for clustered
/// feature values that usually drops a pass or two.
void radix_sort_items(std::vector<SortItem>& a, std::vector<SortItem>& b,
                      std::vector<std::uint32_t>& hist) {
  const std::size_t n = a.size();
  b.resize(n);
  hist.assign(4 * 65536, 0);
  for (const SortItem& it : a) {
    ++hist[it.key & 0xffff];
    ++hist[65536 + ((it.key >> 16) & 0xffff)];
    ++hist[2 * 65536 + ((it.key >> 32) & 0xffff)];
    ++hist[3 * 65536 + ((it.key >> 48) & 0xffff)];
  }
  for (int pass = 0; pass < 4; ++pass) {
    std::uint32_t* h = hist.data() + pass * 65536;
    const int shift = pass * 16;
    if (h[(a[0].key >> shift) & 0xffff] == n) continue;  // one bucket
    std::uint32_t sum = 0;
    for (std::size_t v = 0; v < 65536; ++v) {
      const std::uint32_t c = h[v];
      h[v] = sum;
      sum += c;
    }
    for (const SortItem& it : a) b[h[(it.key >> shift) & 0xffff]++] = it;
    a.swap(b);
  }
}

/// pessimistic_error_count with the z-value already resolved — pruning
/// computes z once per tree instead of re-running the rational
/// approximation at every node.
double pessimistic_error_count_z(std::size_t n, std::size_t errors,
                                 double z) {
  if (n == 0) return 0.0;
  const double nn = static_cast<double>(n);
  const double f = static_cast<double>(errors) / nn;
  const double z2 = z * z;
  const double upper =
      (f + z2 / (2.0 * nn) +
       z * std::sqrt(std::max(0.0, f / nn - f * f / nn + z2 / (4.0 * nn * nn)))) /
      (1.0 + z2 / nn);
  return upper * nn;
}

/// Grows the tree from presorted columns. Row ids live in `order` — one
/// value-sorted permutation per feature, partitioned in place as the tree
/// descends so a node owns the contiguous range [lo, hi) of every
/// per-feature array and never re-sorts. Split statistics are identical to
/// sorting a (value, class) vector per node per feature (tie order within
/// equal values cannot change the counts at distinct-value boundaries, and
/// all ties fall on one side of any threshold).
struct TreeBuilder {
  const J48::Params& params;
  std::size_t num_classes;
  std::size_t num_features;
  std::size_t n;
  std::span<const double> cols;             ///< column-major, cols[f*n + r]
  std::vector<std::uint32_t> classes;       ///< per row id
  std::vector<std::vector<std::uint32_t>> order;  ///< per feature: row ids
  std::vector<std::vector<double>> vals;    ///< per feature: value at pos
  std::vector<std::vector<std::uint16_t>> cls;  ///< per feature: class at pos
  std::vector<std::uint8_t> goes_left;      ///< per row id, current split
  std::vector<std::uint32_t> tmp_id;        ///< partition scratch
  std::vector<double> tmp_val;
  std::vector<std::uint16_t> tmp_cls;
  // Memo of the entropy term p*log2(p) with p = c/side_total, keyed by the
  // integer count c. The stamp marks which boundary (epoch) the cached
  // value belongs to; side totals are shared by all features at one
  // boundary, so one feature's log2 work is reused by the other fifteen.
  // Term and stamp sit in one struct so a lookup costs one cache line, not
  // two. The cached doubles are exactly what entropy_of_counts computes.
  struct EntropyTerm {
    double term;
    std::uint32_t stamp;
  };
  std::vector<EntropyTerm> memo_l, memo_r;
  std::uint32_t epoch = 0;
  std::vector<std::uint32_t> left_counts;   ///< flat [feature][class]

  const double* column(std::size_t f) const { return cols.data() + f * n; }

  /// Entropy of `counts` (k entries summing to an integer whose double
  /// value is `total`), with per-term memoization. Term values and the
  /// accumulation order match entropy_of_counts exactly.
  double side_entropy(const std::uint32_t* counts, double total,
                      std::vector<EntropyTerm>& memo) const {
    double h = 0.0;
    for (std::size_t k = 0; k < num_classes; ++k) {
      const std::uint32_t c = counts[k];
      if (c == 0) continue;
      EntropyTerm& e = memo[c];
      if (e.stamp != epoch) {
        const double p = static_cast<double>(c) / total;
        e.term = p * std::log2(p);
        e.stamp = epoch;
      }
      h -= e.term;
    }
    return h;
  }

  std::unique_ptr<J48::Node> build(std::size_t lo, std::size_t hi,
                                   std::size_t depth) {
    auto node = std::make_unique<J48::Node>();
    const std::size_t n_node = hi - lo;
    node->n = n_node;

    std::vector<std::size_t> counts(num_classes, 0);
    for (std::size_t i = lo; i < hi; ++i) ++counts[cls[0][i]];
    node->cls = static_cast<std::size_t>(
        std::max_element(counts.begin(), counts.end()) - counts.begin());
    node->errors = n_node - counts[node->cls];

    const bool pure = counts[node->cls] == n_node;
    if (pure || n_node < 2 * params.min_leaf || depth >= params.max_depth)
      return node;

    const double base_entropy = entropy_of_counts(counts);
    const double n_total = static_cast<double>(n_node);

    // Boundary-major scan: advance every feature's left counts one row per
    // step, then evaluate each feature's boundary at this row count. The
    // candidate set and all per-candidate doubles are identical to the
    // feature-major scan; only the visit order differs, and ties on the
    // computed gain ratio are resolved below by (feature, boundary)
    // lexicographic order — the same winner the feature-major first-wins
    // rule picks.
    Split best;
    std::size_t best_i = 0;
    std::fill(left_counts.begin(), left_counts.end(), 0);
    std::vector<std::uint32_t> right(num_classes);
    for (std::size_t i = lo; i + 1 < hi; ++i) {
      for (std::size_t f = 0; f < num_features; ++f)
        ++left_counts[f * num_classes + cls[f][i]];
      const std::size_t nl = i + 1 - lo;
      const std::size_t nr = n_node - nl;
      if (nl < params.min_leaf || nr < params.min_leaf) continue;
      const double pl = static_cast<double>(nl) / n_total;
      const double pr = static_cast<double>(nr) / n_total;
      const double nl_d = static_cast<double>(nl);
      const double nr_d = static_cast<double>(nr);
      double split_info = 0.0;
      bool split_info_ready = false;
      ++epoch;
      for (std::size_t f = 0; f < num_features; ++f) {
        if (vals[f][i] == vals[f][i + 1]) continue;
        const std::uint32_t* lc = left_counts.data() + f * num_classes;
        for (std::size_t k = 0; k < num_classes; ++k)
          right[k] = static_cast<std::uint32_t>(counts[k]) - lc[k];
        const double hl = side_entropy(lc, nl_d, memo_l);
        const double hr = side_entropy(right.data(), nr_d, memo_r);
        const double gain = base_entropy - pl * hl - pr * hr;
        if (!(gain > 1e-9)) continue;
        if (!split_info_ready) {
          // Depends only on (nl, nr): one log2 pair per boundary instead
          // of one per (feature, boundary).
          split_info = -pl * std::log2(pl) - pr * std::log2(pr);
          split_info_ready = true;
        }
        if (split_info <= 1e-9) continue;
        const double ratio = gain / split_info;
        if (ratio > best.gain_ratio ||
            (ratio == best.gain_ratio &&
             (f < best.feature || (f == best.feature && i < best_i)))) {
          best = {.feature = f,
                  .threshold = 0.5 * (vals[f][i] + vals[f][i + 1]),
                  .gain_ratio = ratio};
          best_i = i;
        }
      }
    }

    if (best.gain_ratio <= 0.0) return node;  // no useful split

    // Stable-partition every per-feature range by split side: each side
    // stays value-sorted, so children never re-sort.
    std::size_t n_left = 0;
    for (std::size_t i = lo; i < hi; ++i) {
      const std::uint32_t r = order[best.feature][i];
      const bool l = vals[best.feature][i] <= best.threshold;
      goes_left[r] = l ? 1 : 0;
      n_left += l ? 1 : 0;
    }
    HMD_ASSERT(n_left > 0 && n_left < n_node);
    const auto span_lo = static_cast<std::ptrdiff_t>(lo);
    const auto span_hi = static_cast<std::ptrdiff_t>(hi);
    for (std::size_t f = 0; f < num_features; ++f) {
      std::vector<std::uint32_t>& ord = order[f];
      std::vector<double>& val = vals[f];
      std::vector<std::uint16_t>& cl = cls[f];
      tmp_id.assign(ord.begin() + span_lo, ord.begin() + span_hi);
      tmp_val.assign(val.begin() + span_lo, val.begin() + span_hi);
      tmp_cls.assign(cl.begin() + span_lo, cl.begin() + span_hi);
      std::size_t wl = lo;
      std::size_t wr = lo + n_left;
      for (std::size_t j = 0; j < n_node; ++j) {
        const std::uint32_t r = tmp_id[j];
        const std::size_t dst = (goes_left[r] != 0) ? wl++ : wr++;
        ord[dst] = r;
        val[dst] = tmp_val[j];
        cl[dst] = tmp_cls[j];
      }
    }

    node->feature = best.feature;
    node->threshold = best.threshold;
    node->left = build(lo, lo + n_left, depth + 1);
    node->right = build(lo + n_left, hi, depth + 1);
    return node;
  }
};

double prune_subtree(J48::Node& node, double z) {
  if (node.is_leaf()) return pessimistic_error_count_z(node.n, node.errors, z);

  const double subtree_est =
      prune_subtree(*node.left, z) + prune_subtree(*node.right, z);
  const double leaf_est = pessimistic_error_count_z(node.n, node.errors, z);
  if (leaf_est <= subtree_est + 0.1) {
    node.left.reset();
    node.right.reset();
    return leaf_est;
  }
  return subtree_est;
}

}  // namespace

double pessimistic_error_count(std::size_t n, std::size_t errors, double cf) {
  if (n == 0) return 0.0;
  return pessimistic_error_count_z(n, errors, -normal_quantile(cf));
}

void J48::train(const DatasetView& data) {
  require_trainable(data);
  num_classes_ = data.num_classes();
  HMD_REQUIRE(num_classes_ <= 65535, "J48: too many classes");
  const std::size_t n = data.num_instances();

  TreeBuilder builder{.params = params_,
                      .num_classes = num_classes_,
                      .num_features = data.num_features(),
                      .n = n};
  std::vector<double> col_scratch;
  builder.cols = data.feature_columns(col_scratch);
  builder.classes.resize(n);
  for (std::size_t i = 0; i < n; ++i)
    builder.classes[i] = static_cast<std::uint32_t>(data.class_of(i));
  builder.goes_left.resize(n);
  builder.tmp_id.reserve(n);
  builder.tmp_val.reserve(n);
  builder.tmp_cls.reserve(n);
  builder.memo_l.assign(n + 1, {0.0, 0});
  builder.memo_r.assign(n + 1, {0.0, 0});
  builder.left_counts.resize(builder.num_features * num_classes_);

  // Presort every column once at the root; build() keeps each child's
  // ranges sorted by stable partitioning. Values and classes ride along in
  // sorted position order so the boundary scan reads contiguous streams
  // instead of gathering through row ids.
  builder.order.resize(builder.num_features);
  builder.vals.resize(builder.num_features);
  builder.cls.resize(builder.num_features);
  std::vector<SortItem> items(n);
  std::vector<SortItem> scratch;
  std::vector<std::uint32_t> hist;
  for (std::size_t f = 0; f < builder.num_features; ++f) {
    const double* col = builder.column(f);
    for (std::size_t i = 0; i < n; ++i)
      items[i] = {key_of(col[i]), static_cast<std::uint32_t>(i)};
    radix_sort_items(items, scratch, hist);
    std::vector<std::uint32_t>& ord = builder.order[f];
    ord.resize(n);
    builder.vals[f].resize(n);
    builder.cls[f].resize(n);
    for (std::size_t i = 0; i < n; ++i) {
      ord[i] = items[i].idx;
      builder.vals[f][i] = value_of(items[i].key);
      builder.cls[f][i] =
          static_cast<std::uint16_t>(builder.classes[items[i].idx]);
    }
  }

  root_ = builder.build(0, n, 0);
  if (params_.prune) {
    // z depends only on the confidence parameter: resolve it once per
    // train instead of per pessimistic_error_count call.
    const double z = -normal_quantile(params_.confidence);
    prune_subtree(*root_, z);
  }
}

std::size_t J48::predict(std::span<const double> features) const {
  HMD_REQUIRE(root_ != nullptr, "J48: predict before train");
  const Node* node = root_.get();
  while (!node->is_leaf()) {
    HMD_REQUIRE(node->feature < features.size(),
                "J48: feature vector too short");
    node = features[node->feature] <= node->threshold ? node->left.get()
                                                      : node->right.get();
  }
  return node->cls;
}

const J48::Node& J48::root() const {
  HMD_REQUIRE(root_ != nullptr, "J48: model not trained");
  return *root_;
}

namespace {
std::size_t count_leaves(const J48::Node& n) {
  if (n.is_leaf()) return 1;
  return count_leaves(*n.left) + count_leaves(*n.right);
}
std::size_t count_nodes(const J48::Node& n) {
  if (n.is_leaf()) return 1;
  return 1 + count_nodes(*n.left) + count_nodes(*n.right);
}
std::size_t tree_depth(const J48::Node& n) {
  if (n.is_leaf()) return 0;
  return 1 + std::max(tree_depth(*n.left), tree_depth(*n.right));
}
}  // namespace

std::size_t J48::num_leaves() const { return count_leaves(root()); }
std::size_t J48::num_nodes() const { return count_nodes(root()); }
std::size_t J48::depth() const { return tree_depth(root()); }

}  // namespace hmd::ml
