#include "ml/pca.hpp"

#include <algorithm>
#include <cmath>

#include "ml/kernels.hpp"
#include "util/error.hpp"

namespace hmd::ml {

PrincipalComponents::PrincipalComponents(double variance_cutoff)
    : variance_cutoff_(variance_cutoff) {
  HMD_REQUIRE(variance_cutoff_ > 0.0 && variance_cutoff_ <= 1.0,
              "variance_cutoff must be in (0, 1]");
}

void PrincipalComponents::fit(const DatasetView& data) {
  HMD_REQUIRE(data.num_instances() >= 2, "PCA: need at least two instances");
  const std::size_t d = data.num_features();
  standardizer_.fit(data);
  feature_names_.clear();
  for (std::size_t f = 0; f < d; ++f)
    feature_names_.push_back(data.attribute(f).name());

  // Standardized data matrix → covariance == correlation matrix.
  Matrix x(data.num_instances(), d);
  for (std::size_t i = 0; i < data.num_instances(); ++i) {
    kernels::standardize_into(data.features_of(i), standardizer_.means(),
                              standardizer_.stddevs(), x.mutable_row(i));
  }
  const Matrix corr = covariance_matrix(x);

  EigenDecomposition eig = jacobi_eigen(corr);
  eigenvalues_ = std::move(eig.eigenvalues);
  eigenvectors_ = std::move(eig.eigenvectors);
  // Numerical floor: correlation eigenvalues are non-negative in theory.
  for (double& v : eigenvalues_) v = std::max(v, 0.0);

  total_variance_ = 0.0;
  for (double v : eigenvalues_) total_variance_ += v;
  HMD_REQUIRE(total_variance_ > 0.0, "PCA: degenerate (all-constant) data");

  double cum = 0.0;
  retained_ = eigenvalues_.size();
  for (std::size_t j = 0; j < eigenvalues_.size(); ++j) {
    cum += eigenvalues_[j] / total_variance_;
    if (cum >= variance_cutoff_) {
      retained_ = j + 1;
      break;
    }
  }
}

double PrincipalComponents::explained_variance_ratio(std::size_t j) const {
  HMD_REQUIRE(fitted(), "PCA: not fitted");
  HMD_REQUIRE(j < eigenvalues_.size(), "PCA: component out of range");
  return eigenvalues_[j] / total_variance_;
}

double PrincipalComponents::loading(std::size_t feature,
                                    std::size_t component) const {
  HMD_REQUIRE(fitted(), "PCA: not fitted");
  return eigenvectors_(feature, component);
}

std::vector<double> PrincipalComponents::transform(
    std::span<const double> features) const {
  HMD_REQUIRE(fitted(), "PCA: not fitted");
  const std::vector<double> z = standardizer_.transform(features);
  std::vector<double> out(retained_, 0.0);
  for (std::size_t j = 0; j < retained_; ++j) {
    double s = 0.0;
    for (std::size_t f = 0; f < z.size(); ++f)
      s += eigenvectors_(f, j) * z[f];
    out[j] = s;
  }
  return out;
}

std::pair<double, double> PrincipalComponents::project2d(
    std::span<const double> features) const {
  HMD_REQUIRE(fitted(), "PCA: not fitted");
  HMD_REQUIRE(eigenvalues_.size() >= 2, "PCA: fewer than two components");
  const std::vector<double> z = standardizer_.transform(features);
  double p0 = 0.0, p1 = 0.0;
  for (std::size_t f = 0; f < z.size(); ++f) {
    p0 += eigenvectors_(f, 0) * z[f];
    p1 += eigenvectors_(f, 1) * z[f];
  }
  return {p0, p1};
}

std::vector<RankedFeature> PrincipalComponents::ranked_features() const {
  HMD_REQUIRE(fitted(), "PCA: not fitted");
  std::vector<RankedFeature> ranked;
  const std::size_t d = eigenvalues_.size();
  ranked.reserve(d);
  for (std::size_t f = 0; f < d; ++f) {
    double score = 0.0;
    for (std::size_t j = 0; j < retained_; ++j)
      score += explained_variance_ratio(j) * std::abs(eigenvectors_(f, j));
    ranked.push_back({.index = f, .name = feature_names_[f], .score = score});
  }
  std::stable_sort(ranked.begin(), ranked.end(),
                   [](const RankedFeature& a, const RankedFeature& b) {
                     return a.score > b.score;
                   });
  return ranked;
}

std::vector<RankedFeature> top_pca_features(const DatasetView& data,
                                            std::size_t k,
                                            double variance_cutoff) {
  PrincipalComponents pca(variance_cutoff);
  pca.fit(data);
  std::vector<RankedFeature> ranked = pca.ranked_features();
  if (ranked.size() > k) ranked.resize(k);
  return ranked;
}

}  // namespace hmd::ml
