// Small string utilities shared by the CSV/ARFF readers and report writers.
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace hmd {

/// Split on a single-character delimiter; keeps empty fields.
std::vector<std::string> split(std::string_view s, char delim);

/// Strip ASCII whitespace from both ends.
std::string_view trim(std::string_view s);

/// Join with a separator.
std::string join(const std::vector<std::string>& parts, std::string_view sep);

/// ASCII lowercase copy.
std::string to_lower(std::string_view s);

/// True if `s` starts with `prefix` (case-insensitive ASCII).
bool istarts_with(std::string_view s, std::string_view prefix);

/// Parse a double, throwing hmd::ParseError with context on failure.
double parse_double(std::string_view s);

/// Parse a non-negative integer, throwing hmd::ParseError on failure.
long long parse_int(std::string_view s);

/// printf-style formatting into a std::string.
std::string format(const char* fmt, ...) __attribute__((format(printf, 1, 2)));

/// Escape for embedding inside a JSON string literal (quotes, backslashes,
/// control characters; input is treated as opaque bytes).
std::string json_escape(std::string_view s);

}  // namespace hmd
