// Process-wide metrics registry — the measurement substrate for the
// parallel experiment engine and the deployed detector.
//
// Three instrument kinds, all safe to update concurrently from ThreadPool
// workers (every hot-path update is a plain atomic operation; the registry
// mutex only guards name lookup, which callers do once and cache):
//
//  * Counter   — monotonically increasing event count;
//  * Gauge     — last-written value (utilization, sizes);
//  * Histogram — fixed upper-bound buckets plus count/sum/min/max, for
//                latency distributions.
//
// Instruments live as long as the registry that created them, so cached
// references never dangle. The process-wide registry is `metrics()`;
// tests can construct private MetricsRegistry instances.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace hmd {

/// Monotonically increasing event count.
class Counter {
 public:
  void add(std::uint64_t n = 1) noexcept {
    value_.fetch_add(n, std::memory_order_relaxed);
  }
  std::uint64_t value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }
  void reset() noexcept { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> value_{0};
};

/// Last-written value.
class Gauge {
 public:
  void set(double v) noexcept { value_.store(v, std::memory_order_relaxed); }
  void add(double v) noexcept {
    value_.fetch_add(v, std::memory_order_relaxed);
  }
  double value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }
  void reset() noexcept { set(0.0); }

 private:
  std::atomic<double> value_{0.0};
};

/// Fixed-bucket distribution: bucket i counts values <= upper_bounds[i]
/// (first matching bound wins); one implicit overflow bucket catches the
/// rest. Also tracks count/sum/min/max exactly.
class Histogram {
 public:
  /// `upper_bounds` must be non-empty and strictly increasing.
  explicit Histogram(std::vector<double> upper_bounds);

  Histogram(const Histogram&) = delete;
  Histogram& operator=(const Histogram&) = delete;

  void record(double value) noexcept;

  std::uint64_t count() const noexcept {
    return count_.load(std::memory_order_relaxed);
  }
  double sum() const noexcept { return sum_.load(std::memory_order_relaxed); }
  double mean() const noexcept;
  /// 0 when empty.
  double min() const noexcept;
  double max() const noexcept;

  /// Including the overflow bucket (== upper_bounds().size() + 1).
  std::size_t num_buckets() const noexcept { return buckets_.size(); }
  std::uint64_t bucket_count(std::size_t i) const;
  /// The recorded bounds (the overflow bucket has no finite bound).
  const std::vector<double>& upper_bounds() const { return bounds_; }

  /// Approximate quantile (q in [0, 1]) from the bucket histogram: the
  /// upper bound of the bucket containing the rank; the overflow bucket
  /// reports the observed max() so the value stays finite. 0 when empty.
  double quantile(double q) const;

  void reset() noexcept;

 private:
  std::vector<double> bounds_;
  std::vector<std::atomic<std::uint64_t>> buckets_;  ///< bounds + overflow
  std::atomic<std::uint64_t> count_{0};
  std::atomic<double> sum_{0.0};
  std::atomic<double> min_;
  std::atomic<double> max_;
};

/// Default histogram bounds for latencies in microseconds: log-spaced
/// 1 us .. 10 s.
std::vector<double> default_latency_buckets_us();

/// Default histogram bounds for latencies in milliseconds: log-spaced
/// 1 ms .. 10000 s. Use for values recorded in ms (e.g. fold wall time)
/// so they do not all land in the overflow bucket of the us scale.
std::vector<double> default_latency_buckets_ms();

/// Histogram bounds counting in whole units (windows, items): powers of two
/// 1 .. 4096.
std::vector<double> default_count_buckets();

/// Named instrument registry. Lookup takes a mutex; returned references
/// stay valid for the registry's lifetime, so hot paths look up once and
/// cache. Counters, gauges and histograms are separate namespaces.
class MetricsRegistry {
 public:
  Counter& counter(const std::string& name);
  Gauge& gauge(const std::string& name);
  /// Registers (first call) or looks up a histogram. `upper_bounds` must
  /// be non-empty and strictly increasing; calling again under the same
  /// name with different bounds throws PreconditionError, so an
  /// instrument's definition cannot silently drift between call sites.
  Histogram& histogram(const std::string& name,
                       std::vector<double> upper_bounds);

  /// All registered instrument names, sorted, kind-prefixed for display.
  std::vector<std::string> names() const;

  /// Flat JSON object: {"counters": {...}, "gauges": {...},
  /// "histograms": {name: {count, sum, min, max, mean, p50, p90, p99,
  /// buckets: [{le, count}...]}}}.
  void write_json(std::ostream& out) const;
  /// Flat CSV: kind,name,field,value — one row per scalar.
  void write_csv(std::ostream& out) const;

  /// Zero every registered instrument (objects stay valid). Intended for
  /// tests; racing updates are not lost-update-safe, so quiesce first.
  void reset();

 private:
  mutable std::mutex mutex_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
};

/// The process-wide registry all built-in instrumentation reports to.
MetricsRegistry& metrics();

}  // namespace hmd
