#include "util/cli.hpp"

#include <algorithm>
#include <cstdlib>
#include <iostream>

#include "util/strings.hpp"

namespace hmd {

ArgParser::ArgParser(std::string program, std::string summary)
    : program_(std::move(program)), summary_(std::move(summary)) {}

void ArgParser::add_spec(Spec spec) {
  HMD_REQUIRE(spec.name.size() > 2 && spec.name.rfind("--", 0) == 0,
              "ArgParser: flag names must start with --");
  HMD_REQUIRE(find(spec.name) == nullptr,
              "ArgParser: duplicate flag " + spec.name);
  specs_.push_back(std::move(spec));
}

void ArgParser::add_flag(const std::string& name, bool* out,
                         std::string help) {
  add_spec({name, "", std::move(help), false,
            [out](const std::string&) -> Result<void> {
              *out = true;
              return {};
            }});
}

void ArgParser::add_string(const std::string& name, std::string* out,
                           std::string value_name, std::string help) {
  add_spec({name, std::move(value_name), std::move(help), true,
            [out](const std::string& v) -> Result<void> {
              *out = v;
              return {};
            }});
}

void ArgParser::add_strings(const std::string& name,
                            std::vector<std::string>* out,
                            std::string value_name, std::string help) {
  add_spec({name, std::move(value_name), std::move(help), true,
            [out](const std::string& v) -> Result<void> {
              out->push_back(v);
              return {};
            }});
}

void ArgParser::add_double(const std::string& name, double* out,
                           std::string value_name, std::string help) {
  add_spec({name, std::move(value_name), std::move(help), true,
            [out](const std::string& v) -> Result<void> {
              return capture_result([&] { *out = parse_double(v); });
            }});
}

void ArgParser::add_size(const std::string& name, std::size_t* out,
                         std::string value_name, std::string help) {
  add_spec({name, std::move(value_name), std::move(help), true,
            [out](const std::string& v) -> Result<void> {
              return capture_result(
                  [&] { *out = static_cast<std::size_t>(parse_int(v)); });
            }});
}

void ArgParser::add_uint64(const std::string& name, std::uint64_t* out,
                           std::string value_name, std::string help) {
  add_spec({name, std::move(value_name), std::move(help), true,
            [out](const std::string& v) -> Result<void> {
              return capture_result(
                  [&] { *out = static_cast<std::uint64_t>(parse_int(v)); });
            }});
}

const ArgParser::Spec* ArgParser::find(const std::string& name) const {
  for (const Spec& spec : specs_)
    if (spec.name == name) return &spec;
  return nullptr;
}

std::string ArgParser::known_flags() const {
  std::vector<std::string> names;
  names.reserve(specs_.size() + 1);
  for (const Spec& spec : specs_) names.push_back(spec.name);
  names.push_back("--help");
  return join(names, ", ");
}

Result<void> ArgParser::parse(int argc, const char* const* argv) {
  help_requested_ = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      help_requested_ = true;
      continue;
    }
    const Spec* spec = find(arg);
    if (spec == nullptr)
      return ErrorInfo(ErrCode::kPrecondition,
                       "unknown flag '" + arg +
                           "' (valid flags: " + known_flags() + ")");
    std::string value;
    if (spec->takes_value) {
      if (i + 1 >= argc)
        return ErrorInfo(ErrCode::kPrecondition,
                         "flag " + spec->name + " expects a value <" +
                             spec->value_name + ">");
      value = argv[++i];
    }
    if (Result<void> applied = spec->apply(value); !applied)
      return std::move(applied).with_context("flag " + spec->name);
  }
  return {};
}

std::string ArgParser::help() const {
  // "usage:" line listing every flag, then one aligned help line each —
  // the same shape the tools' hand-written usage() blocks had.
  std::string text = "usage: " + program_;
  for (const Spec& spec : specs_) {
    text += " [" + spec.name;
    if (spec.takes_value) text += " " + spec.value_name;
    text += "]";
  }
  text += "\n";
  if (!summary_.empty()) text += summary_ + "\n";

  std::size_t width = 0;
  auto label = [](const Spec& spec) {
    return spec.takes_value ? spec.name + " " + spec.value_name : spec.name;
  };
  for (const Spec& spec : specs_)
    width = std::max(width, label(spec).size());
  for (const Spec& spec : specs_) {
    std::string lhs = label(spec);
    lhs.resize(width, ' ');
    text += "  " + lhs + "  " + spec.help + "\n";
  }
  return text;
}

void ArgParser::parse_or_exit(int argc, const char* const* argv) {
  const Result<void> parsed = parse(argc, argv);
  if (help_requested_) {
    std::cout << help();
    std::exit(0);
  }
  if (!parsed) {
    std::cerr << program_ << ": " << parsed.error().to_string() << "\n\n"
              << help();
    std::exit(2);
  }
}

}  // namespace hmd
