#include "util/rng.hpp"

#include <cmath>
#include <numbers>

#include "util/error.hpp"

namespace hmd {

std::uint64_t splitmix64(std::uint64_t& x) {
  x += 0x9e3779b97f4a7c15ull;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

namespace {
inline std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}
}  // namespace

Rng::Rng(std::uint64_t seed) {
  std::uint64_t s = seed;
  for (auto& w : state_) w = splitmix64(s);
  // Guard against the (astronomically unlikely) all-zero state.
  if (state_[0] == 0 && state_[1] == 0 && state_[2] == 0 && state_[3] == 0)
    state_[0] = 1;
}

std::uint64_t Rng::next_u64() {
  const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
  const std::uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = rotl(state_[3], 45);
  return result;
}

double Rng::uniform() {
  // 53 high bits → double in [0, 1).
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) {
  HMD_REQUIRE(lo <= hi, "uniform: lo must not exceed hi");
  return lo + (hi - lo) * uniform();
}

std::uint64_t Rng::uniform_index(std::uint64_t n) {
  HMD_REQUIRE(n > 0, "uniform_index: n must be positive");
  // Lemire-style rejection to remove modulo bias.
  const std::uint64_t threshold = (~n + 1) % n;  // (2^64 - n) mod n
  for (;;) {
    const std::uint64_t r = next_u64();
    if (r >= threshold) return r % n;
  }
}

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) {
  HMD_REQUIRE(lo <= hi, "uniform_int: lo must not exceed hi");
  const auto span =
      static_cast<std::uint64_t>(hi - lo) + 1;  // hi - lo < 2^63, safe
  return lo + static_cast<std::int64_t>(uniform_index(span));
}

double Rng::normal() {
  if (has_spare_) {
    has_spare_ = false;
    return spare_normal_;
  }
  double u1 = 0.0;
  do {
    u1 = uniform();
  } while (u1 <= 0.0);
  const double u2 = uniform();
  const double r = std::sqrt(-2.0 * std::log(u1));
  const double theta = 2.0 * std::numbers::pi * u2;
  spare_normal_ = r * std::sin(theta);
  has_spare_ = true;
  return r * std::cos(theta);
}

double Rng::normal(double mean, double stddev) {
  HMD_REQUIRE(stddev >= 0.0, "normal: stddev must be non-negative");
  return mean + stddev * normal();
}

double Rng::lognormal(double mu, double sigma) {
  return std::exp(normal(mu, sigma));
}

bool Rng::bernoulli(double p) { return uniform() < p; }

std::uint64_t Rng::poisson(double lambda) {
  HMD_REQUIRE(lambda >= 0.0, "poisson: lambda must be non-negative");
  if (lambda == 0.0) return 0;
  if (lambda < 30.0) {
    const double limit = std::exp(-lambda);
    std::uint64_t k = 0;
    double p = 1.0;
    do {
      ++k;
      p *= uniform();
    } while (p > limit);
    return k - 1;
  }
  // Normal approximation with continuity correction; adequate for event
  // counts in the simulator where lambda is large.
  const double x = normal(lambda, std::sqrt(lambda));
  return x <= 0.0 ? 0 : static_cast<std::uint64_t>(x + 0.5);
}

double Rng::exponential(double lambda) {
  HMD_REQUIRE(lambda > 0.0, "exponential: lambda must be positive");
  double u = 0.0;
  do {
    u = uniform();
  } while (u <= 0.0);
  return -std::log(u) / lambda;
}

std::size_t Rng::categorical(const std::vector<double>& weights) {
  HMD_REQUIRE(!weights.empty(), "categorical: weights must be non-empty");
  double total = 0.0;
  for (double w : weights) {
    HMD_REQUIRE(w >= 0.0, "categorical: weights must be non-negative");
    total += w;
  }
  HMD_REQUIRE(total > 0.0, "categorical: at least one weight must be positive");
  double r = uniform() * total;
  for (std::size_t i = 0; i < weights.size(); ++i) {
    r -= weights[i];
    if (r < 0.0) return i;
  }
  return weights.size() - 1;  // numeric fall-through
}

Rng Rng::fork() { return Rng(next_u64() ^ 0xd2b74407b1ce6e93ull); }

}  // namespace hmd
