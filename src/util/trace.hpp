// Scoped-span tracing — where the wall-clock time of a run actually went.
//
// Usage:
//
//   void train_all() {
//     HMD_TRACE_SPAN("bench/binary_study");      // whole-scope span
//     ...
//   }
//
// Spans record {name, thread, start, duration} into the process-wide
// Tracer when it is enabled (tools enable it for --trace-out; it is off by
// default, so instrumented code costs two steady_clock reads per span).
// The collected timeline exports as Chrome Trace Event Format JSON — load
// the file in chrome://tracing or https://ui.perfetto.dev.
//
// TraceSpan doubles as a scoped timer: elapsed_seconds() works whether or
// not the tracer is recording, so callers that need the measured duration
// (benches logging speedups) read it from the span instead of hand-rolling
// chrono arithmetic.
//
// Building with -DHMD_TRACE_DISABLED (CMake option HMD_TRACE_DISABLED)
// compiles HMD_TRACE_SPAN sites out entirely, for measuring
// instrumentation overhead.
#pragma once

#include <atomic>
#include <cstdint>
#include <iosfwd>
#include <mutex>
#include <string>
#include <vector>

namespace hmd {

/// One completed span on the process timeline.
struct TraceEvent {
  std::string name;
  std::uint32_t tid = 0;       ///< small stable per-thread id
  std::uint64_t start_us = 0;  ///< since the process trace epoch
  std::uint64_t duration_us = 0;
};

/// Collects completed spans. Recording is gated by an atomic enabled flag;
/// the event buffer is mutex-guarded and capped (drops count into the
/// "trace.dropped_events" counter of the process metrics registry).
class Tracer {
 public:
  /// Retained-event cap; beyond it new events are dropped, not rotated.
  static constexpr std::size_t kMaxEvents = 1u << 20;

  void set_enabled(bool on) noexcept {
    enabled_.store(on, std::memory_order_relaxed);
  }
  bool enabled() const noexcept {
    return enabled_.load(std::memory_order_relaxed);
  }

  void record(TraceEvent event);

  std::vector<TraceEvent> events() const;
  std::size_t size() const;
  void clear();

  /// Chrome Trace Event Format: {"traceEvents": [{"ph": "X", ...}]}.
  void write_chrome_json(std::ostream& out) const;

  /// Small dense id of the calling thread (assigned on first use).
  static std::uint32_t current_thread_id();
  /// Microseconds since the process trace epoch (first call anchors it).
  static std::uint64_t now_us();

 private:
  std::atomic<bool> enabled_{false};
  mutable std::mutex mutex_;
  std::vector<TraceEvent> events_;
};

/// The process-wide tracer HMD_TRACE_SPAN reports to.
Tracer& tracer();

/// RAII span: starts timing at construction, records into tracer() at
/// destruction (or close()) when tracing is enabled. An empty name makes
/// it a pure scoped timer — never recorded, only elapsed_seconds().
class TraceSpan {
 public:
  explicit TraceSpan(std::string name);
  ~TraceSpan();

  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

  /// Time since construction — usable as a plain scoped timer even when
  /// the tracer is disabled.
  double elapsed_seconds() const;

  /// Record now (idempotent; the destructor then does nothing).
  void close();

 private:
  std::string name_;
  std::uint64_t start_us_ = 0;
  bool open_ = true;
};

}  // namespace hmd

#if defined(HMD_TRACE_DISABLED)
#define HMD_TRACE_SPAN(...) ((void)0)
#else
#define HMD_TRACE_CONCAT_INNER(a, b) a##b
#define HMD_TRACE_CONCAT(a, b) HMD_TRACE_CONCAT_INNER(a, b)
/// Declares an anonymous TraceSpan covering the rest of the scope.
#define HMD_TRACE_SPAN(...) \
  ::hmd::TraceSpan HMD_TRACE_CONCAT(hmd_trace_span_, __LINE__){__VA_ARGS__}
#endif
