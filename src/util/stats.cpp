#include "util/stats.hpp"

#include <algorithm>
#include <cmath>

#include "util/error.hpp"

namespace hmd {

void RunningStats::add(double x) {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

void RunningStats::merge(const RunningStats& other) {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const double na = static_cast<double>(n_);
  const double nb = static_cast<double>(other.n_);
  const double delta = other.mean_ - mean_;
  const double total = na + nb;
  mean_ += delta * nb / total;
  m2_ += other.m2_ + delta * delta * na * nb / total;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
  n_ += other.n_;
}

void RunningStats::clear() { *this = RunningStats{}; }

double RunningStats::mean() const { return n_ == 0 ? 0.0 : mean_; }

double RunningStats::variance() const {
  return n_ < 2 ? 0.0 : m2_ / static_cast<double>(n_ - 1);
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

double RunningStats::population_variance() const {
  return n_ < 1 ? 0.0 : m2_ / static_cast<double>(n_);
}

double RunningStats::min() const { return n_ == 0 ? 0.0 : min_; }
double RunningStats::max() const { return n_ == 0 ? 0.0 : max_; }

double pearson_correlation(std::span<const double> x,
                           std::span<const double> y) {
  HMD_REQUIRE(x.size() == y.size(),
              "pearson_correlation: series lengths differ");
  if (x.size() < 2) return 0.0;
  const double mx = mean_of(x);
  const double my = mean_of(y);
  double sxy = 0.0, sxx = 0.0, syy = 0.0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    const double dx = x[i] - mx;
    const double dy = y[i] - my;
    sxy += dx * dy;
    sxx += dx * dx;
    syy += dy * dy;
  }
  if (sxx <= 0.0 || syy <= 0.0) return 0.0;
  return sxy / std::sqrt(sxx * syy);
}

double mean_of(std::span<const double> xs) {
  if (xs.empty()) return 0.0;
  double s = 0.0;
  for (double x : xs) s += x;
  return s / static_cast<double>(xs.size());
}

double stddev_of(std::span<const double> xs) {
  if (xs.size() < 2) return 0.0;
  const double m = mean_of(xs);
  double s2 = 0.0;
  for (double x : xs) s2 += (x - m) * (x - m);
  return std::sqrt(s2 / static_cast<double>(xs.size() - 1));
}

double percentile(std::span<const double> xs, double p) {
  HMD_REQUIRE(p >= 0.0 && p <= 100.0, "percentile: p outside [0, 100]");
  HMD_REQUIRE(!xs.empty(), "percentile: empty input");
  std::vector<double> sorted(xs.begin(), xs.end());
  std::sort(sorted.begin(), sorted.end());
  if (sorted.size() == 1) return sorted.front();
  const double rank = p / 100.0 * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(rank);
  const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return sorted[lo] + frac * (sorted[hi] - sorted[lo]);
}

BinnedHistogram::BinnedHistogram(double lo, double hi, std::size_t bins)
    : lo_(lo), hi_(hi), counts_(bins, 0) {
  HMD_REQUIRE(hi > lo, "BinnedHistogram: hi must exceed lo");
  HMD_REQUIRE(bins > 0, "BinnedHistogram: need at least one bin");
}

void BinnedHistogram::add(double x) {
  const double width = (hi_ - lo_) / static_cast<double>(counts_.size());
  auto raw = static_cast<long long>(std::floor((x - lo_) / width));
  raw = std::clamp(raw, 0ll, static_cast<long long>(counts_.size()) - 1);
  ++counts_[static_cast<std::size_t>(raw)];
  ++total_;
}

std::size_t BinnedHistogram::bin_count(std::size_t bin) const {
  HMD_REQUIRE(bin < counts_.size(), "BinnedHistogram: bin out of range");
  return counts_[bin];
}

double BinnedHistogram::bin_low(std::size_t bin) const {
  const double width = (hi_ - lo_) / static_cast<double>(counts_.size());
  return lo_ + width * static_cast<double>(bin);
}

double BinnedHistogram::bin_high(std::size_t bin) const {
  return bin_low(bin + 1);
}

std::size_t BinnedHistogram::mode_bin() const {
  return static_cast<std::size_t>(
      std::max_element(counts_.begin(), counts_.end()) - counts_.begin());
}

}  // namespace hmd
