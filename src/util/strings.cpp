#include "util/strings.hpp"

#include <cctype>
#include <charconv>
#include <cstdarg>
#include <cstdio>

#include "util/error.hpp"

namespace hmd {

std::vector<std::string> split(std::string_view s, char delim) {
  std::vector<std::string> out;
  std::size_t start = 0;
  while (true) {
    const std::size_t pos = s.find(delim, start);
    if (pos == std::string_view::npos) {
      out.emplace_back(s.substr(start));
      break;
    }
    out.emplace_back(s.substr(start, pos - start));
    start = pos + 1;
  }
  return out;
}

std::string_view trim(std::string_view s) {
  std::size_t b = 0;
  std::size_t e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return s.substr(b, e - b);
}

std::string join(const std::vector<std::string>& parts, std::string_view sep) {
  std::string out;
  for (std::size_t i = 0; i < parts.size(); ++i) {
    if (i) out += sep;
    out += parts[i];
  }
  return out;
}

std::string to_lower(std::string_view s) {
  std::string out(s);
  for (char& c : out) c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  return out;
}

bool istarts_with(std::string_view s, std::string_view prefix) {
  if (s.size() < prefix.size()) return false;
  for (std::size_t i = 0; i < prefix.size(); ++i) {
    if (std::tolower(static_cast<unsigned char>(s[i])) !=
        std::tolower(static_cast<unsigned char>(prefix[i])))
      return false;
  }
  return true;
}

double parse_double(std::string_view s) {
  const std::string_view t = trim(s);
  double value = 0.0;
  const auto [ptr, ec] = std::from_chars(t.data(), t.data() + t.size(), value);
  if (ec != std::errc{} || ptr != t.data() + t.size())
    throw ParseError("cannot parse '" + std::string(s) + "' as a real number");
  return value;
}

long long parse_int(std::string_view s) {
  const std::string_view t = trim(s);
  long long value = 0;
  const auto [ptr, ec] = std::from_chars(t.data(), t.data() + t.size(), value);
  if (ec != std::errc{} || ptr != t.data() + t.size())
    throw ParseError("cannot parse '" + std::string(s) + "' as an integer");
  return value;
}

std::string format(const char* fmt, ...) {
  std::va_list args;
  va_start(args, fmt);
  std::va_list args_copy;
  va_copy(args_copy, args);
  const int needed = std::vsnprintf(nullptr, 0, fmt, args);
  va_end(args);
  if (needed < 0) {
    va_end(args_copy);
    throw Error("format: encoding error");
  }
  std::string out(static_cast<std::size_t>(needed), '\0');
  std::vsnprintf(out.data(), out.size() + 1, fmt, args_copy);
  va_end(args_copy);
  return out;
}

std::string json_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (const char ch : s) {
    switch (ch) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(ch) < 0x20)
          out += format("\\u%04x", static_cast<unsigned>(
                                       static_cast<unsigned char>(ch)));
        else
          out += ch;
    }
  }
  return out;
}

}  // namespace hmd
