#include "util/thread_pool.hpp"

#include <algorithm>
#include <cstdlib>
#include <exception>

#include "util/error.hpp"
#include "util/strings.hpp"

namespace hmd {

ThreadPool::ThreadPool(std::size_t num_threads) {
  const std::size_t n = std::max<std::size_t>(1, num_threads);
  workers_.reserve(n);
  for (std::size_t i = 0; i < n; ++i)
    workers_.emplace_back([this] { worker_loop(); });
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stopping_ = true;
  }
  cv_.notify_all();
  for (std::thread& w : workers_) w.join();
}

void TaskHandle::wait() const {
  std::unique_lock<std::mutex> lock(state_->mutex);
  state_->cv.wait(lock, [s = state_.get()] { return s->done; });
}

void TaskHandle::get() const {
  wait();
  // No lock needed: error is written before done under the state mutex and
  // never touched again once done is observed.
  if (state_->error) std::rethrow_exception(state_->error);
}

TaskHandle ThreadPool::submit(std::function<void()> task) {
  HMD_REQUIRE(task != nullptr, "ThreadPool::submit: null task");
  auto state = std::make_shared<TaskHandle::State>();
  {
    std::lock_guard<std::mutex> lock(mutex_);
    HMD_REQUIRE(!stopping_, "ThreadPool::submit: pool is shutting down");
    queue_.push_back([task = std::move(task), state] {
      std::exception_ptr error;
      try {
        task();
      } catch (...) {
        error = std::current_exception();
      }
      {
        std::lock_guard<std::mutex> state_lock(state->mutex);
        state->error = std::move(error);
        state->done = true;
      }
      state->cv.notify_all();
    });
  }
  cv_.notify_one();
  return TaskHandle(std::move(state));
}

bool ThreadPool::on_worker_thread() const {
  const std::thread::id self = std::this_thread::get_id();
  for (const std::thread& w : workers_)
    if (w.get_id() == self) return true;
  return false;
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      cv_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopping_ with a drained queue
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();  // the submit wrapper catches, so nothing escapes here
  }
}

std::size_t default_jobs() {
  if (const char* env = std::getenv("HMD_JOBS"); env != nullptr && *env) {
    long long jobs = 0;
    try {
      jobs = parse_int(env);
    } catch (const ParseError&) {
      jobs = 0;
    }
    if (jobs >= 1) return static_cast<std::size_t>(jobs);
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<std::size_t>(hw);
}

ThreadPool& global_pool() {
  static ThreadPool pool(default_jobs());
  return pool;
}

namespace {

/// Shared state of one parallel_for batch: a claim counter the caller and
/// the drafted workers all drain, plus first-exception capture.
struct ForBatch {
  std::atomic<std::size_t> next{0};
  std::size_t n = 0;
  const std::function<void(std::size_t)>* fn = nullptr;
  std::mutex error_mutex;
  std::exception_ptr error;

  void run_indices() {
    for (;;) {
      const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= n) return;
      try {
        (*fn)(i);
      } catch (...) {
        std::lock_guard<std::mutex> lock(error_mutex);
        if (!error) error = std::current_exception();
        next.store(n, std::memory_order_relaxed);  // skip the rest
        return;
      }
    }
  }
};

}  // namespace

void parallel_for(ThreadPool* pool, std::size_t n,
                  const std::function<void(std::size_t)>& fn) {
  HMD_REQUIRE(fn != nullptr, "parallel_for: null body");
  if (n == 0) return;
  // Nested fan-out runs inline: a worker that blocked waiting on helper
  // tasks could deadlock the pool if every other worker did the same.
  if (pool == nullptr || pool->size() <= 1 || n == 1 ||
      pool->on_worker_thread()) {
    for (std::size_t i = 0; i < n; ++i) fn(i);
    return;
  }

  ForBatch batch;
  batch.n = n;
  batch.fn = &fn;

  // Draft up to size() helpers; the caller drains the same counter, so even
  // if every worker is busy (nested fan-out) the batch completes.
  const std::size_t helpers = std::min(pool->size(), n - 1);
  std::vector<TaskHandle> drafted;
  drafted.reserve(helpers);
  for (std::size_t h = 0; h < helpers; ++h)
    drafted.push_back(pool->submit([&batch] { batch.run_indices(); }));

  batch.run_indices();
  for (auto& f : drafted) f.wait();

  if (batch.error) std::rethrow_exception(batch.error);
}

}  // namespace hmd
