#include "util/thread_pool.hpp"

#include <algorithm>
#include <cstdlib>
#include <exception>

#include "util/error.hpp"
#include "util/metrics.hpp"
#include "util/strings.hpp"

namespace hmd {

ThreadPool::ThreadPool(std::size_t num_threads)
    : created_(std::chrono::steady_clock::now()) {
  // Instrument handles are owned by the process registry (which this
  // lookup creates before the first worker spawns, so it outlives them).
  MetricsRegistry& reg = metrics();
  tasks_executed_ = &reg.counter("thread_pool.tasks_executed");
  busy_us_ = &reg.counter("thread_pool.busy_us");
  queue_wait_us_ =
      &reg.histogram("thread_pool.queue_wait_us", default_latency_buckets_us());
  utilization_gauge_ = &reg.gauge("thread_pool.utilization");
  reg.gauge("thread_pool.workers")
      .set(static_cast<double>(std::max<std::size_t>(1, num_threads)));

  const std::size_t n = std::max<std::size_t>(1, num_threads);
  workers_.reserve(n);
  for (std::size_t i = 0; i < n; ++i)
    workers_.emplace_back([this] { worker_loop(); });
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stopping_ = true;
  }
  cv_.notify_all();
  for (std::thread& w : workers_) w.join();
}

void TaskHandle::wait() const {
  std::unique_lock<std::mutex> lock(state_->mutex);
  state_->cv.wait(lock, [s = state_.get()] { return s->done; });
}

void TaskHandle::get() const {
  wait();
  // No lock needed: error is written before done under the state mutex and
  // never touched again once done is observed.
  if (state_->error) std::rethrow_exception(state_->error);
}

void ThreadPool::run_task(std::function<void()>& task,
                          std::chrono::steady_clock::time_point enqueued) {
  using clock = std::chrono::steady_clock;
  using std::chrono::duration_cast;
  using std::chrono::microseconds;
  const clock::time_point begin = clock::now();
  queue_wait_us_->record(static_cast<double>(
      duration_cast<microseconds>(begin - enqueued).count()));
  task();
  const auto busy = static_cast<std::uint64_t>(
      duration_cast<microseconds>(clock::now() - begin).count());
  tasks_executed_->add();
  busy_us_->add(busy);
  const std::uint64_t busy_total =
      busy_us_total_.fetch_add(busy, std::memory_order_relaxed) + busy;
  const auto uptime = static_cast<std::uint64_t>(
      duration_cast<microseconds>(clock::now() - created_).count());
  const double capacity =
      static_cast<double>(workers_.size()) * static_cast<double>(uptime);
  if (capacity > 0.0)
    utilization_gauge_->set(static_cast<double>(busy_total) / capacity);
}

double ThreadPool::utilization() const {
  const auto uptime = static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now() - created_)
          .count());
  const double capacity =
      static_cast<double>(workers_.size()) * static_cast<double>(uptime);
  if (capacity <= 0.0) return 0.0;
  return static_cast<double>(busy_us_total_.load(std::memory_order_relaxed)) /
         capacity;
}

TaskHandle ThreadPool::submit(std::function<void()> task) {
  HMD_REQUIRE(task != nullptr, "ThreadPool::submit: null task");
  auto state = std::make_shared<TaskHandle::State>();
  const auto enqueued = std::chrono::steady_clock::now();
  {
    std::lock_guard<std::mutex> lock(mutex_);
    HMD_REQUIRE(!stopping_, "ThreadPool::submit: pool is shutting down");
    queue_.push_back([this, task = std::move(task), state, enqueued]() mutable {
      std::exception_ptr error;
      try {
        run_task(task, enqueued);
      } catch (...) {
        error = std::current_exception();
      }
      {
        std::lock_guard<std::mutex> state_lock(state->mutex);
        state->error = std::move(error);
        state->done = true;
      }
      state->cv.notify_all();
    });
  }
  cv_.notify_one();
  return TaskHandle(std::move(state));
}

bool ThreadPool::on_worker_thread() const {
  const std::thread::id self = std::this_thread::get_id();
  for (const std::thread& w : workers_)
    if (w.get_id() == self) return true;
  return false;
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      cv_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopping_ with a drained queue
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();  // the submit wrapper catches, so nothing escapes here
  }
}

std::size_t default_jobs() {
  if (const char* env = std::getenv("HMD_JOBS"); env != nullptr && *env) {
    long long jobs = 0;
    try {
      jobs = parse_int(env);
    } catch (const ParseError&) {
      jobs = 0;
    }
    if (jobs >= 1) return static_cast<std::size_t>(jobs);
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<std::size_t>(hw);
}

ThreadPool& global_pool() {
  static ThreadPool pool(default_jobs());
  return pool;
}

namespace {

/// Shared state of one parallel_for batch: a claim counter the caller and
/// the drafted workers all drain, plus first-exception capture.
struct ForBatch {
  std::atomic<std::size_t> next{0};
  std::size_t n = 0;
  const std::function<void(std::size_t)>* fn = nullptr;
  std::mutex error_mutex;
  std::exception_ptr error;

  void run_indices() {
    for (;;) {
      const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= n) return;
      try {
        (*fn)(i);
      } catch (...) {
        std::lock_guard<std::mutex> lock(error_mutex);
        if (!error) error = std::current_exception();
        next.store(n, std::memory_order_relaxed);  // skip the rest
        return;
      }
    }
  }
};

}  // namespace

void parallel_for(ThreadPool* pool, std::size_t n,
                  const std::function<void(std::size_t)>& fn) {
  HMD_REQUIRE(fn != nullptr, "parallel_for: null body");
  if (n == 0) return;
  static Counter& batches = metrics().counter("parallel_for.batches");
  static Counter& items = metrics().counter("parallel_for.items");
  batches.add();
  items.add(n);
  // Nested fan-out runs inline: a worker that blocked waiting on helper
  // tasks could deadlock the pool if every other worker did the same.
  if (pool == nullptr || pool->size() <= 1 || n == 1 ||
      pool->on_worker_thread()) {
    for (std::size_t i = 0; i < n; ++i) fn(i);
    return;
  }

  ForBatch batch;
  batch.n = n;
  batch.fn = &fn;

  // Draft up to size() helpers; the caller drains the same counter, so even
  // if every worker is busy (nested fan-out) the batch completes.
  const std::size_t helpers = std::min(pool->size(), n - 1);
  std::vector<TaskHandle> drafted;
  drafted.reserve(helpers);
  for (std::size_t h = 0; h < helpers; ++h)
    drafted.push_back(pool->submit([&batch] { batch.run_indices(); }));

  batch.run_indices();
  for (auto& f : drafted) f.wait();

  if (batch.error) std::rethrow_exception(batch.error);
}

}  // namespace hmd
