// Minimal CSV reading/writing, matching the paper's pipeline where per-run
// perf logs are combined into a CSV consumed by the ML tool.
//
// The dialect is deliberately simple: comma separator, optional double-quote
// quoting with "" escapes, one header row. This matches what the thesis
// produced from perf text logs.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "util/result.hpp"

namespace hmd {

/// An in-memory CSV table: one header row plus string cells.
struct CsvTable {
  std::vector<std::string> header;
  std::vector<std::vector<std::string>> rows;

  std::size_t column_index(const std::string& name) const;  ///< throws if absent
};

/// Parse CSV from a stream. Ragged rows yield an ErrorInfo
/// (ErrCode::kParse) with a "reading CSV" context frame.
Result<CsvTable> try_read_csv(std::istream& in);

/// Thin throwing wrapper over try_read_csv (raises hmd::ParseError).
CsvTable read_csv(std::istream& in);

/// Parse CSV from a file path; an unopenable file yields ErrCode::kIo.
Result<CsvTable> try_read_csv_file(const std::string& path);

/// Thin throwing wrapper over try_read_csv_file.
CsvTable read_csv_file(const std::string& path);

/// Quote a field if it contains a comma, quote, or newline.
std::string csv_escape(const std::string& field);

/// Incremental CSV writer.
class CsvWriter {
 public:
  explicit CsvWriter(std::ostream& out) : out_(out) {}

  void write_row(const std::vector<std::string>& cells);
  /// Convenience: numeric row with fixed precision.
  void write_row(const std::vector<double>& cells, int precision = 6);

 private:
  std::ostream& out_;
};

}  // namespace hmd
