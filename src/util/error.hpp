// Error handling primitives for the hmdetect libraries.
//
// Library code throws hmd::Error (or a subclass) on precondition violations
// and unrecoverable input errors; internal invariants use HMD_ASSERT, which
// is active in all build types (the cost is negligible next to simulation).
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

namespace hmd {

/// Base exception for all hmdetect errors.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

/// Thrown when a caller violates a documented precondition.
class PreconditionError : public Error {
 public:
  explicit PreconditionError(const std::string& what) : Error(what) {}
};

/// Thrown on malformed external input (files, configs).
class ParseError : public Error {
 public:
  explicit ParseError(const std::string& what) : Error(what) {}
};

namespace detail {
[[noreturn]] inline void throw_precondition(const char* expr, const char* file,
                                            int line, const std::string& msg) {
  std::ostringstream os;
  os << "precondition failed: " << expr << " at " << file << ':' << line;
  if (!msg.empty()) os << " — " << msg;
  throw PreconditionError(os.str());
}

[[noreturn]] inline void throw_assert(const char* expr, const char* file,
                                      int line) {
  std::ostringstream os;
  os << "internal invariant violated: " << expr << " at " << file << ':'
     << line;
  throw Error(os.str());
}
}  // namespace detail

}  // namespace hmd

/// Validate a documented caller-facing precondition.
#define HMD_REQUIRE(expr, msg)                                             \
  do {                                                                     \
    if (!(expr))                                                           \
      ::hmd::detail::throw_precondition(#expr, __FILE__, __LINE__, (msg)); \
  } while (false)

/// Validate an internal invariant. Active in all build types.
#define HMD_ASSERT(expr)                                            \
  do {                                                              \
    if (!(expr)) ::hmd::detail::throw_assert(#expr, __FILE__, __LINE__); \
  } while (false)
