#include "util/metrics.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <ostream>

#include "util/error.hpp"
#include "util/strings.hpp"

namespace hmd {

Histogram::Histogram(std::vector<double> upper_bounds)
    : bounds_(std::move(upper_bounds)),
      buckets_(bounds_.size() + 1),
      min_(std::numeric_limits<double>::infinity()),
      max_(-std::numeric_limits<double>::infinity()) {
  HMD_REQUIRE(!bounds_.empty(), "Histogram: need at least one bucket bound");
  for (std::size_t i = 1; i < bounds_.size(); ++i)
    HMD_REQUIRE(bounds_[i - 1] < bounds_[i],
                "Histogram: bounds must be strictly increasing");
}

namespace {

/// fetch_min/fetch_max for atomic<double> via CAS.
void atomic_min(std::atomic<double>& target, double v) noexcept {
  double cur = target.load(std::memory_order_relaxed);
  while (v < cur &&
         !target.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
  }
}

void atomic_max(std::atomic<double>& target, double v) noexcept {
  double cur = target.load(std::memory_order_relaxed);
  while (v > cur &&
         !target.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
  }
}

}  // namespace

void Histogram::record(double value) noexcept {
  const auto it = std::lower_bound(bounds_.begin(), bounds_.end(), value);
  const auto bucket = static_cast<std::size_t>(it - bounds_.begin());
  buckets_[bucket].fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(value, std::memory_order_relaxed);
  atomic_min(min_, value);
  atomic_max(max_, value);
  count_.fetch_add(1, std::memory_order_relaxed);
}

double Histogram::mean() const noexcept {
  const std::uint64_t n = count();
  return n == 0 ? 0.0 : sum() / static_cast<double>(n);
}

double Histogram::min() const noexcept {
  return count() == 0 ? 0.0 : min_.load(std::memory_order_relaxed);
}

double Histogram::max() const noexcept {
  return count() == 0 ? 0.0 : max_.load(std::memory_order_relaxed);
}

std::uint64_t Histogram::bucket_count(std::size_t i) const {
  HMD_REQUIRE(i < buckets_.size(), "Histogram: bucket index out of range");
  return buckets_[i].load(std::memory_order_relaxed);
}

double Histogram::quantile(double q) const {
  HMD_REQUIRE(q >= 0.0 && q <= 1.0, "Histogram: quantile must be in [0, 1]");
  const std::uint64_t n = count();
  if (n == 0) return 0.0;
  const auto rank = static_cast<std::uint64_t>(
      std::ceil(q * static_cast<double>(n)));
  std::uint64_t cumulative = 0;
  for (std::size_t i = 0; i < buckets_.size(); ++i) {
    cumulative += buckets_[i].load(std::memory_order_relaxed);
    if (cumulative >= rank && cumulative > 0)
      return i < bounds_.size() ? bounds_[i] : max();
  }
  return max();
}

void Histogram::reset() noexcept {
  for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
  sum_.store(0.0, std::memory_order_relaxed);
  min_.store(std::numeric_limits<double>::infinity(),
             std::memory_order_relaxed);
  max_.store(-std::numeric_limits<double>::infinity(),
             std::memory_order_relaxed);
  count_.store(0, std::memory_order_relaxed);
}

std::vector<double> default_latency_buckets_us() {
  std::vector<double> bounds;
  for (double decade = 1.0; decade <= 1e6; decade *= 10.0)
    for (double step : {1.0, 2.0, 5.0}) bounds.push_back(decade * step);
  bounds.push_back(1e7);  // 10 s
  return bounds;
}

std::vector<double> default_latency_buckets_ms() {
  std::vector<double> bounds;
  for (double decade = 1.0; decade <= 1e6; decade *= 10.0)
    for (double step : {1.0, 2.0, 5.0}) bounds.push_back(decade * step);
  bounds.push_back(1e7);  // 10000 s
  return bounds;
}

std::vector<double> default_count_buckets() {
  std::vector<double> bounds;
  for (double b = 1.0; b <= 4096.0; b *= 2.0) bounds.push_back(b);
  return bounds;
}

Counter& MetricsRegistry::counter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto& slot = counters_[name];
  if (slot == nullptr) slot = std::make_unique<Counter>();
  return *slot;
}

Gauge& MetricsRegistry::gauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto& slot = gauges_[name];
  if (slot == nullptr) slot = std::make_unique<Gauge>();
  return *slot;
}

Histogram& MetricsRegistry::histogram(const std::string& name,
                                      std::vector<double> upper_bounds) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    // Construct before inserting so a rejected bounds vector (empty,
    // unsorted) never leaves a null entry behind.
    it = histograms_
             .emplace(name,
                      std::make_unique<Histogram>(std::move(upper_bounds)))
             .first;
  } else {
    HMD_REQUIRE(upper_bounds == it->second->upper_bounds(),
                "MetricsRegistry: histogram '" + name +
                    "' re-registered with different bucket bounds");
  }
  return *it->second;
}

std::vector<std::string> MetricsRegistry::names() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<std::string> out;
  for (const auto& [name, _] : counters_) out.push_back("counter/" + name);
  for (const auto& [name, _] : gauges_) out.push_back("gauge/" + name);
  for (const auto& [name, _] : histograms_)
    out.push_back("histogram/" + name);
  std::sort(out.begin(), out.end());
  return out;
}

namespace {

/// JSON number rendering that stays finite (chrome/json parsers reject
/// Infinity/NaN literals).
std::string json_number(double v) {
  if (!std::isfinite(v)) return "0";
  return format("%.9g", v);
}

}  // namespace

void MetricsRegistry::write_json(std::ostream& out) const {
  std::lock_guard<std::mutex> lock(mutex_);
  out << "{\n  \"counters\": {";
  bool first = true;
  for (const auto& [name, c] : counters_) {
    out << (first ? "" : ",") << "\n    \"" << json_escape(name)
        << "\": " << c->value();
    first = false;
  }
  out << "\n  },\n  \"gauges\": {";
  first = true;
  for (const auto& [name, g] : gauges_) {
    out << (first ? "" : ",") << "\n    \"" << json_escape(name)
        << "\": " << json_number(g->value());
    first = false;
  }
  out << "\n  },\n  \"histograms\": {";
  first = true;
  for (const auto& [name, h] : histograms_) {
    out << (first ? "" : ",") << "\n    \"" << json_escape(name) << "\": {"
        << "\"count\": " << h->count() << ", \"sum\": "
        << json_number(h->sum()) << ", \"min\": " << json_number(h->min())
        << ", \"max\": " << json_number(h->max())
        << ", \"mean\": " << json_number(h->mean())
        << ", \"p50\": " << json_number(h->quantile(0.5))
        << ", \"p90\": " << json_number(h->quantile(0.9))
        << ", \"p99\": " << json_number(h->quantile(0.99))
        << ", \"buckets\": [";
    for (std::size_t i = 0; i < h->num_buckets(); ++i) {
      if (i) out << ", ";
      out << "{\"le\": "
          << (i < h->upper_bounds().size()
                  ? json_number(h->upper_bounds()[i])
                  : std::string("\"inf\""))
          << ", \"count\": " << h->bucket_count(i) << '}';
    }
    out << "]}";
    first = false;
  }
  out << "\n  }\n}\n";
}

void MetricsRegistry::write_csv(std::ostream& out) const {
  std::lock_guard<std::mutex> lock(mutex_);
  out << "kind,name,field,value\n";
  for (const auto& [name, c] : counters_)
    out << "counter," << name << ",value," << c->value() << '\n';
  for (const auto& [name, g] : gauges_)
    out << "gauge," << name << ",value," << format("%.9g", g->value())
        << '\n';
  for (const auto& [name, h] : histograms_) {
    out << "histogram," << name << ",count," << h->count() << '\n';
    out << "histogram," << name << ",sum," << format("%.9g", h->sum())
        << '\n';
    out << "histogram," << name << ",mean," << format("%.9g", h->mean())
        << '\n';
    out << "histogram," << name << ",p50," << format("%.9g", h->quantile(0.5))
        << '\n';
    out << "histogram," << name << ",p99,"
        << format("%.9g", h->quantile(0.99)) << '\n';
  }
}

void MetricsRegistry::reset() {
  std::lock_guard<std::mutex> lock(mutex_);
  for (auto& [_, c] : counters_) c->reset();
  for (auto& [_, g] : gauges_) g->reset();
  for (auto& [_, h] : histograms_) h->reset();
}

MetricsRegistry& metrics() {
  static MetricsRegistry registry;
  return registry;
}

}  // namespace hmd
