// Value-based error handling — the Result side of the library's error API.
//
// Exceptions (util/error.hpp) remain the right surface for programming
// errors: precondition violations and broken internal invariants abort the
// operation wherever they are detected. External inputs are different: a
// corrupt model file, bundle, ARFF or CSV is an *expected* outcome that
// callers routinely want to inspect, log, retry or fall back from — the
// serving path's resilience layer (serve/resilience.hpp) rejects a corrupt
// hot-swap bundle and keeps the old model live, which is awkward to write
// with try/catch at every boundary. Those fallible load paths therefore
// return Result<T>:
//
//   hmd::Result<ml::Dataset> r = ml::try_read_arff(in);
//   if (!r) { log(r.error().to_string()); return; }
//   use(r.value());
//
// An ErrorInfo carries a coarse machine-checkable code, the innermost
// message, and a context chain pushed by each boundary the error crossed
// ("loading deployment bundle: model section: bad scheme name"). raise()
// converts back to the matching exception type, which is how the thin
// throwing wrappers (load_model, load_bundle, read_arff, read_csv) keep
// existing call sites compiling — and failing — exactly as before.
#pragma once

#include <optional>
#include <string>
#include <type_traits>
#include <utility>
#include <variant>
#include <vector>

#include "util/error.hpp"

namespace hmd {

/// Coarse classification of a failure, for callers that branch on kind
/// rather than message text.
enum class ErrCode {
  kParse,         ///< malformed external input (file, stream, flag value)
  kPrecondition,  ///< documented precondition violated
  kIo,            ///< underlying stream/file unusable
  kUnavailable,   ///< dependency failed (model scoring, swapped-out epoch)
  kInternal,      ///< anything else that surfaced as an exception
};

/// Short stable name of a code ("parse", "precondition", ...).
const char* to_string(ErrCode code);

/// A failure as a value: code + innermost message + the chain of
/// boundaries it crossed (outermost last, via with_context).
class ErrorInfo {
 public:
  ErrorInfo(ErrCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  ErrCode code() const { return code_; }
  const std::string& message() const { return message_; }
  const std::vector<std::string>& context() const { return context_; }

  /// Push an outer context frame ("loading deployment bundle"). Returns
  /// *this so boundaries can annotate-and-return in one expression.
  ErrorInfo& with_context(std::string frame) {
    context_.push_back(std::move(frame));
    return *this;
  }

  /// "outermost: ...: innermost-message" — the full human-readable chain.
  std::string to_string() const {
    std::string s;
    for (auto it = context_.rbegin(); it != context_.rend(); ++it) {
      s += *it;
      s += ": ";
    }
    s += message_;
    return s;
  }

  /// Re-throw as the exception type matching code(): ParseError for
  /// kParse, PreconditionError for kPrecondition, Error otherwise. The
  /// message is to_string(), so context survives the conversion.
  [[noreturn]] void raise() const {
    switch (code_) {
      case ErrCode::kParse:
        throw ParseError(to_string());
      case ErrCode::kPrecondition:
        throw PreconditionError(to_string());
      default:
        throw Error(to_string());
    }
  }

  /// Build an ErrorInfo from the in-flight exception (call inside a catch
  /// block). Maps ParseError -> kParse, PreconditionError ->
  /// kPrecondition, other hmd::Error / std::exception -> kInternal.
  static ErrorInfo from_current_exception() {
    try {
      throw;
    } catch (const ParseError& e) {
      return ErrorInfo(ErrCode::kParse, e.what());
    } catch (const PreconditionError& e) {
      return ErrorInfo(ErrCode::kPrecondition, e.what());
    } catch (const std::exception& e) {
      return ErrorInfo(ErrCode::kInternal, e.what());
    } catch (...) {
      return ErrorInfo(ErrCode::kInternal, "unknown non-standard exception");
    }
  }

 private:
  ErrCode code_;
  std::string message_;
  std::vector<std::string> context_;  ///< innermost first, outermost last
};

/// Either a T or an ErrorInfo. Move-only payloads (Result<DeploymentBundle>,
/// Result<std::unique_ptr<Classifier>>) are supported; value() on an error
/// raises the matching exception, which is what the thin throwing wrappers
/// rely on.
template <typename T>
class [[nodiscard]] Result {
  static_assert(!std::is_same_v<std::decay_t<T>, ErrorInfo>,
                "Result<ErrorInfo> is ambiguous");

 public:
  Result(T value) : state_(std::in_place_index<0>, std::move(value)) {}
  Result(ErrorInfo error) : state_(std::in_place_index<1>, std::move(error)) {}

  bool ok() const { return state_.index() == 0; }
  explicit operator bool() const { return ok(); }

  /// The payload; raises the stored error when !ok().
  T& value() & {
    if (!ok()) std::get<1>(state_).raise();
    return std::get<0>(state_);
  }
  const T& value() const& {
    if (!ok()) std::get<1>(state_).raise();
    return std::get<0>(state_);
  }
  T&& value() && {
    if (!ok()) std::get<1>(state_).raise();
    return std::get<0>(std::move(state_));
  }

  /// The payload, or `fallback` when this is an error.
  T value_or(T fallback) && {
    return ok() ? std::get<0>(std::move(state_)) : std::move(fallback);
  }

  /// The error; HMD_ASSERTs when ok().
  const ErrorInfo& error() const {
    HMD_ASSERT(!ok());
    return std::get<1>(state_);
  }
  ErrorInfo& error() {
    HMD_ASSERT(!ok());
    return std::get<1>(state_);
  }

  /// Annotate the error (no-op when ok()); returns *this for chaining at
  /// return statements.
  Result&& with_context(std::string frame) && {
    if (!ok()) std::get<1>(state_).with_context(std::move(frame));
    return std::move(*this);
  }

 private:
  std::variant<T, ErrorInfo> state_;
};

/// Result<void>: success carries nothing.
template <>
class [[nodiscard]] Result<void> {
 public:
  Result() = default;
  Result(ErrorInfo error) : error_(std::in_place, std::move(error)) {}

  bool ok() const { return !error_.has_value(); }
  explicit operator bool() const { return ok(); }

  /// Raises the stored error when !ok(); no-op on success.
  void value() const {
    if (error_) error_->raise();
  }

  const ErrorInfo& error() const {
    HMD_ASSERT(!ok());
    return *error_;
  }
  ErrorInfo& error() {
    HMD_ASSERT(!ok());
    return *error_;
  }

  Result&& with_context(std::string frame) && {
    if (error_) error_->with_context(std::move(frame));
    return std::move(*this);
  }

 private:
  std::optional<ErrorInfo> error_;
};

/// Run `fn`, converting any exception it throws into an ErrorInfo — the
/// adapter between throw-style internals and Result-style boundaries.
template <typename F>
auto capture_result(F&& fn) -> Result<std::invoke_result_t<F>> {
  using R = std::invoke_result_t<F>;
  try {
    if constexpr (std::is_void_v<R>) {
      std::forward<F>(fn)();
      return Result<void>();
    } else {
      return Result<R>(std::forward<F>(fn)());
    }
  } catch (...) {
    return Result<R>(ErrorInfo::from_current_exception());
  }
}

inline const char* to_string(ErrCode code) {
  switch (code) {
    case ErrCode::kParse: return "parse";
    case ErrCode::kPrecondition: return "precondition";
    case ErrCode::kIo: return "io";
    case ErrCode::kUnavailable: return "unavailable";
    case ErrCode::kInternal: return "internal";
  }
  return "unknown";
}

}  // namespace hmd
