// Shared flag presets for the hmd_* command-line tools.
//
// Four tools declaring --seed, --metrics-out and --trace-out by hand is
// how help text drifts: one tool says "write process metrics JSON on
// exit", another drops the "on exit", a third spells the value name PATH
// instead of FILE. Each helper here pins ONE canonical spelling — flag
// name, value name, help phrasing — and lets the tool state only what is
// genuinely tool-specific: what the seed seeds, whether the bundle is
// being read or written.
//
// Defaults in help text are read from the bound variable at registration
// time, so a tool that changes its default seed never has to remember to
// update the string.
#pragma once

#include <cstdint>
#include <string>

#include "util/cli.hpp"

namespace hmd::cli {

/// --seed N. `purpose` names what the seed drives ("sample", "master",
/// "split"); the documented default is whatever *seed holds now.
inline void add_seed_flag(ArgParser& parser, std::uint64_t* seed,
                          const std::string& purpose) {
  parser.add_uint64("--seed", seed, "N",
                    purpose + " seed (default " + std::to_string(*seed) +
                        ")");
}

/// --bundle FILE naming an existing deployment bundle to load.
inline void add_bundle_in_flag(ArgParser& parser, std::string* path) {
  parser.add_string("--bundle", path, "FILE",
                    "deployment bundle to load (hmd_train --bundle)");
}

/// --bundle FILE naming a deployment bundle to write.
inline void add_bundle_out_flag(ArgParser& parser, std::string* path) {
  parser.add_string("--bundle", path, "FILE",
                    "write a deployment bundle (model + features + "
                    "policy; binary only)");
}

/// --model FILE naming an existing saved model to load.
inline void add_model_in_flag(ArgParser& parser, std::string* path) {
  parser.add_string("--model", path, "FILE",
                    "saved model to load (hmd_train --model)");
}

/// --model FILE naming a bare model file to write.
inline void add_model_out_flag(ArgParser& parser, std::string* path) {
  parser.add_string("--model", path, "FILE", "save the bare model");
}

/// --isa NAME forcing the SIMD dispatch tier of the ml kernels. Tools
/// apply a non-empty value via ml::kernels::force_isa_by_name after
/// parsing; an empty value keeps the best supported tier (or the
/// HMD_KERNEL_ISA environment override).
inline void add_isa_flag(ArgParser& parser, std::string* isa) {
  parser.add_string("--isa", isa, "NAME",
                    "force kernel ISA: scalar, avx2 or avx512 (default: "
                    "best supported; env HMD_KERNEL_ISA)");
}

/// --emit-rtl LANG: render the trained model through the hw::compile()
/// netlist pipeline and print the module/entity to stdout. Valid values
/// are the backend registry's names (hw::backend_by_name).
inline void add_emit_rtl_flag(ArgParser& parser, std::string* lang) {
  parser.add_string("--emit-rtl", lang, "LANG",
                    "print the trained model as RTL on stdout: verilog "
                    "or vhdl (hw::compile netlist pipeline)");
}

/// --tier NAME: the serving precision tier (serve::tier_from_name).
inline void add_tier_flag(ArgParser& parser, std::string* tier) {
  parser.add_string("--tier", tier, "NAME",
                    "serving precision tier: float (default), int8 "
                    "(quantized low-latency scoring), q16 (hardware "
                    "Q16.16 input grid) or fpga (compiled netlist "
                    "scored by the cycle-accurate simulator)");
}

/// The observability pair every tool exposes: --metrics-out FILE and
/// --trace-out FILE.
inline void add_observability_flags(ArgParser& parser, std::string* metrics,
                                    std::string* trace) {
  parser.add_string("--metrics-out", metrics, "FILE",
                    "write process metrics JSON on exit");
  parser.add_string("--trace-out", trace, "FILE",
                    "collect spans; write Chrome trace JSON on exit");
}

}  // namespace hmd::cli
