#include "util/csv.hpp"

#include <fstream>
#include <istream>
#include <ostream>
#include <sstream>

#include "util/error.hpp"
#include "util/strings.hpp"

namespace hmd {

namespace {

// Parses one physical line of CSV. Quoted fields spanning multiple lines are
// not supported (the pipeline never produces them).
std::vector<std::string> parse_line(const std::string& line, std::size_t lineno) {
  std::vector<std::string> cells;
  std::string cell;
  bool in_quotes = false;
  for (std::size_t i = 0; i < line.size(); ++i) {
    const char c = line[i];
    if (in_quotes) {
      if (c == '"') {
        if (i + 1 < line.size() && line[i + 1] == '"') {
          cell += '"';
          ++i;
        } else {
          in_quotes = false;
        }
      } else {
        cell += c;
      }
    } else if (c == '"') {
      in_quotes = true;
    } else if (c == ',') {
      cells.push_back(std::move(cell));
      cell.clear();
    } else {
      cell += c;
    }
  }
  if (in_quotes)
    throw ParseError("CSV line " + std::to_string(lineno) +
                     ": unterminated quoted field");
  cells.push_back(std::move(cell));
  return cells;
}

}  // namespace

std::size_t CsvTable::column_index(const std::string& name) const {
  for (std::size_t i = 0; i < header.size(); ++i)
    if (header[i] == name) return i;
  throw ParseError("CSV column not found: " + name);
}

namespace {

/// The actual parser; throws ParseError on ragged rows.
CsvTable read_csv_impl(std::istream& in) {
  CsvTable table;
  std::string line;
  std::size_t lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    if (!line.empty() && line.back() == '\r') line.pop_back();
    if (line.empty()) continue;
    auto cells = parse_line(line, lineno);
    if (table.header.empty()) {
      table.header = std::move(cells);
    } else {
      if (cells.size() != table.header.size())
        throw ParseError("CSV line " + std::to_string(lineno) + ": expected " +
                         std::to_string(table.header.size()) + " fields, got " +
                         std::to_string(cells.size()));
      table.rows.push_back(std::move(cells));
    }
  }
  return table;
}

}  // namespace

Result<CsvTable> try_read_csv(std::istream& in) {
  return capture_result([&in] { return read_csv_impl(in); })
      .with_context("reading CSV");
}

CsvTable read_csv(std::istream& in) {
  // Thin throwing wrapper: value() raises the ErrorInfo as a ParseError.
  return try_read_csv(in).value();
}

Result<CsvTable> try_read_csv_file(const std::string& path) {
  std::ifstream in(path);
  if (!in)
    return ErrorInfo(ErrCode::kIo, "cannot open CSV file: " + path);
  return try_read_csv(in).with_context(path);
}

CsvTable read_csv_file(const std::string& path) {
  return try_read_csv_file(path).value();
}

std::string csv_escape(const std::string& field) {
  const bool needs_quote =
      field.find_first_of(",\"\n\r") != std::string::npos;
  if (!needs_quote) return field;
  std::string out = "\"";
  for (char c : field) {
    if (c == '"') out += "\"\"";
    else out += c;
  }
  out += '"';
  return out;
}

void CsvWriter::write_row(const std::vector<std::string>& cells) {
  for (std::size_t i = 0; i < cells.size(); ++i) {
    if (i) out_ << ',';
    out_ << csv_escape(cells[i]);
  }
  out_ << '\n';
}

void CsvWriter::write_row(const std::vector<double>& cells, int precision) {
  std::ostringstream os;
  os.precision(precision);
  os << std::fixed;
  for (std::size_t i = 0; i < cells.size(); ++i) {
    if (i) os << ',';
    os << cells[i];
  }
  out_ << os.str() << '\n';
}

}  // namespace hmd
