// Streaming and batch statistics used across the simulator and ML library.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace hmd {

/// Welford streaming accumulator: mean/variance/min/max over a stream.
class RunningStats {
 public:
  void add(double x);
  /// Merge another accumulator (parallel reduction).
  void merge(const RunningStats& other);
  void clear();

  std::size_t count() const { return n_; }
  double mean() const;
  /// Sample variance (n-1 denominator). Zero for n < 2.
  double variance() const;
  double stddev() const;
  /// Population variance (n denominator). Zero for n < 1.
  double population_variance() const;
  double min() const;
  double max() const;
  double sum() const { return mean() * static_cast<double>(n_); }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Pearson correlation of two equal-length series. Returns 0 when either
/// series is constant.
double pearson_correlation(std::span<const double> x, std::span<const double> y);

/// Arithmetic mean; 0 for an empty span.
double mean_of(std::span<const double> xs);

/// Sample standard deviation; 0 for fewer than two values.
double stddev_of(std::span<const double> xs);

/// p-th percentile (0..100) by linear interpolation on a sorted copy.
double percentile(std::span<const double> xs, double p);

/// Fixed-width histogram over [lo, hi); values outside are clamped to the
/// edge bins. Used for distribution summaries in benches and tests.
class BinnedHistogram {
 public:
  BinnedHistogram(double lo, double hi, std::size_t bins);

  void add(double x);
  std::size_t bin_count(std::size_t bin) const;
  std::size_t bins() const { return counts_.size(); }
  std::size_t total() const { return total_; }
  double bin_low(std::size_t bin) const;
  double bin_high(std::size_t bin) const;
  /// Index of the most populated bin.
  std::size_t mode_bin() const;

 private:
  double lo_;
  double hi_;
  std::vector<std::size_t> counts_;
  std::size_t total_ = 0;
};

}  // namespace hmd
