#include "util/table.hpp"

#include <algorithm>
#include <ostream>
#include <sstream>

#include "util/strings.hpp"

namespace hmd {

void TextTable::set_header(std::vector<std::string> header) {
  header_ = std::move(header);
}

void TextTable::add_row(std::vector<std::string> row) {
  rows_.push_back(std::move(row));
}

void TextTable::add_row(const std::string& label,
                        const std::vector<double>& values, int precision) {
  std::vector<std::string> row;
  row.reserve(values.size() + 1);
  row.push_back(label);
  for (double v : values) row.push_back(format("%.*f", precision, v));
  rows_.push_back(std::move(row));
}

void TextTable::print(std::ostream& out) const { out << to_string(); }

std::string TextTable::to_string() const {
  std::size_t cols = header_.size();
  for (const auto& r : rows_) cols = std::max(cols, r.size());
  std::vector<std::size_t> widths(cols, 0);
  auto widen = [&](const std::vector<std::string>& row) {
    for (std::size_t i = 0; i < row.size(); ++i)
      widths[i] = std::max(widths[i], row[i].size());
  };
  if (!header_.empty()) widen(header_);
  for (const auto& r : rows_) widen(r);

  std::ostringstream os;
  if (!title_.empty()) os << "== " << title_ << " ==\n";
  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t i = 0; i < row.size(); ++i) {
      if (i) os << "  ";
      os << row[i];
      if (i + 1 < row.size())
        os << std::string(widths[i] - row[i].size(), ' ');
    }
    os << '\n';
  };
  if (!header_.empty()) {
    emit(header_);
    std::size_t total = 0;
    for (std::size_t i = 0; i < cols; ++i) total += widths[i] + (i ? 2 : 0);
    os << std::string(total, '-') << '\n';
  }
  for (const auto& r : rows_) emit(r);
  return os.str();
}

}  // namespace hmd
