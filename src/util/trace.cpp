#include "util/trace.hpp"

#include <chrono>
#include <ostream>

#include "util/metrics.hpp"
#include "util/strings.hpp"

namespace hmd {

namespace {

std::chrono::steady_clock::time_point trace_epoch() {
  static const auto epoch = std::chrono::steady_clock::now();
  return epoch;
}

}  // namespace

std::uint64_t Tracer::now_us() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now() - trace_epoch())
          .count());
}

std::uint32_t Tracer::current_thread_id() {
  static std::atomic<std::uint32_t> next{0};
  thread_local const std::uint32_t id =
      next.fetch_add(1, std::memory_order_relaxed);
  return id;
}

void Tracer::record(TraceEvent event) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (events_.size() < kMaxEvents) {
      events_.push_back(std::move(event));
      return;
    }
  }
  metrics().counter("trace.dropped_events").add();
}

std::vector<TraceEvent> Tracer::events() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return events_;
}

std::size_t Tracer::size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return events_.size();
}

void Tracer::clear() {
  std::lock_guard<std::mutex> lock(mutex_);
  events_.clear();
}

void Tracer::write_chrome_json(std::ostream& out) const {
  std::lock_guard<std::mutex> lock(mutex_);
  out << "{\"traceEvents\": [";
  for (std::size_t i = 0; i < events_.size(); ++i) {
    const TraceEvent& e = events_[i];
    if (i) out << ',';
    out << "\n  {\"name\": \"" << json_escape(e.name)
        << "\", \"ph\": \"X\", \"cat\": \"hmd\", \"pid\": 1, \"tid\": "
        << e.tid << ", \"ts\": " << e.start_us
        << ", \"dur\": " << e.duration_us << '}';
  }
  out << "\n]}\n";
}

Tracer& tracer() {
  static Tracer instance;
  return instance;
}

TraceSpan::TraceSpan(std::string name)
    : name_(std::move(name)), start_us_(Tracer::now_us()) {}

TraceSpan::~TraceSpan() { close(); }

double TraceSpan::elapsed_seconds() const {
  return static_cast<double>(Tracer::now_us() - start_us_) * 1e-6;
}

void TraceSpan::close() {
  if (!open_) return;
  open_ = false;
  if (name_.empty()) return;  // pure scoped timer, never recorded
  Tracer& t = tracer();
  if (!t.enabled()) return;
  t.record(TraceEvent{.name = std::move(name_),
                      .tid = Tracer::current_thread_id(),
                      .start_us = start_us_,
                      .duration_us = Tracer::now_us() - start_us_});
}

}  // namespace hmd
