// Plain-text table rendering for bench output and example programs.
//
// Every bench regenerates one of the paper's tables/figures; this helper
// renders aligned columns so the output reads like the published artifact.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace hmd {

/// Column-aligned ASCII table with an optional title.
class TextTable {
 public:
  explicit TextTable(std::string title = {}) : title_(std::move(title)) {}

  void set_header(std::vector<std::string> header);
  void add_row(std::vector<std::string> row);
  /// Numeric convenience: formats each value with `precision` digits.
  void add_row(const std::string& label, const std::vector<double>& values,
               int precision = 2);

  void print(std::ostream& out) const;
  std::string to_string() const;

 private:
  std::string title_;
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace hmd
