// Deterministic parallel experiment engine.
//
// A fixed-size thread pool with slot-indexed fan-out helpers
// (parallel_for / parallel_map) designed for the repo's bit-reproducibility
// contract: work items are identified by index, results land in
// pre-allocated slots, and nothing about scheduling order can leak into the
// results. There is deliberately NO work stealing between unrelated task
// graphs — each parallel_for drains one shared counter, and the calling
// thread participates, so nested fan-out from inside a worker can never
// deadlock (the caller just runs its own batch inline).
//
// Thread count: pass an explicit count, or use default_jobs(), which reads
// the HMD_JOBS environment variable and falls back to the hardware
// concurrency. HMD_JOBS=1 forces every helper into its serial fast path.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <exception>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <thread>
#include <vector>

namespace hmd {

class Counter;
class Gauge;
class Histogram;

/// Completion handle for one submitted task. Mutex/cv based rather than
/// std::future so every synchronization edge lives in instrumented code
/// (std::packaged_task parks the task's exception in libstdc++'s
/// refcounted shared state, whose release a sanitizer cannot see), and so
/// a propagated exception is always released by the waiting caller, never
/// by a pool worker.
class TaskHandle {
 public:
  /// Blocks until the task has finished running.
  void wait() const;
  /// Blocks, then rethrows the exception the task threw, if any.
  void get() const;

 private:
  friend class ThreadPool;
  struct State {
    std::mutex mutex;
    std::condition_variable cv;
    bool done = false;
    std::exception_ptr error;
  };
  explicit TaskHandle(std::shared_ptr<State> state)
      : state_(std::move(state)) {}
  std::shared_ptr<State> state_;
};

/// Fixed-size worker pool. Construction spawns the workers; destruction
/// drains the queue and joins them. Tasks submitted after shutdown begins
/// are rejected with a PreconditionError.
class ThreadPool {
 public:
  /// Spawns `num_threads` workers (0 is clamped to 1).
  explicit ThreadPool(std::size_t num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Number of worker threads.
  std::size_t size() const { return workers_.size(); }

  /// Enqueue a task. The returned handle rethrows any exception the task
  /// throws, so callers own error propagation.
  TaskHandle submit(std::function<void()> task);

  /// True when called from one of this pool's worker threads.
  bool on_worker_thread() const;

  /// Fraction of worker capacity spent running tasks since construction
  /// (busy time / (workers x uptime)); also published to the process
  /// metrics registry as the "thread_pool.utilization" gauge.
  double utilization() const;

 private:
  void worker_loop();
  void run_task(std::function<void()>& task,
                std::chrono::steady_clock::time_point enqueued);

  std::vector<std::thread> workers_;
  std::deque<std::function<void()>> queue_;
  mutable std::mutex mutex_;
  std::condition_variable cv_;
  bool stopping_ = false;

  // Observability (registry-owned instruments; the pool only caches
  // references, so updates are plain atomic ops).
  std::chrono::steady_clock::time_point created_;
  std::atomic<std::uint64_t> busy_us_total_{0};
  Counter* tasks_executed_ = nullptr;
  Counter* busy_us_ = nullptr;
  Histogram* queue_wait_us_ = nullptr;
  Gauge* utilization_gauge_ = nullptr;
};

/// Thread count for parallel helpers: HMD_JOBS if set (>= 1), else
/// std::thread::hardware_concurrency(), else 1.
std::size_t default_jobs();

/// Process-wide pool sized by default_jobs(), created on first use.
/// Benches and tools share it so one HMD_JOBS knob governs everything.
ThreadPool& global_pool();

/// Runs fn(0) ... fn(n - 1), fanning across `pool`. The calling thread
/// participates in the batch, so calling from inside a worker is safe
/// (the nested batch simply runs on the caller). Iterations must not
/// depend on each other. If any iteration throws, the first exception (in
/// completion order) is rethrown after the whole batch finishes; remaining
/// iterations are skipped once a failure is seen. With a null pool, one
/// thread, or n <= 1 the loop runs serially inline.
void parallel_for(ThreadPool* pool, std::size_t n,
                  const std::function<void(std::size_t)>& fn);

/// Slot-indexed map: returns {fn(items[0]), ..., fn(items[n-1])} with
/// result order matching input order regardless of scheduling. Results
/// need not be default-constructible.
template <typename T, typename F>
auto parallel_map(ThreadPool* pool, const std::vector<T>& items, F&& fn)
    -> std::vector<decltype(fn(items.front()))> {
  using R = decltype(fn(items.front()));
  std::vector<std::optional<R>> slots(items.size());
  parallel_for(pool, items.size(),
               [&](std::size_t i) { slots[i].emplace(fn(items[i])); });
  std::vector<R> results;
  results.reserve(items.size());
  for (auto& slot : slots) results.push_back(std::move(*slot));
  return results;
}

}  // namespace hmd
