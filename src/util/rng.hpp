// Deterministic pseudo-random number generation.
//
// Every stochastic component in hmdetect draws from an explicitly seeded Rng
// so that datasets, experiments, and benches are bit-reproducible. The
// generator is xoshiro256** (Blackman & Vigna), seeded through splitmix64,
// which has excellent statistical quality and is much faster than mt19937.
#pragma once

#include <array>
#include <cstdint>
#include <vector>

namespace hmd {

/// xoshiro256** PRNG with convenience distributions.
///
/// Satisfies the essentials of UniformRandomBitGenerator so it can be used
/// with <random> if desired, but the member distributions below are
/// deterministic across platforms (libstdc++ distributions are not
/// guaranteed to be).
class Rng {
 public:
  using result_type = std::uint64_t;

  /// Seeds the full 256-bit state from `seed` via splitmix64.
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ull);

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~result_type{0}; }

  /// Next raw 64-bit value.
  std::uint64_t next_u64();
  result_type operator()() { return next_u64(); }

  /// Uniform double in [0, 1).
  double uniform();
  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi);
  /// Uniform integer in [0, n). Requires n > 0.
  std::uint64_t uniform_index(std::uint64_t n);
  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi);
  /// Standard normal via Box–Muller (cached spare).
  double normal();
  /// Normal with the given mean and standard deviation.
  double normal(double mean, double stddev);
  /// Log-normal: exp(N(mu, sigma)).
  double lognormal(double mu, double sigma);
  /// Bernoulli trial with probability p of true.
  bool bernoulli(double p);
  /// Poisson-distributed count (Knuth for small lambda, normal approx above).
  std::uint64_t poisson(double lambda);
  /// Exponential with rate lambda.
  double exponential(double lambda);
  /// Sample an index from unnormalized non-negative weights.
  std::size_t categorical(const std::vector<double>& weights);

  /// Fisher–Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& v) {
    for (std::size_t i = v.size(); i > 1; --i) {
      std::size_t j = static_cast<std::size_t>(uniform_index(i));
      using std::swap;
      swap(v[i - 1], v[j]);
    }
  }

  /// Derives an independent child generator (for parallel-safe streams).
  Rng fork();

 private:
  std::array<std::uint64_t, 4> state_{};
  double spare_normal_ = 0.0;
  bool has_spare_ = false;
};

/// splitmix64 step; exposed for deterministic seed derivation elsewhere.
std::uint64_t splitmix64(std::uint64_t& x);

}  // namespace hmd
