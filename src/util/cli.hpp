// Shared command-line flag parser for the hmdetect tools.
//
// Before this existed, hmd_train, hmd_dataset, hmdperf and hmd_serve each
// hand-rolled the same `for (int i = 1; ...)` loop with a `next()` lambda
// and a hand-maintained usage() block that drifted from the real flag set.
// ArgParser keeps one source of truth: a flag is registered once with its
// target, value placeholder and help line, and parsing, --help generation
// and the unknown-flag error (which lists every valid flag) all derive
// from that registration.
//
//   bool binary = false; std::size_t seed = 7; std::string out;
//   ArgParser parser("hmd_tool", "one-line summary");
//   parser.add_flag("--binary", &binary, "emit binary labels");
//   parser.add_size("--seed", &seed, "N", "master seed (default 7)");
//   parser.add_string("--out", &out, "FILE", "output path");
//   parser.parse_or_exit(argc, argv);   // --help prints help, exits 0
//
// parse() itself is Result-based (util/result.hpp): tools that want
// custom error handling inspect the ErrorInfo instead of exiting.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "util/result.hpp"

namespace hmd {

/// Declarative typed flag parser. Flags are all of the form
/// "--name [value]"; there are no positional arguments (no tool needs
/// them). Targets must outlive parse().
class ArgParser {
 public:
  ArgParser(std::string program, std::string summary);

  /// Boolean switch: present -> *out = true. Takes no value.
  void add_flag(const std::string& name, bool* out, std::string help);
  /// String-valued flag.
  void add_string(const std::string& name, std::string* out,
                  std::string value_name, std::string help);
  /// Repeatable string flag (each occurrence appends).
  void add_strings(const std::string& name, std::vector<std::string>* out,
                   std::string value_name, std::string help);
  /// Floating-point flag (hmd::parse_double rules).
  void add_double(const std::string& name, double* out,
                  std::string value_name, std::string help);
  /// Non-negative integer flags (hmd::parse_int rules).
  void add_size(const std::string& name, std::size_t* out,
                std::string value_name, std::string help);
  void add_uint64(const std::string& name, std::uint64_t* out,
                  std::string value_name, std::string help);

  /// Parse argv. On failure returns an ErrorInfo (kParse for a bad value,
  /// kPrecondition for an unknown flag or missing value; the unknown-flag
  /// message lists every registered flag). "--help" is always accepted and
  /// only sets help_requested(). Targets touched before the failing
  /// argument keep their parsed values.
  Result<void> parse(int argc, const char* const* argv);

  /// True if the last parse() saw "--help".
  bool help_requested() const { return help_requested_; }

  /// Generated usage text: summary plus one aligned line per flag.
  std::string help() const;

  /// parse(); on failure prints the error and the help text to stderr and
  /// exits 2. On "--help" prints the help text to stdout and exits 0.
  void parse_or_exit(int argc, const char* const* argv);

 private:
  struct Spec {
    std::string name;        ///< "--seed"
    std::string value_name;  ///< "N" ("" for bare switches)
    std::string help;
    bool takes_value = false;
    /// Applies a value (or "" for switches); kParse error on bad input.
    std::function<Result<void>(const std::string&)> apply;
  };

  const Spec* find(const std::string& name) const;
  void add_spec(Spec spec);
  std::string known_flags() const;

  std::string program_;
  std::string summary_;
  std::vector<Spec> specs_;
  bool help_requested_ = false;
};

}  // namespace hmd
