// Q-format fixed-point arithmetic.
//
// The hardware cost model (src/hw) assumes classifiers are implemented in
// fixed point, as the thesis's Vivado HLS flow does. Fixed16 (Q16.16) is the
// datapath word used when quantizing trained models to estimate accuracy
// degradation and to size multipliers/adders.
#pragma once

#include <cmath>
#include <compare>
#include <cstdint>
#include <limits>

#include "util/error.hpp"

namespace hmd {

/// Signed fixed-point value with FRAC fractional bits in a 64-bit container
/// (intermediate products are computed in 128-bit).
template <int FRAC>
class Fixed {
  static_assert(FRAC > 0 && FRAC < 62, "fractional bits out of range");
  __extension__ typedef __int128 Wide;  // GCC/Clang extension

 public:
  static constexpr std::int64_t kOne = std::int64_t{1} << FRAC;

  constexpr Fixed() = default;

  static constexpr Fixed from_raw(std::int64_t raw) {
    Fixed f;
    f.raw_ = raw;
    return f;
  }

  static Fixed from_double(double v) {
    HMD_REQUIRE(std::isfinite(v), "Fixed: value must be finite");
    const double scaled = v * static_cast<double>(kOne);
    HMD_REQUIRE(scaled >= static_cast<double>(std::numeric_limits<std::int64_t>::min()) &&
                    scaled <= static_cast<double>(std::numeric_limits<std::int64_t>::max()),
                "Fixed: value overflows representation");
    return from_raw(static_cast<std::int64_t>(std::llround(scaled)));
  }

  constexpr std::int64_t raw() const { return raw_; }
  double to_double() const {
    return static_cast<double>(raw_) / static_cast<double>(kOne);
  }

  friend constexpr Fixed operator+(Fixed a, Fixed b) {
    return from_raw(a.raw_ + b.raw_);
  }
  friend constexpr Fixed operator-(Fixed a, Fixed b) {
    return from_raw(a.raw_ - b.raw_);
  }
  friend constexpr Fixed operator-(Fixed a) { return from_raw(-a.raw_); }
  friend constexpr Fixed operator*(Fixed a, Fixed b) {
    const auto wide = static_cast<Wide>(a.raw_) * b.raw_;
    return from_raw(static_cast<std::int64_t>(wide >> FRAC));
  }
  friend Fixed operator/(Fixed a, Fixed b) {
    HMD_REQUIRE(b.raw_ != 0, "Fixed: division by zero");
    const auto wide = (static_cast<Wide>(a.raw_) << FRAC) / b.raw_;
    return from_raw(static_cast<std::int64_t>(wide));
  }
  friend constexpr auto operator<=>(Fixed a, Fixed b) = default;

  Fixed& operator+=(Fixed b) { raw_ += b.raw_; return *this; }
  Fixed& operator-=(Fixed b) { raw_ -= b.raw_; return *this; }
  Fixed& operator*=(Fixed b) { *this = *this * b; return *this; }

 private:
  std::int64_t raw_ = 0;
};

/// The datapath word used by the HW cost model: Q16.16.
using Fixed16 = Fixed<16>;

/// Quantize a double through Q16.16 and back (models datapath rounding).
inline double quantize_q16(double v) {
  return Fixed16::from_double(v).to_double();
}

}  // namespace hmd
