#include "perf/perf_log.hpp"

#include <istream>
#include <map>
#include <ostream>

#include "util/csv.hpp"
#include "util/error.hpp"
#include "util/strings.hpp"

namespace hmd::perf {

void write_perf_log(std::ostream& out, const RunLog& run) {
  HMD_REQUIRE(!run.events.empty(), "write_perf_log: no events");
  out << "# sample: " << run.sample_id << '\n';
  out << "# label: " << run.label << '\n';
  double t = 0.0;
  for (const HpcSample& s : run.samples) {
    HMD_REQUIRE(s.counts.size() == run.events.size(),
                "write_perf_log: sample width mismatch");
    t += s.window_ms;
    for (std::size_t i = 0; i < run.events.size(); ++i) {
      out << format("%12.3f %18.0f  %s\n", t, s.counts[i],
                    std::string(hwsim::event_name(run.events[i])).c_str());
    }
  }
}

RunLog read_perf_log(std::istream& in) {
  RunLog run;
  std::string line;
  // time → (event → count), in insertion order of times.
  std::vector<double> times;
  std::map<double, HpcSample> windows;
  while (std::getline(in, line)) {
    const std::string_view trimmed = trim(line);
    if (trimmed.empty()) continue;
    if (trimmed.front() == '#') {
      const std::string_view body = trim(trimmed.substr(1));
      if (istarts_with(body, "sample:"))
        run.sample_id = std::string(trim(body.substr(7)));
      else if (istarts_with(body, "label:"))
        run.label = std::string(trim(body.substr(6)));
      continue;
    }
    // "<time> <count> <event>"
    std::vector<std::string> parts;
    for (const auto& p : split(std::string(trimmed), ' '))
      if (!trim(p).empty()) parts.emplace_back(trim(p));
    if (parts.size() != 3)
      throw ParseError("perf log: malformed line: " + line);
    const double t = parse_double(parts[0]);
    const double count = parse_double(parts[1]);
    const hwsim::HwEvent event = hwsim::event_from_name(parts[2]);

    if (windows.find(t) == windows.end()) times.push_back(t);
    HpcSample& w = windows[t];
    // Record event order from the first window.
    if (times.size() == 1) run.events.push_back(event);
    w.counts.push_back(count);
  }
  run.samples.reserve(times.size());
  double prev_t = 0.0;
  for (double t : times) {
    HpcSample s = windows.at(t);
    s.window_ms = t - prev_t;
    prev_t = t;
    if (s.counts.size() != run.events.size())
      throw ParseError("perf log: ragged window at t=" + std::to_string(t));
    run.samples.push_back(std::move(s));
  }
  return run;
}

void combine_logs_to_csv(std::ostream& out, const std::vector<RunLog>& runs) {
  HMD_REQUIRE(!runs.empty(), "combine_logs_to_csv: no runs");
  CsvWriter writer(out);
  std::vector<std::string> header;
  for (hwsim::HwEvent e : runs.front().events)
    header.emplace_back(hwsim::event_name(e));
  header.emplace_back("class");
  writer.write_row(header);

  for (const RunLog& run : runs) {
    HMD_REQUIRE(run.events == runs.front().events,
                "combine_logs_to_csv: runs use differing event lists");
    for (const HpcSample& s : run.samples) {
      std::vector<std::string> row;
      row.reserve(s.counts.size() + 1);
      for (double c : s.counts) row.push_back(format("%.3f", c));
      row.push_back(run.label);
      writer.write_row(row);
    }
  }
}

}  // namespace hmd::perf
