#include "perf/event_group.hpp"

#include "util/error.hpp"

namespace hmd::perf {

std::vector<EventGroup> schedule_event_groups(
    const std::vector<hwsim::HwEvent>& events, std::size_t registers) {
  HMD_REQUIRE(!events.empty(), "schedule_event_groups: no events");
  HMD_REQUIRE(registers > 0, "schedule_event_groups: no registers");
  std::vector<EventGroup> groups;
  for (std::size_t i = 0; i < events.size(); i += registers) {
    const std::size_t end = std::min(i + registers, events.size());
    groups.emplace_back(events.begin() + static_cast<std::ptrdiff_t>(i),
                        events.begin() + static_cast<std::ptrdiff_t>(end));
  }
  return groups;
}

std::vector<hwsim::HwEvent> default_feature_events() {
  const auto& fe = hwsim::feature_events();
  return {fe.begin(), fe.end()};
}

}  // namespace hmd::perf
