// The HPC collector: the simulator-side equivalent of
// `perf stat -I 10 -e <16 events>` running against a sandboxed sample.
//
// Each 10 ms sampling window is simulated in miniature: `ops_per_window`
// retired instructions stand in for the ~30 M a real window would retire.
// Within a window, the event list is time-multiplexed across the PMU's 8
// programmable registers exactly as perf does — each group is scheduled for
// a slice of the window and its counts are scaled by observed
// window-time / scheduled-time. An `ideal_pmu` mode bypasses multiplexing by
// reading ground-truth counts (used by the multiplexing-error ablation).
#pragma once

#include <cstdint>
#include <vector>

#include "hwsim/core.hpp"
#include "hwsim/events.hpp"
#include "perf/event_group.hpp"
#include "util/error.hpp"
#include "util/metrics.hpp"
#include "util/rng.hpp"
#include "util/trace.hpp"

namespace hmd::perf {

/// One sampling window's scaled counts (ordered as the configured events).
struct HpcSample {
  std::vector<double> counts;
  double window_ms = 10.0;
};

/// Collector configuration.
struct CollectorConfig {
  std::vector<hwsim::HwEvent> events;  ///< empty → the 16 feature events
  std::size_t ops_per_window = 2000;   ///< simulated ops per 10 ms window
  std::size_t num_windows = 16;        ///< sampling windows per run
  /// Windows executed before sampling starts: lets caches/TLBs/predictor
  /// reach steady state so samples reflect sustained behaviour (a real
  /// 10 ms window sits deep in steady state; the miniature one must warm
  /// up explicitly or early windows are dominated by cold-start misses).
  std::size_t warmup_windows = 4;
  double window_ms = 10.0;             ///< nominal sampling period
  bool ideal_pmu = false;              ///< read ground truth (no multiplexing)
  /// Multiplexing scaling error: perf extrapolates a count observed during
  /// a register slice to the whole window assuming stationarity; bursty
  /// phase behaviour breaks that, so each scaled count carries a
  /// multiplicative log-normal error of this sigma. Ignored by ideal_pmu.
  double mux_scaling_sigma = 0.12;
  /// How many times the group rotation cycles within one window. perf
  /// rotates at timer-tick frequency; more rotations sample each event at
  /// more points of the window, shrinking extrapolation error at the cost
  /// of more PMU reprogramming. 1 = each group gets one contiguous slice.
  std::size_t rotations_per_window = 1;
};

/// Runs the collection loop over any op source (workload::Sandbox or a raw
/// TraceGenerator — anything with `hwsim::MicroOp next()`).
class HpcCollector {
 public:
  explicit HpcCollector(CollectorConfig config = {});

  const CollectorConfig& config() const { return config_; }
  const std::vector<hwsim::HwEvent>& events() const { return config_.events; }

  /// Collects `num_windows` samples from `source`, executing on `core`.
  /// The core is reset first (sandbox isolation). `noise_seed` drives the
  /// multiplexing scaling error stream (deterministic per run).
  template <typename Source>
  std::vector<HpcSample> collect(hwsim::Core& core, Source& source,
                                 std::uint64_t noise_seed = 0x9eb) const {
    HMD_TRACE_SPAN("perf/collect");
    core.reset();
    run_ops(core, source, config_.warmup_windows * config_.ops_per_window);
    Rng noise(noise_seed);
    std::vector<HpcSample> out;
    out.reserve(config_.num_windows);
    // Ideal-PMU deltas start from the post-warmup counts.
    std::vector<std::uint64_t> truth_prev(config_.events.size(), 0);
    for (std::size_t i = 0; i < config_.events.size(); ++i)
      truth_prev[i] = core.pmu().true_count(config_.events[i]);
    for (std::size_t w = 0; w < config_.num_windows; ++w)
      out.push_back(collect_window(core, source, truth_prev, noise));
    metrics().counter("perf.windows_collected").add(out.size());
    metrics().counter("perf.ops_executed")
        .add((config_.warmup_windows + config_.num_windows) *
             config_.ops_per_window);
    return out;
  }

 private:
  CollectorConfig config_;
  std::vector<EventGroup> groups_;

  template <typename Source>
  HpcSample collect_window(hwsim::Core& core, Source& source,
                           std::vector<std::uint64_t>& truth_prev,
                           Rng& noise) const {
    HpcSample sample;
    sample.window_ms = config_.window_ms;
    sample.counts.assign(config_.events.size(), 0.0);

    if (config_.ideal_pmu) {
      run_ops(core, source, config_.ops_per_window);
      for (std::size_t i = 0; i < config_.events.size(); ++i) {
        const std::uint64_t now = core.pmu().true_count(config_.events[i]);
        sample.counts[i] = static_cast<double>(now - truth_prev[i]);
        truth_prev[i] = now;
      }
      return sample;
    }

    // Multiplexed path: rotate the groups through the registers, giving
    // each an equal slice, and scale counts by actual scheduled time, as
    // perf does. More rotations per window sample each event at more
    // points of the window.
    const std::size_t rotations = std::max<std::size_t>(
        1, config_.rotations_per_window);
    const std::size_t slice_ops = std::max<std::size_t>(
        1, config_.ops_per_window / (groups_.size() * rotations));
    double window_ns = 0.0;
    std::vector<double> raw(config_.events.size(), 0.0);
    std::vector<double> running_ns(config_.events.size(), 0.0);

    for (std::size_t rotation = 0; rotation < rotations; ++rotation) {
      std::size_t event_base = 0;
      for (const EventGroup& group : groups_) {
        core.sync_pmu_time();
        for (std::size_t r = 0; r < group.size(); ++r)
          core.pmu().program(r, group[r]);
        const double ns0 = core.elapsed_ns();
        run_ops(core, source, slice_ops);
        core.sync_pmu_time();
        const double ns1 = core.elapsed_ns();
        window_ns += ns1 - ns0;
        for (std::size_t r = 0; r < group.size(); ++r) {
          const hwsim::CounterReading reading = core.pmu().read(r);
          raw[event_base + r] += static_cast<double>(reading.value);
          running_ns[event_base + r] +=
              static_cast<double>(reading.time_running_ns);
          core.pmu().stop(r);
        }
        event_base += group.size();
      }
    }

    for (std::size_t i = 0; i < config_.events.size(); ++i) {
      double scale = running_ns[i] > 0.0
                         ? window_ns / running_ns[i]
                         : static_cast<double>(groups_.size());
      // Scaling assumes stationary behaviour within the window; model the
      // extrapolation error of bursty workloads (only where scaling is
      // actually applied, i.e. the event did not own a register all window).
      if (config_.mux_scaling_sigma > 0.0 && scale > 1.001)
        scale *= noise.lognormal(0.0, config_.mux_scaling_sigma);
      sample.counts[i] = raw[i] * scale;
    }
    return sample;
  }

  template <typename Source>
  static void run_ops(hwsim::Core& core, Source& source, std::size_t n) {
    for (std::size_t i = 0; i < n; ++i) core.execute(source.next());
  }
};

}  // namespace hmd::perf
