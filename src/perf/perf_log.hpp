// perf-stat-style text logs and the log→CSV combiner.
//
// The thesis stores each run's HPC values "into text files and later
// combined into a CSV file to be used as input to Machine Learning
// Classifiers". This module reproduces that exact flow so the pipeline can
// round-trip through the same on-disk artifacts.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "hwsim/events.hpp"
#include "perf/collector.hpp"

namespace hmd::perf {

/// One run's log: the sample identity plus its windows.
struct RunLog {
  std::string sample_id;
  std::string label;  ///< class name ("benign", "trojan", ...)
  std::vector<hwsim::HwEvent> events;
  std::vector<HpcSample> samples;
};

/// Write a run as a perf-stat-interval-style text log:
///   # sample: <id>
///   # label: <class>
///   <time_ms> <count> <event-name>   (one line per event per window)
void write_perf_log(std::ostream& out, const RunLog& run);

/// Parse a log previously written by write_perf_log.
RunLog read_perf_log(std::istream& in);

/// Combine runs into one CSV: header = event names + "class"; one row per
/// window. This is the file the ML layer trains from.
void combine_logs_to_csv(std::ostream& out, const std::vector<RunLog>& runs);

}  // namespace hmd::perf
