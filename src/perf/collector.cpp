#include "perf/collector.hpp"

namespace hmd::perf {

HpcCollector::HpcCollector(CollectorConfig config)
    : config_(std::move(config)) {
  if (config_.events.empty()) config_.events = default_feature_events();
  HMD_REQUIRE(config_.ops_per_window > 0, "ops_per_window must be positive");
  HMD_REQUIRE(config_.num_windows > 0, "num_windows must be positive");
  HMD_REQUIRE(config_.window_ms > 0.0, "window_ms must be positive");
  groups_ = schedule_event_groups(config_.events);
}

}  // namespace hmd::perf
