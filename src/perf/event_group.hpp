// Scheduling events onto PMU registers.
//
// The i5-4590 exposes 8 programmable counters; the paper samples 16 events,
// so perf time-multiplexes two groups of 8 within each sampling period and
// scales counts by the fraction of time each group was scheduled. This
// module computes the grouping.
#pragma once

#include <cstddef>
#include <vector>

#include "hwsim/events.hpp"
#include "hwsim/pmu.hpp"

namespace hmd::perf {

/// A set of events that fits on the PMU register file simultaneously.
using EventGroup = std::vector<hwsim::HwEvent>;

/// Partition `events` into groups of at most `registers` events each,
/// preserving order. Throws if `events` is empty.
std::vector<EventGroup> schedule_event_groups(
    const std::vector<hwsim::HwEvent>& events,
    std::size_t registers = hwsim::Pmu::kNumCounters);

/// The paper's 16 feature events, in dataset column order.
std::vector<hwsim::HwEvent> default_feature_events();

}  // namespace hmd::perf
