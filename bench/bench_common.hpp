// Shared infrastructure for the reproduction benches.
//
// Every bench binary regenerates one of the thesis's tables/figures. They
// all consume the same collected HPC dataset, which is built once and
// cached as CSV in ./hmd_bench_cache/ (keyed by the pipeline fingerprint),
// so running the whole bench suite costs one collection pass.
//
// Scale knobs (environment):
//   HMD_BENCH_SCALE    database scale factor vs Table 1 (default 0.30)
//   HMD_BENCH_WINDOWS  sampling windows per sample    (default 12)
// Set HMD_BENCH_SCALE=1.0 HMD_BENCH_WINDOWS=16 for the full paper-scale run
// (~49k rows; collection takes ~25 s once).
#pragma once

#include <string>
#include <utility>

#include "core/dataset_builder.hpp"
#include "core/detector.hpp"
#include "core/feature_reduction.hpp"
#include "core/pipeline_config.hpp"
#include "ml/dataset.hpp"
#include "util/thread_pool.hpp"

namespace hmd::bench {

/// The bench pipeline configuration (env-scaled).
core::PipelineConfig bench_config();

/// The shared 6-class dataset (built once, then loaded from cache).
const ml::Dataset& multiclass_dataset();

/// Binary (benign/malware) view of the shared dataset.
const ml::Dataset& binary_dataset();

/// Deterministic 70/30 stratified splits of the shared datasets.
std::pair<const ml::Dataset&, const ml::Dataset&> multiclass_split();
std::pair<const ml::Dataset&, const ml::Dataset&> binary_split();

/// Feature reducer fitted on the multiclass TRAINING split.
const core::FeatureReducer& feature_reducer();

/// Prints the standard bench banner (dataset size, scale) and initializes
/// observability export (see init_observability).
void print_banner(const std::string& title);

/// Wires the process metrics/trace registries to the environment:
///   HMD_METRICS_OUT  write flat metrics JSON here at exit
///   HMD_TRACE_OUT    enable span collection; write Chrome trace JSON here
/// Idempotent; print_banner calls it, so every bench exports for free.
void init_observability();

/// The shared experiment pool all benches fan sweeps across, sized by
/// HMD_JOBS (default: hardware concurrency). Results are bit-identical to
/// serial runs — see util/thread_pool.hpp.
ThreadPool& bench_pool();

/// Provenance block for bench JSON outputs: git sha (GITHUB_SHA, else
/// `git rev-parse HEAD`), the active kernel ISA plus the CPU's SIMD
/// feature flags, and the core count. Returns a complete JSON object
/// (no trailing comma); `indent` prefixes every emitted line.
std::string metadata_json(const std::string& indent);

/// The Figs. 13-16 study: every binary-study classifier trained, evaluated
/// and synthesized at 16 (all), 8 and 4 (PCA-selected) features. Computed
/// once per bench process.
struct BinaryStudyResults {
  std::vector<core::BinaryStudyRow> full;  ///< 16 features
  std::vector<core::BinaryStudyRow> top8;  ///< PCA top-8
  std::vector<core::BinaryStudyRow> top4;  ///< PCA top-4
};
const BinaryStudyResults& binary_study_results();

}  // namespace hmd::bench
