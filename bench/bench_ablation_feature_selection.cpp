// Ablation: feature-selection method.
//
// The thesis selects features with (unsupervised) PCA; its follow-up
// literature uses supervised rankers. This ablation compares the binary
// detector under 8- and 4-feature sets chosen by: the thesis's
// PCA+clustering ranking, information gain, symmetrical uncertainty, and
// the full 16 features, across three classifier families.
#include <benchmark/benchmark.h>

#include <iostream>

#include "bench/bench_common.hpp"
#include "ml/feature_ranking.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"

namespace {

using namespace hmd;

core::FeatureSet to_set(const std::vector<ml::RankedFeature>& ranked,
                        std::size_t k) {
  core::FeatureSet fs;
  for (std::size_t i = 0; i < k && i < ranked.size(); ++i) {
    fs.indices.push_back(ranked[i].index);
    fs.names.push_back(ranked[i].name);
  }
  return fs;
}

void print_ablation() {
  bench::print_banner("Ablation: feature-selection method");
  const auto& [train, test] = bench::binary_split();
  const core::BinaryStudy study(train, test);
  const std::vector<std::string> schemes = {"JRip", "MLR", "MLP"};

  struct Selector {
    std::string name;
    core::FeatureSet top8, top4;
  };
  std::vector<Selector> selectors;
  selectors.push_back({"PCA+clustering (paper)",
                       bench::feature_reducer().binary_top_features(8),
                       bench::feature_reducer().binary_top_features(4)});
  const auto ig = ml::rank_by_info_gain(train);
  selectors.push_back({"info gain", to_set(ig, 8), to_set(ig, 4)});
  const auto su = ml::rank_by_symmetrical_uncertainty(train);
  selectors.push_back({"sym. uncertainty", to_set(su, 8), to_set(su, 4)});

  TextTable table("binary accuracy (%) by selector and feature budget");
  std::vector<std::string> header = {"selector", "features"};
  for (const auto& s : schemes) header.push_back(s);
  table.set_header(header);

  {
    std::vector<std::string> row = {"(all)", "16"};
    for (const auto& r : study.run(schemes))
      row.push_back(format("%.2f", r.accuracy() * 100.0));
    table.add_row(row);
  }
  for (const auto& sel : selectors) {
    for (const auto& [label, fs] :
         {std::pair{std::string("8"), &sel.top8},
          std::pair{std::string("4"), &sel.top4}}) {
      std::vector<std::string> row = {sel.name, label};
      for (const auto& r : study.run(schemes, fs))
        row.push_back(format("%.2f", r.accuracy() * 100.0));
      table.add_row(row);
    }
  }
  table.print(std::cout);

  std::cout << "\ntop-8 sets:\n";
  for (const auto& sel : selectors)
    std::cout << "  " << sel.name << ": " << join(sel.top8.names, ", ")
              << '\n';
}

void BM_InfoGainRanking(benchmark::State& state) {
  const auto& [train, test] = bench::binary_split();
  (void)test;
  for (auto _ : state) {
    auto ranked = ml::rank_by_info_gain(train);
    benchmark::DoNotOptimize(ranked);
  }
}
BENCHMARK(BM_InfoGainRanking)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  print_ablation();
  ::benchmark::Initialize(&argc, argv);
  ::benchmark::RunSpecifiedBenchmarks();
  return 0;
}
