// Ablation: train/test split fraction.
//
// The thesis fixes a 70/30 split. This sweep shows how sensitive the
// detector is to the amount of training data — and that 70/30 sits on the
// flat part of the curve.
#include <benchmark/benchmark.h>

#include <iostream>

#include "bench/bench_common.hpp"
#include "ml/registry.hpp"
#include "util/rng.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"

namespace {

using namespace hmd;

void print_ablation() {
  bench::print_banner("Ablation: train fraction (paper fixes 70/30)");

  TextTable table("test accuracy vs train share");
  table.set_header({"train share", "binary MLR %", "binary J48 %",
                    "multiclass MLR %"});
  for (double frac : {0.3, 0.5, 0.7, 0.8, 0.9}) {
    Rng rng(11);
    const auto [btrain, btest] =
        bench::binary_dataset().stratified_split(frac, rng);
    Rng rng2(12);
    const auto [mtrain, mtest] =
        bench::multiclass_dataset().stratified_split(frac, rng2);
    table.add_row(
        {format("%.0f%%", frac * 100.0),
         format("%.2f", core::train_and_evaluate("MLR", btrain, btest)
                                .evaluation.accuracy() *
                            100.0),
         format("%.2f", core::train_and_evaluate("J48", btrain, btest)
                                .evaluation.accuracy() *
                            100.0),
         format("%.2f", core::train_and_evaluate("MLR", mtrain, mtest)
                                .evaluation.accuracy() *
                            100.0)});
  }
  table.print(std::cout);
}

void BM_StratifiedSplit(benchmark::State& state) {
  Rng rng(3);
  for (auto _ : state) {
    auto split = bench::binary_dataset().stratified_split(0.7, rng);
    benchmark::DoNotOptimize(split);
  }
}
BENCHMARK(BM_StratifiedSplit)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  print_ablation();
  ::benchmark::Initialize(&argc, argv);
  ::benchmark::RunSpecifiedBenchmarks();
  return 0;
}
