// Figures 9-12: per-family PCA scatter plots (rootkit, trojan, virus, worm).
//
// For each malware family, PCA is fitted on that family's windows together
// with benign windows and every window is projected onto PC1/PC2 — the
// thesis plots these 2-D point clouds. The bench emits each figure's point
// series as CSV (hmd_bench_cache/fig<N>_<family>.csv) and prints the
// cluster statistics (centroids and Fisher separation) that summarize what
// the plots show: two distinguishable clusters per family.
#include <benchmark/benchmark.h>

#include <cmath>
#include <fstream>
#include <iostream>

#include "bench/bench_common.hpp"
#include "ml/pca.hpp"
#include "util/stats.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"

namespace {

using namespace hmd;

struct FamilyFigure {
  workload::AppClass cls;
  int figure_number;
};

void print_family_plot(const FamilyFigure& fig, TextTable& summary) {
  const auto& [train, test] = bench::multiclass_split();
  (void)test;
  const auto benign = static_cast<std::size_t>(workload::AppClass::kBenign);
  const ml::Dataset subset = train.filter_classes(
      {benign, static_cast<std::size_t>(fig.cls)});

  ml::PrincipalComponents pca(0.95);
  pca.fit(subset);

  const std::string name(workload::app_class_name(fig.cls));
  std::ofstream csv(format("hmd_bench_cache/fig%d_%s.csv",
                           fig.figure_number, name.c_str()));
  csv << "pc1,pc2,class\n";

  RunningStats b1, b2, m1, m2;
  for (std::size_t i = 0; i < subset.num_instances(); ++i) {
    const auto [p1, p2] = pca.project2d(subset.features_of(i));
    const bool is_benign = subset.class_of(i) == 0;
    csv << format("%.4f,%.4f,%s\n", p1, p2,
                  is_benign ? "benign" : name.c_str());
    (is_benign ? b1 : m1).add(p1);
    (is_benign ? b2 : m2).add(p2);
  }

  auto fisher = [](const RunningStats& a, const RunningStats& b) {
    const double pooled = 0.5 * (a.variance() + b.variance());
    return pooled > 0.0 ? std::abs(a.mean() - b.mean()) / std::sqrt(pooled)
                        : 0.0;
  };
  summary.add_row({format("Fig %d (%s)", fig.figure_number, name.c_str()),
                   format("(%.2f, %.2f)", b1.mean(), b2.mean()),
                   format("(%.2f, %.2f)", m1.mean(), m2.mean()),
                   format("%.2f", fisher(b1, m1)),
                   format("%.2f", fisher(b2, m2))});
}

void print_figs() {
  bench::print_banner("Figures 9-12: PCA plots per malware family");
  TextTable summary("PC1/PC2 cluster summary (family vs benign)");
  summary.set_header({"figure", "benign centroid", "family centroid",
                      "PC1 separation", "PC2 separation"});
  for (const FamilyFigure& fig :
       {FamilyFigure{workload::AppClass::kRootkit, 9},
        FamilyFigure{workload::AppClass::kTrojan, 10},
        FamilyFigure{workload::AppClass::kVirus, 11},
        FamilyFigure{workload::AppClass::kWorm, 12}})
    print_family_plot(fig, summary);
  summary.print(std::cout);
  std::cout << "point series written to hmd_bench_cache/fig{9,10,11,12}_*.csv"
            << " (plot pc1 vs pc2, colour by class)\n";
}

void BM_Project2d(benchmark::State& state) {
  const auto& [train, test] = bench::multiclass_split();
  (void)test;
  ml::PrincipalComponents pca(0.95);
  pca.fit(train);
  std::size_t i = 0;
  for (auto _ : state) {
    auto p = pca.project2d(train.features_of(i++ % train.num_instances()));
    benchmark::DoNotOptimize(p);
  }
}
BENCHMARK(BM_Project2d);

}  // namespace

int main(int argc, char** argv) {
  print_figs();
  ::benchmark::Initialize(&argc, argv);
  ::benchmark::RunSpecifiedBenchmarks();
  return 0;
}
