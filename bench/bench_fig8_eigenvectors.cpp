// Figure 8: PCA eigenvectors from WEKA — `PrincipalComponents -R 0.95`
// over the HPC dataset: eigenvalues, retained components, top loadings,
// and the ranked attribute list.
#include <benchmark/benchmark.h>

#include <iostream>

#include "bench/bench_common.hpp"
#include "ml/pca.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"

namespace {

using namespace hmd;

void print_fig8() {
  bench::print_banner(
      "Figure 8: PCA eigen analysis (PrincipalComponents -R 0.95)");
  const auto& [train, test] = bench::multiclass_split();
  (void)test;

  ml::PrincipalComponents pca(0.95);
  pca.fit(train);

  TextTable eigen("Eigenvalues (correlation matrix)");
  eigen.set_header({"component", "eigenvalue", "variance %", "cumulative %"});
  double cum = 0.0;
  for (std::size_t j = 0; j < pca.eigenvalues().size(); ++j) {
    cum += pca.explained_variance_ratio(j) * 100.0;
    eigen.add_row({format("PC%zu", j + 1),
                   format("%.4f", pca.eigenvalues()[j]),
                   format("%.1f", pca.explained_variance_ratio(j) * 100.0),
                   format("%.1f", cum)});
  }
  eigen.print(std::cout);
  std::cout << "retained components at -R 0.95: " << pca.num_components()
            << " of " << pca.num_input_features() << "\n\n";

  TextTable loadings("First two eigenvectors (attribute loadings)");
  loadings.set_header({"attribute", "PC1", "PC2"});
  for (std::size_t f = 0; f < train.num_features(); ++f)
    loadings.add_row({train.attribute(f).name(),
                      format("%+.4f", pca.loading(f, 0)),
                      format("%+.4f", pca.loading(f, 1))});
  loadings.print(std::cout);

  TextTable ranked("Ranked attributes (WEKA Ranker over retained PCs)");
  ranked.set_header({"rank", "attribute", "score"});
  const auto features = pca.ranked_features();
  for (std::size_t i = 0; i < features.size(); ++i)
    ranked.add_row({std::to_string(i + 1), features[i].name,
                    format("%.4f", features[i].score)});
  ranked.print(std::cout);
}

void BM_PcaFit(benchmark::State& state) {
  const auto& [train, test] = bench::multiclass_split();
  (void)test;
  for (auto _ : state) {
    ml::PrincipalComponents pca(0.95);
    pca.fit(train);
    benchmark::DoNotOptimize(pca);
  }
}
BENCHMARK(BM_PcaFit)->Unit(benchmark::kMillisecond);

void BM_PcaTransform(benchmark::State& state) {
  const auto& [train, test] = bench::multiclass_split();
  (void)test;
  ml::PrincipalComponents pca(0.95);
  pca.fit(train);
  std::size_t i = 0;
  for (auto _ : state) {
    auto z = pca.transform(train.features_of(i++ % train.num_instances()));
    benchmark::DoNotOptimize(z);
  }
}
BENCHMARK(BM_PcaTransform);

}  // namespace

int main(int argc, char** argv) {
  print_fig8();
  ::benchmark::Initialize(&argc, argv);
  ::benchmark::RunSpecifiedBenchmarks();
  return 0;
}
