// Extension study (beyond the paper's figures): the two directions its
// RELATED WORK and FUTURE WORK sections point to —
//
//  1. Ensemble learning (Khasawneh et al. RAID'15; Sayadi et al. DAC'18):
//     general vs ensemble classifiers on the same HPC dataset, with
//     hardware cost (a committee synthesizes N copies of the base design).
//  2. Statistical anomaly detection (future work #2 / Tang et al.
//     RAID'14): a benign-only Mahalanobis detector — no malware needed at
//     training time — versus the supervised detectors.
//
// Plus 10-fold cross-validation of the headline classifiers (the thesis
// names cross-validation as an evaluation option but uses a test set).
#include <benchmark/benchmark.h>

#include <iostream>

#include "bench/bench_common.hpp"
#include "hw/lowering.hpp"
#include "ml/anomaly.hpp"
#include "ml/cross_validation.hpp"
#include "ml/ensemble.hpp"
#include "ml/evaluation.hpp"
#include "ml/registry.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"

namespace {

using namespace hmd;

void print_ensembles() {
  bench::print_banner("Extension: ensembles, anomaly detection, 10-fold CV");
  const auto& [train, test] = bench::binary_split();

  TextTable table("binary detection: general vs ensemble vs anomaly");
  table.set_header({"detector", "accuracy %", "benign recall %",
                    "malware recall %", "area (slices)"});
  for (const std::string scheme :
       {"DecisionStump", "AdaBoostM1", "J48", "Bagging", "Mahalanobis"}) {
    auto clf = ml::make_classifier(scheme);
    clf->train(train);
    const auto ev = ml::evaluate(*clf, test);
    std::string area = "n/a";
    if (scheme == "DecisionStump" || scheme == "J48") {
      area = format("%.0f", hw::synthesize_classifier(*clf,
                                                      train.num_features())
                                .area_slices());
    } else if (scheme == "AdaBoostM1" || scheme == "Bagging") {
      // A committee synthesizes one base design per member.
      const auto* boost = dynamic_cast<const ml::AdaBoostM1*>(clf.get());
      const auto* bag = dynamic_cast<const ml::Bagging*>(clf.get());
      const std::size_t members =
          boost != nullptr ? boost->committee_size() : bag->committee_size();
      auto base = ml::make_classifier(scheme == "AdaBoostM1"
                                          ? "DecisionStump"
                                          : "J48");
      base->train(train);
      area = format("%.0f", static_cast<double>(members) *
                                hw::synthesize_classifier(
                                    *base, train.num_features())
                                    .area_slices());
    }
    table.add_row({scheme, format("%.2f", ev.accuracy() * 100.0),
                   format("%.2f", ev.recall(0) * 100.0),
                   format("%.2f", ev.recall(1) * 100.0), area});
  }
  table.print(std::cout);
  std::cout << "(Mahalanobis trains on BENIGN windows only — a zero-day-"
               "capable baseline)\n\n";

  TextTable cv("10-fold cross-validation (binary, full feature set)");
  cv.set_header({"classifier", "pooled acc %", "fold mean %", "fold sd"});
  for (const std::string scheme : {"OneR", "JRip", "MLR"}) {
    Rng rng(33);
    // Folds fan across the bench pool; results are bit-identical to serial.
    const auto result = ml::cross_validate(
        [&scheme] { return ml::make_classifier(scheme); }, train, 10, rng,
        {.num_threads = bench::bench_pool().size(),
         .pool = &bench::bench_pool()});
    cv.add_row({scheme, format("%.2f", result.pooled.accuracy() * 100.0),
                format("%.2f", result.mean_accuracy() * 100.0),
                format("%.3f", result.stddev_accuracy())});
  }
  cv.print(std::cout);
}

void BM_TrainAdaBoost(benchmark::State& state) {
  const auto& [train, test] = bench::binary_split();
  (void)test;
  for (auto _ : state) {
    auto clf = ml::make_classifier("AdaBoostM1");
    clf->train(train);
    benchmark::DoNotOptimize(clf);
  }
}
BENCHMARK(BM_TrainAdaBoost)->Unit(benchmark::kMillisecond);

void BM_MahalanobisScore(benchmark::State& state) {
  const auto& [train, test] = bench::binary_split();
  auto clf = ml::make_classifier("Mahalanobis");
  clf->train(train);
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        clf->predict(test.features_of(i++ % test.num_instances())));
  }
}
BENCHMARK(BM_MahalanobisScore);

}  // namespace

int main(int argc, char** argv) {
  print_ensembles();
  ::benchmark::Initialize(&argc, argv);
  ::benchmark::RunSpecifiedBenchmarks();
  return 0;
}
