// Streaming-serve throughput: the sharded StreamEngine vs a serial
// OnlineDetector::observe loop over the same windows.
//
// The grid is streams {1, 8, 64, 512} x shards {1, 2, 4}. Each config
// feeds every stream the same deterministic window sequence through up to
// four feeder threads (one feeder per stream at most), drains, and
// cross-checks the engine's per-stream monitor state against the serial
// replay — the determinism contract the serve tests pin, re-asserted on
// bench-sized inputs. Like bench_train_throughput this collects no HPC
// dataset: the model is an IBk (k-NN) trained on synthetic binary blobs —
// one of the thesis's strongest binary detectors and, with its per-window
// distance scan over the training set, a scoring-bound model: the regime
// where cross-stream batching and sharding actually pay. (With a trivial
// per-window model like a bare Logistic dot product, queueing overhead
// dominates and serving infrastructure of any kind only slows you down.)
//
// Emits BENCH_serve.json (windows/sec for engine and serial baseline,
// speedup, e2e latency p50/p99 from the serve.e2e_latency_us histogram)
// and mirrors every row as a [bench] stderr line for CI greps.
//
// Scale knobs (environment):
//   HMD_SERVE_WINDOWS      windows per stream        (default 256)
//   HMD_SERVE_MAX_STREAMS  cap on the stream counts  (default 512)
//   HMD_SERVE_TRAIN_ROWS   k-NN training rows        (default 1024)
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_common.hpp"
#include "ml/dataset.hpp"
#include "ml/knn.hpp"
#include "serve/stream_engine.hpp"
#include "util/metrics.hpp"
#include "util/rng.hpp"
#include "util/trace.hpp"

namespace {

using namespace hmd;

constexpr std::size_t kFeatures = 16;
constexpr std::size_t kMaxFeeders = 4;

std::size_t env_or(const char* name, std::size_t fallback) {
  const char* v = std::getenv(name);
  return (v != nullptr && *v != '\0')
             ? static_cast<std::size_t>(std::strtoull(v, nullptr, 10))
             : fallback;
}

/// Two Gaussian blobs (benign/malware) in the counter layout's shape.
ml::Dataset synthetic_binary(std::size_t rows, std::uint64_t seed) {
  std::vector<ml::Attribute> attrs;
  for (std::size_t f = 0; f < kFeatures; ++f)
    attrs.emplace_back("f" + std::to_string(f));
  attrs.emplace_back("class",
                     std::vector<std::string>{"benign", "malware"});
  ml::Dataset data(std::move(attrs), "serve_blobs");
  Rng rng(seed);
  for (std::size_t i = 0; i < rows; ++i) {
    const std::size_t c = i % 2;
    ml::Instance row;
    for (std::size_t f = 0; f < kFeatures; ++f)
      row.values.push_back(
          rng.normal(c == 0 ? 1.0 : 3.0 + 0.2 * static_cast<double>(f),
                     1.2));
    row.values.push_back(static_cast<double>(c));
    data.add(std::move(row));
  }
  return data;
}

/// Per-stream window sequences, deterministic in the stream index.
std::vector<std::vector<std::vector<double>>> make_windows(
    std::size_t streams, std::size_t windows_per_stream) {
  std::vector<std::vector<std::vector<double>>> all(streams);
  for (std::size_t s = 0; s < streams; ++s) {
    Rng rng(0x5e12e + s);
    all[s].reserve(windows_per_stream);
    for (std::size_t w = 0; w < windows_per_stream; ++w) {
      std::vector<double> window(kFeatures);
      const bool hot = rng.bernoulli(0.2);
      for (std::size_t f = 0; f < kFeatures; ++f)
        window[f] = rng.normal(hot ? 3.4 : 1.0, 1.2);
      all[s].push_back(std::move(window));
    }
  }
  return all;
}

struct ConfigResult {
  std::size_t streams = 0;
  std::size_t shards = 0;
  double engine_wps = 0.0;  ///< windows/sec through the engine
  double serial_wps = 0.0;  ///< windows/sec through observe()
  double p50_us = 0.0;      ///< e2e ingest -> verdict latency
  double p99_us = 0.0;
  double mean_batch = 0.0;  ///< windows per scored batch
};

/// Serial baseline: every stream replayed through its own OnlineDetector.
/// Returns windows/sec and fills `alarm_windows` for the identity check.
double run_serial(const ml::Classifier& model,
                  const core::OnlineDetectorConfig& policy,
                  const std::vector<std::vector<std::vector<double>>>& wins,
                  std::vector<std::size_t>& alarm_windows) {
  std::size_t total = 0;
  alarm_windows.clear();
  TraceSpan t("serve_bench/serial");
  for (const auto& stream : wins) {
    core::OnlineDetector det(model, policy);
    for (const auto& w : stream) det.observe(w);
    alarm_windows.push_back(det.alarm_window());
    total += stream.size();
  }
  return static_cast<double>(total) / t.elapsed_seconds();
}

ConfigResult run_config(const ml::Classifier& model,
                        const core::OnlineDetectorConfig& policy,
                        std::size_t streams, std::size_t shards,
                        const std::vector<std::vector<std::vector<double>>>&
                            wins,
                        double serial_wps,
                        const std::vector<std::size_t>& serial_alarms) {
  ConfigResult r;
  r.streams = streams;
  r.shards = shards;
  r.serial_wps = serial_wps;

  metrics().reset();
  serve::ServeConfig config;
  config.num_shards = shards;
  config.window_size = kFeatures;
  config.policy = policy;
  serve::StreamEngine engine(model, config);

  std::vector<serve::StreamEngine::StreamHandle> handles;
  handles.reserve(streams);
  for (std::size_t s = 0; s < streams; ++s)
    handles.push_back(engine.register_stream(s));

  const std::size_t feeders = std::min(kMaxFeeders, streams);
  std::size_t total = 0;
  for (const auto& stream : wins) total += stream.size();

  TraceSpan t("serve_bench/engine");
  {
    std::vector<std::thread> threads;
    threads.reserve(feeders);
    for (std::size_t f = 0; f < feeders; ++f)
      threads.emplace_back([&, f] {
        // Feeder f owns streams s with s % feeders == f and round-robins
        // window-by-window across them (per-stream order preserved).
        const std::size_t per_stream = wins.front().size();
        for (std::size_t w = 0; w < per_stream; ++w)
          for (std::size_t s = f; s < streams; s += feeders)
            engine.ingest(handles[s], wins[s][w]);
      });
    for (auto& th : threads) th.join();
    engine.drain();
  }
  r.engine_wps = static_cast<double>(total) / t.elapsed_seconds();

  // Determinism cross-check: each stream's latched alarm state must match
  // its serial replay regardless of shard count or feeder interleaving.
  for (std::size_t s = 0; s < streams; ++s) {
    if (engine.monitor(handles[s]).alarm_window() != serial_alarms[s]) {
      std::fprintf(stderr,
                   "[bench] serve DETERMINISM VIOLATION: stream %zu alarm "
                   "%zu != serial %zu (streams=%zu shards=%zu)\n",
                   s, engine.monitor(handles[s]).alarm_window(),
                   serial_alarms[s], streams, shards);
      std::exit(1);
    }
  }

  const Histogram& e2e =
      metrics().histogram("serve.e2e_latency_us",
                          default_latency_buckets_us());
  const Histogram& batch =
      metrics().histogram("serve.batch_size", default_count_buckets());
  r.p50_us = e2e.quantile(0.50);
  r.p99_us = e2e.quantile(0.99);
  r.mean_batch = batch.mean();
  engine.shutdown();

  std::fprintf(stderr,
               "[bench] serve %4zu streams x %zu shards: %9.0f w/s engine "
               "%9.0f w/s serial (%.2fx) | e2e p50 %6.0f us p99 %6.0f us | "
               "mean batch %.1f\n",
               streams, shards, r.engine_wps, r.serial_wps,
               r.engine_wps / r.serial_wps, r.p50_us, r.p99_us,
               r.mean_batch);
  return r;
}

void write_json(const std::string& path, std::size_t windows_per_stream,
                const std::vector<ConfigResult>& results) {
  std::ofstream out(path);
  out << "{\n"
      << "  \"metadata\": " << bench::metadata_json("  ").substr(2) << ",\n"
      << "  \"windows_per_stream\": " << windows_per_stream << ",\n"
      << "  \"features\": " << kFeatures << ",\n"
      << "  \"configs\": [\n";
  for (std::size_t i = 0; i < results.size(); ++i) {
    const ConfigResult& r = results[i];
    out << "    {\"streams\": " << r.streams
        << ", \"shards\": " << r.shards
        << ", \"engine_windows_per_s\": " << r.engine_wps
        << ", \"serial_windows_per_s\": " << r.serial_wps
        << ", \"speedup\": " << r.engine_wps / r.serial_wps
        << ", \"e2e_p50_us\": " << r.p50_us
        << ", \"e2e_p99_us\": " << r.p99_us
        << ", \"mean_batch_windows\": " << r.mean_batch << "}"
        << (i + 1 < results.size() ? "," : "") << "\n";
  }
  out << "  ]\n}\n";
}

}  // namespace

int main() {
  bench::init_observability();
  const std::size_t windows_per_stream = env_or("HMD_SERVE_WINDOWS", 256);
  const std::size_t max_streams = env_or("HMD_SERVE_MAX_STREAMS", 512);
  const std::size_t train_rows = env_or("HMD_SERVE_TRAIN_ROWS", 1024);

  // IBk "training" just stores the rows; every window scored costs a
  // distance scan over all of them, so scoring dominates the pipeline.
  const ml::Dataset train = synthetic_binary(train_rows, 11);
  ml::Knn model(5);
  model.train(train);
  const core::OnlineDetectorConfig policy{.flag_threshold = 0.9,
                                          .confirm_windows = 4};

  std::vector<std::size_t> stream_counts;
  for (std::size_t s : {std::size_t{1}, std::size_t{8}, std::size_t{64},
                        std::size_t{512}})
    if (s <= max_streams) stream_counts.push_back(s);
  const std::vector<std::size_t> shard_counts = {1, 2, 4};

  std::fprintf(stderr,
               "[bench] serve grid: streams up to %zu x shards {1,2,4}, "
               "%zu windows/stream, %zu hw threads\n",
               stream_counts.back(), windows_per_stream,
               static_cast<std::size_t>(
                   std::thread::hardware_concurrency()));

  std::vector<ConfigResult> results;
  for (std::size_t streams : stream_counts) {
    const auto wins = make_windows(streams, windows_per_stream);
    std::vector<std::size_t> serial_alarms;
    const double serial_wps =
        run_serial(model, policy, wins, serial_alarms);
    for (std::size_t shards : shard_counts)
      results.push_back(run_config(model, policy, streams, shards, wins,
                                   serial_wps, serial_alarms));
  }

  const std::string path = "BENCH_serve.json";
  write_json(path, windows_per_stream, results);
  std::fprintf(stderr, "[bench] serve results written to %s\n",
               path.c_str());
  return 0;
}
