// Ablation: PMU multiplexing error.
//
// The paper motivates its setup with the Haswell PMU's register scarcity:
// 16 events must share 8 programmable counters, so perf time-multiplexes
// and extrapolates. This ablation quantifies what that costs the detector:
// detection accuracy with the real multiplexed PMU (plus scaling error)
// versus an idealized 16-register PMU reading exact counts.
#include <benchmark/benchmark.h>

#include <iostream>

#include "bench/bench_common.hpp"
#include "ml/registry.hpp"
#include "util/rng.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"

namespace {

using namespace hmd;

double accuracy_for(const core::PipelineConfig& cfg,
                    const std::string& scheme) {
  core::DatasetBuilder builder(cfg);
  const ml::Dataset binary =
      core::DatasetBuilder::to_binary(builder.build_multiclass_dataset());
  Rng rng(5);
  const auto [train, test] = binary.stratified_split(cfg.train_fraction, rng);
  return core::train_and_evaluate(scheme, train, test).evaluation.accuracy();
}

void print_ablation() {
  bench::print_banner("Ablation: PMU multiplexing vs ideal 16-counter PMU");

  core::PipelineConfig base = bench::bench_config();
  // A reduced-size run (this ablation re-collects the dataset twice).
  base.composition = workload::DatabaseComposition::scaled(0.10);
  base.collector.num_windows = 8;

  core::PipelineConfig ideal = base;
  ideal.collector.ideal_pmu = true;

  core::PipelineConfig noisy = base;
  noisy.collector.mux_scaling_sigma = 0.30;  // badly bursty workloads

  TextTable table("binary detection accuracy (MLR / JRip)");
  table.set_header({"PMU model", "MLR %", "JRip %"});
  const double mux_mlr = accuracy_for(base, "MLR");
  const double mux_jrip = accuracy_for(base, "JRip");
  const double ideal_mlr = accuracy_for(ideal, "MLR");
  const double ideal_jrip = accuracy_for(ideal, "JRip");
  const double noisy_mlr = accuracy_for(noisy, "MLR");
  const double noisy_jrip = accuracy_for(noisy, "JRip");
  table.add_row({"ideal (16 registers, exact)",
                 format("%.2f", ideal_mlr * 100.0),
                 format("%.2f", ideal_jrip * 100.0)});
  table.add_row({"multiplexed (8 regs, sigma=0.12)",
                 format("%.2f", mux_mlr * 100.0),
                 format("%.2f", mux_jrip * 100.0)});
  table.add_row({"multiplexed, bursty (sigma=0.30)",
                 format("%.2f", noisy_mlr * 100.0),
                 format("%.2f", noisy_jrip * 100.0)});
  table.print(std::cout);
  std::cout << format("multiplexing cost (MLR): %.2f pp\n",
                      (ideal_mlr - mux_mlr) * 100.0);
}

void BM_CollectWindowMultiplexed(benchmark::State& state) {
  workload::SampleRecord rec{.id = "b", .label = workload::AppClass::kVirus,
                             .seed = 99};
  workload::Sandbox sandbox(rec);
  hwsim::Core core(hwsim::CoreConfig{}, hwsim::MemoryHierarchy::miniature());
  perf::HpcCollector collector({.ops_per_window = 3000, .num_windows = 1});
  for (auto _ : state) {
    auto windows = collector.collect(core, sandbox);
    benchmark::DoNotOptimize(windows);
  }
}
BENCHMARK(BM_CollectWindowMultiplexed)->Unit(benchmark::kMicrosecond);

void BM_CollectWindowIdeal(benchmark::State& state) {
  workload::SampleRecord rec{.id = "b", .label = workload::AppClass::kVirus,
                             .seed = 99};
  workload::Sandbox sandbox(rec);
  hwsim::Core core(hwsim::CoreConfig{}, hwsim::MemoryHierarchy::miniature());
  perf::HpcCollector collector(
      {.ops_per_window = 3000, .num_windows = 1, .ideal_pmu = true});
  for (auto _ : state) {
    auto windows = collector.collect(core, sandbox);
    benchmark::DoNotOptimize(windows);
  }
}
BENCHMARK(BM_CollectWindowIdeal)->Unit(benchmark::kMicrosecond);

}  // namespace

int main(int argc, char** argv) {
  print_ablation();
  ::benchmark::Initialize(&argc, argv);
  ::benchmark::RunSpecifiedBenchmarks();
  return 0;
}
